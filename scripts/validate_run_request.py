#!/usr/bin/env python3
"""Validate RunRequest JSON files against schemas/run_request.schema.json.

The sibling of validate_trace_event.py: a deliberately minimal,
dependency-free checker (stdlib json/re only — CI must not pip install
anything).  It hand-implements exactly the schema constructs that schema
file uses (required/additionalProperties/enum/const/type/minimum/maximum/
minLength/maxLength/pattern and the per-kind adversary conditionals), and
fails loudly if the schema ever grows a construct it does not know.

Usage: validate_run_request.py REQUEST.json [REQUEST.json ...]
Exit codes: 0 = all valid, 1 = validation failure, 2 = usage/IO error.
"""

import json
import os
import re
import sys

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "schemas",
    "run_request.schema.json")

# The schema constructs this validator implements.  Anything else in the
# schema file is a hard error, so the schema and validator cannot drift
# silently.
KNOWN_KEYS = {
    "$schema", "$id", "$ref", "title", "description", "type", "required",
    "additionalProperties", "properties", "items", "enum", "const",
    "definitions", "allOf", "if", "then", "not", "minimum", "maximum",
    "minLength", "maxLength", "pattern",
}

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
}


class SchemaError(Exception):
    """The schema uses a construct this validator does not implement."""


def resolve(schema, root):
    if "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/"):
            raise SchemaError(f"non-local $ref {ref!r}")
        node = root
        for part in ref[2:].split("/"):
            node = node[part]
        return node
    return schema


def check_known(schema):
    unknown = set(schema) - KNOWN_KEYS
    if unknown:
        raise SchemaError(f"unimplemented schema keys: {sorted(unknown)}")


def matches(value, schema, root):
    """True when `value` satisfies `schema` (no error message needed)."""
    return not validate(value, schema, root, path="", errors=None)


def validate(value, schema, root, path, errors):
    """Appends error strings to `errors` (or returns a bool when None)."""
    local_errors = [] if errors is None else errors
    schema = resolve(schema, root)
    check_known(schema)

    def fail(message):
        local_errors.append(f"{path or '$'}: {message}")

    if "const" in schema and value != schema["const"]:
        fail(f"expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        fail(f"{value!r} not in {schema['enum']}")
    if "type" in schema:
        if schema["type"] not in TYPE_CHECKS:
            raise SchemaError(f"unimplemented type {schema['type']!r}")
        if not TYPE_CHECKS[schema["type"]](value):
            fail(f"expected {schema['type']}, got {type(value).__name__}")
            return local_errors if errors is None else errors
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            fail(f"{value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            fail(f"{value} > maximum {schema['maximum']}")
    if isinstance(value, str):
        if "minLength" in schema and len(value) < schema["minLength"]:
            fail(f"length {len(value)} < minLength {schema['minLength']}")
        if "maxLength" in schema and len(value) > schema["maxLength"]:
            fail(f"length {len(value)} > maxLength {schema['maxLength']}")
        if "pattern" in schema and not re.search(schema["pattern"], value):
            fail(f"{value!r} does not match pattern {schema['pattern']!r}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(f"missing required property {key!r}")
        if schema.get("additionalProperties") is False:
            allowed = set(schema.get("properties", {}))
            for key in set(value) - allowed:
                fail(f"unexpected property {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, root, f"{path}.{key}", local_errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]",
                     local_errors)

    for clause in schema.get("allOf", []):
        check_known(clause)
        if "if" in clause:
            if matches(value, clause["if"], root) and "then" in clause:
                then = clause["then"]
                check_known(then)
                for key in then.get("required", []):
                    if key not in value:
                        fail(f"missing {key!r} (required for this kind)")
                if "not" in then:
                    banned = then["not"].get("required", [])
                    for key in banned:
                        if key in value:
                            fail(f"property {key!r} is banned for this kind")
                for key, sub in then.get("properties", {}).items():
                    if key in value:
                        validate(value[key], sub, root, f"{path}.{key}",
                                 local_errors)
        else:
            validate(value, clause, root, path, local_errors)

    return local_errors if errors is None else errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(SCHEMA_PATH, encoding="utf-8") as f:
        schema = json.load(f)

    failed = False
    for request_path in argv[1:]:
        try:
            with open(request_path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {request_path}: {e}")
            return 2
        errors = validate(doc, schema, schema, path="", errors=[])
        if errors:
            failed = True
            print(f"FAIL {request_path}: {len(errors)} violation(s)")
            for err in errors[:20]:
                print(f"  {err}")
        else:
            kind = doc.get("adversary", {}).get("kind", "?")
            print(f"ok {request_path}: {kind} on {doc.get('topology', '?')}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
