#!/usr/bin/env bash
# Builds everything, lints the example scenarios, runs the full test suite,
# every experiment bench, the differential fuzzer, and all examples.
# Outputs land in ./out.  Fails fast: any failing step aborts the script
# with a pointer to the command that broke.
set -euo pipefail
trap 'echo "run_all.sh: FAILED at line $LINENO: $BASH_COMMAND" >&2' ERR
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p out out/metrics

./build/tools/aqt-lint examples/scenarios/*.aqts | tee out/lint_output.txt

# Static determinism/concurrency audit of the sources themselves
# (AUD001..AUD007); any finding not absolved by the checked-in baseline
# aborts the script via the ERR trap above.
./build/tools/aqt-audit --baseline=tests/audit/baseline.txt \
  --metrics-out out/metrics/audit.metrics.json \
  src tools tests | tee out/audit_output.txt

# Record every example scenario (with the --replay-twice true determinism check),
# then re-verify each recorded run offline with aqt-verify; stable runs with
# an applicable theorem also get their certificate written next to the trace.
# Each scenario also drops its metrics snapshot (JSON + Prometheus + CSV) and
# packet-lifecycle event stream into out/metrics/.
mkdir -p out/traces
for s in examples/scenarios/*.aqts; do
  name=$(basename "$s" .aqts)
  ./build/tools/aqt-sim --scenario "$s" \
    --record-run "out/traces/$name.trace" --replay-twice true \
    --profile true \
    --metrics-out "out/metrics/$name.metrics.json" \
    --metrics-prom "out/metrics/$name.prom" \
    --metrics-csv "out/metrics/$name.metrics.csv" \
    --events "out/metrics/$name.events.jsonl" >/dev/null
  ./build/tools/aqt-verify --certificate "out/traces/$name.cert" \
    --metrics-out "out/metrics/$name.verify.json" \
    "out/traces/$name.trace"
done 2>&1 | tee out/verify_output.txt

# Flight-recorder pass: timeseries + Perfetto trace + online watchdog on a
# stable reference run, both artifact validators, and the HTML report.
./build/tools/aqt-sim --topology ring:12 --protocol NTG \
  --adversary stochastic --w 12 --r 1/5 --d 4 --steps 20000 \
  --watchdog true \
  --timeseries out/metrics/flight.csv \
  --trace-out out/metrics/flight.trace.json \
  --metrics-out out/metrics/flight.metrics.json | tee out/flight_output.txt
python3 scripts/validate_trace_event.py out/metrics/flight.trace.json
python3 scripts/lint_prometheus.py out/metrics/*.prom
./build/tools/aqt-report --timeseries out/metrics/flight.csv \
  --metrics out/metrics/flight.metrics.json --notes out/flight_output.txt \
  --title "flight recorder reference run" --out out/metrics/flight.html

ctest --test-dir build --output-on-failure 2>&1 | tee out/test_output.txt

for b in build/bench/bench_*; do
  echo "=== $(basename "$b") ==="
  if [ "$(basename "$b")" = "bench_e12_engine_perf" ]; then
    # The engine-perf bench also writes a machine-readable perf snapshot used
    # to track steps/sec across commits.
    "$b" --perf-json=out/metrics/BENCH_engine_perf.json
  else
    "$b"
  fi
done 2>&1 | tee out/bench_output.txt

./build/tools/aqt-fuzz --trials 200 --steps 80 \
  --metrics-out out/metrics/fuzz.metrics.json | tee out/fuzz_output.txt

for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue  # skip CMake's own directories
  echo "=== $(basename "$e") ==="
  "$e"
done 2>&1 | tee out/examples_output.txt

echo "All outputs in ./out"
