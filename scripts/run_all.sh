#!/usr/bin/env bash
# Builds everything, runs the full test suite, every experiment bench, the
# differential fuzzer, and all examples.  Outputs land in ./out.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

mkdir -p out
ctest --test-dir build --output-on-failure 2>&1 | tee out/test_output.txt

for b in build/bench/bench_*; do
  echo "=== $(basename "$b") ==="
  "$b"
done 2>&1 | tee out/bench_output.txt

./build/tools/aqt-fuzz --trials 200 --steps 80 | tee out/fuzz_output.txt

for e in build/examples/*; do
  [ -x "$e" ] || continue
  echo "=== $(basename "$e") ==="
  "$e"
done 2>&1 | tee out/examples_output.txt

echo "All outputs in ./out"
