#!/usr/bin/env python3
"""Lint Prometheus text exposition (version 0.0.4) files.

A dependency-free stand-in for `promtool check metrics` covering what the
aqt exporters (obs/export.cpp to_prometheus) actually emit:

  * every sample line parses as  name{label="value"}? value
  * metric and label names match the Prometheus grammar
  * every sample is preceded by # HELP and # TYPE lines for its family
  * the TYPE is counter/gauge/histogram and histogram families expose the
    conventional _sum/_count/_bucket series with an le="+Inf" bucket
  * values parse as floats (NaN allowed), counters are non-negative
  * no duplicate sample (same name + label set)

Usage: lint_prometheus.py FILE.prom [FILE.prom ...]
Exit codes: 0 = clean, 1 = lint errors, 2 = usage/IO error.
"""

import math
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')

SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, types):
    """Maps a sample name to its declared family (histogram suffixes)."""
    for suffix in SUFFIXES:
        base = name[: -len(suffix)]
        if name.endswith(suffix) and types.get(base) == "histogram":
            return base
    return name


def lint(path):
    errors = []
    helps = {}
    types = {}
    seen = set()
    buckets_inf = set()

    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    for i, line in enumerate(lines, 1):
        def err(message):
            errors.append(f"{path}:{i}: {message}")

        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_RE.match(parts[2]):
                err(f"malformed HELP line: {line!r}")
            else:
                helps[parts[2]] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or not METRIC_RE.match(parts[2]):
                err(f"malformed TYPE line: {line!r}")
                continue
            if parts[3] not in ("counter", "gauge", "histogram"):
                err(f"unknown type {parts[3]!r} for {parts[2]}")
            if parts[2] not in helps:
                err(f"# TYPE {parts[2]} without preceding # HELP")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # Free-form comment.

        m = SAMPLE_RE.match(line)
        if not m:
            err(f"unparseable sample line: {line!r}")
            continue
        name = m.group("name")
        family = family_of(name, types)
        if family not in types:
            err(f"sample {name} without preceding # TYPE")
        labels = []
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                pm = LABEL_PAIR_RE.match(pair)
                if not pm:
                    err(f"malformed label pair {pair!r}")
                    continue
                if not LABEL_RE.match(pm.group("key")):
                    err(f"bad label name {pm.group('key')!r}")
                labels.append((pm.group("key"), pm.group("value")))
                if name.endswith("_bucket") and pm.group("key") == "le" \
                        and pm.group("value") == "+Inf":
                    buckets_inf.add(family)
        key = (name, tuple(sorted(labels)))
        if key in seen:
            err(f"duplicate sample {name}{dict(labels)}")
        seen.add(key)
        try:
            value = float(m.group("value"))
        except ValueError:
            err(f"unparseable value {m.group('value')!r}")
            continue
        if types.get(family) == "counter" and not math.isnan(value) \
                and value < 0:
            err(f"negative counter {name} = {value}")

    for fam, typ in types.items():
        if typ != "histogram":
            continue
        for suffix in ("_sum", "_count"):
            if not any(n == fam + suffix for n, _ in seen):
                errors.append(f"{path}: histogram {fam} missing {fam}{suffix}")
        if fam not in buckets_inf:
            errors.append(f'{path}: histogram {fam} missing le="+Inf" bucket')

    return errors, len(seen)


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            errors, samples = lint(path)
        except OSError as e:
            print(f"FAIL {path}: {e}")
            return 2
        if errors:
            failed = True
            print(f"FAIL {path}: {len(errors)} problem(s)")
            for err in errors[:20]:
                print(f"  {err}")
        else:
            print(f"ok {path}: {samples} samples")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
