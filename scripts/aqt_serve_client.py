#!/usr/bin/env python3
"""Reference client for aqt-serve's JSONL-over-TCP job protocol.

Stdlib-only (socket/json) so CI and the serve tests can drive a live
server without installing anything.  Doubles as the protocol's executable
documentation: every op in docs/TOOLS.md is a subcommand here.

Usage:
  aqt_serve_client.py ping     --port P
  aqt_serve_client.py status   --port P
  aqt_serve_client.py catalog  --port P
  aqt_serve_client.py metrics  --port P
  aqt_serve_client.py submit   --port P [--client NAME] [--results-dir D]
                               [--timeout S] REQUEST.json [...]
  aqt_serve_client.py soak     --port P --count N [--client NAME]
                               [--timeout S] TEMPLATE.json

`submit` sends every request file, waits for all terminal events, writes
each job's `result_canonical` bytes to <results-dir>/<stem>.json (the
exact bytes `aqt-sim --batch --results-dir` writes for the same request
— the byte-identity contract), and prints one JSON outcome line per job.
Exit 0 only if every job reached state "done" with ok=true.

`soak` submits N copies of a template (seed/id varied per copy), then
verifies exactly one terminal event per job id — no lost, no duplicate.

Exit codes: 0 = success, 1 = job/protocol failure, 2 = usage/IO error.
"""

import argparse
import json
import os
import socket
import sys
import time


class ServeError(Exception):
    """A server-side rejection; carries the stable SRVnnn code."""

    def __init__(self, code, message):
        super().__init__(f"{code}: {message}")
        self.code = code


class Client:
    """One connection; replies are matched in order, events are queued."""

    def __init__(self, host, port, timeout=30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self.buffer = b""
        self.events = []

    def close(self):
        self.sock.close()

    def _read_line(self, deadline):
        while b"\n" not in self.buffer:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("timed out waiting for the server")
            self.sock.settimeout(remaining)
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return json.loads(line)

    def rpc(self, obj, timeout=30.0):
        """Sends one op; returns its reply, stashing any events that
        arrive first (completion events interleave with replies)."""
        self.sock.sendall(json.dumps(obj).encode() + b"\n")
        deadline = time.monotonic() + timeout
        while True:
            doc = self._read_line(deadline)
            if "event" in doc:
                self.events.append(doc)
                continue
            if not doc.get("ok", False):
                raise ServeError(doc.get("code", "?"), doc.get("error", "?"))
            return doc

    def next_event(self, timeout=30.0):
        if self.events:
            return self.events.pop(0)
        deadline = time.monotonic() + timeout
        while True:
            doc = self._read_line(deadline)
            if "event" in doc:
                return doc
            # A reply with no rpc() waiting would be a protocol bug.
            raise ServeError(doc.get("code", "?"),
                             f"unexpected non-event line: {doc}")

    def hello(self, client=None):
        obj = {"op": "hello"}
        if client:
            obj["client"] = client
        return self.rpc(obj)

    def submit(self, request):
        return self.rpc({"op": "submit", "request": request})["job"]


def connect(args):
    client = Client(args.host, args.port, timeout=args.timeout)
    client.hello(getattr(args, "client", None))
    return client


def cmd_simple(args, op, render):
    client = connect(args)
    try:
        print(render(client.rpc({"op": op})))
    finally:
        client.close()
    return 0


def wait_all(client, jobs, timeout):
    """Collects one terminal event per job id; returns {job: event}."""
    outcomes = {}
    deadline = time.monotonic() + timeout
    while len(outcomes) < len(jobs):
        event = client.next_event(timeout=deadline - time.monotonic())
        job = event.get("job")
        if job in outcomes:
            raise ServeError("?", f"duplicate terminal event for job {job}")
        if job in jobs:
            outcomes[job] = event
    return outcomes


def cmd_submit(args):
    client = connect(args)
    try:
        jobs = {}  # job id -> source path
        for path in args.requests:
            with open(path, encoding="utf-8") as f:
                request = json.load(f)
            jobs[client.submit(request)] = path
        outcomes = wait_all(client, jobs, args.timeout)
        ok = True
        for job in sorted(outcomes):
            event = outcomes[job]
            if args.results_dir and "result_canonical" in event:
                stem = os.path.splitext(os.path.basename(jobs[job]))[0]
                os.makedirs(args.results_dir, exist_ok=True)
                out = os.path.join(args.results_dir, stem + ".json")
                with open(out, "w", encoding="utf-8") as f:
                    f.write(event["result_canonical"] + "\n")
            print(json.dumps({
                "job": job,
                "source": jobs[job],
                "state": event.get("state"),
                "start_seq": event.get("start_seq"),
                "ok": event.get("result", {}).get("ok"),
                "trace_hash": event.get("result", {}).get("trace_hash"),
            }))
            ok = ok and event.get("state") == "done" \
                and event.get("result", {}).get("ok") is True
        return 0 if ok else 1
    finally:
        client.close()


def cmd_soak(args):
    with open(args.template, encoding="utf-8") as f:
        template = json.load(f)
    client = connect(args)
    try:
        jobs = {}
        for i in range(args.count):
            request = dict(template)
            request["seed"] = int(template.get("seed", 1)) + i
            request["id"] = f"soak-{i}"
            while True:
                try:
                    jobs[client.submit(request)] = i
                    break
                except ServeError as e:
                    if e.code != "SRV010":  # Backpressure: retry, don't die.
                        raise
                    time.sleep(0.05)
        outcomes = wait_all(client, jobs, args.timeout)
        lost = set(jobs) - set(outcomes)
        bad = [j for j, e in outcomes.items()
               if e.get("state") != "done"
               or e.get("result", {}).get("ok") is not True]
        print(f"soak: {args.count} submitted, {len(outcomes)} terminal, "
              f"{len(lost)} lost, {len(bad)} not-ok")
        return 0 if not lost and not bad and len(outcomes) == args.count \
            else 1
    finally:
        client.close()


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=[
        "ping", "status", "catalog", "metrics", "submit", "soak"])
    parser.add_argument("requests", nargs="*")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--client", default=None,
                        help="scheduling identity (fair-share bucket)")
    parser.add_argument("--results-dir", default=None)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--template", default=None)
    args = parser.parse_args(argv[1:])

    try:
        if args.command == "ping":
            return cmd_simple(args, "ping", lambda r: "pong")
        if args.command == "status":
            return cmd_simple(args, "status", json.dumps)
        if args.command == "catalog":
            return cmd_simple(
                args, "catalog", lambda r: json.dumps(r["catalog"]))
        if args.command == "metrics":
            return cmd_simple(args, "metrics", lambda r: r["prometheus"])
        if args.command == "submit":
            if not args.requests:
                print("submit needs at least one REQUEST.json",
                      file=sys.stderr)
                return 2
            return cmd_submit(args)
        if args.command == "soak":
            args.template = args.template or (
                args.requests[0] if args.requests else None)
            if not args.template:
                print("soak needs a TEMPLATE.json", file=sys.stderr)
                return 2
            return cmd_soak(args)
    except (ServeError, TimeoutError, ConnectionError, OSError) as e:
        print(f"aqt_serve_client: {e}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
