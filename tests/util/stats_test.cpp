#include "aqt/util/stats.hpp"

#include <gtest/gtest.h>

namespace aqt {
namespace {

TEST(Stats, EmptyAccumulator) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Stats, SingleValue) {
  StatAccumulator s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, KnownSeries) {
  StatAccumulator s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, NegativeValues) {
  StatAccumulator s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_NEAR(s.variance(), 18.0, 1e-12);
}

TEST(Stats, MergeMatchesSequential) {
  StatAccumulator all;
  StatAccumulator a;
  StatAccumulator b;
  for (int i = 0; i < 10; ++i) {
    const double x = 1.7 * i - 3.0;
    all.add(x);
    (i < 4 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, EmptyDenominatorConvention) {
  // With no samples every accessor is exactly 0.0 — never NaN or Inf (the
  // repo-wide convention documented in core/metrics.hpp).
  const StatAccumulator empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.variance(), 0.0);
  EXPECT_EQ(empty.stddev(), 0.0);
  EXPECT_EQ(empty.min(), 0.0);
  EXPECT_EQ(empty.max(), 0.0);
  // One sample: variance (n-1 denominator) is still 0, not NaN.
  StatAccumulator one;
  one.add(42.0);
  EXPECT_EQ(one.variance(), 0.0);
  EXPECT_EQ(one.stddev(), 0.0);
}

TEST(Stats, MergeWithEmpty) {
  StatAccumulator a;
  a.add(1.0);
  a.add(2.0);
  StatAccumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  StatAccumulator target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

}  // namespace
}  // namespace aqt
