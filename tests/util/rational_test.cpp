#include "aqt/util/rational.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include <cmath>
#include <sstream>

namespace aqt {
namespace {

TEST(Rational, DefaultIsZero) {
  Rat r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, IntegerConversion) {
  Rat r = 7;
  EXPECT_EQ(r.num(), 7);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, NormalizesToLowestTerms) {
  Rat r(6, 10);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 5);
}

TEST(Rational, NormalizesSignOntoNumerator) {
  Rat r(3, -5);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 5);
  Rat s(-3, -5);
  EXPECT_EQ(s.num(), 3);
  EXPECT_EQ(s.den(), 5);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rat(1, 0), PreconditionError);
}

TEST(Rational, ParseFraction) {
  EXPECT_EQ(Rat::parse("3/5"), Rat(3, 5));
  EXPECT_EQ(Rat::parse("-3/5"), Rat(-3, 5));
  EXPECT_EQ(Rat::parse("10/4"), Rat(5, 2));
}

TEST(Rational, ParseInteger) {
  EXPECT_EQ(Rat::parse("42"), Rat(42));
  EXPECT_EQ(Rat::parse("-7"), Rat(-7));
}

TEST(Rational, ParseDecimal) {
  EXPECT_EQ(Rat::parse("0.6"), Rat(3, 5));
  EXPECT_EQ(Rat::parse("0.51"), Rat(51, 100));
  EXPECT_EQ(Rat::parse("1.25"), Rat(5, 4));
  EXPECT_EQ(Rat::parse("-0.5"), Rat(-1, 2));
}

TEST(Rational, ParseEmptyThrows) {
  EXPECT_THROW(Rat::parse(""), PreconditionError);
}

TEST(Rational, FloorCeilPositive) {
  EXPECT_EQ(Rat(7, 2).floor(), 3);
  EXPECT_EQ(Rat(7, 2).ceil(), 4);
  EXPECT_EQ(Rat(8, 2).floor(), 4);
  EXPECT_EQ(Rat(8, 2).ceil(), 4);
}

TEST(Rational, FloorCeilNegative) {
  EXPECT_EQ(Rat(-7, 2).floor(), -4);
  EXPECT_EQ(Rat(-7, 2).ceil(), -3);
  EXPECT_EQ(Rat(-8, 2).floor(), -4);
  EXPECT_EQ(Rat(-8, 2).ceil(), -4);
}

TEST(Rational, FloorMulMatchesDefinition) {
  const Rat r(3, 5);
  for (std::int64_t k = 0; k <= 100; ++k) {
    EXPECT_EQ(r.floor_mul(k), (3 * k) / 5) << "k=" << k;
  }
}

TEST(Rational, CeilMulMatchesDefinition) {
  const Rat r(3, 5);
  for (std::int64_t k = 0; k <= 100; ++k) {
    EXPECT_EQ(r.ceil_mul(k), (3 * k + 4) / 5) << "k=" << k;
  }
}

TEST(Rational, FloorMulNegativeArgument) {
  const Rat r(1, 2);
  EXPECT_EQ(r.floor_mul(-3), -2);
  EXPECT_EQ(r.ceil_mul(-3), -1);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rat(1, 2) + Rat(1, 3), Rat(5, 6));
  EXPECT_EQ(Rat(1, 2) - Rat(1, 3), Rat(1, 6));
  EXPECT_EQ(Rat(2, 3) * Rat(3, 4), Rat(1, 2));
  EXPECT_EQ(Rat(2, 3) / Rat(4, 3), Rat(1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rat(1, 2) / Rat(0), PreconditionError);
}

TEST(Rational, CompoundAssignment) {
  Rat r(1, 2);
  r += Rat(1, 4);
  EXPECT_EQ(r, Rat(3, 4));
  r -= Rat(1, 4);
  EXPECT_EQ(r, Rat(1, 2));
  r *= Rat(4);
  EXPECT_EQ(r, Rat(2));
  r /= Rat(4);
  EXPECT_EQ(r, Rat(1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rat(1, 3), Rat(1, 2));
  EXPECT_GT(Rat(2, 3), Rat(1, 2));
  EXPECT_LE(Rat(1, 2), Rat(2, 4));
  EXPECT_EQ(Rat(1, 2), Rat(2, 4));
  EXPECT_LT(Rat(-1, 2), Rat(0));
}

TEST(Rational, ComparisonAvoidsOverflowForModestValues) {
  // Values near 1e9 cross-multiply to ~1e18, inside the __int128 path.
  EXPECT_LT(Rat(999999999, 1000000000), Rat(1));
  EXPECT_GT(Rat(1000000001, 1000000000), Rat(1));
}

TEST(Rational, StrAndStream) {
  EXPECT_EQ(Rat(3, 5).str(), "3/5");
  EXPECT_EQ(Rat(4).str(), "4");
  std::ostringstream os;
  os << Rat(-1, 3);
  EXPECT_EQ(os.str(), "-1/3");
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rat(3, 5).to_double(), 0.6);
  EXPECT_DOUBLE_EQ(Rat(-1, 4).to_double(), -0.25);
}

TEST(Rational, UnaryMinus) {
  EXPECT_EQ(-Rat(3, 5), Rat(-3, 5));
  EXPECT_EQ(-Rat(-3, 5), Rat(3, 5));
}

// Property sweep: floor/ceil agree with exact division for a grid of p/q.
class RationalFloorCeilSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(RationalFloorCeilSweep, FloorCeilConsistent) {
  const auto [p, q] = GetParam();
  const Rat r(p, q);
  const double v = static_cast<double>(p) / static_cast<double>(q);
  EXPECT_EQ(r.floor(), static_cast<std::int64_t>(std::floor(v)));
  EXPECT_EQ(r.ceil(), static_cast<std::int64_t>(std::ceil(v)));
  EXPECT_LE(r.floor(), r.ceil());
  EXPECT_LE(r.ceil() - r.floor(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RationalFloorCeilSweep,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{7, 3},
                      std::pair<std::int64_t, std::int64_t>{-7, 3},
                      std::pair<std::int64_t, std::int64_t>{0, 5},
                      std::pair<std::int64_t, std::int64_t>{5, 5},
                      std::pair<std::int64_t, std::int64_t>{-5, 5},
                      std::pair<std::int64_t, std::int64_t>{1, 7},
                      std::pair<std::int64_t, std::int64_t>{-1, 7},
                      std::pair<std::int64_t, std::int64_t>{13, 4},
                      std::pair<std::int64_t, std::int64_t>{-13, 4}));

}  // namespace
}  // namespace aqt
