#include "aqt/util/rng.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace aqt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GT(differing, 90);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -2);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeDegenerateSingleValue) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, RangeBadBoundsThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.range(2, 1), PreconditionError);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(22);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.split();
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GT(differing, 90);
}

TEST(Rng, MixSeedIsDeterministicAndStreamSensitive) {
  // The runner derives decorrelated per-cell streams (e.g. the protocol's
  // stream is mix_seed(seed, 1)): the same pair must always map to the
  // same value (jobs-invariance), and nearby streams must not collide or
  // pass the base through unchanged.
  EXPECT_EQ(mix_seed(1, 0), mix_seed(1, 0));
  EXPECT_NE(mix_seed(1, 0), mix_seed(1, 1));
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
  EXPECT_NE(mix_seed(1, 1), mix_seed(2, 0));
  Rng a(mix_seed(9, 3));
  Rng b(mix_seed(9, 3));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedResetsSequence) {
  Rng a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next());
  a.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), first[i]);
}

}  // namespace
}  // namespace aqt
