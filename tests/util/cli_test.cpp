#include "aqt/util/cli.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include <vector>

namespace aqt {
namespace {

/// Builds an argv array from string literals (argv[0] is the program name).
class Args {
 public:
  explicit Args(std::vector<std::string> args) : storage_(std::move(args)) {
    ptrs_.push_back(prog_);
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  char prog_[5] = "prog";
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Cli, DefaultsApply) {
  Cli cli("t", "test");
  cli.flag("steps", "100", "step count");
  Args a({});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.get_int("steps"), 100);
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli("t", "test");
  cli.flag("rate", "0.5", "rate");
  Args a({"--rate", "0.7"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.7);
}

TEST(Cli, EqualsSeparatedValue) {
  Cli cli("t", "test");
  cli.flag("proto", "FIFO", "protocol");
  Args a({"--proto=LIS"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.get("proto"), "LIS");
}

TEST(Cli, RationalFlag) {
  Cli cli("t", "test");
  cli.flag("r", "1/2", "rate");
  Args a({"--r", "7/10"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.get_rat("r"), Rat(7, 10));
}

TEST(Cli, BoolFlagVariants) {
  Cli cli("t", "test");
  cli.flag("audit", "false", "audit");
  for (const char* v : {"1", "true", "yes", "on"}) {
    Cli c("t", "test");
    c.flag("audit", "false", "audit");
    Args a({std::string("--audit=") + v});
    ASSERT_TRUE(c.parse(a.argc(), a.argv()));
    EXPECT_TRUE(c.get_bool("audit")) << v;
  }
  Args a({"--audit=0"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_FALSE(cli.get_bool("audit"));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli("t", "test");
  cli.flag("x", "1", "x");
  Args a({"--nope", "3"});
  EXPECT_THROW((void)cli.parse(a.argc(), a.argv()), PreconditionError);
}

TEST(Cli, MissingValueThrows) {
  Cli cli("t", "test");
  cli.flag("x", "1", "x");
  Args a({"--x"});
  EXPECT_THROW((void)cli.parse(a.argc(), a.argv()), PreconditionError);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("t", "test");
  cli.flag("x", "1", "x");
  Args a({"--help"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
}

TEST(Cli, DuplicateFlagDeclarationThrows) {
  Cli cli("t", "test");
  cli.flag("x", "1", "x");
  EXPECT_THROW(cli.flag("x", "2", "again"), PreconditionError);
}

TEST(Cli, UndeclaredGetThrows) {
  Cli cli("t", "test");
  EXPECT_THROW((void)cli.get("ghost"), PreconditionError);
}

TEST(Cli, PositionalsCollectedWhenEnabled) {
  Cli cli("t", "test");
  cli.flag("format", "human", "output format");
  cli.positionals("file...", "scenario files");
  Args a({"a.aqts", "--format=json", "b.aqts"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(cli.get("format"), "json");
  EXPECT_EQ(cli.positional_args(),
            (std::vector<std::string>{"a.aqts", "b.aqts"}));
}

TEST(Cli, NumericFlagsRejectGarbageWithCleanError) {
  // A typo'd numeric value must surface as the usage-error contract
  // (PreconditionError -> exit 2), never a raw stoll exception.
  Cli cli("t", "test");
  add_jobs_flag(cli);
  add_seed_flag(cli);
  cli.flag("ratio", "1.5", "a double flag");
  Args a({"--jobs", "notanumber", "--seed", "7x", "--ratio", "fast"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_THROW((void)get_jobs(cli), PreconditionError);
  EXPECT_THROW((void)cli.get_int("seed"), PreconditionError);
  EXPECT_THROW((void)cli.get_double("ratio"), PreconditionError);
}

TEST(Cli, SharedJobsAndSeedFlagsParseAndRangeCheck) {
  Cli cli("t", "test");
  add_jobs_flag(cli);
  add_seed_flag(cli);
  Args a({"--jobs", "4", "--seed", "9"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(get_jobs(cli), 4u);
  EXPECT_EQ(get_seed(cli), 9u);
  Cli neg("t", "test");
  add_jobs_flag(neg);
  add_seed_flag(neg);
  Args b({"--jobs", "-3"});
  ASSERT_TRUE(neg.parse(b.argc(), b.argv()));
  EXPECT_THROW((void)get_jobs(neg), PreconditionError);
}

TEST(Cli, PositionalsRejectedWhenNotEnabled) {
  Cli cli("t", "test");
  Args a({"stray"});
  EXPECT_THROW((void)cli.parse(a.argc(), a.argv()), PreconditionError);
}

}  // namespace
}  // namespace aqt
