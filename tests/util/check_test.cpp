// Tests for the AQT_CHECK / AQT_REQUIRE runtime-checking macros: the
// abort/throw split, message formatting, and file:line capture.
#include "aqt/util/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace aqt {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  AQT_CHECK(1 + 1 == 2, "never shown");
  AQT_REQUIRE(1 + 1 == 2, "never shown");
  AQT_CHECK(true);  // The message is optional for both macros.
  AQT_REQUIRE(true);
}

TEST(CheckTest, ConditionIsEvaluatedExactlyOnce) {
  int calls = 0;
  AQT_REQUIRE(++calls > 0, "calls " << calls);
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, RequireThrowsPreconditionError) {
  EXPECT_THROW(AQT_REQUIRE(2 + 2 == 5, "arithmetic"), PreconditionError);
}

TEST(CheckTest, RequireIsCatchableAsLogicError) {
  // Callers that only know std::logic_error still observe API misuse.
  EXPECT_THROW(AQT_REQUIRE(false, "misuse"), std::logic_error);
}

TEST(CheckTest, RequireMessageCarriesExpressionArgsAndLocation) {
  try {
    AQT_REQUIRE(2 + 2 == 5, "got " << 4 << ", want " << 5);
    FAIL() << "AQT_REQUIRE did not throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition violated: 2 + 2 == 5"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("got 4, want 5"), std::string::npos) << what;
  }
}

TEST(CheckTest, RequireWithoutMessageOmitsSeparator) {
  try {
    AQT_REQUIRE(false);
    FAIL() << "AQT_REQUIRE did not throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition violated: false"), std::string::npos)
        << what;
    EXPECT_EQ(what.find(" -- "), std::string::npos) << what;
  }
}

TEST(CheckDeathTest, CheckAbortsWithFailedExpression) {
  EXPECT_DEATH(AQT_CHECK(1 == 2, "impossible"), "AQT_CHECK failed: 1 == 2");
}

TEST(CheckDeathTest, CheckDiagnosticIncludesStreamedMessage) {
  EXPECT_DEATH(AQT_CHECK(false, "boom " << 40 + 2), "boom 42");
}

TEST(CheckDeathTest, CheckDiagnosticIncludesFileAndLine) {
  EXPECT_DEATH(AQT_CHECK(false, "where"), "check_test.cpp");
}

}  // namespace
}  // namespace aqt
