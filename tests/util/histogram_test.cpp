#include "aqt/util/histogram.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(Histogram, BasicStatistics) {
  Histogram h;
  for (std::int64_t v : {1, 2, 3, 4, 10}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, QuantileWithinFactorOfTwo) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(i);
  // Median ~50 -> bucket [32, 64): reported upper bound 63.
  const std::int64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 49);
  EXPECT_LE(p50, 63);
  // p99 ~99 -> bucket [64, 128), capped at max 99.
  EXPECT_EQ(h.quantile(0.99), 99);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(i % 77);
  std::int64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::int64_t v = h.quantile(q);
    EXPECT_GE(v, prev) << q;
    prev = v;
  }
}

TEST(Histogram, ZeroAndOneShareFirstBucket) {
  Histogram h;
  h.add(0);
  h.add(1);
  EXPECT_EQ(h.quantile(1.0), 1);
}

TEST(Histogram, NegativeRejected) {
  Histogram h;
  EXPECT_THROW(h.add(-1), PreconditionError);
}

TEST(Histogram, BadQuantileRejected) {
  Histogram h;
  h.add(1);
  EXPECT_THROW((void)h.quantile(0.0), PreconditionError);
  EXPECT_THROW((void)h.quantile(1.5), PreconditionError);
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 10; ++i) a.add(2);
  for (int i = 0; i < 10; ++i) b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_EQ(a.min(), 2);
  EXPECT_EQ(a.max(), 100);
  EXPECT_DOUBLE_EQ(a.mean(), 51.0);
}

TEST(Histogram, MergeWithEmpty) {
  Histogram a;
  a.add(5);
  Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  Histogram target;
  target.merge(a);
  EXPECT_EQ(target.count(), 1u);
  EXPECT_EQ(target.max(), 5);
}

TEST(Histogram, SummaryMentionsKeyFields) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.add(i);
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=50"), std::string::npos);
  EXPECT_NE(s.find("p50<="), std::string::npos);
  EXPECT_NE(s.find("max=49"), std::string::npos);
}

TEST(Histogram, SaveLoadRoundtrip) {
  Histogram h;
  for (int i = 0; i < 200; ++i) h.add(i * 3);
  std::stringstream buf;
  h.save(buf);
  Histogram loaded;
  loaded.load(buf);
  EXPECT_EQ(loaded.count(), h.count());
  EXPECT_EQ(loaded.min(), h.min());
  EXPECT_EQ(loaded.max(), h.max());
  EXPECT_DOUBLE_EQ(loaded.mean(), h.mean());
  for (double q : {0.5, 0.9, 0.99})
    EXPECT_EQ(loaded.quantile(q), h.quantile(q)) << q;
}

TEST(Histogram, LargeValues) {
  Histogram h;
  h.add(std::int64_t{1} << 40);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.quantile(1.0), (std::int64_t{1} << 40));
}

TEST(Histogram, EmptyDenominatorConvention) {
  // With no samples every accessor is exactly 0 — never NaN or Inf (the
  // repo-wide convention documented in core/metrics.hpp).
  const Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.sum(), 0.0);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.min(), 0);
  EXPECT_EQ(empty.max(), 0);
  EXPECT_EQ(empty.quantile(0.5), 0);
  EXPECT_EQ(empty.quantile(1.0), 0);
}

TEST(Histogram, BucketAccessorsMatchCumulativeCount) {
  Histogram h;
  h.add(1);
  h.add(2);
  h.add(5);
  h.add(100);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    total += h.bucket_count(b);
    if (b > 0)
      EXPECT_GT(Histogram::bucket_upper_bound(b),
                Histogram::bucket_upper_bound(b - 1));
  }
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 1);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 3);
}

}  // namespace
}  // namespace aqt
