#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "aqt/util/check.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

namespace aqt {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/aqt_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.rowv(1, 2.5);
    w.rowv("x", "y");
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2.5\nx,y\n");
}

TEST_F(CsvTest, EscapesCommasAndQuotes) {
  {
    CsvWriter w(path_, {"f"});
    w.row({"a,b"});
    w.row({"say \"hi\""});
  }
  EXPECT_EQ(slurp(path_), "f\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, WidthMismatchThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), PreconditionError);
}

TEST_F(CsvTest, DoubleFormatting) {
  EXPECT_EQ(CsvWriter::format(0.5), "0.5");
  EXPECT_EQ(CsvWriter::format(1e10), "1e+10");
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.rowv("alpha", 1);
  t.rowv("b", 22);
  std::ostringstream os;
  os << t;
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Numbers are right-aligned within their column.
  EXPECT_NE(out.find("    1"), std::string::npos);
}

TEST(TableTest, CellFormatting) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(true), "yes");
  EXPECT_EQ(Table::cell(false), "no");
  EXPECT_EQ(Table::cell(42), "42");
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a"});
  EXPECT_THROW(t.row({"x", "y"}), PreconditionError);
}

TEST(TableTest, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.rowv(1);
  t.rowv(2);
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace aqt
