// The checkpoint/resume byte-identity contract (PR 10): a run interrupted
// at a checkpoint and resumed from the saved state produces artifacts —
// the run-trace content hash above all — byte-identical to the same run
// executed uninterrupted, and the guarantee holds under the deterministic
// run-pool at any --jobs.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "aqt/runner/job_checkpoint.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/runner/run_spec.hpp"
#include "aqt/serve/registry.hpp"
#include "aqt/serve/request.hpp"

namespace aqt {
namespace {

/// A per-test scratch file under the system temp dir, removed on scope
/// exit.  The name carries the test-chosen tag so parallel ctest shards
/// cannot collide.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() /
               ("aqt_ckpt_" + tag + ".ckpt"))
                  .string()) {}
  ~ScratchFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// The reference workload: a stochastic adversary on a small grid,
/// compiled through the same serve::Registry the server uses.
RunSpec make_spec(std::uint64_t seed, Time steps) {
  serve::RunRequest req;
  req.topology = "grid:3x3";
  req.protocol = "FIFO";
  req.adversary.kind = "stochastic";
  req.adversary.w = 8;
  req.adversary.r = Rat(1, 4);
  req.adversary.d = 4;
  req.seed = seed;
  req.steps = steps;
  const serve::Registry registry;
  return registry.compile(req);
}

TEST(JobCheckpoint, ResumeReproducesTheUninterruptedHash) {
  const RunResult full = execute_run(make_spec(11, 600));
  ASSERT_TRUE(full.ok()) << full.error;
  ASSERT_NE(full.trace_hash, 0u);

  ScratchFile ckpt("single_11");
  RunSpec first = make_spec(11, 600);
  first.controls.checkpoint_at = 251;
  first.controls.checkpoint_to = ckpt.path();
  const RunResult interrupted = execute_run(first);
  ASSERT_TRUE(interrupted.ok()) << interrupted.error;
  EXPECT_TRUE(interrupted.checkpointed);
  EXPECT_EQ(interrupted.checkpoint_step, 251);
  EXPECT_EQ(interrupted.steps_run, 251);
  // An interrupted run reports no final artifacts.
  EXPECT_EQ(interrupted.trace_hash, 0u);

  RunSpec second = make_spec(11, 600);
  second.controls.resume_from = ckpt.path();
  const RunResult resumed = execute_run(second);
  ASSERT_TRUE(resumed.ok()) << resumed.error;
  EXPECT_FALSE(resumed.checkpointed);
  EXPECT_EQ(resumed.steps_run, full.steps_run);
  EXPECT_EQ(resumed.injected, full.injected);
  EXPECT_EQ(resumed.absorbed, full.absorbed);
  EXPECT_EQ(resumed.max_queue, full.max_queue);
  EXPECT_EQ(resumed.trace_hash, full.trace_hash);
}

TEST(JobCheckpoint, SlicedExecutionIsByteInvisible) {
  const RunResult whole = execute_run(make_spec(5, 400));
  RunSpec sliced_spec = make_spec(5, 400);
  sliced_spec.controls.slice_steps = 7;  // Deliberately not a divisor.
  const RunResult sliced = execute_run(sliced_spec);
  ASSERT_TRUE(whole.ok() && sliced.ok());
  EXPECT_EQ(whole.trace_hash, sliced.trace_hash);
  EXPECT_EQ(whole.injected, sliced.injected);
}

TEST(JobCheckpoint, ResumeIsByteIdenticalUnderThePoolAtAnyJobs) {
  // Three independent cells, each checkpointed mid-flight; the resumed
  // batch must match the uninterrupted batch hash-for-hash whether the
  // pool runs with 1, 2, or 4 workers.
  const std::vector<std::uint64_t> seeds = {21, 22, 23};
  const Time steps = 500;

  std::vector<std::uint64_t> full_hashes;
  for (const std::uint64_t seed : seeds) {
    const RunResult full = execute_run(make_spec(seed, steps));
    ASSERT_TRUE(full.ok()) << full.error;
    full_hashes.push_back(full.trace_hash);
  }

  std::vector<ScratchFile> files;
  files.reserve(seeds.size());
  std::vector<RunSpec> interrupt_specs;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    files.emplace_back("pool_" + std::to_string(seeds[i]));
    RunSpec spec = make_spec(seeds[i], steps);
    spec.controls.checkpoint_at = 173 + static_cast<Time>(i);
    spec.controls.checkpoint_to = files[i].path();
    interrupt_specs.push_back(std::move(spec));
  }
  // Interrupt under the pool too: checkpoint files are per-cell, so
  // workers never share output paths.
  const RunPoolReport interrupted = run_pool(interrupt_specs, 2);
  for (const RunResult& r : interrupted.results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.checkpointed);
  }

  std::vector<RunSpec> resume_specs;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    RunSpec spec = make_spec(seeds[i], steps);
    spec.controls.resume_from = files[i].path();
    resume_specs.push_back(std::move(spec));
  }
  for (const unsigned jobs : {1u, 2u, 4u}) {
    const RunPoolReport resumed = run_pool(resume_specs, jobs);
    ASSERT_EQ(resumed.results.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      ASSERT_TRUE(resumed.results[i].ok())
          << "jobs=" << jobs << ": " << resumed.results[i].error;
      EXPECT_EQ(resumed.results[i].trace_hash, full_hashes[i])
          << "jobs=" << jobs << " seed=" << seeds[i];
    }
  }
}

TEST(JobCheckpoint, CancelWithoutCheckpointReportsCancelled) {
  RunSpec spec = make_spec(31, 100000);
  spec.controls.slice_steps = 50;
  spec.controls.cancel = std::make_shared<std::atomic<bool>>(true);
  const RunResult result = execute_run(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error, "cancelled");
  EXPECT_LE(result.steps_run, 50);
}

TEST(JobCheckpoint, ArmedCancelCheckpointsInstead) {
  ScratchFile ckpt("armed_41");
  RunSpec spec = make_spec(41, 100000);
  spec.controls.slice_steps = 60;
  spec.controls.cancel = std::make_shared<std::atomic<bool>>(true);
  spec.controls.checkpoint_to = ckpt.path();
  spec.controls.checkpoint_on_cancel =
      std::make_shared<std::atomic<bool>>(true);
  const RunResult result = execute_run(spec);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.checkpointed);
  EXPECT_EQ(result.checkpoint_step, 60);

  // And the armed checkpoint is a real one: resuming completes the run
  // with the uninterrupted hash.
  const RunResult full = execute_run(make_spec(41, 200));
  RunSpec resume = make_spec(41, 200);
  resume.controls.resume_from = ckpt.path();
  const RunResult resumed = execute_run(resume);
  ASSERT_TRUE(resumed.ok()) << resumed.error;
  EXPECT_EQ(resumed.trace_hash, full.trace_hash);
}

TEST(JobCheckpoint, FileFormatRoundTrips) {
  JobCheckpoint cp;
  cp.name = "demo";
  cp.protocol = "FIFO";
  cp.topology = "grid:3x3";
  cp.seed = 9;
  cp.steps_done = 123;
  cp.has_trace = true;
  cp.trace.hash_state = 0xdeadbeefcafef00dULL;
  cp.trace.last_step = 123;
  cp.engine_state = "aqt-checkpoint 1\nnot really\n";

  std::ostringstream os;
  save_job_checkpoint(cp, os);
  std::istringstream is(os.str());
  const JobCheckpoint back = load_job_checkpoint(is, "round-trip");
  EXPECT_EQ(back.name, cp.name);
  EXPECT_EQ(back.protocol, cp.protocol);
  EXPECT_EQ(back.topology, cp.topology);
  EXPECT_EQ(back.seed, cp.seed);
  EXPECT_EQ(back.steps_done, cp.steps_done);
  EXPECT_TRUE(back.has_trace);
  EXPECT_EQ(back.trace.hash_state, cp.trace.hash_state);
  EXPECT_EQ(back.trace.last_step, cp.trace.last_step);
  EXPECT_EQ(back.engine_state, cp.engine_state);
}

TEST(JobCheckpoint, ResumeRejectsMismatchedSpecs) {
  ScratchFile ckpt("mismatch_51");
  RunSpec first = make_spec(51, 300);
  first.controls.checkpoint_at = 100;
  first.controls.checkpoint_to = ckpt.path();
  ASSERT_TRUE(execute_run(first).checkpointed);

  RunSpec wrong_seed = make_spec(52, 300);
  wrong_seed.controls.resume_from = ckpt.path();
  const RunResult r1 = execute_run(wrong_seed);
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.error.find("belongs to"), std::string::npos);

  RunSpec too_short = make_spec(51, 100);
  too_short.controls.resume_from = ckpt.path();
  const RunResult r2 = execute_run(too_short);
  EXPECT_FALSE(r2.ok());
  EXPECT_NE(r2.error.find("already at step"), std::string::npos);
}

TEST(JobCheckpoint, CheckpointRequiresDeterministicProtocolAndNoAudit) {
  RunSpec random_spec = make_spec(61, 300);
  random_spec.protocol = "RANDOM";
  random_spec.controls.checkpoint_at = 100;
  random_spec.controls.checkpoint_to = "/tmp/never-written.ckpt";
  const RunResult r1 = execute_run(random_spec);
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.error.find("RANDOM"), std::string::npos);

  RunSpec audited = make_spec(62, 300);
  audited.audit_r = Rat(1, 4);
  audited.controls.checkpoint_at = 100;
  audited.controls.checkpoint_to = "/tmp/never-written.ckpt";
  const RunResult r2 = execute_run(audited);
  EXPECT_FALSE(r2.ok());
  EXPECT_NE(r2.error.find("audit"), std::string::npos);
}

}  // namespace
}  // namespace aqt
