// The runner API contract: RunSpec/RunResult semantics, the deterministic
// parallel run-pool's byte-identical-to-serial guarantee, exception
// containment, and the EngineSinks deprecated aliases.
#include "aqt/runner/pool.hpp"
#include "aqt/runner/run_spec.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/experiments/sweep.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/profiler.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/trace/run_trace.hpp"
#include "aqt/util/check.hpp"
#include "aqt/verify/scenario_run.hpp"

namespace aqt {
namespace {

AdversaryFactory stochastic_factory(std::int64_t w, Rat r,
                                    std::int64_t max_route_len) {
  return [w, r, max_route_len](const Graph& g, std::uint64_t s) {
    StochasticConfig cfg;
    cfg.w = w;
    cfg.r = r;
    cfg.max_route_len = max_route_len;
    cfg.seed = s;
    return std::make_unique<StochasticAdversary>(g, cfg);
  };
}

RunSpec stochastic_spec(const std::string& protocol, std::uint64_t seed) {
  RunSpec spec;
  spec.topology = {"grid3x3", [] { return make_grid(3, 3); }};
  spec.protocol = protocol;
  spec.seed = seed;
  spec.steps = 300;
  spec.adversary = stochastic_factory(12, Rat(1, 4), 3);
  spec.artifacts.trace_hash = true;
  spec.artifacts.metrics = true;
  return spec;
}

/// The scripted ring_convoy scenario from the examples tree.
RunSpec ring_convoy_spec() {
  ScenarioRun srun = load_scenario_run(
      std::string(AQT_SOURCE_DIR) + "/examples/scenarios/ring_convoy.aqts");
  return make_scripted_spec("ring_convoy", srun.topology.graph,
                            srun.scenario.protocol, std::move(srun.script),
                            std::max<Time>(srun.last_event + 1, 400));
}

/// An F_n gadget chain under stochastic traffic.
RunSpec gadget_spec(std::uint64_t seed) {
  auto net = std::make_shared<const ChainedGadgets>(build_chain(3, 2));
  RunSpec spec;
  spec.topology = {"fn_chain3x2", [net] { return net->graph; }};
  spec.protocol = "FIFO";
  spec.seed = seed;
  spec.steps = 300;
  spec.adversary = stochastic_factory(10, Rat(1, 5), 3);
  spec.artifacts.trace_hash = true;
  spec.artifacts.metrics = true;
  return spec;
}

/// The mixed batch the determinism tests compare across --jobs values:
/// sweep cells, the scripted ring_convoy scenario, and F_n gadget runs.
std::vector<RunSpec> mixed_batch() {
  SweepConfig sweep;
  sweep.protocols = {"FIFO", "NTG"};
  sweep.topologies = {{"ring8", [] { return make_ring(8); }},
                      {"grid3x3", [] { return make_grid(3, 3); }}};
  sweep.seeds = {1, 2};
  sweep.steps = 300;
  sweep.traffic.w = 12;
  sweep.traffic.r = Rat(1, 4);
  sweep.traffic.max_route_len = 3;

  std::vector<RunSpec> specs = sweep_specs(sweep);
  for (RunSpec& spec : specs) spec.artifacts.trace_hash = true;
  specs.push_back(ring_convoy_spec());
  specs.push_back(gadget_spec(5));
  specs.push_back(gadget_spec(6));
  specs.push_back(stochastic_spec("LIS", 9));
  return specs;
}

/// Byte-exact serialization of a result batch (what a CSV writer would
/// emit), for whole-batch equality assertions.
std::string serialize(const std::vector<RunResult>& results) {
  std::ostringstream os;
  for (const RunResult& r : results) {
    os << r.index << ',' << r.name << ',' << r.protocol << ','
       << r.topology << ',' << r.seed << ',' << r.steps_run << ','
       << r.injected << ',' << r.absorbed << ',' << r.in_flight << ','
       << r.max_queue << ',' << r.max_residence << ',' << r.max_latency
       << ',' << r.trace_hash << ',' << r.feasible << ',' << r.error;
    for (const auto& [key, value] : r.extra)
      os << ',' << key << '=' << value;
    os << '\n';
  }
  return os.str();
}

TEST(ExecuteRun, FillsScalarsAndArtifacts) {
  RunSpec spec = stochastic_spec("FIFO", 1);
  spec.artifacts.growth = true;
  spec.audit_w = 12;
  spec.audit_r = Rat(1, 4);
  const RunResult result = execute_run(spec);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.name, "FIFO/grid3x3/1");
  EXPECT_EQ(result.steps_run, 300);
  EXPECT_GT(result.injected, 0u);
  EXPECT_GT(result.max_queue, 0u);
  EXPECT_GE(result.injected, result.absorbed);
  EXPECT_NE(result.trace_hash, 0u);
  EXPECT_TRUE(result.feasible);
  EXPECT_NE(result.verdict, GrowthVerdict::kUndecided);
  // The metrics artifact carries the engine snapshot.
  const std::string json = obs::to_json(result.metrics, "test");
  EXPECT_NE(json.find("aqt_steps_total"), std::string::npos);
}

TEST(ExecuteRun, NeverThrowsContainsCellFailure) {
  RunSpec spec = stochastic_spec("FIFO", 1);
  spec.topology.build = []() -> Graph {
    AQT_REQUIRE(false, "recipe exploded");
    return make_ring(3);
  };
  const RunResult result = execute_run(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("recipe exploded"), std::string::npos);
}

TEST(ExecuteRun, RejectsSpecCarryingObserverSinks) {
  RunSpec spec = stochastic_spec("FIFO", 1);
  obs::StepProfiler profiler;
  spec.engine.sinks.profile = &profiler;
  const RunResult result = execute_run(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("value configuration"), std::string::npos);
}

TEST(ExecuteRun, AuditWindowRequiresRate) {
  RunSpec spec = stochastic_spec("FIFO", 1);
  spec.audit_w = 12;  // No audit_r.
  const RunResult result = execute_run(spec);
  EXPECT_FALSE(result.ok());
}

TEST(ExecuteRun, ScriptedSpecReplaysAndDrains) {
  const RunSpec spec = ring_convoy_spec();
  const RunResult result = execute_run(spec);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GT(result.injected, 0u);
  EXPECT_EQ(result.injected, result.absorbed);  // drain_after emptied it.
  EXPECT_EQ(result.in_flight, 0u);
  EXPECT_NE(result.trace_hash, 0u);
}

TEST(RunPool, ResolveJobs) {
  EXPECT_GE(resolve_jobs(0), 1u);
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(8), 8u);
}

TEST(RunPool, Jobs1VersusJobs8ByteIdentical) {
  const std::vector<RunSpec> specs = mixed_batch();
  const RunPoolReport serial = run_pool(specs, 1);
  const RunPoolReport parallel = run_pool(specs, 8);
  ASSERT_EQ(serial.results.size(), specs.size());
  EXPECT_EQ(serial.jobs_used, 1u);
  EXPECT_EQ(parallel.jobs_used, 8u);
  // The batch serialization (CSV rows), every per-run metrics snapshot,
  // and the pool's own merged metrics must match byte for byte.
  EXPECT_EQ(serialize(serial.results), serialize(parallel.results));
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].trace_hash, parallel.results[i].trace_hash)
        << serial.results[i].name;
    EXPECT_EQ(obs::to_json(serial.results[i].metrics, "test"),
              obs::to_json(parallel.results[i].metrics, "test"))
        << serial.results[i].name;
  }
  EXPECT_EQ(obs::to_json(serial.metrics, "test"),
            obs::to_json(parallel.metrics, "test"));
  EXPECT_EQ(obs::to_csv(serial.metrics), obs::to_csv(parallel.metrics));
}

TEST(RunPool, ExceptionInOneCellLeavesOthersIntact) {
  std::vector<RunSpec> specs;
  specs.push_back(stochastic_spec("FIFO", 1));
  RunSpec bad = stochastic_spec("FIFO", 2);
  bad.name = "bad-cell";
  bad.adversary = [](const Graph&, std::uint64_t) -> std::unique_ptr<Adversary> {
    AQT_REQUIRE(false, "adversary construction failed");
    return nullptr;
  };
  specs.push_back(std::move(bad));
  specs.push_back(stochastic_spec("NTG", 3));

  const RunPoolReport report = run_pool(specs, 4);
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_TRUE(report.results[0].ok());
  EXPECT_FALSE(report.results[1].ok());
  EXPECT_NE(report.results[1].error.find("adversary construction failed"),
            std::string::npos);
  EXPECT_TRUE(report.results[2].ok());
  // The pool metrics count the contained failure.
  const std::string csv = obs::to_csv(report.metrics);
  EXPECT_NE(csv.find("aqt_runner_cell_errors_total,,counter,value,1"),
            std::string::npos)
      << csv;
}

TEST(RunPool, ParallelForEachReportsPerIndexErrors) {
  std::atomic<int> ran{0};
  const std::vector<std::string> errors = parallel_for_each(
      5, 3,
      [&](std::size_t i) {  // aqt-audit: allow(AUD010) -- joins on return
        ran.fetch_add(1);
        AQT_REQUIRE(i != 2, "index two is cursed");
      });
  EXPECT_EQ(ran.load(), 5);
  ASSERT_EQ(errors.size(), 5u);
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i == 2)
      EXPECT_NE(errors[i].find("index two is cursed"), std::string::npos);
    else
      EXPECT_TRUE(errors[i].empty()) << i << ": " << errors[i];
  }
}

TEST(EngineSinks, SinksAggregateDrivesObservers) {
  // Observers attach only through EngineConfig::sinks — the deprecated
  // per-sink alias fields were retired (aqt-audit AUD013 keeps them out).
  const Graph g = make_ring(4);
  auto protocol = make_protocol("FIFO", 1);
  RunTraceMeta meta;
  meta.protocol = "FIFO";
  meta.seed = 1;
  std::ostringstream os;
  RunTraceWriter writer(os, g, meta);
  obs::StepProfiler profiler;
  EngineConfig cfg;
  cfg.sinks.trace = &writer;
  cfg.sinks.profile = &profiler;
  Engine eng(g, *protocol, cfg);
  eng.add_initial_packet({0, 1});
  eng.drain(16);
  writer.finish(eng.total_injected(), eng.total_absorbed());
  EXPECT_NE(writer.content_hash(), 0u);
  EXPECT_GT(profiler.report().steps, 0u);
}

}  // namespace
}  // namespace aqt
