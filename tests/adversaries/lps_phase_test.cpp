#include "aqt/adversaries/lps.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"

namespace aqt {
namespace {

LpsConfig small_config(const Rat& r) {
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;  // Unit tests run far below S0.
  return cfg;
}

TEST(LpsConfigTest, DerivedFromRate) {
  const LpsConfig cfg = make_lps_config(Rat(7, 10));
  EXPECT_NEAR(cfg.eps(), 0.2, 1e-12);
  const LpsParams p = lps_params(0.2);
  EXPECT_EQ(cfg.n, p.n);
  EXPECT_EQ(cfg.s0, p.s0);
  EXPECT_TRUE(cfg.enforce_s0);
}

TEST(LpsConfigTest, RejectsOutOfRangeRates) {
  EXPECT_THROW(make_lps_config(Rat(1, 2)), PreconditionError);
  EXPECT_THROW(make_lps_config(Rat(1)), PreconditionError);
  EXPECT_THROW(make_lps_config(Rat(2, 5)), PreconditionError);
}

TEST(LpsSetup, FlatQueuePlacesSingleEdgePackets) {
  const LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets net = build_closed_chain(cfg.n, 2);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_flat_queue(eng, net, 0, 25);
  EXPECT_EQ(eng.queue_size(net.gadgets[0].ingress), 25u);
  EXPECT_EQ(eng.packets_in_flight(), 25u);
}

TEST(LpsSetup, GadgetInvariantMatchesInspection) {
  const LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets net = build_chain(cfg.n, 2);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  const std::int64_t S = 40;
  setup_gadget_invariant(eng, net, 0, S);
  const GadgetInvariantReport rep = inspect_gadget(eng, net, 0);
  EXPECT_EQ(rep.e_total, S);
  EXPECT_EQ(rep.ingress_count, S);
  EXPECT_EQ(rep.empty_e_buffers, 0);
  EXPECT_TRUE(rep.routes_ok());
  EXPECT_EQ(rep.stray_packets, 0);
  EXPECT_EQ(rep.S(), S);
}

TEST(LpsSetup, GadgetInvariantRequiresSAboveN) {
  const LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets net = build_chain(cfg.n, 1);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  EXPECT_THROW(setup_gadget_invariant(eng, net, 0, cfg.n - 1),
               PreconditionError);
}

TEST(LpsSetup, InspectDetectsBrokenRoutes) {
  const LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets net = build_chain(cfg.n, 1);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  // A packet on e_1 whose route stops short of the egress.
  Route wrong = net.e_route(0, 1);
  wrong.pop_back();
  eng.add_initial_packet(wrong);
  const GadgetInvariantReport rep = inspect_gadget(eng, net, 0);
  EXPECT_FALSE(rep.routes_ok());
}

TEST(LpsSetup, InspectCountsStrays) {
  const LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets net = build_chain(cfg.n, 1);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  eng.add_initial_packet({net.gadgets[0].f_path[0]});
  EXPECT_EQ(inspect_gadget(eng, net, 0).stray_packets, 1);
}

TEST(LpsPhaseMechanics, ConfigMustMatchNetwork) {
  LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets net = build_chain(cfg.n + 1, 2);  // Wrong n.
  EXPECT_THROW(LpsBootstrap(net, cfg, 0), PreconditionError);
}

TEST(LpsPhaseMechanics, HandoffNeedsSuccessor) {
  const LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets net = build_chain(cfg.n, 2);
  EXPECT_THROW(LpsHandoff(net, cfg, 1), PreconditionError);
  EXPECT_NO_THROW(LpsHandoff(net, cfg, 0));
}

TEST(LpsPhaseMechanics, StitchNeedsClosedChain) {
  const LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets open = build_chain(cfg.n, 2);
  EXPECT_THROW(LpsStitch(open, cfg), PreconditionError);
}

TEST(LpsPhaseMechanics, BootstrapEndsAtTwoSPlusN) {
  const LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets net = build_chain(cfg.n, 1);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  const std::int64_t S = 60;
  setup_flat_queue(eng, net, 0, 2 * S);
  LpsBootstrap phase(net, cfg, 0);
  eng.step(&phase);
  EXPECT_EQ(phase.measured_s(), S);
  EXPECT_EQ(phase.end_time(), 2 * S + cfg.n);
  EXPECT_FALSE(phase.finished(2 * S + cfg.n));
  EXPECT_TRUE(phase.finished(2 * S + cfg.n + 1));
}

TEST(LpsPhaseMechanics, BootstrapEnforcesS0ByDefault) {
  LpsConfig cfg = make_lps_config(Rat(7, 10));  // enforce_s0 = true.
  const ChainedGadgets net = build_chain(cfg.n, 1);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_flat_queue(eng, net, 0, 10);  // Far below 2*S0.
  LpsBootstrap phase(net, cfg, 0);
  EXPECT_THROW(eng.step(&phase), PreconditionError);
}

TEST(LpsPhaseMechanics, DrainInjectsNothing) {
  const LpsConfig cfg = small_config(Rat(7, 10));
  const ChainedGadgets net = build_chain(cfg.n, 1);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_gadget_invariant(eng, net, 0, 30);
  LpsDrain drain(net, cfg, 0);
  eng.run(&drain, 30 + cfg.n);
  EXPECT_EQ(eng.total_injected(), 60u);  // Only the initial configuration.
  EXPECT_TRUE(drain.finished(eng.now() + 1));
}

}  // namespace
}  // namespace aqt
