#include "aqt/adversaries/bucket.hpp"

#include <gtest/gtest.h>

#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket b(3, Rat(1, 2));
  EXPECT_EQ(b.tokens(0), 3);
  EXPECT_TRUE(b.can_spend(0));
}

TEST(TokenBucket, SpendAndRefill) {
  TokenBucket b(2, Rat(1, 2));
  b.spend(0);
  b.spend(0);
  EXPECT_FALSE(b.can_spend(0));
  EXPECT_FALSE(b.can_spend(1));  // 0.5 tokens.
  EXPECT_TRUE(b.can_spend(2));   // 1 token.
  b.spend(2);
  EXPECT_EQ(b.tokens(2), 0);
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket b(2, Rat(1));
  EXPECT_EQ(b.tokens(100), 2);
}

TEST(TokenBucket, ExactRationalNoDrift) {
  // Rate 1/3: after exactly 3k steps, exactly k tokens accrue.
  TokenBucket b(1000, Rat(1, 3));
  for (int i = 0; i < 999; ++i) b.spend(0);
  EXPECT_EQ(b.tokens(0), 1);
  EXPECT_EQ(b.tokens(299), 100);   // 1 + 299/3 = 100.666 -> floor 100.
  EXPECT_EQ(b.tokens(300), 101);
}

TEST(TokenBucket, RejectsBackwardsTime) {
  TokenBucket b(1, Rat(1, 2));
  (void)b.can_spend(10);
  EXPECT_THROW((void)b.can_spend(9), PreconditionError);
}

TEST(TokenBucket, RejectsBadParameters) {
  EXPECT_THROW(TokenBucket(0, Rat(1, 2)), PreconditionError);
  EXPECT_THROW(TokenBucket(1, Rat(0)), PreconditionError);
}

TEST(BucketCheck, WithinBudgetFeasible) {
  // b=2, r=1/2: interval [1, 3] admits floor(2 + 1.5) = 3.
  RateAudit a(1);
  for (Time t : {1, 2, 3}) a.add_edge(0, t);
  EXPECT_TRUE(check_bucket(a, 2, Rat(1, 2)).ok);
}

TEST(BucketCheck, BurstBeyondBudgetInfeasible) {
  // 4 packets at one step vs floor(2 + 0.5) = 2; the checker reports the
  // earliest witness — the third packet already breaks the budget.
  RateAudit a(1);
  for (int i = 0; i < 4; ++i) a.add_edge(0, 5);
  const auto res = check_bucket(a, 2, Rat(1, 2));
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.count, 3);
  EXPECT_EQ(res.budget, 2);
  EXPECT_EQ(res.t1, 5);
  EXPECT_EQ(res.t2, 5);
}

TEST(BucketCheck, LargerBurstForgivesWindowViolations) {
  // Times {1,2,3} violate (w=6, r=1/3) windows (budget 2) but satisfy
  // (b=2, r=1/3) buckets (budget floor(2+1)=3).
  RateAudit a(1);
  for (Time t : {1, 2, 3}) a.add_edge(0, t);
  EXPECT_FALSE(check_window(a, 6, Rat(1, 3)).ok);
  EXPECT_TRUE(check_bucket(a, 2, Rat(1, 3)).ok);
}

TEST(BucketCheck, AgreesWithBruteForce) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    RateAudit a(1);
    std::vector<Time> times;
    const int count = static_cast<int>(rng.range(1, 10));
    for (int i = 0; i < count; ++i) times.push_back(rng.range(1, 15));
    std::sort(times.begin(), times.end());
    for (Time t : times) a.add_edge(0, t);
    const std::int64_t burst = rng.range(1, 3);
    const Rat r(static_cast<std::int64_t>(rng.range(1, 9)), 10);

    bool brute_ok = true;
    for (std::size_t i = 0; i < times.size(); ++i)
      for (std::size_t j = i; j < times.size(); ++j) {
        const std::int64_t budget =
            (Rat(burst) + r * Rat(times[j] - times[i] + 1)).floor();
        if (static_cast<std::int64_t>(j - i + 1) > budget) brute_ok = false;
      }
    EXPECT_EQ(check_bucket(a, burst, r).ok, brute_ok) << "trial " << trial;
  }
}

TEST(BucketAdversary, TrafficIsBucketFeasibleByConstruction) {
  const Graph g = make_grid(4, 4);
  BucketAdversary::Config cfg;
  cfg.burst = 3;
  cfg.rate = Rat(1, 5);
  cfg.max_route_len = 3;
  cfg.seed = 9;
  BucketAdversary adv(g, cfg);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(g, fifo, ec);
  eng.run(&adv, 2000);
  eng.finalize_audit();
  const auto res = check_bucket(eng.audit(), cfg.burst, cfg.rate);
  EXPECT_TRUE(res.ok) << res.describe(g);
  EXPECT_GT(adv.injected(), 200u);
}

TEST(BucketAdversary, BurstAllowsOpeningPileup) {
  // With burst b, the very first step can put b packets on one edge —
  // which no (w, r) generator with floor(w*r) < b could.
  const Graph g = make_line(2);
  BucketAdversary::Config cfg;
  cfg.burst = 4;
  cfg.rate = Rat(1, 10);
  cfg.max_route_len = 1;
  cfg.seed = 1;
  cfg.attempts_per_step = 20;
  BucketAdversary adv(g, cfg);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  eng.step(&adv);
  EXPECT_GE(eng.total_injected(), 4u);
}

TEST(BucketAdversary, DeterministicForSeed) {
  const Graph g = make_grid(3, 3);
  auto run = [&](std::uint64_t seed) {
    BucketAdversary::Config cfg;
    cfg.burst = 2;
    cfg.rate = Rat(1, 4);
    cfg.max_route_len = 3;
    cfg.seed = seed;
    BucketAdversary adv(g, cfg);
    FifoProtocol fifo;
    Engine eng(g, fifo);
    eng.run(&adv, 500);
    return eng.total_injected();
  };
  EXPECT_EQ(run(4), run(4));
  EXPECT_NE(run(4), run(5));
}

TEST(BucketAdversary, StabilityBoundHoldsAtLowRate) {
  // (b, r) traffic with r <= 1/(d+1) still keeps buffers small in practice
  // (the Theorem 4.1 residence bound is stated for (w, r) adversaries, but
  // bounded-burst traffic at low rate behaves comparably: residence stays
  // within b + ceil that the burst can stack).
  const Graph g = make_grid(4, 4);
  BucketAdversary::Config cfg;
  cfg.burst = 2;
  cfg.rate = Rat(1, 5);
  cfg.max_route_len = 4;
  cfg.seed = 21;
  BucketAdversary adv(g, cfg);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  eng.run(&adv, 4000);
  EXPECT_LE(eng.metrics().max_queue_global(), 8u);
}

}  // namespace
}  // namespace aqt
