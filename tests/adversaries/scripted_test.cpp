#include "aqt/adversaries/scripted.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"

namespace aqt {
namespace {

class ScriptedTest : public ::testing::Test {
 protected:
  ScriptedTest() : g_(make_line(3)) {}
  Route edge(const char* name) { return {g_.edge_by_name(name)}; }

  Graph g_;
  FifoProtocol fifo_;
};

TEST_F(ScriptedTest, InjectsAtScheduledSteps) {
  Engine eng(g_, fifo_);
  ScriptedAdversary adv;
  adv.inject_at(2, edge("l0"));
  adv.inject_at(2, edge("l1"));
  adv.inject_at(4, edge("l2"));
  eng.step(&adv);
  EXPECT_EQ(eng.total_injected(), 0u);
  eng.step(&adv);
  EXPECT_EQ(eng.total_injected(), 2u);
  eng.step(&adv);
  eng.step(&adv);
  EXPECT_EQ(eng.total_injected(), 3u);
}

TEST_F(ScriptedTest, FinishedAfterLastEvent) {
  ScriptedAdversary adv;
  adv.inject_at(5, edge("l0"));
  EXPECT_FALSE(adv.finished(5));
  EXPECT_TRUE(adv.finished(6));
}

TEST_F(ScriptedTest, EmptyScriptIsImmediatelyFinished) {
  ScriptedAdversary adv;
  EXPECT_TRUE(adv.finished(1));
}

TEST_F(ScriptedTest, RejectsPreStartEvents) {
  ScriptedAdversary adv;
  EXPECT_THROW(adv.inject_at(0, edge("l0")), PreconditionError);
  EXPECT_THROW(adv.reroute_at(0, 0, {}), PreconditionError);
}

TEST_F(ScriptedTest, StreamAdversaryPacesInjections) {
  Engine eng(g_, fifo_);
  StreamAdversary adv;
  adv.add_stream(edge("l0"), Rat(1, 2), 1, 5);
  eng.run(&adv, 10);
  EXPECT_EQ(eng.total_injected(), 5u);
  EXPECT_TRUE(adv.finished(11));
}

TEST_F(ScriptedTest, StreamAdversaryMultipleStreams) {
  Engine eng(g_, fifo_);
  StreamAdversary adv;
  adv.add_stream(edge("l0"), Rat(1, 2), 1, 3);
  adv.add_stream(edge("l2"), Rat(1, 3), 1, 2);
  eng.run(&adv, 12);
  EXPECT_EQ(eng.total_injected(), 5u);
}

TEST_F(ScriptedTest, StreamAdversaryZeroTotalFinishes) {
  StreamAdversary adv;
  adv.add_stream(edge("l0"), Rat(1, 2), 1, 0);
  EXPECT_TRUE(adv.finished(1));
}

TEST_F(ScriptedTest, SequenceRunsStagesBackToBack) {
  Engine eng(g_, fifo_);
  SequenceAdversary seq;
  auto first = std::make_unique<ScriptedAdversary>();
  first->inject_at(1, edge("l0"), /*tag=*/1);
  auto second = std::make_unique<ScriptedAdversary>();
  second->inject_at(3, edge("l0"), /*tag=*/2);
  seq.append(std::move(first));
  seq.append(std::move(second));

  eng.step(&seq);
  EXPECT_EQ(eng.total_injected(), 1u);
  EXPECT_EQ(seq.stage(), 0u);
  eng.step(&seq);  // Stage 0 finished; stage 1 takes over.
  EXPECT_EQ(seq.stage(), 1u);
  eng.step(&seq);
  EXPECT_EQ(eng.total_injected(), 2u);
  eng.step(&seq);
  EXPECT_TRUE(seq.finished(eng.now()));
}

TEST_F(ScriptedTest, SequenceSkipsAlreadyFinishedStages) {
  Engine eng(g_, fifo_);
  SequenceAdversary seq;
  seq.append(std::make_unique<ScriptedAdversary>());  // Empty: finished.
  auto active = std::make_unique<ScriptedAdversary>();
  active->inject_at(1, edge("l1"));
  seq.append(std::move(active));
  eng.step(&seq);
  EXPECT_EQ(eng.total_injected(), 1u);
}

TEST_F(ScriptedTest, SequenceNullStageThrows) {
  SequenceAdversary seq;
  EXPECT_THROW(seq.append(nullptr), PreconditionError);
}

TEST_F(ScriptedTest, DelayShiftsInnerClock) {
  Engine eng(g_, fifo_);
  auto inner = std::make_unique<ScriptedAdversary>();
  inner->inject_at(2, edge("l0"));
  DelayAdversary delayed(std::move(inner), /*delay=*/5);
  eng.run(&delayed, 6);
  EXPECT_EQ(eng.total_injected(), 0u);  // Inner step 2 = outer step 7.
  eng.step(&delayed);
  EXPECT_EQ(eng.total_injected(), 1u);
  EXPECT_TRUE(delayed.finished(8));
  EXPECT_FALSE(delayed.finished(7));
}

TEST_F(ScriptedTest, DelayZeroIsTransparent) {
  Engine eng(g_, fifo_);
  auto inner = std::make_unique<ScriptedAdversary>();
  inner->inject_at(1, edge("l1"));
  DelayAdversary delayed(std::move(inner), 0);
  eng.step(&delayed);
  EXPECT_EQ(eng.total_injected(), 1u);
}

TEST_F(ScriptedTest, DelayValidatesArguments) {
  EXPECT_THROW(DelayAdversary(nullptr, 1), PreconditionError);
  EXPECT_THROW(DelayAdversary(std::make_unique<ScriptedAdversary>(), -1),
               PreconditionError);
}

TEST_F(ScriptedTest, MergeRunsMembersTogether) {
  Engine eng(g_, fifo_);
  MergeAdversary merge;
  auto a = std::make_unique<ScriptedAdversary>();
  a->inject_at(1, edge("l0"), 1);
  auto b = std::make_unique<ScriptedAdversary>();
  b->inject_at(1, edge("l1"), 2);
  b->inject_at(3, edge("l2"), 3);
  merge.add(std::move(a));
  merge.add(std::move(b));
  eng.step(&merge);
  EXPECT_EQ(eng.total_injected(), 2u);
  EXPECT_FALSE(merge.finished(2));
  eng.step(&merge);
  eng.step(&merge);
  EXPECT_EQ(eng.total_injected(), 3u);
  EXPECT_TRUE(merge.finished(4));
}

TEST_F(ScriptedTest, MergePreservesMemberOrder) {
  Engine eng(g_, fifo_);
  MergeAdversary merge;
  auto a = std::make_unique<ScriptedAdversary>();
  a->inject_at(1, edge("l0"), 1);
  auto b = std::make_unique<ScriptedAdversary>();
  b->inject_at(1, edge("l0"), 2);
  merge.add(std::move(a));
  merge.add(std::move(b));
  eng.step(&merge);
  // Member a's packet was sequenced first: FIFO front has tag 1.
  EXPECT_EQ(eng.packet_meta(eng.buffer(g_.edge_by_name("l0")).front().packet).tag,
            1u);
}

TEST_F(ScriptedTest, MergeRejectsNull) {
  MergeAdversary merge;
  EXPECT_THROW(merge.add(nullptr), PreconditionError);
}

TEST_F(ScriptedTest, CombinatorsCompose) {
  // Two convoys on disjoint edges, one delayed: merged traffic stays
  // window-feasible per edge.
  Engine eng(g_, fifo_);
  MergeAdversary merge;
  auto c1 = std::make_unique<ScriptedAdversary>();
  auto c2 = std::make_unique<ScriptedAdversary>();
  for (Time t = 1; t <= 20; t += 4) {
    c1->inject_at(t, edge("l0"));
    c2->inject_at(t, edge("l2"));
  }
  merge.add(std::move(c1));
  merge.add(std::make_unique<DelayAdversary>(std::move(c2), 2));
  eng.run(&merge, 30);
  EXPECT_EQ(eng.total_injected(), 10u);
  EXPECT_EQ(eng.packets_in_flight(), 0u);
}

TEST_F(ScriptedTest, NullAdversaryDoesNothing) {
  Engine eng(g_, fifo_);
  NullAdversary adv;
  eng.run(&adv, 5);
  EXPECT_EQ(eng.total_injected(), 0u);
  EXPECT_TRUE(adv.finished(1));
}

}  // namespace
}  // namespace aqt
