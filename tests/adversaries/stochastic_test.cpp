#include "aqt/adversaries/stochastic.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"

namespace aqt {
namespace {

StochasticConfig base_config() {
  StochasticConfig cfg;
  cfg.w = 12;
  cfg.r = Rat(1, 4);
  cfg.max_route_len = 3;
  cfg.seed = 7;
  cfg.attempts_per_step = 4;
  return cfg;
}

TEST(Stochastic, GeneratedTrafficIsWindowFeasible) {
  const Graph g = make_grid(4, 4);
  const StochasticConfig cfg = base_config();
  StochasticAdversary adv(g, cfg);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(g, fifo, ec);
  eng.run(&adv, 400);
  eng.finalize_audit();
  const auto res = check_window(eng.audit(), cfg.w, cfg.r);
  EXPECT_TRUE(res.ok) << res.describe(g);
  EXPECT_GT(adv.injected(), 100u);
}

TEST(Stochastic, RoutesAreSimpleAndBounded) {
  const Graph g = make_grid(4, 4);
  StochasticConfig cfg = base_config();
  cfg.max_route_len = 4;
  StochasticAdversary adv(g, cfg);
  FifoProtocol fifo;
  Engine eng(g, fifo);  // validate_routes on: throws on non-simple routes.
  EXPECT_NO_THROW(eng.run(&adv, 300));
  EXPECT_LE(adv.longest_route(), 4);
  EXPECT_GE(adv.longest_route(), 1);
}

TEST(Stochastic, DeterministicForSeed) {
  const Graph g = make_grid(3, 3);
  auto run = [&](std::uint64_t seed) {
    StochasticConfig cfg = base_config();
    cfg.seed = seed;
    StochasticAdversary adv(g, cfg);
    FifoProtocol fifo;
    Engine eng(g, fifo);
    eng.run(&adv, 200);
    return eng.total_injected();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Stochastic, HotspotModeRoutesThroughOneEdge) {
  const Graph g = make_grid(3, 3);
  StochasticConfig cfg = base_config();
  cfg.mode = StochasticConfig::Mode::kHotspot;
  StochasticAdversary adv(g, cfg);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(g, fifo, ec);
  eng.run(&adv, 300);
  eng.finalize_audit();
  // One edge carries every injection.
  bool some_edge_has_all = false;
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    if (eng.audit().times(e).size() == adv.injected())
      some_edge_has_all = true;
  EXPECT_TRUE(some_edge_has_all);
  EXPECT_GT(adv.injected(), 0u);
}

TEST(Stochastic, ZeroBudgetThrows) {
  const Graph g = make_line(3);
  StochasticConfig cfg = base_config();
  cfg.w = 2;
  cfg.r = Rat(1, 4);  // floor(2/4) = 0.
  EXPECT_THROW(StochasticAdversary(g, cfg), PreconditionError);
}

TEST(Convoy, BurstPatternIsWindowFeasible) {
  const Graph g = make_line(5);
  Route path;
  for (EdgeId e = 0; e < 5; ++e) path.push_back(e);
  const std::int64_t w = 10;
  const Rat r(3, 10);
  ConvoyAdversary adv(path, w, r);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(g, fifo, ec);
  eng.run(&adv, 200);
  eng.finalize_audit();
  EXPECT_TRUE(check_window(eng.audit(), w, r).ok);
  // 3 per aligned window over 200 steps = 60 packets.
  EXPECT_EQ(eng.total_injected(), 60u);
}

TEST(Convoy, UsesFullBudgetEveryWindow) {
  const Graph g = make_line(2);
  ConvoyAdversary adv({0, 1}, /*w=*/4, Rat(1, 2));
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(g, fifo, ec);
  eng.run(&adv, 40);
  eng.finalize_audit();
  // floor(4 * 1/2) = 2 per window, 10 windows.
  EXPECT_EQ(eng.total_injected(), 20u);
  EXPECT_TRUE(check_window(eng.audit(), 4, Rat(1, 2)).ok);
}

TEST(Convoy, EmptyPathThrows) {
  EXPECT_THROW(ConvoyAdversary({}, 4, Rat(1, 2)), PreconditionError);
  EXPECT_THROW(ConvoyAdversary({0}, 0, Rat(1, 2)), PreconditionError);
}

}  // namespace
}  // namespace aqt
