#include "aqt/adversaries/pacer.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include "aqt/core/rate_check.hpp"

namespace aqt {
namespace {

TEST(Pacer, CumulativeFloorQuota) {
  RatePacer p(Rat(3, 5), /*start=*/1, /*total=*/-1);
  std::int64_t cum = 0;
  for (Time t = 1; t <= 20; ++t) {
    cum += p.due(t);
    EXPECT_EQ(cum, (3 * t) / 5) << t;
  }
}

TEST(Pacer, NothingBeforeStart) {
  RatePacer p(Rat(1, 2), /*start=*/10, /*total=*/5);
  for (Time t = 1; t < 10; ++t) EXPECT_EQ(p.due(t), 0) << t;
  EXPECT_EQ(p.emitted(), 0);
}

TEST(Pacer, TotalCapRespected) {
  RatePacer p(Rat(1, 1), /*start=*/1, /*total=*/3);
  std::int64_t cum = 0;
  for (Time t = 1; t <= 10; ++t) cum += p.due(t);
  EXPECT_EQ(cum, 3);
  EXPECT_TRUE(p.exhausted());
}

TEST(Pacer, UnboundedNeverExhausts) {
  RatePacer p(Rat(1, 2), 1, -1);
  (void)p.due(100);
  EXPECT_FALSE(p.exhausted());
  EXPECT_EQ(p.emitted(), 50);
}

TEST(Pacer, ZeroTotalImmediatelyExhausted) {
  RatePacer p(Rat(1, 2), 1, 0);
  EXPECT_TRUE(p.exhausted());
  EXPECT_EQ(p.due(5), 0);
}

TEST(Pacer, SkippingStepsCatchesUp) {
  // due() may be called sparsely; the cumulative quota is preserved.
  RatePacer p(Rat(3, 5), 1, -1);
  EXPECT_EQ(p.due(10), 6);  // floor(30/5).
  EXPECT_EQ(p.due(11), 0);  // floor(33/5) = 6.
  EXPECT_EQ(p.due(20), 6);  // floor(60/5) - 6.
}

TEST(Pacer, RateAboveOneEmitsBursts) {
  RatePacer p(Rat(5, 2), 1, -1);
  EXPECT_EQ(p.due(1), 2);
  EXPECT_EQ(p.due(2), 3);
  EXPECT_EQ(p.due(3), 2);
}

TEST(Pacer, CompletionTime) {
  // total/r steps, rounded up: 7 packets at 3/5 -> ceil(35/3) = 12 steps.
  RatePacer p(Rat(3, 5), 1, 7);
  EXPECT_EQ(p.completion_time(), 12);
  std::int64_t cum = 0;
  for (Time t = 1; t <= 12; ++t) cum += p.due(t);
  EXPECT_EQ(cum, 7);
  // And it was not complete one step earlier.
  RatePacer q(Rat(3, 5), 1, 7);
  cum = 0;
  for (Time t = 1; t <= 11; ++t) cum += q.due(t);
  EXPECT_LT(cum, 7);
}

TEST(Pacer, CompletionTimeZeroTotal) {
  RatePacer p(Rat(1, 2), 5, 0);
  EXPECT_EQ(p.completion_time(), 5);
}

TEST(Pacer, CompletionTimePreconditions) {
  RatePacer unbounded(Rat(1, 2), 1, -1);
  EXPECT_THROW((void)unbounded.completion_time(), PreconditionError);
  RatePacer zero_rate(Rat(0), 1, 3);
  EXPECT_THROW((void)zero_rate.completion_time(), PreconditionError);
}

TEST(Pacer, NegativeRateThrows) {
  EXPECT_THROW(RatePacer(Rat(-1, 2), 1, 1), PreconditionError);
}

// Property: a paced stream is rate-feasible; two disjoint streams compose.
class PacerFeasibility : public ::testing::TestWithParam<Rat> {};

TEST_P(PacerFeasibility, SingleStreamIsRateFeasible) {
  const Rat r = GetParam();
  RatePacer p(r, 1, -1);
  RateAudit audit(1);
  for (Time t = 1; t <= 500; ++t) {
    const std::int64_t k = p.due(t);
    for (std::int64_t i = 0; i < k; ++i) audit.add_edge(0, t);
  }
  EXPECT_TRUE(check_rate_r(audit, r).ok) << r;
}

TEST_P(PacerFeasibility, BackToBackStreamsCompose) {
  const Rat r = GetParam();
  RateAudit audit(1);
  RatePacer a(r, 1, 40);
  RatePacer b(r, a.completion_time() + 1, 40);
  const Time horizon = b.completion_time() + 5;
  for (Time t = 1; t <= horizon; ++t) {
    for (std::int64_t i = 0; i < a.due(t); ++i) audit.add_edge(0, t);
    for (std::int64_t i = 0; i < b.due(t); ++i) audit.add_edge(0, t);
  }
  EXPECT_EQ(a.emitted() + b.emitted(), 80);
  EXPECT_TRUE(check_rate_r(audit, r).ok) << r;
}

INSTANTIATE_TEST_SUITE_P(Rates, PacerFeasibility,
                         ::testing::Values(Rat(1, 2), Rat(51, 100),
                                           Rat(3, 5), Rat(7, 10), Rat(2, 3),
                                           Rat(9, 10), Rat(1, 7)));

}  // namespace
}  // namespace aqt
