#include "aqt/experiments/sweep.hpp"

#include <gtest/gtest.h>

#include "aqt/analysis/bounds.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

SweepConfig small_config() {
  SweepConfig cfg;
  cfg.protocols = {"FIFO", "NTG"};
  cfg.topologies = {{"grid3x3", [] { return make_grid(3, 3); }},
                    {"ring8", [] { return make_ring(8); }}};
  cfg.seeds = {1, 2};
  cfg.steps = 400;
  cfg.traffic.w = 12;
  cfg.traffic.r = Rat(1, 4);
  cfg.traffic.max_route_len = 3;
  return cfg;
}

TEST(Sweep, ProducesOneCellPerCombination) {
  const auto cells = run_sweep(small_config());
  EXPECT_EQ(cells.size(), 2u * 2u * 2u);
  // Every cell actually ran traffic and stayed feasible.
  for (const auto& c : cells) {
    EXPECT_GT(c.injected, 0u) << c.protocol << "/" << c.topology;
    EXPECT_TRUE(c.traffic_feasible);
    EXPECT_LE(c.longest_route, 3);
  }
}

TEST(Sweep, DeterministicAcrossRuns) {
  const auto a = run_sweep(small_config());
  const auto b = run_sweep(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].injected, b[i].injected) << i;
    EXPECT_EQ(a[i].max_residence, b[i].max_residence) << i;
    EXPECT_EQ(a[i].max_queue, b[i].max_queue) << i;
  }
}

TEST(Sweep, AggregateGroupsByProtocolTopology) {
  const auto cells = run_sweep(small_config());
  const auto aggs = aggregate_sweep(cells);
  EXPECT_EQ(aggs.size(), 4u);  // 2 protocols x 2 topologies.
  for (const auto& a : aggs) {
    EXPECT_EQ(a.residence.count(), 2u);  // 2 seeds.
    EXPECT_GE(a.worst_residence,
              static_cast<Time>(a.residence.mean() - 1e-9));
    EXPECT_TRUE(a.all_feasible);
  }
}

TEST(Sweep, WorstResidenceIsMaxOverCells) {
  const auto cells = run_sweep(small_config());
  Time expected = 0;
  for (const auto& c : cells)
    expected = std::max(expected, c.max_residence);
  EXPECT_EQ(worst_residence(cells), expected);
}

TEST(Sweep, RespectsTheorem41AtThreshold) {
  SweepConfig cfg = small_config();
  const std::int64_t bound =
      residence_bound(cfg.traffic.w, cfg.traffic.r);
  const auto cells = run_sweep(cfg);
  EXPECT_LE(worst_residence(cells), bound);
}

TEST(Sweep, SetupHookAppliesInitialConfiguration) {
  SweepConfig cfg = small_config();
  cfg.protocols = {"FIFO"};
  cfg.topologies = {{"grid3x3", [] { return make_grid(3, 3); }}};
  cfg.seeds = {1};
  cfg.setup = [](Engine& eng, const Graph& g) {
    for (int i = 0; i < 25; ++i)
      eng.add_initial_packet({g.edge_by_name("h0_0")});
  };
  const auto cells = run_sweep(cfg);
  ASSERT_EQ(cells.size(), 1u);
  // The initial pile forces a long residence (~25 steps for the last one).
  EXPECT_GE(cells[0].max_residence, 20);
  // Initial packets count as injected.
  EXPECT_GE(cells[0].injected, 25u);
}

TEST(Sweep, EmptyConfigurationThrows) {
  SweepConfig cfg = small_config();
  cfg.protocols.clear();
  EXPECT_THROW((void)run_sweep(cfg), PreconditionError);
  cfg = small_config();
  cfg.seeds.clear();
  EXPECT_THROW((void)run_sweep(cfg), PreconditionError);
  cfg = small_config();
  cfg.topologies.clear();
  EXPECT_THROW((void)run_sweep(cfg), PreconditionError);
}

TEST(Sweep, ParallelMatchesSerial) {
  // Cells are independent; the parallel runner must produce bit-identical
  // results in the same deterministic order.
  const auto serial = run_sweep(small_config(), 1);
  const auto parallel = run_sweep(small_config(), 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].protocol, parallel[i].protocol) << i;
    EXPECT_EQ(serial[i].topology, parallel[i].topology) << i;
    EXPECT_EQ(serial[i].seed, parallel[i].seed) << i;
    EXPECT_EQ(serial[i].injected, parallel[i].injected) << i;
    EXPECT_EQ(serial[i].max_residence, parallel[i].max_residence) << i;
    EXPECT_EQ(serial[i].max_queue, parallel[i].max_queue) << i;
  }
}

TEST(Sweep, ZeroThreadsUsesHardwareConcurrency) {
  // Just exercises the threads == 0 path.
  const auto cells = run_sweep(small_config(), 0);
  EXPECT_EQ(cells.size(), 8u);
}

TEST(Sweep, AuditCanBeDisabled) {
  SweepConfig cfg = small_config();
  cfg.audit = false;
  const auto cells = run_sweep(cfg);
  for (const auto& c : cells) EXPECT_TRUE(c.traffic_feasible);  // Default.
}

TEST(Sweep, PerCellSeedOverridesTrafficSeed) {
  // SweepConfig::traffic.seed is a placeholder: every cell runs with its
  // entry from `seeds`, so two configs differing ONLY in traffic.seed must
  // produce identical sweeps (the documented seed semantics).
  SweepConfig a = small_config();
  a.traffic.seed = 12345;
  SweepConfig b = small_config();
  b.traffic.seed = 99999;
  const auto cells_a = run_sweep(a);
  const auto cells_b = run_sweep(b);
  ASSERT_EQ(cells_a.size(), cells_b.size());
  for (std::size_t i = 0; i < cells_a.size(); ++i) {
    EXPECT_EQ(cells_a[i].seed, cells_b[i].seed) << i;
    EXPECT_EQ(cells_a[i].injected, cells_b[i].injected) << i;
    EXPECT_EQ(cells_a[i].max_queue, cells_b[i].max_queue) << i;
    EXPECT_EQ(cells_a[i].max_residence, cells_b[i].max_residence) << i;
    EXPECT_EQ(cells_a[i].longest_route, cells_b[i].longest_route) << i;
  }
}

TEST(Sweep, SweepSpecsExposeCellsInDeterministicOrder) {
  const SweepConfig cfg = small_config();
  const std::vector<RunSpec> specs = sweep_specs(cfg);
  ASSERT_EQ(specs.size(), 8u);
  // protocol-major, then topology, then seed — the documented cell order.
  EXPECT_EQ(specs[0].protocol, "FIFO");
  EXPECT_EQ(specs[0].topology.name, "grid3x3");
  EXPECT_EQ(specs[0].seed, 1u);
  EXPECT_EQ(specs[1].seed, 2u);
  EXPECT_EQ(specs[2].topology.name, "ring8");
  EXPECT_EQ(specs[4].protocol, "NTG");
  for (const RunSpec& s : specs) EXPECT_EQ(s.steps, cfg.steps);
}

}  // namespace
}  // namespace aqt
