// Cross-cutting property tests: invariants that must hold for every
// protocol, topology, and adversary combination.
#include <gtest/gtest.h>

#include <memory>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {
namespace {

struct Combo {
  std::string protocol;
  std::uint64_t seed;
};

class EngineProperties : public ::testing::TestWithParam<Combo> {};

StochasticConfig traffic_config(std::uint64_t seed) {
  StochasticConfig cfg;
  cfg.w = 10;
  cfg.r = Rat(3, 10);
  cfg.max_route_len = 4;
  cfg.seed = seed;
  cfg.attempts_per_step = 3;
  return cfg;
}

TEST_P(EngineProperties, PacketConservation) {
  const Combo combo = GetParam();
  const Graph g = make_grid(4, 4);
  auto protocol = make_protocol(combo.protocol, combo.seed);
  Engine eng(g, *protocol);
  StochasticAdversary adv(g, traffic_config(combo.seed));
  eng.run(&adv, 1500);
  EXPECT_EQ(eng.total_injected(),
            eng.total_absorbed() + eng.packets_in_flight());
}

TEST_P(EngineProperties, GreedySendsFromEveryNonemptyBuffer) {
  const Combo combo = GetParam();
  const Graph g = make_grid(3, 3);
  auto protocol = make_protocol(combo.protocol, combo.seed);
  Engine eng(g, *protocol);
  StochasticAdversary adv(g, traffic_config(combo.seed));
  for (int t = 0; t < 400; ++t) {
    std::size_t nonempty = 0;
    for (EdgeId e = 0; e < g.edge_count(); ++e)
      if (!eng.buffer(e).empty()) ++nonempty;
    const std::uint64_t before = eng.metrics().sends();
    eng.step(&adv);
    EXPECT_EQ(eng.metrics().sends() - before, nonempty) << "t=" << t;
  }
}

TEST_P(EngineProperties, DeterministicReplay) {
  const Combo combo = GetParam();
  auto run = [&]() {
    const Graph g = make_grid(3, 4);
    auto protocol = make_protocol(combo.protocol, combo.seed);
    Engine eng(g, *protocol);
    StochasticAdversary adv(g, traffic_config(combo.seed));
    eng.run(&adv, 800);
    return std::make_tuple(eng.total_injected(), eng.total_absorbed(),
                           eng.metrics().max_queue_global(),
                           eng.metrics().max_residence_global(),
                           eng.metrics().sends());
  };
  EXPECT_EQ(run(), run());
}

TEST_P(EngineProperties, AbsorbedLatencyIsAtLeastRouteLengthLowerBound) {
  const Combo combo = GetParam();
  const Graph g = make_line(6);
  auto protocol = make_protocol(combo.protocol, combo.seed);
  Engine eng(g, *protocol);
  // One packet per step along the full line: latency >= 6 always.
  StochasticConfig cfg;
  cfg.w = 6;
  cfg.r = Rat(1, 6);
  cfg.max_route_len = 6;
  cfg.seed = combo.seed;
  StochasticAdversary adv(g, cfg);
  eng.run(&adv, 1000);
  if (eng.total_absorbed() > 0) {
    EXPECT_GE(eng.metrics().mean_latency(), 1.0);
    EXPECT_GE(eng.metrics().max_latency(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolSweep, EngineProperties,
    ::testing::Values(Combo{"FIFO", 1}, Combo{"LIFO", 2}, Combo{"LIS", 3},
                      Combo{"NIS", 4}, Combo{"FTG", 5}, Combo{"NTG", 6},
                      Combo{"FFS", 7}, Combo{"NTS", 8}, Combo{"RANDOM", 9}),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return info.param.protocol;
    });

TEST(FifoOrderProperty, GlobalFifoOrderPerBuffer) {
  // In a FIFO run, the sequence of arrival_seq values popped from any given
  // buffer must be increasing.  Exercise via a contended hotspot.
  const Graph g = make_grid(3, 3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  StochasticConfig cfg;
  cfg.w = 8;
  cfg.r = Rat(3, 8);
  cfg.max_route_len = 3;
  cfg.seed = 77;
  cfg.mode = StochasticConfig::Mode::kHotspot;
  StochasticAdversary adv(g, cfg);
  std::vector<std::int64_t> last_seq(g.edge_count(), -1);
  for (int t = 0; t < 600; ++t) {
    // Record the head of each buffer, then step; the popped packet is the
    // head we recorded.
    std::vector<std::pair<EdgeId, std::int64_t>> heads;
    for (EdgeId e = 0; e < g.edge_count(); ++e)
      if (!eng.buffer(e).empty())
        heads.emplace_back(
            e, static_cast<std::int64_t>(eng.buffer(e).front().seq));
    for (const auto& [e, seq] : heads) {
      EXPECT_GT(seq, last_seq[e]) << "edge " << e << " t " << t;
      last_seq[e] = seq;
    }
    eng.step(&adv);
  }
}

TEST(RandomizedStress, ManySmallRandomRunsConserveAndTerminate) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t nodes = rng.range(6, 16);
    Graph g = make_random_dag(nodes, 0.2, rng);
    const std::string proto =
        protocol_names()[rng.below(protocol_names().size())];
    auto protocol = make_protocol(proto, rng.next());
    Engine eng(g, *protocol);
    StochasticConfig cfg;
    cfg.w = 8;
    cfg.r = Rat(1, 4);
    cfg.max_route_len = 3;
    cfg.seed = rng.next();
    StochasticAdversary adv(g, cfg);
    eng.run(&adv, 400);
    EXPECT_EQ(eng.total_injected(),
              eng.total_absorbed() + eng.packets_in_flight())
        << "trial " << trial << " proto " << proto;
    // Drain: with no further injections every packet leaves within
    // (#live * d) steps.
    const Time drain_cap =
        static_cast<Time>(eng.packets_in_flight() + 1) * 4;
    eng.run(nullptr, drain_cap);
    EXPECT_EQ(eng.packets_in_flight(), 0u) << "trial " << trial;
  }
}

TEST(AuditProperty, StochasticTrafficNeverViolatesItsWindow) {
  // Double-check the budget enforcement across seeds and modes.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (const auto mode : {StochasticConfig::Mode::kUniform,
                            StochasticConfig::Mode::kHotspot}) {
      const Graph g = make_grid(4, 4);
      FifoProtocol fifo;
      EngineConfig ec;
      ec.audit_rates = true;
      Engine eng(g, fifo, ec);
      StochasticConfig cfg = traffic_config(seed);
      cfg.mode = mode;
      StochasticAdversary adv(g, cfg);
      eng.run(&adv, 600);
      eng.finalize_audit();
      EXPECT_TRUE(check_window(eng.audit(), cfg.w, cfg.r).ok)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace aqt
