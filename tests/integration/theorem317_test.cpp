// Integration tests for Theorem 3.17: FIFO is unstable at rate 1/2 + eps.
// The full iterative adversary (bootstrap, hand-off cascade, drain, stitch)
// multiplies the flat ingress queue every outer iteration.
#include <gtest/gtest.h>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/core/stability.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

LpsConfig test_config(const Rat& r) {
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  return cfg;
}

struct LoopRun {
  std::vector<LpsIterationRecord> history;
  Time steps = 0;
  bool rate_feasible = true;
  std::uint64_t max_queue = 0;
};

LoopRun run_loop(const Rat& r, std::int64_t M, std::int64_t s_star,
                 std::int64_t iterations, bool audit) {
  const LpsConfig cfg = test_config(r);
  const ChainedGadgets net = build_closed_chain(cfg.n, M);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = audit;
  Engine eng(net.graph, fifo, ec);
  setup_flat_queue(eng, net, 0, s_star);
  LpsAdversary adv(net, cfg, iterations);
  while (!adv.finished(eng.now() + 1)) eng.step(&adv);
  LoopRun run;
  run.history = adv.history();
  run.steps = eng.now();
  run.max_queue = eng.metrics().max_queue_global();
  if (audit) {
    eng.finalize_audit();
    run.rate_feasible = check_rate_r(eng.audit(), r).ok;
  }
  return run;
}

TEST(Theorem317, QueueGrowsEveryIterationWithSufficientM) {
  // At r = 7/10 with n = 9, the exact per-iteration growth
  // (1-R_n) * (2(1-R_n))^(M-1) * r^3 exceeds 1 from M = 7; M = 8 gives
  // comfortable ~2x growth per iteration.
  const Rat r(7, 10);
  ASSERT_GT(lps_measured_iteration_growth(0.7, 9, 8), 1.5);
  const LoopRun run = run_loop(r, /*M=*/8, /*s_star=*/1200,
                               /*iterations=*/3, /*audit=*/false);
  ASSERT_EQ(run.history.size(), 3u);
  for (const auto& rec : run.history) {
    EXPECT_GT(rec.s_end, rec.s_start) << "iteration " << rec.iteration;
  }
  // Unbounded growth: the final queue dwarfs the initial one.
  EXPECT_GT(run.history.back().s_end, 4 * run.history.front().s_start);
}

TEST(Theorem317, GrowthMatchesExactPrediction) {
  const Rat r(7, 10);
  const LoopRun run = run_loop(r, 8, 1600, 2, /*audit=*/false);
  const double predicted = lps_measured_iteration_growth(0.7, 9, 8);
  for (const auto& rec : run.history) {
    const double measured = static_cast<double>(rec.s_end) /
                            static_cast<double>(rec.s_start);
    EXPECT_NEAR(measured, predicted, 0.30 * predicted)
        << "iteration " << rec.iteration;
  }
}

TEST(Theorem317, CascadeCompoundsAcrossGadgets) {
  const LoopRun run = run_loop(Rat(7, 10), 6, 1200, 1, /*audit=*/false);
  ASSERT_EQ(run.history.size(), 1u);
  const auto& cascade = run.history.front().s_cascade;
  ASSERT_EQ(cascade.size(), 6u);  // Bootstrap + 5 hand-offs.
  for (std::size_t i = 0; i + 1 < cascade.size(); ++i)
    EXPECT_GE(static_cast<double>(cascade[i + 1]),
              1.2 * static_cast<double>(cascade[i]))
        << "stage " << i;
}

TEST(Theorem317, WholeLoopIsRateFeasible) {
  // The complete composed adversary — reroutes included — passes the exact
  // rate-r feasibility check.
  const LoopRun run = run_loop(Rat(7, 10), 4, 600, 2, /*audit=*/true);
  EXPECT_TRUE(run.rate_feasible);
}

TEST(Theorem317, RateJustAboveHalfStillAmplifiesPerGadget) {
  // At r = 0.51 a growing loop needs an impractically long chain
  // (empirical min M > 100), but the per-gadget gain — the engine of the
  // theorem — must still exceed 1.
  const double gain = lps_gadget_gain(0.51, lps_params(0.01).n);
  EXPECT_GT(gain, 1.0);
  // And at r = 1/2 exactly, no n achieves gain > 1 (the threshold).
  for (std::int64_t n = 1; n <= 60; ++n)
    EXPECT_LE(lps_gadget_gain(0.5, n), 1.0) << n;
}

TEST(Theorem317, InsufficientMShrinks) {
  // With too few gadgets the stitch loss dominates: the queue decays --
  // matching the theory that M must satisfy r^3 (1+eps)^M / 4 > 1.
  const LoopRun run = run_loop(Rat(7, 10), 2, 1000, 2, /*audit=*/false);
  ASSERT_GE(run.history.size(), 1u);
  EXPECT_LT(run.history.front().s_end, run.history.front().s_start);
}

TEST(Theorem317, AdversaryStopsWhenQueueCollapses) {
  // With M = 2 the queue decays; the adversary detects the collapse and
  // reports finished instead of running forever.
  const LpsConfig cfg = test_config(Rat(7, 10));
  const ChainedGadgets net = build_closed_chain(cfg.n, 2);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_flat_queue(eng, net, 0, 300);
  LpsAdversary adv(net, cfg, /*max_iterations=*/50);
  Time cap = 2000000;
  while (!adv.finished(eng.now() + 1) && eng.now() < cap) eng.step(&adv);
  EXPECT_LT(eng.now(), cap);
  EXPECT_LT(adv.history().size(), 50u);
}

// Sweep the chain length across the growth threshold: the measured
// per-iteration factor must track (1-R_n)(2(1-R_n))^(M-1) r^3 on both
// sides of 1 (M = 5 shrinks, M = 7+ grows, at r = 7/10 with n = 9 the
// exact crossover is M = 6).
class ChainLengthSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ChainLengthSweep, GrowthTracksExactFormula) {
  const std::int64_t M = GetParam();
  const Rat r(7, 10);
  const LoopRun run = run_loop(r, M, 1400, 1, /*audit=*/false);
  ASSERT_EQ(run.history.size(), 1u);
  const auto& rec = run.history.front();
  const double measured = static_cast<double>(rec.s_end) /
                          static_cast<double>(rec.s_start);
  const double predicted = lps_measured_iteration_growth(0.7, 9, M);
  EXPECT_NEAR(measured, predicted, 0.25 * predicted + 0.05) << "M=" << M;
  EXPECT_EQ(measured > 1.0, predicted > 1.0) << "M=" << M;
}

INSTANTIATE_TEST_SUITE_P(AcrossThreshold, ChainLengthSweep,
                         ::testing::Values(3, 5, 7, 8, 10),
                         [](const auto& info) {
                           return "M" + std::to_string(info.param);
                         });

TEST(Theorem317, MaxQueueTracksFinalIteration) {
  const LoopRun run = run_loop(Rat(7, 10), 8, 1200, 3, /*audit=*/false);
  // The biggest buffer ever is at least the final flat queue.
  EXPECT_GE(run.max_queue,
            static_cast<std::uint64_t>(run.history.back().s_end));
}

}  // namespace
}  // namespace aqt
