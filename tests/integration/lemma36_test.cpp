// Integration tests for Lemma 3.6: one gadget hand-off amplifies C(S, F)
// into C(S', F') with S' = 2S(1 - R_n) >= S(1 + eps), leaving F empty,
// while staying exactly rate-r feasible.
#include <gtest/gtest.h>

#include <cmath>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/probe.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/adversaries/scripted.hpp"
#include "aqt/topology/routing.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

struct HandoffRun {
  GadgetInvariantReport before;
  GadgetInvariantReport source;  ///< F(k) after the hand-off.
  GadgetInvariantReport target;  ///< F(k+1) after the hand-off.
  std::int64_t S = 0;
  double predicted = 0.0;
  bool rate_feasible = false;
};

HandoffRun run_handoff(const Rat& r, std::int64_t S) {
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_chain(cfg.n, 2);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(net.graph, fifo, ec);
  setup_gadget_invariant(eng, net, 0, S);

  HandoffRun run;
  run.S = S;
  run.before = inspect_gadget(eng, net, 0);
  run.predicted = lps_s_prime(static_cast<double>(S), r.to_double(), cfg.n);

  LpsHandoff phase(net, cfg, 0);
  while (!phase.finished(eng.now() + 1)) eng.step(&phase);

  run.source = inspect_gadget(eng, net, 0);
  run.target = inspect_gadget(eng, net, 1);
  eng.finalize_audit();
  run.rate_feasible = check_rate_r(eng.audit(), r).ok;
  return run;
}

TEST(Lemma36, AmplifiesByAtLeastOnePlusEps) {
  const Rat r(7, 10);
  const HandoffRun run = run_handoff(r, 400);
  // The paper's guarantee: S' >= S(1 + eps).
  EXPECT_GE(run.target.S(), static_cast<std::int64_t>(400 * 1.2));
}

TEST(Lemma36, MatchesExactFormulaWithinSlack) {
  const Rat r(7, 10);
  for (const std::int64_t S : {300, 500, 800}) {
    const HandoffRun run = run_handoff(r, S);
    // Both halves of C(S', F') track 2S(1 - R_n) within O(n) slack.
    const double slack = 3.0 * 9 + 8;  // 3n + O(1) for n = 9.
    EXPECT_NEAR(static_cast<double>(run.target.e_total), run.predicted, slack)
        << "S=" << S;
    EXPECT_NEAR(static_cast<double>(run.target.ingress_count), run.predicted,
                slack)
        << "S=" << S;
  }
}

TEST(Lemma36, TargetInvariantShapeHolds) {
  const HandoffRun run = run_handoff(Rat(7, 10), 500);
  // Part 2: every e'-buffer nonempty.
  EXPECT_EQ(run.target.empty_e_buffers, 0);
  // Remaining routes are as prescribed, up to O(n) lingering decoys.
  EXPECT_LE(run.target.mismatched_routes, 2 * 9);
  // Part 4: only O(n) transients on the f'-path.
  EXPECT_LE(run.target.stray_packets, 2 * 9);
}

TEST(Lemma36, SourceGadgetDrainsEmpty) {
  const HandoffRun run = run_handoff(Rat(7, 10), 500);
  EXPECT_EQ(run.source.e_total, 0);
  EXPECT_EQ(run.source.stray_packets, 0);
  // The source's ingress was emptied too.  (Its egress buffer is the
  // target's ingress buffer — the shared boundary edge — so the S' packets
  // reported there belong to the target invariant.)
  EXPECT_EQ(run.source.ingress_count, 0);
}

TEST(Lemma36, ComposedAdversaryIsRateFeasible) {
  // The hand-off's streams plus the Lemma 3.3 reroutes form a rate-r
  // adversary; the exact checker confirms it on the whole execution.
  for (const auto& r : {Rat(7, 10), Rat(3, 5)}) {
    const HandoffRun run = run_handoff(r, 400);
    EXPECT_TRUE(run.rate_feasible) << r;
  }
}

TEST(Lemma36, GainMatchesExactFormula) {
  // The exact gain 2(1 - R_n) is what one hand-off actually delivers.
  const Rat r(7, 10);
  const HandoffRun run = run_handoff(r, 600);
  const double gain = lps_gadget_gain(r.to_double(), 9);
  EXPECT_NEAR(static_cast<double>(run.target.S()) / 600.0, gain, 0.08);
}

TEST(Lemma36, WorksAcrossRates) {
  // Amplification holds for every tested rate above 1/2 (with its own n).
  for (const auto& r : {Rat(3, 5), Rat(13, 20), Rat(7, 10), Rat(3, 4)}) {
    LpsConfig cfg = make_lps_config(r);
    const HandoffRun run = run_handoff(r, 600);
    const double eps = cfg.eps();
    EXPECT_GE(static_cast<double>(run.target.S()),
              600.0 * (1.0 + eps) - 2.0 * static_cast<double>(cfg.n))
        << r;
  }
}

TEST(Lemma36, Claim38OneOldPacketCrossesEgressPerStep) {
  // Claim 3.8: during [1, 2S] exactly one packet crosses a' each step.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_chain(cfg.n, 2);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  const std::int64_t S = 500;
  setup_gadget_invariant(eng, net, 0, S);
  const EdgeId egress = net.gadgets[0].egress;

  LpsHandoff phase(net, cfg, 0);
  std::uint64_t prev = 0;
  std::int64_t single_cross_steps = 0;
  for (Time t = 1; t <= 2 * S; ++t) {
    eng.step(&phase);
    const std::uint64_t now = eng.metrics().sends(egress);
    if (now - prev == 1) ++single_cross_steps;
    prev = now;
  }
  // All but O(1) warm-up steps carry exactly one crossing.
  EXPECT_GE(single_cross_steps, 2 * S - 4);
}

TEST(Lemma36, Claim311BufferFloorsMatchQi) {
  // Claim 3.11: at time 2S + i the buffer of e'_i holds Q_i = (2S - t_i) R_i
  // packets (and in particular is nonempty).
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_chain(cfg.n, 2);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  const std::int64_t S = 800;
  setup_gadget_invariant(eng, net, 0, S);

  QueueProbe probe(eng, net.gadgets[1].e_path);
  LpsHandoff phase(net, cfg, 0);
  while (!phase.finished(eng.now() + 1)) {
    eng.step(&phase);
    probe.sample();
  }

  const double rd = r.to_double();
  for (std::int64_t i = 1; i <= cfg.n; ++i) {
    const double q_pred = lps_Q(static_cast<double>(S), rd, i);
    const auto measured = static_cast<double>(
        probe.at(static_cast<std::size_t>(i - 1), 2 * S + i));
    // The buffer at 2S+i holds old packets *plus* decoys not yet absorbed
    // (Claim 3.9(3) says decoys vanish by then, up to pacing slack), so
    // allow a generous relative + additive tolerance.
    EXPECT_NEAR(measured, q_pred, 0.15 * q_pred + 25.0) << "i=" << i;
    EXPECT_GT(measured, 0.0) << "i=" << i;
  }
}

TEST(Lemma36, Claim39EscapeRateIsRn) {
  // Consequence of Claim 3.9: by time 2S + n about 2S * R_n old packets
  // have crossed a'' (and been absorbed); everything else stays in F'.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_chain(cfg.n, 2);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  const std::int64_t S = 800;
  setup_gadget_invariant(eng, net, 0, S);
  const EdgeId a2 = net.gadgets[1].egress;

  LpsHandoff phase(net, cfg, 0);
  while (!phase.finished(eng.now() + 1)) eng.step(&phase);

  // Crossings of a'' = old escapes (decoys never reach a'').
  const double escapes = static_cast<double>(eng.metrics().sends(a2));
  const double predicted = 2.0 * static_cast<double>(S) *
                           lps_R(r.to_double(), cfg.n);
  EXPECT_NEAR(escapes, predicted, 0.10 * predicted + 20.0);
}

TEST(Lemma313, DrainCollectsHalfAtTheEgress) {
  // Lemma 3.13's closing step: after the cascade reaches F(M), S + n silent
  // steps leave at least S' >= S(1+eps)^(M-1)/2 packets at the egress of
  // F_n^M, and nothing else in the network.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const std::int64_t M = 4;
  const ChainedGadgets net = build_chain(cfg.n, M);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  const std::int64_t S = 400;
  setup_gadget_invariant(eng, net, 0, S);

  SequenceAdversary seq;
  for (std::size_t k = 0; k + 1 < static_cast<std::size_t>(M); ++k)
    seq.append(std::make_unique<LpsHandoff>(net, cfg, k));
  seq.append(std::make_unique<LpsDrain>(net, cfg, M - 1));
  while (!seq.finished(eng.now() + 1)) eng.step(&seq);

  const EdgeId egress = net.gadgets.back().egress;
  const auto at_egress = static_cast<std::int64_t>(eng.queue_size(egress));
  const double bound =
      static_cast<double>(S) * std::pow(1.2, static_cast<double>(M - 1)) /
      2.0;
  EXPECT_GE(static_cast<double>(at_egress), bound);
  // Every remaining packet sits at the egress with a length-1 remainder.
  EXPECT_EQ(eng.packets_in_flight(), static_cast<std::uint64_t>(at_egress));
  for (const BufferEntry& be : eng.buffer(egress)) {
    const Packet& p = eng.packet(be.packet);
    EXPECT_EQ(p.remaining(), 1u);
  }
}

TEST(Lemma33Remark2, PacketsSurviveRepeatedRerouting) {
  // Remark 2: a packet may be rerouted several times.  Old packets of the
  // chain get extended once per gadget they survive; check a long chain
  // runs cleanly and that survivor routes grew by (n+1) per extension.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const std::int64_t M = 5;
  const ChainedGadgets net = build_chain(cfg.n, M);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_gadget_invariant(eng, net, 0, 400);

  SequenceAdversary seq;
  for (std::size_t k = 0; k + 1 < static_cast<std::size_t>(M); ++k)
    seq.append(std::make_unique<LpsHandoff>(net, cfg, k));
  while (!seq.finished(eng.now() + 1)) eng.step(&seq);

  // Initial e-route packets had n + 2 - i edges; f-route packets n + 2.
  // Each surviving extension appends n + 1 edges, so any packet in the
  // final gadget with route length > 2(n + 1) + 2 was rerouted at least
  // twice.
  std::size_t multi_rerouted = 0;
  eng.arena().for_each_live([&](PacketId, const Packet& p,
                                const PacketMeta&) {
    if (p.inject_time == 0 &&
        p.route.size() > 2 * static_cast<std::size_t>(cfg.n + 1) + 2)
      ++multi_rerouted;
  });
  EXPECT_GT(multi_rerouted, 0u);
}

TEST(Section5Remark, ConstructionUsesShortestRoutes) {
  // §5: "our lower bounds use shortest-paths (and hence noncircular)
  // routes."  Verify: the effective route of every packet (live or not;
  // here checked on live packets at several instants) has exactly the BFS
  // distance between its endpoints.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_closed_chain(cfg.n, 3);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_flat_queue(eng, net, 0, 400);
  LpsAdversary adv(net, cfg, /*max_iterations=*/1);

  Time next_check = 50;
  while (!adv.finished(eng.now() + 1)) {
    eng.step(&adv);
    if (eng.now() == next_check) {
      next_check += 400;
      eng.arena().for_each_live([&](PacketId, const Packet& p,
                                    const PacketMeta& m) {
        const NodeId from = net.graph.tail(p.route.front());
        const NodeId to = net.graph.head(p.route.back());
        const auto shortest = shortest_route(net.graph, from, to);
        ASSERT_TRUE(shortest.has_value());
        EXPECT_EQ(p.route.size(), shortest->size())
            << "packet ordinal " << m.ordinal;
      });
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(Lemma36, ChainOfHandoffsCompoundsGeometrically) {
  // Lemma 3.13 / Claim 3.14: along F(1..M) the queue compounds by at least
  // (1 + eps) per gadget.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const std::int64_t M = 5;
  const ChainedGadgets net = build_chain(cfg.n, M);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  const std::int64_t S = 400;
  setup_gadget_invariant(eng, net, 0, S);

  std::vector<std::int64_t> cascade{S};
  for (std::size_t k = 0; k + 1 < static_cast<std::size_t>(M); ++k) {
    LpsHandoff phase(net, cfg, k);
    while (!phase.finished(eng.now() + 1)) eng.step(&phase);
    cascade.push_back(inspect_gadget(eng, net, k + 1).S());
  }
  for (std::size_t i = 0; i + 1 < cascade.size(); ++i) {
    EXPECT_GE(static_cast<double>(cascade[i + 1]),
              1.2 * static_cast<double>(cascade[i]))
        << "gadget " << i;
  }
  // Overall amplification beats (1+eps)^(M-1).
  EXPECT_GE(static_cast<double>(cascade.back()),
            static_cast<double>(S) *
                std::pow(1.2, static_cast<double>(M - 1)));
}

}  // namespace
}  // namespace aqt
