// Integration tests for the bootstrap (Lemma 3.15) and stitch (Lemma 3.16)
// phases of the instability construction.
#include <gtest/gtest.h>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

LpsConfig test_config(const Rat& r) {
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  return cfg;
}

// --- Lemma 3.15: flat queue -> C(S', F) -------------------------------------

struct BootstrapRun {
  GadgetInvariantReport after;
  double predicted = 0.0;
  bool rate_feasible = false;
};

BootstrapRun run_bootstrap(const Rat& r, std::int64_t flat) {
  const LpsConfig cfg = test_config(r);
  const ChainedGadgets net = build_chain(cfg.n, 1);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(net.graph, fifo, ec);
  setup_flat_queue(eng, net, 0, flat);
  LpsBootstrap phase(net, cfg, 0);
  while (!phase.finished(eng.now() + 1)) eng.step(&phase);
  BootstrapRun run;
  run.after = inspect_gadget(eng, net, 0);
  run.predicted = lps_s_prime(static_cast<double>(flat) / 2.0, r.to_double(),
                              cfg.n);
  eng.finalize_audit();
  run.rate_feasible = check_rate_r(eng.audit(), r).ok;
  return run;
}

TEST(Lemma315, EstablishesInvariantFromFlatQueue) {
  const Rat r(7, 10);
  const BootstrapRun run = run_bootstrap(r, 800);  // 2S = 800, S = 400.
  // S' >= S(1+eps).
  EXPECT_GE(run.after.S(), static_cast<std::int64_t>(400 * 1.2));
  EXPECT_EQ(run.after.empty_e_buffers, 0);
  EXPECT_LE(run.after.stray_packets, 2 * 9);
}

TEST(Lemma315, TracksExactFormula) {
  const Rat r(7, 10);
  for (const std::int64_t flat : {600, 1000}) {
    const BootstrapRun run = run_bootstrap(r, flat);
    const double slack = 3.0 * 9 + 8;
    EXPECT_NEAR(static_cast<double>(run.after.e_total), run.predicted, slack)
        << flat;
    EXPECT_NEAR(static_cast<double>(run.after.ingress_count), run.predicted,
                slack)
        << flat;
  }
}

TEST(Lemma315, RateFeasible) {
  EXPECT_TRUE(run_bootstrap(Rat(7, 10), 700).rate_feasible);
  EXPECT_TRUE(run_bootstrap(Rat(3, 5), 700).rate_feasible);
}

// --- Lemma 3.16: old egress queue -> fresh ingress queue --------------------

struct StitchRun {
  std::int64_t S = 0;
  std::int64_t fresh = 0;          ///< Packets at the ingress at the end.
  std::int64_t leftovers = 0;      ///< Anything else still in the network.
  Time duration = 0;
  bool rate_feasible = false;
  bool all_fresh = true;           ///< Every ingress packet injected late.
};

StitchRun run_stitch(const Rat& r, std::int64_t S) {
  const LpsConfig cfg = test_config(r);
  const ChainedGadgets net = build_closed_chain(cfg.n, 1);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(net.graph, fifo, ec);
  // S old packets wait at the egress with single-edge remaining routes.
  const EdgeId a0 = net.gadgets.back().egress;
  const EdgeId a2 = net.gadgets.front().ingress;
  for (std::int64_t i = 0; i < S; ++i) eng.add_initial_packet({a0});

  LpsStitch phase(net, cfg);
  while (!phase.finished(eng.now() + 1)) eng.step(&phase);

  StitchRun run;
  run.S = S;
  run.duration = eng.now();
  run.fresh = static_cast<std::int64_t>(eng.queue_size(a2));
  run.leftovers =
      static_cast<std::int64_t>(eng.packets_in_flight()) - run.fresh;
  // Lemma 3.16's last claim: every remaining packet was injected at the
  // tail of a2 after time tau + S.
  for (const BufferEntry& be : eng.buffer(a2)) {
    const Packet& p = eng.packet(be.packet);
    if (p.inject_time <= run.S || p.route.size() != 1) run.all_fresh = false;
  }
  eng.finalize_audit();
  run.rate_feasible = check_rate_r(eng.audit(), r).ok;
  return run;
}

TEST(Lemma316, LeavesRCubedSFreshPackets) {
  const Rat r(7, 10);
  const StitchRun run = run_stitch(r, 1000);
  // r^3 * 1000 = 343, up to rounding of the three paced stages.
  EXPECT_NEAR(static_cast<double>(run.fresh), 343.0, 6.0);
  EXPECT_EQ(run.leftovers, 0);
}

TEST(Lemma316, CompletesOnSchedule) {
  // Duration S + rS + r^2 S (with floors, plus the 4-step pipeline slack).
  const Rat r(7, 10);
  const StitchRun run = run_stitch(r, 1000);
  EXPECT_NEAR(static_cast<double>(run.duration), 1000 + 700 + 490, 8.0);
}

TEST(Lemma316, AllRemainingPacketsAreFresh) {
  const StitchRun run = run_stitch(Rat(7, 10), 600);
  EXPECT_TRUE(run.all_fresh);
}

TEST(Lemma316, RateFeasibleAcrossRates) {
  for (const auto& r : {Rat(7, 10), Rat(3, 5), Rat(51, 100)}) {
    EXPECT_TRUE(run_stitch(r, 500).rate_feasible) << r;
  }
}

TEST(Lemma316, WorksForAnyPositiveRateClaim) {
  // The lemma holds "for any r > 0" -- spot-check a low rate on its own
  // 3-edge path semantics (fresh = floor-cascade of r^3 S).
  const Rat r(51, 100);
  const StitchRun run = run_stitch(r, 800);
  EXPECT_NEAR(static_cast<double>(run.fresh),
              0.51 * 0.51 * 0.51 * 800.0, 8.0);
}

}  // namespace
}  // namespace aqt
