// Integration tests for the stability side (§4):
//
//  * Theorem 4.1: every greedy protocol against every (w, r) adversary with
//    r <= 1/(d+1) keeps per-buffer residence <= ceil(w*r).
//  * Theorem 4.3: time-priority protocols (FIFO, LIS) already at r <= 1/d.
//  * Corollaries 4.5/4.6: the same with an S-initial-configuration and the
//    corollary's (larger) bound.
//
// The theorems are universally quantified over adversaries; these tests
// corroborate them with aggressive random and deterministic (w, r) traffic
// across structurally different topologies, and verify the traffic is
// genuinely (w, r)-feasible via the exact window checker.
#include <gtest/gtest.h>

#include <memory>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/analysis/bounds.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/topology/generators.hpp"

namespace aqt {
namespace {

struct Scenario {
  const char* topology;
  Graph graph;
};

std::vector<Scenario> topologies() {
  std::vector<Scenario> v;
  v.push_back({"grid4x4", make_grid(4, 4)});
  v.push_back({"ring12", make_ring(12)});
  v.push_back({"bidiring8", make_bidirectional_ring(8)});
  v.push_back({"intree4", make_in_tree(4)});
  Rng rng(99);
  v.push_back({"dag24", make_random_dag(24, 0.15, rng)});
  return v;
}

struct StabilityResult {
  Time max_residence = 0;
  std::int64_t longest_route = 0;
  bool traffic_feasible = false;
  std::uint64_t injected = 0;
};

StabilityResult run_stability(const Graph& graph,
                              const std::string& protocol_name,
                              std::int64_t d, std::int64_t w, const Rat& r,
                              std::uint64_t seed, Time steps) {
  auto protocol = make_protocol(protocol_name, seed);
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(graph, *protocol, ec);
  StochasticConfig cfg;
  cfg.w = w;
  cfg.r = r;
  cfg.max_route_len = d;
  cfg.seed = seed;
  cfg.attempts_per_step = 6;
  StochasticAdversary adv(graph, cfg);
  eng.run(&adv, steps);
  eng.finalize_audit();

  StabilityResult res;
  res.max_residence = eng.metrics().max_residence_global();
  res.longest_route = adv.longest_route();
  res.traffic_feasible = check_window(eng.audit(), w, r).ok;
  res.injected = eng.total_injected();
  return res;
}

// Theorem 4.1: all greedy protocols at r = 1/(d+1), sweeping topologies.
class GreedyStability : public ::testing::TestWithParam<std::string> {};

TEST_P(GreedyStability, ResidenceBoundedByCeilWR) {
  const std::string protocol = GetParam();
  const std::int64_t d = 3;
  const std::int64_t w = 4 * (d + 1);       // 16.
  const Rat r(1, d + 1);                    // Threshold rate.
  const std::int64_t bound = residence_bound(w, r);  // ceil(16/4) = 4.

  for (const auto& sc : topologies()) {
    const StabilityResult res =
        run_stability(sc.graph, protocol, d, w, r, /*seed=*/17, 2500);
    ASSERT_TRUE(res.traffic_feasible) << sc.topology;
    ASSERT_LE(res.longest_route, d) << sc.topology;
    EXPECT_LE(res.max_residence, bound)
        << protocol << " on " << sc.topology;
    EXPECT_GT(res.injected, 100u) << sc.topology;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, GreedyStability,
                         ::testing::Values("FIFO", "LIFO", "LIS", "NIS",
                                           "FTG", "NTG", "FFS", "NTS",
                                           "RANDOM"));

// Theorem 4.3: time-priority protocols at the laxer r = 1/d threshold.
class TimePriorityStability : public ::testing::TestWithParam<std::string> {
};

TEST_P(TimePriorityStability, ResidenceBoundedAtOneOverD) {
  const std::string protocol = GetParam();
  ASSERT_TRUE(make_protocol(protocol)->is_time_priority());
  const std::int64_t d = 4;
  const std::int64_t w = 4 * d;  // 16.
  const Rat r(1, d);
  const std::int64_t bound = residence_bound(w, r);  // 4.

  for (const auto& sc : topologies()) {
    const StabilityResult res =
        run_stability(sc.graph, protocol, d, w, r, /*seed=*/23, 2500);
    ASSERT_TRUE(res.traffic_feasible) << sc.topology;
    EXPECT_LE(res.max_residence, bound)
        << protocol << " on " << sc.topology;
  }
}

INSTANTIATE_TEST_SUITE_P(TimePriority, TimePriorityStability,
                         ::testing::Values("FIFO", "LIS"));

TEST(StabilityTheorems, ConvoyWorstCaseRespectsBound) {
  // Deterministic maximal pile-up on a line: every window saturated.
  const std::int64_t d = 5;
  const Graph g = make_line(d);
  Route path;
  for (EdgeId e = 0; e < static_cast<EdgeId>(d); ++e) path.push_back(e);
  const std::int64_t w = 2 * (d + 1);  // 12.
  const Rat r(1, d + 1);
  for (const char* proto : {"FIFO", "LIFO", "NTG", "FTG"}) {
    auto protocol = make_protocol(proto);
    EngineConfig ec;
    ec.audit_rates = true;
    Engine eng(g, *protocol, ec);
    ConvoyAdversary adv(path, w, r);
    eng.run(&adv, 3000);
    eng.finalize_audit();
    ASSERT_TRUE(check_window(eng.audit(), w, r).ok);
    EXPECT_LE(eng.metrics().max_residence_global(), residence_bound(w, r))
        << proto;
  }
}

TEST(StabilityTheorems, BufferSizesStayBoundedBelowThreshold) {
  // Stability also means bounded buffers; compare against the occupancy
  // bound implied by bounded residence.
  const std::int64_t d = 3;
  const std::int64_t w = 4 * (d + 1);
  const Rat r(1, d + 1);
  const Graph g = make_grid(4, 4);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  StochasticConfig cfg;
  cfg.w = w;
  cfg.r = r;
  cfg.max_route_len = d;
  cfg.seed = 3;
  StochasticAdversary adv(g, cfg);
  eng.run(&adv, 5000);
  EXPECT_LE(eng.metrics().max_queue_global(),
            static_cast<std::uint64_t>(queue_bound_from_residence(w, r, d)));
}

TEST(StabilityTheorems, Corollary45InitialConfigurationBound) {
  // S-initial-configuration, greedy protocol, r < 1/(d+1): residence stays
  // within the (much larger) Corollary 4.5 bound.
  const std::int64_t d = 3;
  const std::int64_t S = 30;
  const std::int64_t w = 8;
  const Rat r(1, 8);  // Strictly below 1/4.
  const Graph g = make_grid(4, 4);
  const std::int64_t bound = corollary45_residence_bound(S, w, r, d);

  for (const char* proto : {"FIFO", "NTG", "LIFO"}) {
    auto protocol = make_protocol(proto);
    EngineConfig ec;
    ec.audit_rates = true;
    Engine eng(g, *protocol, ec);
    // S packets piled on one edge as the initial configuration.
    const Route start = {g.edge_by_name("h0_0"), g.edge_by_name("h0_1"),
                         g.edge_by_name("h0_2")};
    for (std::int64_t i = 0; i < S; ++i) eng.add_initial_packet(start);

    StochasticConfig cfg;
    cfg.w = w;
    cfg.r = r;
    cfg.max_route_len = d;
    cfg.seed = 11;
    StochasticAdversary adv(g, cfg);
    eng.run(&adv, 4000);
    eng.finalize_audit();
    ASSERT_TRUE(check_window(eng.audit(), w, r).ok);
    EXPECT_LE(eng.metrics().max_residence_global(), bound) << proto;
  }
}

TEST(StabilityTheorems, Corollary46TighterBoundForTimePriority) {
  const std::int64_t d = 3;
  const std::int64_t S = 30;
  const std::int64_t w = 9;
  const Rat r(1, 6);  // Strictly below 1/3.
  const Graph g = make_grid(4, 4);
  const std::int64_t bound = corollary46_residence_bound(S, w, r, d);

  for (const char* proto : {"FIFO", "LIS"}) {
    auto protocol = make_protocol(proto);
    Engine eng(g, *protocol);
    const Route start = {g.edge_by_name("h0_0"), g.edge_by_name("h0_1"),
                         g.edge_by_name("h0_2")};
    for (std::int64_t i = 0; i < S; ++i) eng.add_initial_packet(start);
    StochasticConfig cfg;
    cfg.w = w;
    cfg.r = r;
    cfg.max_route_len = d;
    cfg.seed = 13;
    StochasticAdversary adv(g, cfg);
    eng.run(&adv, 4000);
    EXPECT_LE(eng.metrics().max_residence_global(), bound) << proto;
  }
}

TEST(StabilityTheorems, GadgetNetworkIsAlsoStableBelowThreshold) {
  // The instability network itself obeys Theorem 4.1 when driven below
  // 1/(d+1): the topology is not what makes FIFO unstable, the rate is.
  const ChainedGadgets net = build_chain(3, 2);
  const std::int64_t d = 4;
  const std::int64_t w = 2 * (d + 1);
  const Rat r(1, d + 1);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  StochasticConfig cfg;
  cfg.w = w;
  cfg.r = r;
  cfg.max_route_len = d;
  cfg.seed = 5;
  StochasticAdversary adv(net.graph, cfg);
  eng.run(&adv, 3000);
  EXPECT_LE(eng.metrics().max_residence_global(), residence_bound(w, r));
}

}  // namespace
}  // namespace aqt
