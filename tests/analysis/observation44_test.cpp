// Tests for the constructive Observation 4.4 transform.
#include "aqt/analysis/observation44.hpp"

#include <gtest/gtest.h>

#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

/// Builds a (w, r)-feasible injection-only trace on a line graph: the
/// convoy pattern, floor(w*r) packets at the head of each window.
Trace convoy_trace(const Graph& g, std::int64_t w, const Rat& r,
                   Time horizon) {
  Trace trace;
  Route path;
  for (EdgeId e = 0; e < g.edge_count(); ++e) path.push_back(e);
  const std::int64_t burst = r.floor_mul(w);
  for (Time t = 1; t <= horizon; ++t) {
    if ((t - 1) % w < burst)
      trace.record_injection(t, Injection{path, /*tag=*/0});
  }
  return trace;
}

TEST(Observation44, TransformedScheduleIsWStarRStarFeasible) {
  const Graph g = make_line(3);
  const std::int64_t w = 6;
  const Rat r(1, 3);
  const Rat r_star(1, 2);
  const Trace original = convoy_trace(g, w, r, /*horizon=*/600);

  // Initial configuration: 17 packets on edge 0, 9 on edges 0..1.
  std::vector<Route> initial;
  for (int i = 0; i < 17; ++i) initial.push_back({0});
  for (int i = 0; i < 9; ++i) initial.push_back({0, 1});

  const auto result = observation44_transform(initial, original, w, r,
                                              r_star, g.edge_count());
  // S = 26 uses of edge 0; w* = ceil((26 + 6 + 1)/(1/6)) = 198.
  EXPECT_EQ(result.w_star, 198);

  // The paper's claim, machine-checked: A* is (w*, r*) feasible.
  RateAudit audit(g.edge_count());
  for (const TraceEvent& ev : result.schedule.events())
    audit.add(ev.edges, ev.t);
  const auto res = check_window(audit, result.w_star, r_star);
  EXPECT_TRUE(res.ok) << res.describe(g);
}

TEST(Observation44, ReplayedRunMatchesOriginalShiftedByOne) {
  // Running A* from empty buffers reproduces the original run one step
  // later: same absorption totals once both have drained.
  const Graph g = make_line(3);
  const std::int64_t w = 6;
  const Rat r(1, 3);
  const Trace original = convoy_trace(g, w, r, 120);
  std::vector<Route> initial;
  for (int i = 0; i < 10; ++i) initial.push_back({0, 1, 2});

  // Original: initial configuration + trace.
  FifoProtocol fifo;
  Engine orig(g, fifo);
  for (const Route& route : initial) orig.add_initial_packet(route);
  ReplayAdversary orig_replay(original);
  orig.run(&orig_replay, 400);

  const auto result = observation44_transform(initial, original, w, r,
                                              Rat(1, 2), g.edge_count());
  Engine star(g, fifo);
  ReplayAdversary star_replay(result.schedule);
  star.run(&star_replay, 401);

  EXPECT_EQ(star.total_injected(), orig.total_injected());
  EXPECT_EQ(star.total_absorbed(), orig.total_absorbed());
  EXPECT_EQ(star.packets_in_flight(), orig.packets_in_flight());
}

TEST(Observation44, EmptyInitialConfigurationWorks) {
  const Graph g = make_line(2);
  Trace original;
  original.record_injection(3, Injection{{0}, 0});
  const auto result =
      observation44_transform({}, original, 4, Rat(1, 4), Rat(1, 2), 2);
  ASSERT_EQ(result.schedule.size(), 1u);
  EXPECT_EQ(result.schedule.events()[0].t, 4);  // Shifted +1.
}

TEST(Observation44, RequiresLargerRate) {
  const Graph g = make_line(2);
  Trace original;
  EXPECT_THROW(observation44_transform({}, original, 4, Rat(1, 2),
                                       Rat(1, 2), 2),
               PreconditionError);
}

TEST(Observation44, RejectsRerouteSchedules) {
  Trace original;
  original.record_reroute(1, 0, {1});
  EXPECT_THROW(observation44_transform({}, original, 4, Rat(1, 4),
                                       Rat(1, 2), 2),
               PreconditionError);
}

TEST(Observation44, SIsMaxPerEdgeMultiplicity) {
  // 5 packets on edge 0, 3 on edge 1 (via routes {0} and {0,1}).
  const Graph g = make_line(2);
  std::vector<Route> initial;
  for (int i = 0; i < 2; ++i) initial.push_back({0});
  for (int i = 0; i < 3; ++i) initial.push_back({0, 1});
  Trace empty;
  const auto result = observation44_transform(initial, empty, 4, Rat(1, 4),
                                              Rat(1, 2), g.edge_count());
  // S = 5 (edge 0); w* = ceil((5 + 4 + 1)/(1/4)) = 40.
  EXPECT_EQ(result.w_star, 40);
  EXPECT_EQ(result.schedule.injection_count(), 5u);
}

}  // namespace
}  // namespace aqt
