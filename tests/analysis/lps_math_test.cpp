#include "aqt/analysis/lps_math.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include <cmath>

namespace aqt {
namespace {

TEST(LpsMath, R1IsOne) {
  for (double r : {0.51, 0.6, 0.7, 0.9})
    EXPECT_DOUBLE_EQ(lps_R(r, 1), 1.0) << r;
}

TEST(LpsMath, RiDecreasesInI) {
  const double r = 0.7;
  for (int i = 1; i < 20; ++i) EXPECT_GT(lps_R(r, i), lps_R(r, i + 1));
}

TEST(LpsMath, RiConvergesToOneMinusR) {
  const double r = 0.6;
  EXPECT_NEAR(lps_R(r, 200), 1.0 - r, 1e-12);
}

TEST(LpsMath, Identity31Holds) {
  // Equation (3.1): R_i / (r + R_i) = R_{i+1}.
  for (double r : {0.55, 0.6, 0.7, 0.8}) {
    for (int i = 1; i <= 15; ++i) {
      const double Ri = lps_R(r, i);
      EXPECT_NEAR(Ri / (r + Ri), lps_R(r, i + 1), 1e-12)
          << "r=" << r << " i=" << i;
    }
  }
}

TEST(LpsMath, InvalidArgumentsThrow) {
  EXPECT_THROW(lps_R(0.6, 0), PreconditionError);
  EXPECT_THROW(lps_R(1.0, 3), PreconditionError);
  EXPECT_THROW(lps_R(0.0, 3), PreconditionError);
  EXPECT_THROW(lps_params(0.0), PreconditionError);
  EXPECT_THROW(lps_params(0.5), PreconditionError);
}

TEST(LpsMath, ParamsSatisfyProofConstraints) {
  for (double eps : {0.05, 0.1, 0.2, 0.3}) {
    const LpsParams p = lps_params(eps);
    const double r = 0.5 + eps;
    // n > (log eps - 2)/log r and n > 1 - 1/log r.
    EXPECT_GT(p.n, (std::log2(eps) - 2.0) / std::log2(r)) << eps;
    EXPECT_GT(static_cast<double>(p.n), 1.0 - 1.0 / std::log2(r)) << eps;
    // Consequences used in the proof: r^n < 1/2 and 4 r^n < eps.
    const double rn = std::pow(r, static_cast<double>(p.n));
    EXPECT_LT(rn, 0.5) << eps;
    EXPECT_LT(4.0 * rn, eps) << eps;
    // S0 constraints.
    EXPECT_GT(p.s0, 2 * p.n) << eps;
    EXPECT_GT(static_cast<double>(p.s0),
              static_cast<double>(p.n) /
                  (2.0 * (lps_R(r, p.n) - lps_R(r, p.n + 1))))
        << eps;
  }
}

TEST(LpsMath, SPrimeBeatsOnePlusEps) {
  // The core amplification: S' = 2S(1-R_n) >= S(1+eps) for valid n.
  for (double eps : {0.05, 0.1, 0.2}) {
    const LpsParams p = lps_params(eps);
    const double S = static_cast<double>(4 * p.s0);
    EXPECT_GE(lps_s_prime(S, p.r, p.n), S * (1.0 + eps) - 1e-6) << eps;
  }
}

TEST(LpsMath, Claim37XBounds) {
  // 0 < X <= rS for S >= S0.
  for (double eps : {0.05, 0.1, 0.2}) {
    const LpsParams p = lps_params(eps);
    for (double S :
         {static_cast<double>(p.s0 + 1), static_cast<double>(4 * p.s0)}) {
      const double X = lps_X(S, p.r, p.n);
      EXPECT_GT(X, 0.0) << "eps=" << eps << " S=" << S;
      EXPECT_LE(X, p.r * S) << "eps=" << eps << " S=" << S;
    }
  }
}

TEST(LpsMath, TiIncreasesInI) {
  const double r = 0.7;
  const double S = 1000;
  for (int i = 1; i < 10; ++i)
    EXPECT_LT(lps_t(S, r, i), lps_t(S, r, i + 1));
}

TEST(LpsMath, T1IsSOverEpsPlusOne) {
  // t_1 = 2S/(r+1).
  EXPECT_NEAR(lps_t(500, 0.7, 1), 1000.0 / 1.7, 1e-9);
}

TEST(LpsMath, QnAtLeastNForValidS) {
  // Claim 3.11's conclusion: Q_n = 2S(R_n - R_{n+1}) >= n for S >= S0.
  for (double eps : {0.1, 0.2}) {
    const LpsParams p = lps_params(eps);
    const double Qn = lps_Q(static_cast<double>(p.s0 + 1), p.r, p.n);
    EXPECT_GE(Qn, static_cast<double>(p.n)) << eps;
  }
}

TEST(LpsMath, QiDecreasesInI) {
  const double r = 0.7;
  const double S = 2000;
  for (int i = 1; i < 9; ++i)
    EXPECT_GE(lps_Q(S, r, i), lps_Q(S, r, i + 1));
}

TEST(LpsMath, IterationGrowthFormula) {
  const double g = lps_iteration_growth(0.2, 14);
  EXPECT_NEAR(g, 0.7 * 0.7 * 0.7 * std::pow(1.2, 14) / 4.0, 1e-9);
}

TEST(LpsMath, MinMMakesGrowthExceedOne) {
  for (double eps : {0.05, 0.1, 0.2, 0.3}) {
    const std::int64_t M = lps_min_M(eps);
    EXPECT_GT(lps_iteration_growth(eps, M), 1.0) << eps;
    EXPECT_LE(lps_iteration_growth(eps, M - 1), 1.0) << eps;
  }
}

TEST(LpsMath, AsymptoticsBracketN) {
  // Appendix (5.5): log2(1/eps) + 2 < n < 2 log2(1/eps) + 4 for small eps.
  for (double eps : {0.01, 0.05, 0.1}) {
    const LpsParams p = lps_params(eps);
    const LpsAsymptotics a = lps_asymptotics(eps);
    EXPECT_GT(static_cast<double>(p.n), a.n_lower - 1.0) << eps;
    EXPECT_LT(static_cast<double>(p.n), a.n_upper + 1.0) << eps;
  }
}

TEST(LpsMath, S0TracksAsymptoticEstimate) {
  // S0 = Theta(n/eps); the estimate 4n/eps should be within a small
  // constant factor for small eps.
  for (double eps : {0.01, 0.02, 0.05}) {
    const LpsParams p = lps_params(eps);
    const LpsAsymptotics a = lps_asymptotics(eps);
    const double ratio = static_cast<double>(p.s0) / a.s0_estimate;
    EXPECT_GT(ratio, 0.05) << eps;
    EXPECT_LT(ratio, 8.0) << eps;
  }
}

TEST(LpsMath, GadgetGainDefinition) {
  EXPECT_NEAR(lps_gadget_gain(0.7, 9), 2.0 * (1.0 - lps_R(0.7, 9)), 1e-12);
}

TEST(LpsMath, GadgetGainCrossesOneAtHalf) {
  // sup_n 2(1-R_n) = 2r: at r = 1/2 no n amplifies; above 1/2 large n does.
  for (std::int64_t n = 1; n <= 50; ++n)
    EXPECT_LE(lps_gadget_gain(0.5, n), 1.0) << n;
  EXPECT_GT(lps_gadget_gain(0.51, lps_params(0.01).n), 1.0);
}

TEST(LpsMath, GadgetGainMonotoneInN) {
  for (std::int64_t n = 1; n < 20; ++n)
    EXPECT_LT(lps_gadget_gain(0.7, n), lps_gadget_gain(0.7, n + 1)) << n;
  // ... and saturates at 2r.
  EXPECT_NEAR(lps_gadget_gain(0.7, 200), 1.4, 1e-9);
}

TEST(LpsMath, MeasuredIterationGrowthComposition) {
  // bootstrap (gain/2) * (M-1) hand-offs * stitch r^3.
  const double g = lps_gadget_gain(0.7, 9);
  EXPECT_NEAR(lps_measured_iteration_growth(0.7, 9, 4),
              (g / 2.0) * g * g * g * 0.343, 1e-9);
}

TEST(LpsMath, EmpiricalMinMIsMinimal) {
  for (double r : {0.6, 0.65, 0.7, 0.75}) {
    const std::int64_t n = lps_params(r - 0.5).n;
    const std::int64_t M = lps_empirical_min_M(r, n);
    ASSERT_GT(M, 1) << r;
    EXPECT_GT(lps_measured_iteration_growth(r, n, M), 1.0) << r;
    EXPECT_LE(lps_measured_iteration_growth(r, n, M - 1), 1.0) << r;
  }
}

TEST(LpsMath, EmpiricalMinMUnboundedAtOrBelowHalf) {
  EXPECT_EQ(lps_empirical_min_M(0.5, 30), -1);
  EXPECT_EQ(lps_empirical_min_M(0.45, 30), -1);
}

TEST(LpsMath, EmpiricalMinMNeverExceedsPaperM) {
  // The exact gain dominates the paper's (1+eps) lower bound, so the exact
  // minimal chain is never longer than the paper's conservative one.
  for (double eps : {0.05, 0.1, 0.2, 0.3}) {
    const LpsParams p = lps_params(eps);
    EXPECT_LE(lps_empirical_min_M(p.r, p.n), lps_min_M(eps)) << eps;
  }
}

TEST(LpsMath, NGrowsLogarithmically) {
  const std::int64_t n1 = lps_params(0.1).n;
  const std::int64_t n2 = lps_params(0.01).n;
  const std::int64_t n3 = lps_params(0.001).n;
  // Each 10x reduction in eps adds roughly log2(10) ~ 3.3 (bounded by 7).
  EXPECT_GT(n2, n1);
  EXPECT_GT(n3, n2);
  EXPECT_LE(n2 - n1, 8);
  EXPECT_LE(n3 - n2, 8);
}

}  // namespace
}  // namespace aqt
