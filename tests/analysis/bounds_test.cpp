#include "aqt/analysis/bounds.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include "aqt/topology/gadget.hpp"
#include "aqt/topology/generators.hpp"

namespace aqt {
namespace {

TEST(Bounds, NetworkParams) {
  const NetworkParams p = network_params(make_in_tree(3));
  EXPECT_EQ(p.m, 14);
  EXPECT_EQ(p.alpha, 2);
}

TEST(Bounds, Thresholds) {
  EXPECT_EQ(greedy_threshold(4), Rat(1, 5));
  EXPECT_EQ(time_priority_threshold(4), Rat(1, 4));
  EXPECT_EQ(diaz_fifo_threshold(4, 10, 2), Rat(1, 160));
  EXPECT_EQ(borodin_greedy_threshold(10), Rat(1, 10));
}

TEST(Bounds, PaperBeatsPriorBoundsOnGadgetNetworks) {
  // The paper's 1/d threshold dominates Diaz et al.'s 1/(2dm*alpha) and
  // Borodin's 1/m whenever m*alpha > 1 — check on the actual LPS networks.
  for (std::int64_t M : {2, 4, 8}) {
    const ChainedGadgets net = build_closed_chain(4, M);
    const NetworkParams p = network_params(net.graph);
    const std::int64_t d = lps_longest_route(net);
    EXPECT_GT(time_priority_threshold(d), diaz_fifo_threshold(d, p.m, p.alpha))
        << M;
    EXPECT_GT(greedy_threshold(d), diaz_fifo_threshold(d, p.m, p.alpha)) << M;
    // d < m on these networks, so 1/d > 1/m too.
    EXPECT_GT(time_priority_threshold(d), borodin_greedy_threshold(p.m)) << M;
  }
}

TEST(Bounds, ResidenceBound) {
  EXPECT_EQ(residence_bound(10, Rat(1, 3)), 4);   // ceil(10/3).
  EXPECT_EQ(residence_bound(9, Rat(1, 3)), 3);    // Exact.
  EXPECT_EQ(residence_bound(1, Rat(1, 5)), 1);    // ceil(1/5).
}

TEST(Bounds, ResidenceBoundInvalidWindow) {
  EXPECT_THROW(residence_bound(0, Rat(1, 2)), PreconditionError);
}

TEST(Bounds, TheoremCountingIdentityAtThreshold) {
  // The stability proofs hinge on ceil((d+1) r) * ceil(w r) <= ceil(w r)
  // when r <= 1/(d+1): the first factor must be exactly 1.
  for (std::int64_t d = 1; d <= 12; ++d) {
    const Rat r = greedy_threshold(d);
    EXPECT_EQ(r.ceil_mul(d + 1), 1) << d;
    const Rat tp = time_priority_threshold(d);
    EXPECT_EQ(tp.ceil_mul(d), 1) << d;
  }
}

TEST(Bounds, Observation44WStar) {
  // w* = ceil((S + w + 1)/(r* - r)).
  EXPECT_EQ(observation44_w_star(10, 5, Rat(1, 4), Rat(1, 2)), 64);
  EXPECT_EQ(observation44_w_star(0, 1, Rat(0), Rat(1, 2)), 4);
}

TEST(Bounds, Observation44RequiresLargerRate) {
  EXPECT_THROW(observation44_w_star(1, 1, Rat(1, 2), Rat(1, 2)),
               PreconditionError);
  EXPECT_THROW(observation44_w_star(1, 1, Rat(1, 2), Rat(1, 4)),
               PreconditionError);
}

TEST(Bounds, Corollary45Bound) {
  // S=10, w=5, r=1/8, d=3: threshold 1/4, gap 1/8,
  // w* = ceil(16/(1/8)) = 128, bound = ceil(128/4) = 32.
  EXPECT_EQ(corollary45_residence_bound(10, 5, Rat(1, 8), 3), 32);
}

TEST(Bounds, Corollary46Bound) {
  // Same numbers with threshold 1/d = 1/3: gap = 1/3 - 1/8 = 5/24,
  // w* = ceil(16 * 24/5) = 77, bound = ceil(77/3) = 26.
  EXPECT_EQ(corollary46_residence_bound(10, 5, Rat(1, 8), 3), 26);
}

TEST(Bounds, CorollariesRequireStrictlyBelowThreshold) {
  EXPECT_THROW(corollary45_residence_bound(1, 1, Rat(1, 4), 3),
               PreconditionError);
  EXPECT_THROW(corollary46_residence_bound(1, 1, Rat(1, 3), 3),
               PreconditionError);
}

TEST(Bounds, Corollary46TighterThan45) {
  // For the same (S, w, r, d) the time-priority bound is never worse.
  for (std::int64_t d = 2; d <= 6; ++d) {
    const Rat r(1, 2 * (d + 1));
    EXPECT_LE(corollary46_residence_bound(20, 10, r, d),
              corollary45_residence_bound(20, 10, r, d))
        << d;
  }
}

TEST(Bounds, QueueBoundFromResidence) {
  // B = ceil(w r); occupancy <= ceil(r (dB + w)).
  EXPECT_EQ(queue_bound_from_residence(12, Rat(1, 4), 3), 6);
}

}  // namespace
}  // namespace aqt
