// StabilityWatchdog acceptance: flags the Theorem 3.17 FIFO instability
// construction (the E1 experiment) online, stays silent on a stable
// greedy run (E5-style), and analyze_series() — the offline twin used by
// aqt-verify's certificate cross-check — shares the decision rule.
#include "aqt/obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "aqt/adversaries/lps.hpp"
#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt::obs {
namespace {

std::vector<std::uint64_t> linear_series(std::size_t n, double slope,
                                         double base) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint64_t>(base + slope * static_cast<double>(i));
  return v;
}

TEST(AnalyzeSeries, FlagsLinearGrowth) {
  const WatchdogCheck check = analyze_series(linear_series(256, 2.0, 10.0));
  EXPECT_EQ(check.verdict, WatchdogVerdict::kGrowthSuspected);
  EXPECT_GT(check.slope, 1.0);
  EXPECT_GT(check.ratio, 2.0);
}

TEST(AnalyzeSeries, StableOnFlatSeries) {
  const WatchdogCheck flat = analyze_series(linear_series(256, 0.0, 50.0));
  EXPECT_EQ(flat.verdict, WatchdogVerdict::kStable);
  // Large but flat must not fire either — size alone is not growth.
  const WatchdogCheck big = analyze_series(linear_series(256, 0.0, 1e6));
  EXPECT_EQ(big.verdict, WatchdogVerdict::kStable);
}

TEST(AnalyzeSeries, TinyBacklogGrowthIsNoise) {
  // 1 -> 4 packets trips the ratio but not the min_backlog floor.
  const WatchdogCheck check =
      analyze_series(linear_series(256, 0.012, 1.0));
  EXPECT_EQ(check.verdict, WatchdogVerdict::kStable);
}

TEST(AnalyzeSeries, UndecidedOnTooFewSamples) {
  const WatchdogCheck check = analyze_series({1, 2, 3});
  EXPECT_EQ(check.verdict, WatchdogVerdict::kUndecided);
}

/// Drives the watchdog with a synthetic backlog trajectory; the engine
/// reference is unused by the watchdog but required by the interface.
void feed(StabilityWatchdog& dog, const std::vector<std::uint64_t>& series) {
  const Graph g = make_ring(3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  for (std::size_t i = 0; i < series.size(); ++i) {
    StepSample s;
    s.t = static_cast<Time>(i + 1);
    s.in_flight = series[i];
    dog.on_step(s, eng);
  }
}

TEST(Watchdog, VerdictLatchesOnGrowth) {
  WatchdogConfig cfg;
  cfg.check_every = 64;
  cfg.window = 64;
  cfg.min_samples = 8;
  StabilityWatchdog dog(cfg);
  // Growth phase, then a long flat tail: the latched verdict survives.
  std::vector<std::uint64_t> series = linear_series(2048, 1.0, 10.0);
  series.resize(4096, series.back());
  feed(dog, series);
  EXPECT_EQ(dog.verdict(), WatchdogVerdict::kGrowthSuspected);
  EXPECT_GT(dog.first_flag_step(), 0u);
  EXPECT_LE(dog.first_flag_step(), 2048u);
  EXPECT_GT(dog.checks_run(), 0u);
  EXPECT_FALSE(dog.history().empty());
  EXPECT_NE(dog.summary().find("growth-suspected"), std::string::npos);
}

TEST(Watchdog, HistoryCompactionSpansWholeRun) {
  WatchdogConfig cfg;
  cfg.check_every = 512;
  cfg.window = 16;  // Force many stride doublings.
  cfg.min_samples = 8;
  StabilityWatchdog dog(cfg);
  feed(dog, linear_series(8192, 0.5, 100.0));
  // Despite the tiny buffer the whole-run trend is visible.
  EXPECT_EQ(dog.verdict(), WatchdogVerdict::kGrowthSuspected);
}

TEST(Watchdog, CollectMetricsRegistersFamilies) {
  StabilityWatchdog dog;
  feed(dog, linear_series(1024, 1.0, 10.0));
  MetricRegistry reg;
  dog.collect_metrics(reg);
  const std::string json = to_json(reg, "t");
  EXPECT_NE(json.find("aqt_watchdog_checks_total"), std::string::npos);
  EXPECT_NE(json.find("aqt_watchdog_flag"), std::string::npos);
  EXPECT_NE(json.find("aqt_watchdog_first_flag_step"), std::string::npos);
}

TEST(Watchdog, RejectsInvalidConfig) {
  WatchdogConfig cfg;
  cfg.check_every = 1;
  EXPECT_THROW(StabilityWatchdog{cfg}, PreconditionError);
  cfg = {};
  cfg.window = 4;
  EXPECT_THROW(StabilityWatchdog{cfg}, PreconditionError);
}

// --- Live engine runs: the E1/E5 acceptance pair -------------------------

TEST(Watchdog, SilentOnStableGreedyRun) {
  // E5-style stable regime: greedy protocol, r = 1/4 well under the
  // Theorem 4.1 threshold.  The watchdog must settle on kStable and never
  // flag (first_flag_step stays 0).
  const Graph g = make_bidirectional_ring(8);
  auto protocol = make_protocol("NTG", 2);
  WatchdogConfig cfg;
  cfg.check_every = 256;
  StabilityWatchdog dog(cfg);
  EngineConfig ec;
  ec.sinks.samples = &dog;
  Engine eng(g, *protocol, ec);
  StochasticConfig adv_cfg;
  adv_cfg.w = 12;
  adv_cfg.r = Rat(1, 4);
  adv_cfg.max_route_len = 4;
  adv_cfg.seed = 2;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, 20000);
  EXPECT_EQ(dog.verdict(), WatchdogVerdict::kStable);
  EXPECT_EQ(dog.first_flag_step(), 0u);
}

TEST(Watchdog, FlagsTheorem317FifoInstability) {
  // The E1 experiment: LPS iterative adversary at r = 7/10 on the closed
  // gadget chain multiplies the flat ingress queue every iteration
  // (tests/integration/theorem317_test.cpp).  The watchdog must flag it
  // online, before the run ends.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_closed_chain(cfg.n, /*M=*/8);
  FifoProtocol fifo;
  WatchdogConfig dog_cfg;
  dog_cfg.check_every = 1024;
  StabilityWatchdog dog(dog_cfg);
  EngineConfig ec;
  ec.sinks.samples = &dog;
  Engine eng(net.graph, fifo, ec);
  setup_flat_queue(eng, net, 0, /*s_star=*/1200);
  LpsAdversary adv(net, cfg, /*iterations=*/3);
  while (!adv.finished(eng.now() + 1)) eng.step(&adv);

  EXPECT_EQ(dog.verdict(), WatchdogVerdict::kGrowthSuspected);
  EXPECT_GT(dog.first_flag_step(), 0u);
  EXPECT_LT(dog.first_flag_step(), eng.now());

  // The backlog really did grow run-scale: the final in-flight count
  // dwarfs the initial flat queue, so the flag is substance, not noise.
  EXPECT_GT(eng.total_injected() - eng.total_absorbed(), 1200u * 2);
}

}  // namespace
}  // namespace aqt::obs
