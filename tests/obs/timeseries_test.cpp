// TimeseriesRecorder contract: stride sampling, adaptive compaction as a
// pure function of step numbers, watched-edge columns, and byte-stable
// CSV/JSONL exports when the wall column is off.
#include "aqt/obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt::obs {
namespace {

TimeseriesConfig no_wall(Time stride, std::size_t capacity) {
  TimeseriesConfig cfg;
  cfg.stride = stride;
  cfg.capacity = capacity;
  cfg.record_wall = false;
  return cfg;
}

/// Runs a small stochastic workload with `recorder` attached.
void drive(const Graph& g, TimeseriesRecorder& recorder, Time steps,
           std::uint64_t seed = 7) {
  auto protocol = make_protocol("NTG", seed);
  EngineConfig cfg;
  cfg.sinks.samples = &recorder;
  Engine eng(g, *protocol, cfg);
  StochasticConfig adv_cfg;
  adv_cfg.w = 10;
  adv_cfg.r = Rat(1, 3);
  adv_cfg.max_route_len = 4;
  adv_cfg.seed = seed;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, steps);
}

TEST(Timeseries, RecordsEveryStrideThStep) {
  const Graph g = make_ring(6);
  TimeseriesRecorder rec(no_wall(4, 4096));
  drive(g, rec, 100);
  ASSERT_FALSE(rec.rows().empty());
  EXPECT_EQ(rec.steps_seen(), 100u);
  EXPECT_EQ(rec.effective_stride(), 4u);
  for (const auto& row : rec.rows()) EXPECT_EQ(row.t % 4, 0u);
  // Cumulative columns are monotone.
  for (std::size_t i = 1; i < rec.rows().size(); ++i) {
    EXPECT_GE(rec.rows()[i].injected, rec.rows()[i - 1].injected);
    EXPECT_GE(rec.rows()[i].absorbed, rec.rows()[i - 1].absorbed);
    EXPECT_LT(rec.rows()[i - 1].t, rec.rows()[i].t);
  }
}

TEST(Timeseries, CompactionDoublesStrideAndKeepsWholeRunSpan) {
  const Graph g = make_ring(6);
  TimeseriesRecorder rec(no_wall(1, 8));
  drive(g, rec, 200);
  EXPECT_GT(rec.compactions(), 0u);
  EXPECT_LE(rec.rows().size(), 8u);
  // Surviving rows land on the final stride and still cover early steps.
  const Time stride = rec.effective_stride();
  EXPECT_GT(stride, 1u);
  for (const auto& row : rec.rows()) EXPECT_EQ(row.t % stride, 0u);
  EXPECT_LE(rec.rows().front().t, stride);
}

TEST(Timeseries, IdenticalRunsKeepByteIdenticalRows) {
  // The compaction schedule must be a pure function of the step sequence:
  // two identical runs export byte-identical CSV and JSONL (wall off).
  const Graph g = make_grid(3, 3);
  TimeseriesRecorder a(no_wall(1, 16));
  TimeseriesRecorder b(no_wall(1, 16));
  drive(g, a, 500);
  drive(g, b, 500);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_jsonl(), b.to_jsonl());
}

TEST(Timeseries, WatchedEdgeColumnsTrackQueueDepths) {
  const Graph g = make_ring(5);
  TimeseriesConfig cfg = no_wall(1, 4096);
  cfg.watched = {EdgeId{0}, EdgeId{1}};
  TimeseriesRecorder rec(cfg, &g);
  drive(g, rec, 60);
  ASSERT_FALSE(rec.rows().empty());
  const auto headers = rec.headers();
  // Fixed columns then one per watched edge, named from the graph.
  ASSERT_GE(headers.size(), 2u);
  EXPECT_EQ(headers.front(), "t");
  EXPECT_NE(headers[headers.size() - 2].find("edge_"), std::string::npos);
  for (std::size_t i = 0; i < rec.rows().size(); ++i) {
    const auto depths = rec.watched_depths(i);
    ASSERT_EQ(depths.size(), 2u);
    // A single queue can never exceed the step's global max.
    EXPECT_LE(depths[0], rec.rows()[i].max_queue);
    EXPECT_LE(depths[1], rec.rows()[i].max_queue);
  }
}

TEST(Timeseries, CsvHeaderMatchesHeaders) {
  const Graph g = make_ring(4);
  TimeseriesRecorder rec(no_wall(2, 64));
  drive(g, rec, 40);
  const std::string csv = rec.to_csv();
  const auto headers = rec.headers();
  std::string expected;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    if (i) expected += ',';
    expected += headers[i];
  }
  EXPECT_EQ(csv.substr(0, expected.size()), expected);
  // One line per row plus the header.
  const auto lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, rec.rows().size() + 1);
}

TEST(Timeseries, RejectsInvalidConfig) {
  EXPECT_THROW(TimeseriesRecorder(no_wall(0, 64)), PreconditionError);
  EXPECT_THROW(TimeseriesRecorder(no_wall(1, 2)), PreconditionError);
}

TEST(StepSampleFanoutTest, AsSinkCollapsesTrivialCases) {
  StepSampleFanout empty;
  EXPECT_EQ(empty.as_sink(), nullptr);

  TimeseriesRecorder only(no_wall(1, 64));
  StepSampleFanout one;
  one.add(&only);
  EXPECT_EQ(one.as_sink(), static_cast<StepSampleSink*>(&only));

  TimeseriesRecorder second(no_wall(1, 64));
  StepSampleFanout two;
  two.add(&only).add(&second);
  EXPECT_EQ(two.as_sink(), static_cast<StepSampleSink*>(&two));
}

TEST(StepSampleFanoutTest, DeliversToEverySink) {
  const Graph g = make_ring(5);
  TimeseriesRecorder a(no_wall(1, 64));
  TimeseriesRecorder b(no_wall(2, 64));
  StepSampleFanout fan;
  fan.add(&a).add(&b);

  auto protocol = make_protocol("FIFO", 1);
  EngineConfig cfg;
  cfg.sinks.samples = fan.as_sink();
  Engine eng(g, *protocol, cfg);
  StochasticConfig adv_cfg;
  adv_cfg.w = 8;
  adv_cfg.r = Rat(1, 4);
  adv_cfg.max_route_len = 3;
  adv_cfg.seed = 11;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, 50);

  EXPECT_EQ(a.steps_seen(), 50u);
  EXPECT_EQ(b.steps_seen(), 50u);
  EXPECT_GT(a.rows().size(), b.rows().size());
}

}  // namespace
}  // namespace aqt::obs
