#include "aqt/obs/events.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt::obs {
namespace {

/// Run a small deterministic workload with the event writer attached and
/// return the parsed stream.
std::vector<ObsEvent> record_ring_run(std::uint64_t* lines = nullptr) {
  const Graph g = make_ring(6);
  FifoProtocol fifo;
  std::ostringstream os;
  JsonlEventWriter writer(os, g);
  EngineConfig cfg;
  cfg.sinks.events = &writer;
  Engine eng(g, fifo, cfg);
  writer.milestone(0, "run-begin");
  eng.add_initial_packet({0, 1, 2}, 7);
  eng.add_initial_packet({3, 4}, 8);

  struct Once final : Adversary {
    bool done = false;
    void step(Time t, const Engine&, AdversaryStep& out) override {
      if (t == 2 && !done) {
        out.injections.push_back(Injection{{1, 2, 3}, 9});
        done = true;
      }
    }
  } adv;
  eng.run(&adv, 12);
  writer.milestone(eng.now(), "run-end");
  if (lines != nullptr) *lines = writer.lines_written();
  std::istringstream is(os.str());
  return parse_jsonl_events(is, "test");
}

TEST(Events, RoundTripMatchesRunShape) {
  std::uint64_t lines = 0;
  const std::vector<ObsEvent> events = record_ring_run(&lines);
  EXPECT_EQ(events.size(), lines);

  std::map<std::uint64_t, int> injects;
  std::map<std::uint64_t, int> sends;
  std::map<std::uint64_t, int> absorbs;
  int milestones = 0;
  for (const ObsEvent& ev : events) {
    switch (ev.kind) {
      case ObsEvent::Kind::kInject:
        ++injects[ev.packet];
        break;
      case ObsEvent::Kind::kSend:
        ++sends[ev.packet];
        break;
      case ObsEvent::Kind::kAbsorb:
        ++absorbs[ev.packet];
        break;
      case ObsEvent::Kind::kMilestone:
        ++milestones;
        break;
    }
  }
  // Three packets, each injected once, sent once per route edge, absorbed
  // once; two milestones bracket the run.
  EXPECT_EQ(injects.size(), 3u);
  EXPECT_EQ(absorbs.size(), 3u);
  EXPECT_EQ(milestones, 2);
  EXPECT_EQ(sends[0], 3);  // Route {0,1,2}.
  EXPECT_EQ(sends[1], 2);  // Route {3,4}.
  EXPECT_EQ(sends[2], 3);  // Injected route {1,2,3}.
}

TEST(Events, StreamIsOrderedAndInternallyConsistent) {
  const std::vector<ObsEvent> events = record_ring_run();
  std::map<std::uint64_t, Time> inject_time;
  std::map<std::uint64_t, std::uint64_t> next_hop;
  Time last_t = 0;
  for (const ObsEvent& ev : events) {
    EXPECT_GE(ev.t, last_t) << "events must be time-ordered";
    last_t = ev.t;
    if (ev.kind == ObsEvent::Kind::kInject) {
      EXPECT_FALSE(ev.route.empty());
      inject_time[ev.packet] = ev.t;
    } else if (ev.kind == ObsEvent::Kind::kSend) {
      ASSERT_TRUE(inject_time.count(ev.packet)) << "send before inject";
      EXPECT_EQ(ev.hop, next_hop[ev.packet]++) << "hops must be sequential";
      EXPECT_GE(ev.residence, 1);
    } else if (ev.kind == ObsEvent::Kind::kAbsorb) {
      ASSERT_TRUE(inject_time.count(ev.packet));
      EXPECT_EQ(ev.latency, ev.t - inject_time[ev.packet]);
    }
  }
}

TEST(Events, InitialPacketsAreFlaggedInitial) {
  const std::vector<ObsEvent> events = record_ring_run();
  for (const ObsEvent& ev : events) {
    if (ev.kind != ObsEvent::Kind::kInject) continue;
    EXPECT_EQ(ev.initial, ev.t == 0);
  }
}

TEST(Events, ParserAcceptsEscapesAndBlankLines) {
  std::istringstream is(
      "{\"ev\":\"milestone\",\"t\":0,\"name\":\"a\\\"b\\\\c\\u0041\"}\n"
      "\n"
      "{\"ev\":\"absorb\",\"t\":3,\"packet\":2,\"latency\":1}\n");
  const auto events = parse_jsonl_events(is, "inline");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a\"b\\cA");
  EXPECT_EQ(events[1].latency, 1);
}

TEST(Events, ParserRejectsMalformedInputWithDiagnostics) {
  const auto reject = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_THROW(parse_jsonl_events(is, "bad"), PreconditionError) << text;
  };
  reject("not json\n");
  reject("{\"t\":1}\n");                                     // No "ev".
  reject("{\"ev\":\"warp\",\"t\":1}\n");                     // Unknown kind.
  reject("{\"ev\":\"inject\",\"t\":1}\n");                   // No route.
  reject("{\"ev\":\"send\",\"t\":1,\"packet\":0}\n");        // No edge.
  reject("{\"ev\":\"milestone\",\"t\":1}\n");                // No name.
  reject("{\"ev\":\"absorb\",\"t\":1,\"bogus\":2}\n");       // Unknown key.
  reject("{\"ev\":\"absorb\",\"t\":1,\"packet\":-2}\n");     // Negative u64.
  reject("{\"ev\":\"absorb\",\"t\":99999999999999999999}\n");  // Overflow.
  reject("{\"ev\":\"absorb\",\"t\":1} trailing\n");
  reject("{\"ev\":\"absorb\",\"t\":1");                      // Truncated.
}

}  // namespace
}  // namespace aqt::obs
