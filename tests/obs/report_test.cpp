// aqt-report library contract: the CSV/JSON parsers round-trip exactly
// what this repo's exporters emit, sparklines are pure functions, and the
// rendered HTML is self-contained.
#include "aqt/obs/report.hpp"

#include <gtest/gtest.h>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/obs/snapshot.hpp"
#include "aqt/obs/timeseries.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt::obs {
namespace {

/// A real recorder export (wall column off for determinism).
std::string sample_csv() {
  const Graph g = make_ring(6);
  TimeseriesConfig cfg;
  cfg.stride = 2;
  cfg.capacity = 256;
  cfg.record_wall = false;
  TimeseriesRecorder rec(cfg);
  auto protocol = make_protocol("NTG", 3);
  EngineConfig ec;
  ec.sinks.samples = &rec;
  Engine eng(g, *protocol, ec);
  StochasticConfig adv_cfg;
  adv_cfg.w = 10;
  adv_cfg.r = Rat(1, 3);
  adv_cfg.max_route_len = 4;
  adv_cfg.seed = 3;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, 100);
  return rec.to_csv();
}

TEST(ReportParsers, RoundTripsRecorderCsv) {
  const ParsedTimeseries ts = parse_timeseries_csv(sample_csv());
  ASSERT_FALSE(ts.columns.empty());
  EXPECT_EQ(ts.columns.front(), "t");
  EXPECT_EQ(ts.rows(), 50u);  // 100 steps at stride 2.
  const auto* t = ts.find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->front(), 2.0);
  const auto* in_flight = ts.find("in_flight");
  ASSERT_NE(in_flight, nullptr);
  EXPECT_EQ(in_flight->size(), ts.rows());
  EXPECT_EQ(ts.find("no_such_column"), nullptr);
}

TEST(ReportParsers, RejectsMalformedCsv) {
  EXPECT_THROW(parse_timeseries_csv(""), PreconditionError);
  EXPECT_THROW(parse_timeseries_csv("a,b\n1,2\n3\n"), PreconditionError);
  EXPECT_THROW(parse_timeseries_csv("a,b\n1,notanumber\n"),
               PreconditionError);
}

TEST(ReportParsers, RoundTripsMetricsJson) {
  MetricRegistry reg;
  reg.counter("aqt_test_total", "a counter").inc(42);
  reg.gauge("aqt_test_gauge", "a gauge").set(2.5);
  auto& hist = reg.histogram("aqt_test_nanos", "a histogram");
  hist.add(100);
  hist.add(200);
  const auto families = parse_metrics_json(to_json(reg, "unit-test"));
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "aqt_test_total");
  EXPECT_EQ(families[0].type, "counter");
  ASSERT_EQ(families[0].cells.size(), 1u);
  ASSERT_FALSE(families[0].cells[0].fields.empty());
  EXPECT_EQ(families[0].cells[0].fields[0].second, 42.0);
  EXPECT_EQ(families[1].type, "gauge");
  EXPECT_EQ(families[1].cells[0].fields[0].second, 2.5);
  EXPECT_EQ(families[2].type, "histogram");
  // Histogram cells expose count/sum/... field pairs.
  bool saw_count = false;
  for (const auto& [key, value] : families[2].cells[0].fields)
    if (key == "count") {
      saw_count = true;
      EXPECT_EQ(value, 2.0);
    }
  EXPECT_TRUE(saw_count);
}

TEST(ReportParsers, RejectsWrongSchemaTag) {
  EXPECT_THROW(parse_metrics_json("{\"schema\":\"other/9\",\"families\":[]}"),
               PreconditionError);
  EXPECT_THROW(parse_metrics_json("not json"), PreconditionError);
}

TEST(Sparkline, IsPureAndBounded) {
  const std::vector<double> values = {1, 5, 3, 9, 2};
  const std::string a = svg_sparkline(values);
  EXPECT_EQ(a, svg_sparkline(values));
  EXPECT_NE(a.find("<svg"), std::string::npos);
  EXPECT_NE(a.find("polyline"), std::string::npos);
  // A flat series still renders (centered line, no division by zero).
  const std::string flat = svg_sparkline({4, 4, 4, 4});
  EXPECT_NE(flat.find("<svg"), std::string::npos);
}

TEST(RenderHtml, ContainsSectionsAndEscapes) {
  const ParsedTimeseries ts = parse_timeseries_csv(sample_csv());
  MetricRegistry reg;
  reg.counter("aqt_demo_total", "help <tag> & more").inc(1);
  const auto families = parse_metrics_json(to_json(reg, "t"));
  ReportOptions options;
  options.title = "unit <b>test</b>";
  options.notes = "watchdog: stable & sound";
  const std::string html = render_html_report(ts, families, options);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("aqt_demo_total"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("stable &amp; sound"), std::string::npos);
  // User text is escaped, never spliced as markup.
  EXPECT_EQ(html.find("<b>test</b>"), std::string::npos);
  // No external references: self-contained by construction.  (The SVG
  // xmlns URL is a namespace identifier, not a fetch.)
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
  EXPECT_EQ(html.find("href="), std::string::npos);
}

TEST(RenderHtml, EmptyInputsOmitSections) {
  const std::string html = render_html_report({}, {}, {});
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_EQ(html.find("<svg"), std::string::npos);
}

}  // namespace
}  // namespace aqt::obs
