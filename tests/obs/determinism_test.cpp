// Observer-effect guard: attaching the full observability stack (step-phase
// profiler + JSONL event stream + metrics collection) to a run must leave
// the recorded run trace byte-identical — same FNV-1a content hash — to a
// bare run.  This is the unit-test twin of `aqt-fuzz --obs-trials`.
#include <gtest/gtest.h>

#include <sstream>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/obs/events.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/profiler.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/obs/snapshot.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/trace/run_trace.hpp"

namespace aqt::obs {
namespace {

struct RunResult {
  std::uint64_t trace_hash = 0;
  std::string trace_text;
};

RunResult run_workload(const Graph& g, bool observed) {
  auto protocol = make_protocol("NTG", 3);
  RunTraceMeta meta;
  meta.protocol = "NTG";
  meta.seed = 3;
  std::ostringstream trace_os;
  RunTraceWriter writer(trace_os, g, meta);
  StepProfiler profiler;
  std::ostringstream events_os;
  JsonlEventWriter events(events_os, g);
  EngineConfig cfg;
  cfg.sinks.trace = &writer;
  cfg.audit_invariants = true;
  if (observed) {
    cfg.sinks.profile = &profiler;
    cfg.sinks.events = &events;
  }
  Engine eng(g, *protocol, cfg);
  StochasticConfig adv_cfg;
  adv_cfg.w = 10;
  adv_cfg.r = Rat(1, 3);
  adv_cfg.max_route_len = 4;
  adv_cfg.seed = 3;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, 400);
  writer.finish(eng.total_injected(), eng.total_absorbed());

  if (observed) {
    // Collecting a snapshot must also be side-effect free on the engine.
    MetricRegistry reg;
    collect_engine_metrics(eng, reg);
    collect_profile_metrics(profiler, reg);
    EXPECT_GT(profiler.report().steps, 0u);
    EXPECT_GT(events.lines_written(), 0u);
  }
  return {writer.content_hash(), trace_os.str()};
}

TEST(ObserverEffect, FullObsStackLeavesRunTraceByteIdentical) {
  for (const auto& g : {make_grid(4, 4), make_bidirectional_ring(5)}) {
    const RunResult bare = run_workload(g, false);
    const RunResult observed = run_workload(g, true);
    EXPECT_EQ(bare.trace_hash, observed.trace_hash);
    EXPECT_EQ(bare.trace_text, observed.trace_text);
  }
}

TEST(ObserverEffect, SnapshotCollectionIsRepeatable) {
  const Graph g = make_grid(3, 3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  StochasticConfig adv_cfg;
  adv_cfg.w = 8;
  adv_cfg.r = Rat(1, 4);
  adv_cfg.max_route_len = 3;
  adv_cfg.seed = 2;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, 100);

  MetricRegistry a;
  MetricRegistry b;
  collect_engine_metrics(eng, a);
  collect_engine_metrics(eng, b);
  EXPECT_EQ(to_json(a, "t"), to_json(b, "t"));
}

}  // namespace
}  // namespace aqt::obs
