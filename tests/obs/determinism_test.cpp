// Observer-effect guard: attaching the full observability stack (phase
// trace spans + JSONL event stream + flight-recorder timeseries + online
// stability watchdog + metrics collection) to a run must leave the
// recorded run trace byte-identical — same FNV-1a content hash — to a
// bare run, and the run-pool must keep per-cell hashes identical across
// --jobs 1/2/4 with worker cell tracing on.  This is the unit-test twin
// of `aqt-fuzz --obs-trials`.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/obs/events.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/profiler.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/obs/snapshot.hpp"
#include "aqt/obs/timeseries.hpp"
#include "aqt/obs/tracing.hpp"
#include "aqt/obs/watchdog.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/runner/run_spec.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/trace/run_trace.hpp"

namespace aqt::obs {
namespace {

struct WorkloadResult {
  std::uint64_t trace_hash = 0;
  std::string trace_text;
};

WorkloadResult run_workload(const Graph& g, bool observed) {
  auto protocol = make_protocol("NTG", 3);
  RunTraceMeta meta;
  meta.protocol = "NTG";
  meta.seed = 3;
  std::ostringstream trace_os;
  RunTraceWriter writer(trace_os, g, meta);
  std::ostringstream events_os;
  JsonlEventWriter events(events_os, g);
  TimeseriesConfig ts_cfg;
  ts_cfg.capacity = 16;  // Small: exercise compaction during the run.
  ts_cfg.watched = {EdgeId{0}};
  TimeseriesRecorder recorder(ts_cfg, &g);
  WatchdogConfig dog_cfg;
  dog_cfg.check_every = 32;
  dog_cfg.window = 16;
  dog_cfg.min_samples = 4;
  StabilityWatchdog watchdog(dog_cfg);
  StepSampleFanout fanout;
  fanout.add(&recorder).add(&watchdog);
  TraceEventLog trace_log;
  PhaseTraceRecorder::Config phase_cfg;
  phase_cfg.stride = 2;
  PhaseTraceRecorder phases(trace_log, phase_cfg);
  EngineConfig cfg;
  cfg.sinks.trace = &writer;
  cfg.audit_invariants = true;
  if (observed) {
    cfg.sinks.profile = &phases;
    cfg.sinks.events = &events;
    cfg.sinks.samples = fanout.as_sink();
  }
  Engine eng(g, *protocol, cfg);
  StochasticConfig adv_cfg;
  adv_cfg.w = 10;
  adv_cfg.r = Rat(1, 3);
  adv_cfg.max_route_len = 4;
  adv_cfg.seed = 3;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, 400);
  writer.finish(eng.total_injected(), eng.total_absorbed());

  if (observed) {
    // Collecting a snapshot must also be side-effect free on the engine.
    MetricRegistry reg;
    collect_engine_metrics(eng, reg);
    watchdog.collect_metrics(reg);
    EXPECT_GT(events.lines_written(), 0u);
    EXPECT_FALSE(recorder.rows().empty());
    EXPECT_GT(recorder.compactions(), 0u);
    EXPECT_GT(phases.recorded_steps(), 0u);
    EXPECT_GT(trace_log.size(), 0u);
    EXPECT_GT(watchdog.checks_run(), 0u);
  } else {
    EXPECT_TRUE(recorder.rows().empty());
  }
  return {writer.content_hash(), trace_os.str()};
}

TEST(ObserverEffect, FullObsStackLeavesRunTraceByteIdentical) {
  for (const auto& g : {make_grid(4, 4), make_bidirectional_ring(5)}) {
    const WorkloadResult bare = run_workload(g, false);
    const WorkloadResult observed = run_workload(g, true);
    EXPECT_EQ(bare.trace_hash, observed.trace_hash);
    EXPECT_EQ(bare.trace_text, observed.trace_text);
  }
}

TEST(ObserverEffect, PoolCellTracingKeepsHashesIdenticalAcrossJobs) {
  // The acceptance bar for the worker telemetry/tracing work: per-cell
  // run-trace hashes are a pure function of the spec, never of the jobs
  // count or of the observers attached to the pool.
  std::vector<RunSpec> specs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunSpec spec;
    spec.name = "cell" + std::to_string(seed);
    spec.topology = {"grid3x3", [] { return make_grid(3, 3); }};
    spec.protocol = seed % 2 ? "FIFO" : "NTG";
    spec.seed = seed;
    spec.steps = 200;
    spec.adversary = [](const Graph& g, std::uint64_t s) {
      StochasticConfig cfg;
      cfg.w = 10;
      cfg.r = Rat(1, 4);
      cfg.max_route_len = 3;
      cfg.seed = s;
      return std::make_unique<StochasticAdversary>(g, cfg);
    };
    spec.artifacts.trace_hash = true;
    specs.push_back(std::move(spec));
  }

  const RunPoolReport bare = run_pool(specs, 1);
  std::vector<std::uint64_t> bare_hashes;
  for (const RunResult& r : bare.results) bare_hashes.push_back(r.trace_hash);

  for (const unsigned jobs : {1u, 2u, 4u}) {
    TraceEventLog log;
    PoolOptions options;
    options.trace = &log;
    const RunPoolReport traced = run_pool(specs, jobs, options);
    ASSERT_EQ(traced.results.size(), bare_hashes.size()) << jobs << " jobs";
    for (std::size_t i = 0; i < bare_hashes.size(); ++i) {
      EXPECT_EQ(traced.results[i].trace_hash, bare_hashes[i])
          << "cell " << i << " at " << jobs << " jobs";
    }
    // One cell span per executed spec, merged in deterministic order.
    std::size_t cell_spans = 0;
    for (const TraceEvent& e : log.events())
      if (e.ph == 'X' && e.name.rfind("cell ", 0) == 0) ++cell_spans;
    EXPECT_EQ(cell_spans, specs.size()) << jobs << " jobs";
    // The jobs-invariant metric snapshot really is jobs-invariant.
    EXPECT_EQ(to_json(traced.metrics, "pool"), to_json(bare.metrics, "pool"))
        << jobs << " jobs";
  }
}

TEST(ObserverEffect, SnapshotCollectionIsRepeatable) {
  const Graph g = make_grid(3, 3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  StochasticConfig adv_cfg;
  adv_cfg.w = 8;
  adv_cfg.r = Rat(1, 4);
  adv_cfg.max_route_len = 3;
  adv_cfg.seed = 2;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, 100);

  MetricRegistry a;
  MetricRegistry b;
  collect_engine_metrics(eng, a);
  collect_engine_metrics(eng, b);
  EXPECT_EQ(to_json(a, "t"), to_json(b, "t"));
}

}  // namespace
}  // namespace aqt::obs
