#include "aqt/obs/export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/obs/snapshot.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/verify/scenario_run.hpp"

namespace aqt::obs {
namespace {

/// A small fixed registry exercising every type, labels, and escaping.
MetricRegistry golden_registry() {
  MetricRegistry reg;
  reg.counter("aqt_steps_total", "Engine steps executed").set(13);
  reg.gauge("aqt_mean_latency_steps", "Mean \"end-to-end\" latency").set(3.25);
  Histogram& h = reg.histogram("aqt_latency_steps", "Latency distribution");
  h.add(1);
  h.add(2);
  h.add(5);
  reg.counter("aqt_edge_sends_total", "Sends per edge", "edge", "r0").set(7);
  reg.counter("aqt_edge_sends_total", "Sends per edge", "edge", "r1").set(5);
  return reg;
}

TEST(Export, JsonGolden) {
  const MetricRegistry reg = golden_registry();
  EXPECT_EQ(
      to_json(reg, "test"),
      "{\"schema\":\"aqt-metrics/1\",\"tool\":\"test\",\"metrics\":["
      "{\"name\":\"aqt_steps_total\",\"type\":\"counter\",\"help\":\"Engine "
      "steps executed\",\"label_key\":\"\",\"values\":[{\"label\":\"\","
      "\"value\":13}]},"
      "{\"name\":\"aqt_mean_latency_steps\",\"type\":\"gauge\",\"help\":"
      "\"Mean \\\"end-to-end\\\" latency\",\"label_key\":\"\",\"values\":[{"
      "\"label\":\"\",\"value\":3.25}]},"
      "{\"name\":\"aqt_latency_steps\",\"type\":\"histogram\",\"help\":"
      "\"Latency distribution\",\"label_key\":\"\",\"values\":[{\"label\":"
      "\"\",\"count\":3,\"sum\":8,\"min\":1,\"max\":5,\"mean\":2."
      "666666667,\"p50\":3,\"p90\":5,\"p99\":5}]},"
      "{\"name\":\"aqt_edge_sends_total\",\"type\":\"counter\",\"help\":"
      "\"Sends per edge\",\"label_key\":\"edge\",\"values\":[{\"label\":"
      "\"r0\",\"value\":7},{\"label\":\"r1\",\"value\":5}]}]}");
}

TEST(Export, CsvGolden) {
  const MetricRegistry reg = golden_registry();
  EXPECT_EQ(to_csv(reg),
            "name,label,type,field,value\n"
            "aqt_steps_total,,counter,value,13\n"
            "aqt_mean_latency_steps,,gauge,value,3.25\n"
            "aqt_latency_steps,,histogram,count,3\n"
            "aqt_latency_steps,,histogram,sum,8\n"
            "aqt_latency_steps,,histogram,min,1\n"
            "aqt_latency_steps,,histogram,max,5\n"
            "aqt_latency_steps,,histogram,mean,2.666666667\n"
            "aqt_latency_steps,,histogram,p50,3\n"
            "aqt_latency_steps,,histogram,p90,5\n"
            "aqt_latency_steps,,histogram,p99,5\n"
            "aqt_edge_sends_total,r0,counter,value,7\n"
            "aqt_edge_sends_total,r1,counter,value,5\n");
}

TEST(Export, PrometheusGolden) {
  const MetricRegistry reg = golden_registry();
  EXPECT_EQ(to_prometheus(reg),
            "# HELP aqt_steps_total Engine steps executed\n"
            "# TYPE aqt_steps_total counter\n"
            "aqt_steps_total 13\n"
            "# HELP aqt_mean_latency_steps Mean \"end-to-end\" latency\n"
            "# TYPE aqt_mean_latency_steps gauge\n"
            "aqt_mean_latency_steps 3.25\n"
            "# HELP aqt_latency_steps Latency distribution\n"
            "# TYPE aqt_latency_steps histogram\n"
            "aqt_latency_steps_bucket{le=\"1\"} 1\n"
            "aqt_latency_steps_bucket{le=\"3\"} 2\n"
            "aqt_latency_steps_bucket{le=\"7\"} 3\n"
            "aqt_latency_steps_bucket{le=\"+Inf\"} 3\n"
            "aqt_latency_steps_sum 8\n"
            "aqt_latency_steps_count 3\n"
            "# HELP aqt_edge_sends_total Sends per edge\n"
            "# TYPE aqt_edge_sends_total counter\n"
            "aqt_edge_sends_total{edge=\"r0\"} 7\n"
            "aqt_edge_sends_total{edge=\"r1\"} 5\n");
}

/// Minimal exposition-format checker: every non-comment line must be
/// `name[{key="value"}] number`, every sample preceded by a TYPE for its
/// family, histogram families must end with a +Inf bucket, _sum and _count.
void check_prometheus_parses(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::string open_histogram;  // Family awaiting its closing triple.
  bool saw_inf = false;
  bool saw_sum = false;
  bool saw_count = false;
  const auto close_histogram = [&] {
    if (open_histogram.empty()) return;
    EXPECT_TRUE(saw_inf && saw_sum && saw_count)
        << "incomplete histogram " << open_histogram;
    open_histogram.clear();
  };
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      close_histogram();
      std::istringstream ls(line.substr(7));
      std::string name;
      std::string type;
      ls >> name >> type;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      if (type == "histogram") {
        open_histogram = name;
        saw_inf = saw_sum = saw_count = false;
      }
      continue;
    }
    // Sample line: name or name{...}, one space, a finite number.
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    EXPECT_EQ(value.find("nan"), std::string::npos) << line;
    EXPECT_EQ(value.find("inf"), std::string::npos) << line;
    std::string name = series;
    const std::size_t brace = series.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(series.back(), '}') << line;
      name = series.substr(0, brace);
      const std::string labels =
          series.substr(brace + 1, series.size() - brace - 2);
      EXPECT_NE(labels.find('='), std::string::npos) << line;
      EXPECT_NE(labels.find('"'), std::string::npos) << line;
    }
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(name.front() == '_' || std::islower(name.front())) << line;
    for (const char c : name)
      EXPECT_TRUE(c == '_' || std::islower(c) || std::isdigit(c)) << line;
    if (!open_histogram.empty() &&
        name.rfind(open_histogram, 0) == 0) {
      if (series.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
      if (name == open_histogram + "_sum") saw_sum = true;
      if (name == open_histogram + "_count") saw_count = true;
    }
  }
  close_histogram();
}

/// The acceptance scenario: run a scripted .aqts file end to end, snapshot
/// the engine, and pin the exported values.  The scenario is deterministic,
/// so this is a golden test of the whole collect -> export pipeline.
TEST(Export, RingConvoyScenarioSnapshot) {
  ScenarioRun srun =
      load_scenario_run(std::string(AQT_SOURCE_DIR) +
                        "/examples/scenarios/ring_convoy.aqts");
  auto protocol = make_protocol(srun.scenario.protocol);
  Engine eng(srun.topology.graph, *protocol);
  ReplayAdversary adv(srun.script);
  for (Time i = 0; i < 64; ++i) {
    if (adv.finished(eng.now() + 1)) break;
    eng.step(&adv);
  }
  eng.drain(64);

  MetricRegistry reg;
  collect_engine_metrics(eng, reg);

  const auto counter_value = [&](const std::string& name) {
    const MetricRegistry::Family* fam = reg.find(name);
    EXPECT_NE(fam, nullptr) << name;
    return fam == nullptr ? 0 : fam->cells.front().counter.value();
  };
  EXPECT_EQ(counter_value("aqt_injected_total"), 4u);
  EXPECT_EQ(counter_value("aqt_absorbed_total"), 4u);
  EXPECT_EQ(counter_value("aqt_sends_total"), 12u);

  const std::string json = to_json(reg, "aqt-sim");
  EXPECT_NE(json.find("\"schema\":\"aqt-metrics/1\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"aqt-sim\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"aqt_injected_total\",\"type\":\"counter\","
                      "\"help\":\"Packets created (initial configuration "
                      "plus injections)\",\"label_key\":\"\",\"values\":[{"
                      "\"label\":\"\",\"value\":4}]}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"aqt_residence_steps\",\"type\":"
                      "\"histogram\""),
            std::string::npos);
  // Nothing in an engine snapshot may be non-finite (empty-denominator
  // convention).
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);

  check_prometheus_parses(to_prometheus(reg));
}

TEST(Export, EmptyEngineSnapshotIsAllZeroAndFinite) {
  // An engine that never stepped: every rate/mean must export as exactly 0
  // (the empty-denominator convention), never NaN/Inf.
  const Graph g = make_ring(4);
  FifoProtocol fifo;
  const Engine eng(g, fifo);
  MetricRegistry reg;
  collect_engine_metrics(eng, reg);
  const std::string json = to_json(reg, "t");
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  const MetricRegistry::Family* rate =
      reg.find("aqt_injection_rate_per_step");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->cells.front().gauge.value(), 0.0);
  const MetricRegistry::Family* mean = reg.find("aqt_mean_latency_steps");
  ASSERT_NE(mean, nullptr);
  EXPECT_EQ(mean->cells.front().gauge.value(), 0.0);
  // Per-edge families are elided entirely when nothing moved.
  EXPECT_EQ(reg.find("aqt_edge_sends_total"), nullptr);
  check_prometheus_parses(json.empty() ? "" : to_prometheus(reg));
}

TEST(Export, PrometheusOfEmptyRegistryIsEmpty) {
  const MetricRegistry reg;
  EXPECT_EQ(to_prometheus(reg), "");
  EXPECT_EQ(to_csv(reg), "name,label,type,field,value\n");
  EXPECT_EQ(to_json(reg, "t"),
            "{\"schema\":\"aqt-metrics/1\",\"tool\":\"t\",\"metrics\":[]}");
}

}  // namespace
}  // namespace aqt::obs
