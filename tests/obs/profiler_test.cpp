#include "aqt/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"

namespace aqt::obs {
namespace {

TEST(Profiler, EmptyReportFollowsZeroConvention) {
  const StepProfiler profiler;
  const StepProfiler::Report rep = profiler.report();
  EXPECT_EQ(rep.steps, 0u);
  EXPECT_EQ(rep.total_step_nanos, 0u);
  EXPECT_EQ(rep.steps_per_second(), 0.0);
  EXPECT_EQ(rep.wall_seconds(), 0.0);
  for (const auto& ps : rep.phases) {
    EXPECT_EQ(ps.calls, 0u);
    EXPECT_EQ(ps.nanos, 0u);
  }
}

TEST(Profiler, CountsEngineStepsAndPhases) {
  const Graph g = make_grid(3, 3);
  FifoProtocol fifo;
  StepProfiler profiler;
  EngineConfig cfg;
  cfg.sinks.profile = &profiler;
  Engine eng(g, fifo, cfg);
  StochasticConfig adv_cfg;
  adv_cfg.w = 8;
  adv_cfg.r = Rat(1, 4);
  adv_cfg.max_route_len = 3;
  adv_cfg.seed = 5;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, 50);

  const StepProfiler::Report rep = profiler.report();
  EXPECT_EQ(rep.steps, 50u);
  // Whole-step wall time is sampled on the bracket-free offset slot: one
  // histogram entry per stride, at steps == kStepTimeOffset (mod stride).
  constexpr std::uint64_t kStride = StepProfiler::kPhaseSampleStride;
  constexpr std::uint64_t kOffset = StepProfiler::kStepTimeOffset;
  EXPECT_EQ(profiler.step_nanos_histogram().count(),
            (50 + kStride - 1 - kOffset) / kStride);
  EXPECT_GT(rep.total_step_nanos, 0u);
  EXPECT_GT(rep.steps_per_second(), 0.0);
  // One transmit/absorb/record bracket per step; inject only while the
  // adversary drives; audit off in this config.
  EXPECT_EQ(rep.phases[static_cast<std::size_t>(StepPhase::kTransmit)].calls,
            50u);
  EXPECT_EQ(rep.phases[static_cast<std::size_t>(StepPhase::kAbsorb)].calls,
            50u);
  EXPECT_EQ(rep.phases[static_cast<std::size_t>(StepPhase::kInject)].calls,
            50u);
  EXPECT_EQ(rep.phases[static_cast<std::size_t>(StepPhase::kRecord)].calls,
            50u);
  EXPECT_EQ(rep.phases[static_cast<std::size_t>(StepPhase::kAudit)].calls,
            0u);

  const std::string text = profiler.summary();
  EXPECT_NE(text.find("50 steps"), std::string::npos);
  EXPECT_NE(text.find("transmit"), std::string::npos);
}

TEST(Profiler, AuditPhaseBracketedWhenAuditingIsOn) {
  const Graph g = make_ring(5);
  FifoProtocol fifo;
  StepProfiler profiler;
  EngineConfig cfg;
  cfg.sinks.profile = &profiler;
  cfg.audit_invariants = true;
  Engine eng(g, fifo, cfg);
  eng.add_initial_packet({0, 1, 2});
  eng.drain(16);
  EXPECT_GT(profiler.report()
                .phases[static_cast<std::size_t>(StepPhase::kAudit)]
                .calls,
            0u);
}

/// The ISSUE's overhead guard: a run with the profiler detached must not be
/// slower than 2x the profiled run's step time... and, more importantly,
/// profiling itself must cost less than 2x the bare run.  Wall-clock tests
/// are noisy, so measure a real workload (median of 5) and assert only the
/// generous documented bound.
TEST(Profiler, OffIsCheap) {
  const Graph g = make_grid(6, 6);
  StochasticConfig adv_cfg;
  adv_cfg.w = 12;
  adv_cfg.r = Rat(1, 4);
  adv_cfg.max_route_len = 4;
  adv_cfg.seed = 9;
  constexpr Time kSteps = 3000;

  const auto run_nanos = [&](bool profiled) {
    FifoProtocol fifo;
    StepProfiler profiler;
    EngineConfig cfg;
    if (profiled) cfg.sinks.profile = &profiler;
    Engine eng(g, fifo, cfg);
    StochasticAdversary adv(g, adv_cfg);
    const auto t0 = std::chrono::steady_clock::now();
    eng.run(&adv, kSteps);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
        .count();
  };

  const auto median_of_5 = [&](bool profiled) {
    std::array<long long, 5> times{};
    for (auto& t : times) t = run_nanos(profiled);
    std::sort(times.begin(), times.end());
    return times[2];
  };

  run_nanos(false);  // Warm caches before measuring.
  const long long off = median_of_5(false);
  const long long on = median_of_5(true);
  EXPECT_GT(off, 0);
  // Enabling the profiler (two clock reads per phase) stays under 2x.
  EXPECT_LT(static_cast<double>(on), 2.0 * static_cast<double>(off))
      << "profiler on: " << on << "ns, off: " << off << "ns";
}

}  // namespace
}  // namespace aqt::obs
