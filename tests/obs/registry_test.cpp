#include "aqt/obs/registry.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

namespace aqt::obs {
namespace {

TEST(Registry, CounterSemantics) {
  MetricRegistry reg;
  Counter& c = reg.counter("aqt_test_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.set(9);
  EXPECT_EQ(c.value(), 9u);
  // Counters are monotone: moving backwards is a precondition error.
  EXPECT_THROW(c.set(3), PreconditionError);
}

TEST(Registry, GaugeMovesFreely) {
  MetricRegistry reg;
  Gauge& g = reg.gauge("aqt_test_gauge", "help");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
}

TEST(Registry, HistogramCellIsTheSharedHistogram) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("aqt_test_steps", "help");
  h.add(3);
  h.add(5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Registry, SameNameAndLabelReturnsSameCell) {
  MetricRegistry reg;
  Counter& a = reg.counter("aqt_x_total", "help", "edge", "e0");
  a.inc(7);
  Counter& b = reg.counter("aqt_x_total", "help", "edge", "e0");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
  // A different label is a new cell in the same family.
  Counter& c = reg.counter("aqt_x_total", "help", "edge", "e1");
  EXPECT_NE(&a, &c);
  ASSERT_EQ(reg.families().size(), 1u);
  EXPECT_EQ(reg.families()[0].cells.size(), 2u);
}

TEST(Registry, TypeMismatchRejected) {
  MetricRegistry reg;
  reg.counter("aqt_x_total", "help");
  EXPECT_THROW(reg.gauge("aqt_x_total", "help"), PreconditionError);
  EXPECT_THROW(reg.histogram("aqt_x_total", "help"), PreconditionError);
}

TEST(Registry, LabelKeyMismatchRejected) {
  MetricRegistry reg;
  reg.counter("aqt_x_total", "help", "edge", "e0");
  EXPECT_THROW(reg.counter("aqt_x_total", "help", "phase", "inject"),
               PreconditionError);
  // label_key and label must be given together.
  EXPECT_THROW(reg.counter("aqt_y_total", "help", "edge", ""),
               PreconditionError);
  EXPECT_THROW(reg.counter("aqt_z_total", "help", "", "e0"),
               PreconditionError);
}

TEST(Registry, InvalidNamesRejected) {
  MetricRegistry reg;
  EXPECT_THROW(reg.counter("", "help"), PreconditionError);
  EXPECT_THROW(reg.counter("9starts_with_digit", "help"), PreconditionError);
  EXPECT_THROW(reg.counter("has-dash", "help"), PreconditionError);
  EXPECT_THROW(reg.counter("HasUpper", "help"), PreconditionError);
  EXPECT_NO_THROW(reg.counter("_ok_name_2", "help"));
}

TEST(Registry, IterationIsRegistrationOrder) {
  MetricRegistry reg;
  reg.gauge("aqt_b", "help");
  reg.counter("aqt_a_total", "help");
  reg.histogram("aqt_c_steps", "help");
  ASSERT_EQ(reg.families().size(), 3u);
  EXPECT_EQ(reg.families()[0].name, "aqt_b");
  EXPECT_EQ(reg.families()[1].name, "aqt_a_total");
  EXPECT_EQ(reg.families()[2].name, "aqt_c_steps");
}

TEST(Registry, FindLooksUpWithoutRegistering) {
  MetricRegistry reg;
  EXPECT_EQ(reg.find("aqt_missing"), nullptr);
  reg.counter("aqt_present_total", "help");
  const MetricRegistry::Family* fam = reg.find("aqt_present_total");
  ASSERT_NE(fam, nullptr);
  EXPECT_EQ(fam->type, MetricType::kCounter);
  EXPECT_EQ(reg.families().size(), 1u);
}

}  // namespace
}  // namespace aqt::obs
