// TraceEventLog / PhaseTraceRecorder contract: event collection, the
// Trace Event JSON shape chrome://tracing and Perfetto accept, epoch
// shifting in merge_from, and the phase recorder's stride/cap sampling.
#include "aqt/obs/tracing.hpp"

#include <gtest/gtest.h>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"

namespace aqt::obs {
namespace {

TEST(TraceEventLogTest, CollectsCompleteInstantAndMetadata) {
  TraceEventLog log;
  log.name_thread(0, "engine");
  log.complete("span", "aqt", 1000, 2000, 0);
  log.instant("mark", "aqt", 5000, 0);
  // name_thread rows surface only in the JSON, as ph:"M" records.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].ph, 'X');
  EXPECT_EQ(log.events()[1].ph, 'i');

  const std::string json = log.to_json("test");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Nanosecond inputs render as decimal microseconds.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
  // Instants carry thread scope so viewers draw them on the track.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceEventLogTest, MergePreservesEventCountAndThreadIds) {
  TraceEventLog a;
  TraceEventLog b;
  a.complete("cell x", "aqt.pool", a.now_nanos(), 10, 1);
  b.complete("cell y", "aqt.pool", b.now_nanos(), 10, 2);
  b.instant("done", "aqt.pool", b.now_nanos(), 2);
  a.merge_from(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.events()[1].tid, 2u);
  EXPECT_EQ(a.events()[1].name, "cell y");
  // Merged durations are untouched; timestamps are re-based, not dropped.
  EXPECT_EQ(a.events()[1].dur_nanos, 10u);
}

/// Runs `steps` engine steps with a PhaseTraceRecorder attached.
std::uint64_t record_phases(TraceEventLog& log,
                            PhaseTraceRecorder::Config cfg, Time steps) {
  const Graph g = make_ring(5);
  auto protocol = make_protocol("NTG", 5);
  PhaseTraceRecorder recorder(log, cfg);
  EngineConfig ec;
  ec.sinks.profile = &recorder;
  Engine eng(g, *protocol, ec);
  StochasticConfig adv_cfg;
  adv_cfg.w = 8;
  adv_cfg.r = Rat(1, 4);
  adv_cfg.max_route_len = 3;
  adv_cfg.seed = 5;
  StochasticAdversary adv(g, adv_cfg);
  eng.run(&adv, steps);
  return recorder.recorded_steps();
}

TEST(PhaseTraceRecorderTest, SamplesEveryStrideThStepUpToCap) {
  TraceEventLog log;
  PhaseTraceRecorder::Config cfg;
  cfg.stride = 4;
  cfg.max_steps = 1000;
  const std::uint64_t recorded = record_phases(log, cfg, 100);
  EXPECT_EQ(recorded, 25u);
  ASSERT_GT(log.size(), 0u);
  // Every event is a complete span: one "step N" parent per sampled step
  // plus its phase children, all on the configured track.
  std::uint64_t step_spans = 0;
  for (const TraceEvent& e : log.events()) {
    EXPECT_EQ(e.ph, 'X');
    EXPECT_EQ(e.tid, 0u);
    if (e.name.rfind("step ", 0) == 0) ++step_spans;
  }
  EXPECT_EQ(step_spans, recorded);
  EXPECT_GT(log.size(), step_spans);  // Phase children exist.
}

TEST(PhaseTraceRecorderTest, StepCapBoundsTheFile) {
  TraceEventLog log;
  PhaseTraceRecorder::Config cfg;
  cfg.stride = 1;
  cfg.max_steps = 8;
  const std::uint64_t recorded = record_phases(log, cfg, 200);
  EXPECT_EQ(recorded, 8u);
}

TEST(PhaseTraceRecorderTest, DefaultConfigConstructorWorks) {
  TraceEventLog log;
  PhaseTraceRecorder recorder(log);  // Delegates to Config{} defaults.
  EXPECT_EQ(recorder.recorded_steps(), 0u);
}

}  // namespace
}  // namespace aqt::obs
