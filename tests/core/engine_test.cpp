#include "aqt/core/engine.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include "aqt/adversaries/scripted.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"

namespace aqt {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : line_(make_line(4)) {}

  Route line_route(std::int64_t from, std::int64_t to) const {
    Route r;
    for (std::int64_t i = from; i <= to; ++i)
      r.push_back(line_.edge_by_name("l" + std::to_string(i)));
    return r;
  }

  Graph line_;
  FifoProtocol fifo_;
};

TEST_F(EngineTest, SinglePacketTraversesAndAbsorbs) {
  Engine eng(line_, fifo_);
  eng.add_initial_packet(line_route(0, 3));
  EXPECT_EQ(eng.packets_in_flight(), 1u);
  eng.run(nullptr, 4);  // 4 edges, one per step starting at step 1.
  EXPECT_EQ(eng.packets_in_flight(), 0u);
  EXPECT_EQ(eng.total_absorbed(), 1u);
  EXPECT_EQ(eng.metrics().max_latency(), 4);
}

TEST_F(EngineTest, OnePacketPerLinkPerStep) {
  Engine eng(line_, fifo_);
  for (int i = 0; i < 5; ++i) eng.add_initial_packet(line_route(0, 0));
  eng.step(nullptr);
  // Exactly one of the five crossed; the rest still wait.
  EXPECT_EQ(eng.total_absorbed(), 1u);
  EXPECT_EQ(eng.queue_size(line_.edge_by_name("l0")), 4u);
  eng.run(nullptr, 4);
  EXPECT_EQ(eng.total_absorbed(), 5u);
}

TEST_F(EngineTest, FifoForwardsInArrivalOrder) {
  Engine eng(line_, fifo_);
  const PacketId first = eng.add_initial_packet(line_route(0, 1), /*tag=*/1);
  const PacketId second = eng.add_initial_packet(line_route(0, 1), /*tag=*/2);
  eng.step(nullptr);
  // The first-added packet moved to l1's buffer; the second still waits.
  EXPECT_EQ(eng.packet(first).hop, 1u);
  EXPECT_EQ(eng.packet(second).hop, 0u);
}

TEST_F(EngineTest, TransitArrivalsPrecedeSameStepInjections) {
  // A packet arriving at l1's buffer at step t must beat a packet injected
  // into that buffer at step t (Definition 4.2 structural property).
  Engine eng(line_, fifo_);
  const PacketId mover = eng.add_initial_packet(line_route(0, 1));
  ScriptedAdversary adv;
  adv.inject_at(1, line_route(1, 1), /*tag=*/7);
  eng.step(&adv);  // mover crosses l0 and arrives at l1; injection lands too.
  eng.step(&adv);
  // mover (transit arrival) crossed l1 first and was absorbed.
  EXPECT_FALSE(eng.is_live(mover));
  EXPECT_EQ(eng.packets_in_flight(), 1u);
}

TEST_F(EngineTest, InjectionsSequencedInAdversaryOrder) {
  Engine eng(line_, fifo_);
  ScriptedAdversary adv;
  adv.inject_at(1, line_route(0, 0), 1);
  adv.inject_at(1, line_route(0, 0), 2);
  eng.step(&adv);
  const Buffer& buf = eng.buffer(line_.edge_by_name("l0"));
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(eng.packet_meta(buf.front().packet).tag, 1u);
}

TEST_F(EngineTest, GreedyNeverIdlesNonemptyBuffer) {
  Engine eng(line_, fifo_);
  for (int i = 0; i < 10; ++i) eng.add_initial_packet(line_route(0, 0));
  std::uint64_t before = eng.metrics().sends();
  for (int t = 0; t < 10; ++t) {
    eng.step(nullptr);
    const std::uint64_t after = eng.metrics().sends();
    EXPECT_EQ(after - before, 1u) << "step " << t;
    before = after;
  }
}

TEST_F(EngineTest, InitialPacketAfterSteppingThrows) {
  Engine eng(line_, fifo_);
  eng.step(nullptr);
  EXPECT_THROW(eng.add_initial_packet(line_route(0, 0)), PreconditionError);
}

TEST_F(EngineTest, InvalidRouteRejected) {
  Engine eng(line_, fifo_);
  EXPECT_THROW(eng.add_initial_packet({line_.edge_by_name("l0"),
                                       line_.edge_by_name("l2")}),
               PreconditionError);
}

TEST_F(EngineTest, RouteValidationCanBeDisabled) {
  EngineConfig cfg;
  cfg.validate_routes = false;
  Engine eng(line_, fifo_, cfg);
  // Contiguous route still required implicitly by the caller; here we just
  // confirm the engine accepts it without the simplicity check.
  EXPECT_NO_THROW(eng.add_initial_packet(line_route(0, 3)));
}

TEST_F(EngineTest, RerouteExtendsRemainingRoute) {
  Engine eng(line_, fifo_);
  const PacketId id = eng.add_initial_packet(line_route(0, 1));
  ScriptedAdversary adv;
  // At step 1 the packet crosses l0 and waits at l1; the reroute replaces
  // the (empty) suffix after l1 with l2..l3.
  adv.reroute_at(1, id, line_route(2, 3));
  eng.step(&adv);
  EXPECT_EQ(eng.packet(id).route, line_route(0, 3));
  eng.run(nullptr, 4);
  EXPECT_FALSE(eng.is_live(id));
  EXPECT_EQ(eng.total_absorbed(), 1u);
}

TEST_F(EngineTest, RerouteOfPacketAbsorbedSameStepThrows) {
  // A packet that completes its route in substep 2a is gone before the
  // adversary's reroutes apply in substep 2b.
  Engine eng(line_, fifo_);
  const PacketId id = eng.add_initial_packet(line_route(0, 0));
  ScriptedAdversary adv;
  adv.reroute_at(1, id, line_route(1, 3));
  EXPECT_THROW(eng.step(&adv), PreconditionError);
}

TEST_F(EngineTest, RerouteTruncatesWithEmptySuffix) {
  Engine eng(line_, fifo_);
  const PacketId id = eng.add_initial_packet(line_route(0, 3));
  ScriptedAdversary adv;
  adv.reroute_at(1, id, {});
  eng.step(&adv);  // Reroute applies after the packet crossed l0.
  EXPECT_EQ(eng.packet(id).route, line_route(0, 1));
  eng.step(nullptr);
  EXPECT_FALSE(eng.is_live(id));
}

TEST_F(EngineTest, RerouteNonSimpleRejected) {
  Engine eng(line_, fifo_);
  const PacketId id = eng.add_initial_packet(line_route(0, 1));
  ScriptedAdversary adv;
  adv.reroute_at(1, id, line_route(1, 1));  // l1 would repeat.
  EXPECT_THROW(eng.step(&adv), PreconditionError);
}

TEST_F(EngineTest, RerouteRequiresHistoricProtocol) {
  NtgProtocol ntg;  // Not historic.
  Engine eng(line_, ntg);
  const PacketId id = eng.add_initial_packet(line_route(0, 0));
  ScriptedAdversary adv;
  adv.reroute_at(1, id, line_route(1, 2));
  EXPECT_THROW(eng.step(&adv), PreconditionError);
}

TEST_F(EngineTest, RerouteDeadPacketThrows) {
  Engine eng(line_, fifo_);
  const PacketId id = eng.add_initial_packet(line_route(0, 0));
  eng.step(nullptr);  // Absorbed.
  ScriptedAdversary adv;
  adv.reroute_at(2, id, line_route(1, 2));
  EXPECT_THROW(eng.step(&adv), PreconditionError);
}

TEST_F(EngineTest, MetricsTrackMaxQueueAndResidence) {
  Engine eng(line_, fifo_);
  for (int i = 0; i < 3; ++i) eng.add_initial_packet(line_route(0, 0));
  eng.run(nullptr, 3);
  EXPECT_EQ(eng.metrics().max_queue_global(), 3u);
  EXPECT_EQ(eng.metrics().max_queue(line_.edge_by_name("l0")), 3u);
  // The last packet waited from time 0 until sent at step 3.
  EXPECT_EQ(eng.metrics().max_residence_global(), 3);
}

TEST_F(EngineTest, SeriesSampling) {
  EngineConfig cfg;
  cfg.series_stride = 2;
  Engine eng(line_, fifo_, cfg);
  for (int i = 0; i < 4; ++i) eng.add_initial_packet(line_route(0, 0));
  eng.run(nullptr, 6);
  const auto& series = eng.metrics().series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].t, 2);
  EXPECT_EQ(series[1].t, 4);
  EXPECT_EQ(series[2].t, 6);
  EXPECT_EQ(series[0].in_flight, 2u);
}

TEST_F(EngineTest, AuditRecordsAdversaryInjectionsOnly) {
  EngineConfig cfg;
  cfg.audit_rates = true;
  Engine eng(line_, fifo_, cfg);
  eng.add_initial_packet(line_route(0, 0));  // Excluded (inject_time 0).
  ScriptedAdversary adv;
  adv.inject_at(2, line_route(0, 1));
  eng.run(&adv, 3);
  eng.finalize_audit();
  const RateAudit& audit = eng.audit();
  EXPECT_EQ(audit.times(line_.edge_by_name("l0")),
            (std::vector<Time>{2}));
  EXPECT_EQ(audit.times(line_.edge_by_name("l1")),
            (std::vector<Time>{2}));
}

TEST_F(EngineTest, AuditCapturesEffectiveRouteAfterReroute) {
  EngineConfig cfg;
  cfg.audit_rates = true;
  Engine eng(line_, fifo_, cfg);
  ScriptedAdversary adv;
  adv.inject_at(1, line_route(0, 1));
  eng.step(&adv);
  const Buffer& buf = eng.buffer(line_.edge_by_name("l0"));
  ASSERT_FALSE(buf.empty());
  const PacketId id = buf.front().packet;
  // At step 2 the packet crosses l0 and waits at l1; extend it onto l2.
  ScriptedAdversary adv2;
  adv2.reroute_at(2, id, line_route(2, 2));
  eng.step(&adv2);
  eng.finalize_audit();
  // The audit charges the *final* route at the original injection time.
  EXPECT_EQ(eng.audit().times(line_.edge_by_name("l2")),
            (std::vector<Time>{1}));
}

TEST_F(EngineTest, AuditDisabledThrows) {
  Engine eng(line_, fifo_);
  EXPECT_THROW((void)eng.audit(), PreconditionError);
  EXPECT_THROW(eng.finalize_audit(), PreconditionError);
}

TEST_F(EngineTest, DeterministicReplay) {
  auto run = [&]() {
    Engine eng(line_, fifo_);
    for (int i = 0; i < 4; ++i) eng.add_initial_packet(line_route(0, 2));
    ScriptedAdversary adv;
    for (Time t = 1; t <= 10; ++t) adv.inject_at(t, line_route(1, 3));
    eng.run(&adv, 20);
    return std::make_tuple(eng.total_absorbed(), eng.packets_in_flight(),
                           eng.metrics().max_queue_global(),
                           eng.metrics().max_residence_global());
  };
  EXPECT_EQ(run(), run());
}

TEST_F(EngineTest, PacketConservation) {
  Engine eng(line_, fifo_);
  for (int i = 0; i < 7; ++i) eng.add_initial_packet(line_route(0, 1));
  ScriptedAdversary adv;
  for (Time t = 1; t <= 5; ++t) adv.inject_at(t, line_route(2, 3));
  eng.run(&adv, 9);
  EXPECT_EQ(eng.total_injected(),
            eng.total_absorbed() + eng.packets_in_flight());
}

TEST_F(EngineTest, DrainEmptiesNetwork) {
  Engine eng(line_, fifo_);
  for (int i = 0; i < 6; ++i) eng.add_initial_packet(line_route(0, 3));
  const Time taken = eng.drain(1000);
  EXPECT_EQ(eng.packets_in_flight(), 0u);
  // 6 packets through a 4-edge pipeline: last leaves at step 4 + 5 = 9.
  EXPECT_EQ(taken, 9);
}

TEST_F(EngineTest, DrainOnEmptyNetworkIsZeroSteps) {
  Engine eng(line_, fifo_);
  EXPECT_EQ(eng.drain(100), 0);
}

TEST_F(EngineTest, DrainRespectsCap) {
  Engine eng(line_, fifo_);
  for (int i = 0; i < 50; ++i) eng.add_initial_packet(line_route(0, 0));
  EXPECT_EQ(eng.drain(10), 10);
  EXPECT_EQ(eng.packets_in_flight(), 40u);
}

TEST_F(EngineTest, MultiGraphParallelEdgesBothCarryTraffic) {
  Graph g = make_parallel_edges(2);
  Engine eng(g, fifo_);
  eng.add_initial_packet({g.edge_by_name("p0")});
  eng.add_initial_packet({g.edge_by_name("p1")});
  eng.step(nullptr);
  // Both parallel links forwarded in the same step.
  EXPECT_EQ(eng.total_absorbed(), 2u);
}

}  // namespace
}  // namespace aqt
