#include "aqt/core/rate_check.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include "aqt/topology/generators.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {
namespace {

RateAudit audit_of(std::size_t edges,
                   const std::vector<std::pair<EdgeId, Time>>& entries) {
  RateAudit a(edges);
  for (const auto& [e, t] : entries) a.add_edge(e, t);
  return a;
}

TEST(RateCheck, EmptyAuditIsFeasible) {
  RateAudit a(3);
  EXPECT_TRUE(check_rate_r(a, Rat(1, 2)).ok);
  EXPECT_TRUE(check_window(a, 10, Rat(1, 2)).ok);
}

TEST(RateCheck, SinglePacketFeasibleForAnyPositiveRate) {
  const auto a = audit_of(1, {{0, 5}});
  EXPECT_TRUE(check_rate_r(a, Rat(1, 1000)).ok);
}

TEST(RateCheck, SinglePacketInfeasibleAtRateZero) {
  const auto a = audit_of(1, {{0, 5}});
  const auto res = check_rate_r(a, Rat(0));
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.budget, 0);
  EXPECT_EQ(res.count, 1);
}

TEST(RateCheck, TwoPacketsSameStepViolateEvenRateOne) {
  // A length-1 interval admits ceil(r*1) = 1 packet for any r <= 1.
  const auto a = audit_of(1, {{0, 5}, {0, 5}});
  EXPECT_FALSE(check_rate_r(a, Rat(9, 10)).ok);
  EXPECT_FALSE(check_rate_r(a, Rat(1)).ok);
}

TEST(RateCheck, ExactBoundaryIsFeasible) {
  // Rate 1/2 over an interval of 4 steps allows ceil(2) = 2 packets.
  const auto a = audit_of(1, {{0, 1}, {0, 4}});
  EXPECT_TRUE(check_rate_r(a, Rat(1, 2)).ok);
}

TEST(RateCheck, OnePastBoundaryIsInfeasible) {
  // Times {1, 2, 4} at rate 1/2: the sub-interval [1, 2] already carries
  // 2 packets against a budget of ceil(2 * 1/2) = 1, and the checker
  // reports that earliest witness.
  const auto a = audit_of(1, {{0, 1}, {0, 2}, {0, 4}});
  const auto res = check_rate_r(a, Rat(1, 2));
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.count, 2);
  EXPECT_EQ(res.budget, 1);
  EXPECT_EQ(res.t1, 1);
  EXPECT_EQ(res.t2, 2);
}

TEST(RateCheck, WholeIntervalViolationDetected) {
  // Times {1, 3, 4}: every 2-packet sub-interval fits (e.g. [3,4] holds 2
  // vs budget ceil(2*3/5) = 2) but [1,4] carries 3 > ceil(4*3/5) = 3?  No:
  // at rate 3/5 budget is 3 — feasible.  At rate 2/5 the budget for [3,4]
  // is ceil(4/5) = 1 < 2: infeasible.
  const auto a = audit_of(1, {{0, 1}, {0, 3}, {0, 4}});
  EXPECT_TRUE(check_rate_r(a, Rat(3, 5)).ok);
  EXPECT_FALSE(check_rate_r(a, Rat(2, 5)).ok);
}

TEST(RateCheck, ViolationWitnessDescribesEdge) {
  Graph g = make_line(2);
  RateAudit a(g.edge_count());
  a.add_edge(0, 1);
  a.add_edge(0, 1);
  const auto res = check_rate_r(a, Rat(1, 2));
  ASSERT_FALSE(res.ok);
  const std::string desc = res.describe(g);
  EXPECT_NE(desc.find("l0"), std::string::npos);
  EXPECT_NE(desc.find("budget"), std::string::npos);
}

TEST(RateCheck, UnsortedInputHandled) {
  const auto a = audit_of(1, {{0, 9}, {0, 1}, {0, 5}});
  EXPECT_TRUE(check_rate_r(a, Rat(1, 2)).ok);
}

TEST(RateCheck, PerEdgeIndependence) {
  // Edge 0 violates; edge 1 is clean; witness points at edge 0.
  const auto a = audit_of(2, {{0, 1}, {0, 1}, {1, 1}, {1, 10}});
  const auto res = check_rate_r(a, Rat(1, 2));
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.edge, 0u);
}

TEST(RateCheck, DistantPacketsAlwaysFeasible) {
  RateAudit a(1);
  for (Time t = 0; t < 50; ++t) a.add_edge(0, t * 100);
  EXPECT_TRUE(check_rate_r(a, Rat(1, 50)).ok);
}

TEST(RateCheck, FloorPacedStreamIsFeasibleProperty) {
  // A cumulative-floor paced stream at rate p/q is rate-(p/q) feasible.
  for (const auto& [p, q] : std::vector<std::pair<int, int>>{
           {1, 2}, {3, 5}, {7, 10}, {2, 3}, {1, 7}, {9, 10}}) {
    const Rat r(p, q);
    RateAudit a(1);
    std::int64_t emitted = 0;
    for (Time t = 1; t <= 300; ++t) {
      const std::int64_t quota = r.floor_mul(t);
      for (; emitted < quota; ++emitted) a.add_edge(0, t);
    }
    EXPECT_TRUE(check_rate_r(a, r).ok) << p << "/" << q;
  }
}

TEST(RateCheck, DisjointFloorPacedBlocksComposeFeasibly) {
  // Key property behind the LPS phase composition: disjoint floor-paced
  // blocks on one edge remain jointly rate-r feasible.
  const Rat r(7, 10);
  RateAudit a(1);
  Rng rng(5);
  Time block_start = 1;
  for (int b = 0; b < 8; ++b) {
    const Time len = rng.range(5, 40);
    std::int64_t emitted = 0;
    for (Time k = 1; k <= len; ++k) {
      const std::int64_t quota = r.floor_mul(k);
      for (; emitted < quota; ++emitted) a.add_edge(0, block_start + k - 1);
    }
    block_start += len + rng.range(0, 3);  // Blocks may touch, not overlap.
  }
  EXPECT_TRUE(check_rate_r(a, r).ok);
}

TEST(RateCheck, BruteForceAgreement) {
  // The O(k) checker agrees with the O(k^2) definition on random audits.
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    RateAudit a(1);
    std::vector<Time> times;
    const int count = static_cast<int>(rng.range(1, 12));
    for (int i = 0; i < count; ++i) times.push_back(rng.range(1, 20));
    std::sort(times.begin(), times.end());
    for (Time t : times) a.add_edge(0, t);

    const Rat r(static_cast<std::int64_t>(rng.range(1, 9)), 10);
    bool brute_ok = true;
    for (std::size_t i = 0; i < times.size(); ++i)
      for (std::size_t j = i; j < times.size(); ++j)
        if (static_cast<std::int64_t>(j - i + 1) >
            r.ceil_mul(times[j] - times[i] + 1))
          brute_ok = false;
    EXPECT_EQ(check_rate_r(a, r).ok, brute_ok) << "trial " << trial;
  }
}

TEST(WindowCheck, RespectsBudget) {
  // w=10, r=3/10: budget 3 per window.
  const auto a = audit_of(1, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_TRUE(check_window(a, 10, Rat(3, 10)).ok);
}

TEST(WindowCheck, DetectsOverfullWindow) {
  const auto a = audit_of(1, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto res = check_window(a, 10, Rat(3, 10));
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.count, 4);
  EXPECT_EQ(res.budget, 3);
}

TEST(WindowCheck, SlidingWindowNotJustAligned) {
  // 3 packets within 5 consecutive steps but crossing an aligned boundary.
  const auto a = audit_of(1, {{0, 9}, {0, 10}, {0, 11}});
  EXPECT_FALSE(check_window(a, 5, Rat(2, 5)).ok);
}

TEST(WindowCheck, WiderSpacingFeasible) {
  const auto a = audit_of(1, {{0, 1}, {0, 6}, {0, 11}});
  EXPECT_TRUE(check_window(a, 5, Rat(1, 5)).ok);
}

TEST(WindowCheck, BadWindowThrows) {
  RateAudit a(1);
  EXPECT_THROW((void)check_window(a, 0, Rat(1, 2)), PreconditionError);
}

TEST(EmpiricalRate, MatchesKnownPattern) {
  // Two packets 1 step apart: infimum rate is (2-1)/2 = 0.5.
  const auto a = audit_of(1, {{0, 1}, {0, 2}});
  EXPECT_DOUBLE_EQ(empirical_rate(a), 0.5);
}

TEST(EmpiricalRate, EmptyAndSingletonAreZero) {
  RateAudit a(1);
  EXPECT_DOUBLE_EQ(empirical_rate(a), 0.0);
  a.add_edge(0, 3);
  EXPECT_DOUBLE_EQ(empirical_rate(a), 0.0);
}

TEST(OnlineRateChecker, AgreesWithPostHocOnRandomStreams) {
  Rng rng(314);
  for (int trial = 0; trial < 60; ++trial) {
    const Rat r(static_cast<std::int64_t>(rng.range(1, 9)), 10);
    RateAudit audit(2);
    OnlineRateChecker online(2, r);
    bool online_ok = true;
    Time t = 1;
    for (int i = 0; i < 30; ++i) {
      t += rng.range(0, 3);
      const EdgeId e = static_cast<EdgeId>(rng.below(2));
      audit.add_edge(e, t);
      online_ok = online.add_edge(e, t) && online_ok;
    }
    EXPECT_EQ(online.ok(), check_rate_r(audit, r).ok) << "trial " << trial;
    EXPECT_EQ(online.ok(), online_ok);
  }
}

TEST(OnlineRateChecker, ViolationWitnessMatchesDefinition) {
  // Times {1, 2} at rate 1/2: [1, 2] holds 2 > ceil(1) = 1.
  OnlineRateChecker online(1, Rat(1, 2));
  EXPECT_TRUE(online.add_edge(0, 1));
  EXPECT_FALSE(online.add_edge(0, 2));
  const auto& v = online.violation();
  EXPECT_EQ(v.edge, 0u);
  EXPECT_EQ(v.t1, 1);
  EXPECT_EQ(v.t2, 2);
  EXPECT_EQ(v.count, 2);
  EXPECT_EQ(v.budget, 1);
}

TEST(OnlineRateChecker, StaysFailedAfterViolation) {
  OnlineRateChecker online(1, Rat(1, 2));
  (void)online.add_edge(0, 1);
  (void)online.add_edge(0, 2);
  EXPECT_FALSE(online.ok());
  EXPECT_FALSE(online.add_edge(0, 100));  // Still failed.
}

TEST(OnlineRateChecker, AddRouteChargesAllEdges) {
  OnlineRateChecker online(3, Rat(1, 2));
  EXPECT_TRUE(online.add(Route{0, 1, 2}, 5));
  EXPECT_FALSE(online.add(Route{2}, 6));  // Edge 2 now has 2 in [5, 6].
}

TEST(OnlineRateChecker, RejectsTimeRegressionPerEdge) {
  OnlineRateChecker online(1, Rat(1, 2));
  (void)online.add_edge(0, 10);
  EXPECT_THROW((void)online.add_edge(0, 9), PreconditionError);
}

TEST(OnlineRateChecker, RejectsZeroRate) {
  EXPECT_THROW(OnlineRateChecker(1, Rat(0)), PreconditionError);
}

TEST(OnlineRateChecker, FloorPacedStreamPasses) {
  const Rat r(7, 10);
  OnlineRateChecker online(1, r);
  std::int64_t emitted = 0;
  for (Time t = 1; t <= 500; ++t) {
    const std::int64_t quota = r.floor_mul(t);
    for (; emitted < quota; ++emitted) EXPECT_TRUE(online.add_edge(0, t));
  }
  EXPECT_TRUE(online.ok());
}

TEST(RateAudit, AddRouteChargesEveryEdge) {
  RateAudit a(3);
  a.add(Route{0, 1, 2}, 7);
  for (EdgeId e = 0; e < 3; ++e)
    EXPECT_EQ(a.times(e), (std::vector<Time>{7}));
  EXPECT_EQ(a.entries(), 3u);
}

TEST(RateAudit, OutOfRangeEdgeThrows) {
  RateAudit a(2);
  EXPECT_THROW(a.add_edge(5, 1), PreconditionError);
}

}  // namespace
}  // namespace aqt
