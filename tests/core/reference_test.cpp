// Differential tests: the production Engine against the independently
// written ReferenceSimulator, on randomized scripts, for every
// deterministic protocol.  Any observable divergence (queue contents in
// forwarding order, absorption counts) fails.
#include <gtest/gtest.h>

#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/reference.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {
namespace {

/// A random timed script of injections (no reroutes), generated once and
/// applied to both simulators.
struct Script {
  std::vector<std::vector<Injection>> per_step;  // [t-1] = step t's work.
};

Script random_script(const Graph& g, Rng& rng, Time steps) {
  Script s;
  s.per_step.resize(static_cast<std::size_t>(steps));
  std::uint64_t tag = 1;
  for (auto& step : s.per_step) {
    const std::int64_t count = rng.range(0, 3);
    for (std::int64_t i = 0; i < count; ++i) {
      // Random simple route: walk forward from a random edge.
      Route route;
      std::vector<bool> visited(g.node_count(), false);
      EdgeId e = static_cast<EdgeId>(rng.below(g.edge_count()));
      route.push_back(e);
      visited[g.tail(e)] = visited[g.head(e)] = true;
      while (route.size() < 4) {
        const auto& outs = g.out_edges(g.head(route.back()));
        Route options;
        for (EdgeId o : outs)
          if (!visited[g.head(o)]) options.push_back(o);
        if (options.empty() || rng.chance(0.35)) break;
        const EdgeId pick = options[rng.below(options.size())];
        visited[g.head(pick)] = true;
        route.push_back(pick);
      }
      step.push_back(Injection{std::move(route), tag++});
    }
  }
  return s;
}

/// Engine-side adversary that plays a Script.
class ScriptPlayer final : public Adversary {
 public:
  explicit ScriptPlayer(const Script& script) : script_(script) {}
  void step(Time now, const Engine&, AdversaryStep& out) override {
    const auto idx = static_cast<std::size_t>(now - 1);
    if (idx >= script_.per_step.size()) return;
    for (const auto& inj : script_.per_step[idx])
      out.injections.push_back(inj);
  }

 private:
  const Script& script_;
};

/// Extracts the engine's observable state in the reference's format.
ReferenceSnapshot engine_snapshot(const Engine& eng) {
  ReferenceSnapshot snap;
  snap.now = eng.now();
  snap.injected = eng.total_injected();
  snap.absorbed = eng.total_absorbed();
  snap.queue_tags.resize(eng.graph().edge_count());
  for (EdgeId e = 0; e < eng.graph().edge_count(); ++e)
    for (const BufferEntry& be : eng.buffer(e).ordered_entries())
      snap.queue_tags[e].push_back(eng.packet_meta(be.packet).tag);
  return snap;
}

void expect_equal(const ReferenceSnapshot& a, const ReferenceSnapshot& b,
                  const std::string& context) {
  EXPECT_EQ(a.now, b.now) << context;
  EXPECT_EQ(a.injected, b.injected) << context;
  EXPECT_EQ(a.absorbed, b.absorbed) << context;
  ASSERT_EQ(a.queue_tags.size(), b.queue_tags.size()) << context;
  for (std::size_t e = 0; e < a.queue_tags.size(); ++e)
    EXPECT_EQ(a.queue_tags[e], b.queue_tags[e])
        << context << " edge " << e;
}

class Differential : public ::testing::TestWithParam<std::string> {};

TEST_P(Differential, RandomScriptsAgreeStepByStep) {
  const std::string protocol_name = GetParam();
  Rng rng(std::hash<std::string>{}(protocol_name) & 0xffff);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = make_grid(3, 3);
    const Script script = random_script(g, rng, /*steps=*/60);

    auto protocol = make_protocol(protocol_name);
    Engine eng(g, *protocol);
    ScriptPlayer player(script);
    ReferenceSimulator ref(g, protocol_name);

    for (Time t = 1; t <= 80; ++t) {
      eng.step(&player);
      const auto idx = static_cast<std::size_t>(t - 1);
      static const std::vector<Injection> kNone;
      ref.step(idx < script.per_step.size() ? script.per_step[idx] : kNone,
               {});
      expect_equal(engine_snapshot(eng), ref.snapshot(),
                   protocol_name + " trial " + std::to_string(trial) +
                       " t " + std::to_string(t));
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST_P(Differential, InitialConfigurationAgrees) {
  const std::string protocol_name = GetParam();
  const Graph g = make_line(4);
  auto protocol = make_protocol(protocol_name);
  Engine eng(g, *protocol);
  ReferenceSimulator ref(g, protocol_name);
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    const auto from = static_cast<EdgeId>(rng.below(3));
    Route route;
    for (EdgeId e = from; e < 4; ++e) route.push_back(e);
    eng.add_initial_packet(route, static_cast<std::uint64_t>(i));
    ref.add_initial_packet(route, static_cast<std::uint64_t>(i));
  }
  for (Time t = 1; t <= 20; ++t) {
    eng.step(nullptr);
    ref.step({}, {});
    expect_equal(engine_snapshot(eng), ref.snapshot(),
                 protocol_name + " t " + std::to_string(t));
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(DeterministicProtocols, Differential,
                         ::testing::Values("FIFO", "LIFO", "LIS", "NIS",
                                           "FTG", "NTG", "FFS", "NTS"),
                         [](const auto& info) { return info.param; });

TEST(DifferentialReroute, HistoricProtocolsAgreeUnderReroutes) {
  // Replay a scripted run with a mid-flight reroute on both simulators.
  const Graph g = make_grid(3, 3);
  const Route start = {g.edge_by_name("h0_0"), g.edge_by_name("d0_1")};
  const Route suffix = {g.edge_by_name("h1_1")};
  for (const char* proto : {"FIFO", "LIFO", "LIS", "NIS", "FFS", "NTS"}) {
    auto protocol = make_protocol(proto);
    Engine eng(g, *protocol);
    ReferenceSimulator ref(g, proto);
    const PacketId id = eng.add_initial_packet(start, 7);
    ref.add_initial_packet(start, 7);
    // Step 1: the packet crosses h0_0 and waits at d0_1; the reroute then
    // extends its (empty) remainder beyond d0_1 with h1_1 on both sides.
    struct OneShot final : Adversary {
      PacketId id;
      Route suffix;
      bool fired = false;
      void step(Time, const Engine&, AdversaryStep& out) override {
        if (fired) return;
        fired = true;
        out.reroutes.push_back(Reroute{id, suffix});
      }
    } once;
    once.id = id;
    once.suffix = suffix;
    eng.step(&once);
    ref.step({}, {{eng.packet_meta(id).ordinal, suffix}});
    for (Time t = 2; t <= 8; ++t) {
      eng.step(nullptr);
      ref.step({}, {});
    }
    EXPECT_EQ(eng.total_absorbed(), ref.absorbed()) << proto;
    EXPECT_EQ(eng.packets_in_flight(), 0u) << proto;
  }
}

TEST(DifferentialReroute, RandomRerouteFuzzAgrees) {
  // Randomized suffix extensions of random live packets, applied to both
  // simulators, across every historic deterministic protocol.
  for (const char* proto :
       {"FIFO", "LIFO", "LIS", "NIS", "FFS", "NTS"}) {
    Rng rng(std::hash<std::string>{}(proto) ^ 0xabcdu);
    const Graph g = make_grid(4, 4);
    auto protocol = make_protocol(proto);
    Engine eng(g, *protocol);
    ReferenceSimulator ref(g, proto);
    const Script script = random_script(g, rng, /*steps=*/50);

    // Per step: play the script plus, sometimes, one random legal reroute.
    struct Driver final : Adversary {
      const Script* script = nullptr;
      std::vector<Reroute> pending;
      void step(Time now, const Engine&, AdversaryStep& out) override {
        const auto idx = static_cast<std::size_t>(now - 1);
        if (idx < script->per_step.size())
          for (const auto& inj : script->per_step[idx])
            out.injections.push_back(inj);
        for (auto& rr : pending) out.reroutes.push_back(std::move(rr));
        pending.clear();
      }
    } driver;
    driver.script = &script;

    for (Time t = 1; t <= 70; ++t) {
      // Choose a reroute target among live packets, if any.
      std::vector<ReferenceSimulator::RefReroute> ref_rr;
      // Candidates: buffered packets that will NOT be forwarded this step
      // (not at a buffer front), so the suffix computed now still splices
      // at the same position when the reroute applies in substep 2.
      std::vector<PacketId> live;
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        const Buffer& buf = eng.buffer(e);
        if (buf.size() < 2) continue;
        bool first = true;
        for (const BufferEntry& be : buf.ordered_entries()) {
          if (!first) live.push_back(be.packet);
          first = false;
        }
      }
      if (rng.chance(0.4) && !live.empty()) {
        const PacketId id = live[rng.below(live.size())];
        const Packet& p = eng.packet(id);
        // Random forward extension from the head of the current edge that
        // keeps the whole route simple.
        std::vector<bool> used(g.node_count(), false);
        for (std::size_t h = 0; h <= p.hop; ++h) {
          used[g.tail(p.route[h])] = true;
          used[g.head(p.route[h])] = true;
        }
        Route suffix;
        NodeId at = g.head(p.route[p.hop]);
        for (int len = 0; len < 3; ++len) {
          Route options;
          for (EdgeId e : g.out_edges(at))
            if (!used[g.head(e)]) options.push_back(e);
          if (options.empty()) break;
          const EdgeId pick = options[rng.below(options.size())];
          suffix.push_back(pick);
          at = g.head(pick);
          used[at] = true;
        }
        driver.pending.push_back(Reroute{id, suffix});
        ref_rr.push_back(ReferenceSimulator::RefReroute{
            eng.packet_meta(id).ordinal, suffix});
      }
      eng.step(&driver);
      const auto idx = static_cast<std::size_t>(t - 1);
      static const std::vector<Injection> kNone;
      ref.step(idx < script.per_step.size() ? script.per_step[idx] : kNone,
               ref_rr);
      expect_equal(engine_snapshot(eng), ref.snapshot(),
                   std::string(proto) + " t " + std::to_string(t));
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(ReferenceSimulator, RejectsUnknownProtocol) {
  const Graph g = make_line(2);
  EXPECT_THROW(ReferenceSimulator(g, "RANDOM"), PreconditionError);
  EXPECT_THROW(ReferenceSimulator(g, "BOGUS"), PreconditionError);
}

TEST(ReferenceSimulator, RejectsLateInitialPackets) {
  const Graph g = make_line(2);
  ReferenceSimulator ref(g, "FIFO");
  ref.step({}, {});
  EXPECT_THROW(ref.add_initial_packet({0}), PreconditionError);
}

TEST(ReferenceSimulator, RerouteOfUnknownPacketThrows) {
  const Graph g = make_line(3);
  ReferenceSimulator ref(g, "FIFO");
  EXPECT_THROW(ref.step({}, {{42, {1}}}), PreconditionError);
}

}  // namespace
}  // namespace aqt
