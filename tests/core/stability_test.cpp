#include "aqt/core/stability.hpp"

#include <gtest/gtest.h>

namespace aqt {
namespace {

std::vector<std::uint64_t> ramp(std::size_t len, std::uint64_t base,
                                std::uint64_t slope) {
  std::vector<std::uint64_t> v(len);
  for (std::size_t i = 0; i < len; ++i)
    v[i] = base + slope * static_cast<std::uint64_t>(i);
  return v;
}

TEST(Stability, FlatSeriesIsBounded) {
  const auto rep = classify_growth(ramp(30, 100, 0));
  EXPECT_EQ(rep.verdict, GrowthVerdict::kBounded);
  EXPECT_NEAR(rep.ratio, 1.0, 1e-9);
}

TEST(Stability, SteepRampIsGrowing) {
  const auto rep = classify_growth(ramp(30, 10, 50));
  EXPECT_EQ(rep.verdict, GrowthVerdict::kGrowing);
  EXPECT_GT(rep.ratio, 2.0);
}

TEST(Stability, TooFewSamplesUndecided) {
  const auto rep = classify_growth(ramp(4, 1, 100));
  EXPECT_EQ(rep.verdict, GrowthVerdict::kUndecided);
}

TEST(Stability, MildDriftUndecidedAtDefaultSlack) {
  // 1.5x growth: above the bounded band, below the 2x growth bar.
  std::vector<std::uint64_t> v;
  for (int i = 0; i < 30; ++i)
    v.push_back(static_cast<std::uint64_t>(100 + i * 2));
  const auto rep = classify_growth(v);
  EXPECT_EQ(rep.verdict, GrowthVerdict::kUndecided);
}

TEST(Stability, SlackParameterShiftsVerdict) {
  std::vector<std::uint64_t> v;
  for (int i = 0; i < 30; ++i)
    v.push_back(static_cast<std::uint64_t>(100 + i * 2));
  EXPECT_EQ(classify_growth(v, 1.2).verdict, GrowthVerdict::kGrowing);
}

TEST(Stability, SeriesOverloadUsesInFlight) {
  std::vector<SeriesPoint> series;
  for (int i = 0; i < 30; ++i)
    series.push_back(SeriesPoint{i, static_cast<std::uint64_t>(10 + 20 * i),
                                 0});
  EXPECT_EQ(classify_growth(series).verdict, GrowthVerdict::kGrowing);
}

TEST(Stability, ToStringCoversAllVerdicts) {
  EXPECT_STREQ(to_string(GrowthVerdict::kBounded), "bounded");
  EXPECT_STREQ(to_string(GrowthVerdict::kGrowing), "growing");
  EXPECT_STREQ(to_string(GrowthVerdict::kUndecided), "undecided");
}

TEST(GrowthFactor, GeometricSeries) {
  EXPECT_NEAR(geometric_growth_factor({100, 200, 400, 800}), 2.0, 1e-9);
}

TEST(GrowthFactor, DecayingSeries) {
  EXPECT_NEAR(geometric_growth_factor({800, 400, 200}), 0.5, 1e-9);
}

TEST(GrowthFactor, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(geometric_growth_factor({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_growth_factor({5}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_growth_factor({0, 10}), 0.0);
}

TEST(GrowthFactor, SkipsZeroTerms) {
  EXPECT_NEAR(geometric_growth_factor({100, 0, 200, 400}), 2.0, 1e-9);
}

}  // namespace
}  // namespace aqt
