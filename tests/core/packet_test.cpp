#include "aqt/core/packet.hpp"

#include <gtest/gtest.h>

namespace aqt {
namespace {

TEST(Packet, RemainingAndTraversed) {
  Packet p;
  p.route = {0, 1, 2};
  p.hop = 0;
  EXPECT_EQ(p.remaining(), 3u);
  EXPECT_EQ(p.traversed(), 0u);
  EXPECT_EQ(p.current_edge(), 0u);
  p.hop = 2;
  EXPECT_EQ(p.remaining(), 1u);
  EXPECT_EQ(p.traversed(), 2u);
  EXPECT_EQ(p.current_edge(), 2u);
}

TEST(PacketArena, CreateAssignsFields) {
  PacketArena arena;
  const PacketId id = arena.create({3, 4}, /*inject_time=*/7, /*tag=*/9);
  const Packet& p = arena[id];
  EXPECT_TRUE(p.alive);
  EXPECT_EQ(p.route, (Route{3, 4}));
  EXPECT_EQ(p.inject_time, 7);
  EXPECT_EQ(p.arrival_time, 7);
  EXPECT_EQ(p.tag, 9u);
  EXPECT_EQ(p.hop, 0u);
}

TEST(PacketArena, LiveAndTotalCounts) {
  PacketArena arena;
  const PacketId a = arena.create({0}, 1, 0);
  const PacketId b = arena.create({0}, 1, 0);
  EXPECT_EQ(arena.live_count(), 2u);
  EXPECT_EQ(arena.total_created(), 2u);
  arena.destroy(a);
  EXPECT_EQ(arena.live_count(), 1u);
  EXPECT_EQ(arena.total_created(), 2u);
  EXPECT_FALSE(arena.is_live(a));
  EXPECT_TRUE(arena.is_live(b));
}

TEST(PacketArena, RecyclesSlots) {
  PacketArena arena;
  const PacketId a = arena.create({0}, 1, 0);
  arena.destroy(a);
  const PacketId b = arena.create({1}, 2, 0);
  EXPECT_EQ(a, b);  // Slot reused.
  EXPECT_EQ(arena[b].route, (Route{1}));
  EXPECT_EQ(arena.total_created(), 2u);
}

TEST(PacketArena, GenerationIncrementsOnReuse) {
  PacketArena arena;
  const PacketId a = arena.create({0}, 1, 0);
  const auto gen1 = arena[a].generation;
  arena.destroy(a);
  const PacketId b = arena.create({0}, 1, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena[b].generation, gen1 + 1);
}

TEST(PacketArena, ForEachLiveVisitsOnlyLive) {
  PacketArena arena;
  const PacketId a = arena.create({0}, 1, 10);
  const PacketId b = arena.create({0}, 1, 20);
  const PacketId c = arena.create({0}, 1, 30);
  arena.destroy(b);
  std::vector<std::uint64_t> tags;
  arena.for_each_live(
      [&](PacketId, const Packet& p) { tags.push_back(p.tag); });
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{10, 30}));
  (void)a;
  (void)c;
}

TEST(PacketArena, OrdinalsAreCreationOrder) {
  PacketArena arena;
  const PacketId a = arena.create({0}, 1, 0);
  const PacketId b = arena.create({0}, 1, 0);
  EXPECT_EQ(arena[a].ordinal, 0u);
  EXPECT_EQ(arena[b].ordinal, 1u);
  arena.destroy(a);
  const PacketId c = arena.create({0}, 2, 0);  // Reuses a's slot...
  EXPECT_EQ(c, a);
  EXPECT_EQ(arena[c].ordinal, 2u);  // ...but gets a fresh ordinal.
}

TEST(PacketArena, FindByOrdinal) {
  PacketArena arena;
  const PacketId a = arena.create({0}, 1, 0);
  const PacketId b = arena.create({0}, 1, 0);
  EXPECT_EQ(arena.find_by_ordinal(0), a);
  EXPECT_EQ(arena.find_by_ordinal(1), b);
  EXPECT_EQ(arena.find_by_ordinal(99), kNoPacket);
  arena.destroy(a);
  EXPECT_EQ(arena.find_by_ordinal(0), kNoPacket);  // Absorbed: gone.
  EXPECT_EQ(arena.find_by_ordinal(1), b);
}

TEST(PacketArena, OrdinalLookupSurvivesSlotReuse) {
  PacketArena arena;
  const PacketId a = arena.create({0}, 1, 0);
  arena.destroy(a);
  const PacketId b = arena.create({0}, 2, 0);  // Same slot, ordinal 1.
  EXPECT_EQ(arena.find_by_ordinal(1), b);
  EXPECT_EQ(arena.find_by_ordinal(0), kNoPacket);
}

TEST(PacketArena, ManyCreateDestroyCyclesStayBounded) {
  PacketArena arena;
  for (int round = 0; round < 100; ++round) {
    std::vector<PacketId> ids;
    for (int i = 0; i < 10; ++i) ids.push_back(arena.create({0, 1, 2}, 1, 0));
    for (const PacketId id : ids) arena.destroy(id);
  }
  EXPECT_EQ(arena.live_count(), 0u);
  EXPECT_EQ(arena.total_created(), 1000u);
  // Slot reuse means at most 10 slots were ever allocated: new ids stay low.
  const PacketId id = arena.create({0}, 1, 0);
  EXPECT_LT(id, 10u);
}

}  // namespace
}  // namespace aqt
