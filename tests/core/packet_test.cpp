#include "aqt/core/packet.hpp"

#include <gtest/gtest.h>

#include "aqt/core/route_table.hpp"

namespace aqt {
namespace {

/// Test fixture state: routes live in an interning table, packets hold
/// references into it (the SoA layout's invariant).
class PacketArenaTest : public ::testing::Test {
 protected:
  RouteRef ref(const Route& route) { return table_.intern(route); }

  RouteTable table_;
  PacketArena arena_;
};

TEST(Packet, RemainingAndTraversed) {
  RouteTable table;
  Packet p;
  p.route = table.intern(Route{0, 1, 2});
  p.hop = 0;
  EXPECT_EQ(p.remaining(), 3u);
  EXPECT_EQ(p.traversed(), 0u);
  EXPECT_EQ(p.current_edge(), 0u);
  p.hop = 2;
  EXPECT_EQ(p.remaining(), 1u);
  EXPECT_EQ(p.traversed(), 2u);
  EXPECT_EQ(p.current_edge(), 2u);
}

TEST_F(PacketArenaTest, CreateAssignsFields) {
  const PacketId id = arena_.create(ref({3, 4}), /*inject_time=*/7, /*tag=*/9);
  const Packet& p = arena_[id];
  const PacketMeta& m = arena_.meta(id);
  EXPECT_TRUE(m.alive);
  EXPECT_EQ(p.route, (Route{3, 4}));
  EXPECT_EQ(p.inject_time, 7);
  EXPECT_EQ(p.arrival_time, 7);
  EXPECT_EQ(m.tag, 9u);
  EXPECT_EQ(p.hop, 0u);
}

TEST_F(PacketArenaTest, LiveAndTotalCounts) {
  const PacketId a = arena_.create(ref({0}), 1, 0);
  const PacketId b = arena_.create(ref({0}), 1, 0);
  EXPECT_EQ(arena_.live_count(), 2u);
  EXPECT_EQ(arena_.total_created(), 2u);
  arena_.destroy(a);
  EXPECT_EQ(arena_.live_count(), 1u);
  EXPECT_EQ(arena_.total_created(), 2u);
  EXPECT_FALSE(arena_.is_live(a));
  EXPECT_TRUE(arena_.is_live(b));
}

TEST_F(PacketArenaTest, RecyclesSlots) {
  const PacketId a = arena_.create(ref({0}), 1, 0);
  EXPECT_EQ(arena_.recycled_total(), 0u);
  arena_.destroy(a);
  const PacketId b = arena_.create(ref({1}), 2, 0);
  EXPECT_EQ(a, b);  // Slot reused.
  EXPECT_EQ(arena_[b].route, (Route{1}));
  EXPECT_EQ(arena_.total_created(), 2u);
  EXPECT_EQ(arena_.recycled_total(), 1u);
}

TEST_F(PacketArenaTest, GenerationIncrementsOnReuse) {
  const PacketId a = arena_.create(ref({0}), 1, 0);
  const auto gen1 = arena_.meta(a).generation;
  arena_.destroy(a);
  const PacketId b = arena_.create(ref({0}), 1, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena_.meta(b).generation, gen1 + 1);
}

TEST_F(PacketArenaTest, ForEachLiveVisitsOnlyLive) {
  const PacketId a = arena_.create(ref({0}), 1, 10);
  const PacketId b = arena_.create(ref({0}), 1, 20);
  const PacketId c = arena_.create(ref({0}), 1, 30);
  arena_.destroy(b);
  std::vector<std::uint64_t> tags;
  arena_.for_each_live([&](PacketId, const Packet&, const PacketMeta& m) {
    tags.push_back(m.tag);
  });
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{10, 30}));
  (void)a;
  (void)c;
}

TEST_F(PacketArenaTest, OrdinalsAreCreationOrder) {
  const PacketId a = arena_.create(ref({0}), 1, 0);
  const PacketId b = arena_.create(ref({0}), 1, 0);
  EXPECT_EQ(arena_.meta(a).ordinal, 0u);
  EXPECT_EQ(arena_.meta(b).ordinal, 1u);
  arena_.destroy(a);
  const PacketId c = arena_.create(ref({0}), 2, 0);  // Reuses a's slot...
  EXPECT_EQ(c, a);
  EXPECT_EQ(arena_.meta(c).ordinal, 2u);  // ...but gets a fresh ordinal.
}

TEST_F(PacketArenaTest, FindByOrdinal) {
  const PacketId a = arena_.create(ref({0}), 1, 0);
  const PacketId b = arena_.create(ref({0}), 1, 0);
  EXPECT_EQ(arena_.find_by_ordinal(0), a);
  EXPECT_EQ(arena_.find_by_ordinal(1), b);
  EXPECT_EQ(arena_.find_by_ordinal(99), kNoPacket);
  arena_.destroy(a);
  EXPECT_EQ(arena_.find_by_ordinal(0), kNoPacket);  // Absorbed: gone.
  EXPECT_EQ(arena_.find_by_ordinal(1), b);
}

TEST_F(PacketArenaTest, OrdinalLookupSurvivesSlotReuse) {
  const PacketId a = arena_.create(ref({0}), 1, 0);
  arena_.destroy(a);
  const PacketId b = arena_.create(ref({0}), 2, 0);  // Same slot, ordinal 1.
  EXPECT_EQ(arena_.find_by_ordinal(1), b);
  EXPECT_EQ(arena_.find_by_ordinal(0), kNoPacket);
}

TEST_F(PacketArenaTest, ManyCreateDestroyCyclesStayBounded) {
  const RouteRef r = ref({0, 1, 2});
  for (int round = 0; round < 100; ++round) {
    std::vector<PacketId> ids;
    for (int i = 0; i < 10; ++i) ids.push_back(arena_.create(r, 1, 0));
    for (const PacketId id : ids) arena_.destroy(id);
  }
  EXPECT_EQ(arena_.live_count(), 0u);
  EXPECT_EQ(arena_.total_created(), 1000u);
  EXPECT_EQ(arena_.recycled_total(), 990u);
  // Slot reuse means at most 10 slots were ever allocated: new ids stay low.
  const PacketId id = arena_.create(ref({0}), 1, 0);
  EXPECT_LT(id, 10u);
}

}  // namespace
}  // namespace aqt
