// Tests for the Lemma 3.3 rerouting-legality checker (Definition 3.2's
// "new edge" condition and the common-edge hypothesis).
#include <gtest/gtest.h>

#include "aqt/adversaries/lps.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/reroute_legality.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

class LegalityTest : public ::testing::Test {
 protected:
  LegalityTest() : g_(make_grid(3, 4)), eng_(g_, fifo_) {}

  Route edges(std::initializer_list<const char*> names) {
    Route r;
    for (const char* n : names) r.push_back(g_.edge_by_name(n));
    return r;
  }

  Graph g_;
  FifoProtocol fifo_;
  Engine eng_;
};

TEST_F(LegalityTest, FreshEdgesAreLegal) {
  RerouteLegalityChecker checker(g_, Rat(7, 10));
  const PacketId a = eng_.add_initial_packet(edges({"h0_0", "h0_1"}));
  const PacketId b = eng_.add_initial_packet(edges({"h0_0", "h0_1"}));
  eng_.step(nullptr);
  // Both packets share h0_1 (a crossed h0_0 and waits at h0_1; b still at
  // h0_0): common edge OK, suffixes on untouched edges.
  std::vector<Reroute> batch = {
      Reroute{a, edges({"d0_2", "h1_2"})},
      Reroute{b, edges({"h0_2"})},
  };
  const auto rep = checker.check_and_apply(eng_.now(), eng_, batch);
  EXPECT_TRUE(rep.ok) << rep.reason;
}

TEST_F(LegalityTest, NoCommonEdgeIsIllegal) {
  RerouteLegalityChecker checker(g_, Rat(7, 10));
  const PacketId a = eng_.add_initial_packet(edges({"h0_0"}));
  const PacketId b = eng_.add_initial_packet(edges({"h1_0"}));
  // Disjoint routes: Lemma 3.3's hypothesis fails.
  std::vector<Reroute> batch = {
      Reroute{a, edges({"h0_1"})},
      Reroute{b, edges({"h1_1"})},
  };
  const auto rep = checker.check_and_apply(1, eng_, batch);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.reason.find("common edge"), std::string::npos);
}

TEST_F(LegalityTest, RecentlyInjectedEdgeIsNotNew) {
  RerouteLegalityChecker checker(g_, Rat(7, 10));
  const PacketId a = eng_.add_initial_packet(edges({"h0_0", "h0_1"}));
  // An injection at t=1 uses d0_2; initial packet has inject_time 0, so
  // t* = 0 and cutoff = 0 - ceil(10/7) = -2: the t=1 use disqualifies d0_2.
  checker.on_injection(1, edges({"d0_2"}));
  std::vector<Reroute> batch = {Reroute{a, edges({"d0_2"})}};
  const auto rep = checker.check_and_apply(2, eng_, batch);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.reason.find("not new"), std::string::npos);
}

TEST_F(LegalityTest, AncientUseIsForgottenOncePacketsAreYoung) {
  // Edge was used long ago; all live packets were injected much later, so
  // the cutoff t* - ceil(1/r) has moved past the old use.
  RerouteLegalityChecker checker(g_, Rat(7, 10));
  checker.on_injection(1, edges({"d0_2"}));

  // Inject a fresh packet at t=50 via a tiny adversary.
  struct OneInjection final : Adversary {
    Route route;
    void step(Time now, const Engine&, AdversaryStep& out) override {
      if (now == 50) out.injections.push_back(Injection{route, 0});
    }
  } adv;
  adv.route = edges({"h0_0", "h0_1"});
  for (int i = 0; i < 50; ++i) eng_.step(&adv);
  checker.on_injection(50, adv.route);

  // The injected packet waits at h0_1 now (it crossed h0_0 at step 51)...
  eng_.step(nullptr);
  ASSERT_EQ(eng_.packets_in_flight(), 1u);
  PacketId id = kNoPacket;
  for (const BufferEntry& be :
       eng_.buffer(g_.edge_by_name("h0_1")).ordered_entries())
    id = be.packet;
  ASSERT_NE(id, kNoPacket);

  // t* = 50, cutoff = 48 > 1: d0_2 counts as new again.
  std::vector<Reroute> batch = {Reroute{id, edges({"d0_2"})}};
  const auto rep = checker.check_and_apply(eng_.now(), eng_, batch);
  EXPECT_TRUE(rep.ok) << rep.reason;
}

TEST_F(LegalityTest, SuffixEdgesChargedAfterApply) {
  RerouteLegalityChecker checker(g_, Rat(7, 10));
  const PacketId a = eng_.add_initial_packet(edges({"h0_0", "h0_1"}));
  std::vector<Reroute> batch = {Reroute{a, edges({"h0_2"})}};
  ASSERT_TRUE(checker.check_and_apply(1, eng_, batch).ok);
  // h0_2 now carries the rerouted packet's injection time (0).
  EXPECT_EQ(checker.last_use(g_.edge_by_name("h0_2")), 0);
}

TEST_F(LegalityTest, EmptyBatchIsTriviallyLegal) {
  RerouteLegalityChecker checker(g_, Rat(7, 10));
  EXPECT_TRUE(checker.check_and_apply(1, eng_, {}).ok);
}

TEST(LegalityLps, HandoffReroutesAreLemma33Legal) {
  // The LPS hand-off's reroutes must satisfy exactly the hypotheses the
  // paper invokes: common edge (the egress) and new target edges.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_chain(cfg.n, 2);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_gadget_invariant(eng, net, 0, 200);

  RerouteLegalityChecker checker(net.graph, r);
  LpsHandoff phase(net, cfg, 0);
  LegalityCheckedAdversary checked(phase, checker);
  while (!phase.finished(eng.now() + 1)) eng.step(&checked);
  EXPECT_TRUE(checked.all_legal()) << checked.first_violation();
}

TEST(LegalityLps, BootstrapReroutesAreLemma33Legal) {
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_chain(cfg.n, 1);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_flat_queue(eng, net, 0, 300);

  RerouteLegalityChecker checker(net.graph, r);
  LpsBootstrap phase(net, cfg, 0);
  LegalityCheckedAdversary checked(phase, checker);
  while (!phase.finished(eng.now() + 1)) eng.step(&checked);
  EXPECT_TRUE(checked.all_legal()) << checked.first_violation();
}

TEST(LegalityLps, FullLoopReroutesAreLemma33Legal) {
  // Two complete Theorem 3.17 iterations, every reroute batch validated.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_closed_chain(cfg.n, 4);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_flat_queue(eng, net, 0, 600);

  RerouteLegalityChecker checker(net.graph, r);
  LpsAdversary adv(net, cfg, /*max_iterations=*/2);
  LegalityCheckedAdversary checked(adv, checker);
  while (!adv.finished(eng.now() + 1)) eng.step(&checked);
  EXPECT_TRUE(checked.all_legal()) << checked.first_violation();
  EXPECT_GE(adv.history().size(), 1u);
}

TEST(LegalityChecker, ZeroRateRejected) {
  const Graph g = make_line(2);
  EXPECT_THROW(RerouteLegalityChecker(g, Rat(0)), PreconditionError);
}

}  // namespace
}  // namespace aqt
