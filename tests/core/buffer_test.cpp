#include "aqt/core/buffer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace aqt {
namespace {

BufferEntry entry(std::int64_t k1, std::int64_t k2, std::uint64_t seq,
                  PacketId pkt) {
  return BufferEntry{k1, k2, seq, pkt};
}

TEST(Buffer, EmptyInitially) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(Buffer, PopMinReturnsSmallestPrimaryKey) {
  Buffer b;
  b.push(entry(5, 0, 1, 100));
  b.push(entry(2, 0, 2, 200));
  b.push(entry(9, 0, 3, 300));
  EXPECT_EQ(b.pop_min().packet, 200u);
  EXPECT_EQ(b.pop_min().packet, 100u);
  EXPECT_EQ(b.pop_min().packet, 300u);
  EXPECT_TRUE(b.empty());
}

TEST(Buffer, SecondaryKeyBreaksTies) {
  Buffer b;
  b.push(entry(1, 7, 1, 100));
  b.push(entry(1, 3, 2, 200));
  EXPECT_EQ(b.pop_min().packet, 200u);
}

TEST(Buffer, SeqBreaksRemainingTies) {
  Buffer b;
  b.push(entry(1, 1, 9, 100));
  b.push(entry(1, 1, 4, 200));
  EXPECT_EQ(b.pop_min().packet, 200u);
}

TEST(Buffer, FrontPeeksWithoutRemoval) {
  Buffer b;
  b.push(entry(2, 0, 1, 100));
  b.push(entry(1, 0, 2, 200));
  EXPECT_EQ(b.front().packet, 200u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(Buffer, ErasePacketRemovesMatching) {
  Buffer b;
  b.push(entry(1, 0, 1, 100));
  b.push(entry(2, 0, 2, 200));
  EXPECT_TRUE(b.erase_packet(100));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.front().packet, 200u);
  EXPECT_FALSE(b.erase_packet(999));
}

TEST(Buffer, OrderedEntriesAreKeyOrdered) {
  Buffer b;
  b.push(entry(3, 0, 1, 1));
  b.push(entry(1, 0, 2, 2));
  b.push(entry(2, 0, 3, 3));
  std::vector<PacketId> order;
  for (const auto& e : b.ordered_entries()) order.push_back(e.packet);
  EXPECT_EQ(order, (std::vector<PacketId>{2, 3, 1}));
  // Raw iteration visits the same entries (heap order, not key order).
  std::vector<PacketId> raw;
  for (const auto& e : b) raw.push_back(e.packet);
  std::sort(raw.begin(), raw.end());
  EXPECT_EQ(raw, (std::vector<PacketId>{1, 2, 3}));
}

TEST(Buffer, NegativeKeysSortBeforePositive) {
  Buffer b;
  b.push(entry(5, 0, 1, 1));
  b.push(entry(-5, 0, 2, 2));
  EXPECT_EQ(b.pop_min().packet, 2u);
}

}  // namespace
}  // namespace aqt
