// Tests for engine checkpoint save/restore.
#include <gtest/gtest.h>

#include <sstream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/adversaries/scripted.hpp"
#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/checkpoint.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

/// Aggregate observable fingerprint of an engine.
struct Fingerprint {
  Time now;
  std::uint64_t injected, absorbed, in_flight;
  std::uint64_t max_queue;
  Time max_residence;
  std::vector<std::size_t> queues;
  std::vector<std::uint64_t> front_ordinals;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const Engine& eng) {
  Fingerprint f{};
  f.now = eng.now();
  f.injected = eng.total_injected();
  f.absorbed = eng.total_absorbed();
  f.in_flight = eng.packets_in_flight();
  f.max_queue = eng.metrics().max_queue_global();
  f.max_residence = eng.metrics().max_residence_global();
  for (EdgeId e = 0; e < eng.graph().edge_count(); ++e) {
    f.queues.push_back(eng.queue_size(e));
    f.front_ordinals.push_back(
        eng.buffer(e).empty()
            ? std::uint64_t{0}
            : eng.packet_meta(eng.buffer(e).front().packet).ordinal + 1);
  }
  return f;
}

TEST(Checkpoint, RoundtripPreservesObservableState) {
  const Graph g = make_grid(4, 4);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  StochasticConfig cfg;
  cfg.w = 10;
  cfg.r = Rat(3, 10);
  cfg.max_route_len = 4;
  cfg.seed = 3;
  StochasticAdversary adv(g, cfg);
  eng.run(&adv, 500);

  std::stringstream buf;
  save_checkpoint(eng, buf);

  Engine restored(g, fifo);
  load_checkpoint(restored, buf);
  EXPECT_EQ(fingerprint(restored), fingerprint(eng));
}

TEST(Checkpoint, ResumedRunMatchesUninterruptedRun) {
  const Graph g = make_grid(3, 3);
  FifoProtocol fifo;

  // Uninterrupted: 300 steps of scripted traffic.
  ScriptedAdversary full_script;
  Rng rng(11);
  for (Time t = 1; t <= 250; ++t) {
    if (rng.chance(0.6)) {
      const EdgeId e = static_cast<EdgeId>(rng.below(g.edge_count()));
      full_script.inject_at(t, {e}, static_cast<std::uint64_t>(t));
    }
  }
  Engine uninterrupted(g, fifo);
  uninterrupted.run(&full_script, 300);

  // Interrupted at step 150, checkpointed, resumed with the same script
  // (ScriptedAdversary is stateless in the engine, keyed by `now`).
  ScriptedAdversary script_a;
  ScriptedAdversary script_b;
  {
    Rng rng2(11);
    for (Time t = 1; t <= 250; ++t) {
      if (rng2.chance(0.6)) {
        const EdgeId e = static_cast<EdgeId>(rng2.below(g.edge_count()));
        script_a.inject_at(t, {e}, static_cast<std::uint64_t>(t));
        script_b.inject_at(t, {e}, static_cast<std::uint64_t>(t));
      }
    }
  }
  Engine first_half(g, fifo);
  first_half.run(&script_a, 150);
  std::stringstream buf;
  save_checkpoint(first_half, buf);

  Engine second_half(g, fifo);
  load_checkpoint(second_half, buf);
  EXPECT_EQ(second_half.now(), 150);
  second_half.run(&script_b, 150);

  EXPECT_EQ(fingerprint(second_half), fingerprint(uninterrupted));
}

TEST(Checkpoint, ResumeMidLpsPhasePreservesQueues) {
  // Checkpoint in the middle of a hand-off; the restored engine holds the
  // same queues (the phase itself is code and is not serialized).
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_chain(cfg.n, 2);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_gadget_invariant(eng, net, 0, 300);
  LpsHandoff phase(net, cfg, 0);
  eng.run(&phase, 200);

  std::stringstream buf;
  save_checkpoint(eng, buf);
  Engine restored(net.graph, fifo);
  load_checkpoint(restored, buf);
  EXPECT_EQ(fingerprint(restored), fingerprint(eng));
}

TEST(Checkpoint, RejectsDifferentNetwork) {
  const Graph g = make_grid(3, 3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  eng.run(nullptr, 5);
  std::stringstream buf;
  save_checkpoint(eng, buf);

  const Graph other = make_grid(3, 4);
  Engine target(other, fifo);
  EXPECT_THROW(load_checkpoint(target, buf), PreconditionError);
}

TEST(Checkpoint, RejectsNonFreshTarget) {
  const Graph g = make_line(3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  eng.run(nullptr, 3);
  std::stringstream buf;
  save_checkpoint(eng, buf);

  Engine dirty(g, fifo);
  dirty.step(nullptr);
  EXPECT_THROW(load_checkpoint(dirty, buf), PreconditionError);
}

TEST(Checkpoint, RejectsAuditingEngines) {
  const Graph g = make_line(3);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(g, fifo, ec);
  std::stringstream buf;
  EXPECT_THROW(save_checkpoint(eng, buf), PreconditionError);
}

TEST(Checkpoint, RejectsGarbageStream) {
  const Graph g = make_line(3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  std::stringstream buf("not a checkpoint at all");
  EXPECT_THROW(load_checkpoint(eng, buf), PreconditionError);
}

TEST(Checkpoint, FileRoundtripAndMissingFileErrors) {
  const Graph g = make_line(3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  eng.add_initial_packet({0, 1});
  eng.run(nullptr, 1);
  const std::string path = ::testing::TempDir() + "/aqt_ckpt_io.ckpt";
  save_checkpoint_file(eng, path);
  Engine restored(g, fifo);
  load_checkpoint_file(restored, path);
  EXPECT_EQ(restored.packets_in_flight(), eng.packets_in_flight());
  std::remove(path.c_str());
  Engine fresh(g, fifo);
  EXPECT_THROW(load_checkpoint_file(fresh, path), PreconditionError);
  EXPECT_THROW(save_checkpoint_file(eng, "/no/such/dir/x.ckpt"),
               PreconditionError);
}

TEST(Checkpoint, PreservesSeries) {
  const Graph g = make_line(4);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.series_stride = 5;
  Engine eng(g, fifo, ec);
  for (int i = 0; i < 8; ++i) eng.add_initial_packet({0, 1, 2, 3});
  eng.run(nullptr, 20);
  std::stringstream buf;
  save_checkpoint(eng, buf);

  Engine restored(g, fifo, ec);
  load_checkpoint(restored, buf);
  ASSERT_EQ(restored.metrics().series().size(),
            eng.metrics().series().size());
  for (std::size_t i = 0; i < eng.metrics().series().size(); ++i) {
    EXPECT_EQ(restored.metrics().series()[i].t,
              eng.metrics().series()[i].t);
    EXPECT_EQ(restored.metrics().series()[i].in_flight,
              eng.metrics().series()[i].in_flight);
  }
}

}  // namespace
}  // namespace aqt
