// Tests for the step-level InvariantAuditor: healthy runs (with and without
// reroutes) pass under EngineConfig::audit_invariants, auditing does not
// perturb the simulation, and each EngineTamperer corruption — states the
// public API makes unreachable — is caught by the matching check.
#include "aqt/core/invariants.hpp"

#include <gtest/gtest.h>

#include "aqt/adversaries/scripted.hpp"
#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {
namespace {

EngineConfig audited() {
  EngineConfig config;
  config.audit_invariants = true;
  return config;
}

TEST(InvariantAuditorTest, HealthyStochasticRunPasses) {
  const Graph g = make_grid(4, 4);
  FifoProtocol fifo;
  Engine eng(g, fifo, audited());

  StochasticConfig cfg;
  cfg.w = 8;
  cfg.r = Rat(1, 4);
  cfg.max_route_len = 5;
  cfg.seed = 7;
  StochasticAdversary adv(g, cfg);

  eng.run(&adv, 200);
  const Time drained = eng.drain(10000);
  EXPECT_LT(drained, Time{10000});
  EXPECT_EQ(eng.packets_in_flight(), 0u);
  EXPECT_EQ(eng.total_injected(), eng.total_absorbed());
}

TEST(InvariantAuditorTest, HealthyRerouteRunPasses) {
  // A scripted reroute (Lemma 3.3, legal under the historic FIFO) must
  // audit cleanly: the packet's effective route stays a simple path.
  const Graph g = make_grid(3, 3);
  FifoProtocol fifo;
  Engine eng(g, fifo, audited());

  ScriptedAdversary adv;
  adv.inject_at(1, {g.edge_by_name("h0_0"), g.edge_by_name("h0_1")});
  // After step 2 the packet sits buffered at h0_1; extend it downwards.
  adv.reroute_at(2, 0, {g.edge_by_name("d0_2")});

  eng.run(&adv, 10);
  EXPECT_EQ(eng.total_absorbed(), 1u);
  EXPECT_EQ(eng.packets_in_flight(), 0u);
}

TEST(InvariantAuditorTest, AuditingDoesNotPerturbTheSimulation) {
  const Graph g = make_torus(3, 3);
  StochasticConfig cfg;
  cfg.w = 6;
  cfg.r = Rat(1, 3);
  cfg.max_route_len = 4;
  cfg.seed = 11;

  FifoProtocol fifo_a;
  Engine plain(g, fifo_a);
  StochasticAdversary adv_a(g, cfg);
  plain.run(&adv_a, 150);

  FifoProtocol fifo_b;
  Engine checked(g, fifo_b, audited());
  StochasticAdversary adv_b(g, cfg);
  checked.run(&adv_b, 150);

  EXPECT_EQ(plain.total_injected(), checked.total_injected());
  EXPECT_EQ(plain.total_absorbed(), checked.total_absorbed());
  EXPECT_EQ(plain.packets_in_flight(), checked.packets_in_flight());
}

// Each death test seeds exactly one corruption through EngineTamperer and
// expects the next step's audit to abort naming the violated invariant.

TEST(InvariantAuditorDeathTest, CatchesConservationViolation) {
  const Graph g = make_line(4);
  FifoProtocol fifo;
  Engine eng(g, fifo, audited());
  eng.add_initial_packet({0, 1, 2});
  EngineTamperer::phantom_absorption(eng);
  EXPECT_DEATH(eng.step(nullptr), "packet conservation");
}

TEST(InvariantAuditorDeathTest, CatchesNonSimpleRoute) {
  const Graph g = make_line(4);
  FifoProtocol fifo;
  Engine eng(g, fifo, audited());
  const PacketId id = eng.add_initial_packet({0, 1, 2});
  EngineTamperer::make_route_nonsimple(eng, id);
  EXPECT_DEATH(eng.step(nullptr), "route simplicity");
}

TEST(InvariantAuditorDeathTest, CatchesActiveSetDesync) {
  const Graph g = make_line(4);
  FifoProtocol fifo;
  Engine eng(g, fifo, audited());
  eng.add_initial_packet({0, 1});
  EngineTamperer::hide_active(eng, 0);  // Nonempty buffer, silently idled.
  EXPECT_DEATH(eng.step(nullptr), "active-set consistency");
}

TEST(InvariantAuditorDeathTest, CatchesForgedSequenceNumber) {
  const Graph g = make_line(4);
  FifoProtocol fifo;
  Engine eng(g, fifo, audited());
  // Two packets share buffer l0; the forged entry is the one left behind
  // after the step forwards the (now) minimal genuine entry.
  eng.add_initial_packet({0, 1});
  eng.add_initial_packet({0, 1});
  EngineTamperer::scramble_buffer_seq(eng, 0);
  EXPECT_DEATH(eng.step(nullptr), "time-priority");
}

}  // namespace
}  // namespace aqt
