// Tests for QueueProbe and the state dumper.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "aqt/core/debug.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/probe.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

TEST(QueueProbe, SamplesSelectedEdges) {
  const Graph g = make_line(3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  for (int i = 0; i < 4; ++i) eng.add_initial_packet({0, 1, 2});
  QueueProbe probe(eng, {0, 1});
  probe.sample();  // t = 0.
  for (Time t = 1; t <= 3; ++t) {
    eng.step(nullptr);
    probe.sample();
  }
  ASSERT_EQ(probe.samples(), 4u);
  EXPECT_EQ(probe.series(0),
            (std::vector<std::uint64_t>{4, 3, 2, 1}));
  EXPECT_EQ(probe.series(1), (std::vector<std::uint64_t>{0, 1, 1, 1}));
}

TEST(QueueProbe, AtLooksUpByTime) {
  const Graph g = make_line(2);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  for (int i = 0; i < 3; ++i) eng.add_initial_packet({0});
  QueueProbe probe(eng, {0});
  probe.sample();
  eng.step(nullptr);
  probe.sample();
  EXPECT_EQ(probe.at(0, 0), 3u);
  EXPECT_EQ(probe.at(0, 1), 2u);
  EXPECT_THROW((void)probe.at(0, 99), PreconditionError);
  EXPECT_THROW((void)probe.at(5, 0), PreconditionError);
}

TEST(QueueProbe, CsvExport) {
  const Graph g = make_line(2);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  eng.add_initial_packet({0});
  QueueProbe probe(eng, {0, 1});
  probe.sample();
  const std::string path = ::testing::TempDir() + "/probe_test.csv";
  probe.save_csv(path, g);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,l0,l1");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "0,1,0");
  std::remove(path.c_str());
}

TEST(QueueProbe, RejectsBadConstruction) {
  const Graph g = make_line(2);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  EXPECT_THROW(QueueProbe(eng, {}), PreconditionError);
  EXPECT_THROW(QueueProbe(eng, {99}), PreconditionError);
}

TEST(DumpState, ShowsQueuesInForwardingOrder) {
  const Graph g = make_line(3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  eng.add_initial_packet({0, 1, 2}, /*tag=*/7);
  eng.add_initial_packet({0}, /*tag=*/8);
  const std::string dump = dump_state(eng);
  EXPECT_NE(dump.find("t=0"), std::string::npos);
  EXPECT_NE(dump.find("[l0] 2:"), std::string::npos);
  EXPECT_NE(dump.find("(tag 7) l0>l1>l2"), std::string::npos);
  EXPECT_NE(dump.find("(tag 8) l0"), std::string::npos);
  // Empty buffers omitted by default.
  EXPECT_EQ(dump.find("[l1]"), std::string::npos);
}

TEST(DumpState, TruncatesLongQueues) {
  const Graph g = make_line(2);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  for (int i = 0; i < 20; ++i) eng.add_initial_packet({0});
  DumpOptions opts;
  opts.max_per_buffer = 3;
  opts.show_routes = false;
  const std::string dump = dump_state(eng, opts);
  EXPECT_NE(dump.find("[l0] 20:"), std::string::npos);
  EXPECT_NE(dump.find("..."), std::string::npos);
}

TEST(DumpState, CanIncludeEmptyBuffers) {
  const Graph g = make_line(2);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  DumpOptions opts;
  opts.skip_empty = false;
  const std::string dump = dump_state(eng, opts);
  EXPECT_NE(dump.find("[l0] 0:"), std::string::npos);
  EXPECT_NE(dump.find("[l1] 0:"), std::string::npos);
}

}  // namespace
}  // namespace aqt
