#include "aqt/core/route_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "aqt/core/types.hpp"

namespace aqt {
namespace {

TEST(RouteTable, EmptyRouteInternsToNullRef) {
  RouteTable table;
  const RouteRef ref = table.intern(RouteSpan{});
  EXPECT_EQ(ref.data, nullptr);
  EXPECT_EQ(ref.len, 0u);
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(table.route_count(), 0u);
  EXPECT_EQ(table.pool_bytes(), 0u);
}

TEST(RouteTable, InternReturnsContentEqualRef) {
  RouteTable table;
  const Route route{EdgeId{3}, EdgeId{1}, EdgeId{4}};
  const RouteRef ref = table.intern(route);
  ASSERT_EQ(ref.size(), 3u);
  EXPECT_EQ(ref[0], EdgeId{3});
  EXPECT_EQ(ref[1], EdgeId{1});
  EXPECT_EQ(ref[2], EdgeId{4});
  EXPECT_TRUE(ref == route);
  EXPECT_EQ(table.route_count(), 1u);
}

TEST(RouteTable, DuplicateContentInternsToSamePointer) {
  RouteTable table;
  const Route a{EdgeId{0}, EdgeId{1}, EdgeId{2}};
  const Route b{EdgeId{0}, EdgeId{1}, EdgeId{2}};  // equal content, new vector
  const RouteRef ra = table.intern(a);
  const RouteRef rb = table.intern(b);
  EXPECT_EQ(ra.data, rb.data);  // pointer equality, not just content
  EXPECT_EQ(ra.len, rb.len);
  EXPECT_EQ(table.route_count(), 1u);
  const std::uint64_t bytes_after_dedup = table.pool_bytes();
  // A third identical intern adds no pool bytes.
  (void)table.intern(a);
  EXPECT_EQ(table.pool_bytes(), bytes_after_dedup);
  EXPECT_EQ(table.route_count(), 1u);
}

TEST(RouteTable, DistinctRoutesGetDistinctRefs) {
  RouteTable table;
  const RouteRef ra = table.intern(Route{EdgeId{1}, EdgeId{2}});
  const RouteRef rb = table.intern(Route{EdgeId{2}, EdgeId{1}});
  const RouteRef rc = table.intern(Route{EdgeId{1}, EdgeId{2}, EdgeId{3}});
  EXPECT_FALSE(ra == rb);
  EXPECT_FALSE(ra == rc);
  EXPECT_EQ(table.route_count(), 3u);
}

TEST(RouteTable, PoolBytesGrowsWithDistinctRoutes) {
  RouteTable table;
  EXPECT_EQ(table.pool_bytes(), 0u);
  (void)table.intern(Route{EdgeId{0}});
  const std::uint64_t one = table.pool_bytes();
  EXPECT_GT(one, 0u);
  // Distinct routes may fit in the same chunk, but pool bytes never shrink.
  for (EdgeId i = 1; i < 100; ++i)
    (void)table.intern(Route{i, static_cast<EdgeId>(i + 1)});
  EXPECT_GE(table.pool_bytes(), one);
  EXPECT_EQ(table.route_count(), 100u);
}

TEST(RouteTable, RefsStayValidAcrossChunkGrowth) {
  // Force the pool across many chunks (16k edges each) and verify that refs
  // taken early still dereference to their original content — the chunked
  // pool must never reallocate storage a ref points into.
  RouteTable table;
  const Route first{EdgeId{7}, EdgeId{8}, EdgeId{9}};
  const RouteRef early = table.intern(first);
  const EdgeId* const early_data = early.data;

  std::vector<RouteRef> refs;
  constexpr EdgeId kRoutes = 20000;  // ~80k edges >> one 16k chunk
  for (EdgeId i = 0; i < kRoutes; ++i) {
    refs.push_back(
        table.intern(Route{i, static_cast<EdgeId>(i + 1),
                           static_cast<EdgeId>(i + 2),
                           static_cast<EdgeId>(i + 3)}));
  }

  EXPECT_EQ(early.data, early_data);
  EXPECT_TRUE(early == first);
  for (EdgeId i = 0; i < kRoutes; i += 997) {
    ASSERT_EQ(refs[i].size(), 4u);
    EXPECT_EQ(refs[i][0], i);
    EXPECT_EQ(refs[i][3], i + 3);
  }
}

TEST(RouteTable, OversizedRouteSpansMultipleChunkCapacity) {
  // A single route longer than one chunk's edge capacity must still intern
  // contiguously and round-trip.
  RouteTable table;
  constexpr std::size_t kLen = (std::size_t{1} << 14) + 37;
  Route big;
  big.reserve(kLen);
  for (std::size_t i = 0; i < kLen; ++i)
    big.push_back(static_cast<EdgeId>(i));
  const RouteRef ref = table.intern(big);
  ASSERT_EQ(ref.size(), kLen);
  EXPECT_EQ(ref[0], EdgeId{0});
  EXPECT_EQ(ref[kLen - 1], static_cast<EdgeId>(kLen - 1));
  EXPECT_TRUE(ref == big);
  // And deduplicates like any other route.
  const RouteRef again = table.intern(big);
  EXPECT_EQ(again.data, ref.data);
  EXPECT_EQ(table.route_count(), 1u);
}

TEST(RouteTable, InternAcceptsRouteRefSpans) {
  // Interning a ref's own span (the COW-splice path re-interns a rebuilt
  // route that may alias pool storage) must work and deduplicate.
  RouteTable table;
  const RouteRef ref = table.intern(Route{EdgeId{5}, EdgeId{6}});
  const RouteRef again = table.intern(ref.span());
  EXPECT_EQ(again.data, ref.data);
  EXPECT_EQ(table.route_count(), 1u);
}

}  // namespace
}  // namespace aqt
