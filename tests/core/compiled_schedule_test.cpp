#include "aqt/core/compiled_schedule.hpp"

#include <gtest/gtest.h>

#include "aqt/core/route_table.hpp"
#include "aqt/core/types.hpp"

namespace aqt {
namespace {

TEST(CompiledSchedule, EmptyAfterReset) {
  CompiledSchedule sched;
  sched.reset(Time{10});
  EXPECT_EQ(sched.first_step(), Time{10});
  EXPECT_EQ(sched.step_count(), Time{0});
  EXPECT_EQ(sched.injection_count(), 0u);
  EXPECT_FALSE(sched.covers(Time{9}));
  EXPECT_FALSE(sched.covers(Time{10}));
}

TEST(CompiledSchedule, CoversExactlyTheCompiledRange) {
  CompiledSchedule sched;
  sched.reset(Time{5});
  sched.begin_step(false);
  sched.begin_step(false);
  sched.begin_step(false);
  EXPECT_EQ(sched.step_count(), Time{3});
  EXPECT_FALSE(sched.covers(Time{4}));
  EXPECT_TRUE(sched.covers(Time{5}));
  EXPECT_TRUE(sched.covers(Time{7}));
  EXPECT_FALSE(sched.covers(Time{8}));
}

TEST(CompiledSchedule, StepSpansPartitionInjections) {
  RouteTable routes;
  const RouteRef ra = routes.intern(Route{EdgeId{0}, EdgeId{1}});
  const RouteRef rb = routes.intern(Route{EdgeId{2}});

  CompiledSchedule sched;
  sched.reset(Time{1});
  sched.begin_step(false);  // step 1: two injections
  sched.add_injection(ra, 11);
  sched.add_injection(rb, 12);
  sched.begin_step(false);  // step 2: empty
  sched.begin_step(false);  // step 3: one injection
  sched.add_injection(ra, 31);

  EXPECT_EQ(sched.injection_count(), 3u);

  const auto s1 = sched.step(Time{1});
  ASSERT_EQ(s1.injections.size(), 2u);
  EXPECT_EQ(s1.injections[0].route.data, ra.data);
  EXPECT_EQ(s1.injections[0].tag, 11u);
  EXPECT_EQ(s1.injections[1].tag, 12u);
  EXPECT_TRUE(s1.reroutes.empty());

  const auto s2 = sched.step(Time{2});
  EXPECT_TRUE(s2.injections.empty());
  EXPECT_TRUE(s2.reroutes.empty());

  const auto s3 = sched.step(Time{3});
  ASSERT_EQ(s3.injections.size(), 1u);
  EXPECT_EQ(s3.injections[0].tag, 31u);
  EXPECT_EQ(s3.injections[0].route.data, ra.data);
}

TEST(CompiledSchedule, StepSpansPartitionReroutes) {
  CompiledSchedule sched;
  sched.reset(Time{1});
  sched.begin_step(false);
  sched.add_reroute(Reroute{PacketId{7}, Route{EdgeId{4}, EdgeId{5}}});
  sched.begin_step(false);
  sched.add_reroute(Reroute{PacketId{8}, Route{EdgeId{6}}});
  sched.add_reroute(Reroute{PacketId{9}, Route{EdgeId{7}}});

  const auto s1 = sched.step(Time{1});
  ASSERT_EQ(s1.reroutes.size(), 1u);
  EXPECT_EQ(s1.reroutes[0].packet, PacketId{7});
  ASSERT_EQ(s1.reroutes[0].new_suffix.size(), 2u);

  const auto s2 = sched.step(Time{2});
  ASSERT_EQ(s2.reroutes.size(), 2u);
  EXPECT_EQ(s2.reroutes[0].packet, PacketId{8});
  EXPECT_EQ(s2.reroutes[1].packet, PacketId{9});
}

TEST(CompiledSchedule, FinishedBeforeIsPerStep) {
  // The finished() snapshot must be the one polled before each step, not a
  // block-wide flag: a stream adversary that runs dry mid-block reports
  // finished only from that point on.
  CompiledSchedule sched;
  sched.reset(Time{0});
  sched.begin_step(false);
  sched.begin_step(false);
  sched.begin_step(true);
  sched.begin_step(true);

  EXPECT_FALSE(sched.step(Time{0}).finished_before);
  EXPECT_FALSE(sched.step(Time{1}).finished_before);
  EXPECT_TRUE(sched.step(Time{2}).finished_before);
  EXPECT_TRUE(sched.step(Time{3}).finished_before);
}

TEST(CompiledSchedule, ResetDiscardsPreviousBlock) {
  RouteTable routes;
  const RouteRef ra = routes.intern(Route{EdgeId{0}});

  CompiledSchedule sched;
  sched.reset(Time{0});
  sched.begin_step(false);
  sched.add_injection(ra, 1);
  sched.add_reroute(Reroute{PacketId{1}, Route{EdgeId{1}}});
  ASSERT_TRUE(sched.covers(Time{0}));

  // Recompile for the next block: the old steps and work are gone.
  sched.reset(CompiledSchedule::kBlockSteps);
  EXPECT_EQ(sched.first_step(), CompiledSchedule::kBlockSteps);
  EXPECT_EQ(sched.step_count(), Time{0});
  EXPECT_EQ(sched.injection_count(), 0u);
  EXPECT_FALSE(sched.covers(Time{0}));

  sched.begin_step(false);
  sched.add_injection(ra, 99);
  const auto view = sched.step(CompiledSchedule::kBlockSteps);
  ASSERT_EQ(view.injections.size(), 1u);
  EXPECT_EQ(view.injections[0].tag, 99u);
  EXPECT_TRUE(view.reroutes.empty());
}

}  // namespace
}  // namespace aqt
