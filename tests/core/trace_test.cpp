// Tests for the trace record / persist / replay subsystem.
#include <gtest/gtest.h>

#include <sstream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/adversaries/scripted.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/trace/trace.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

TEST(Trace, RecordsInOrder) {
  Trace trace;
  trace.record_injection(1, Injection{{0}, 5});
  trace.record_reroute(2, 0, {1, 2});
  trace.record_injection(2, Injection{{1}, 6});
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.injection_count(), 2u);
  EXPECT_EQ(trace.last_time(), 2);
  EXPECT_EQ(trace.events()[0].kind, TraceEvent::Kind::kInjection);
  EXPECT_EQ(trace.events()[1].kind, TraceEvent::Kind::kReroute);
}

TEST(Trace, RejectsTimeRegression) {
  Trace trace;
  trace.record_injection(5, Injection{{0}, 0});
  EXPECT_THROW(trace.record_injection(4, Injection{{0}, 0}),
               PreconditionError);
}

TEST(Trace, SaveLoadRoundtrip) {
  const Graph g = make_line(4);
  Trace trace;
  trace.record_injection(1, Injection{{0, 1, 2}, 9});
  trace.record_reroute(3, 0, {3});
  trace.record_injection(4, Injection{{2}, 0});

  std::stringstream buf;
  trace.save(buf, g);
  const Trace loaded = Trace::load(buf, g);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded.events()[i].kind, trace.events()[i].kind) << i;
    EXPECT_EQ(loaded.events()[i].t, trace.events()[i].t) << i;
    EXPECT_EQ(loaded.events()[i].tag, trace.events()[i].tag) << i;
    EXPECT_EQ(loaded.events()[i].ordinal, trace.events()[i].ordinal) << i;
    EXPECT_EQ(loaded.events()[i].edges, trace.events()[i].edges) << i;
  }
}

TEST(Trace, LoadSkipsCommentsAndBlankLines) {
  const Graph g = make_line(2);
  std::stringstream buf("# a comment\n\nI 3 7 l0 l1\n");
  const Trace t = Trace::load(buf, g);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.events()[0].t, 3);
  EXPECT_EQ(t.events()[0].tag, 7u);
}

TEST(Trace, LoadRejectsGarbage) {
  const Graph g = make_line(2);
  std::stringstream bad_kind("X 1 0 l0\n");
  EXPECT_THROW((void)Trace::load(bad_kind, g), PreconditionError);
  std::stringstream bad_edge("I 1 0 nosuch\n");
  EXPECT_THROW((void)Trace::load(bad_edge, g), PreconditionError);
  std::stringstream no_route("I 1 0\n");
  EXPECT_THROW((void)Trace::load(no_route, g), PreconditionError);
}

TEST(Trace, LoadRejectsNegativeAndRegressingTimes) {
  const Graph g = make_line(2);
  std::stringstream negative("I -1 0 l0\n");
  EXPECT_THROW((void)Trace::load(negative, g), PreconditionError);
  std::stringstream regressing("I 5 0 l0\nI 4 0 l0\n");
  EXPECT_THROW((void)Trace::load(regressing, g), PreconditionError);
}

TEST(Trace, LoadRejectsTruncatedAndOverflowingFields) {
  const Graph g = make_line(2);
  std::stringstream half_line("I 1\n");
  EXPECT_THROW((void)Trace::load(half_line, g), PreconditionError);
  std::stringstream overflow("I 99999999999999999999999 0 l0\n");
  EXPECT_THROW((void)Trace::load(overflow, g), PreconditionError);
  std::stringstream bad_reroute("R 1\n");
  EXPECT_THROW((void)Trace::load(bad_reroute, g), PreconditionError);
}

TEST(Trace, RecordingWrapsAnotherAdversary) {
  const Graph g = make_line(3);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  ScriptedAdversary inner;
  inner.inject_at(1, {0, 1}, 4);
  inner.inject_at(3, {2}, 5);
  Trace trace;
  RecordingAdversary rec(inner, trace);
  eng.run(&rec, 4);
  EXPECT_EQ(trace.injection_count(), 2u);
  EXPECT_EQ(trace.events()[0].t, 1);
  EXPECT_EQ(trace.events()[0].tag, 4u);
  EXPECT_EQ(trace.events()[1].t, 3);
  EXPECT_TRUE(rec.finished(5));
}

TEST(Trace, ReplayReproducesIdenticalRun) {
  const Graph g = make_grid(3, 3);
  // Record a run.
  Trace trace;
  {
    FifoProtocol fifo;
    Engine eng(g, fifo);
    ScriptedAdversary inner;
    inner.inject_at(1, {g.edge_by_name("h0_0"), g.edge_by_name("h0_1")}, 1);
    inner.inject_at(2, {g.edge_by_name("d0_0")}, 2);
    inner.inject_at(2, {g.edge_by_name("h0_0")}, 3);
    inner.inject_at(5, {g.edge_by_name("h1_0"), g.edge_by_name("h1_1")}, 4);
    RecordingAdversary rec(inner, trace);
    eng.run(&rec, 10);
  }
  // Replay and compare observables.
  FifoProtocol fifo;
  Engine eng(g, fifo);
  ReplayAdversary replay(trace);
  eng.run(&replay, 10);
  EXPECT_EQ(eng.total_injected(), 4u);
  EXPECT_EQ(eng.total_absorbed(), 4u);
  EXPECT_EQ(replay.skipped_reroutes(), 0u);
  EXPECT_TRUE(replay.finished(11));
}

TEST(Trace, ReplayLpsRunMatchesOriginalUnderFifo) {
  // Record a full bootstrap+handoff under FIFO, then replay the trace under
  // FIFO again: the executions must match in aggregate observables.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_chain(cfg.n, 2);

  Trace trace;
  std::uint64_t orig_injected = 0;
  std::uint64_t orig_absorbed = 0;
  std::int64_t orig_target_s = 0;
  Time duration = 0;
  {
    FifoProtocol fifo;
    Engine eng(net.graph, fifo);
    setup_gadget_invariant(eng, net, 0, 200);
    LpsHandoff phase(net, cfg, 0);
    RecordingAdversary rec(phase, trace);
    while (!phase.finished(eng.now() + 1)) eng.step(&rec);
    orig_injected = eng.total_injected();
    orig_absorbed = eng.total_absorbed();
    orig_target_s = inspect_gadget(eng, net, 1).S();
    duration = eng.now();
  }
  {
    FifoProtocol fifo;
    Engine eng(net.graph, fifo);
    setup_gadget_invariant(eng, net, 0, 200);
    ReplayAdversary replay(trace);
    eng.run(&replay, duration);
    EXPECT_EQ(eng.total_injected(), orig_injected);
    EXPECT_EQ(eng.total_absorbed(), orig_absorbed);
    EXPECT_EQ(inspect_gadget(eng, net, 1).S(), orig_target_s);
    EXPECT_EQ(replay.skipped_reroutes(), 0u);
  }
}

TEST(Trace, ReplayUnderDifferentProtocolSkipsImpossibleReroutes) {
  // Record under FIFO, replay under LIS: injections replay verbatim; any
  // reroute whose target moved differently is skipped, not crashed.
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const ChainedGadgets net = build_chain(cfg.n, 2);

  Trace trace;
  Time duration = 0;
  {
    FifoProtocol fifo;
    Engine eng(net.graph, fifo);
    setup_gadget_invariant(eng, net, 0, 200);
    LpsHandoff phase(net, cfg, 0);
    RecordingAdversary rec(phase, trace);
    while (!phase.finished(eng.now() + 1)) eng.step(&rec);
    duration = eng.now();
  }
  LisProtocol lis;
  Engine eng(net.graph, lis);
  setup_gadget_invariant(eng, net, 0, 200);
  ReplayAdversary replay(trace);
  EXPECT_NO_THROW(eng.run(&replay, duration));
  EXPECT_EQ(eng.total_injected() - 400,  // Minus the initial configuration.
            trace.injection_count());
}

TEST(Trace, FileRoundtripAndMissingFileErrors) {
  const Graph g = make_line(3);
  Trace trace;
  trace.record_injection(1, Injection{{0, 1}, 3});
  const std::string path = ::testing::TempDir() + "/aqt_trace_io.trace";
  trace.save_file(path, g);
  const Trace loaded = Trace::load_file(path, g);
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());
  EXPECT_THROW((void)Trace::load_file(path, g), PreconditionError);
  EXPECT_THROW(trace.save_file("/no/such/dir/x.trace", g),
               PreconditionError);
}

TEST(Trace, ReplayStartedMidTraceThrows) {
  const Graph g = make_line(2);
  Trace trace;
  trace.record_injection(1, Injection{{0}, 0});
  FifoProtocol fifo;
  Engine eng(g, fifo);
  eng.step(nullptr);  // Engine already at t=1; replay would start at t=2.
  ReplayAdversary replay(trace);
  EXPECT_THROW(eng.step(&replay), PreconditionError);
}

}  // namespace
}  // namespace aqt
