#include "aqt/core/graph.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

Graph diamond() {
  // s -> a -> t and s -> b -> t.
  Graph g;
  g.add_edge("s", "a", "sa");
  g.add_edge("a", "t", "at");
  g.add_edge("s", "b", "sb");
  g.add_edge("b", "t", "bt");
  return g;
}

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const EdgeId e = g.add_edge(a, b, "ab");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.tail(e), a);
  EXPECT_EQ(g.head(e), b);
  EXPECT_EQ(g.edge(e).name, "ab");
}

TEST(Graph, NamedEdgeCreatesNodes) {
  Graph g;
  g.add_edge("x", "y", "xy");
  EXPECT_TRUE(g.find_node("x").has_value());
  EXPECT_TRUE(g.find_node("y").has_value());
  EXPECT_TRUE(g.find_edge("xy").has_value());
}

TEST(Graph, NamedEdgeReusesNodes) {
  Graph g;
  g.add_edge("x", "y", "e1");
  g.add_edge("y", "x", "e2");
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Graph, DuplicateNodeNameThrows) {
  Graph g;
  g.add_node("a");
  EXPECT_THROW(g.add_node("a"), PreconditionError);
}

TEST(Graph, DuplicateEdgeNameThrows) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, "e");
  EXPECT_THROW(g.add_edge(a, b, "e"), PreconditionError);
}

TEST(Graph, SelfLoopThrows) {
  Graph g;
  const NodeId a = g.add_node("a");
  EXPECT_THROW(g.add_edge(a, a, "loop"), PreconditionError);
}

TEST(Graph, EmptyNamesThrow) {
  Graph g;
  EXPECT_THROW(g.add_node(""), PreconditionError);
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  EXPECT_THROW(g.add_edge(a, b, ""), PreconditionError);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_edge(a, b, "e1");
  g.add_edge(a, b, "e2");
  EXPECT_EQ(g.out_edges(a).size(), 2u);
  EXPECT_EQ(g.in_edges(b).size(), 2u);
}

TEST(Graph, AdjacencyLists) {
  Graph g = diamond();
  const NodeId s = *g.find_node("s");
  const NodeId t = *g.find_node("t");
  EXPECT_EQ(g.out_edges(s).size(), 2u);
  EXPECT_EQ(g.in_edges(s).size(), 0u);
  EXPECT_EQ(g.in_edges(t).size(), 2u);
  EXPECT_EQ(g.out_edges(t).size(), 0u);
}

TEST(Graph, FindMissingReturnsNullopt) {
  Graph g;
  EXPECT_FALSE(g.find_node("ghost").has_value());
  EXPECT_FALSE(g.find_edge("ghost").has_value());
}

TEST(Graph, EdgeByNameThrowsWhenMissing) {
  Graph g;
  EXPECT_THROW((void)g.edge_by_name("ghost"), PreconditionError);
}

TEST(Graph, IsPathAcceptsContiguous) {
  Graph g = diamond();
  EXPECT_TRUE(g.is_path({g.edge_by_name("sa"), g.edge_by_name("at")}));
}

TEST(Graph, IsPathRejectsGap) {
  Graph g = diamond();
  EXPECT_FALSE(g.is_path({g.edge_by_name("sa"), g.edge_by_name("bt")}));
}

TEST(Graph, IsPathRejectsEmpty) {
  Graph g = diamond();
  EXPECT_FALSE(g.is_path({}));
}

TEST(Graph, IsPathRejectsBadEdgeId) {
  Graph g = diamond();
  EXPECT_FALSE(g.is_path({static_cast<EdgeId>(999)}));
}

TEST(Graph, SimplePathRejectsNodeRevisit) {
  // Triangle a -> b -> c -> a: traversing all three revisits node a.
  Graph g;
  g.add_edge("a", "b", "ab");
  g.add_edge("b", "c", "bc");
  g.add_edge("c", "a", "ca");
  EXPECT_TRUE(g.is_simple_path(
      {g.edge_by_name("ab"), g.edge_by_name("bc")}));
  EXPECT_FALSE(g.is_simple_path(
      {g.edge_by_name("ab"), g.edge_by_name("bc"), g.edge_by_name("ca")}));
}

TEST(Graph, SingleEdgeIsSimplePath) {
  Graph g = diamond();
  EXPECT_TRUE(g.is_simple_path({g.edge_by_name("sa")}));
}

TEST(Graph, MaxInDegree) {
  Graph g = diamond();
  EXPECT_EQ(g.max_in_degree(), 2u);  // Node t.
  Graph empty;
  EXPECT_EQ(empty.max_in_degree(), 0u);
}

TEST(Graph, DotExportMentionsAllEdges) {
  Graph g = diamond();
  const std::string dot = g.to_dot("D");
  EXPECT_NE(dot.find("digraph \"D\""), std::string::npos);
  for (const char* name : {"sa", "at", "sb", "bt"})
    EXPECT_NE(dot.find(name), std::string::npos) << name;
}

TEST(Graph, OutOfRangeAccessorsThrow) {
  Graph g;
  EXPECT_THROW((void)g.edge(0), PreconditionError);
  EXPECT_THROW((void)g.node_name(0), PreconditionError);
  EXPECT_THROW((void)g.out_edges(0), PreconditionError);
  EXPECT_THROW((void)g.in_edges(0), PreconditionError);
}

}  // namespace
}  // namespace aqt
