#include "aqt/core/simulation.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include "aqt/adversaries/scripted.hpp"
#include "aqt/topology/generators.hpp"

namespace aqt {
namespace {

TEST(Simulation, ConstructsByProtocolName) {
  Simulation sim(make_line(3), "FIFO");
  EXPECT_EQ(sim.protocol().name(), "FIFO");
}

TEST(Simulation, UnknownProtocolThrows) {
  EXPECT_THROW(Simulation(make_line(3), "NOPE"), PreconditionError);
}

TEST(Simulation, InitialQueuePlacesPackets) {
  Simulation sim(make_line(3), "FIFO");
  const EdgeId l0 = sim.graph().edge_by_name("l0");
  sim.add_initial_queue({l0}, 5);
  EXPECT_EQ(sim.engine().queue_size(l0), 5u);
}

TEST(Simulation, RunForAdvancesTime) {
  Simulation sim(make_line(3), "FIFO");
  sim.run_for(7);
  EXPECT_EQ(sim.engine().now(), 7);
}

TEST(Simulation, RunUntilPredicate) {
  Simulation sim(make_line(3), "FIFO");
  const EdgeId l0 = sim.graph().edge_by_name("l0");
  sim.add_initial_queue({l0}, 10);
  sim.run_until([&](const Engine& e) { return e.total_absorbed() >= 4; },
                100);
  EXPECT_EQ(sim.engine().total_absorbed(), 4u);
}

TEST(Simulation, RunUntilStopsOnAdversaryFinish) {
  Simulation sim(make_line(3), "FIFO");
  auto adv = std::make_unique<ScriptedAdversary>();
  const EdgeId l0 = sim.graph().edge_by_name("l0");
  adv->inject_at(3, {l0});
  sim.set_adversary(std::move(adv));
  sim.run_until({}, 1000);
  // The script's last event is at step 3; the run stops shortly after.
  EXPECT_LE(sim.engine().now(), 5);
  EXPECT_EQ(sim.engine().total_injected(), 1u);
}

TEST(Simulation, RunUntilRespectsCap) {
  Simulation sim(make_line(3), "FIFO");
  sim.run_until([](const Engine&) { return false; }, 12);
  EXPECT_EQ(sim.engine().now(), 12);
}

TEST(Simulation, SummaryAggregates) {
  Simulation sim(make_line(2), "FIFO");
  const EdgeId l0 = sim.graph().edge_by_name("l0");
  const EdgeId l1 = sim.graph().edge_by_name("l1");
  sim.add_initial_queue({l0, l1}, 3);
  sim.run_for(10);
  const RunSummary s = sim.summary();
  EXPECT_EQ(s.steps, 10);
  EXPECT_EQ(s.injected, 3u);
  EXPECT_EQ(s.absorbed, 3u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.max_queue, 3u);
  EXPECT_GT(s.max_latency, 0);
  EXPECT_GT(s.mean_latency, 0.0);
}

TEST(Simulation, NullProtocolThrows) {
  EXPECT_THROW(Simulation(make_line(2), std::unique_ptr<Protocol>{}),
               PreconditionError);
}

}  // namespace
}  // namespace aqt
