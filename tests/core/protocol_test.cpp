#include "aqt/core/protocol.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

#include "aqt/core/engine.hpp"

namespace aqt {
namespace {

Packet make_packet(Time inject, std::uint32_t hop, std::size_t route_len) {
  // Protocol keys never read past route metadata, so a static all-zero
  // backing array is enough to give the RouteRef a valid target.
  static const Route backing(16, 0);
  Packet p;
  p.route = RouteRef{backing.data(), static_cast<std::uint32_t>(route_len)};
  p.hop = hop;
  p.inject_time = inject;
  return p;
}

TEST(ProtocolFactory, KnowsAllNames) {
  for (const auto& name : protocol_names()) {
    auto p = make_protocol(name);
    ASSERT_NE(p, nullptr) << name;
    // SIS aliases NIS; every other protocol reports its own name.
    if (name != "SIS") EXPECT_EQ(p->name(), name);
  }
}

TEST(ProtocolFactory, SisAliasesNis) {
  EXPECT_EQ(make_protocol("SIS")->name(), "NIS");
}

TEST(ProtocolFactory, UnknownNameThrows) {
  EXPECT_THROW(make_protocol("BOGUS"), PreconditionError);
}

TEST(ProtocolClassification, MatchesPaper) {
  // Definition 3.1 (historic) and Definition 4.2 (time-priority).
  struct Case {
    const char* name;
    bool historic;
    bool time_priority;
  };
  const Case cases[] = {
      {"FIFO", true, true},   {"LIFO", true, false}, {"LIS", true, true},
      {"NIS", true, false},   {"FTG", false, false}, {"NTG", false, false},
      {"FFS", true, false},   {"NTS", true, false},  {"RANDOM", true, false},
  };
  for (const auto& c : cases) {
    auto p = make_protocol(c.name);
    EXPECT_EQ(p->is_historic(), c.historic) << c.name;
    EXPECT_EQ(p->is_time_priority(), c.time_priority) << c.name;
  }
}

TEST(Protocol, FifoOrdersByArrivalSeq) {
  FifoProtocol fifo;
  const Packet p = make_packet(0, 0, 1);
  const auto k1 = fifo.key(p, 5, 10);
  const auto k2 = fifo.key(p, 5, 20);
  EXPECT_LT(k1.k1, k2.k1);
}

TEST(Protocol, LifoPrefersLatestArrival) {
  LifoProtocol lifo;
  const Packet p = make_packet(0, 0, 1);
  EXPECT_GT(lifo.key(p, 5, 10).k1, lifo.key(p, 5, 20).k1);
}

TEST(Protocol, LisPrefersEarliestInjection) {
  LisProtocol lis;
  const Packet older = make_packet(3, 0, 1);
  const Packet newer = make_packet(8, 0, 1);
  EXPECT_LT(lis.key(older, 10, 1).k1, lis.key(newer, 10, 2).k1);
}

TEST(Protocol, NisPrefersLatestInjection) {
  NisProtocol nis;
  const Packet older = make_packet(3, 0, 1);
  const Packet newer = make_packet(8, 0, 1);
  EXPECT_GT(nis.key(older, 10, 1).k1, nis.key(newer, 10, 2).k1);
}

TEST(Protocol, FtgPrefersMostRemaining) {
  FtgProtocol ftg;
  const Packet far = make_packet(0, 0, 10);   // 10 remaining.
  const Packet near = make_packet(0, 0, 2);   // 2 remaining.
  EXPECT_LT(ftg.key(far, 1, 1).k1, ftg.key(near, 1, 2).k1);
}

TEST(Protocol, NtgPrefersLeastRemaining) {
  NtgProtocol ntg;
  const Packet far = make_packet(0, 0, 10);
  const Packet near = make_packet(0, 0, 2);
  EXPECT_GT(ntg.key(far, 1, 1).k1, ntg.key(near, 1, 2).k1);
}

TEST(Protocol, FfsPrefersMostTraversed) {
  FfsProtocol ffs;
  const Packet deep = make_packet(0, 5, 10);
  const Packet fresh = make_packet(0, 0, 10);
  EXPECT_LT(ffs.key(deep, 1, 1).k1, ffs.key(fresh, 1, 2).k1);
}

TEST(Protocol, NtsPrefersLeastTraversed) {
  NtsProtocol nts;
  const Packet deep = make_packet(0, 5, 10);
  const Packet fresh = make_packet(0, 0, 10);
  EXPECT_GT(nts.key(deep, 1, 1).k1, nts.key(fresh, 1, 2).k1);
}

TEST(Protocol, LambdaProtocolDelegates) {
  // A custom "shortest total route first" policy.
  LambdaProtocol srf("SRF", /*historic=*/false, /*time_priority=*/false,
                     [](const Packet& p, Time, std::uint64_t seq) {
                       return PriorityKey{
                           static_cast<std::int64_t>(p.route.size()),
                           static_cast<std::int64_t>(seq)};
                     });
  EXPECT_EQ(srf.name(), "SRF");
  EXPECT_FALSE(srf.is_historic());
  const Packet shorty = make_packet(0, 0, 2);
  const Packet longy = make_packet(0, 0, 9);
  EXPECT_LT(srf.key(shorty, 1, 1).k1, srf.key(longy, 1, 2).k1);
}

TEST(Protocol, LambdaProtocolRunsInEngine) {
  // Behaviourally identical to FIFO when keyed on the arrival sequence.
  LambdaProtocol fifo_clone("FIFO2", true, true,
                            [](const Packet&, Time, std::uint64_t seq) {
                              return PriorityKey{
                                  static_cast<std::int64_t>(seq), 0};
                            });
  Graph g;
  g.add_edge("a", "b", "ab");
  g.add_edge("b", "c", "bc");
  Engine eng(g, fifo_clone);
  const PacketId first =
      eng.add_initial_packet({g.edge_by_name("ab"), g.edge_by_name("bc")});
  eng.add_initial_packet({g.edge_by_name("ab")});
  eng.step(nullptr);
  EXPECT_EQ(eng.packet(first).hop, 1u);
}

TEST(Protocol, LambdaProtocolValidatesArguments) {
  const auto key = [](const Packet&, Time, std::uint64_t) {
    return PriorityKey{};
  };
  EXPECT_THROW(LambdaProtocol("", true, true, key), PreconditionError);
  EXPECT_THROW(LambdaProtocol("X", true, true, nullptr), PreconditionError);
}

TEST(Protocol, RandomIsSeedDeterministic) {
  RandomProtocol a(99);
  RandomProtocol b(99);
  const Packet p = make_packet(0, 0, 1);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(a.key(p, 1, 1).k1, b.key(p, 1, 1).k1);
}

}  // namespace
}  // namespace aqt
