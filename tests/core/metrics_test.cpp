#include "aqt/core/metrics.hpp"

#include <gtest/gtest.h>

namespace aqt {
namespace {

TEST(Metrics, FreshMetricsAreZero) {
  Metrics m(3);
  EXPECT_EQ(m.max_queue_global(), 0u);
  EXPECT_EQ(m.max_residence_global(), 0);
  EXPECT_EQ(m.sends(), 0u);
  EXPECT_EQ(m.absorbed(), 0u);
  EXPECT_EQ(m.max_latency(), 0);
  EXPECT_DOUBLE_EQ(m.mean_latency(), 0.0);
  EXPECT_TRUE(m.series().empty());
}

TEST(Metrics, MaxQueuePerEdgeAndGlobal) {
  Metrics m(3);
  m.observe_queue(0, 5);
  m.observe_queue(1, 9);
  m.observe_queue(0, 2);  // Lower: no change.
  EXPECT_EQ(m.max_queue(0), 5u);
  EXPECT_EQ(m.max_queue(1), 9u);
  EXPECT_EQ(m.max_queue(2), 0u);
  EXPECT_EQ(m.max_queue_global(), 9u);
}

TEST(Metrics, ResidenceTracking) {
  Metrics m(2);
  m.observe_send(0, 3);
  m.observe_send(1, 7);
  m.observe_send(0, 1);
  EXPECT_EQ(m.max_residence(0), 3);
  EXPECT_EQ(m.max_residence(1), 7);
  EXPECT_EQ(m.max_residence_global(), 7);
  EXPECT_EQ(m.sends(), 3u);
}

TEST(Metrics, LatencyStatistics) {
  Metrics m(1);
  m.observe_absorb(4);
  m.observe_absorb(10);
  m.observe_absorb(1);
  EXPECT_EQ(m.absorbed(), 3u);
  EXPECT_EQ(m.max_latency(), 10);
  EXPECT_DOUBLE_EQ(m.mean_latency(), 5.0);
}

TEST(Metrics, EmptyDenominatorConvention) {
  // The repo-wide convention (documented in metrics.hpp): every mean/ratio
  // accessor of an untouched Metrics returns exactly 0.0, never NaN/Inf.
  const Metrics m(3);
  EXPECT_EQ(m.mean_latency(), 0.0);
  EXPECT_EQ(m.mean_occupancy(), 0.0);
  EXPECT_EQ(m.peak_occupancy(), 0u);
  EXPECT_EQ(m.steps_observed(), 0u);
  EXPECT_EQ(m.latency_histogram().mean(), 0.0);
  EXPECT_EQ(m.queue_depth_histogram().mean(), 0.0);
  EXPECT_EQ(m.residence_histogram().mean(), 0.0);
}

TEST(Metrics, OccupancyStatistics) {
  Metrics m(1);
  m.observe_step(4);
  m.observe_step(10);
  m.observe_step(1);
  EXPECT_EQ(m.steps_observed(), 3u);
  EXPECT_DOUBLE_EQ(m.mean_occupancy(), 5.0);
  EXPECT_EQ(m.peak_occupancy(), 10u);
}

TEST(Metrics, DistributionsFedByObservations) {
  Metrics m(2);
  m.observe_queue(0, 3);
  m.observe_queue(1, 5);
  m.observe_send(0, 2);
  m.observe_absorb(7);
  EXPECT_EQ(m.queue_depth_histogram().count(), 2u);
  EXPECT_DOUBLE_EQ(m.queue_depth_histogram().mean(), 4.0);
  EXPECT_EQ(m.residence_histogram().count(), 1u);
  EXPECT_EQ(m.residence_histogram().max(), 2);
  EXPECT_EQ(m.latency_histogram().count(), 1u);
}

TEST(Metrics, SeriesAppends) {
  Metrics m(1);
  m.push_series(10, 100, 50);
  m.push_series(20, 200, 60);
  ASSERT_EQ(m.series().size(), 2u);
  EXPECT_EQ(m.series()[1].t, 20);
  EXPECT_EQ(m.series()[1].in_flight, 200u);
  EXPECT_EQ(m.series()[1].max_queue, 60u);
}

}  // namespace
}  // namespace aqt
