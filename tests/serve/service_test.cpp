// The resident job service: bounded intake (SRV010), round-robin fairness
// across clients, deadlines, cancellation, drain semantics (shed vs
// checkpoint), and the aqt_serve_* metrics surface.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aqt/obs/export.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/serve/request.hpp"
#include "aqt/serve/service.hpp"

namespace aqt {
namespace serve {
namespace {

RunRequest small_request(std::uint64_t seed, Time steps = 300) {
  RunRequest req;
  req.topology = "grid:3x3";
  req.protocol = "FIFO";
  req.adversary.kind = "stochastic";
  req.adversary.w = 8;
  req.adversary.r = Rat(1, 4);
  req.adversary.d = 4;
  req.seed = seed;
  req.steps = steps;
  return req;
}

/// Collects completion callbacks (which arrive on worker threads) and lets
/// the test thread block until N of them have fired.
class Collector {
 public:
  Service::CompletionFn sink() {
    return [this](const JobOutcome& outcome) {
      std::lock_guard<std::mutex> lock(mu_);
      outcomes_.push_back(outcome);
      cv_.notify_all();
    };
  }

  /// Waits for `n` outcomes; fails the test on timeout.
  std::vector<JobOutcome> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool ok = cv_.wait_for(lock, std::chrono::seconds(30),
                                 [&] { return outcomes_.size() >= n; });
    EXPECT_TRUE(ok) << "timed out with " << outcomes_.size() << "/" << n;
    return outcomes_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<JobOutcome> outcomes_;
};

TEST(ServeService, RunsASubmittedJobToDone) {
  const Registry registry;
  ServiceConfig config;
  config.workers = 2;
  Service service(registry, config);

  Collector collector;
  const std::uint64_t id =
      service.submit("alice", small_request(1), collector.sink());
  EXPECT_GE(id, 1u);
  const auto outcomes = collector.wait_for(1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].job, id);
  EXPECT_EQ(outcomes[0].client, "alice");
  EXPECT_EQ(outcomes[0].state, JobState::kDone);
  EXPECT_TRUE(outcomes[0].result.ok()) << outcomes[0].result.error;
  EXPECT_NE(outcomes[0].result.trace_hash, 0u);
  EXPECT_GE(outcomes[0].start_seq, 1u);
}

TEST(ServeService, FullQueueRejectsWithSRV010) {
  const Registry registry;
  ServiceConfig config;
  config.workers = 1;
  config.queue_cap = 2;
  config.start_paused = true;  // Nothing dispatches; the queue must fill.
  Service service(registry, config);

  Collector collector;
  service.submit("c", small_request(1), collector.sink());
  service.submit("c", small_request(2), collector.sink());
  try {
    service.submit("c", small_request(3), collector.sink());
    FAIL() << "expected SRV010";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.code(), errc::kQueueFull);
  }
  EXPECT_EQ(service.queue_depth(), 2u);

  // Rejection is back-pressure, not a black hole: resuming drains the two
  // accepted jobs and frees capacity again.
  service.resume();
  const auto outcomes = collector.wait_for(2);
  EXPECT_EQ(outcomes.size(), 2u);
  service.drain();
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(ServeService, DispatchIsRoundRobinAcrossClients) {
  const Registry registry;
  ServiceConfig config;
  config.workers = 1;  // Serial dispatch makes start_seq deterministic.
  config.start_paused = true;
  Service service(registry, config);

  Collector collector;
  // alice floods four jobs before bob's two arrive; fairness says bob is
  // not starved behind the flood.
  std::vector<std::uint64_t> alice;
  std::vector<std::uint64_t> bob;
  for (int i = 0; i < 4; ++i)
    alice.push_back(service.submit("alice", small_request(10 + i),
                                   collector.sink()));
  for (int i = 0; i < 2; ++i)
    bob.push_back(service.submit("bob", small_request(20 + i),
                                 collector.sink()));
  service.resume();
  const auto outcomes = collector.wait_for(6);
  ASSERT_EQ(outcomes.size(), 6u);

  std::map<std::uint64_t, std::uint64_t> seq_of_job;
  for (const JobOutcome& o : outcomes) seq_of_job[o.job] = o.start_seq;
  // Expected interleave: a1 b1 a2 b2 a3 a4.
  EXPECT_EQ(seq_of_job[alice[0]], 1u);
  EXPECT_EQ(seq_of_job[bob[0]], 2u);
  EXPECT_EQ(seq_of_job[alice[1]], 3u);
  EXPECT_EQ(seq_of_job[bob[1]], 4u);
  EXPECT_EQ(seq_of_job[alice[2]], 5u);
  EXPECT_EQ(seq_of_job[alice[3]], 6u);
  // Per client, jobs ran in submission order.
  EXPECT_LT(seq_of_job[alice[0]], seq_of_job[alice[1]]);
  EXPECT_LT(seq_of_job[bob[0]], seq_of_job[bob[1]]);
}

TEST(ServeService, DeadlineExpiryCancelsTheJob) {
  const Registry registry;
  ServiceConfig config;
  config.workers = 1;
  config.slice_steps = 64;  // Tight slices so the deadline lands quickly.
  Service service(registry, config);

  Collector collector;
  RunRequest req = small_request(7, 2000000000);  // Far beyond the deadline.
  req.deadline_ms = 1;
  const std::uint64_t id = service.submit("d", req, collector.sink());
  const auto outcomes = collector.wait_for(1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].job, id);
  EXPECT_EQ(outcomes[0].state, JobState::kDeadline);
}

TEST(ServeService, ClientCancelStopsAnActiveJob) {
  const Registry registry;
  ServiceConfig config;
  config.workers = 1;
  config.slice_steps = 64;
  Service service(registry, config);

  Collector collector;
  const std::uint64_t id =
      service.submit("c", small_request(8, 2000000000), collector.sink());
  // Wait until the job is actually running, then cancel it.
  while (service.active_jobs() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(service.cancel(id));
  const auto outcomes = collector.wait_for(1);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].state, JobState::kCancelled);
  // Cancelling a finished job is a polite no.
  EXPECT_FALSE(service.cancel(id));
  EXPECT_FALSE(service.cancel(999999));
}

TEST(ServeService, DrainShedsQueuedJobs) {
  const Registry registry;
  ServiceConfig config;
  config.workers = 1;
  config.start_paused = true;  // Keep everything queued.
  Service service(registry, config);

  Collector collector;
  service.submit("c", small_request(1), collector.sink());
  service.submit("c", small_request(2), collector.sink());
  service.drain();
  EXPECT_TRUE(service.draining());
  const auto outcomes = collector.wait_for(2);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const JobOutcome& o : outcomes) {
    EXPECT_EQ(o.state, JobState::kShed);
    EXPECT_FALSE(o.result.ok());
  }
  // Submitting after drain is SRV013.
  try {
    service.submit("c", small_request(3), collector.sink());
    FAIL() << "expected SRV013";
  } catch (const RequestError& e) {
    EXPECT_EQ(e.code(), errc::kDraining);
  }
}

TEST(ServeService, DrainCheckpointsActiveJobsAndTheCheckpointResumes) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "aqt_serve_drain_ckpt")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const Registry registry;
  const Time steps = 2000000;
  std::string checkpoint_path;
  {
    ServiceConfig config;
    config.workers = 1;
    config.slice_steps = 256;
    config.checkpoint_dir = dir;
    Service service(registry, config);

    Collector collector;
    service.submit("c", small_request(9, steps), collector.sink());
    while (service.active_jobs() == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    service.drain();
    const auto outcomes = collector.wait_for(1);
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_EQ(outcomes[0].state, JobState::kCheckpointed);
    checkpoint_path = outcomes[0].checkpoint_path;
    ASSERT_FALSE(checkpoint_path.empty());
    ASSERT_TRUE(std::filesystem::exists(checkpoint_path));
  }

  // The drained checkpoint continues to the uninterrupted result.
  const RunResult full = execute_run(registry.compile(small_request(9, steps)));
  ASSERT_TRUE(full.ok()) << full.error;
  RunRequest resume = small_request(9, steps);
  resume.resume_from = checkpoint_path;
  const RunResult resumed = execute_run(registry.compile(resume));
  ASSERT_TRUE(resumed.ok()) << resumed.error;
  EXPECT_EQ(resumed.trace_hash, full.trace_hash);
  std::filesystem::remove_all(dir);
}

TEST(ServeService, MetricsExposeTheServeSurface) {
  const Registry registry;
  ServiceConfig config;
  config.workers = 2;
  Service service(registry, config);

  Collector collector;
  service.submit("m", small_request(1), collector.sink());
  service.submit("m", small_request(2), collector.sink());
  collector.wait_for(2);

  obs::MetricRegistry metrics;
  service.collect_metrics(metrics);
  const std::string text = obs::to_prometheus(metrics);
  for (const char* name :
       {"aqt_serve_queue_depth", "aqt_serve_active_jobs",
        "aqt_serve_submitted_total", "aqt_serve_rejected_total",
        "aqt_serve_completed_total", "aqt_serve_shed_total",
        "aqt_serve_job_seconds_p50", "aqt_serve_job_seconds_p99"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("aqt_serve_submitted_total 2"), std::string::npos);
  EXPECT_NE(text.find("aqt_serve_completed_total 2"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace aqt
