// The RunRequest -> RunSpec compiler: name resolution (SRV006..SRV009),
// named-recipe registration, the catalog, and — the load-bearing property —
// purity: compiling the same request twice runs to identical artifacts.
#include <gtest/gtest.h>

#include <string>

#include "aqt/runner/run_spec.hpp"
#include "aqt/serve/registry.hpp"
#include "aqt/serve/request.hpp"
#include "aqt/serve/result.hpp"
#include "aqt/topology/generators.hpp"

namespace aqt {
namespace serve {
namespace {

RunRequest base_request() {
  RunRequest req;
  req.topology = "grid:3x3";
  req.protocol = "FIFO";
  req.adversary.kind = "stochastic";
  req.adversary.w = 8;
  req.adversary.r = Rat(1, 4);
  req.adversary.d = 4;
  req.seed = 3;
  req.steps = 500;
  return req;
}

void expect_compile_code(const Registry& registry, const RunRequest& req,
                         const std::string& code) {
  try {
    (void)registry.compile(req);
    FAIL() << "expected " << code;
  } catch (const RequestError& e) {
    EXPECT_EQ(e.code(), code) << e.what();
  }
}

TEST(ServeRegistry, CompilesARunnableSpec) {
  const Registry registry;
  const RunSpec spec = registry.compile(base_request());
  const RunResult result = execute_run(spec);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.steps_run, 500);
  EXPECT_NE(result.trace_hash, 0u);
}

TEST(ServeRegistry, CompilationIsPure) {
  const Registry registry;
  const RunResult a = execute_run(registry.compile(base_request()));
  const RunResult b = execute_run(registry.compile(base_request()));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(canonical_result_json(a), canonical_result_json(b));
}

TEST(ServeRegistry, ResolutionErrorsCarryStableCodes) {
  const Registry registry;

  RunRequest bad_topology = base_request();
  bad_topology.topology = "mobius:9";
  expect_compile_code(registry, bad_topology, errc::kUnknownTopology);

  RunRequest bad_protocol = base_request();
  bad_protocol.protocol = "LIFO-ISH";
  expect_compile_code(registry, bad_protocol, errc::kUnknownProtocol);

  // Cross-field consistency: an lps adversary needs an lps:NxM topology
  // whose N matches the n(r) the construction demands.
  RunRequest lps_on_grid = base_request();
  lps_on_grid.adversary.kind = "lps";
  lps_on_grid.adversary.r = Rat(7, 10);
  expect_compile_code(registry, lps_on_grid, errc::kBadParam);

  RunRequest lps_wrong_n = base_request();
  lps_wrong_n.topology = "lps:4x8";  // r=7/10 needs n=9.
  lps_wrong_n.adversary.kind = "lps";
  lps_wrong_n.adversary.r = Rat(7, 10);
  expect_compile_code(registry, lps_wrong_n, errc::kBadParam);
}

TEST(ServeRegistry, NamedRecipesResolveAndShowInCatalog) {
  Registry registry;
  NamedTopology entry;
  entry.name = "test-backbone";
  entry.description = "a ring of 6 for the registry test";
  entry.build = [](std::uint64_t) { return make_ring(6); };
  registry.register_topology(std::move(entry));

  EXPECT_TRUE(registry.has_topology("test-backbone"));
  RunRequest req = base_request();
  req.topology = "test-backbone";
  const RunResult result = execute_run(registry.compile(req));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_NE(result.trace_hash, 0u);

  const JsonValue cat = registry.catalog();
  ASSERT_TRUE(cat.is_object());
  EXPECT_EQ(cat.find("aqt_catalog")->as_int(), 1);
  bool found = false;
  for (const JsonValue& t : cat.find("topologies")->items())
    if (t.find("name")->as_string() == "test-backbone") found = true;
  EXPECT_TRUE(found);
  // The catalog names every protocol and adversary kind compile() accepts.
  bool has_fifo = false;
  for (const JsonValue& p : cat.find("protocols")->items())
    if (p.as_string() == "FIFO") has_fifo = true;
  EXPECT_TRUE(has_fifo);
  bool has_bucket = false;
  for (const JsonValue& a : cat.find("adversaries")->items())
    if (a.as_string() == "bucket") has_bucket = true;
  EXPECT_TRUE(has_bucket);
}

TEST(ServeRegistry, AuditAndArtifactSelectionsReachTheSpec) {
  const Registry registry;
  RunRequest req = base_request();
  req.audit_w = 8;
  req.audit_r = Rat(1, 4);
  req.art_metrics = true;
  req.art_growth = true;
  const RunSpec spec = registry.compile(req);
  EXPECT_TRUE(spec.audit_r.has_value());
  EXPECT_TRUE(spec.artifacts.metrics);
  EXPECT_TRUE(spec.artifacts.growth);
  EXPECT_TRUE(spec.artifacts.trace_hash);
  const RunResult result = execute_run(spec);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_TRUE(result.feasible);  // 1/4-rate traffic passes its own audit.
  // The metrics artifact embeds the obs export in the canonical document.
  const std::string bytes = canonical_result_json(result);
  EXPECT_NE(bytes.find("\"metrics\""), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace aqt
