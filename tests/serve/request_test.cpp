// RunRequest parsing: the SRV001..SRV005 validation contract and the
// canonical round-trip anchor (parse(canonical(x)) == x, bytes stable).
#include <gtest/gtest.h>

#include <string>

#include "aqt/serve/request.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {
namespace serve {
namespace {

/// Asserts that parsing `text` throws RequestError with exactly `code`.
void expect_code(const std::string& text, const std::string& code) {
  try {
    parse_run_request(text, "test");
    FAIL() << "expected " << code << " for: " << text;
  } catch (const RequestError& e) {
    EXPECT_EQ(e.code(), code) << e.what() << " for: " << text;
  }
}

std::string minimal(const std::string& extra = "") {
  return R"({"aqt_run_request": 1, "topology": "ring:8", "protocol": "FIFO",)"
         R"( "adversary": {"kind": "bucket", "burst": 2, "r": "1/3", "d": 6},)"
         R"( "steps": 1000)" +
         extra + "}";
}

TEST(RunRequestParse, MinimalDocumentGetsDefaults) {
  const RunRequest req = parse_run_request(minimal(), "test");
  EXPECT_EQ(req.version, 1);
  EXPECT_EQ(req.topology, "ring:8");
  EXPECT_EQ(req.protocol, "FIFO");
  EXPECT_EQ(req.adversary.kind, "bucket");
  EXPECT_EQ(req.adversary.burst, 2);
  EXPECT_EQ(req.adversary.r, Rat(1, 3));
  EXPECT_EQ(req.steps, 1000);
  EXPECT_EQ(req.seed, 1u);
  EXPECT_TRUE(req.stop_when_finished);
  EXPECT_FALSE(req.drain);
  EXPECT_FALSE(req.audit_r.has_value());
  EXPECT_TRUE(req.art_trace_hash);   // The default artifact.
  EXPECT_FALSE(req.art_metrics);
  EXPECT_EQ(req.deadline_ms, 0u);
}

TEST(RunRequestParse, StableErrorCodes) {
  expect_code("not json at all", errc::kBadJson);
  expect_code("{}", errc::kBadVersion);
  expect_code(R"({"aqt_run_request": 99, "topology": "ring:8",)"
              R"( "protocol": "FIFO", "adversary": {"kind": "none"},)"
              R"( "steps": 10})",
              errc::kBadVersion);
  // Required fields.
  expect_code(R"({"aqt_run_request": 1, "protocol": "FIFO",)"
              R"( "adversary": {"kind": "none"}, "steps": 10})",
              errc::kMissingField);
  expect_code(R"({"aqt_run_request": 1, "topology": "ring:8",)"
              R"( "protocol": "FIFO", "adversary": {"kind": "none"}})",
              errc::kMissingField);
  // Wrong types / out-of-range values.
  expect_code(R"({"aqt_run_request": 1, "topology": 7, "protocol": "FIFO",)"
              R"( "adversary": {"kind": "none"}, "steps": 10})",
              errc::kBadField);
  expect_code(R"({"aqt_run_request": 1, "topology": "ring:8",)"
              R"( "protocol": "FIFO", "adversary": {"kind": "none"},)"
              R"( "steps": 0})",
              errc::kBadField);
  expect_code(R"({"aqt_run_request": 1, "topology": "ring:8",)"
              R"( "protocol": "FIFO", "adversary": {"kind": "stochastic",)"
              R"( "r": "not-a-rate"}, "steps": 10})",
              errc::kBadField);
  // Unknown keys fail loudly, top-level and per-kind.
  expect_code(minimal(R"(, "tpology": "oops")"), errc::kUnknownField);
  expect_code(R"({"aqt_run_request": 1, "topology": "ring:8",)"
              R"( "protocol": "FIFO", "adversary": {"kind": "none",)"
              R"( "w": 8}, "steps": 10})",
              errc::kUnknownField);
  // "lps" takes iterations/s_star, never a window.
  expect_code(R"({"aqt_run_request": 1, "topology": "lps:9x8",)"
              R"( "protocol": "FIFO", "adversary": {"kind": "lps",)"
              R"( "w": 8}, "steps": 10})",
              errc::kUnknownField);
  // Unknown adversary kinds are SRV008 even before the registry is asked.
  expect_code(R"({"aqt_run_request": 1, "topology": "ring:8",)"
              R"( "protocol": "FIFO", "adversary": {"kind": "byzantine"},)"
              R"( "steps": 10})",
              errc::kUnknownAdversary);
}

TEST(RunRequestParse, CanonicalRoundTripIsExact) {
  RunRequest req;
  req.id = "job-7";
  req.topology = "grid:4x4";
  req.protocol = "NTG";
  req.adversary.kind = "stochastic";
  req.adversary.w = 12;
  req.adversary.r = Rat(9, 10);
  req.adversary.d = 4;
  req.seed = 17;
  req.steps = 20000;
  req.drain = true;
  req.drain_cap = 512;
  req.audit_w = 12;
  req.audit_r = Rat(9, 10);
  req.art_metrics = true;
  req.art_growth = true;
  req.deadline_ms = 60000;

  const std::string bytes = canonical_request_json(req);
  const RunRequest back = parse_run_request(bytes, "round-trip");
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.topology, req.topology);
  EXPECT_EQ(back.protocol, req.protocol);
  EXPECT_EQ(back.adversary.kind, req.adversary.kind);
  EXPECT_EQ(back.adversary.w, req.adversary.w);
  EXPECT_EQ(back.adversary.r, req.adversary.r);
  EXPECT_EQ(back.adversary.d, req.adversary.d);
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_EQ(back.steps, req.steps);
  EXPECT_EQ(back.drain, req.drain);
  EXPECT_EQ(back.drain_cap, req.drain_cap);
  EXPECT_EQ(back.audit_w, req.audit_w);
  EXPECT_EQ(back.audit_r, req.audit_r);
  EXPECT_EQ(back.art_metrics, req.art_metrics);
  EXPECT_EQ(back.art_trace_hash, req.art_trace_hash);
  EXPECT_EQ(back.art_growth, req.art_growth);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  // The fixed point: canonicalizing the parse re-emits identical bytes.
  EXPECT_EQ(canonical_request_json(back), bytes);
}

TEST(RunRequestParse, CanonicalFormMaterializesDefaults) {
  const RunRequest sparse = parse_run_request(minimal(), "test");
  const std::string bytes = canonical_request_json(sparse);
  // Every field is present in canonical form, even defaulted ones.
  EXPECT_NE(bytes.find("\"seed\":1"), std::string::npos);
  EXPECT_NE(bytes.find("\"stop_when_finished\":true"), std::string::npos);
  EXPECT_NE(bytes.find("\"artifacts\":[\"trace_hash\"]"), std::string::npos);
  // And the canonical form is itself a fixed point.
  EXPECT_EQ(canonical_request_json(parse_run_request(bytes, "again")), bytes);
}

}  // namespace
}  // namespace serve
}  // namespace aqt
