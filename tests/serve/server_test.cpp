// End-to-end over real sockets: the JSONL protocol envelope, error
// replies, and the serve/offline byte-identity contract (the job result
// event carries the exact canonical_result_json bytes).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "aqt/runner/run_spec.hpp"
#include "aqt/serve/json.hpp"
#include "aqt/serve/registry.hpp"
#include "aqt/serve/request.hpp"
#include "aqt/serve/result.hpp"
#include "aqt/serve/server.hpp"

namespace aqt {
namespace serve {
namespace {

/// A minimal blocking JSONL client for the tests.
class LineClient {
 public:
  explicit LineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), 0),
              static_cast<ssize_t>(framed.size()));
  }

  /// Reads one newline-terminated line (blocking; gtest-fails on EOF).
  std::string read_line() {
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        const std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed mid-read";
        return "";
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Sends one request and returns its *reply*.  Async job events can
  /// legally arrive before the reply (a fast job finishes while the reply
  /// is still being written), so event lines are stashed for next_event.
  JsonValue rpc(const std::string& line) {
    send_line(line);
    for (;;) {
      JsonValue doc = parse_json(read_line(), "reply");
      if (doc.find("event") == nullptr) return doc;
      events_.push_back(std::move(doc));
    }
  }

  /// Returns the next async event (stashed or read fresh).
  JsonValue next_event() {
    if (!events_.empty()) {
      JsonValue doc = std::move(events_.front());
      events_.pop_front();
      return doc;
    }
    for (;;) {
      JsonValue doc = parse_json(read_line(), "event");
      if (doc.find("event") != nullptr) return doc;
      ADD_FAILURE() << "expected an event, got reply: " << write_json(doc);
      return doc;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
  std::deque<JsonValue> events_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceConfig service_config;
    service_config.workers = 2;
    service_ = std::make_unique<Service>(registry_, service_config);
    ServerConfig server_config;
    server_config.port = 0;  // Ephemeral.
    server_ = std::make_unique<Server>(*service_, registry_, server_config);
    server_->start();
    ASSERT_NE(server_->port(), 0);
  }
  void TearDown() override { server_->stop(); }

  Registry registry_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingHelloStatusCatalog) {
  LineClient client(server_->port());

  JsonValue pong = client.rpc(R"({"op": "ping"})");
  EXPECT_TRUE(pong.find("ok")->as_bool());
  EXPECT_EQ(pong.find("op")->as_string(), "ping");

  JsonValue hello = client.rpc(R"({"op": "hello", "client": "tester"})");
  EXPECT_TRUE(hello.find("ok")->as_bool());
  EXPECT_EQ(hello.find("aqt_serve")->as_int(), 1);
  EXPECT_EQ(hello.find("run_request_version")->as_int(), 1);
  EXPECT_EQ(hello.find("client")->as_string(), "tester");

  JsonValue status = client.rpc(R"({"op": "status"})");
  EXPECT_TRUE(status.find("ok")->as_bool());
  EXPECT_FALSE(status.find("draining")->as_bool());

  JsonValue catalog = client.rpc(R"({"op": "catalog"})");
  EXPECT_TRUE(catalog.find("ok")->as_bool());
  EXPECT_EQ(catalog.find("catalog")->find("aqt_catalog")->as_int(), 1);
}

TEST_F(ServerTest, MalformedLinesGetStableCodes) {
  LineClient client(server_->port());

  JsonValue bad_json = client.rpc("this is not json");
  EXPECT_FALSE(bad_json.find("ok")->as_bool());
  EXPECT_EQ(bad_json.find("code")->as_string(), errc::kBadJson);

  JsonValue bad_op = client.rpc(R"({"op": "frobnicate"})");
  EXPECT_FALSE(bad_op.find("ok")->as_bool());
  EXPECT_EQ(bad_op.find("code")->as_string(), errc::kBadOp);

  JsonValue no_op = client.rpc(R"({"noop": 1})");
  EXPECT_FALSE(no_op.find("ok")->as_bool());
  EXPECT_EQ(no_op.find("code")->as_string(), errc::kBadOp);

  JsonValue unknown_job = client.rpc(R"({"op": "cancel", "job": 424242})");
  EXPECT_FALSE(unknown_job.find("ok")->as_bool());
  EXPECT_EQ(unknown_job.find("code")->as_string(), errc::kUnknownJob);

  // A bad submit reports the compile-level code.
  JsonValue bad_submit = client.rpc(
      R"({"op": "submit", "request": {"aqt_run_request": 1,)"
      R"( "topology": "nope:1", "protocol": "FIFO",)"
      R"( "adversary": {"kind": "none"}, "steps": 10}})");
  EXPECT_FALSE(bad_submit.find("ok")->as_bool());
  EXPECT_EQ(bad_submit.find("code")->as_string(), errc::kUnknownTopology);
}

TEST_F(ServerTest, ServedJobMatchesOfflineBytes) {
  LineClient client(server_->port());

  RunRequest req;
  req.id = "e2e-1";
  req.topology = "grid:3x3";
  req.protocol = "FIFO";
  req.adversary.kind = "stochastic";
  req.adversary.w = 8;
  req.adversary.r = Rat(1, 4);
  req.adversary.d = 4;
  req.seed = 5;
  req.steps = 400;

  JsonValue submit = JsonValue::make_object();
  submit.set("op", JsonValue::make_string("submit"));
  submit.set("request", run_request_to_json(req));
  JsonValue accepted = client.rpc(write_json(submit));
  ASSERT_TRUE(accepted.find("ok")->as_bool())
      << write_json(accepted);
  const std::int64_t job = accepted.find("job")->as_int();
  EXPECT_GE(job, 1);

  // The async result event for that job (possibly already stashed if it
  // raced ahead of the submit reply).
  JsonValue event = client.next_event();
  EXPECT_EQ(event.find("event")->as_string(), "result");
  EXPECT_EQ(event.find("job")->as_int(), job);
  EXPECT_EQ(event.find("state")->as_string(), "done");
  EXPECT_GE(event.find("start_seq")->as_int(), 1);

  // THE contract: the served bytes equal the offline run's canonical form.
  const RunResult offline = execute_run(registry_.compile(req));
  ASSERT_TRUE(offline.ok()) << offline.error;
  EXPECT_EQ(event.find("result_canonical")->as_string(),
            canonical_result_json(offline));
}

TEST_F(ServerTest, MetricsEndpointSpeaksPrometheus) {
  const std::string text = server_->metrics_text();
  EXPECT_NE(text.find("# TYPE aqt_serve_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("aqt_serve_submitted_total"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace aqt
