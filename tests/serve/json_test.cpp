// The hardened JSON reader/writer under the serve wire protocol: strict
// parsing of untrusted input, canonical byte-stable emission.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "aqt/serve/json.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace serve {
namespace {

TEST(ServeJson, ParsesScalarsAndContainers) {
  const JsonValue doc = parse_json(
      R"({"i": 42, "f": 1.5, "s": "hi", "b": true, "n": null,)"
      R"( "a": [1, 2, 3], "o": {"k": "v"}})",
      "test");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("i")->as_int(), 42);
  EXPECT_DOUBLE_EQ(doc.find("f")->as_double(), 1.5);
  EXPECT_EQ(doc.find("s")->as_string(), "hi");
  EXPECT_TRUE(doc.find("b")->as_bool());
  EXPECT_TRUE(doc.find("n")->is_null());
  ASSERT_EQ(doc.find("a")->items().size(), 3u);
  EXPECT_EQ(doc.find("a")->items()[2].as_int(), 3);
  EXPECT_EQ(doc.find("o")->find("k")->as_string(), "v");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("", "t"), PreconditionError);
  EXPECT_THROW(parse_json("{", "t"), PreconditionError);
  EXPECT_THROW(parse_json("{'k': 1}", "t"), PreconditionError);
  EXPECT_THROW(parse_json("[1, 2,]", "t"), PreconditionError);
  EXPECT_THROW(parse_json("nul", "t"), PreconditionError);
  // Exactly one document: trailing garbage is an error, not ignored.
  EXPECT_THROW(parse_json("{} {}", "t"), PreconditionError);
  EXPECT_THROW(parse_json("1 2", "t"), PreconditionError);
}

TEST(ServeJson, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_json(R"({"k": 1, "k": 2})", "t"), PreconditionError);
}

TEST(ServeJson, BoundsDepthAndSize) {
  std::string deep;
  for (std::size_t i = 0; i < kMaxJsonDepth + 1; ++i) deep += "[";
  for (std::size_t i = 0; i < kMaxJsonDepth + 1; ++i) deep += "]";
  EXPECT_THROW(parse_json(deep, "t"), PreconditionError);

  std::string big(kMaxJsonBytes + 1, ' ');
  big[0] = '1';
  EXPECT_THROW(parse_json(big, "t"), PreconditionError);
}

TEST(ServeJson, WriteIsCanonicalAndRoundTrips) {
  JsonValue doc = JsonValue::make_object();
  doc.set("b", JsonValue::make_int(2));
  doc.set("a", JsonValue::make_int(1));  // Insertion order, not sorted.
  JsonValue arr = JsonValue::make_array();
  arr.push_back(JsonValue::make_string("x\n\"y\""));
  arr.push_back(JsonValue::make_bool(false));
  doc.set("arr", std::move(arr));

  const std::string bytes = write_json(doc);
  EXPECT_EQ(bytes, R"({"b":2,"a":1,"arr":["x\n\"y\"",false]})");
  // parse(write(x)) re-emits the identical bytes.
  EXPECT_EQ(write_json(parse_json(bytes, "t")), bytes);
}

TEST(ServeJson, SetReplacesInPlace) {
  JsonValue doc = JsonValue::make_object();
  doc.set("first", JsonValue::make_int(1));
  doc.set("second", JsonValue::make_int(2));
  doc.set("first", JsonValue::make_int(3));  // Replace keeps position.
  EXPECT_EQ(write_json(doc), R"({"first":3,"second":2})");
}

TEST(ServeJson, EscapesControlBytes) {
  std::string raw = "a";
  raw += '\x01';  // Spelled out so the 'b' next door is not hex-swallowed.
  raw += "b\tc";
  JsonValue doc = JsonValue::make_string(raw);
  EXPECT_EQ(write_json(doc), "\"a\\u0001b\\tc\"");
}

TEST(ServeJson, IntegersSurviveExactly) {
  const JsonValue doc =
      parse_json("[9223372036854775807, -9223372036854775808]", "t");
  EXPECT_EQ(doc.items()[0].as_int(), INT64_MAX);
  EXPECT_EQ(doc.items()[1].as_int(), INT64_MIN);
  EXPECT_EQ(write_json(doc), "[9223372036854775807,-9223372036854775808]");
}

}  // namespace
}  // namespace serve
}  // namespace aqt
