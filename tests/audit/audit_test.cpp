// Tests for the aqt-audit determinism analyzer: the token scanner's
// soundness obligations (comments/strings never reach the code stream),
// every AUD rule against known-bad and near-miss corpus files, directive
// suppression semantics, the baseline round-trip, and the hardened JSON
// round-trip shared with the other CI-facing tools.
#include "aqt/audit/auditor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "aqt/audit/lexer.hpp"
#include "aqt/util/check.hpp"

namespace aqt::audit {
namespace {

std::string corpus(const std::string& name) {
  return std::string(AQT_SOURCE_DIR) + "/tests/audit/corpus/" + name;
}

bool has_rule(const AuditReport& rep, const std::string& rule) {
  return std::any_of(
      rep.findings.begin(), rep.findings.end(),
      [&rule](const AuditFinding& f) { return f.rule == rule; });
}

bool only_rule(const AuditReport& rep, const std::string& rule) {
  return !rep.findings.empty() &&
         std::all_of(
             rep.findings.begin(), rep.findings.end(),
             [&rule](const AuditFinding& f) { return f.rule == rule; });
}

// --- Lexer soundness -------------------------------------------------------

TEST(AuditLexerTest, CommentsAndStringsNeverReachTheCodeStream) {
  const ScannedSource src = scan_source(
      "// rand in a comment\n"
      "const char* msg = \"rand() and time() here\";\n"
      "/* rand\n   rand */ int x = 1;\n");
  for (const Token& t : src.tokens) EXPECT_NE(t.text, "rand") << t.line;
  ASSERT_GE(src.comments.size(), 2u);
  EXPECT_EQ(src.comments[0].line, 1);
}

TEST(AuditLexerTest, RawStringsAreExcluded) {
  const ScannedSource src =
      scan_source("auto s = R\"(rand() inside raw)\";\nint after = 2;\n");
  for (const Token& t : src.tokens) EXPECT_NE(t.text, "rand");
  // The token after the raw string still carries the right line.
  bool saw_after = false;
  for (const Token& t : src.tokens)
    if (t.text == "after") {
      saw_after = true;
      EXPECT_EQ(t.line, 2);
    }
  EXPECT_TRUE(saw_after);
}

TEST(AuditLexerTest, PreprocessorContinuationsAreHonoured) {
  const ScannedSource src =
      scan_source("#include \\\n  \"aqt/core/engine.hpp\"\nint x;\n");
  ASSERT_EQ(src.preprocessor.size(), 1u);
  EXPECT_NE(src.preprocessor[0].text.find("aqt/core/engine.hpp"),
            std::string::npos);
}

TEST(AuditLexerTest, PrefixedRawStringsAndCustomDelimitersAreExcluded) {
  // Every encoding prefix, with a custom delimiter that embeds the naive
  // `)"` terminator mid-string.
  const ScannedSource src = scan_source(
      "auto a = u8R\"x(rand() )\" still raw)x\";\n"
      "auto b = uR\"(rand())\";\n"
      "auto c = UR\"(rand())\";\n"
      "auto d = LR\"(rand())\";\n"
      "auto e = R\"delim(rand() )\" still raw)delim\";\n"
      "int after = 5;\n");
  for (const Token& t : src.tokens) {
    EXPECT_NE(t.text, "rand") << t.line;
    EXPECT_NE(t.text, "still") << t.line;
  }
  bool saw_after = false;
  for (const Token& t : src.tokens)
    if (t.text == "after") {
      saw_after = true;
      EXPECT_EQ(t.line, 6);
    }
  EXPECT_TRUE(saw_after);
}

TEST(AuditLexerTest, LineCommentBackslashContinuationIsHonoured) {
  // Phase-2 line splicing extends a // comment across the backslash;
  // the next physical line is still commentary, never code.
  const ScannedSource src = scan_source(
      "int x = 1;  // trailing comment \\\n"
      "rand() would be a finding were this code\n"
      "int y = 2;\n");
  for (const Token& t : src.tokens) EXPECT_NE(t.text, "rand") << t.line;
  ASSERT_EQ(src.comments.size(), 1u);
  EXPECT_EQ(src.comments[0].line, 1);
  EXPECT_NE(src.comments[0].text.find("were this code"), std::string::npos);
  bool saw_y = false;
  for (const Token& t : src.tokens)
    if (t.text == "y") {
      saw_y = true;
      EXPECT_EQ(t.line, 3);
    }
  EXPECT_TRUE(saw_y);
}

TEST(AuditLexerTest, DirectiveInsideARawStringIsNotADirective) {
  // A raw string spanning lines that *look* like suppression directives
  // must not suppress anything: string contents are data, not comments.
  // Were the raw string mis-lexed, the "directive" on its last interior
  // line would be comment-only and absolve the rand() on the next line.
  const AuditReport rep = audit_source(
      "src/aqt/core/x.cpp",
      "const char* doc = R\"(\n"
      "sample report text\n"
      "// aqt-audit: allow(AUD001) -- not a real directive\n"
      ")\"; int f() { return rand(); }\n");
  EXPECT_TRUE(has_rule(rep, "AUD001")) << to_human({rep});
}

TEST(AuditLexerTest, UnterminatedConstructsStillTerminate) {
  // Hardened-parser obligation: any byte sequence terminates.
  EXPECT_NO_THROW(scan_source("/* never closed"));
  EXPECT_NO_THROW(scan_source("auto s = R\"(never closed"));
  EXPECT_NO_THROW(scan_source("auto s = \"never closed\n"));
}

// --- Path classification ---------------------------------------------------

TEST(AuditContextTest, ClassifiesRepoPaths) {
  const FileContext core = classify_path("src/aqt/core/engine.cpp");
  EXPECT_EQ(core.layer, "core");
  EXPECT_TRUE(core.state_sensitive);
  EXPECT_FALSE(core.merge_path);
  EXPECT_FALSE(core.seed_plumbing);

  const FileContext pool = classify_path("src/aqt/runner/pool.cpp");
  EXPECT_EQ(pool.layer, "runner");
  EXPECT_TRUE(pool.merge_path);

  const FileContext rng = classify_path("src/aqt/util/rng.hpp");
  EXPECT_TRUE(rng.seed_plumbing);
  EXPECT_FALSE(rng.state_sensitive);

  const FileContext tool = classify_path("tools/aqt_sim.cpp");
  EXPECT_EQ(tool.layer, "top");
  EXPECT_FALSE(tool.state_sensitive);
}

// --- Rules, unit-level -----------------------------------------------------

TEST(AuditRulesTest, Aud001SeedPlumbingIsExempt) {
  const std::string body = "unsigned seed() { std::random_device rd; "
                           "return rd(); }\n";
  EXPECT_TRUE(has_rule(audit_source("src/aqt/core/x.cpp", body), "AUD001"));
  EXPECT_TRUE(audit_source("src/aqt/util/rng.cpp", body).ok());
}

TEST(AuditRulesTest, Aud001DeclarationIsNotACall) {
  const AuditReport rep = audit_source(
      "src/aqt/core/x.cpp",
      "struct W { long time() const; };\nnamespace s { long clock(int); }\n");
  EXPECT_TRUE(rep.ok()) << to_human({rep});
}

TEST(AuditRulesTest, Aud003AppliesOnlyToStateSensitiveLayers) {
  const std::string body = "int f() { static int n = 0; return ++n; }\n";
  EXPECT_TRUE(has_rule(audit_source("src/aqt/runner/x.cpp", body), "AUD003"));
  // analysis is not engine/runner/obs: the same code passes there.
  EXPECT_TRUE(audit_source("src/aqt/analysis/x.cpp", body).ok());
}

TEST(AuditRulesTest, Aud005AppliesOnlyToMergePaths) {
  const std::string body =
      "double sum(double acc, double x) { acc += x; return acc; }\n";
  EXPECT_TRUE(has_rule(audit_source("src/aqt/runner/pool.cpp", body),
                       "AUD005"));
  EXPECT_TRUE(audit_source("src/aqt/core/engine.cpp", body).ok());
}

TEST(AuditRulesTest, Aud006ToolsAndTestsAreUnrestricted) {
  const std::string body = "#include \"aqt/runner/pool.hpp\"\n";
  EXPECT_TRUE(has_rule(audit_source("src/aqt/core/x.cpp", body), "AUD006"));
  EXPECT_TRUE(audit_source("tools/aqt_x.cpp", body).ok());
  EXPECT_TRUE(audit_source("tests/runner/x_test.cpp", body).ok());
}

TEST(AuditRulesTest, FindingsAreSortedByLineThenRule) {
  const AuditReport rep = audit_source(
      "src/aqt/core/x.cpp",
      "#include \"aqt/runner/pool.hpp\"\nint f() { return rand(); }\n");
  ASSERT_EQ(rep.findings.size(), 2u);
  EXPECT_EQ(rep.findings[0].rule, "AUD006");
  EXPECT_EQ(rep.findings[1].rule, "AUD001");
  EXPECT_LT(rep.findings[0].line, rep.findings[1].line);
}

// --- Directives ------------------------------------------------------------

TEST(AuditDirectiveTest, AllowSuppressesSameLine) {
  const AuditReport rep = audit_source(
      "src/aqt/core/x.cpp",
      "int f() { return rand(); }  "
      "// aqt-audit: allow(AUD001) -- test fixture\n");
  EXPECT_TRUE(rep.ok()) << to_human({rep});
}

TEST(AuditDirectiveTest, CommentOnlyLineSuppressesNextLine) {
  const AuditReport rep = audit_source(
      "src/aqt/core/x.cpp",
      "// aqt-audit: allow(AUD001) -- test fixture\n"
      "int f() { return rand(); }\n");
  EXPECT_TRUE(rep.ok()) << to_human({rep});
}

TEST(AuditDirectiveTest, WrongRuleOrWrongLineDoesNotSuppress) {
  // allow(AUD004) cannot absolve an AUD001 finding...
  EXPECT_TRUE(has_rule(
      audit_source("src/aqt/core/x.cpp",
                   "int f() { return rand(); }  "
                   "// aqt-audit: allow(AUD004) -- wrong rule\n"),
      "AUD001"));
  // ...and an allow two lines above the finding is out of range.
  EXPECT_TRUE(has_rule(
      audit_source("src/aqt/core/x.cpp",
                   "// aqt-audit: allow(AUD001) -- too far away\n"
                   "\n"
                   "int f() { return rand(); }\n"),
      "AUD001"));
}

TEST(AuditDirectiveTest, Aud007IsNeverSuppressible) {
  const AuditReport rep = audit_source(
      "src/aqt/core/x.cpp",
      "// aqt-audit: allow(AUD007) -- hush\n"
      "// aqt-audit: allow(AUD999) -- malformed on purpose\n");
  EXPECT_TRUE(has_rule(rep, "AUD007"));
}

TEST(AuditDirectiveTest, UnusedAllowIsReportedAsAud007) {
  // A suppression that absolves nothing is itself a finding: stale
  // allows hide the regression they were written for.
  const AuditReport rep = audit_source(
      "src/aqt/core/x.cpp",
      "int f(int x) { return x; }  "
      "// aqt-audit: allow(AUD001) -- nothing here\n");
  EXPECT_TRUE(only_rule(rep, "AUD007")) << to_human({rep});
  EXPECT_NE(rep.findings[0].message.find("matched no finding"),
            std::string::npos);
}

TEST(AuditDirectiveTest, MarkerInProseIsIgnored) {
  const AuditReport rep = audit_source(
      "src/aqt/core/x.cpp",
      "// See docs for the aqt-audit: rule table and workflow.\n"
      "int f(int x) { return x; }\n");
  EXPECT_TRUE(rep.ok()) << to_human({rep});
}

TEST(AuditDirectiveTest, ContextOverridesPathClassification) {
  // tests/ paths are unrestricted by default; context(core) re-imposes
  // the core layering rules — this is how the corpus files work.
  const std::string body =
      "// aqt-audit: context(core)\n#include \"aqt/runner/pool.hpp\"\n";
  EXPECT_TRUE(has_rule(audit_source("tests/fixture/x.cpp", body), "AUD006"));
}

// --- Corpus ----------------------------------------------------------------

std::string rule_lower(const RuleInfo& rule) {
  std::string low = rule.id;
  std::transform(low.begin(), low.end(), low.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return low;
}

/// Audits one corpus case through the project API.  When a cross-TU
/// companion (audNNN_support.cpp) exists it joins the project — AUD011
/// needs a second TU in another layer — and the case file's report is
/// returned.
AuditReport audit_corpus(const std::string& low, const std::string& kind) {
  const std::string main_path = corpus(low + "_" + kind + ".cpp");
  std::vector<AuditUnit> units;
  units.push_back(audit_unit_file(main_path));
  const std::string support = corpus(low + "_support.cpp");
  if (std::ifstream(support).good())
    units.push_back(audit_unit_file(support));
  std::vector<AuditReport> reports = finalize_project(std::move(units));
  for (AuditReport& rep : reports)
    if (rep.file == main_path) return std::move(rep);
  ADD_FAILURE() << "no report for " << main_path;
  return {};
}

TEST(AuditCorpusTest, EveryBadFileIsDetectedByExactlyItsRule) {
  for (const RuleInfo& rule : rule_pack()) {
    const AuditReport rep = audit_corpus(rule_lower(rule), "bad");
    EXPECT_TRUE(only_rule(rep, rule.id))
        << rule.id << " corpus file: " << to_human({rep});
  }
}

TEST(AuditCorpusTest, EveryGoodFileIsClean) {
  for (const RuleInfo& rule : rule_pack()) {
    const AuditReport rep = audit_corpus(rule_lower(rule), "good");
    EXPECT_TRUE(rep.ok()) << rule.id
                          << " near-miss file: " << to_human({rep});
  }
}

TEST(AuditCorpusTest, MetaEveryPackRuleHasCorpusCoverage) {
  // The pack is the single source of truth: a rule added without corpus
  // coverage fails here, not silently.
  std::set<std::string> covered;
  for (const RuleInfo& rule : rule_pack())
    for (const AuditFinding& f : audit_corpus(rule_lower(rule), "bad").findings)
      covered.insert(f.rule);
  for (const RuleInfo& rule : rule_pack())
    EXPECT_EQ(covered.count(rule.id), 1u) << rule.id << " has no corpus hit";
}

TEST(AuditCorpusTest, Aud011CatchesTheIndirectReachAud006Misses) {
  // The bad file #includes nothing from runner, so the include-level
  // check is structurally blind to it; only the call graph sees the hop.
  const AuditReport rep = audit_corpus("aud011", "bad");
  EXPECT_FALSE(has_rule(rep, "AUD006")) << to_human({rep});
  EXPECT_TRUE(has_rule(rep, "AUD011")) << to_human({rep});
  // Both the direct call into runner_detail and the call that reaches it
  // only transitively are flagged.
  EXPECT_EQ(rep.findings.size(), 2u) << to_human({rep});
}

TEST(AuditCorpusTest, Aud004FlagsPointerKeysOverRecycledArenaSlots) {
  // The SoA engine hands out recycled PacketArena slots, which makes
  // pointer-keyed ordered bookkeeping doubly wrong: address order varies
  // run to run, and after a recycle the same address names a different
  // logical packet.  The corpus case models exactly that shape; AUD004
  // must flag the map (and nothing else must fire).
  const AuditReport rep = audit_file(corpus("aud004_arena_bad.cpp"));
  EXPECT_TRUE(only_rule(rep, "AUD004")) << to_human({rep});
  ASSERT_EQ(rep.findings.size(), 1u) << to_human({rep});
}

TEST(AuditRaceProbe, StaticAnalysisFlagsTheSiteTsanCatches) {
  // race_probe.cpp is the one corpus file that is also compiled (the
  // aqt-race-probe target, built with AQT_AUDIT_CORPUS_RACE) so TSan can
  // catch the race at runtime.  The static side of that agreement: AUD008
  // must flag exactly the marked write, and nothing else in the file.
  const std::string path = corpus("race_probe.cpp");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int race_line = 0;
  for (int n = 1; std::getline(in, line); ++n)
    if (line.find("RACE-SITE") != std::string::npos) race_line = n;
  ASSERT_GT(race_line, 0) << "marker comment missing from " << path;

  const AuditReport rep = audit_file(path);
  EXPECT_TRUE(only_rule(rep, "AUD008")) << to_human({rep});
  bool flagged = false;
  for (const AuditFinding& f : rep.findings)
    if (f.rule == "AUD008" && f.line == race_line &&
        f.message.find("g_total") != std::string::npos)
      flagged = true;
  EXPECT_TRUE(flagged) << to_human({rep});
}

TEST(AuditCorpusTest, FinalizeProjectIsOrderInvariant) {
  // The cross-TU phase must not depend on unit arrival order (the tool
  // computes units in parallel under --jobs).
  std::vector<AuditUnit> fwd;
  fwd.push_back(audit_unit_file(corpus("aud011_bad.cpp")));
  fwd.push_back(audit_unit_file(corpus("aud011_support.cpp")));
  fwd.push_back(audit_unit_file(corpus("aud009_bad.cpp")));
  std::vector<AuditUnit> rev;
  rev.push_back(audit_unit_file(corpus("aud009_bad.cpp")));
  rev.push_back(audit_unit_file(corpus("aud011_support.cpp")));
  rev.push_back(audit_unit_file(corpus("aud011_bad.cpp")));
  EXPECT_EQ(to_json(finalize_project(std::move(fwd))),
            to_json(finalize_project(std::move(rev))));
}

TEST(AuditCorpusTest, UnreadableFileIsAHardError) {
  EXPECT_THROW(audit_file(corpus("no_such_file.cpp")), PreconditionError);
}

// --- JSON round-trip (hardened-parser discipline) --------------------------

std::vector<AuditReport> corpus_reports() {
  std::vector<AuditReport> reports;
  for (const RuleInfo& rule : rule_pack()) {
    reports.push_back(audit_corpus(rule_lower(rule), "bad"));
    reports.push_back(audit_corpus(rule_lower(rule), "good"));
  }
  return reports;
}

TEST(AuditJsonTest, RoundTripsThroughTheHardenedParser) {
  const std::vector<AuditReport> reports = corpus_reports();
  const std::vector<AuditReport> back =
      parse_audit_json(to_json(reports), "round-trip");
  ASSERT_EQ(back.size(), reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(back[i].file, reports[i].file);
    ASSERT_EQ(back[i].findings.size(), reports[i].findings.size());
    for (std::size_t j = 0; j < reports[i].findings.size(); ++j) {
      EXPECT_EQ(back[i].findings[j].rule, reports[i].findings[j].rule);
      EXPECT_EQ(back[i].findings[j].line, reports[i].findings[j].line);
      EXPECT_EQ(back[i].findings[j].message, reports[i].findings[j].message);
    }
  }
}

TEST(AuditJsonTest, StaleEntriesRoundTrip) {
  const std::vector<BaselineEntry> stale = {
      BaselineEntry{"AUD004", "src/aqt/core/x.cpp", 0xdeadbeef00000001ull}};
  std::vector<BaselineEntry> back;
  const std::vector<AuditReport> reports =
      parse_audit_json(to_json({}, stale), "stale-trip", &back);
  EXPECT_TRUE(reports.empty());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].rule, "AUD004");
  EXPECT_EQ(back[0].file, "src/aqt/core/x.cpp");
  EXPECT_EQ(back[0].line_hash, 0xdeadbeef00000001ull);
}

TEST(AuditJsonTest, MalformedInputThrowsNeverCrashes) {
  const char* bad[] = {
      "",
      "null",
      "{",
      "{\"tool\":\"aqt-audit\"}",
      "{\"tool\":\"other\",\"ok\":true,\"reports\":[]}",
      "{\"tool\":\"aqt-audit\",\"ok\":true,\"reports\":[]} trailing",
      "{\"tool\":\"aqt-audit\",\"ok\":\"yes\",\"reports\":[]}",
      "{\"tool\":\"aqt-audit\",\"ok\":true,\"reports\":[{\"file\":\"f\"}]}",
      "{\"tool\":\"aqt-audit\",\"ok\":true,\"reports\":[{\"file\":\"f\","
      "\"ok\":true,\"findings\":[{\"rule\":\"AUD001\",\"line\":true,"
      "\"message\":\"m\"}]}]}",
  };
  for (const char* text : bad)
    EXPECT_THROW(parse_audit_json(text, "t"), PreconditionError) << text;
}

TEST(AuditJsonTest, OkFlagMustMatchTheFindings) {
  // A report that claims ok but carries findings (or vice versa) is a
  // forged document, not a formatting quirk.
  EXPECT_THROW(
      parse_audit_json(
          "{\"tool\":\"aqt-audit\",\"ok\":true,\"reports\":[{\"file\":\"f\","
          "\"ok\":true,\"findings\":[{\"rule\":\"AUD001\",\"line\":1,"
          "\"message\":\"m\"}]}]}",
          "t"),
      PreconditionError);
}

// --- Baseline --------------------------------------------------------------

TEST(AuditBaselineTest, ParsesCommentsAndEntries) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "AUD001\tsrc/aqt/core/x.cpp\tdeadbeef00000001\n");
  const std::vector<BaselineEntry> entries = parse_baseline(in, "t");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "AUD001");
  EXPECT_EQ(entries[0].file, "src/aqt/core/x.cpp");
  EXPECT_EQ(entries[0].line_hash, 0xdeadbeef00000001ull);
}

TEST(AuditBaselineTest, MalformedBaselineThrows) {
  const char* bad[] = {
      "AUD001\tonly-two-fields\n",
      "AUD001\tf\tnot-hex\n",
      "NOPE9\tf\tdeadbeef00000001\n",
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW(parse_baseline(in, "t"), PreconditionError) << text;
  }
}

TEST(AuditBaselineTest, RoundTripAndMultisetSemantics) {
  std::vector<AuditReport> reports = {
      audit_file(corpus("aud004_bad.cpp"))};
  ASSERT_EQ(reports[0].findings.size(), 3u);

  std::istringstream in(to_baseline(reports));
  std::vector<BaselineEntry> entries = parse_baseline(in, "t");
  ASSERT_EQ(entries.size(), 3u);

  // A full baseline absolves everything, nothing is stale.
  std::vector<AuditReport> full = reports;
  BaselineApplied applied = apply_baseline(full, entries);
  EXPECT_EQ(applied.suppressed, 3u);
  EXPECT_TRUE(applied.stale.empty());
  EXPECT_TRUE(full[0].ok());

  // Two findings on identical source lines share one content hash; one
  // baseline entry absolves exactly one of them (multiset, not set,
  // semantics).
  std::vector<AuditReport> twins = {
      audit_source("src/aqt/core/x.cpp",
                   "std::map<Node*, int> idx;\nstd::map<Node*, int> idx;\n")};
  ASSERT_EQ(twins[0].findings.size(), 2u);
  ASSERT_EQ(twins[0].findings[0].line_hash, twins[0].findings[1].line_hash);
  std::vector<BaselineEntry> one = {BaselineEntry{
      "AUD004", twins[0].file, twins[0].findings[0].line_hash}};
  applied = apply_baseline(twins, one);
  EXPECT_EQ(applied.suppressed, 1u);
  EXPECT_EQ(twins[0].findings.size(), 1u);

  // An entry for a fixed finding comes back as stale.
  std::vector<AuditReport> clean = {audit_file(corpus("aud004_good.cpp"))};
  applied = apply_baseline(clean, one);
  EXPECT_EQ(applied.suppressed, 0u);
  ASSERT_EQ(applied.stale.size(), 1u);
  EXPECT_EQ(applied.stale[0].rule, "AUD004");
}

TEST(AuditBaselineTest, LineHashIgnoresIndentationDrift) {
  EXPECT_EQ(line_content_hash("  total += x;"),
            line_content_hash("\ttotal += x;   "));
  EXPECT_NE(line_content_hash("total += x;"),
            line_content_hash("total += y;"));
}

}  // namespace
}  // namespace aqt::audit
