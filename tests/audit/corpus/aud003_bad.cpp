// Corpus: AUD003 positives — mutable static state in state-sensitive
// (engine/runner/obs) code.
// aqt-audit: context(engine)
#include <cstdint>
#include <vector>

static std::uint64_t g_step_counter = 0;  // mutable file-scope static

int cached_cost(int edge) {
  static std::vector<int> cache;  // survives across runs under one process
  if (cache.empty()) cache.resize(1024, -1);
  return cache[static_cast<std::size_t>(edge)];
}

int next_ticket() {
  static int ticket = 0;  // mutable function-local static
  return ++ticket;
}

thread_local int tls_scratch = 0;  // per-thread state: jobs-dependent
