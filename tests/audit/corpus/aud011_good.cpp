// Corpus: AUD011 near-misses — the same call shapes, kept inside the
// core layer: an in-TU helper chain, and a declared-but-undefined
// external hook (unresolvable calls are conservatively trusted).
// aqt-audit: context(core)

namespace aqt {
namespace core_detail {

void note_shard(int shard);  // no definition anywhere: not resolvable

void flush_shard(int shard) {
  note_shard(shard);  // unresolvable: no layer claim to check
}

}  // namespace core_detail

void drain(int n) {
  for (int s = 0; s < n; ++s)
    core_detail::flush_shard(s);  // core -> core: allowed
}

}  // namespace aqt
