// Corpus: AUD004 near-misses — ordered containers with stable keys;
// pointers only appear in mapped values, never as the ordering key.
#include <map>
#include <set>
#include <string>
#include <utility>

struct Node {
  int id;
};

std::map<int, Node*> node_by_id;              // pointer value: fine
std::map<std::string, int> degree_by_name;    // string key: stable
std::set<std::pair<int, int>> edge_pairs;     // value keys: stable

int lookup(const std::map<int, Node*>& m, int id) {
  const auto it = m.find(id);
  return it == m.end() ? -1 : it->second->id;
}
