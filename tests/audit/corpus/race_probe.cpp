// TSan/AUD008 agreement probe.
//
// This is the one corpus file that is also *compiled* (into the
// `aqt-race-probe` target, which defines AQT_AUDIT_CORPUS_RACE) so that
// ThreadSanitizer can observe at runtime exactly the site aqt-audit's
// AUD008 flags statically.  The CI tsan leg runs the binary and expects
// it to fail; the static side is asserted by
// AuditRaceProbe.StaticAnalysisFlagsTheSiteTsanCatches in audit_test.cpp.
//
// The preprocessor conditional hides the race from ordinary builds, but
// NOT from aqt-audit: the analyzer tokenizes both branches of an #ifdef,
// so the finding below is produced whether or not the macro is defined.
#include <thread>
#include <vector>

namespace aqt_race_probe {

// Namespace-scope, non-atomic, never guarded: the contested cell.
int g_total = 0;

#ifdef AQT_AUDIT_CORPUS_RACE

// Two writers hammer g_total with no synchronization.  Under TSan this
// reports a data race on the `g_total += 1` line — the same line AUD008
// points at.
void hammer(int iterations) {
  std::vector<std::thread> pool;
  for (int w = 0; w < 2; ++w) {
    pool.emplace_back([iterations] {
      for (int i = 0; i < iterations; ++i) g_total += 1;  // RACE-SITE
    });
  }
  for (std::thread& t : pool) t.join();
}

#endif  // AQT_AUDIT_CORPUS_RACE

}  // namespace aqt_race_probe

#ifdef AQT_AUDIT_CORPUS_RACE
int main() {
  aqt_race_probe::hammer(200000);
  return aqt_race_probe::g_total > 0 ? 0 : 1;
}
#else
int main() { return 0; }
#endif
