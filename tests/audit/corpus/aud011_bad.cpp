// Corpus: AUD011 positives — a core-layer TU that reaches the runner
// layer through calls only.  There is no #include of any runner header
// (AUD006 stays silent); the dependency is smuggled through a local
// declaration whose *definition* lives in a runner-layer TU
// (aud011_support.cpp).
// aqt-audit: context(core)

namespace aqt {
namespace runner_detail {
void submit_shard(int shard);  // innocent-looking forward declaration
}  // namespace runner_detail

namespace core_detail {
void flush_shard(int shard) {
  runner_detail::submit_shard(shard);  // direct call into runner
}
}  // namespace core_detail

void drain(int n) {
  for (int s = 0; s < n; ++s)
    core_detail::flush_shard(s);  // indirect: core -> core -> runner
}

}  // namespace aqt
