// Corpus: AUD012 near-misses — the erase-rebind idiom, mutating a
// *different* container, and mutation after the loop ends.
#include <vector>

void compact(std::vector<int>& vals) {
  for (auto it = vals.begin(); it != vals.end();) {
    if (*it == 0)
      it = vals.erase(it);  // rebinding idiom: iterator stays valid
    else
      ++it;
  }
}

void rebuild(std::vector<int>& src) {
  std::vector<int> keep;
  for (int v : src)
    if (v > 0) keep.push_back(v);  // mutates keep, iterates src
  src = keep;
}

void append_count(std::vector<int>& vals) {
  int zeros = 0;
  for (int v : vals)
    if (v == 0) ++zeros;
  vals.push_back(zeros);  // after the loop: iteration is over
}
