// Corpus: AUD010 positives — by-reference captures escaping into
// callables that outlive the full expression.  The bodies only *read*,
// so this is purely the lifetime hazard (no AUD008 race).
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

long snapshot(const std::vector<long>& samples, long floor) {
  std::function<long()> reader;
  reader = [&] {  // [&] into a stored std::function
    long sum = 0;
    for (long s : samples)
      if (s > floor) sum += s;
    return sum;
  };
  std::thread probe([&floor] {  // &floor into a thread body
    std::printf("%ld\n", floor);
  });
  probe.join();
  return reader();
}
