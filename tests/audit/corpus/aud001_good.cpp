// Corpus: AUD001 near-misses — looks adjacent to the banned set but is
// deterministic, so none of these lines may be flagged.
#include <chrono>
#include <random>

struct Stopwatch {
  long time() const { return 0; }   // member named 'time': not libc time()
  long clock() const { return 0; }  // member named 'clock'
};

namespace sim {
long time(long t) { return t; }  // project-qualified, not std::
}  // namespace sim

long virtual_now(const Stopwatch& w) {
  return w.time() + w.clock() + sim::time(3);
}

int seeded_roll(unsigned seed) {
  std::mt19937 gen(seed);  // explicit seed: replayable
  std::mt19937_64 wide{seed};
  return static_cast<int>(gen() + wide());
}

long monotonic_ticks() {
  // steady_clock is the allowed clock: monotonic, never rendered into
  // run artifacts as an absolute time.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

int timer_count(int timers) { return timers; }  // 'timer...' identifiers
