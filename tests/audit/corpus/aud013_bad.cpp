// Corpus: AUD013 positives — the retired EngineConfig per-sink alias
// fields, in both shapes that linger in stale code: the removed field
// names themselves, and a `.profile =` assignment on something that is
// not the sinks aggregate.

struct LegacyEngineConfig {
  bool record_trace = false;   // retired alias field name
  bool record_events = false;  // retired alias field name
  bool profile = false;
};

void configure(LegacyEngineConfig& cfg, bool want_trace) {
  cfg.record_trace = want_trace;  // retired alias assignment
  cfg.profile = true;             // .profile on a non-sinks object
}
