// Corpus: AUD004 positive — pointer-keyed ordering over *recycled* arena
// slots.  This is the sharpest instance of the rule: an arena hands out
// stable slot addresses and reuses them after free, so a `std::map` keyed
// by slot pointers is doubly nondeterministic — iteration order follows
// allocation addresses (varies run to run), and after a recycle the same
// key silently refers to a different logical packet.  Any per-packet
// bookkeeping must key on a creation ordinal, never the slot address.
#include <cstdint>
#include <map>
#include <vector>

struct Packet {
  std::uint64_t ordinal;
  int hop;
};

class Arena {
 public:
  Packet* allocate() {
    if (!free_.empty()) {
      Packet* slot = free_.back();  // recycled: address == a dead packet's
      free_.pop_back();
      return slot;
    }
    slots_.push_back(new Packet{});
    return slots_.back();
  }
  void release(Packet* slot) { free_.push_back(slot); }

 private:
  std::vector<Packet*> slots_;
  std::vector<Packet*> free_;
};

// Address-ordered bookkeeping over recycled slots: flagged.
std::map<const Packet*, int> retries_by_packet;

int sum_retries(Arena& arena) {
  Packet* p = arena.allocate();
  retries_by_packet[p] = 1;
  arena.release(p);  // the map now holds a key the arena will hand out again
  int total = 0;
  for (const auto& [packet, retries] : retries_by_packet) total += retries;
  return total;
}
