// Corpus: AUD009 positives — two mutexes acquired in both orders by two
// functions in the same TU: the classic ABBA deadlock shape.
#include <mutex>

namespace acct {

std::mutex ledger_mu;
std::mutex audit_mu;

void credit() {
  std::lock_guard<std::mutex> a(ledger_mu);
  std::lock_guard<std::mutex> b(audit_mu);  // ledger before audit
}

void reconcile() {
  std::lock_guard<std::mutex> a(audit_mu);
  std::lock_guard<std::mutex> b(ledger_mu);  // audit before ledger
}

}  // namespace acct
