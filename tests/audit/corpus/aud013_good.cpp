// Corpus: AUD013 near-misses — the correct EngineSinks wiring and other
// legitimate uses of a `profile` identifier: assignment through the
// sinks aggregate, reads, comparisons, and unrelated member names.

struct Profiler {};

struct EngineSinks {
  Profiler* profile = nullptr;
};

struct EngineConfig {
  EngineSinks sinks;
};

bool wire(EngineConfig& config, Profiler& profiler) {
  config.sinks.profile = &profiler;            // the blessed spelling
  const Profiler* profile = config.sinks.profile;  // read, not assignment
  if (config.sinks.profile == nullptr) return false;  // comparison
  return profile != nullptr;
}

struct TraceRecorder {
  bool recording = false;  // not one of the retired names
};

void arm(TraceRecorder& recorder) { recorder.recording = true; }
