// Corpus: AUD008 positives — shared mutable state written inside a
// worker lambda with an empty lockset.  The workers are real threads;
// nothing synchronizes the member writes.
#include <cstddef>
#include <thread>
#include <vector>

class Collector {
 public:
  void run(std::size_t n) {
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < n; ++w) {
      workers.emplace_back([this] {
        total_ += 1;          // unguarded member write
        hits_.push_back(1);   // unguarded container mutation
      });
    }
    for (std::thread& t : workers) t.join();
  }

 private:
  long total_ = 0;
  std::vector<int> hits_;
};
