// Corpus: AUD009 near-misses — every nesting follows one global order
// (ledger before audit), and sequential acquisition in separate blocks
// establishes no order at all.
#include <mutex>

namespace acct {

std::mutex ledger_mu;
std::mutex audit_mu;

void credit() {
  std::lock_guard<std::mutex> a(ledger_mu);
  std::lock_guard<std::mutex> b(audit_mu);
}

void reconcile() {
  std::lock_guard<std::mutex> a(ledger_mu);
  std::lock_guard<std::mutex> b(audit_mu);
}

void tally() {
  {
    std::lock_guard<std::mutex> a(audit_mu);  // released before the next
  }
  {
    std::lock_guard<std::mutex> b(ledger_mu);  // never nested: no order
  }
}

}  // namespace acct
