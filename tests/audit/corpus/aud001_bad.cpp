// Corpus: AUD001 positives — every nondeterminism API the rule bans.
// Never compiled; scanned by audit_test.cpp and the meta-test.
#include <cstdlib>
#include <ctime>
#include <random>

int roll_dice() {
  return rand() % 6;  // libc PRNG, unseeded and process-global
}

unsigned entropy() {
  std::random_device rd;  // hardware/OS entropy: unreplayable by design
  return rd();
}

long stamp() {
  return time(nullptr);  // wall clock leaks into run output
}

double wall_seconds() {
  auto t = std::chrono::system_clock::now();  // wall clock again
  return static_cast<double>(t.time_since_epoch().count());
}

int default_seeded() {
  std::mt19937 gen;  // argless: seed is implementation-defined
  return static_cast<int>(gen());
}
