// Corpus: AUD002 positives — iterating unordered containers.
#include <unordered_map>
#include <unordered_set>
#include <vector>

int total_queue(const std::unordered_map<int, int>& by_edge) {
  std::unordered_map<int, int> queue_len = by_edge;
  int total = 0;
  for (const auto& [edge, len] : queue_len)  // unspecified order
    total += len * static_cast<int>(queue_len.size());
  return total;
}

std::vector<int> snapshot(const std::unordered_set<int>& live_set) {
  std::unordered_set<int> live = live_set;
  std::vector<int> out;
  for (auto it = live.begin(); it != live.end(); ++it)  // iterator walk
    out.push_back(*it);
  return out;
}
