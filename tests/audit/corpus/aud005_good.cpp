// Corpus: AUD005 near-misses — merge-path code that stays exact:
// integer accumulation, max-merges, and plain (non-accumulating) stores.
// aqt-audit: context(merge)
#include <algorithm>
#include <cstdint>
#include <vector>

struct WorkerResult {
  std::uint64_t events;
  double peak;
};

std::uint64_t merged_events(const std::vector<WorkerResult>& results) {
  std::uint64_t total = 0;
  for (const WorkerResult& r : results) total += r.events;  // exact
  return total;
}

double merged_peak(const std::vector<WorkerResult>& results) {
  double peak = 0.0;
  for (const WorkerResult& r : results)
    peak = std::max(peak, r.peak);  // max commutes exactly, even on floats
  return peak;
}

void store(double* slot, double value) { *slot = value; }  // plain store
