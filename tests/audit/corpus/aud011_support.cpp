// Corpus: AUD011 support TU (not a corpus case itself) — the
// runner-layer definition that aud011_bad.cpp reaches by call.  Audited
// together with the bad/good files through the project API.
// aqt-audit: context(runner)

namespace aqt {
namespace runner_detail {

void submit_shard(int shard) { (void)shard; }

}  // namespace runner_detail
}  // namespace aqt
