// Corpus: AUD005 positives — float accumulation on a cross-worker merge
// path, where addition order follows worker scheduling.
// aqt-audit: context(merge)
#include <vector>

struct WorkerResult {
  double latency_sum;
};

double merged_latency(const std::vector<WorkerResult>& results) {
  double total = 0.0;
  for (const WorkerResult& r : results) total += r.latency_sum;  // +=
  return total;
}

double running_mean(double mean, double sample) {
  mean = mean + sample;  // rebind form of the same accumulation
  return mean / 2.0;
}
