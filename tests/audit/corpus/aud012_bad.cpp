// Corpus: AUD012 positives — containers mutated while an iteration over
// the same container is live.
#include <string>
#include <vector>

int retire(std::vector<int>& jobs) {
  int retired = 0;
  for (int j : jobs) {
    if (j < 0) {
      jobs.erase(jobs.begin());  // erase mid range-for
      ++retired;
    }
  }
  return retired;
}

void reseed(std::vector<int>& queue) {
  for (int q : queue)
    if (q % 2 == 0) queue.push_back(q / 2);  // growth mid-walk
}

struct Registry {
  std::vector<std::string> names;
  void dedupe() {
    for (const std::string& n : names)
      if (n.empty()) names.erase(names.begin());  // member container
  }
};

void compact(std::vector<int>& vals) {
  for (auto it = vals.begin(); it != vals.end(); ++it)
    if (*it == 0) vals.erase(it);  // not the rebinding idiom
}
