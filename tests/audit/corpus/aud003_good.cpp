// Corpus: AUD003 near-misses — statics that are immutable or are
// function declarations, in state-sensitive code.
// aqt-audit: context(engine)
#include <array>

static const int kMaxRetries = 3;          // const: fine
static constexpr double kLoadFactor = 0.75;  // constexpr: fine
static constexpr std::array<int, 3> kPhases = {1, 2, 3};

static int clamp_cost(int c);  // static function declaration: fine

static int clamp_cost(int c) {
  static constexpr int kCeiling = 100;  // local, still constexpr
  return c > kCeiling ? kCeiling : c;
}

int no_statics_here(int x) { return clamp_cost(x) + kMaxRetries; }
