// Corpus: AUD007 positives — malformed audit directives.  Each comment
// below contains the directive marker with a broken clause.
#include <vector>

// aqt-audit: allow(AUD999) -- such a rule does not exist
int unknown_rule() { return 0; }

// aqt-audit: allow(AUD001)
int missing_reason() { return 0; }

// aqt-audit: allow(AUD001 -- never closed the paren
int unclosed_paren() { return 0; }

// aqt-audit: context(warp-drive)
int unknown_context() { return 0; }
