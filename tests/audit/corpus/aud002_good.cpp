// Corpus: AUD002 near-misses — unordered containers used for lookup
// only, sorted walks, and an explicitly justified commutative reduction.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

int lookup_only(const std::unordered_map<int, int>& by_edge, int e) {
  std::unordered_map<int, int> queue_len = by_edge;
  const auto it = queue_len.find(e);  // find/count: no iteration order
  return it == queue_len.end() ? static_cast<int>(queue_len.count(e))
                               : it->second;
}

std::vector<int> sorted_keys(const std::unordered_map<int, int>& m) {
  std::unordered_map<int, int> copy = m;
  std::vector<int> keys;
  keys.reserve(copy.size());
  // aqt-audit: allow(AUD002) -- keys are sorted before any output
  for (const auto& [k, v] : copy) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

int ordered_walk(const std::map<int, int>& stable) {
  std::map<int, int> by_id = stable;
  int sum = 0;
  for (const auto& [k, v] : by_id) sum += v;  // std::map: defined order
  return sum;
}
