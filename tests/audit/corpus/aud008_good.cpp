// Corpus: AUD008 near-misses — the same worker shape, but every shared
// write is guarded, atomic, or private to the lambda.
#include <atomic>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

class Collector {
 public:
  void run(std::size_t n) {
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < n; ++w) {
      workers.emplace_back([this] {
        long local = 0;  // lambda-local: no other thread sees it
        local += 1;
        ticks_.fetch_add(1);  // atomic: exempt
        std::lock_guard<std::mutex> lk(mu_);
        total_ += local;          // guarded member write
        hits_.push_back(local);   // guarded container mutation
      });
    }
    for (std::thread& t : workers) t.join();
  }

 private:
  std::mutex mu_;
  long total_ = 0;
  std::vector<long> hits_;
  std::atomic<long> ticks_{0};
};
