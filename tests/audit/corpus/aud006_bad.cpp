// Corpus: AUD006 positives — layering violations from the core layer,
// which may depend only on core and util.
// aqt-audit: context(core)
#include "aqt/core/engine.hpp"
#include "aqt/obs/registry.hpp"    // core must not know the obs layer
#include "aqt/runner/pool.hpp"     // nor the runner
#include "aqt/zzz_new_module/api.hpp"  // unregistered module
#include "tools/aqt_sim.cpp"       // tools are never a library surface

int uses_everything() { return 0; }
