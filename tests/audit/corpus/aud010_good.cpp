// Corpus: AUD010 near-misses — copy captures into deferred callables,
// and a by-reference capture that never escapes (immediate invocation).
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

long snapshot(const std::vector<long>& samples, long floor) {
  std::function<long()> reader;
  reader = [samples, floor] {  // by value: owns its data
    long sum = 0;
    for (long s : samples)
      if (s > floor) sum += s;
    return sum;
  };
  const long all = [&] {  // [&], but invoked in place: no escape
    long sum = 0;
    for (long s : samples) sum += s;
    return sum;
  }();
  std::thread probe([floor] {  // by value into the thread
    std::printf("%ld\n", floor);
  });
  probe.join();
  return reader() + all;
}
