// Corpus: AUD004 positives — ordered containers keyed by raw pointers.
#include <map>
#include <set>

struct Node {
  int id;
};

std::map<Node*, int> degree_by_node;        // address-ordered iteration
std::set<const Node*> visited;              // same hazard, const pointer

int count_visited(const std::set<const Node*>& v) {
  return static_cast<int>(v.size());
}
