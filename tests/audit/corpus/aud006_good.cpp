// Corpus: AUD006 near-misses — includes the core layer is allowed:
// itself, util, and any system header.
// aqt-audit: context(core)
#include <algorithm>
#include <vector>

#include "aqt/core/engine.hpp"
#include "aqt/core/packet.hpp"
#include "aqt/util/check.hpp"

int uses_allowed_layers() { return 0; }
