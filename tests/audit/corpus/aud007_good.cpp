// Corpus: AUD007 near-misses — the directive marker in prose (no
// allow/context clause) is documentation, not a directive; and a valid
// allow clause both parses and suppresses its finding.
//
// See docs/TOOLS.md for the aqt-audit: rule table and baseline workflow.
#include <map>

struct Node {
  int id;
};

// aqt-audit: allow(AUD004) -- scratch index, never iterated or exported
std::map<Node*, int> scratch_index;

int lookup(int id) { return id; }
