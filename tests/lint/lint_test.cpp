// Tests for the scenario parser and the aqt-lint core: accepted scenarios
// produce feasibility certificates, every malformed class is rejected with
// its stable finding code, gadget wiring is validated against Definition
// 3.4, and the JSON rendering is shaped for CI consumption.
#include "aqt/lint/linter.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "aqt/lint/scenario.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

Scenario parse_text(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in, "test");
}

LintReport lint_text(const std::string& text) {
  return lint_scenario(parse_text(text), "test");
}

bool has_code(const LintReport& rep, const std::string& code) {
  for (const LintFinding& f : rep.findings)
    if (f.code == code) return true;
  return false;
}

int line_of(const LintReport& rep, const std::string& code) {
  for (const LintFinding& f : rep.findings)
    if (f.code == code) return f.line;
  return -1;
}

// --- Parser ----------------------------------------------------------------

TEST(ScenarioParserTest, ParsesEveryDirective) {
  const Scenario sc = parse_text(
      "# comment\n"
      "topology ring:6 seed=42\n"
      "protocol LIS\n"
      "window 12 1/3\n"
      "rate 7/10\n"
      "\n"
      "inject t=1 route=r0>r1>r2 tag=7\n"
      "inject t=5 route=r3\n"
      "reroute t=9 packet=0 suffix=r3>r4\n");
  EXPECT_EQ(sc.topology, "ring:6");
  EXPECT_EQ(sc.topology_seed, 42u);
  EXPECT_EQ(sc.protocol, "LIS");
  ASSERT_TRUE(sc.window_w.has_value());
  EXPECT_EQ(*sc.window_w, 12);
  EXPECT_EQ(*sc.window_r, Rat(1, 3));
  EXPECT_EQ(*sc.rate_r, Rat(7, 10));
  ASSERT_EQ(sc.injections.size(), 2u);
  EXPECT_EQ(sc.injections[0].t, 1);
  EXPECT_EQ(sc.injections[0].route,
            (std::vector<std::string>{"r0", "r1", "r2"}));
  EXPECT_EQ(sc.injections[0].tag, 7u);
  EXPECT_EQ(sc.injections[0].line, 7);
  EXPECT_EQ(sc.injections[1].tag, 0u);  // Tag defaults to 0.
  ASSERT_EQ(sc.reroutes.size(), 1u);
  EXPECT_EQ(sc.reroutes[0].packet_ordinal, 0u);
  EXPECT_EQ(sc.reroutes[0].suffix, (std::vector<std::string>{"r3", "r4"}));
}

TEST(ScenarioParserTest, ProtocolDefaultsToFifo) {
  const Scenario sc = parse_text("topology ring:3\ninject t=1 route=r0\n");
  EXPECT_EQ(sc.protocol, "FIFO");
}

TEST(ScenarioParserTest, RoundTripsThroughToText) {
  const std::string text =
      "topology grid:3x3\n"
      "protocol FTG\n"
      "window 8 1/2\n"
      "inject t=2 route=h0_0>h0_1 tag=3\n"
      "reroute t=4 packet=0 suffix=d0_2\n";
  const Scenario a = parse_text(text);
  const Scenario b = parse_text(to_text(a));
  EXPECT_EQ(b.topology, a.topology);
  EXPECT_EQ(b.protocol, a.protocol);
  EXPECT_EQ(b.window_w, a.window_w);
  ASSERT_EQ(b.injections.size(), a.injections.size());
  EXPECT_EQ(b.injections[0].route, a.injections[0].route);
  EXPECT_EQ(b.injections[0].tag, a.injections[0].tag);
  ASSERT_EQ(b.reroutes.size(), a.reroutes.size());
  EXPECT_EQ(b.reroutes[0].suffix, a.reroutes[0].suffix);
}

TEST(ScenarioParserTest, RejectsUnknownDirective) {
  EXPECT_THROW(parse_text("topology ring:3\nfrobnicate x\n"),
               PreconditionError);
}

TEST(ScenarioParserTest, RejectsMissingTopology) {
  EXPECT_THROW(parse_text("protocol FIFO\ninject t=1 route=r0\n"),
               PreconditionError);
}

TEST(ScenarioParserTest, RejectsMalformedInteger) {
  EXPECT_THROW(parse_text("topology ring:3\ninject t=soon route=r0\n"),
               PreconditionError);
}

// --- Linter: acceptance ----------------------------------------------------

TEST(LintTest, AcceptsFeasibleWindowScenario) {
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "protocol FIFO\n"
      "window 6 1/3\n"
      "inject t=1 route=r0>r1\n"
      "inject t=8 route=r0\n");
  EXPECT_TRUE(rep.ok()) << to_human({rep});
  EXPECT_EQ(rep.injections, 2u);
  EXPECT_NE(rep.certificates.find("window"), std::string::npos);
  EXPECT_NE(rep.certificates.find("feasible"), std::string::npos);
}

TEST(LintTest, AcceptsLegalRerouteUnderHistoricProtocol) {
  const LintReport rep = lint_text(
      "topology grid:3x3\n"
      "protocol FIFO\n"
      "inject t=1 route=h0_0>h0_1\n"
      "reroute t=2 packet=0 suffix=d0_2\n");
  EXPECT_TRUE(rep.ok()) << to_human({rep});
  EXPECT_EQ(rep.reroutes, 1u);
}

// --- Linter: each malformed class ------------------------------------------

TEST(LintTest, RejectsInvalidTopologySpec) {
  const LintReport rep = lint_text("topology moebius:7\n");
  EXPECT_TRUE(has_code(rep, "topology-invalid")) << to_human({rep});
}

TEST(LintTest, RejectsUnknownProtocol) {
  const LintReport rep =
      lint_text("topology ring:3\nprotocol TELEPATHY\n");
  EXPECT_TRUE(has_code(rep, "protocol-unknown")) << to_human({rep});
}

TEST(LintTest, RejectsDanglingEdgeNameWithLineNumber) {
  const LintReport rep = lint_text(
      "topology ring:3\n"
      "inject t=1 route=r0>r9\n");
  EXPECT_TRUE(has_code(rep, "dangling-edge")) << to_human({rep});
  EXPECT_EQ(line_of(rep, "dangling-edge"), 2);
}

TEST(LintTest, RejectsDiscontiguousRoute) {
  // r0 and r2 do not share a node on ring:6.
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "inject t=1 route=r0>r2\n");
  EXPECT_TRUE(has_code(rep, "route-not-path")) << to_human({rep});
}

TEST(LintTest, RejectsNonSimpleRoute) {
  // The full cycle revisits its start node: a path, but not simple (§2).
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "inject t=1 route=r0>r1>r2>r3>r4>r5\n");
  EXPECT_TRUE(has_code(rep, "route-not-simple")) << to_human({rep});
}

TEST(LintTest, RejectsInjectionBeforeStepOne) {
  const LintReport rep = lint_text(
      "topology ring:3\n"
      "inject t=0 route=r0\n");
  EXPECT_TRUE(has_code(rep, "inject-time-invalid")) << to_human({rep});
}

TEST(LintTest, RejectsInvalidWindowDeclaration) {
  const LintReport rep = lint_text(
      "topology ring:3\n"
      "window 0 1/2\n"
      "inject t=1 route=r0\n");
  EXPECT_TRUE(has_code(rep, "window-invalid")) << to_human({rep});
}

TEST(LintTest, RejectsWindowInfeasibleScript) {
  // Budget floor(2 * 1/2) = 1 per edge per 2-step window; two injections
  // cross r0 at steps 1 and 2.
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "window 2 1/2\n"
      "inject t=1 route=r0\n"
      "inject t=2 route=r0>r1\n");
  EXPECT_TRUE(has_code(rep, "window-infeasible")) << to_human({rep});
}

TEST(LintTest, RejectsRateInfeasibleScript) {
  // Interval [1, 1] allows ceil(1/2 * 1) = 1 crossing of r0, not two.
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "rate 1/2\n"
      "inject t=1 route=r0\n"
      "inject t=1 route=r0>r1\n");
  EXPECT_TRUE(has_code(rep, "rate-infeasible")) << to_human({rep});
}

TEST(LintTest, RejectsRerouteUnderNonHistoricProtocol) {
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "protocol NTG\n"
      "inject t=1 route=r0>r1\n"
      "reroute t=2 packet=0 suffix=r2\n");
  EXPECT_TRUE(has_code(rep, "reroute-nonhistoric")) << to_human({rep});
}

TEST(LintTest, RejectsRerouteOfUnknownPacket) {
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "inject t=1 route=r0>r1\n"
      "reroute t=2 packet=5 suffix=r2\n");
  EXPECT_TRUE(has_code(rep, "reroute-unknown-packet")) << to_human({rep});
}

TEST(LintTest, RejectsRerouteBeforeTargetInjection) {
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "inject t=4 route=r0>r1\n"
      "reroute t=4 packet=0 suffix=r2\n");
  EXPECT_TRUE(has_code(rep, "reroute-too-early")) << to_human({rep});
}

TEST(LintTest, RejectsDiscontiguousRerouteSuffix) {
  // r4's tail is node 4, which the target's route never reaches.
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "inject t=1 route=r0>r1\n"
      "reroute t=2 packet=0 suffix=r4\n");
  EXPECT_TRUE(has_code(rep, "reroute-discontiguous")) << to_human({rep});
}

TEST(LintTest, CollectsAllFindingsInsteadOfFailingFast) {
  const LintReport rep = lint_text(
      "topology ring:6\n"
      "protocol TELEPATHY\n"
      "inject t=0 route=r0>r9\n");
  EXPECT_TRUE(has_code(rep, "protocol-unknown")) << to_human({rep});
  EXPECT_TRUE(has_code(rep, "inject-time-invalid")) << to_human({rep});
  EXPECT_TRUE(has_code(rep, "dangling-edge")) << to_human({rep});
}

TEST(LintTest, LintFileReportsUnreadablePathAsParseError) {
  const LintReport rep = lint_file("/nonexistent/scenario.aqts");
  EXPECT_TRUE(has_code(rep, "parse-error")) << to_human({rep});
}

// --- Gadget wiring (Definition 3.4) ----------------------------------------

TEST(GadgetWiringLintTest, AcceptsBuiltChains) {
  EXPECT_TRUE(lint_gadget_wiring(build_chain(2, 3)).empty());
  EXPECT_TRUE(lint_gadget_wiring(build_closed_chain(3, 2)).empty());
}

TEST(GadgetWiringLintTest, RejectsTruncatedEPath) {
  ChainedGadgets net = build_closed_chain(3, 2);
  net.gadgets[0].e_path.pop_back();
  const auto findings = lint_gadget_wiring(net);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings.front().code, "gadget-wiring");
}

TEST(GadgetWiringLintTest, RejectsBrokenEgressIdentification) {
  ChainedGadgets net = build_chain(2, 3);
  net.gadgets[1].egress = net.gadgets[1].ingress;
  EXPECT_FALSE(lint_gadget_wiring(net).empty());
}

// --- Rendering -------------------------------------------------------------

TEST(LintRenderTest, JsonCarriesVerdictCodesAndCounts) {
  const LintReport bad = lint_text(
      "topology ring:3\n"
      "inject t=1 route=r0>r9\n");
  const std::string json = to_json({bad});
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\":\"dangling-edge\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"file\":\"test\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"injections\":1"), std::string::npos) << json;

  const LintReport good = lint_text(
      "topology ring:3\n"
      "inject t=1 route=r0\n");
  const std::string ok_json = to_json({good});
  EXPECT_NE(ok_json.find("\"ok\":true"), std::string::npos) << ok_json;
}

TEST(LintRenderTest, HumanOutputNamesTheFindingCode) {
  const LintReport bad = lint_text(
      "topology ring:3\n"
      "inject t=1 route=r0>r9\n");
  const std::string text = to_human({bad});
  EXPECT_NE(text.find("dangling-edge"), std::string::npos) << text;
}

}  // namespace
}  // namespace aqt
