#include "aqt/topology/spec.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

struct SpecCase {
  const char* spec;
  std::size_t nodes;
  std::size_t edges;
};

class SpecSweep : public ::testing::TestWithParam<SpecCase> {};

TEST_P(SpecSweep, BuildsExpectedShape) {
  const SpecCase c = GetParam();
  const TopologySpec out = parse_topology_spec(c.spec, /*seed=*/1);
  EXPECT_EQ(out.graph.node_count(), c.nodes) << c.spec;
  EXPECT_EQ(out.graph.edge_count(), c.edges) << c.spec;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, SpecSweep,
    ::testing::Values(SpecCase{"line:5", 6, 5}, SpecCase{"ring:7", 7, 7},
                      SpecCase{"bidiring:5", 5, 10},
                      SpecCase{"grid:3x4", 12, 17},
                      SpecCase{"torus:3x3", 9, 18},
                      SpecCase{"tree:3", 15, 14},
                      SpecCase{"hypercube:3", 8, 24},
                      SpecCase{"parallel:4", 2, 4},
                      // lps:2x3: M+1 boundary + 2nM path edges + e0.
                      SpecCase{"lps:2x3", 14, 17}),
    [](const auto& info) {
      std::string name = info.param.spec;
      for (char& ch : name)
        if (ch == ':' || ch == 'x') ch = '_';
      return name;
    });

TEST(Spec, LpsExposesGadgetHandles) {
  const TopologySpec out = parse_topology_spec("lps:3x2");
  EXPECT_TRUE(out.is_lps);
  EXPECT_EQ(out.lps_net.gadget_count, 2);
  EXPECT_EQ(out.lps_net.n, 3);
  EXPECT_NE(out.lps_net.back_edge, kNoEdge);
}

TEST(Spec, NonLpsLeavesHandleEmpty) {
  const TopologySpec out = parse_topology_spec("ring:4");
  EXPECT_FALSE(out.is_lps);
}

TEST(Spec, DagIsSeedDeterministic) {
  EXPECT_EQ(parse_topology_spec("dag:20", 5).graph.edge_count(),
            parse_topology_spec("dag:20", 5).graph.edge_count());
}

TEST(Spec, MalformedSpecsThrow) {
  for (const char* bad :
       {"", "grid", "grid:", "grid:3", "grid:x3", "grid:3x", "nope:4",
        "ring:abc", "ring:4junk", "lps:9"}) {
    EXPECT_THROW((void)parse_topology_spec(bad), PreconditionError) << bad;
  }
}

TEST(Spec, GrammarStringListsAllKinds) {
  const std::string& g = topology_spec_grammar();
  for (const char* kind : {"line", "ring", "bidiring", "grid", "torus",
                           "tree", "hypercube", "dag", "parallel", "lps"})
    EXPECT_NE(g.find(kind), std::string::npos) << kind;
}

}  // namespace
}  // namespace aqt
