#include "aqt/topology/gadget.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

TEST(Gadget, SingleGadgetStructure) {
  const ChainedGadgets net = build_chain(/*n=*/3, /*gadget_count=*/1);
  EXPECT_EQ(net.gadgets.size(), 1u);
  // Edges: a1, e1..e3, f1..f3, a2 = 8.
  EXPECT_EQ(net.graph.edge_count(), 8u);
  const GadgetEdges& ge = net.gadgets[0];
  EXPECT_EQ(net.graph.edge(ge.ingress).name, "a1");
  EXPECT_EQ(net.graph.edge(ge.egress).name, "a2");
  EXPECT_EQ(ge.e_path.size(), 3u);
  EXPECT_EQ(ge.f_path.size(), 3u);
}

TEST(Gadget, IngressFromDegreeOneSourceEgressToDegreeOneSink) {
  const ChainedGadgets net = build_chain(2, 1);
  const Graph& g = net.graph;
  const NodeId s = *g.find_node("s");
  const NodeId z = *g.find_node("z");
  EXPECT_EQ(g.out_edges(s).size(), 1u);
  EXPECT_EQ(g.in_edges(s).size(), 0u);
  EXPECT_EQ(g.in_edges(z).size(), 1u);
  EXPECT_EQ(g.out_edges(z).size(), 0u);
}

TEST(Gadget, DaisyChainSharesBoundaryEdge) {
  // Definition 3.4: egress of F(k) is identified with ingress of F(k+1).
  const ChainedGadgets net = build_chain(2, 3);
  for (std::size_t k = 0; k + 1 < net.gadgets.size(); ++k)
    EXPECT_EQ(net.gadgets[k].egress, net.gadgets[k + 1].ingress) << k;
}

TEST(Gadget, ChainEdgeCount) {
  // M gadgets: M+1 boundary edges + 2nM path edges.
  const std::int64_t n = 4;
  const std::int64_t M = 5;
  const ChainedGadgets net = build_chain(n, M);
  EXPECT_EQ(net.graph.edge_count(),
            static_cast<std::size_t>(M + 1 + 2 * n * M));
  EXPECT_EQ(net.back_edge, kNoEdge);
}

TEST(Gadget, ClosedChainAddsBackEdge) {
  const ChainedGadgets net = build_closed_chain(2, 2);
  ASSERT_NE(net.back_edge, kNoEdge);
  const Graph& g = net.graph;
  EXPECT_EQ(g.edge(net.back_edge).name, "e0");
  // e0 runs from the egress head (z) back to the ingress tail (s).
  EXPECT_EQ(g.tail(net.back_edge), *g.find_node("z"));
  EXPECT_EQ(g.head(net.back_edge), *g.find_node("s"));
}

TEST(Gadget, StitchPathIsSimple) {
  // The 3-edge path of Lemma 3.16: egress(M), e0, ingress(1).
  const ChainedGadgets net = build_closed_chain(2, 2);
  const Route path = {net.gadgets.back().egress, net.back_edge,
                      net.gadgets.front().ingress};
  EXPECT_TRUE(net.graph.is_simple_path(path));
}

TEST(Gadget, ERouteIsSimpleAndCorrect) {
  const ChainedGadgets net = build_chain(3, 2);
  for (std::size_t k = 0; k < 2; ++k) {
    for (std::size_t i = 1; i <= 3; ++i) {
      const Route r = net.e_route(k, i);
      EXPECT_EQ(r.size(), 3 - i + 2) << "k=" << k << " i=" << i;
      EXPECT_TRUE(net.graph.is_simple_path(r));
      EXPECT_EQ(r.back(), net.gadgets[k].egress);
    }
  }
}

TEST(Gadget, FRouteIsSimpleAndCorrect) {
  const ChainedGadgets net = build_chain(3, 2);
  for (std::size_t k = 0; k < 2; ++k) {
    const Route r = net.f_route(k);
    EXPECT_EQ(r.size(), 5u);  // a + 3 f-edges + a'.
    EXPECT_TRUE(net.graph.is_simple_path(r));
    EXPECT_EQ(r.front(), net.gadgets[k].ingress);
    EXPECT_EQ(r.back(), net.gadgets[k].egress);
  }
}

TEST(Gadget, LongPacketRouteAcrossTwoGadgetsIsSimple) {
  // The Lemma 3.6 part-(3) route a, f.., a', f'.., a''.
  const ChainedGadgets net = build_chain(3, 2);
  Route r = net.f_route(0);
  const Route next = net.f_route(1);
  r.insert(r.end(), next.begin() + 1, next.end());
  EXPECT_TRUE(net.graph.is_simple_path(r));
  EXPECT_EQ(r.size(), 9u);  // 2n + 3 with n = 3.
}

TEST(Gadget, ParallelPathsAreDisjoint) {
  const ChainedGadgets net = build_chain(3, 1);
  const GadgetEdges& ge = net.gadgets[0];
  for (EdgeId e : ge.e_path)
    for (EdgeId f : ge.f_path) EXPECT_NE(e, f);
}

TEST(Gadget, EdgeRolesNamedPerConvention) {
  const ChainedGadgets net = build_chain(2, 2);
  const Graph& g = net.graph;
  EXPECT_TRUE(g.find_edge("g1.e1").has_value());
  EXPECT_TRUE(g.find_edge("g1.f2").has_value());
  EXPECT_TRUE(g.find_edge("g2.e2").has_value());
  EXPECT_TRUE(g.find_edge("a2").has_value());
  EXPECT_TRUE(g.find_edge("a3").has_value());
}

TEST(Gadget, NEqualsOneDegenerateGadget) {
  // n = 1: e and f are parallel edges u -> v.
  const ChainedGadgets net = build_chain(1, 1);
  EXPECT_EQ(net.graph.edge_count(), 4u);
  EXPECT_TRUE(net.graph.is_simple_path(net.f_route(0)));
  EXPECT_TRUE(net.graph.is_simple_path(net.e_route(0, 1)));
}

TEST(Gadget, InvalidParametersThrow) {
  EXPECT_THROW(build_chain(0, 1), PreconditionError);
  EXPECT_THROW(build_chain(1, 0), PreconditionError);
  const ChainedGadgets net = build_chain(2, 1);
  EXPECT_THROW((void)net.e_route(5, 1), PreconditionError);
  EXPECT_THROW((void)net.e_route(0, 0), PreconditionError);
  EXPECT_THROW((void)net.e_route(0, 3), PreconditionError);
}

TEST(Gadget, LpsLongestRouteFormula) {
  EXPECT_EQ(lps_longest_route(build_chain(3, 1)), 5);        // n + 2.
  EXPECT_EQ(lps_longest_route(build_chain(3, 4)), 17);       // (n+1)M + 1.
  EXPECT_EQ(lps_longest_route(build_closed_chain(2, 5)), 16);
}

TEST(Gadget, DotExportRenders) {
  const ChainedGadgets net = build_closed_chain(2, 2);
  const std::string dot = net.graph.to_dot("F2n");
  EXPECT_NE(dot.find("e0"), std::string::npos);
  EXPECT_NE(dot.find("g2.f1"), std::string::npos);
}

}  // namespace
}  // namespace aqt
