#include "aqt/topology/generators.hpp"

#include <gtest/gtest.h>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

TEST(Generators, Line) {
  const Graph g = make_line(5);
  EXPECT_EQ(g.node_count(), 6u);
  EXPECT_EQ(g.edge_count(), 5u);
  // The whole line is one simple path.
  Route r;
  for (EdgeId e = 0; e < 5; ++e) r.push_back(e);
  EXPECT_TRUE(g.is_simple_path(r));
}

TEST(Generators, Ring) {
  const Graph g = make_ring(4);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(g.out_edges(v).size(), 1u);
    EXPECT_EQ(g.in_edges(v).size(), 1u);
  }
  // Going all the way around is contiguous but not simple.
  Route full = {0, 1, 2, 3};
  EXPECT_TRUE(g.is_path(full));
  EXPECT_FALSE(g.is_simple_path(full));
  // A partial arc is simple.
  EXPECT_TRUE(g.is_simple_path({0, 1, 2}));
}

TEST(Generators, BidirectionalRing) {
  const Graph g = make_bidirectional_ring(5);
  EXPECT_EQ(g.edge_count(), 10u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.out_edges(v).size(), 2u);
    EXPECT_EQ(g.in_edges(v).size(), 2u);
  }
}

TEST(Generators, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  // Horizontal: 3 rows x 3; vertical: 2 x 4.
  EXPECT_EQ(g.edge_count(), 9u + 8u);
  // Top-left to bottom-right staircase is a simple path.
  const Route staircase = {g.edge_by_name("h0_0"), g.edge_by_name("d0_1"),
                           g.edge_by_name("h1_1"), g.edge_by_name("d1_2"),
                           g.edge_by_name("h2_2")};
  EXPECT_TRUE(g.is_simple_path(staircase));
}

TEST(Generators, InTree) {
  const Graph g = make_in_tree(3);
  // Nodes: 1 + 2 + 4 + 8 = 15; edges: 14, all pointing rootward.
  EXPECT_EQ(g.node_count(), 15u);
  EXPECT_EQ(g.edge_count(), 14u);
  // Root (t0) has in-degree 2, out-degree 0.
  const NodeId root = *g.find_node("t0");
  EXPECT_EQ(g.in_edges(root).size(), 2u);
  EXPECT_EQ(g.out_edges(root).size(), 0u);
  EXPECT_EQ(g.max_in_degree(), 2u);
}

TEST(Generators, RandomDagHasSpineAndIsAcyclicByConstruction) {
  Rng rng(17);
  const Graph g = make_random_dag(20, 0.1, rng);
  EXPECT_EQ(g.node_count(), 20u);
  EXPECT_GE(g.edge_count(), 19u);  // At least the spine.
  // Every edge goes from a lower to a higher index: acyclic.
  for (EdgeId e = 0; e < g.edge_count(); ++e)
    EXPECT_LT(g.tail(e), g.head(e));
}

TEST(Generators, RandomDagDeterministicForSeed) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(make_random_dag(15, 0.3, a).edge_count(),
            make_random_dag(15, 0.3, b).edge_count());
}

TEST(Generators, ParallelEdges) {
  const Graph g = make_parallel_edges(3);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.max_in_degree(), 3u);
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(3);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 24u);  // 8 nodes x 3 bits.
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(g.out_edges(v).size(), 3u);
    EXPECT_EQ(g.in_edges(v).size(), 3u);
  }
  // A greedy bit-fixing route 000 -> 111 is a simple path.
  const Route r = {g.edge_by_name("h0_0"), g.edge_by_name("h1_1"),
                   g.edge_by_name("h3_2")};
  EXPECT_TRUE(g.is_simple_path(r));
  EXPECT_EQ(g.head(r.back()), 7u);
}

TEST(Generators, Torus) {
  const Graph g = make_torus(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 24u);  // Every node: 1 right + 1 down.
  for (NodeId v = 0; v < 12; ++v) {
    EXPECT_EQ(g.out_edges(v).size(), 2u);
    EXPECT_EQ(g.in_edges(v).size(), 2u);
  }
  // Wraparound: the last column's horizontal edge returns to column 0.
  const EdgeId wrap = g.edge_by_name("h0_3");
  EXPECT_EQ(g.head(wrap), *g.find_node("v0_0"));
}

TEST(Generators, InvalidParametersThrow) {
  EXPECT_THROW(make_line(0), PreconditionError);
  EXPECT_THROW(make_ring(1), PreconditionError);
  EXPECT_THROW(make_grid(0, 3), PreconditionError);
  EXPECT_THROW(make_in_tree(0), PreconditionError);
  EXPECT_THROW(make_hypercube(0), PreconditionError);
  EXPECT_THROW(make_torus(1, 5), PreconditionError);
  Rng rng(1);
  EXPECT_THROW(make_random_dag(1, 0.5, rng), PreconditionError);
  EXPECT_THROW(make_random_dag(5, 1.5, rng), PreconditionError);
  EXPECT_THROW(make_parallel_edges(0), PreconditionError);
}

}  // namespace
}  // namespace aqt
