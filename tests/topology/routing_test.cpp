#include "aqt/topology/routing.hpp"

#include <gtest/gtest.h>

#include "aqt/topology/gadget.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

TEST(Routing, ShortestOnLine) {
  const Graph g = make_line(5);
  const auto route = shortest_route(g, "v1", "v4");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->size(), 3u);
  EXPECT_TRUE(g.is_simple_path(*route));
  EXPECT_EQ(g.tail(route->front()), *g.find_node("v1"));
  EXPECT_EQ(g.head(route->back()), *g.find_node("v4"));
}

TEST(Routing, ShortestOnGridIsManhattan) {
  const Graph g = make_grid(4, 4);
  const auto route = shortest_route(g, "v0_0", "v3_3");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->size(), 6u);  // 3 right + 3 down.
}

TEST(Routing, UnreachableReturnsNullopt) {
  const Graph g = make_line(3);  // Directed: no way back.
  EXPECT_FALSE(shortest_route(g, "v3", "v0").has_value());
}

TEST(Routing, SameNodeReturnsNullopt) {
  const Graph g = make_line(3);
  EXPECT_FALSE(shortest_route(g, "v1", "v1").has_value());
}

TEST(Routing, UnknownNodeThrows) {
  const Graph g = make_line(3);
  EXPECT_THROW((void)shortest_route(g, "ghost", "v0"), PreconditionError);
}

TEST(Routing, DeterministicTieBreak) {
  // Two equal-length paths in a diamond: the lower edge ids win.
  Graph g;
  g.add_edge("s", "a", "sa");
  g.add_edge("s", "b", "sb");
  g.add_edge("a", "t", "at");
  g.add_edge("b", "t", "bt");
  const auto route = shortest_route(g, "s", "t");
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ((*route)[0], g.edge_by_name("sa"));
}

TEST(Routing, HopDiameter) {
  EXPECT_EQ(hop_diameter(make_line(5)), 5);
  EXPECT_EQ(hop_diameter(make_ring(6)), 5);  // Farthest node 5 hops away.
  EXPECT_EQ(hop_diameter(make_grid(3, 3)), 4);
  // Hypercube diameter = dimension.
  EXPECT_EQ(hop_diameter(make_hypercube(4)), 4);
}

TEST(Routing, HopDiameterOfGadgetChain) {
  // F_n^M: ingress + M * (n-path + egress) = 1 + M(n+1) hops end-to-end.
  const ChainedGadgets net = build_chain(3, 2);
  EXPECT_EQ(hop_diameter(net.graph), 1 + 2 * 4);
}

TEST(Routing, AllSimpleRoutesOnDiamond) {
  Graph g;
  g.add_edge("s", "a", "sa");
  g.add_edge("s", "b", "sb");
  g.add_edge("a", "t", "at");
  g.add_edge("b", "t", "bt");
  const auto routes = all_simple_routes(g, *g.find_node("s"),
                                        *g.find_node("t"), 4);
  EXPECT_EQ(routes.size(), 2u);
  for (const Route& r : routes) EXPECT_TRUE(g.is_simple_path(r));
}

TEST(Routing, AllSimpleRoutesRespectsMaxLen) {
  const Graph g = make_grid(3, 3);
  const auto routes = all_simple_routes(g, *g.find_node("v0_0"),
                                        *g.find_node("v2_2"), 3);
  EXPECT_TRUE(routes.empty());  // Needs 4 hops minimum.
  const auto ok = all_simple_routes(g, *g.find_node("v0_0"),
                                    *g.find_node("v2_2"), 4);
  EXPECT_EQ(ok.size(), 6u);  // C(4,2) monotone staircases.
}

TEST(Routing, AllSimpleRoutesHonorsLimit) {
  const Graph g = make_grid(4, 4);
  const auto routes = all_simple_routes(g, *g.find_node("v0_0"),
                                        *g.find_node("v3_3"), 10, 5);
  EXPECT_EQ(routes.size(), 5u);
}

TEST(Routing, GadgetParallelPathsEnumerate) {
  // F_n has exactly two simple u -> v paths (the e- and f-paths).
  const ChainedGadgets net = build_chain(4, 1);
  const Graph& g = net.graph;
  const auto routes = all_simple_routes(g, *g.find_node("u1"),
                                        *g.find_node("v1"), 10);
  EXPECT_EQ(routes.size(), 2u);
}

}  // namespace
}  // namespace aqt
