// aqt-verify rule tests: pristine engine traces must verify clean, and
// each targeted line-level tampering must trip the matching stable
// violation code.  The tamperings are the PR's evidence that the verifier
// actually re-derives the rules instead of rubber-stamping the trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "golden.hpp"

namespace aqt {
namespace {

using namespace verify_testing;

TEST(Verify, StableRingTraceIsClean) {
  const VerifyReport report = verify_text(stable_ring_trace());
  EXPECT_TRUE(report.ok()) << codes_of(report);
  EXPECT_EQ(report.protocol, "FIFO");
  EXPECT_EQ(report.injected, 4u);
  EXPECT_EQ(report.absorbed, 4u);
  EXPECT_EQ(report.resident, 0u);
  EXPECT_EQ(report.observed_d, 3);
  EXPECT_LE(report.max_wait, 2);  // ceil(w * r) = ceil(6/3)
  EXPECT_GE(report.steps, 10);
  EXPECT_EQ(report.occupancy.size(), static_cast<std::size_t>(report.steps));
}

TEST(Verify, UnstableCrossTraceIsCleanAndGrows) {
  const VerifyReport report = verify_text(unstable_cross_trace());
  EXPECT_TRUE(report.ok()) << codes_of(report);
  EXPECT_EQ(report.observed_d, 2);
  EXPECT_GT(report.resident, 30u);  // backlog grew ~1/step for 60 steps
  ASSERT_GE(report.occupancy.size(), 8u);
  EXPECT_GT(report.occupancy.back(), 2 * report.occupancy.front() + 1);
}

TEST(Verify, RerouteAndLisTracesAreClean) {
  EXPECT_TRUE(verify_text(reroute_trace()).ok());
  EXPECT_TRUE(verify_text(lis_triple_trace()).ok());
  EXPECT_TRUE(verify_text(fifo_pair_trace()).ok());
}

// --- Targeted tamperings (one stable code each) --------------------------

TEST(VerifyTamper, FlippedHashIsTheOnlyFinding) {
  std::string text = stable_ring_trace();
  const std::size_t digit = text.size() - 2;  // last hex digit of footer
  text[digit] = text[digit] == '0' ? '1' : '0';
  const VerifyReport report = verify_text(text);
  ASSERT_EQ(report.findings.size(), 1u) << codes_of(report);
  EXPECT_EQ(report.findings[0].code, "trace-hash");
}

TEST(VerifyTamper, DeletedSendBreaksWorkConservation) {
  const VerifyReport report =
      verify_text(replace_first(stable_ring_trace(), "S 0 0\n", ""));
  EXPECT_TRUE(has_code(report, "work-conservation")) << codes_of(report);
}

TEST(VerifyTamper, DuplicatedSendBreaksCapacity) {
  const VerifyReport report = verify_text(
      replace_first(stable_ring_trace(), "S 0 0\n", "S 0 0\nS 0 0\n"));
  EXPECT_TRUE(has_code(report, "capacity")) << codes_of(report);
}

TEST(VerifyTamper, SendOfForeignPacketIsNotResident) {
  // Packet 3 is injected at t=10; a send of it at t=2 forwards a packet
  // that is not in the edge's buffer (here: not even created yet).
  const VerifyReport report =
      verify_text(replace_first(stable_ring_trace(), "S 0 0\n", "S 0 3\n"));
  EXPECT_TRUE(has_code(report, "send-not-resident")) << codes_of(report);
}

TEST(VerifyTamper, SwappedSendsBreakFifoOrder) {
  const VerifyReport report = verify_text(
      swap_first(fifo_pair_trace(), "S 0 0\n", "S 0 1\n"));
  EXPECT_TRUE(has_code(report, "fifo-order")) << codes_of(report);
}

TEST(VerifyTamper, SwappedSendsBreakTimePriority) {
  // Forward the step-2 injection past a step-1 resident under LIS.
  const VerifyReport report = verify_text(
      swap_first(lis_triple_trace(), "S 0 1\n", "S 0 2\n"));
  EXPECT_TRUE(has_code(report, "time-priority")) << codes_of(report);
}

TEST(VerifyTamper, DiscontiguousInjectedRouteIsRejected) {
  const VerifyReport report = verify_text(
      replace_first(stable_ring_trace(), "J 0 0 0 1 2\n", "J 0 0 0 2 4\n"));
  EXPECT_TRUE(has_code(report, "route-not-contiguous")) << codes_of(report);
}

TEST(VerifyTamper, CyclicInjectedRouteIsNotSimple) {
  // The full ring revisits its start node: contiguous but not simple.
  const VerifyReport report = verify_text(replace_first(
      stable_ring_trace(), "J 0 0 0 1 2\n", "J 0 0 0 1 2 3 4 5\n"));
  EXPECT_TRUE(has_code(report, "route-not-simple")) << codes_of(report);
}

TEST(VerifyTamper, DeletedAbsorptionIsMissing) {
  const VerifyReport report =
      verify_text(replace_first(stable_ring_trace(), "A 0\n", ""));
  EXPECT_TRUE(has_code(report, "absorb-missing")) << codes_of(report);
}

TEST(VerifyTamper, BogusEarlyAbsorptionIsInvalid) {
  // Claim packet 3 (not yet injected) was absorbed right after the first
  // send — phase-legal, so the record reaches the conservation check.
  const VerifyReport report = verify_text(
      replace_first(stable_ring_trace(), "S 0 0\n", "S 0 0\nA 3\n"));
  EXPECT_TRUE(has_code(report, "absorb-invalid")) << codes_of(report);
}

TEST(VerifyTamper, EditedQueueDepthIsCaught) {
  const VerifyReport report =
      verify_text(replace_first(stable_ring_trace(), "Q 0 1\n", "Q 0 7\n"));
  EXPECT_TRUE(has_code(report, "queue-depth")) << codes_of(report);
}

TEST(VerifyTamper, EditedFooterTotalsMismatch) {
  const std::string text = stable_ring_trace();
  const std::size_t pos = text.find("\nend ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = text.find('\n', pos + 1);
  std::string tampered = text;
  tampered.replace(pos + 1, eol - pos - 1, "end 99 99 99");
  const VerifyReport report = verify_text(tampered);
  EXPECT_TRUE(has_code(report, "footer-mismatch")) << codes_of(report);
}

TEST(VerifyTamper, TightenedWindowBecomesInfeasible) {
  // Declaring (w=6, r=1/6) allows one injection per window; the run has
  // two, so the honest trace no longer matches its claimed constraint.
  const VerifyReport report = verify_text(replace_first(
      stable_ring_trace(), "window 6 1/3\n", "window 6 1/6\n"));
  EXPECT_TRUE(has_code(report, "window-infeasible")) << codes_of(report);
}

TEST(VerifyTamper, TightenedRateBecomesInfeasible) {
  const VerifyReport report = verify_text(
      replace_first(unstable_cross_trace(), "rate 2\n", "rate 1/2\n"));
  EXPECT_TRUE(has_code(report, "rate-infeasible")) << codes_of(report);
}

TEST(VerifyTamper, RerouteUnderNonHistoricProtocol) {
  const VerifyReport report = verify_text(
      replace_first(reroute_trace(), "protocol FIFO\n", "protocol NTG\n"));
  EXPECT_TRUE(has_code(report, "reroute-nonhistoric")) << codes_of(report);
}

TEST(VerifyTamper, DiscontiguousRerouteSuffix) {
  const VerifyReport report = verify_text(
      replace_first(reroute_trace(), "R 0 2\n", "R 0 0\n"));
  EXPECT_TRUE(has_code(report, "reroute-discontiguous")) << codes_of(report);
}

TEST(VerifyTamper, UnknownProtocolIsReported) {
  const VerifyReport report = verify_text(replace_first(
      stable_ring_trace(), "protocol FIFO\n", "protocol BOGUS\n"));
  EXPECT_TRUE(has_code(report, "protocol-unknown")) << codes_of(report);
}

TEST(VerifyTamper, RecordBeforeSendsBreaksSubstepOrder) {
  // An injection record ahead of the step's sends violates the recorded
  // substep order (sends, absorptions, adversary actions, depths).
  const VerifyReport report = verify_text(
      insert_before(stable_ring_trace(), "S 0 0\n", "J 9 0 0 1 2\n"));
  EXPECT_TRUE(has_code(report, "record-order")) << codes_of(report);
}

TEST(VerifyTamper, NonDenseOrdinalIsCaught) {
  const VerifyReport report = verify_text(
      replace_first(stable_ring_trace(), "J 1 0 0 1 2\n", "J 5 0 0 1 2\n"));
  EXPECT_TRUE(has_code(report, "ordinal-order")) << codes_of(report);
}

TEST(VerifyTamper, SameStepForwardBreaksSubstepSemantics) {
  // Move the second packet's first send one step early: it then crosses
  // in the very step it was injected, which substep semantics forbid.
  const VerifyReport report = verify_text(
      swap_first(lis_triple_trace(), "S 0 0\n", "S 0 2\n"));
  EXPECT_TRUE(has_code(report, "substep-order") ||
              has_code(report, "send-not-resident"))
      << codes_of(report);
}

TEST(Verify, VerifyFileReportsParseErrorAsFinding) {
  const std::string path = ::testing::TempDir() + "/truncated.trace";
  const std::string text = stable_ring_trace();
  {
    std::ofstream out(path);
    out << text.substr(0, text.size() / 2);
  }
  const VerifyReport report = verify_file(path);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].code, "parse-error");
  std::remove(path.c_str());
}

TEST(Verify, ProtocolTablesClassifyIndependently) {
  EXPECT_TRUE(verify_protocol_known("FIFO"));
  EXPECT_TRUE(verify_protocol_known("NTG"));
  EXPECT_FALSE(verify_protocol_known("BOGUS"));
  EXPECT_TRUE(verify_protocol_fifo("FIFO"));
  EXPECT_FALSE(verify_protocol_fifo("LIS"));
  EXPECT_TRUE(verify_protocol_time_priority("FIFO"));
  EXPECT_TRUE(verify_protocol_time_priority("LIS"));
  EXPECT_FALSE(verify_protocol_time_priority("LIFO"));
  EXPECT_TRUE(verify_protocol_historic("FIFO"));
  EXPECT_FALSE(verify_protocol_historic("FTG"));
  EXPECT_FALSE(verify_protocol_historic("NTG"));
}

TEST(Verify, ReportsRenderInBothFormats) {
  std::vector<VerifyReport> reports = {verify_text(stable_ring_trace())};
  const std::string human = to_human(reports);
  EXPECT_NE(human.find("OK"), std::string::npos);
  const std::string json = to_json(reports);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  reports[0].findings.push_back(
      {"queue-depth", 3, 1, 0, "synthetic finding"});
  EXPECT_NE(to_human(reports).find("queue-depth"), std::string::npos);
}

}  // namespace
}  // namespace aqt
