// Golden trace-hash matrix: scenario x protocol x execution path x jobs.
//
// The engine promises that its fast paths are *observably invisible*: a run
// executed through the precompiled-schedule path (oblivious adversaries
// lowered blockwise into flat injection spans) must produce a run trace
// byte-identical to the per-step polled path, and the runner pool must
// produce the same bytes at any --jobs.  This suite pins that promise to
// committed FNV-1a content hashes: every cell of a scenario x protocol
// matrix is executed compiled, polled, and through run_pool at jobs 1/2/4,
// and all five hashes must equal the committed constant.
//
// If an intentional trace-format or semantics change moves the hashes,
// regenerate the table with:
//   AQT_PRINT_GOLDEN=1 ./tests/test_verify \
//     --gtest_filter='GoldenMatrix.*' 2>&1 | grep '^  {'
// and paste the printed rows over kGolden below.  An *unintentional* move
// means the compiled path, the pool, or the engine changed observable
// behavior — that is the regression this suite exists to catch.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aqt/adversaries/scripted.hpp"
#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/adversary.hpp"
#include "aqt/core/types.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/runner/run_spec.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {
namespace {

/// Forwards to an oblivious adversary while denying obliviousness, forcing
/// the engine onto the per-step polled path with identical inputs.
class PolledShim final : public Adversary {
 public:
  explicit PolledShim(std::unique_ptr<Adversary> inner)
      : inner_(std::move(inner)) {}

  void step(Time now, const Engine& engine, AdversaryStep& out) override {
    inner_->step(now, engine, out);
  }
  [[nodiscard]] bool finished(Time now) const override {
    return inner_->finished(now);
  }
  [[nodiscard]] bool is_oblivious() const override { return false; }

 private:
  std::unique_ptr<Adversary> inner_;
};

struct Scenario {
  const char* name;
  TopologyRecipe topology;
  AdversaryFactory adversary;
  Time steps;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;

  // Fixed script on a 6-ring: bursts on overlapping arcs, then silence (the
  // run finishes early and drains).
  out.push_back(Scenario{
      "scripted-ring",
      TopologyRecipe{"ring6", [] { return make_ring(6); }},
      [](const Graph&, std::uint64_t) -> std::unique_ptr<Adversary> {
        auto adv = std::make_unique<ScriptedAdversary>();
        adv->inject_at(1, Route{0, 1, 2}, 10);
        adv->inject_at(1, Route{3, 4, 5}, 11);
        adv->inject_at(1, Route{1, 2, 3}, 12);
        adv->inject_at(2, Route{0, 1}, 20);
        adv->inject_at(2, Route{2, 3, 4, 5}, 21);
        adv->inject_at(5, Route{4, 5, 0}, 50);
        adv->inject_at(9, Route{5, 0, 1, 2}, 90);
        return adv;
      },
      64,
  });

  // Floor-paced streams on a line: sustained rational-rate contention on
  // the shared middle edges.
  out.push_back(Scenario{
      "stream-line",
      TopologyRecipe{"line8", [] { return make_line(8); }},
      [](const Graph&, std::uint64_t) -> std::unique_ptr<Adversary> {
        auto adv = std::make_unique<StreamAdversary>();
        adv->add_stream(Route{0, 1, 2, 3}, Rat(1, 2), 1, 20, 1);
        adv->add_stream(Route{4, 5, 6, 7}, Rat(1, 3), 3, 15, 2);
        adv->add_stream(Route{2, 3, 4, 5}, Rat(1, 4), 1, 10, 3);
        return adv;
      },
      128,
  });

  // Seeded stochastic (w, r) traffic on a 3x3 grid: the dedup-heavy
  // workload the route interner and block compiler were built for.
  out.push_back(Scenario{
      "stochastic-grid",
      TopologyRecipe{"grid3x3", [] { return make_grid(3, 3); }},
      [](const Graph& g, std::uint64_t seed) -> std::unique_ptr<Adversary> {
        StochasticConfig cfg;
        cfg.w = 4;
        cfg.r = Rat(3, 4);
        cfg.max_route_len = 4;
        cfg.seed = seed;
        cfg.attempts_per_step = 4;
        return std::make_unique<StochasticAdversary>(g, cfg);
      },
      256,
  });

  return out;
}

const char* const kProtocols[] = {"FIFO", "LIS", "NTG"};

/// Committed golden hashes, kGolden[scenario][protocol] in the order of
/// scenarios() and kProtocols.  Regenerate per the header comment.
constexpr std::uint64_t kGolden[3][3] = {
    {0xf24af04217e16c5fULL, 0xb9c78615c199abc0ULL, 0x13046c054cfcd021ULL},
    {0x096d7ba1625988c1ULL, 0xa4049be6ff24ba47ULL, 0x77215a19e5637044ULL},
    {0xc401bb8b35f564fcULL, 0x44bf11dd39dc78feULL, 0x19e9e896abfe2fabULL},
};

RunSpec make_spec(const Scenario& sc, const char* protocol, bool polled) {
  RunSpec spec;
  spec.name = std::string(sc.name) + "/" + protocol +
              (polled ? "/polled" : "/compiled");
  spec.topology = sc.topology;
  spec.protocol = protocol;
  spec.seed = 7;
  spec.steps = sc.steps;
  spec.drain_after = true;
  spec.artifacts.trace_hash = true;
  if (polled) {
    const AdversaryFactory inner = sc.adversary;
    spec.adversary = [inner](const Graph& g, std::uint64_t seed) {
      return std::make_unique<PolledShim>(inner(g, seed));
    };
  } else {
    spec.adversary = sc.adversary;
  }
  return spec;
}

TEST(GoldenMatrix, CompiledPolledAndPoolJobsAgreeWithCommittedHashes) {
  // aqt-audit: allow(AUD001) -- regeneration switch, never affects a run
  const bool print = std::getenv("AQT_PRINT_GOLDEN") != nullptr;
  const std::vector<Scenario> scs = scenarios();
  ASSERT_EQ(scs.size(), 3u);

  // One compiled and one polled spec per cell, in matching order.
  std::vector<RunSpec> compiled;
  std::vector<RunSpec> polled;
  for (const Scenario& sc : scs) {
    for (const char* protocol : kProtocols) {
      compiled.push_back(make_spec(sc, protocol, false));
      polled.push_back(make_spec(sc, protocol, true));
    }
  }

  // Serial reference execution of the compiled path.
  std::vector<std::uint64_t> hashes;
  for (const RunSpec& spec : compiled) {
    const RunResult res = execute_run(spec);
    ASSERT_TRUE(res.error.empty()) << spec.name << ": " << res.error;
    ASSERT_NE(res.trace_hash, 0u) << spec.name;
    hashes.push_back(res.trace_hash);
  }

  if (print) {
    std::fprintf(stderr, "golden matrix hashes:\n");
    for (std::size_t s = 0; s < scs.size(); ++s) {
      std::fprintf(stderr, "  {0x%016llxULL, 0x%016llxULL, 0x%016llxULL},\n",
                    static_cast<unsigned long long>(hashes[s * 3 + 0]),
                    static_cast<unsigned long long>(hashes[s * 3 + 1]),
                    static_cast<unsigned long long>(hashes[s * 3 + 2]));
    }
  }

  // Polled path must be byte-identical per cell.
  for (std::size_t i = 0; i < polled.size(); ++i) {
    const RunResult res = execute_run(polled[i]);
    ASSERT_TRUE(res.error.empty()) << polled[i].name << ": " << res.error;
    EXPECT_EQ(res.trace_hash, hashes[i])
        << polled[i].name << ": polled trace diverged from compiled";
  }

  // The pool must reproduce the serial hashes at every jobs setting.
  for (const unsigned jobs : {1u, 2u, 4u}) {
    const RunPoolReport report = run_pool(compiled, jobs);
    ASSERT_EQ(report.results.size(), compiled.size());
    for (std::size_t i = 0; i < compiled.size(); ++i) {
      EXPECT_EQ(report.results[i].trace_hash, hashes[i])
          << compiled[i].name << " at jobs=" << jobs;
    }
  }

  if (print) {
    GTEST_SKIP() << "AQT_PRINT_GOLDEN set: committed-constant check skipped";
  }

  // And all of it must match the committed constants.
  for (std::size_t s = 0; s < scs.size(); ++s) {
    for (std::size_t p = 0; p < 3; ++p) {
      EXPECT_EQ(hashes[s * 3 + p], kGolden[s][p])
          << scs[s].name << "/" << kProtocols[p]
          << ": trace hash moved — see the regeneration note in this file's "
             "header before updating the table";
    }
  }
}

}  // namespace
}  // namespace aqt
