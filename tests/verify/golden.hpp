// Shared golden-trace builders for the aqt-verify test suite.
//
// Each builder drives a real Engine with a RunTraceWriter attached and
// returns the recorded evidence as a string; the tests then verify the
// pristine text (must be clean) and targeted line-level tamperings of it
// (each must trip the matching stable violation code).
#pragma once

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/trace/run_trace.hpp"
#include "aqt/util/rational.hpp"
#include "aqt/verify/verifier.hpp"

namespace aqt::verify_testing {

/// Injects scripted packets at fixed steps (deterministic, adaptive-free).
class ScriptDriver final : public Adversary {
 public:
  std::vector<std::pair<Time, Injection>> script;

  void step(Time now, const Engine&, AdversaryStep& out) override {
    for (const auto& [t, inj] : script)
      if (t == now) out.injections.push_back(inj);
  }
};

/// Runs `steps` adversary steps (plus a drain unless `drain` is false)
/// against a fresh engine/protocol and returns the recorded run trace.
inline std::string record_run(
    const Graph& g, const RunTraceMeta& meta,
    const std::vector<std::pair<Time, Injection>>& script, Time steps,
    bool drain = true, Adversary* custom = nullptr) {
  const auto protocol = make_protocol(meta.protocol, meta.seed);
  std::ostringstream os;
  RunTraceWriter writer(os, g, meta);
  EngineConfig cfg;
  cfg.sinks.trace = &writer;
  Engine eng(g, *protocol, cfg);
  ScriptDriver driver;
  driver.script = script;
  eng.run(custom != nullptr ? custom : &driver, steps);
  if (drain) eng.drain(1000);
  writer.finish(eng.total_injected(), eng.total_absorbed());
  return os.str();
}

inline RunTrace parse_text(const std::string& text,
                           const std::string& label = "test") {
  std::istringstream is(text);
  return parse_run_trace(is, label);
}

inline VerifyReport verify_text(const std::string& text,
                                const std::string& label = "test") {
  return verify_run_trace(parse_text(text, label), label);
}

inline bool has_code(const VerifyReport& report, std::string_view code) {
  for (const VerifyFinding& f : report.findings)
    if (f.code == code) return true;
  return false;
}

inline std::string codes_of(const VerifyReport& report) {
  std::string out;
  for (const VerifyFinding& f : report.findings) {
    if (!out.empty()) out += ",";
    out += f.code;
  }
  return out;
}

/// Replaces the first occurrence of `from` (must exist) with `to`.
inline std::string replace_first(std::string text, const std::string& from,
                                 const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "tamper pattern not found: " << from;
  if (pos == std::string::npos) return text;
  text.replace(pos, from.size(), to);
  return text;
}

/// Swaps the first occurrences of two distinct lines.
inline std::string swap_first(std::string text, const std::string& a,
                              const std::string& b) {
  const std::string placeholder = "\x01SWAP\x01";
  text = replace_first(std::move(text), a, placeholder);
  text = replace_first(std::move(text), b, a);
  return replace_first(std::move(text), placeholder, b);
}

/// Inserts `what` immediately before the first occurrence of `anchor`.
inline std::string insert_before(std::string text, const std::string& anchor,
                                 const std::string& what) {
  return replace_first(std::move(text), anchor, what + anchor);
}

// --- Golden runs ---------------------------------------------------------

/// Stable (w, r) run: FIFO on ring:6, route over three edges (d = 3),
/// injections every 3 steps under a declared (w=6, r=1/3) window — exactly
/// the r <= 1/d regime of Theorem 4.3.
inline std::string stable_ring_trace() {
  const Graph g = make_ring(6);
  RunTraceMeta meta;
  meta.protocol = "FIFO";
  meta.window_w = 6;
  meta.window_r = Rat(1, 3);
  std::vector<std::pair<Time, Injection>> script;
  for (const Time t : {1, 4, 7, 10})
    script.emplace_back(t, Injection{{0, 1, 2}, 0});
  return record_run(g, meta, script, 10);
}

/// Two sources feeding one shared edge: injecting one packet per source per
/// step doubles the load on the shared edge, so the backlog grows by one
/// every step — the monotone-growth witness of the instability regime.
/// Declared rate 2 is honest (the trace is feasible); it simply exceeds
/// every stability threshold.
inline std::string unstable_cross_trace() {
  Graph g;
  g.add_edge("s1", "m", "a");  // edge 0
  g.add_edge("s2", "m", "b");  // edge 1
  g.add_edge("m", "t", "c");   // edge 2
  RunTraceMeta meta;
  meta.protocol = "FIFO";
  meta.rate_r = Rat(2);
  std::vector<std::pair<Time, Injection>> script;
  for (Time t = 1; t <= 60; ++t) {
    script.emplace_back(t, Injection{{0, 2}, 0});
    script.emplace_back(t, Injection{{1, 2}, 0});
  }
  return record_run(g, meta, script, 60, /*drain=*/false);
}

/// Two same-step FIFO injections contending for one buffer; the recorded
/// send order is the arrival order, so swapping the two sends must trip
/// the fifo-order check.
inline std::string fifo_pair_trace() {
  const Graph g = make_line(3);
  RunTraceMeta meta;
  meta.protocol = "FIFO";
  return record_run(g, meta,
                    {{1, Injection{{0, 1}, 0}}, {1, Injection{{0, 1}, 1}}}, 1);
}

/// Three LIS packets through one buffer with staggered injection times;
/// swapping the second and third sends forwards a strictly younger packet
/// past an older resident — the time-priority violation of Definition 4.2.
inline std::string lis_triple_trace() {
  const Graph g = make_line(3);
  RunTraceMeta meta;
  meta.protocol = "LIS";
  return record_run(g, meta,
                    {{1, Injection{{0, 1}, 0}},
                     {1, Injection{{0, 1}, 1}},
                     {2, Injection{{0, 1}, 2}}},
                    2);
}

/// Reroutes the lone packet's suffix mid-flight (Lemma 3.3 style) under a
/// historic protocol; retagging the trace's protocol as NTG (non-historic)
/// must trip reroute-nonhistoric.
class RerouteDriver final : public Adversary {
 public:
  void step(Time now, const Engine& eng, AdversaryStep& out) override {
    if (now == 1) out.injections.push_back(Injection{{0, 1}, 0});
    if (now == 2)
      out.reroutes.push_back(Reroute{eng.arena().find_by_ordinal(0), {2}});
  }
};

inline std::string reroute_trace() {
  Graph g;
  g.add_edge("n0", "n1", "a");  // edge 0
  g.add_edge("n1", "n2", "b");  // edge 1
  g.add_edge("n2", "n3", "d");  // edge 2
  RunTraceMeta meta;
  meta.protocol = "FIFO";
  RerouteDriver driver;
  return record_run(g, meta, {}, 2, /*drain=*/true, &driver);
}

}  // namespace aqt::verify_testing
