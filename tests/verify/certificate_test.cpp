// Stability-certificate tests: theorem selection (4.3 vs 4.1 vs the 3.17
// instability regime), the N-version cross-check of the ceil(w*r) waiting
// bound against src/aqt/analysis/bounds, and the rendered artifact.
#include <gtest/gtest.h>

#include <string>

#include "aqt/analysis/bounds.hpp"
#include "aqt/verify/certificate.hpp"
#include "golden.hpp"

namespace aqt {
namespace {

using namespace verify_testing;

TEST(Certificate, TimePriorityStabilityOnStableRing) {
  // FIFO is time-priority and r = 1/3 = 1/d, so Theorem 4.3 applies and
  // the observed waits must respect ceil(w * r).
  const VerifyReport report = verify_text(stable_ring_trace());
  const StabilityCertificate cert = make_stability_certificate(report);
  EXPECT_EQ(cert.kind, CertificateKind::kTimePriorityStability);
  EXPECT_TRUE(cert.applicable);
  EXPECT_TRUE(cert.verified) << cert.detail;
  EXPECT_NE(cert.theorem.find("4.3"), std::string::npos);
  EXPECT_EQ(cert.w, 6);
  EXPECT_EQ(cert.r.str(), "1/3");
  EXPECT_EQ(cert.d, 3);
  EXPECT_EQ(cert.threshold.str(), time_priority_threshold(3).str());
  EXPECT_EQ(cert.bound, residence_bound(6, Rat(1, 3)));
  EXPECT_EQ(cert.bound, 2);
  EXPECT_LE(cert.observed_max_wait, cert.bound);
  EXPECT_EQ(cert.trace_hash, report.trace_hash);
}

TEST(Certificate, GreedyStabilityForNonTimePriorityProtocol) {
  // NTG is greedy but not time-priority; with d = 2 and r = 1/4 <= 1/(d+1)
  // only Theorem 4.1 covers the run.
  const Graph g = make_line(3);
  RunTraceMeta meta;
  meta.protocol = "NTG";
  meta.window_w = 4;
  meta.window_r = Rat(1, 4);
  std::vector<std::pair<Time, Injection>> script;
  for (const Time t : {1, 5, 9}) script.emplace_back(t, Injection{{0, 1}, 0});
  const VerifyReport report =
      verify_text(record_run(g, meta, script, 9));
  ASSERT_TRUE(report.ok()) << codes_of(report);
  const StabilityCertificate cert = make_stability_certificate(report);
  EXPECT_EQ(cert.kind, CertificateKind::kGreedyStability);
  EXPECT_TRUE(cert.applicable);
  EXPECT_TRUE(cert.verified) << cert.detail;
  EXPECT_NE(cert.theorem.find("4.1"), std::string::npos);
  EXPECT_EQ(cert.d, 2);
  EXPECT_EQ(cert.threshold.str(), greedy_threshold(2).str());
  EXPECT_EQ(cert.bound, residence_bound(4, Rat(1, 4)));
  EXPECT_EQ(cert.bound, 1);
}

TEST(Certificate, InstabilityWitnessOnGrowingBacklog) {
  const VerifyReport report = verify_text(unstable_cross_trace());
  const StabilityCertificate cert = make_stability_certificate(report);
  EXPECT_EQ(cert.kind, CertificateKind::kInstabilityWitness);
  EXPECT_TRUE(cert.applicable);
  EXPECT_TRUE(cert.verified) << cert.detail;
  EXPECT_NE(cert.theorem.find("3.17"), std::string::npos);
  EXPECT_EQ(cert.d, 2);
  EXPECT_EQ(cert.r.str(), "2");
  // FIFO is time-priority, so the relevant threshold is 1/d.
  EXPECT_EQ(cert.threshold.str(), time_priority_threshold(2).str());
  EXPECT_NE(cert.detail.find("monotone growth"), std::string::npos);
}

TEST(Certificate, NoConstraintMeansNoCertificate) {
  const StabilityCertificate cert =
      make_stability_certificate(verify_text(fifo_pair_trace()));
  EXPECT_EQ(cert.kind, CertificateKind::kNone);
  EXPECT_FALSE(cert.applicable);
  EXPECT_FALSE(cert.verified);
}

TEST(Certificate, WindowRateAboveEveryThresholdIsNotCovered) {
  // r = 1/2 with d = 3 exceeds both 1/d and 1/(d+1): the run may well be
  // stable, but no theorem promises it, so nothing is certified.
  const VerifyReport report = verify_text(replace_first(
      stable_ring_trace(), "window 6 1/3\n", "window 6 1/2\n"));
  const StabilityCertificate cert = make_stability_certificate(report);
  EXPECT_EQ(cert.kind, CertificateKind::kNone);
  EXPECT_FALSE(cert.applicable);
  EXPECT_NE(cert.detail.find("no stability theorem"), std::string::npos);
}

TEST(Certificate, RateWithinThresholdHasNothingToCertify) {
  // A rate-only declaration below the threshold gives no ceil(w*r) bound
  // and no instability regime: explicitly not applicable.
  const Graph g = make_line(3);
  RunTraceMeta meta;
  meta.protocol = "FIFO";
  meta.rate_r = Rat(1, 4);
  const VerifyReport report = verify_text(record_run(
      g, meta, {{1, Injection{{0, 1}, 0}}, {5, Injection{{0, 1}, 0}}}, 5));
  ASSERT_TRUE(report.ok()) << codes_of(report);
  const StabilityCertificate cert = make_stability_certificate(report);
  EXPECT_EQ(cert.kind, CertificateKind::kNone);
  EXPECT_FALSE(cert.applicable);
}

TEST(Certificate, ViolatedTraceIsNeverVerified) {
  // Same theorem hypotheses as the clean ring run, but the evidence is
  // tampered: applicable, yet the verdict must stay NOT-VERIFIED.
  const VerifyReport report = verify_text(
      replace_first(stable_ring_trace(), "Q 0 1\n", "Q 0 7\n"));
  ASSERT_FALSE(report.ok());
  const StabilityCertificate cert = make_stability_certificate(report);
  EXPECT_EQ(cert.kind, CertificateKind::kTimePriorityStability);
  EXPECT_TRUE(cert.applicable);
  EXPECT_FALSE(cert.verified);
  EXPECT_NE(cert.detail.find("violations"), std::string::npos);
}

TEST(Certificate, ShortRunCannotWitnessInstability) {
  // Above-threshold rate but only a handful of steps: the quarter-mean
  // growth witness refuses to certify from so little evidence.
  const Graph g = make_line(3);
  RunTraceMeta meta;
  meta.protocol = "FIFO";
  meta.rate_r = Rat(2);
  const VerifyReport report = verify_text(record_run(
      g, meta, {{1, Injection{{0, 1}, 0}}, {1, Injection{{0, 1}, 1}}}, 1,
      /*drain=*/false));
  ASSERT_TRUE(report.ok()) << codes_of(report);
  const StabilityCertificate cert = make_stability_certificate(report);
  EXPECT_EQ(cert.kind, CertificateKind::kInstabilityWitness);
  EXPECT_TRUE(cert.applicable);
  EXPECT_FALSE(cert.verified);
  EXPECT_NE(cert.detail.find("too few steps"), std::string::npos);
}

TEST(Certificate, TextRendersTheArtifact) {
  const StabilityCertificate cert =
      make_stability_certificate(verify_text(stable_ring_trace()));
  const std::string text = cert.text();
  EXPECT_NE(text.find("-----BEGIN AQT STABILITY CERTIFICATE-----"),
            std::string::npos);
  EXPECT_NE(text.find("kind: time-priority-stability"), std::string::npos);
  EXPECT_NE(text.find("verdict: VERIFIED"), std::string::npos);
  EXPECT_NE(text.find("bound: ceil(w*r) = 2"), std::string::npos);
  EXPECT_NE(text.find("-----END AQT STABILITY CERTIFICATE-----"),
            std::string::npos);
}

TEST(Certificate, KindNamesAreStable) {
  EXPECT_STREQ(certificate_kind_name(CertificateKind::kNone), "none");
  EXPECT_STREQ(certificate_kind_name(CertificateKind::kGreedyStability),
               "greedy-stability");
  EXPECT_STREQ(certificate_kind_name(CertificateKind::kTimePriorityStability),
               "time-priority-stability");
  EXPECT_STREQ(certificate_kind_name(CertificateKind::kInstabilityWitness),
               "instability-witness");
}

}  // namespace
}  // namespace aqt
