// Run-trace format tests: writer/parser round trip, content-hash and
// byte-level determinism, and hardened rejection of malformed, truncated,
// or hostile input (the parser must throw PreconditionError, never abort
// or balloon memory).
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "aqt/util/check.hpp"
#include "golden.hpp"

namespace aqt {
namespace {

using verify_testing::fifo_pair_trace;
using verify_testing::parse_text;
using verify_testing::replace_first;
using verify_testing::stable_ring_trace;

TEST(RunTrace, WriterParserRoundTrip) {
  const std::string text = stable_ring_trace();
  const RunTrace trace = parse_text(text);

  EXPECT_EQ(trace.version, kRunTraceVersion);
  EXPECT_EQ(trace.meta.protocol, "FIFO");
  ASSERT_TRUE(trace.meta.window_w.has_value());
  EXPECT_EQ(*trace.meta.window_w, 6);
  ASSERT_TRUE(trace.meta.window_r.has_value());
  EXPECT_EQ(trace.meta.window_r->str(), "1/3");
  EXPECT_FALSE(trace.meta.rate_r.has_value());

  EXPECT_EQ(trace.node_names.size(), 6u);
  EXPECT_EQ(trace.edges.size(), 6u);
  EXPECT_FALSE(trace.records.empty());
  EXPECT_EQ(trace.injected, 4u);
  EXPECT_EQ(trace.absorbed, 4u);
  EXPECT_GE(trace.steps, 10);
  EXPECT_EQ(trace.declared_hash, trace.computed_hash);
}

TEST(RunTrace, RecordKindsAreAllExercised) {
  const RunTrace trace = parse_text(stable_ring_trace());
  bool saw_step = false, saw_send = false, saw_absorb = false,
       saw_inject = false, saw_queue = false;
  for (const RunRecord& rec : trace.records) {
    switch (rec.kind) {
      case RunRecord::Kind::kStep: saw_step = true; break;
      case RunRecord::Kind::kSend: saw_send = true; break;
      case RunRecord::Kind::kAbsorb: saw_absorb = true; break;
      case RunRecord::Kind::kInject: saw_inject = true; break;
      case RunRecord::Kind::kQueue: saw_queue = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_step && saw_send && saw_absorb && saw_inject && saw_queue);
}

TEST(RunTrace, RecordingIsByteDeterministic) {
  const std::string first = stable_ring_trace();
  const std::string second = stable_ring_trace();
  EXPECT_EQ(first, second);
  EXPECT_EQ(parse_text(first).computed_hash, parse_text(second).computed_hash);
}

TEST(RunTrace, TamperedHashParsesWithMismatch) {
  // A wrong footer hash is a *verifier* finding, not a parse failure, so
  // tampering is diagnosed instead of hidden behind an I/O error.
  std::string text = stable_ring_trace();
  const std::size_t pos = text.rfind("\nhash ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t digit = text.size() - 2;  // last hex digit before '\n'
  text[digit] = text[digit] == '0' ? '1' : '0';
  const RunTrace trace = parse_text(text);
  EXPECT_NE(trace.declared_hash, trace.computed_hash);
}

TEST(RunTrace, EveryLinePrefixTruncationIsRejected) {
  const std::string text = fifo_pair_trace();
  std::vector<std::string> lines;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_GT(lines.size(), 10u);
  for (std::size_t keep = 0; keep < lines.size(); ++keep) {
    std::string prefix;
    for (std::size_t i = 0; i < keep; ++i) prefix += lines[i] + "\n";
    EXPECT_THROW(parse_text(prefix), PreconditionError)
        << "prefix of " << keep << " lines parsed";
  }
}

TEST(RunTrace, MidLineTruncationIsRejected) {
  const std::string text = fifo_pair_trace();
  for (const std::size_t cut : {text.size() / 4, text.size() / 2,
                                text.size() - 3}) {
    EXPECT_THROW(parse_text(text.substr(0, cut)), PreconditionError);
  }
}

TEST(RunTrace, MalformedInputIsRejected) {
  const std::string good = fifo_pair_trace();
  const std::vector<std::pair<std::string, std::string>> tampers = {
      {"aqt-run-trace 1", "aqt-rum-trace 1"},   // bad magic
      {"aqt-run-trace 1", "aqt-run-trace 99"},  // unsupported version
      {"T 1\n", "T -1\n"},                      // negative step time
      {"T 2\n", "Z 2\n"},                       // unknown record kind
      {"S 0 0\n", "S 99 0\n"},                  // edge id out of range
      {"S 0 0\n", "S 0 18446744073709551616\n"},  // uint64 overflow
      {"S 0 0\n", "S 0\n"},                     // missing field
      {"J 0 0 0 1\n", "J 0 0\n"},               // injection without route
      {"edges 3", "edges 4"},                   // edge-table count mismatch
      {"hash ", "hash xyz-not-hex"},            // malformed footer hash
  };
  for (const auto& [from, to] : tampers) {
    EXPECT_THROW(parse_text(replace_first(good, from, to)), PreconditionError)
        << "accepted tamper: " << from << " -> " << to;
  }
}

TEST(RunTrace, HostileHeaderCountCannotBalloonMemory) {
  // A tampered count must fail on the missing entry lines; the clamped
  // preallocation means this returns promptly instead of OOMing first.
  const std::string hostile = replace_first(
      fifo_pair_trace(), "nodes 4", "nodes 4000000000");
  EXPECT_THROW(parse_text(hostile), PreconditionError);
}

TEST(RunTrace, Fnv1aDigestMatchesKnownVectors) {
  std::istringstream empty("");
  EXPECT_EQ(fnv1a_hex(empty), "cbf29ce484222325");  // FNV offset basis
  std::istringstream a("a");
  EXPECT_EQ(fnv1a_hex(a), "af63dc4c8601ec8c");
}

}  // namespace
}  // namespace aqt
