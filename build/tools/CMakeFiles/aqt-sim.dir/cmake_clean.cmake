file(REMOVE_RECURSE
  "CMakeFiles/aqt-sim.dir/aqt_sim.cpp.o"
  "CMakeFiles/aqt-sim.dir/aqt_sim.cpp.o.d"
  "aqt-sim"
  "aqt-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqt-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
