# Empty compiler generated dependencies file for aqt-sim.
# This may be replaced when dependencies are built.
