# Empty dependencies file for aqt-fuzz.
# This may be replaced when dependencies are built.
