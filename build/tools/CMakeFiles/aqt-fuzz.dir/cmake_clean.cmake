file(REMOVE_RECURSE
  "CMakeFiles/aqt-fuzz.dir/aqt_fuzz.cpp.o"
  "CMakeFiles/aqt-fuzz.dir/aqt_fuzz.cpp.o.d"
  "aqt-fuzz"
  "aqt-fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqt-fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
