# Empty compiler generated dependencies file for bench_e11_rate_scan.
# This may be replaced when dependencies are built.
