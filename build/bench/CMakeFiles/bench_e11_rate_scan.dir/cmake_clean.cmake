file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_rate_scan.dir/bench_e11_rate_scan.cpp.o"
  "CMakeFiles/bench_e11_rate_scan.dir/bench_e11_rate_scan.cpp.o.d"
  "bench_e11_rate_scan"
  "bench_e11_rate_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_rate_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
