# Empty dependencies file for bench_e08_asymptotics.
# This may be replaced when dependencies are built.
