file(REMOVE_RECURSE
  "CMakeFiles/bench_e08_asymptotics.dir/bench_e08_asymptotics.cpp.o"
  "CMakeFiles/bench_e08_asymptotics.dir/bench_e08_asymptotics.cpp.o.d"
  "bench_e08_asymptotics"
  "bench_e08_asymptotics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e08_asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
