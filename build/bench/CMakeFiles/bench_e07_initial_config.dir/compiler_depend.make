# Empty compiler generated dependencies file for bench_e07_initial_config.
# This may be replaced when dependencies are built.
