file(REMOVE_RECURSE
  "CMakeFiles/bench_e07_initial_config.dir/bench_e07_initial_config.cpp.o"
  "CMakeFiles/bench_e07_initial_config.dir/bench_e07_initial_config.cpp.o.d"
  "bench_e07_initial_config"
  "bench_e07_initial_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_initial_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
