file(REMOVE_RECURSE
  "CMakeFiles/bench_e01_fifo_instability.dir/bench_e01_fifo_instability.cpp.o"
  "CMakeFiles/bench_e01_fifo_instability.dir/bench_e01_fifo_instability.cpp.o.d"
  "bench_e01_fifo_instability"
  "bench_e01_fifo_instability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e01_fifo_instability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
