# Empty compiler generated dependencies file for bench_e01_fifo_instability.
# This may be replaced when dependencies are built.
