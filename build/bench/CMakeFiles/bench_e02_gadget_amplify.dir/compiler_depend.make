# Empty compiler generated dependencies file for bench_e02_gadget_amplify.
# This may be replaced when dependencies are built.
