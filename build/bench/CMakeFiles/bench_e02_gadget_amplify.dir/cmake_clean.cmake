file(REMOVE_RECURSE
  "CMakeFiles/bench_e02_gadget_amplify.dir/bench_e02_gadget_amplify.cpp.o"
  "CMakeFiles/bench_e02_gadget_amplify.dir/bench_e02_gadget_amplify.cpp.o.d"
  "bench_e02_gadget_amplify"
  "bench_e02_gadget_amplify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e02_gadget_amplify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
