file(REMOVE_RECURSE
  "CMakeFiles/bench_e05_greedy_stability.dir/bench_e05_greedy_stability.cpp.o"
  "CMakeFiles/bench_e05_greedy_stability.dir/bench_e05_greedy_stability.cpp.o.d"
  "bench_e05_greedy_stability"
  "bench_e05_greedy_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e05_greedy_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
