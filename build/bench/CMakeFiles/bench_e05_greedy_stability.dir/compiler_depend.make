# Empty compiler generated dependencies file for bench_e05_greedy_stability.
# This may be replaced when dependencies are built.
