# Empty compiler generated dependencies file for bench_e10_protocol_contrast.
# This may be replaced when dependencies are built.
