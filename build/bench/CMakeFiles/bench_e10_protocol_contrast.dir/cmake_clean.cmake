file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_protocol_contrast.dir/bench_e10_protocol_contrast.cpp.o"
  "CMakeFiles/bench_e10_protocol_contrast.dir/bench_e10_protocol_contrast.cpp.o.d"
  "bench_e10_protocol_contrast"
  "bench_e10_protocol_contrast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_protocol_contrast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
