file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_threshold_table.dir/bench_e09_threshold_table.cpp.o"
  "CMakeFiles/bench_e09_threshold_table.dir/bench_e09_threshold_table.cpp.o.d"
  "bench_e09_threshold_table"
  "bench_e09_threshold_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_threshold_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
