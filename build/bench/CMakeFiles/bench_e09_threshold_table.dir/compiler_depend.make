# Empty compiler generated dependencies file for bench_e09_threshold_table.
# This may be replaced when dependencies are built.
