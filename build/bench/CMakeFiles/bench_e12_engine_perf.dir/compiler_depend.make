# Empty compiler generated dependencies file for bench_e12_engine_perf.
# This may be replaced when dependencies are built.
