file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_burst_tolerance.dir/bench_e14_burst_tolerance.cpp.o"
  "CMakeFiles/bench_e14_burst_tolerance.dir/bench_e14_burst_tolerance.cpp.o.d"
  "bench_e14_burst_tolerance"
  "bench_e14_burst_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_burst_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
