# Empty dependencies file for bench_e14_burst_tolerance.
# This may be replaced when dependencies are built.
