# Empty dependencies file for bench_e04_stitch.
# This may be replaced when dependencies are built.
