file(REMOVE_RECURSE
  "CMakeFiles/bench_e04_stitch.dir/bench_e04_stitch.cpp.o"
  "CMakeFiles/bench_e04_stitch.dir/bench_e04_stitch.cpp.o.d"
  "bench_e04_stitch"
  "bench_e04_stitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_stitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
