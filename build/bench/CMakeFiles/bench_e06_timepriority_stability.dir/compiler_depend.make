# Empty compiler generated dependencies file for bench_e06_timepriority_stability.
# This may be replaced when dependencies are built.
