file(REMOVE_RECURSE
  "CMakeFiles/bench_e06_timepriority_stability.dir/bench_e06_timepriority_stability.cpp.o"
  "CMakeFiles/bench_e06_timepriority_stability.dir/bench_e06_timepriority_stability.cpp.o.d"
  "bench_e06_timepriority_stability"
  "bench_e06_timepriority_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e06_timepriority_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
