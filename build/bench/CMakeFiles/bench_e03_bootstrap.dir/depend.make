# Empty dependencies file for bench_e03_bootstrap.
# This may be replaced when dependencies are built.
