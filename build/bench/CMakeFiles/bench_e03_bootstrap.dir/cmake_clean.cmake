file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_bootstrap.dir/bench_e03_bootstrap.cpp.o"
  "CMakeFiles/bench_e03_bootstrap.dir/bench_e03_bootstrap.cpp.o.d"
  "bench_e03_bootstrap"
  "bench_e03_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
