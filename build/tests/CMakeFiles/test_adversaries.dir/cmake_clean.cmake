file(REMOVE_RECURSE
  "CMakeFiles/test_adversaries.dir/adversaries/bucket_test.cpp.o"
  "CMakeFiles/test_adversaries.dir/adversaries/bucket_test.cpp.o.d"
  "CMakeFiles/test_adversaries.dir/adversaries/lps_phase_test.cpp.o"
  "CMakeFiles/test_adversaries.dir/adversaries/lps_phase_test.cpp.o.d"
  "CMakeFiles/test_adversaries.dir/adversaries/pacer_test.cpp.o"
  "CMakeFiles/test_adversaries.dir/adversaries/pacer_test.cpp.o.d"
  "CMakeFiles/test_adversaries.dir/adversaries/scripted_test.cpp.o"
  "CMakeFiles/test_adversaries.dir/adversaries/scripted_test.cpp.o.d"
  "CMakeFiles/test_adversaries.dir/adversaries/stochastic_test.cpp.o"
  "CMakeFiles/test_adversaries.dir/adversaries/stochastic_test.cpp.o.d"
  "test_adversaries"
  "test_adversaries.pdb"
  "test_adversaries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adversaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
