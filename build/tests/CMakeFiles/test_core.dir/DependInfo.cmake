
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/buffer_test.cpp" "tests/CMakeFiles/test_core.dir/core/buffer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/buffer_test.cpp.o.d"
  "/root/repo/tests/core/checkpoint_test.cpp" "tests/CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o.d"
  "/root/repo/tests/core/engine_test.cpp" "tests/CMakeFiles/test_core.dir/core/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/engine_test.cpp.o.d"
  "/root/repo/tests/core/graph_test.cpp" "tests/CMakeFiles/test_core.dir/core/graph_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/graph_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/packet_test.cpp" "tests/CMakeFiles/test_core.dir/core/packet_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/packet_test.cpp.o.d"
  "/root/repo/tests/core/probe_debug_test.cpp" "tests/CMakeFiles/test_core.dir/core/probe_debug_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/probe_debug_test.cpp.o.d"
  "/root/repo/tests/core/protocol_test.cpp" "tests/CMakeFiles/test_core.dir/core/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/protocol_test.cpp.o.d"
  "/root/repo/tests/core/rate_check_test.cpp" "tests/CMakeFiles/test_core.dir/core/rate_check_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/rate_check_test.cpp.o.d"
  "/root/repo/tests/core/reference_test.cpp" "tests/CMakeFiles/test_core.dir/core/reference_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/reference_test.cpp.o.d"
  "/root/repo/tests/core/reroute_legality_test.cpp" "tests/CMakeFiles/test_core.dir/core/reroute_legality_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/reroute_legality_test.cpp.o.d"
  "/root/repo/tests/core/simulation_test.cpp" "tests/CMakeFiles/test_core.dir/core/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/simulation_test.cpp.o.d"
  "/root/repo/tests/core/stability_test.cpp" "tests/CMakeFiles/test_core.dir/core/stability_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/stability_test.cpp.o.d"
  "/root/repo/tests/core/trace_test.cpp" "tests/CMakeFiles/test_core.dir/core/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aqt/experiments/CMakeFiles/aqt_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/adversaries/CMakeFiles/aqt_adversaries.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/analysis/CMakeFiles/aqt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/topology/CMakeFiles/aqt_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/trace/CMakeFiles/aqt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/core/CMakeFiles/aqt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/util/CMakeFiles/aqt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
