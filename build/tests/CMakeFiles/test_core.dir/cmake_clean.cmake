file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/buffer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/buffer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o"
  "CMakeFiles/test_core.dir/core/checkpoint_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/engine_test.cpp.o"
  "CMakeFiles/test_core.dir/core/engine_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/graph_test.cpp.o"
  "CMakeFiles/test_core.dir/core/graph_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/packet_test.cpp.o"
  "CMakeFiles/test_core.dir/core/packet_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/probe_debug_test.cpp.o"
  "CMakeFiles/test_core.dir/core/probe_debug_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/protocol_test.cpp.o"
  "CMakeFiles/test_core.dir/core/protocol_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/rate_check_test.cpp.o"
  "CMakeFiles/test_core.dir/core/rate_check_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/reference_test.cpp.o"
  "CMakeFiles/test_core.dir/core/reference_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/reroute_legality_test.cpp.o"
  "CMakeFiles/test_core.dir/core/reroute_legality_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/simulation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/simulation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/stability_test.cpp.o"
  "CMakeFiles/test_core.dir/core/stability_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trace_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trace_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
