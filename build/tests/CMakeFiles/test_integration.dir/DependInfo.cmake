
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/lemma315_316_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/lemma315_316_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/lemma315_316_test.cpp.o.d"
  "/root/repo/tests/integration/lemma36_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/lemma36_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/lemma36_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/property_test.cpp.o.d"
  "/root/repo/tests/integration/stability_theorems_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/stability_theorems_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/stability_theorems_test.cpp.o.d"
  "/root/repo/tests/integration/theorem317_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/theorem317_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/theorem317_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aqt/experiments/CMakeFiles/aqt_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/adversaries/CMakeFiles/aqt_adversaries.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/analysis/CMakeFiles/aqt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/topology/CMakeFiles/aqt_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/trace/CMakeFiles/aqt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/core/CMakeFiles/aqt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/aqt/util/CMakeFiles/aqt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
