# Empty compiler generated dependencies file for gadget_anatomy.
# This may be replaced when dependencies are built.
