file(REMOVE_RECURSE
  "CMakeFiles/gadget_anatomy.dir/gadget_anatomy.cpp.o"
  "CMakeFiles/gadget_anatomy.dir/gadget_anatomy.cpp.o.d"
  "gadget_anatomy"
  "gadget_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gadget_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
