file(REMOVE_RECURSE
  "CMakeFiles/stability_bounds.dir/stability_bounds.cpp.o"
  "CMakeFiles/stability_bounds.dir/stability_bounds.cpp.o.d"
  "stability_bounds"
  "stability_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
