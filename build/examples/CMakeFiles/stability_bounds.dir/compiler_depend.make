# Empty compiler generated dependencies file for stability_bounds.
# This may be replaced when dependencies are built.
