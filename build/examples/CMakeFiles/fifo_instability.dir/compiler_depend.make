# Empty compiler generated dependencies file for fifo_instability.
# This may be replaced when dependencies are built.
