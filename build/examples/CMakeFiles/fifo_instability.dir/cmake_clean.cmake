file(REMOVE_RECURSE
  "CMakeFiles/fifo_instability.dir/fifo_instability.cpp.o"
  "CMakeFiles/fifo_instability.dir/fifo_instability.cpp.o.d"
  "fifo_instability"
  "fifo_instability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fifo_instability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
