# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("aqt/util")
subdirs("aqt/core")
subdirs("aqt/trace")
subdirs("aqt/topology")
subdirs("aqt/analysis")
subdirs("aqt/adversaries")
subdirs("aqt/experiments")
