# Empty dependencies file for aqt_adversaries.
# This may be replaced when dependencies are built.
