file(REMOVE_RECURSE
  "CMakeFiles/aqt_adversaries.dir/bucket.cpp.o"
  "CMakeFiles/aqt_adversaries.dir/bucket.cpp.o.d"
  "CMakeFiles/aqt_adversaries.dir/lps.cpp.o"
  "CMakeFiles/aqt_adversaries.dir/lps.cpp.o.d"
  "CMakeFiles/aqt_adversaries.dir/pacer.cpp.o"
  "CMakeFiles/aqt_adversaries.dir/pacer.cpp.o.d"
  "CMakeFiles/aqt_adversaries.dir/scripted.cpp.o"
  "CMakeFiles/aqt_adversaries.dir/scripted.cpp.o.d"
  "CMakeFiles/aqt_adversaries.dir/stochastic.cpp.o"
  "CMakeFiles/aqt_adversaries.dir/stochastic.cpp.o.d"
  "libaqt_adversaries.a"
  "libaqt_adversaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqt_adversaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
