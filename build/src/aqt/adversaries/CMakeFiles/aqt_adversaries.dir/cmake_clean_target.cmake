file(REMOVE_RECURSE
  "libaqt_adversaries.a"
)
