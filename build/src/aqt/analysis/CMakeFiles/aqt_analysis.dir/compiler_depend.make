# Empty compiler generated dependencies file for aqt_analysis.
# This may be replaced when dependencies are built.
