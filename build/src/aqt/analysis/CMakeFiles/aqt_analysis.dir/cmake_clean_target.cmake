file(REMOVE_RECURSE
  "libaqt_analysis.a"
)
