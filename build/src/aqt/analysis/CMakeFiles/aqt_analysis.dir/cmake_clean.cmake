file(REMOVE_RECURSE
  "CMakeFiles/aqt_analysis.dir/bounds.cpp.o"
  "CMakeFiles/aqt_analysis.dir/bounds.cpp.o.d"
  "CMakeFiles/aqt_analysis.dir/lps_math.cpp.o"
  "CMakeFiles/aqt_analysis.dir/lps_math.cpp.o.d"
  "CMakeFiles/aqt_analysis.dir/observation44.cpp.o"
  "CMakeFiles/aqt_analysis.dir/observation44.cpp.o.d"
  "libaqt_analysis.a"
  "libaqt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
