# Empty dependencies file for aqt_trace.
# This may be replaced when dependencies are built.
