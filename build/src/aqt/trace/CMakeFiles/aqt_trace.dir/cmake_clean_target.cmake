file(REMOVE_RECURSE
  "libaqt_trace.a"
)
