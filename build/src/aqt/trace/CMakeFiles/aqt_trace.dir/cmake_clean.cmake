file(REMOVE_RECURSE
  "CMakeFiles/aqt_trace.dir/trace.cpp.o"
  "CMakeFiles/aqt_trace.dir/trace.cpp.o.d"
  "libaqt_trace.a"
  "libaqt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
