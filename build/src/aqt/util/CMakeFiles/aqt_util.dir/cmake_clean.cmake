file(REMOVE_RECURSE
  "CMakeFiles/aqt_util.dir/check.cpp.o"
  "CMakeFiles/aqt_util.dir/check.cpp.o.d"
  "CMakeFiles/aqt_util.dir/cli.cpp.o"
  "CMakeFiles/aqt_util.dir/cli.cpp.o.d"
  "CMakeFiles/aqt_util.dir/csv.cpp.o"
  "CMakeFiles/aqt_util.dir/csv.cpp.o.d"
  "CMakeFiles/aqt_util.dir/histogram.cpp.o"
  "CMakeFiles/aqt_util.dir/histogram.cpp.o.d"
  "CMakeFiles/aqt_util.dir/rational.cpp.o"
  "CMakeFiles/aqt_util.dir/rational.cpp.o.d"
  "CMakeFiles/aqt_util.dir/rng.cpp.o"
  "CMakeFiles/aqt_util.dir/rng.cpp.o.d"
  "CMakeFiles/aqt_util.dir/stats.cpp.o"
  "CMakeFiles/aqt_util.dir/stats.cpp.o.d"
  "CMakeFiles/aqt_util.dir/table.cpp.o"
  "CMakeFiles/aqt_util.dir/table.cpp.o.d"
  "libaqt_util.a"
  "libaqt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
