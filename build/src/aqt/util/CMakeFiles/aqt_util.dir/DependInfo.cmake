
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqt/util/check.cpp" "src/aqt/util/CMakeFiles/aqt_util.dir/check.cpp.o" "gcc" "src/aqt/util/CMakeFiles/aqt_util.dir/check.cpp.o.d"
  "/root/repo/src/aqt/util/cli.cpp" "src/aqt/util/CMakeFiles/aqt_util.dir/cli.cpp.o" "gcc" "src/aqt/util/CMakeFiles/aqt_util.dir/cli.cpp.o.d"
  "/root/repo/src/aqt/util/csv.cpp" "src/aqt/util/CMakeFiles/aqt_util.dir/csv.cpp.o" "gcc" "src/aqt/util/CMakeFiles/aqt_util.dir/csv.cpp.o.d"
  "/root/repo/src/aqt/util/histogram.cpp" "src/aqt/util/CMakeFiles/aqt_util.dir/histogram.cpp.o" "gcc" "src/aqt/util/CMakeFiles/aqt_util.dir/histogram.cpp.o.d"
  "/root/repo/src/aqt/util/rational.cpp" "src/aqt/util/CMakeFiles/aqt_util.dir/rational.cpp.o" "gcc" "src/aqt/util/CMakeFiles/aqt_util.dir/rational.cpp.o.d"
  "/root/repo/src/aqt/util/rng.cpp" "src/aqt/util/CMakeFiles/aqt_util.dir/rng.cpp.o" "gcc" "src/aqt/util/CMakeFiles/aqt_util.dir/rng.cpp.o.d"
  "/root/repo/src/aqt/util/stats.cpp" "src/aqt/util/CMakeFiles/aqt_util.dir/stats.cpp.o" "gcc" "src/aqt/util/CMakeFiles/aqt_util.dir/stats.cpp.o.d"
  "/root/repo/src/aqt/util/table.cpp" "src/aqt/util/CMakeFiles/aqt_util.dir/table.cpp.o" "gcc" "src/aqt/util/CMakeFiles/aqt_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
