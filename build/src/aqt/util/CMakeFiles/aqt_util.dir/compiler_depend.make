# Empty compiler generated dependencies file for aqt_util.
# This may be replaced when dependencies are built.
