file(REMOVE_RECURSE
  "libaqt_util.a"
)
