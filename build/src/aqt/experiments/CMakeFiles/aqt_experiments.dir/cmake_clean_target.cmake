file(REMOVE_RECURSE
  "libaqt_experiments.a"
)
