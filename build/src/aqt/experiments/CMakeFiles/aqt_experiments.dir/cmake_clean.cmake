file(REMOVE_RECURSE
  "CMakeFiles/aqt_experiments.dir/sweep.cpp.o"
  "CMakeFiles/aqt_experiments.dir/sweep.cpp.o.d"
  "libaqt_experiments.a"
  "libaqt_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqt_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
