# Empty dependencies file for aqt_experiments.
# This may be replaced when dependencies are built.
