file(REMOVE_RECURSE
  "CMakeFiles/aqt_topology.dir/gadget.cpp.o"
  "CMakeFiles/aqt_topology.dir/gadget.cpp.o.d"
  "CMakeFiles/aqt_topology.dir/generators.cpp.o"
  "CMakeFiles/aqt_topology.dir/generators.cpp.o.d"
  "CMakeFiles/aqt_topology.dir/routing.cpp.o"
  "CMakeFiles/aqt_topology.dir/routing.cpp.o.d"
  "CMakeFiles/aqt_topology.dir/spec.cpp.o"
  "CMakeFiles/aqt_topology.dir/spec.cpp.o.d"
  "libaqt_topology.a"
  "libaqt_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqt_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
