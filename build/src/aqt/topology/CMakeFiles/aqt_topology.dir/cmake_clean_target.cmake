file(REMOVE_RECURSE
  "libaqt_topology.a"
)
