# Empty compiler generated dependencies file for aqt_topology.
# This may be replaced when dependencies are built.
