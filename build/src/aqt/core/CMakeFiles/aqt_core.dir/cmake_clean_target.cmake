file(REMOVE_RECURSE
  "libaqt_core.a"
)
