# Empty compiler generated dependencies file for aqt_core.
# This may be replaced when dependencies are built.
