
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aqt/core/buffer.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/buffer.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/buffer.cpp.o.d"
  "/root/repo/src/aqt/core/checkpoint.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/checkpoint.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/aqt/core/debug.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/debug.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/debug.cpp.o.d"
  "/root/repo/src/aqt/core/engine.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/engine.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/engine.cpp.o.d"
  "/root/repo/src/aqt/core/graph.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/graph.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/graph.cpp.o.d"
  "/root/repo/src/aqt/core/metrics.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/metrics.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/metrics.cpp.o.d"
  "/root/repo/src/aqt/core/packet.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/packet.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/packet.cpp.o.d"
  "/root/repo/src/aqt/core/probe.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/probe.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/probe.cpp.o.d"
  "/root/repo/src/aqt/core/protocol.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/protocol.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/protocol.cpp.o.d"
  "/root/repo/src/aqt/core/rate_check.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/rate_check.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/rate_check.cpp.o.d"
  "/root/repo/src/aqt/core/reference.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/reference.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/reference.cpp.o.d"
  "/root/repo/src/aqt/core/reroute_legality.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/reroute_legality.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/reroute_legality.cpp.o.d"
  "/root/repo/src/aqt/core/simulation.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/simulation.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/simulation.cpp.o.d"
  "/root/repo/src/aqt/core/stability.cpp" "src/aqt/core/CMakeFiles/aqt_core.dir/stability.cpp.o" "gcc" "src/aqt/core/CMakeFiles/aqt_core.dir/stability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aqt/util/CMakeFiles/aqt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
