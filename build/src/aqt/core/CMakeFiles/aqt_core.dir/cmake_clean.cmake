file(REMOVE_RECURSE
  "CMakeFiles/aqt_core.dir/buffer.cpp.o"
  "CMakeFiles/aqt_core.dir/buffer.cpp.o.d"
  "CMakeFiles/aqt_core.dir/checkpoint.cpp.o"
  "CMakeFiles/aqt_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/aqt_core.dir/debug.cpp.o"
  "CMakeFiles/aqt_core.dir/debug.cpp.o.d"
  "CMakeFiles/aqt_core.dir/engine.cpp.o"
  "CMakeFiles/aqt_core.dir/engine.cpp.o.d"
  "CMakeFiles/aqt_core.dir/graph.cpp.o"
  "CMakeFiles/aqt_core.dir/graph.cpp.o.d"
  "CMakeFiles/aqt_core.dir/metrics.cpp.o"
  "CMakeFiles/aqt_core.dir/metrics.cpp.o.d"
  "CMakeFiles/aqt_core.dir/packet.cpp.o"
  "CMakeFiles/aqt_core.dir/packet.cpp.o.d"
  "CMakeFiles/aqt_core.dir/probe.cpp.o"
  "CMakeFiles/aqt_core.dir/probe.cpp.o.d"
  "CMakeFiles/aqt_core.dir/protocol.cpp.o"
  "CMakeFiles/aqt_core.dir/protocol.cpp.o.d"
  "CMakeFiles/aqt_core.dir/rate_check.cpp.o"
  "CMakeFiles/aqt_core.dir/rate_check.cpp.o.d"
  "CMakeFiles/aqt_core.dir/reference.cpp.o"
  "CMakeFiles/aqt_core.dir/reference.cpp.o.d"
  "CMakeFiles/aqt_core.dir/reroute_legality.cpp.o"
  "CMakeFiles/aqt_core.dir/reroute_legality.cpp.o.d"
  "CMakeFiles/aqt_core.dir/simulation.cpp.o"
  "CMakeFiles/aqt_core.dir/simulation.cpp.o.d"
  "CMakeFiles/aqt_core.dir/stability.cpp.o"
  "CMakeFiles/aqt_core.dir/stability.cpp.o.d"
  "libaqt_core.a"
  "libaqt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
