// aqt-verify: N-version offline verification of recorded engine runs.
//
// Takes run traces produced by `aqt-sim --record-run` (or any conforming
// writer), replays them against an independent model that shares no step
// logic with the engine, and re-derives every AQT rule from first
// principles: two-substep semantics, work conservation, per-edge unit
// capacity, FIFO/time-priority order, route contiguity, exact (w, r) /
// rate-r feasibility, packet conservation, and content-hash integrity
// (see verify/verifier.hpp for the full catalogue of violation codes).
//
// On top of the rule check it maps the run onto the paper's stability
// theorems (4.1 greedy, 4.3 time-priority, the Theorem 3.17 instability
// regime) and can emit the certificate artifact.
//
//   aqt-verify run.trace ...                 # human-readable report
//   aqt-verify --format=json run.trace       # machine-readable report
//   aqt-verify --certificate out.cert run.trace
//   aqt-verify --require-certificate true stable.trace
//
// Exit codes: 0 = every trace clean (and certificates verified when
// required), 1 = violations, 2 = usage error.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "aqt/obs/export.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/obs/watchdog.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/verify/certificate.hpp"
#include "aqt/verify/verifier.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("aqt-verify", "offline run-trace verifier and certificate checker");
  cli.flag("format", "human", "report format: human or json");
  cli.flag("certificate", "",
           "write the stability certificate of the (single) trace here");
  cli.flag("require-certificate", "false",
           "fail unless every trace yields an applicable, verified "
           "stability certificate");
  cli.flag("watchdog", "false",
           "run the online watchdog's decision rule over each trace's "
           "occupancy series and cross-check it against the certificate");
  add_jobs_flag(cli);
  add_metrics_flags(cli);
  cli.positionals("run.trace...", "run traces to verify");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string format = cli.get("format");
    AQT_REQUIRE(format == "human" || format == "json",
                "unknown --format '" << format << "' (human or json)");
    const bool require_cert = cli.get_bool("require-certificate");
    const std::vector<std::string>& files = cli.positional_args();
    AQT_REQUIRE(!files.empty(), "no run traces given (see --help)");
    AQT_REQUIRE(cli.get("certificate").empty() || files.size() == 1,
                "--certificate expects exactly one trace");

    // Traces verify independently on the run-pool workers; reports land in
    // argument order, so the output never depends on --jobs.
    std::vector<VerifyReport> reports(files.size());
    std::vector<StabilityCertificate> certs(files.size());
    const std::vector<std::string> errors = parallel_for_each(
        files.size(), get_jobs(cli),
        [&](std::size_t i) {  // aqt-audit: allow(AUD010) -- joins on return
          // aqt-audit: allow(AUD008) -- slot i has exactly one writer
          reports[i] = verify_file(files[i]);
          // aqt-audit: allow(AUD008) -- slot i has exactly one writer
          certs[i] = make_stability_certificate(reports[i]);
        });
    bool all_ok = true;
    for (std::size_t i = 0; i < files.size(); ++i) {
      AQT_REQUIRE(errors[i].empty(), "" << errors[i]);
      all_ok = all_ok && reports[i].ok();
      if (require_cert)
        all_ok = all_ok && certs[i].applicable && certs[i].verified;
    }

    const std::string out =
        format == "json" ? to_json(reports) : to_human(reports);
    std::fputs(out.c_str(), stdout);
    if (format == "json") std::fputc('\n', stdout);
    if (format == "human")
      for (std::size_t i = 0; i < certs.size(); ++i)
        if (certs[i].kind != CertificateKind::kNone || require_cert)
          std::fputs(certs[i].text().c_str(), stdout);

    // --watchdog: replay the online decision rule (obs/watchdog.hpp
    // analyze_series) over each trace's occupancy series and compare with
    // the theorem-backed certificate.  A *verified* certificate that the
    // watchdog contradicts is a hard disagreement and fails the run; an
    // inapplicable certificate leaves nothing to contradict.
    std::uint64_t watchdog_flags = 0;
    std::uint64_t watchdog_disagreements = 0;
    if (cli.get_bool("watchdog")) {
      for (std::size_t i = 0; i < reports.size(); ++i) {
        const obs::WatchdogCheck check =
            obs::analyze_series(reports[i].occupancy);
        const bool flagged =
            check.verdict == obs::WatchdogVerdict::kGrowthSuspected;
        if (flagged) ++watchdog_flags;
        const bool cert_growth =
            certs[i].kind == CertificateKind::kInstabilityWitness;
        const bool cert_decided = certs[i].applicable && certs[i].verified;
        const bool disagree =
            cert_decided && (check.verdict != obs::WatchdogVerdict::kUndecided)
                ? flagged != cert_growth
                : false;
        if (disagree) {
          ++watchdog_disagreements;
          all_ok = false;
        }
        std::printf(
            "watchdog %s: %s (slope %.4g pkts/step, ratio %.4g) vs "
            "certificate %s%s\n",
            reports[i].file.c_str(), to_string(check.verdict), check.slope,
            check.ratio, certificate_kind_name(certs[i].kind),
            disagree ? " -- DISAGREEMENT" : "");
      }
    }

    if (!cli.get("metrics-out").empty() ||
        !cli.get("metrics-prom").empty() ||
        !cli.get("metrics-csv").empty()) {
      obs::MetricRegistry reg;
      std::uint64_t findings = 0;
      std::uint64_t certs_verified = 0;
      for (std::size_t i = 0; i < reports.size(); ++i) {
        findings += reports[i].findings.size();
        if (certs[i].applicable && certs[i].verified) ++certs_verified;
        const std::string& file = reports[i].file;
        reg.counter("aqt_verify_trace_steps_total", "Steps verified per trace",
                    "trace", file)
            .set(static_cast<std::uint64_t>(reports[i].steps));
        reg.counter("aqt_verify_trace_findings_total",
                    "Rule violations per trace", "trace", file)
            .set(reports[i].findings.size());
        reg.gauge("aqt_verify_trace_max_wait_steps",
                  "Max per-buffer waiting time per trace", "trace", file)
            .set(static_cast<double>(reports[i].max_wait));
      }
      reg.counter("aqt_verify_traces_total", "Run traces verified")
          .set(reports.size());
      reg.counter("aqt_verify_findings_total",
                  "Rule violations across all traces")
          .set(findings);
      reg.counter("aqt_verify_certificates_verified_total",
                  "Applicable stability certificates that verified")
          .set(certs_verified);
      reg.gauge("aqt_verify_ok", "1 when every trace is clean, else 0")
          .set(all_ok ? 1.0 : 0.0);
      if (cli.get_bool("watchdog")) {
        reg.counter("aqt_verify_watchdog_flags_total",
                    "Traces the offline watchdog rule flagged as growing")
            .set(watchdog_flags);
        reg.counter("aqt_verify_watchdog_disagreements_total",
                    "Watchdog verdicts contradicting a verified certificate")
            .set(watchdog_disagreements);
      }
      obs::export_cli_metrics(cli, reg, "aqt-verify");
    }

    if (!cli.get("certificate").empty()) {
      std::ofstream cert_out(cli.get("certificate"));
      AQT_REQUIRE(static_cast<bool>(cert_out),
                  "cannot open " << cli.get("certificate"));
      cert_out << certs.front().text();
      std::printf("certificate written to %s\n",
                  cli.get("certificate").c_str());
    }
    return all_ok ? 0 : 1;
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "aqt-verify: %s\n", e.what());
    return 2;
  }
}
