// aqt-lint: static validation of scenario specs before any simulation.
//
// Checks everything statically decidable about a scenario file (see
// linter.hpp): topology parse and gadget wiring, protocol existence, route
// resolution/contiguity/simplicity, declared (w, r) and rate-r feasibility
// of the scripted injections (reroute suffixes charged at the target's
// injection time), and the static Lemma 3.3 reroute preconditions.
//
//   aqt-lint scenario.aqts ...            # human-readable report
//   aqt-lint --format=json scenario.aqts  # machine-readable report
//
// Exit codes: 0 = every scenario clean, 1 = findings, 2 = usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "aqt/lint/linter.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("aqt-lint", "static scenario/topology/adversary spec checker");
  cli.flag("format", "human", "report format: human or json");
  add_jobs_flag(cli);
  add_metrics_flags(cli);
  cli.positionals("scenario.aqts...", "scenario files to validate");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string format = cli.get("format");
    AQT_REQUIRE(format == "human" || format == "json",
                "unknown --format '" << format << "' (human or json)");
    const std::vector<std::string>& files = cli.positional_args();
    AQT_REQUIRE(!files.empty(), "no scenario files given (see --help)");

    // Scenarios lint independently on the run-pool workers; reports land
    // in argument order, so the output never depends on --jobs.
    std::vector<LintReport> reports(files.size());
    const std::vector<std::string> errors = parallel_for_each(
        files.size(), get_jobs(cli),
        [&](std::size_t i) {  // aqt-audit: allow(AUD010) -- joins on return
          // aqt-audit: allow(AUD008) -- slot i has exactly one writer
          reports[i] = lint_file(files[i]);
        });
    bool all_ok = true;
    for (std::size_t i = 0; i < files.size(); ++i) {
      AQT_REQUIRE(errors[i].empty(), "" << errors[i]);
      all_ok = all_ok && reports[i].ok();
    }
    const std::string out =
        format == "json" ? to_json(reports) : to_human(reports);
    std::fputs(out.c_str(), stdout);
    if (format == "json") std::fputc('\n', stdout);

    if (!cli.get("metrics-out").empty() ||
        !cli.get("metrics-prom").empty() ||
        !cli.get("metrics-csv").empty()) {
      obs::MetricRegistry reg;
      std::uint64_t findings = 0;
      std::uint64_t injections = 0;
      std::uint64_t reroutes = 0;
      for (const LintReport& rep : reports) {
        findings += rep.findings.size();
        injections += rep.injections;
        reroutes += rep.reroutes;
        reg.counter("aqt_lint_file_findings_total", "Findings per scenario",
                    "scenario", rep.file)
            .set(rep.findings.size());
      }
      reg.counter("aqt_lint_scenarios_total", "Scenario files linted")
          .set(reports.size());
      reg.counter("aqt_lint_findings_total", "Findings across all scenarios")
          .set(findings);
      reg.counter("aqt_lint_injections_total",
                  "Scripted injections across all scenarios")
          .set(injections);
      reg.counter("aqt_lint_reroutes_total",
                  "Scripted reroutes across all scenarios")
          .set(reroutes);
      reg.gauge("aqt_lint_ok", "1 when every scenario is clean, else 0")
          .set(all_ok ? 1.0 : 0.0);
      obs::export_cli_metrics(cli, reg, "aqt-lint");
    }
    return all_ok ? 0 : 1;
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "aqt-lint: %s\n", e.what());
    return 2;
  }
}
