// aqt-fuzz: randomized differential testing of the engine against the
// independent reference simulator.
//
// Generates random topologies, random injection scripts, and random legal
// reroutes; runs both simulators in lockstep for every deterministic
// protocol; and reports the first observable divergence (queue contents in
// forwarding order, absorption counts).  Exit code 0 means no divergence.
//
//   aqt-fuzz [--trials 200] [--steps 80] [--seed 1]
#include <cstdio>
#include <string>
#include <vector>

#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/reference.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/rng.hpp"

namespace {

using namespace aqt;

/// Random simple forward route of up to `max_len` edges.
Route random_route(const Graph& g, Rng& rng, std::size_t max_len) {
  Route route;
  std::vector<bool> visited(g.node_count(), false);
  const EdgeId start = static_cast<EdgeId>(rng.below(g.edge_count()));
  route.push_back(start);
  visited[g.tail(start)] = visited[g.head(start)] = true;
  while (route.size() < max_len && !rng.chance(0.3)) {
    const auto& outs = g.out_edges(g.head(route.back()));
    Route options;
    for (EdgeId e : outs)
      if (!visited[g.head(e)]) options.push_back(e);
    if (options.empty()) break;
    const EdgeId pick = options[rng.below(options.size())];
    visited[g.head(pick)] = true;
    route.push_back(pick);
  }
  return route;
}

ReferenceSnapshot engine_snapshot(const Engine& eng) {
  ReferenceSnapshot snap;
  snap.now = eng.now();
  snap.injected = eng.total_injected();
  snap.absorbed = eng.total_absorbed();
  snap.queue_tags.resize(eng.graph().edge_count());
  for (EdgeId e = 0; e < eng.graph().edge_count(); ++e)
    for (const BufferEntry& be : eng.buffer(e))
      snap.queue_tags[e].push_back(eng.packet(be.packet).tag);
  return snap;
}

bool equal(const ReferenceSnapshot& a, const ReferenceSnapshot& b) {
  return a.now == b.now && a.injected == b.injected &&
         a.absorbed == b.absorbed && a.queue_tags == b.queue_tags;
}

Graph random_topology(Rng& rng) {
  switch (rng.below(5)) {
    case 0:
      return make_grid(rng.range(2, 4), rng.range(2, 4));
    case 1:
      return make_ring(rng.range(3, 10));
    case 2:
      return make_bidirectional_ring(rng.range(3, 7));
    case 3:
      return make_torus(rng.range(2, 4), rng.range(2, 4));
    default:
      return make_random_dag(rng.range(5, 14), 0.25, rng);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("aqt-fuzz", "differential fuzzing: Engine vs ReferenceSimulator");
  cli.flag("trials", "200", "random scenarios to run");
  cli.flag("steps", "80", "steps per scenario");
  cli.flag("seed", "1", "master seed");
  if (!cli.parse(argc, argv)) return 0;

  const std::int64_t trials = cli.get_int("trials");
  const Time steps = cli.get_int("steps");
  Rng master(static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::vector<std::string> protocols = {"FIFO", "LIFO", "LIS", "NIS",
                                              "FTG", "NTG", "FFS", "NTS"};

  std::uint64_t checks = 0;
  for (std::int64_t trial = 0; trial < trials; ++trial) {
    Rng rng = master.split();
    const Graph g = random_topology(rng);
    const std::string proto = protocols[rng.below(protocols.size())];
    const bool historic = make_protocol(proto)->is_historic();

    auto protocol = make_protocol(proto);
    Engine eng(g, *protocol);
    ReferenceSimulator ref(g, proto);

    // Shared initial configuration.
    const std::int64_t initial = rng.range(0, 6);
    for (std::int64_t i = 0; i < initial; ++i) {
      const Route route = random_route(g, rng, 4);
      eng.add_initial_packet(route, static_cast<std::uint64_t>(1000 + i));
      ref.add_initial_packet(route, static_cast<std::uint64_t>(1000 + i));
    }

    struct Driver final : Adversary {
      std::vector<Injection> injections;
      std::vector<Reroute> reroutes;
      void step(Time, const Engine&, AdversaryStep& out) override {
        for (auto& inj : injections) out.injections.push_back(inj);
        for (auto& rr : reroutes) out.reroutes.push_back(rr);
        injections.clear();
        reroutes.clear();
      }
    } driver;

    std::uint64_t tag = 1;
    for (Time t = 1; t <= steps; ++t) {
      // Random injections.
      std::vector<Injection> step_inj;
      const std::int64_t count = rng.range(0, 2);
      for (std::int64_t i = 0; i < count; ++i)
        step_inj.push_back(Injection{random_route(g, rng, 4), tag++});
      driver.injections = step_inj;

      // Occasionally one random legal reroute (historic protocols only):
      // pick a buffered packet that is not a buffer front.
      std::vector<ReferenceSimulator::RefReroute> ref_rr;
      if (historic && rng.chance(0.3)) {
        std::vector<PacketId> candidates;
        for (EdgeId e = 0; e < g.edge_count(); ++e) {
          bool first = true;
          for (const BufferEntry& be : eng.buffer(e)) {
            if (!first) candidates.push_back(be.packet);
            first = false;
          }
        }
        if (!candidates.empty()) {
          const PacketId id = candidates[rng.below(candidates.size())];
          const Packet& p = eng.packet(id);
          std::vector<bool> used(g.node_count(), false);
          for (std::size_t h = 0; h <= p.hop; ++h) {
            used[g.tail(p.route[h])] = true;
            used[g.head(p.route[h])] = true;
          }
          Route suffix;
          NodeId at = g.head(p.route[p.hop]);
          for (int len = 0; len < 3; ++len) {
            Route options;
            for (EdgeId e : g.out_edges(at))
              if (!used[g.head(e)]) options.push_back(e);
            if (options.empty()) break;
            const EdgeId pick = options[rng.below(options.size())];
            suffix.push_back(pick);
            at = g.head(pick);
            used[at] = true;
          }
          driver.reroutes.push_back(Reroute{id, suffix});
          ref_rr.push_back(
              ReferenceSimulator::RefReroute{p.ordinal, suffix});
        }
      }

      eng.step(&driver);
      ref.step(step_inj, ref_rr);
      ++checks;
      if (!equal(engine_snapshot(eng), ref.snapshot())) {
        std::printf("DIVERGENCE: trial %lld protocol %s step %lld\n",
                    static_cast<long long>(trial), proto.c_str(),
                    static_cast<long long>(t));
        return 1;
      }
    }
  }
  std::printf("aqt-fuzz: %lld trials x %lld steps, %llu lockstep "
              "comparisons, no divergence\n",
              static_cast<long long>(trials), static_cast<long long>(steps),
              static_cast<unsigned long long>(checks));
  return 0;
}
