// aqt-fuzz: randomized differential testing of the engine against the
// independent reference simulator, plus randomized validation of the
// aqt-lint scenario checker.
//
// Differential phase: generates random topologies, random injection
// scripts, and random legal reroutes; runs both simulators in lockstep for
// every deterministic protocol; and reports the first observable
// divergence (queue contents in forwarding order, absorption counts).
//
// Every differential trial additionally records its engine run as a run
// trace and feeds it through aqt-verify's independent model: the trial
// fails if the N-version verifier finds any rule violation in a run the
// lockstep comparison accepted.
//
// Lint phase (--lint-trials): generates random *valid* scenarios,
// round-trips them through the textual format, and requires the linter to
// accept them; then applies one targeted mutation (dangling edge name,
// non-simple route, infeasible window, reroute under a non-historic
// protocol) and requires the linter to reject with the matching finding
// code.
//
// Parser phase (--trace-trials): mutates known-valid run traces and
// adversary traces (truncation, byte flips, line deletion/duplication,
// garbage insertion) and requires both hardened parsers to either accept
// the result or reject it with a diagnostic PreconditionError — never
// crash, abort, or throw anything else.
//
// Observer-effect phase (--obs-trials): runs the same scripted trial three
// times — bare; with the full observability stack (step-phase profiler +
// JSONL event stream + flight-recorder timeseries + stability watchdog);
// and with the Perfetto phase-trace recorder — and requires byte-identical
// run traces (same content hash).  Observation must never perturb a run.
//
// Exit code 0 means no divergence, no lint misjudgement, no parser
// misbehaviour, and no observer effect.
//
// The differential and observer-effect phases honor --jobs: trials are
// independent cells (each derives its RNG from a pre-split per-trial
// stream), executed through the deterministic run-pool primitives, so the
// output and verdict are byte-identical for any --jobs value.
//
//   aqt-fuzz [--trials 200] [--steps 80] [--lint-trials 100]
//            [--trace-trials 150] [--obs-trials 40] [--seed 1] [--jobs 4]
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/reference.hpp"
#include "aqt/lint/linter.hpp"
#include "aqt/lint/scenario.hpp"
#include "aqt/obs/events.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/profiler.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/obs/timeseries.hpp"
#include "aqt/obs/tracing.hpp"
#include "aqt/obs/watchdog.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/topology/spec.hpp"
#include "aqt/trace/run_trace.hpp"
#include "aqt/trace/trace.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/rng.hpp"
#include "aqt/verify/verifier.hpp"

namespace {

using namespace aqt;

/// Random simple forward route of up to `max_len` edges.
Route random_route(const Graph& g, Rng& rng, std::size_t max_len) {
  Route route;
  std::vector<bool> visited(g.node_count(), false);
  const EdgeId start = static_cast<EdgeId>(rng.below(g.edge_count()));
  route.push_back(start);
  visited[g.tail(start)] = visited[g.head(start)] = true;
  while (route.size() < max_len && !rng.chance(0.3)) {
    const auto& outs = g.out_edges(g.head(route.back()));
    Route options;
    for (EdgeId e : outs)
      if (!visited[g.head(e)]) options.push_back(e);
    if (options.empty()) break;
    const EdgeId pick = options[rng.below(options.size())];
    visited[g.head(pick)] = true;
    route.push_back(pick);
  }
  return route;
}

ReferenceSnapshot engine_snapshot(const Engine& eng) {
  ReferenceSnapshot snap;
  snap.now = eng.now();
  snap.injected = eng.total_injected();
  snap.absorbed = eng.total_absorbed();
  snap.queue_tags.resize(eng.graph().edge_count());
  for (EdgeId e = 0; e < eng.graph().edge_count(); ++e)
    for (const BufferEntry& be : eng.buffer(e).ordered_entries())
      snap.queue_tags[e].push_back(eng.packet_meta(be.packet).tag);
  return snap;
}

bool equal(const ReferenceSnapshot& a, const ReferenceSnapshot& b) {
  return a.now == b.now && a.injected == b.injected &&
         a.absorbed == b.absorbed && a.queue_tags == b.queue_tags;
}

Graph random_topology(Rng& rng) {
  switch (rng.below(5)) {
    case 0:
      return make_grid(rng.range(2, 4), rng.range(2, 4));
    case 1:
      return make_ring(rng.range(3, 10));
    case 2:
      return make_bidirectional_ring(rng.range(3, 7));
    case 3:
      return make_torus(rng.range(2, 4), rng.range(2, 4));
    default:
      return make_random_dag(rng.range(5, 14), 0.25, rng);
  }
}

bool has_code(const LintReport& rep, const std::string& code) {
  for (const LintFinding& f : rep.findings)
    if (f.code == code) return true;
  return false;
}

/// Random-scenario validation of the linter: valid scenarios must round-trip
/// through the textual format and be accepted; one targeted mutation must be
/// rejected with the matching finding code.  Returns trials that failed.
std::int64_t run_lint_fuzz(std::int64_t trials, Rng& master) {
  const std::vector<std::string> specs = {"grid:3x3", "ring:6", "bidiring:4",
                                          "torus:3x3", "lps:4x2"};
  std::int64_t failures = 0;
  for (std::int64_t trial = 0; trial < trials; ++trial) {
    Rng rng = master.split();
    const std::string& spec = specs[rng.below(specs.size())];
    const Graph g = parse_topology_spec(spec).graph;

    Scenario sc;
    sc.topology = spec;
    sc.protocol = "FIFO";
    Time t = 0;
    const std::int64_t count = rng.range(1, 6);
    for (std::int64_t i = 0; i < count; ++i) {
      t += rng.range(1, 5);
      ScenarioInjection inj;
      inj.t = t;
      for (const EdgeId e : random_route(g, rng, 4))
        inj.route.push_back(g.edge(e).name);
      inj.tag = static_cast<std::uint64_t>(i);
      sc.injections.push_back(std::move(inj));
    }

    // Round-trip a known-valid scenario; the linter must accept it.
    std::istringstream is(to_text(sc));
    const Scenario round_tripped = parse_scenario(is, "fuzz");
    if (!lint_scenario(round_tripped, "fuzz").ok()) {
      std::printf("LINT FALSE POSITIVE: trial %lld rejected a valid "
                  "scenario on %s\n",
                  static_cast<long long>(trial), spec.c_str());
      ++failures;
      continue;
    }

    // One targeted mutation; the linter must reject with the right code.
    Scenario bad = sc;
    std::string expect1;
    std::string expect2;  // Alternative acceptable code ("" = none).
    switch (rng.below(4)) {
      case 0: {  // Dangling edge name.
        bad.injections[rng.below(bad.injections.size())].route.push_back(
            "no_such_edge");
        expect1 = "dangling-edge";
        break;
      }
      case 1: {  // Re-crossing the first edge: non-simple or discontiguous.
        auto& route = bad.injections[rng.below(bad.injections.size())].route;
        route.push_back(route.front());
        expect1 = "route-not-simple";
        expect2 = "route-not-path";
        break;
      }
      case 2: {  // Zero-budget window over a nonempty script.
        bad.window_w = 1;
        bad.window_r = Rat(0);
        expect1 = "window-infeasible";
        break;
      }
      default: {  // Reroute under a non-historic protocol.
        bad.protocol = "NTG";
        ScenarioReroute rr;
        rr.t = bad.injections.front().t + 1;
        rr.packet_ordinal = 0;
        rr.suffix.push_back(bad.injections.front().route.front());
        bad.reroutes.push_back(std::move(rr));
        expect1 = "reroute-nonhistoric";
        break;
      }
    }
    std::istringstream bad_is(to_text(bad));
    const LintReport rep =
        lint_scenario(parse_scenario(bad_is, "fuzz"), "fuzz");
    if (rep.ok() || (!has_code(rep, expect1) &&
                     (expect2.empty() || !has_code(rep, expect2)))) {
      std::printf("LINT FALSE NEGATIVE: trial %lld on %s expected %s%s%s\n",
                  static_cast<long long>(trial), spec.c_str(),
                  expect1.c_str(), expect2.empty() ? "" : " or ",
                  expect2.c_str());
      ++failures;
    }
  }
  return failures;
}

/// Minimal deterministic adversary for corpus generation: replays a queue
/// of per-call injections.
struct QueueDriver final : Adversary {
  std::vector<Injection> pending;
  void step(Time, const Engine&, AdversaryStep& out) override {
    for (auto& inj : pending) out.injections.push_back(inj);
    pending.clear();
  }
};

/// One valid (run trace, adversary trace) pair plus the graph needed to
/// re-parse the adversary trace.
struct TraceCorpusEntry {
  Graph graph;
  std::string run_text;
  std::string adversary_text;
};

TraceCorpusEntry make_trace_corpus_entry(const std::string& spec,
                                         const std::string& proto,
                                         Rng& rng) {
  TraceCorpusEntry entry;
  entry.graph = parse_topology_spec(spec).graph;
  auto protocol = make_protocol(proto);
  RunTraceMeta meta;
  meta.protocol = proto;
  meta.seed = 7;
  std::ostringstream run_os;
  RunTraceWriter writer(run_os, entry.graph, meta);
  EngineConfig cfg;
  cfg.sinks.trace = &writer;
  Engine eng(entry.graph, *protocol, cfg);

  Trace adversary_trace;
  QueueDriver driver;
  std::uint64_t tag = 1;
  for (Time t = 1; t <= 12; ++t) {
    if (rng.chance(0.7)) {
      const Injection inj{random_route(entry.graph, rng, 3), tag++};
      adversary_trace.record_injection(t, inj);
      driver.pending.push_back(inj);
    }
    eng.step(&driver);
  }
  eng.drain(64);
  writer.finish(eng.total_injected(), eng.total_absorbed());
  entry.run_text = run_os.str();
  std::ostringstream adv_os;
  adversary_trace.save(adv_os, entry.graph);
  entry.adversary_text = adv_os.str();
  return entry;
}

std::string mutate_text(const std::string& text, Rng& rng) {
  std::string out = text;
  const auto split = [](const std::string& s) {
    std::vector<std::string> lines;
    std::istringstream is(s);
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
    return lines;
  };
  const auto join = [](const std::vector<std::string>& lines) {
    std::string s;
    for (const std::string& l : lines) {
      s += l;
      s += '\n';
    }
    return s;
  };
  switch (rng.below(5)) {
    case 0:  // Truncate mid-stream.
      out = out.substr(0, rng.below(out.size() + 1));
      break;
    case 1:  // Flip one byte.
      if (!out.empty())
        out[rng.below(out.size())] = static_cast<char>(rng.below(256));
      break;
    case 2: {  // Delete a line.
      auto lines = split(out);
      if (!lines.empty())
        lines.erase(lines.begin() +
                    static_cast<std::ptrdiff_t>(rng.below(lines.size())));
      out = join(lines);
      break;
    }
    case 3: {  // Duplicate a line.
      auto lines = split(out);
      if (!lines.empty()) {
        const std::size_t i = rng.below(lines.size());
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i),
                     lines[i]);
      }
      out = join(lines);
      break;
    }
    default: {  // Insert a garbage line.
      auto lines = split(out);
      lines.insert(
          lines.begin() + static_cast<std::ptrdiff_t>(
                              rng.below(lines.size() + 1)),
          "Z 18446744073709551616 garbage -1");
      out = join(lines);
      break;
    }
  }
  return out;
}

/// Hardened-parser fuzz: mutated traces must parse or be rejected with a
/// PreconditionError — any crash, abort, or foreign exception is a
/// failure.  Returns the number of failing trials.
std::int64_t run_trace_fuzz(std::int64_t trials, Rng& master) {
  std::vector<TraceCorpusEntry> corpus;
  {
    Rng rng = master.split();
    corpus.push_back(make_trace_corpus_entry("ring:6", "FIFO", rng));
    corpus.push_back(make_trace_corpus_entry("grid:3x3", "LIS", rng));
  }
  // The unmutated corpus must be clean: parse, verify with no findings,
  // and round-trip through the adversary-trace loader.
  for (const TraceCorpusEntry& entry : corpus) {
    std::istringstream run_is(entry.run_text);
    const VerifyReport rep =
        verify_run_trace(parse_run_trace(run_is, "corpus"), "corpus");
    if (!rep.ok()) {
      std::printf("TRACE CORPUS NOT CLEAN: [%s] %s\n",
                  rep.findings[0].code.c_str(),
                  rep.findings[0].message.c_str());
      return 1;
    }
    std::istringstream adv_is(entry.adversary_text);
    (void)Trace::load(adv_is, entry.graph);
  }

  std::int64_t failures = 0;
  for (std::int64_t trial = 0; trial < trials; ++trial) {
    Rng rng = master.split();
    const TraceCorpusEntry& entry = corpus[rng.below(corpus.size())];
    const bool run_kind = rng.chance(0.6);
    const std::string mutated =
        mutate_text(run_kind ? entry.run_text : entry.adversary_text, rng);
    try {
      if (run_kind) {
        std::istringstream is(mutated);
        const RunTrace tr = parse_run_trace(is, "fuzz");
        // Whatever parses must also verify without crashing; findings are
        // the expected outcome for a tampered trace.
        (void)verify_run_trace(tr, "fuzz");
      } else {
        std::istringstream is(mutated);
        (void)Trace::load(is, entry.graph);
      }
    } catch (const PreconditionError&) {
      // The hardened-parser contract: diagnostic rejection.
    } catch (const std::exception& e) {
      std::printf("PARSER MISBEHAVIOUR: trial %lld threw %s\n",
                  static_cast<long long>(trial), e.what());
      ++failures;
    }
  }
  return failures;
}

/// How one scripted observer-effect run is instrumented.
enum class ObsStack {
  kBare,       ///< No observers.
  kFullObs,    ///< Profiler + events + timeseries + watchdog.
  kPhaseTrace  ///< Perfetto phase-trace recorder + timeseries fanout.
};

/// Runs one scripted trial and returns the run-trace content hash.  Every
/// ObsStack variant must produce the same hash: observation never perturbs
/// a run.
std::uint64_t scripted_run_hash(const Graph& g, const std::string& proto,
                                const std::vector<std::vector<Injection>>& script,
                                ObsStack stack) {
  auto protocol = make_protocol(proto);
  RunTraceMeta meta;
  meta.protocol = proto;
  meta.seed = 11;
  std::ostringstream trace_os;
  RunTraceWriter writer(trace_os, g, meta);
  obs::StepProfiler profiler;
  std::ostringstream events_os;
  obs::JsonlEventWriter events(events_os, g);
  obs::TimeseriesConfig ts_cfg;
  ts_cfg.capacity = 16;  // Tiny: forces compactions on longer scripts.
  if (g.edge_count() > 0) ts_cfg.watched.push_back(0);
  obs::TimeseriesRecorder timeseries(ts_cfg, &g);
  obs::WatchdogConfig wd_cfg;
  wd_cfg.check_every = 8;
  wd_cfg.window = 8;
  wd_cfg.min_samples = 4;
  obs::StabilityWatchdog watchdog(wd_cfg);
  obs::StepSampleFanout fanout;
  obs::TraceEventLog trace_log;
  obs::PhaseTraceRecorder::Config pt_cfg;
  pt_cfg.stride = 2;
  obs::PhaseTraceRecorder phase_trace(trace_log, pt_cfg);
  EngineConfig cfg;
  cfg.sinks.trace = &writer;
  if (stack == ObsStack::kFullObs) {
    cfg.sinks.profile = &profiler;
    cfg.sinks.events = &events;
    fanout.add(&timeseries).add(&watchdog);
    cfg.sinks.samples = fanout.as_sink();
  } else if (stack == ObsStack::kPhaseTrace) {
    cfg.sinks.profile = &phase_trace;
    fanout.add(&timeseries);
    cfg.sinks.samples = fanout.as_sink();
  }
  Engine eng(g, *protocol, cfg);
  QueueDriver driver;
  for (const auto& step_inj : script) {
    driver.pending = step_inj;
    eng.step(&driver);
  }
  eng.drain(256);
  writer.finish(eng.total_injected(), eng.total_absorbed());
  if (stack == ObsStack::kFullObs) {
    AQT_CHECK(events.lines_written() > 0 || eng.total_injected() == 0,
              "observed run emitted no events");
    AQT_CHECK(!timeseries.rows().empty(), "observed run recorded no rows");
  }
  if (stack == ObsStack::kPhaseTrace)
    AQT_CHECK(trace_log.size() > 0, "traced run logged no spans");
  return writer.content_hash();
}

/// Observer-effect fuzz: enabling the observability stack must leave the
/// recorded run byte-identical.  Trials run on `jobs` workers (per-trial
/// RNG streams are pre-split serially, so the verdict is jobs-invariant);
/// failures print after the batch, in trial order.  Returns the number of
/// failing trials.
std::int64_t run_obs_fuzz(std::int64_t trials, Rng& master, unsigned jobs) {
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(trials));
  for (std::int64_t trial = 0; trial < trials; ++trial)
    streams.push_back(master.split());

  std::vector<std::string> messages(streams.size());
  const std::vector<std::string> errors = parallel_for_each(
      streams.size(), jobs,
      [&](std::size_t trial) {  // aqt-audit: allow(AUD010) -- joins on return
        Rng rng = streams[trial];
        const Graph g = random_topology(rng);
        const std::vector<std::string> protocols = {"FIFO", "LIFO", "LIS",
                                                    "NTG"};
        const std::string proto = protocols[rng.below(protocols.size())];
        std::vector<std::vector<Injection>> script;
        std::uint64_t tag = 1;
        const Time steps = rng.range(10, 40);
        for (Time t = 0; t < steps; ++t) {
          std::vector<Injection> step_inj;
          const std::int64_t count = rng.range(0, 2);
          for (std::int64_t i = 0; i < count; ++i)
            step_inj.push_back(Injection{random_route(g, rng, 4), tag++});
          script.push_back(std::move(step_inj));
        }
        const std::uint64_t bare =
            scripted_run_hash(g, proto, script, ObsStack::kBare);
        const std::uint64_t observed =
            scripted_run_hash(g, proto, script, ObsStack::kFullObs);
        const std::uint64_t traced =
            scripted_run_hash(g, proto, script, ObsStack::kPhaseTrace);
        if (bare != observed || bare != traced) {
          char buf[200];
          std::snprintf(buf, sizeof buf,
                        "OBSERVER EFFECT: trial %lld protocol %s trace hash "
                        "%016llx (bare) vs %016llx (observed) vs %016llx "
                        "(phase-traced)",
                        static_cast<long long>(trial), proto.c_str(),
                        static_cast<unsigned long long>(bare),
                        static_cast<unsigned long long>(observed),
                        static_cast<unsigned long long>(traced));
          // aqt-audit: allow(AUD008) -- slot trial has exactly one writer
          messages[trial] = buf;
        }
      });

  std::int64_t failures = 0;
  for (std::size_t trial = 0; trial < messages.size(); ++trial) {
    if (!errors[trial].empty()) messages[trial] = errors[trial];
    if (messages[trial].empty()) continue;
    std::printf("%s\n", messages[trial].c_str());
    ++failures;
  }
  return failures;
}

/// One engine-vs-reference lockstep trial's outcome.
struct TrialOutcome {
  std::uint64_t checks = 0;  ///< Per-step snapshot comparisons made.
  std::string message;       ///< Nonempty = failure description.
};

/// One differential trial: random topology/protocol/script, engine and
/// reference stepped in lockstep with invariants audited, the recorded run
/// fed through the N-version verifier.  Self-contained (owns its RNG and
/// all state), so trials run on any pool worker with identical results.
TrialOutcome run_differential_trial(Rng rng, std::int64_t trial,
                                    Time steps) {
  static const std::vector<std::string> protocols = {
      "FIFO", "LIFO", "LIS", "NIS", "FTG", "NTG", "FFS", "NTS"};
  TrialOutcome out;
  const Graph g = random_topology(rng);
  const std::string proto = protocols[rng.below(protocols.size())];
  const bool historic = make_protocol(proto)->is_historic();

  auto protocol = make_protocol(proto);
  // The auditor re-checks every model invariant after each step, and the
  // whole run is recorded and fed to the N-version verifier below, so
  // each fuzz trial stress-tests the invariant layer, the trace format,
  // and the offline model all at once.
  RunTraceMeta meta;
  meta.protocol = proto;
  meta.seed = static_cast<std::uint64_t>(trial);
  std::ostringstream trace_os;
  RunTraceWriter writer(trace_os, g, meta);
  EngineConfig eng_cfg;
  eng_cfg.audit_invariants = true;
  eng_cfg.sinks.trace = &writer;
  Engine eng(g, *protocol, eng_cfg);
  ReferenceSimulator ref(g, proto);

  // Shared initial configuration.
  const std::int64_t initial = rng.range(0, 6);
  for (std::int64_t i = 0; i < initial; ++i) {
    const Route route = random_route(g, rng, 4);
    eng.add_initial_packet(route, static_cast<std::uint64_t>(1000 + i));
    ref.add_initial_packet(route, static_cast<std::uint64_t>(1000 + i));
  }

  struct Driver final : Adversary {
    std::vector<Injection> injections;
    std::vector<Reroute> reroutes;
    void step(Time, const Engine&, AdversaryStep& out_step) override {
      for (auto& inj : injections) out_step.injections.push_back(inj);
      for (auto& rr : reroutes) out_step.reroutes.push_back(rr);
      injections.clear();
      reroutes.clear();
    }
  } driver;

  std::uint64_t tag = 1;
  for (Time t = 1; t <= steps; ++t) {
    // Random injections.
    std::vector<Injection> step_inj;
    const std::int64_t count = rng.range(0, 2);
    for (std::int64_t i = 0; i < count; ++i)
      step_inj.push_back(Injection{random_route(g, rng, 4), tag++});
    driver.injections = step_inj;

    // Occasionally one random legal reroute (historic protocols only):
    // pick a buffered packet that is not a buffer front.
    std::vector<ReferenceSimulator::RefReroute> ref_rr;
    if (historic && rng.chance(0.3)) {
      std::vector<PacketId> candidates;
      for (EdgeId e = 0; e < g.edge_count(); ++e) {
        bool first = true;
        for (const BufferEntry& be : eng.buffer(e).ordered_entries()) {
          if (!first) candidates.push_back(be.packet);
          first = false;
        }
      }
      if (!candidates.empty()) {
        const PacketId id = candidates[rng.below(candidates.size())];
        const Packet& p = eng.packet(id);
        std::vector<bool> used(g.node_count(), false);
        for (std::size_t h = 0; h <= p.hop; ++h) {
          used[g.tail(p.route[h])] = true;
          used[g.head(p.route[h])] = true;
        }
        Route suffix;
        NodeId at = g.head(p.route[p.hop]);
        for (int len = 0; len < 3; ++len) {
          Route options;
          for (EdgeId e : g.out_edges(at))
            if (!used[g.head(e)]) options.push_back(e);
          if (options.empty()) break;
          const EdgeId pick = options[rng.below(options.size())];
          suffix.push_back(pick);
          at = g.head(pick);
          used[at] = true;
        }
        driver.reroutes.push_back(Reroute{id, suffix});
        ref_rr.push_back(ReferenceSimulator::RefReroute{
            eng.packet_meta(id).ordinal, suffix});
      }
    }

    eng.step(&driver);
    ref.step(step_inj, ref_rr);
    ++out.checks;
    if (!equal(engine_snapshot(eng), ref.snapshot())) {
      std::ostringstream msg;
      msg << "DIVERGENCE: trial " << trial << " protocol " << proto
          << " step " << t;
      out.message = msg.str();
      return out;
    }
  }

  writer.finish(eng.total_injected(), eng.total_absorbed());
  std::istringstream trace_is(trace_os.str());
  const VerifyReport vrep =
      verify_run_trace(parse_run_trace(trace_is, "trial"), "trial");
  if (!vrep.ok()) {
    std::ostringstream msg;
    msg << "TRACE VERIFICATION FAILURE: trial " << trial << " protocol "
        << proto << ": [" << vrep.findings[0].code << "] "
        << vrep.findings[0].message;
    out.message = msg.str();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("aqt-fuzz", "differential fuzzing: Engine vs ReferenceSimulator");
  cli.flag("trials", "200", "random scenarios to run");
  cli.flag("steps", "80", "steps per scenario");
  cli.flag("lint-trials", "100", "random scenarios for the aqt-lint check");
  cli.flag("trace-trials", "150",
           "mutated traces for the hardened-parser check");
  cli.flag("obs-trials", "40",
           "paired runs for the observer-effect check (obs on vs off)");
  add_seed_flag(cli);
  add_jobs_flag(cli);
  add_metrics_flags(cli);
  if (!cli.parse(argc, argv)) return 0;

  const std::int64_t trials = cli.get_int("trials");
  const Time steps = cli.get_int("steps");
  const unsigned jobs = get_jobs(cli);
  Rng master(get_seed(cli));

  // Differential phase on the run-pool: per-trial RNG streams are split
  // off the master serially (so the streams do not depend on --jobs), then
  // the self-contained trials execute on the worker pool.  Failures print
  // after the batch in trial order.
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(trials));
  for (std::int64_t trial = 0; trial < trials; ++trial)
    streams.push_back(master.split());
  std::vector<TrialOutcome> outcomes(streams.size());
  const std::vector<std::string> trial_errors = parallel_for_each(
      streams.size(), jobs,
      [&](std::size_t i) {  // aqt-audit: allow(AUD010) -- joins on return
        // aqt-audit: allow(AUD008) -- slot i has exactly one writer
        outcomes[i] = run_differential_trial(
            streams[i], static_cast<std::int64_t>(i), steps);
      });
  std::uint64_t checks = 0;
  bool diverged = false;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    checks += outcomes[i].checks;
    const std::string& msg =
        trial_errors[i].empty() ? outcomes[i].message : trial_errors[i];
    if (!msg.empty()) {
      std::printf("%s\n", msg.c_str());
      diverged = true;
    }
  }
  if (diverged) return 1;
  const std::int64_t lint_trials = cli.get_int("lint-trials");
  const std::int64_t lint_failures = run_lint_fuzz(lint_trials, master);
  if (lint_failures > 0) {
    std::printf("aqt-fuzz: %lld of %lld lint trials misjudged\n",
                static_cast<long long>(lint_failures),
                static_cast<long long>(lint_trials));
    return 1;
  }
  const std::int64_t trace_trials = cli.get_int("trace-trials");
  const std::int64_t trace_failures = run_trace_fuzz(trace_trials, master);
  if (trace_failures > 0) {
    std::printf("aqt-fuzz: %lld of %lld trace-parser trials misbehaved\n",
                static_cast<long long>(trace_failures),
                static_cast<long long>(trace_trials));
    return 1;
  }
  const std::int64_t obs_trials = cli.get_int("obs-trials");
  const std::int64_t obs_failures = run_obs_fuzz(obs_trials, master, jobs);
  if (obs_failures > 0) {
    std::printf("aqt-fuzz: %lld of %lld observer-effect trials perturbed "
                "the run\n",
                static_cast<long long>(obs_failures),
                static_cast<long long>(obs_trials));
    return 1;
  }

  if (!cli.get("metrics-out").empty() || !cli.get("metrics-prom").empty() ||
      !cli.get("metrics-csv").empty()) {
    obs::MetricRegistry reg;
    reg.counter("aqt_fuzz_differential_trials_total",
                "Engine-vs-reference lockstep trials")
        .set(static_cast<std::uint64_t>(trials));
    reg.counter("aqt_fuzz_lockstep_checks_total",
                "Per-step snapshot comparisons")
        .set(checks);
    reg.counter("aqt_fuzz_lint_trials_total", "Random aqt-lint trials")
        .set(static_cast<std::uint64_t>(lint_trials));
    reg.counter("aqt_fuzz_trace_trials_total",
                "Mutated-trace hardened-parser trials")
        .set(static_cast<std::uint64_t>(trace_trials));
    reg.counter("aqt_fuzz_obs_trials_total", "Observer-effect paired runs")
        .set(static_cast<std::uint64_t>(obs_trials));
    reg.gauge("aqt_fuzz_ok", "1 when every phase passed, else 0").set(1.0);
    obs::export_cli_metrics(cli, reg, "aqt-fuzz");
  }

  std::printf("aqt-fuzz: %lld trials x %lld steps, %llu lockstep "
              "comparisons (invariants audited, run traces verified), "
              "no divergence; %lld lint trials, no misjudgement; "
              "%lld trace-parser trials, no misbehaviour; "
              "%lld observer-effect trials, traces byte-identical\n",
              static_cast<long long>(trials), static_cast<long long>(steps),
              static_cast<unsigned long long>(checks),
              static_cast<long long>(lint_trials),
              static_cast<long long>(trace_trials),
              static_cast<long long>(obs_trials));
  return 0;
}
