// aqt-sim: general-purpose simulation driver.
//
// Pick a topology, a protocol, and an adversary from the command line — or
// run a .aqts scenario file verbatim; run for a number of steps; print the
// stability-relevant metrics and optionally dump the occupancy time series
// as CSV, verify rate feasibility, record the adversary schedule as a
// trace, record the *engine run* as aqt-verify evidence, re-run from the
// same seed to prove determinism, or checkpoint the final state.
//
// Examples:
//   aqt-sim --topology grid:5x5 --protocol FIFO
//           --adversary stochastic --w 12 --r 1/4 --d 4 --steps 20000
//   aqt-sim --scenario examples/scenarios/ring_convoy.aqts
//           --record-run out/ring_convoy.trace --replay-twice true
//   aqt-sim --topology ring:16 --protocol NTG --adversary convoy
//           --w 12 --r 1/3 --steps 5000 --audit true
//   aqt-sim --batch examples/scenarios --jobs 4
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "aqt/adversaries/lps.hpp"
#include "aqt/adversaries/bucket.hpp"
#include "aqt/adversaries/stochastic.hpp"
#include "aqt/analysis/bounds.hpp"
#include "aqt/core/checkpoint.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/core/stability.hpp"
#include "aqt/obs/events.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/profiler.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/obs/snapshot.hpp"
#include "aqt/obs/timeseries.hpp"
#include "aqt/obs/tracing.hpp"
#include "aqt/obs/watchdog.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/runner/run_spec.hpp"
#include "aqt/serve/registry.hpp"
#include "aqt/serve/result.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/topology/spec.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/trace/run_trace.hpp"
#include "aqt/trace/trace.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"
#include "aqt/verify/scenario_run.hpp"

namespace {

using namespace aqt;

/// Swallows bytes: the determinism re-run only needs the content hash, so
/// its trace is streamed into /dev/null-equivalent storage.
class NullBuf final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

/// --batch <dir>: run every .aqts scenario and every .json RunRequest in
/// the directory through the deterministic run-pool, honoring --jobs.  The
/// summary table is in sorted filename order (submission order), so output
/// is byte-identical for any --jobs value.  RunRequest files go through
/// the same serve::Registry compiler as aqt-serve jobs, so --results-dir
/// artifacts here are byte-identical to the served ones.
int run_batch(const Cli& cli) {
  namespace fs = std::filesystem;
  const std::string dir = cli.get("batch");
  AQT_REQUIRE(fs::is_directory(dir), "--batch needs a directory: " << dir);
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file() && (entry.path().extension() == ".aqts" ||
                                    entry.path().extension() == ".json"))
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  AQT_REQUIRE(!files.empty(), "no .aqts scenarios or .json requests in "
                                  << dir);

  const bool audit = cli.get_bool("audit");
  const Time cap = cli.get_int("steps");
  const serve::Registry registry;
  std::vector<RunSpec> specs;
  specs.reserve(files.size());
  for (const fs::path& path : files) {
    if (path.extension() == ".json") {
      std::ifstream in(path);
      AQT_REQUIRE(static_cast<bool>(in), "cannot open " << path.string());
      std::ostringstream text;
      text << in.rdbuf();
      const serve::RunRequest req =
          serve::parse_run_request(text.str(), path.string());
      specs.push_back(registry.compile(req));
      continue;
    }
    ScenarioRun srun = load_scenario_run(path.string());
    const Time horizon = std::max<Time>(cap, srun.last_event + 1);
    RunSpec spec =
        make_scripted_spec(path.stem().string(), srun.topology.graph,
                           srun.scenario.protocol, std::move(srun.script),
                           horizon);
    if (audit) {
      AQT_REQUIRE(srun.scenario.window_w.has_value() ||
                      srun.scenario.rate_r.has_value(),
                  "--audit needs a declared window/rate in "
                      << path.string());
      if (srun.scenario.window_w.has_value()) {
        spec.audit_w = *srun.scenario.window_w;
        spec.audit_r = *srun.scenario.window_r;
      } else {
        spec.audit_r = *srun.scenario.rate_r;
      }
    }
    specs.push_back(std::move(spec));
  }

  const RunPoolReport report = run_pool(specs, get_jobs(cli));
  if (!cli.get("results-dir").empty()) {
    // One canonical RunResult document per cell, named by the source file.
    // These bytes are the offline half of the serve byte-identity
    // contract: a client saving a served job's result_canonical line gets
    // the same content.
    const fs::path out_dir = cli.get("results-dir");
    fs::create_directories(out_dir);
    for (std::size_t i = 0; i < report.results.size(); ++i) {
      const fs::path out = out_dir / (files[i].stem().string() + ".json");
      std::ofstream os(out, std::ios::trunc);
      AQT_REQUIRE(static_cast<bool>(os), "cannot open " << out.string());
      os << serve::canonical_result_json(report.results[i]) << "\n";
    }
    std::cout << report.results.size() << " result document(s) written to "
              << out_dir.string() << "\n";
  }
  Table t({"scenario", "protocol", "steps", "injected", "absorbed",
           "max queue", "max residence", "feasible", "trace hash",
           "status"});
  bool all_ok = true;
  for (const RunResult& r : report.results) {
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(r.trace_hash));
    t.rowv(r.name, r.protocol, static_cast<long long>(r.steps_run),
           static_cast<long long>(r.injected),
           static_cast<long long>(r.absorbed),
           static_cast<long long>(r.max_queue),
           static_cast<long long>(r.max_residence), r.feasible, hash,
           r.ok() ? std::string("ok") : r.error);
    all_ok = all_ok && r.ok() && r.feasible;
  }
  std::cout << t << "batch: " << report.results.size() << " scenario(s)\n";
  obs::export_cli_metrics(cli, report.metrics, "aqt-sim");
  return all_ok ? 0 : 1;
}

}  // namespace

static int run_main(int argc, char** argv) {
  Cli cli("aqt-sim", "adversarial queuing simulation driver");
  cli.flag("topology", "grid:4x4",
           "line:N ring:N bidiring:N grid:RxC torus:RxC tree:D hypercube:D "
           "dag:N lps:NxM");
  cli.flag("protocol", "FIFO", "FIFO LIFO LIS NIS FTG NTG FFS NTS RANDOM");
  cli.flag("adversary", "stochastic",
           "stochastic | hotspot | convoy | bucket | lps");
  cli.flag("scenario", "",
           "run this .aqts scenario (topology/protocol/script/declared "
           "constraints come from the file)");
  cli.flag("batch", "",
           "run every .aqts scenario and .json RunRequest in this "
           "directory through the deterministic run-pool (honors --jobs; "
           "summary in filename order)");
  cli.flag("results-dir", "",
           "with --batch: write one canonical RunResult JSON per cell "
           "into this directory (byte-identical to aqt-serve's "
           "result_canonical)");
  cli.flag("burst", "2", "token-bucket burst b (bucket adversary)");
  cli.flag("steps", "10000", "steps to run (lps: upper cap)");
  cli.flag("w", "12", "window size (stochastic/convoy)");
  cli.flag("r", "1/4", "injection rate");
  cli.flag("d", "4", "max route length (stochastic)");
  cli.flag("iterations", "3", "outer iterations (lps)");
  cli.flag("s-star", "1200", "initial flat queue (lps)");
  add_seed_flag(cli);
  add_jobs_flag(cli);
  cli.flag("audit", "false", "verify rate feasibility post-run");
  cli.flag("series", "", "write occupancy series CSV to this path");
  cli.flag("record", "", "record the adversary schedule to this trace file");
  cli.flag("record-run", "",
           "record the engine run trace (aqt-verify evidence) to this file");
  cli.flag("replay-twice", "false",
           "run twice from the same seed and fail on run-trace divergence");
  cli.flag("checkpoint", "", "save the final state to this file");
  cli.flag("resume", "",
           "load this checkpoint before running (same topology required; "
           "the adversary starts fresh on the restored state)");
  add_metrics_flags(cli);
  cli.flag("events", "",
           "write the packet-lifecycle JSONL event stream to this path");
  cli.flag("profile", "false",
           "time engine substeps and print a per-phase breakdown");
  cli.flag("timeseries", "",
           "record the per-step flight-recorder series to this path "
           "(CSV, or JSONL when the path ends in .jsonl)");
  cli.flag("timeseries-stride", "1",
           "record every N-th step (adaptive: doubles when the bounded "
           "buffer fills)");
  cli.flag("watch-edges", "",
           "comma-separated edge names whose queue depth is added as "
           "--timeseries columns");
  cli.flag("trace-out", "",
           "write a Chrome trace_event / Perfetto JSON of sampled engine "
           "step phases to this path (mutually exclusive with --profile)");
  cli.flag("watchdog", "false",
           "run the online stability watchdog and print its verdict");
  cli.flag("progress", "0",
           "print a heartbeat line to stderr every N steps (0 = off)");
  if (!cli.parse(argc, argv)) return 0;

  if (!cli.get("batch").empty()) return run_batch(cli);

  const std::uint64_t seed = get_seed(cli);
  const bool audit = cli.get_bool("audit");
  const bool replay_twice = cli.get_bool("replay-twice");
  const std::string record_run = cli.get("record-run");
  const bool resuming = !cli.get("resume").empty();
  AQT_REQUIRE(!resuming || (record_run.empty() && !replay_twice),
              "--record-run / --replay-twice need a from-scratch run "
              "(drop --resume)");

  std::optional<ScenarioRun> srun;
  if (!cli.get("scenario").empty())
    srun.emplace(load_scenario_run(cli.get("scenario")));

  TopologySpec topo = srun ? std::move(srun->topology)
                           : parse_topology_spec(cli.get("topology"), seed);
  const std::string protocol_name =
      srun ? srun->scenario.protocol : cli.get("protocol");
  const std::string kind = srun ? "scenario" : cli.get("adversary");
  const Rat r = cli.get_rat("r");

  // The header of any recorded run trace: declared constraints come from
  // the scenario file, or from the (w, r)-shaped command-line adversaries.
  RunTraceMeta meta;
  if (srun) {
    meta = srun->meta;
  } else if (kind == "stochastic" || kind == "hotspot" || kind == "convoy") {
    meta.window_w = cli.get_int("w");
    meta.window_r = r;
  } else if (kind == "lps") {
    meta.rate_r = r;
  }
  meta.protocol = protocol_name;
  meta.seed = seed;

  // Convoy route: the longest simple forward path from node 0's first
  // out-edge.  Depends only on the graph, so computed once even when the
  // run is repeated for the determinism check.
  Route convoy_path;
  if (kind == "convoy") {
    NodeId at = 0;
    std::vector<bool> seen(topo.graph.node_count(), false);
    seen[at] = true;
    while (!topo.graph.out_edges(at).empty() &&
           convoy_path.size() < static_cast<std::size_t>(cli.get_int("d"))) {
      EdgeId next = kNoEdge;
      for (EdgeId e : topo.graph.out_edges(at))
        if (!seen[topo.graph.head(e)]) {
          next = e;
          break;
        }
      if (next == kNoEdge) break;
      convoy_path.push_back(next);
      at = topo.graph.head(next);
      seen[at] = true;
    }
    AQT_REQUIRE(!convoy_path.empty(), "no forward path for the convoy");
  }

  // Everything stateful — protocol (RANDOM carries an RNG), engine,
  // adversary — is built fresh per run so a determinism re-run starts from
  // the exact same state.
  auto build_adversary = [&]() -> std::unique_ptr<Adversary> {
    if (srun) return std::make_unique<ReplayAdversary>(srun->script);
    if (kind == "stochastic" || kind == "hotspot") {
      StochasticConfig cfg;
      cfg.w = cli.get_int("w");
      cfg.r = r;
      cfg.max_route_len = cli.get_int("d");
      cfg.seed = seed;
      cfg.mode = kind == "hotspot" ? StochasticConfig::Mode::kHotspot
                                   : StochasticConfig::Mode::kUniform;
      return std::make_unique<StochasticAdversary>(topo.graph, cfg);
    }
    if (kind == "bucket") {
      BucketAdversary::Config cfg;
      cfg.burst = cli.get_int("burst");
      cfg.rate = r;
      cfg.max_route_len = cli.get_int("d");
      cfg.seed = seed;
      return std::make_unique<BucketAdversary>(topo.graph, cfg);
    }
    if (kind == "convoy")
      return std::make_unique<ConvoyAdversary>(convoy_path, cli.get_int("w"),
                                               r);
    if (kind == "lps") {
      AQT_REQUIRE(topo.is_lps, "--adversary lps needs --topology lps:NxM");
      LpsConfig cfg = make_lps_config(r);
      cfg.enforce_s0 = false;
      AQT_REQUIRE(cfg.n == topo.lps_net.n,
                  "topology lps:" << topo.lps_net.n << "xM does not match "
                                  << "n(" << r << ") = " << cfg.n
                                  << "; use lps:" << cfg.n << "xM");
      return std::make_unique<LpsAdversary>(topo.lps_net, cfg,
                                            cli.get_int("iterations"));
    }
    AQT_REQUIRE(false, "unknown adversary: " << kind);
    return nullptr;
  };

  // One complete simulation.  `run_os`, when set, receives the run trace;
  // the returned value is its content hash (0 without recording).  Metrics
  // reporting and all side outputs happen only on the primary run.
  bool audit_ok = true;
  auto run_once = [&](std::ostream* run_os,
                      bool primary) -> std::uint64_t {
    auto protocol = make_protocol(protocol_name, seed);
    EngineConfig ec;
    ec.audit_rates = audit && primary;
    ec.series_stride = (!primary || cli.get("series").empty())
                           ? 0
                           : std::max<Time>(1, cli.get_int("steps") / 512);
    std::optional<RunTraceWriter> writer;
    if (run_os != nullptr) writer.emplace(*run_os, topo.graph, meta);
    ec.sinks.trace = writer ? &*writer : nullptr;

    // Observability (primary run only, so the determinism re-run measures
    // nothing twice).  Both sinks are write-only: enabling them cannot
    // change the run (aqt-fuzz --obs-trials checks exactly that).
    std::optional<obs::StepProfiler> profiler;
    if (primary && cli.get_bool("profile")) profiler.emplace();
    ec.sinks.profile = profiler ? &*profiler : nullptr;
    std::ofstream events_os;
    std::optional<obs::JsonlEventWriter> events;
    if (primary && !cli.get("events").empty()) {
      events_os.open(cli.get("events"), std::ios::trunc);
      AQT_REQUIRE(static_cast<bool>(events_os),
                  "cannot open " << cli.get("events"));
      events.emplace(events_os, topo.graph);
    }
    ec.sinks.events = events ? &*events : nullptr;

    // Flight recorder + watchdog share the step-sample stream via fanout;
    // the phase trace takes the profile slot (one StepPhaseSink per run).
    std::optional<obs::TimeseriesRecorder> timeseries;
    std::optional<obs::StabilityWatchdog> watchdog;
    obs::StepSampleFanout sample_fanout;
    if (primary && !cli.get("timeseries").empty()) {
      obs::TimeseriesConfig tc;
      tc.stride = std::max<Time>(1, cli.get_int("timeseries-stride"));
      std::istringstream names(cli.get("watch-edges"));
      std::string name;
      while (std::getline(names, name, ','))
        if (!name.empty()) tc.watched.push_back(topo.graph.edge_by_name(name));
      timeseries.emplace(tc, &topo.graph);
      sample_fanout.add(&*timeseries);
    }
    if (primary && cli.get_bool("watchdog")) {
      watchdog.emplace();
      sample_fanout.add(&*watchdog);
    }
    ec.sinks.samples = sample_fanout.as_sink();

    std::optional<obs::TraceEventLog> trace_log;
    std::optional<obs::PhaseTraceRecorder> phase_trace;
    if (primary && !cli.get("trace-out").empty()) {
      AQT_REQUIRE(!cli.get_bool("profile"),
                  "--trace-out and --profile both want the phase sink; "
                  "pick one");
      trace_log.emplace();
      trace_log->name_thread(0, "engine");
      phase_trace.emplace(*trace_log);
      ec.sinks.profile = &*phase_trace;
    }

    Engine eng(topo.graph, *protocol, ec);

    if (resuming) {
      AQT_REQUIRE(!audit, "--resume requires --audit false");
      load_checkpoint_file(eng, cli.get("resume"));
      std::printf("resumed from %s at step %lld (%llu packets in flight)\n",
                  cli.get("resume").c_str(),
                  static_cast<long long>(eng.now()),
                  static_cast<unsigned long long>(eng.packets_in_flight()));
    }
    if (kind == "lps" && !resuming)
      setup_flat_queue(eng, topo.lps_net, 0, cli.get_int("s-star"));

    std::unique_ptr<Adversary> adversary = build_adversary();
    Trace trace;
    std::unique_ptr<RecordingAdversary> recorder;
    Adversary* driver = adversary.get();
    if (primary && !cli.get("record").empty()) {
      recorder = std::make_unique<RecordingAdversary>(*adversary, trace);
      driver = recorder.get();
    }

    const Time progress_every = primary ? cli.get_int("progress") : 0;
    auto last_beat = std::chrono::steady_clock::now();
    Time last_beat_step = 0;

    if (events) events->milestone(eng.now(), "run-begin");
    const Time cap = cli.get_int("steps");
    for (Time i = 0; i < cap; ++i) {
      if (driver->finished(eng.now() + 1)) break;
      eng.step(driver);
      if (progress_every > 0 && eng.now() % progress_every == 0) {
        const auto now_tp = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(now_tp - last_beat).count();
        const double sps =
            secs > 0.0
                ? static_cast<double>(eng.now() - last_beat_step) / secs
                : 0.0;
        std::fprintf(stderr,
                     "progress: step %lld  in-flight %llu  max-queue %llu  "
                     "%.0f steps/sec\n",
                     static_cast<long long>(eng.now()),
                     static_cast<unsigned long long>(eng.packets_in_flight()),
                     static_cast<unsigned long long>(
                         eng.metrics().max_queue_global()),
                     sps);
        last_beat = now_tp;
        last_beat_step = eng.now();
      }
    }
    // Scenario scripts are finite: let the network empty so the recorded
    // evidence covers every packet's full journey.
    if (srun) {
      if (events) events->milestone(eng.now(), "drain-begin");
      eng.drain(cap);
    }
    if (events) events->milestone(eng.now(), "run-end");

    if (writer) writer->finish(eng.total_injected(), eng.total_absorbed());
    const std::uint64_t hash = writer ? writer->content_hash() : 0;
    if (!primary) return hash;

    Table t({"metric", "value"});
    t.rowv("topology", srun ? srun->scenario.topology : cli.get("topology"));
    t.rowv("protocol", protocol_name);
    t.rowv("adversary", kind);
    t.rowv("steps", static_cast<long long>(eng.now()));
    t.rowv("injected", static_cast<long long>(eng.total_injected()));
    t.rowv("absorbed", static_cast<long long>(eng.total_absorbed()));
    t.rowv("in flight", static_cast<long long>(eng.packets_in_flight()));
    t.rowv("max queue",
           static_cast<long long>(eng.metrics().max_queue_global()));
    t.rowv("max residence",
           static_cast<long long>(eng.metrics().max_residence_global()));
    t.rowv("max latency",
           static_cast<long long>(eng.metrics().max_latency()));
    t.rowv("mean latency", eng.metrics().mean_latency());
    std::cout << "\n" << t;

    if (profiler) std::cout << "\n" << profiler->summary();
    if (events)
      std::cout << "events (" << events->lines_written()
                << " lines) written to " << cli.get("events") << "\n";

    if (timeseries) {
      const std::string path = cli.get("timeseries");
      const bool jsonl = path.size() >= 6 &&
                         path.compare(path.size() - 6, 6, ".jsonl") == 0;
      obs::write_file(path,
                      jsonl ? timeseries->to_jsonl() : timeseries->to_csv());
      std::cout << "timeseries (" << timeseries->rows().size()
                << " rows, effective stride "
                << static_cast<long long>(timeseries->effective_stride())
                << ") written to " << path << "\n";
    }
    if (trace_log) {
      trace_log->write(cli.get("trace-out"), "aqt-sim");
      std::cout << "trace (" << trace_log->size() << " events, "
                << phase_trace->recorded_steps()
                << " sampled steps) written to " << cli.get("trace-out")
                << "\n";
    }
    if (watchdog) std::cout << "\n" << watchdog->summary();

    if (!cli.get("metrics-out").empty() || !cli.get("metrics-prom").empty() ||
        !cli.get("metrics-csv").empty()) {
      obs::MetricRegistry registry;
      obs::collect_engine_metrics(eng, registry);
      if (profiler) obs::collect_profile_metrics(*profiler, registry);
      if (watchdog) watchdog->collect_metrics(registry);
      obs::export_cli_metrics(cli, registry, "aqt-sim");
    }

    if (ec.series_stride > 0) {
      const auto verdict = classify_growth(eng.metrics().series());
      std::cout << "\ngrowth verdict: " << to_string(verdict.verdict)
                << " (late/early occupancy ratio " << verdict.ratio << ")\n";
      CsvWriter csv(cli.get("series"), {"t", "in_flight", "max_queue"});
      for (const auto& p : eng.metrics().series())
        csv.rowv(static_cast<long long>(p.t),
                 static_cast<long long>(p.in_flight),
                 static_cast<long long>(p.max_queue));
      std::cout << "series written to " << cli.get("series") << "\n";
    }

    if (audit) {
      eng.finalize_audit();
      RateCheckResult res;
      if (srun) {
        AQT_REQUIRE(srun->scenario.window_w.has_value() ||
                        srun->scenario.rate_r.has_value(),
                    "--audit with --scenario needs a declared window/rate "
                    "in the scenario file");
        if (srun->scenario.window_w.has_value())
          res = check_window(eng.audit(), *srun->scenario.window_w,
                             *srun->scenario.window_r);
        else
          res = check_rate_r(eng.audit(), *srun->scenario.rate_r);
      } else if (kind == "lps") {
        res = check_rate_r(eng.audit(), r);
      } else if (kind == "bucket") {
        res = check_bucket(eng.audit(), cli.get_int("burst"), r);
      } else {
        res = check_window(eng.audit(), cli.get_int("w"), r);
      }
      std::cout << "\nrate feasibility: " << res.describe(topo.graph)
                << "\n";
      audit_ok = res.ok;
    }
    if (!cli.get("record").empty()) {
      trace.save_file(cli.get("record"), topo.graph);
      std::cout << "trace (" << trace.size() << " events) written to "
                << cli.get("record") << "\n";
    }
    if (!cli.get("checkpoint").empty()) {
      AQT_REQUIRE(!audit, "checkpointing requires --audit false");
      save_checkpoint_file(eng, cli.get("checkpoint"));
      std::cout << "checkpoint written to " << cli.get("checkpoint") << "\n";
    }
    return hash;
  };

  // Primary run: to the requested file, or (when only the determinism
  // check wants a trace) into a byte sink.
  std::uint64_t first_hash = 0;
  NullBuf null_buf;
  if (!record_run.empty()) {
    std::ofstream out(record_run);
    AQT_REQUIRE(static_cast<bool>(out), "cannot open " << record_run);
    first_hash = run_once(&out, /*primary=*/true);
    std::cout << "run trace written to " << record_run << "\n";
  } else if (replay_twice) {
    std::ostream null_os(&null_buf);
    first_hash = run_once(&null_os, /*primary=*/true);
  } else {
    run_once(nullptr, /*primary=*/true);
  }

  if (replay_twice) {
    std::ostream null_os(&null_buf);
    const std::uint64_t second_hash = run_once(&null_os, /*primary=*/false);
    if (first_hash != second_hash) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: replay from seed %llu diverged "
                   "(trace hash %016llx vs %016llx)\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(first_hash),
                   static_cast<unsigned long long>(second_hash));
      return 1;
    }
    std::printf("determinism: replay matched (trace hash %016llx)\n",
                static_cast<unsigned long long>(first_hash));
  }
  return audit_ok ? 0 : 1;
}

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "aqt-sim: %s\n", e.what());
    return 2;
  }
}
