// aqt-sim: general-purpose simulation driver.
//
// Pick a topology, a protocol, and an adversary from the command line; run
// for a number of steps; print the stability-relevant metrics and
// optionally dump the occupancy time series as CSV, verify rate
// feasibility, record the adversary schedule as a trace, or checkpoint the
// final state.
//
// Examples:
//   aqt-sim --topology grid:5x5 --protocol FIFO \
//           --adversary stochastic --w 12 --r 1/4 --d 4 --steps 20000
//   aqt-sim --topology lps:9x8 --protocol FIFO \
//           --adversary lps --r 7/10 --iterations 3 --series out.csv
//   aqt-sim --topology ring:16 --protocol NTG --adversary convoy \
//           --w 12 --r 1/3 --steps 5000 --audit true
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "aqt/adversaries/lps.hpp"
#include "aqt/adversaries/bucket.hpp"
#include "aqt/adversaries/stochastic.hpp"
#include "aqt/analysis/bounds.hpp"
#include "aqt/core/checkpoint.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/core/stability.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/topology/spec.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/trace/trace.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

namespace {

using namespace aqt;

}  // namespace

int main(int argc, char** argv) {
  Cli cli("aqt-sim", "adversarial queuing simulation driver");
  cli.flag("topology", "grid:4x4",
           "line:N ring:N bidiring:N grid:RxC torus:RxC tree:D hypercube:D "
           "dag:N lps:NxM");
  cli.flag("protocol", "FIFO", "FIFO LIFO LIS NIS FTG NTG FFS NTS RANDOM");
  cli.flag("adversary", "stochastic",
           "stochastic | hotspot | convoy | bucket | lps");
  cli.flag("burst", "2", "token-bucket burst b (bucket adversary)");
  cli.flag("steps", "10000", "steps to run (lps: upper cap)");
  cli.flag("w", "12", "window size (stochastic/convoy)");
  cli.flag("r", "1/4", "injection rate");
  cli.flag("d", "4", "max route length (stochastic)");
  cli.flag("iterations", "3", "outer iterations (lps)");
  cli.flag("s-star", "1200", "initial flat queue (lps)");
  cli.flag("seed", "1", "rng seed");
  cli.flag("audit", "false", "verify rate feasibility post-run");
  cli.flag("series", "", "write occupancy series CSV to this path");
  cli.flag("record", "", "record the adversary schedule to this trace file");
  cli.flag("checkpoint", "", "save the final state to this file");
  cli.flag("resume", "",
           "load this checkpoint before running (same topology required; "
           "the adversary starts fresh on the restored state)");
  if (!cli.parse(argc, argv)) return 0;

  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  TopologySpec topo = parse_topology_spec(cli.get("topology"), seed);
  auto protocol = make_protocol(cli.get("protocol"), seed);
  const Rat r = cli.get_rat("r");
  const bool audit = cli.get_bool("audit");

  EngineConfig ec;
  ec.audit_rates = audit;
  ec.series_stride = cli.get("series").empty()
                         ? 0
                         : std::max<Time>(1, cli.get_int("steps") / 512);
  Engine eng(topo.graph, *protocol, ec);

  const bool resuming = !cli.get("resume").empty();
  if (resuming) {
    AQT_REQUIRE(!audit, "--resume requires --audit false");
    load_checkpoint_file(eng, cli.get("resume"));
    std::printf("resumed from %s at step %lld (%llu packets in flight)\n",
                cli.get("resume").c_str(), static_cast<long long>(eng.now()),
                static_cast<unsigned long long>(eng.packets_in_flight()));
  }

  // Build the adversary.
  std::unique_ptr<Adversary> adversary;
  const std::string kind = cli.get("adversary");
  if (kind == "stochastic" || kind == "hotspot") {
    StochasticConfig cfg;
    cfg.w = cli.get_int("w");
    cfg.r = r;
    cfg.max_route_len = cli.get_int("d");
    cfg.seed = seed;
    cfg.mode = kind == "hotspot" ? StochasticConfig::Mode::kHotspot
                                 : StochasticConfig::Mode::kUniform;
    adversary = std::make_unique<StochasticAdversary>(topo.graph, cfg);
  } else if (kind == "bucket") {
    BucketAdversary::Config cfg;
    cfg.burst = cli.get_int("burst");
    cfg.rate = r;
    cfg.max_route_len = cli.get_int("d");
    cfg.seed = seed;
    adversary = std::make_unique<BucketAdversary>(topo.graph, cfg);
  } else if (kind == "convoy") {
    // The longest simple forward path from node 0's first out-edge.
    Route path;
    NodeId at = 0;
    std::vector<bool> seen(topo.graph.node_count(), false);
    seen[at] = true;
    while (!topo.graph.out_edges(at).empty() &&
           path.size() < static_cast<std::size_t>(cli.get_int("d"))) {
      EdgeId next = kNoEdge;
      for (EdgeId e : topo.graph.out_edges(at))
        if (!seen[topo.graph.head(e)]) {
          next = e;
          break;
        }
      if (next == kNoEdge) break;
      path.push_back(next);
      at = topo.graph.head(next);
      seen[at] = true;
    }
    AQT_REQUIRE(!path.empty(), "no forward path for the convoy");
    adversary = std::make_unique<ConvoyAdversary>(path, cli.get_int("w"), r);
  } else if (kind == "lps") {
    AQT_REQUIRE(topo.is_lps, "--adversary lps needs --topology lps:NxM");
    LpsConfig cfg = make_lps_config(r);
    cfg.enforce_s0 = false;
    AQT_REQUIRE(cfg.n == topo.lps_net.n,
                "topology lps:" << topo.lps_net.n << "xM does not match "
                                << "n(" << r << ") = " << cfg.n
                                << "; use lps:" << cfg.n << "xM");
    if (!resuming)
      setup_flat_queue(eng, topo.lps_net, 0, cli.get_int("s-star"));
    adversary = std::make_unique<LpsAdversary>(topo.lps_net, cfg,
                                               cli.get_int("iterations"));
  } else {
    AQT_REQUIRE(false, "unknown adversary: " << kind);
  }

  // Optional trace recording.
  Trace trace;
  std::unique_ptr<RecordingAdversary> recorder;
  Adversary* driver = adversary.get();
  if (!cli.get("record").empty()) {
    recorder = std::make_unique<RecordingAdversary>(*adversary, trace);
    driver = recorder.get();
  }

  // Run.
  const Time cap = cli.get_int("steps");
  for (Time i = 0; i < cap; ++i) {
    if (driver->finished(eng.now() + 1)) break;
    eng.step(driver);
  }

  // Report.
  Table t({"metric", "value"});
  t.rowv("topology", cli.get("topology"));
  t.rowv("protocol", cli.get("protocol"));
  t.rowv("adversary", kind);
  t.rowv("steps", static_cast<long long>(eng.now()));
  t.rowv("injected", static_cast<long long>(eng.total_injected()));
  t.rowv("absorbed", static_cast<long long>(eng.total_absorbed()));
  t.rowv("in flight", static_cast<long long>(eng.packets_in_flight()));
  t.rowv("max queue", static_cast<long long>(eng.metrics().max_queue_global()));
  t.rowv("max residence",
         static_cast<long long>(eng.metrics().max_residence_global()));
  t.rowv("max latency", static_cast<long long>(eng.metrics().max_latency()));
  t.rowv("mean latency", eng.metrics().mean_latency());
  std::cout << "\n" << t;

  if (ec.series_stride > 0) {
    const auto verdict = classify_growth(eng.metrics().series());
    std::cout << "\ngrowth verdict: " << to_string(verdict.verdict)
              << " (late/early occupancy ratio " << verdict.ratio << ")\n";
    CsvWriter csv(cli.get("series"), {"t", "in_flight", "max_queue"});
    for (const auto& p : eng.metrics().series())
      csv.rowv(static_cast<long long>(p.t),
               static_cast<long long>(p.in_flight),
               static_cast<long long>(p.max_queue));
    std::cout << "series written to " << cli.get("series") << "\n";
  }

  if (audit) {
    eng.finalize_audit();
    RateCheckResult res;
    if (kind == "lps") {
      res = check_rate_r(eng.audit(), r);
    } else if (kind == "bucket") {
      res = check_bucket(eng.audit(), cli.get_int("burst"), r);
    } else {
      res = check_window(eng.audit(), cli.get_int("w"), r);
    }
    std::cout << "\nrate feasibility: " << res.describe(topo.graph) << "\n";
    if (!res.ok) return 1;
  }
  if (!cli.get("record").empty()) {
    trace.save_file(cli.get("record"), topo.graph);
    std::cout << "trace (" << trace.size() << " events) written to "
              << cli.get("record") << "\n";
  }
  if (!cli.get("checkpoint").empty()) {
    AQT_REQUIRE(!audit, "checkpointing requires --audit false");
    save_checkpoint_file(eng, cli.get("checkpoint"));
    std::cout << "checkpoint written to " << cli.get("checkpoint") << "\n";
  }
  return 0;
}
