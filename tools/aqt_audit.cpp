// aqt-audit: determinism & concurrency static analysis of the AQT
// sources themselves.
//
// Tokenizes every given C++ file (directories are walked recursively) and
// enforces the project's replayability rule pack (AUD001..AUD007, see
// src/aqt/audit/auditor.hpp): banned nondeterminism APIs, unordered
// iteration on output paths, mutable statics in engine/runner/obs code,
// pointer-keyed ordered containers, unordered float merges, layering
// violations, and malformed justification comments.
//
//   aqt-audit src tools tests                  # human-readable report
//   aqt-audit --format=json src                # machine-readable report
//   aqt-audit --baseline=tests/audit/baseline.txt src tools tests
//   aqt-audit --update-baseline=true --baseline=... src tools tests
//
// Directories named 'corpus' are skipped (tests/audit/corpus holds
// deliberately-bad snippets); name such files explicitly to audit them.
// Exit codes: 0 = no unbaselined finding, 1 = findings, 2 = usage error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "aqt/audit/auditor.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"

namespace {

bool audited_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
         ext == ".cxx";
}

bool skipped_dir(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  return name == "corpus" || name == ".git" || name == "out" ||
         name.rfind("build", 0) == 0;
}

/// Expands files/directories into a sorted, deduplicated file list so the
/// report order never depends on filesystem enumeration order.
std::vector<std::string> collect_files(const std::vector<std::string>& args) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    const fs::path p(arg);
    AQT_REQUIRE(fs::exists(p), "no such file or directory: " << arg);
    if (!fs::is_directory(p)) {
      files.push_back(p.generic_string());
      continue;
    }
    fs::recursive_directory_iterator it(p), end;
    while (it != end) {
      if (it->is_directory() && skipped_dir(it->path())) {
        it.disable_recursion_pending();
        ++it;
        continue;
      }
      if (it->is_regular_file() && audited_extension(it->path()))
        files.push_back(it->path().generic_string());
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("aqt-audit",
          "determinism & concurrency static analyzer for the AQT sources");
  cli.flag("format", "human", "report format: human or json");
  cli.flag("baseline", "",
           "baseline file of grandfathered findings (empty = none)");
  cli.flag("update-baseline", "false",
           "rewrite --baseline with the current findings and exit 0");
  add_jobs_flag(cli);
  add_metrics_flags(cli);
  cli.positionals("path...", "source files or directories to audit");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string format = cli.get("format");
    AQT_REQUIRE(format == "human" || format == "json",
                "unknown --format '" << format << "' (human or json)");
    const std::vector<std::string> files =
        collect_files(cli.positional_args());
    AQT_REQUIRE(!files.empty(), "no auditable sources given (see --help)");

    // Files audit independently on the run-pool workers; reports land in
    // sorted-path order, so the output never depends on --jobs.
    std::vector<audit::AuditReport> reports(files.size());
    const std::vector<std::string> errors = parallel_for_each(
        files.size(), get_jobs(cli),
        [&](std::size_t i) { reports[i] = audit::audit_file(files[i]); });
    for (const std::string& err : errors)
      AQT_REQUIRE(err.empty(), "" << err);

    const std::string baseline_path = cli.get("baseline");
    if (cli.get_bool("update-baseline")) {
      AQT_REQUIRE(!baseline_path.empty(),
                  "--update-baseline needs --baseline=FILE");
      std::ofstream out(baseline_path);
      AQT_REQUIRE(out.good(),
                  "cannot write baseline file: " << baseline_path);
      out << audit::to_baseline(reports);
      std::size_t total = 0;
      for (const audit::AuditReport& rep : reports)
        total += rep.findings.size();
      std::fprintf(stderr, "aqt-audit: baselined %zu finding%s to %s\n",
                   total, total == 1 ? "" : "s", baseline_path.c_str());
      return 0;
    }

    audit::BaselineApplied applied;
    if (!baseline_path.empty())
      applied = audit::apply_baseline(
          reports, audit::load_baseline_file(baseline_path));
    for (const audit::BaselineEntry& e : applied.stale)
      std::fprintf(stderr,
                   "aqt-audit: stale baseline entry (fixed? remove it): "
                   "%s %s\n",
                   e.rule.c_str(), e.file.c_str());

    bool all_ok = true;
    for (const audit::AuditReport& rep : reports)
      all_ok = all_ok && rep.ok();
    const std::string out = format == "json" ? audit::to_json(reports)
                                             : audit::to_human(reports);
    std::fputs(out.c_str(), stdout);
    if (format == "json") std::fputc('\n', stdout);

    if (!cli.get("metrics-out").empty() || !cli.get("metrics-prom").empty() ||
        !cli.get("metrics-csv").empty()) {
      obs::MetricRegistry reg;
      std::uint64_t findings = 0;
      for (const audit::RuleInfo& rule : audit::rule_pack()) {
        std::uint64_t per_rule = 0;
        for (const audit::AuditReport& rep : reports)
          for (const audit::AuditFinding& f : rep.findings)
            if (f.rule == rule.id) ++per_rule;
        findings += per_rule;
        reg.counter("aqt_audit_rule_findings_total", "Findings per rule",
                    "rule", rule.id)
            .set(per_rule);
      }
      reg.counter("aqt_audit_files_total", "Source files audited")
          .set(reports.size());
      reg.counter("aqt_audit_findings_total", "Unbaselined findings")
          .set(findings);
      reg.counter("aqt_audit_baselined_total",
                  "Findings absolved by the baseline")
          .set(applied.suppressed);
      reg.gauge("aqt_audit_ok", "1 when every file is clean, else 0")
          .set(all_ok ? 1.0 : 0.0);
      obs::export_cli_metrics(cli, reg, "aqt-audit");
    }
    return all_ok ? 0 : 1;
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "aqt-audit: %s\n", e.what());
    return 2;
  }
}
