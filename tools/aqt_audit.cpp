// aqt-audit: determinism & concurrency static analysis of the AQT
// sources themselves.
//
// Tokenizes every given C++ file (directories are walked recursively) and
// enforces the project's replayability rule pack (AUD001..AUD012, see
// src/aqt/audit/auditor.hpp): banned nondeterminism APIs, unordered
// iteration on output paths, mutable statics in engine/runner/obs code,
// pointer-keyed ordered containers, unordered float merges, layering
// violations (include-level and call-graph), malformed or unused
// justification comments, lockset-empty shared writes in worker lambdas,
// lock-order inconsistencies, escaping by-reference captures, and
// container mutation during iteration.
//
// The per-file phase (lexing, symbols, lock flow, local rules) runs in
// parallel on the run-pool; the cross-TU phase (call-graph rules AUD009
// and AUD011) is a serial merge over the sorted units, so the output is
// byte-identical for any --jobs.
//
//   aqt-audit src tools tests                  # human-readable report
//   aqt-audit --format=json src                # machine-readable report
//   aqt-audit --baseline=tests/audit/baseline.txt src tools tests
//   aqt-audit --update-baseline=true --baseline=... src tools tests
//   aqt-audit --prune-baseline=true --baseline=... src tools tests
//   aqt-audit --compile-commands=build/compile_commands.json
//
// Directories named 'corpus' are skipped (tests/audit/corpus holds
// deliberately-bad snippets); name such files explicitly to audit them.
// Exit codes: 0 = no unbaselined finding, 1 = findings (or, under
// --fail-on-stale, stale baseline entries), 2 = usage error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "aqt/audit/auditor.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"

namespace {

/// Pulls the "file" entries out of a CMake compile_commands.json (emitted
/// under CMAKE_EXPORT_COMPILE_COMMANDS).  A focused scan, not a general
/// JSON parser: every `"file" : "<path>"` pair is collected, escapes
/// decoded, and the result filtered/sorted like a directory walk — the
/// audited set is then exactly the set of TUs the build compiles.
std::vector<std::string> files_from_compile_commands(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AQT_REQUIRE(in.good(), "cannot open compile commands: " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<std::string> files;
  std::size_t at = 0;
  while ((at = text.find("\"file\"", at)) != std::string::npos) {
    at += 6;
    while (at < text.size() &&
           (text[at] == ' ' || text[at] == '\t' || text[at] == '\n' ||
            text[at] == '\r' || text[at] == ':'))
      ++at;
    AQT_REQUIRE(at < text.size() && text[at] == '"',
                "malformed compile commands " << path
                                              << ": \"file\" without value");
    ++at;
    std::string value;
    while (at < text.size() && text[at] != '"') {
      if (text[at] == '\\' && at + 1 < text.size()) {
        ++at;  // \" and \\ are the escapes CMake emits in paths.
        value += text[at];
      } else {
        value += text[at];
      }
      ++at;
    }
    AQT_REQUIRE(at < text.size(), "malformed compile commands " << path
                                                                << ": "
                                                                   "unterminat"
                                                                   "ed string");
    ++at;
    const std::filesystem::path p(value);
    if (aqt::audit::auditable_source_path(p.generic_string()))
      files.push_back(p.generic_string());
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  AQT_REQUIRE(!files.empty(),
              "no auditable sources in compile commands: " << path);
  return files;
}

std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Rewrites the baseline without its stale entries: sorted, one line per
/// surviving entry, multiset-preserving (a duplicate entry survives once
/// per unconsumed match).  Deterministic for any --jobs.
void prune_baseline(const std::string& path,
                    std::vector<aqt::audit::BaselineEntry> baseline,
                    const std::vector<aqt::audit::BaselineEntry>& stale) {
  // Subtract the stale multiset.
  std::map<std::string, std::size_t> dead;
  const auto key = [](const aqt::audit::BaselineEntry& e) {
    return e.rule + '\t' + e.file + '\t' + hash_hex(e.line_hash);
  };
  for (const aqt::audit::BaselineEntry& e : stale) ++dead[key(e)];
  std::vector<std::string> lines;
  for (const aqt::audit::BaselineEntry& e : baseline) {
    const auto it = dead.find(key(e));
    if (it != dead.end() && it->second > 0) {
      --it->second;
      continue;
    }
    lines.push_back(key(e));
  }
  std::sort(lines.begin(), lines.end());
  std::ofstream out(path);
  AQT_REQUIRE(out.good(), "cannot write baseline file: " << path);
  out << "# aqt-audit baseline: grandfathered findings (RULE\\tfile\\thash "
         "of the trimmed offending line).\n"
      << "# Regenerate with `aqt-audit --update-baseline ...`; this file "
         "should only ever shrink.\n";
  for (const std::string& line : lines) out << line << '\n';
  std::fprintf(stderr,
               "aqt-audit: pruned %zu stale baseline entr%s from %s\n",
               stale.size(), stale.size() == 1 ? "y" : "ies", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("aqt-audit",
          "determinism & concurrency static analyzer for the AQT sources");
  cli.flag("format", "human", "report format: human or json");
  cli.flag("baseline", "",
           "baseline file of grandfathered findings (empty = none)");
  cli.flag("update-baseline", "false",
           "rewrite --baseline with the current findings and exit 0");
  cli.flag("prune-baseline", "false",
           "rewrite --baseline without entries that matched nothing");
  cli.flag("fail-on-stale", "false",
           "exit 1 when the baseline holds entries that matched nothing");
  cli.flag("compile-commands", "",
           "audit the TUs listed in a compile_commands.json instead of "
           "(or in addition to) positional paths");
  add_jobs_flag(cli);
  add_metrics_flags(cli);
  cli.positionals("path...", "source files or directories to audit");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string format = cli.get("format");
    AQT_REQUIRE(format == "human" || format == "json",
                "unknown --format '" << format << "' (human or json)");
    std::vector<std::string> files =
        aqt::audit::collect_audit_files(cli.positional_args());
    if (!cli.get("compile-commands").empty()) {
      std::vector<std::string> from_db =
          files_from_compile_commands(cli.get("compile-commands"));
      files.insert(files.end(), from_db.begin(), from_db.end());
      std::sort(files.begin(), files.end());
      files.erase(std::unique(files.begin(), files.end()), files.end());
    }
    AQT_REQUIRE(!files.empty(), "no auditable sources given (see --help)");

    // Per-file phase: units compute independently on the run-pool
    // workers.  The cross-TU phase (finalize_project) sorts the units, so
    // the report is byte-identical for any --jobs.
    std::vector<audit::AuditUnit> units(files.size());
    const std::vector<std::string> errors = parallel_for_each(
        files.size(), get_jobs(cli),
        [&](std::size_t i) {  // aqt-audit: allow(AUD010) -- joins on return
          // aqt-audit: allow(AUD008) -- slot i has exactly one writer
          units[i] = audit::audit_unit_file(files[i]);
        });
    for (const std::string& err : errors)
      AQT_REQUIRE(err.empty(), "" << err);
    std::vector<audit::AuditReport> reports =
        audit::finalize_project(std::move(units));

    const std::string baseline_path = cli.get("baseline");
    if (cli.get_bool("update-baseline")) {
      AQT_REQUIRE(!baseline_path.empty(),
                  "--update-baseline needs --baseline=FILE");
      std::ofstream out(baseline_path);
      AQT_REQUIRE(out.good(),
                  "cannot write baseline file: " << baseline_path);
      out << audit::to_baseline(reports);
      std::size_t total = 0;
      for (const audit::AuditReport& rep : reports)
        total += rep.findings.size();
      std::fprintf(stderr, "aqt-audit: baselined %zu finding%s to %s\n",
                   total, total == 1 ? "" : "s", baseline_path.c_str());
      return 0;
    }

    audit::BaselineApplied applied;
    std::vector<audit::BaselineEntry> baseline;
    if (!baseline_path.empty()) {
      baseline = audit::load_baseline_file(baseline_path);
      applied = audit::apply_baseline(reports, baseline);
    }
    for (const audit::BaselineEntry& e : applied.stale)
      std::fprintf(stderr,
                   "aqt-audit: stale baseline entry (fixed? remove it): "
                   "%s %s\n",
                   e.rule.c_str(), e.file.c_str());
    if (cli.get_bool("prune-baseline")) {
      AQT_REQUIRE(!baseline_path.empty(),
                  "--prune-baseline needs --baseline=FILE");
      prune_baseline(baseline_path, std::move(baseline), applied.stale);
    }

    bool all_ok = true;
    for (const audit::AuditReport& rep : reports)
      all_ok = all_ok && rep.ok();
    const std::string out = format == "json"
                                ? audit::to_json(reports, applied.stale)
                                : audit::to_human(reports);
    std::fputs(out.c_str(), stdout);
    if (format == "json") std::fputc('\n', stdout);

    if (!cli.get("metrics-out").empty() || !cli.get("metrics-prom").empty() ||
        !cli.get("metrics-csv").empty()) {
      obs::MetricRegistry reg;
      std::uint64_t findings = 0;
      for (const audit::RuleInfo& rule : audit::rule_pack()) {
        std::uint64_t per_rule = 0;
        for (const audit::AuditReport& rep : reports)
          for (const audit::AuditFinding& f : rep.findings)
            if (f.rule == rule.id) ++per_rule;
        findings += per_rule;
        reg.counter("aqt_audit_rule_findings_total", "Findings per rule",
                    "rule", rule.id)
            .set(per_rule);
      }
      reg.counter("aqt_audit_files_total", "Source files audited")
          .set(reports.size());
      reg.counter("aqt_audit_findings_total", "Unbaselined findings")
          .set(findings);
      reg.counter("aqt_audit_baselined_total",
                  "Findings absolved by the baseline")
          .set(applied.suppressed);
      reg.counter("aqt_audit_stale_baseline_total",
                  "Baseline entries that matched nothing")
          .set(applied.stale.size());
      reg.gauge("aqt_audit_ok", "1 when every file is clean, else 0")
          .set(all_ok ? 1.0 : 0.0);
      obs::export_cli_metrics(cli, reg, "aqt-audit");
    }
    if (cli.get_bool("fail-on-stale") && !applied.stale.empty()) return 1;
    return all_ok ? 0 : 1;
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "aqt-audit: %s\n", e.what());
    return 2;
  }
}
