// aqt-serve: the resident simulation service.
//
// Boots the named registry, the bounded job service, and the JSONL-over-TCP
// transport; then waits for SIGTERM/SIGINT and drains gracefully — active
// jobs checkpoint (when --checkpoint-dir is set) or stop at their next
// slice boundary, queued jobs are shed with SRV013, every client gets a
// terminal event before the sockets close.
//
// Examples:
//   aqt-serve --port 4070 --workers 4 --metrics-port 9470
//   aqt-serve --port 0 --queue-cap 8 --default-deadline-ms 60000
//
// Protocol, error codes, and ops knobs: docs/TOOLS.md.  A stdlib-only
// reference client lives at scripts/aqt_serve_client.py.
#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <thread>

#include "aqt/serve/registry.hpp"
#include "aqt/serve/server.hpp"
#include "aqt/serve/service.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

}  // namespace

static int run_main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("aqt-serve", "resident simulation service (RunRequest jobs over "
                       "JSONL/TCP)");
  cli.flag("bind", "127.0.0.1", "bind address");
  cli.flag("port", "4070", "job port (0 = ephemeral; printed at boot)");
  cli.flag("metrics-port", "0",
           "Prometheus /metrics HTTP port (0 = disabled)");
  cli.flag("workers", "1", "concurrent job executors");
  cli.flag("queue-cap", "64",
           "bounded intake: queued jobs beyond this are rejected (SRV010)");
  cli.flag("slice-steps", "2048",
           "cancellation/deadline poll granularity in engine steps");
  cli.flag("default-deadline-ms", "0",
           "deadline for requests that carry none (0 = unlimited)");
  cli.flag("checkpoint-dir", "",
           "checkpoint eligible jobs here on drain instead of cancelling");
  if (!cli.parse(argc, argv)) return 0;

  serve::Registry registry;
  serve::ServiceConfig service_config;
  service_config.workers =
      static_cast<unsigned>(std::max<std::int64_t>(1, cli.get_int("workers")));
  service_config.queue_cap = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("queue-cap")));
  service_config.slice_steps =
      std::max<std::int64_t>(1, cli.get_int("slice-steps"));
  service_config.default_deadline_ms =
      static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, cli.get_int("default-deadline-ms")));
  service_config.checkpoint_dir = cli.get("checkpoint-dir");
  serve::Service service(registry, service_config);

  serve::ServerConfig server_config;
  server_config.bind_address = cli.get("bind");
  server_config.port = static_cast<std::uint16_t>(cli.get_int("port"));
  server_config.metrics_port =
      static_cast<std::uint16_t>(cli.get_int("metrics-port"));
  serve::Server server(service, registry, server_config);
  server.start();

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("aqt-serve: listening on %s:%u (%u worker(s), queue cap %zu)\n",
              server_config.bind_address.c_str(),
              static_cast<unsigned>(server.port()),
              service_config.workers, service_config.queue_cap);
  if (server.metrics_port() != 0)
    std::printf("aqt-serve: metrics on http://%s:%u/metrics\n",
                server_config.bind_address.c_str(),
                static_cast<unsigned>(server.metrics_port()));
  std::fflush(stdout);

  while (g_signal.load(std::memory_order_relaxed) == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::printf("aqt-serve: signal %d — draining (%zu queued, %zu active)\n",
              g_signal.load(std::memory_order_relaxed),
              service.queue_depth(), service.active_jobs());
  std::fflush(stdout);
  server.stop();  // Stops intake, drains the service, closes connections.
  std::printf("aqt-serve: drained, bye\n");
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aqt-serve: %s\n", e.what());
    return 2;
  }
}
