// aqt-report: fold observability artifacts into one self-contained HTML
// report.
//
// Takes the flight-recorder timeseries CSV (aqt-sim --timeseries, or any
// TimeseriesRecorder::to_csv export) and/or an aqt-metrics/1 JSON snapshot
// (any tool's --metrics-out) and renders a single static HTML file with
// inline SVG sparklines per series column and a metrics table — no
// external assets, no scripts, so it opens anywhere and uploads as a CI
// artifact.
//
//   aqt-sim --topology ring:12 --protocol NTG --steps 20000 \
//           --timeseries run.csv --metrics-out run.json
//   aqt-report --timeseries run.csv --metrics run.json --out report.html
//
// Exit codes: 0 = report written, 2 = usage or parse error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "aqt/obs/export.hpp"
#include "aqt/obs/report.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  AQT_REQUIRE(static_cast<bool>(is), "cannot open " << path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("aqt-report", "render observability artifacts as static HTML");
  cli.flag("timeseries", "",
           "flight-recorder CSV (aqt-sim --timeseries) to chart");
  cli.flag("metrics", "",
           "aqt-metrics/1 JSON snapshot (--metrics-out) to tabulate");
  cli.flag("notes", "",
           "text file rendered verbatim in a notes section (e.g. a "
           "watchdog summary or certificate)");
  cli.flag("title", "aqt run report", "report title");
  cli.flag("out", "report.html", "output HTML path");
  try {
    if (!cli.parse(argc, argv)) return 0;
    AQT_REQUIRE(!cli.get("timeseries").empty() || !cli.get("metrics").empty(),
                "nothing to report: give --timeseries and/or --metrics");

    obs::ParsedTimeseries timeseries;
    if (!cli.get("timeseries").empty())
      timeseries = obs::parse_timeseries_csv(read_file(cli.get("timeseries")));

    std::vector<obs::ParsedMetricFamily> metrics;
    if (!cli.get("metrics").empty())
      metrics = obs::parse_metrics_json(read_file(cli.get("metrics")));

    obs::ReportOptions options;
    options.title = cli.get("title");
    if (!cli.get("notes").empty()) options.notes = read_file(cli.get("notes"));

    obs::write_file(cli.get("out"),
                    obs::render_html_report(timeseries, metrics, options));
    std::printf("report (%zu series rows, %zu metric families) written "
                "to %s\n",
                timeseries.rows(), metrics.size(), cli.get("out").c_str());
    return 0;
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "aqt-report: %s\n", e.what());
    return 2;
  }
}
