// Trace tooling: record an adversary schedule to a file, reload it, and
// replay it against any historic protocol.
//
// Demonstrates the trace subsystem end-to-end:
//   1. run a Lemma 3.6 hand-off under FIFO, recording every injection and
//      reroute into a portable text trace;
//   2. save the trace, reload it from disk;
//   3. replay the identical schedule under a protocol of your choice and
//      compare the outcome.
//
//   ./record_replay [--replay-protocol LIS] [--S 600] [--trace out.trace]
#include <cstdio>
#include <iostream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/trace/trace.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("record_replay", "record / persist / replay adversary traces");
  cli.flag("replay-protocol", "LIS", "protocol for the replay run");
  cli.flag("S", "600", "initial C(S, F) size");
  cli.flag("trace", "handoff.trace", "trace file path");
  if (!cli.parse(argc, argv)) return 0;

  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const std::int64_t S = cli.get_int("S");
  const ChainedGadgets net = build_chain(cfg.n, 2);

  // 1. Record under FIFO.
  Trace trace;
  Time duration = 0;
  std::uint64_t fifo_max_queue = 0;
  std::int64_t fifo_s_prime = 0;
  std::int64_t fifo_mismatched = 0;
  {
    FifoProtocol fifo;
    Engine eng(net.graph, fifo);
    setup_gadget_invariant(eng, net, 0, S);
    LpsHandoff phase(net, cfg, 0);
    RecordingAdversary rec(phase, trace);
    while (!phase.finished(eng.now() + 1)) eng.step(&rec);
    duration = eng.now();
    fifo_max_queue = eng.metrics().max_queue_global();
    const auto fifo_rep = inspect_gadget(eng, net, 1);
    fifo_s_prime = fifo_rep.S();
    fifo_mismatched = fifo_rep.mismatched_routes;
  }
  std::printf("recorded %zu events (%llu injections) over %lld steps\n",
              trace.size(),
              static_cast<unsigned long long>(trace.injection_count()),
              static_cast<long long>(duration));

  // 2. Persist and reload.
  const std::string path = cli.get("trace");
  trace.save_file(path, net.graph);
  const Trace loaded = Trace::load_file(path, net.graph);
  std::printf("saved to %s and reloaded (%zu events)\n", path.c_str(),
              loaded.size());

  // 3. Replay under another protocol.
  const std::string proto = cli.get("replay-protocol");
  auto protocol = make_protocol(proto);
  if (!protocol->is_historic()) {
    std::printf("cannot replay reroutes under non-historic protocol %s\n",
                proto.c_str());
    return 1;
  }
  Engine eng(net.graph, *protocol);
  setup_gadget_invariant(eng, net, 0, S);
  ReplayAdversary replay(loaded);
  eng.run(&replay, duration);

  const auto rep = inspect_gadget(eng, net, 1);
  Table t({"run", "protocol", "max queue", "amplified S'",
           "invariant deviations", "skipped reroutes"});
  t.rowv("recorded", "FIFO", static_cast<long long>(fifo_max_queue),
         static_cast<long long>(fifo_s_prime),
         static_cast<long long>(fifo_mismatched), 0ll);
  t.rowv("replayed", proto,
         static_cast<long long>(eng.metrics().max_queue_global()),
         static_cast<long long>(rep.S()),
         static_cast<long long>(rep.mismatched_routes),
         static_cast<long long>(replay.skipped_reroutes()));
  std::cout << "\n" << t
            << "\nUnder FIFO the amplified queue is a clean C(S', F') state "
               "(few deviations) the\nnext phase can build on; other "
               "policies leave stuck decoys that merely look\nlike a large "
               "queue -- the cascade cannot continue from it.\n";
  return 0;
}
