// The protocol zoo: every queuing policy head-to-head on identical traffic.
//
// Runs each protocol on the same topology with the same seeded (w, r)
// traffic and compares occupancy and latency, plus the paper's
// classification flags (historic, Definition 3.1; time-priority,
// Definition 4.2).
//
//   ./protocol_zoo [--steps 4000] [--w 12] [--r 1/3] [--d 4]
#include <iostream>
#include <memory>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("protocol_zoo", "all protocols on identical traffic");
  cli.flag("steps", "4000", "steps per protocol");
  cli.flag("w", "12", "window");
  cli.flag("r", "1/3", "rate");
  cli.flag("d", "4", "max route length");
  cli.flag("seed", "42", "traffic seed");
  if (!cli.parse(argc, argv)) return 0;

  const Time steps = cli.get_int("steps");
  StochasticConfig cfg;
  cfg.w = cli.get_int("w");
  cfg.r = cli.get_rat("r");
  cfg.max_route_len = cli.get_int("d");
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  cfg.attempts_per_step = 6;

  Table t({"protocol", "historic", "time-priority", "max queue",
           "max residence", "mean latency", "absorbed"});
  for (const auto& name : protocol_names()) {
    const Graph g = make_grid(5, 5);
    auto protocol = make_protocol(name, cfg.seed);
    Engine eng(g, *protocol);
    StochasticAdversary adv(g, cfg);  // Same seed: identical traffic.
    eng.run(&adv, steps);
    t.rowv(name, protocol->is_historic(), protocol->is_time_priority(),
           static_cast<long long>(eng.metrics().max_queue_global()),
           static_cast<long long>(eng.metrics().max_residence_global()),
           Table::cell(eng.metrics().mean_latency(), 2),
           static_cast<long long>(eng.total_absorbed()));
  }
  std::cout << "\nProtocol zoo -- 5x5 grid, (" << cfg.w << ", "
            << cfg.r << ") traffic, d = " << cfg.max_route_len << ", "
            << steps << " steps\n\n"
            << t
            << "\nHistoric policies (Definition 3.1) admit the paper's "
               "rerouting technique;\ntime-priority policies (Definition "
               "4.2) enjoy the stronger 1/d stability threshold.\n";
  return 0;
}
