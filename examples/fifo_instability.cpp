// The headline result (Theorem 3.17): FIFO is unstable at rate 1/2 + eps.
//
// Builds the closed daisy chain of Fig. 3.2, seeds the initial flat queue,
// and runs the paper's iterative adversary.  Each outer iteration should
// multiply the queue at the ingress of F(1) by at least r^3 (1+eps)^M / 4.
//
//   ./fifo_instability [--r 7/10] [--iterations 3] [--s-mult 4]
#include <cstdio>
#include <iostream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("fifo_instability", "Theorem 3.17: FIFO unstable at r = 1/2+eps");
  cli.flag("r", "7/10", "injection rate (rational > 1/2)");
  cli.flag("iterations", "3", "outer iterations of the adversary");
  cli.flag("s-star", "2400", "initial flat queue size");
  cli.flag("M", "0", "chain length (0 = exact minimum + 2)");
  if (!cli.parse(argc, argv)) return 0;

  const Rat r = cli.get_rat("r");
  LpsConfig cfg = make_lps_config(r);
  // The demo starts below the proof's S0 and grows past it; the measured-S
  // phase machine keeps the schedule on-script regardless.
  cfg.enforce_s0 = false;
  std::int64_t M = cli.get_int("M");
  if (M == 0) M = lps_empirical_min_M(r.to_double(), cfg.n) + 2;
  const std::int64_t iterations = cli.get_int("iterations");
  const std::int64_t s_star = cli.get_int("s-star");

  std::printf(
      "LPS construction at r = %s (eps = %.3f)\n"
      "  gadget parameter n = %lld, S0 = %lld, chain length M = %lld\n"
      "  paper's conservative growth bound r^3(1+eps)^M/4 = %.3f "
      "(needs M >= %lld)\n"
      "  exact growth (1-R_n)(2(1-R_n))^(M-1) r^3 = %.3f\n"
      "  initial flat queue: S* = %lld packets\n\n",
      r.str().c_str(), cfg.eps(), static_cast<long long>(cfg.n),
      static_cast<long long>(cfg.s0), static_cast<long long>(M),
      lps_iteration_growth(cfg.eps(), M),
      static_cast<long long>(lps_min_M(cfg.eps())),
      lps_measured_iteration_growth(r.to_double(), cfg.n, M),
      static_cast<long long>(s_star));

  const ChainedGadgets net = build_closed_chain(cfg.n, M);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_flat_queue(eng, net, 0, s_star);

  LpsAdversary adv(net, cfg, iterations);
  while (!adv.finished(eng.now() + 1)) eng.step(&adv);

  Table t({"iteration", "steps", "S at loop start", "S at loop end",
           "measured growth", "exact prediction"});
  for (const auto& rec : adv.history()) {
    t.rowv(static_cast<long long>(rec.iteration),
           static_cast<long long>(rec.t_end - rec.t_start),
           static_cast<long long>(rec.s_start),
           static_cast<long long>(rec.s_end),
           rec.s_start > 0
               ? static_cast<double>(rec.s_end) /
                     static_cast<double>(rec.s_start)
               : 0.0,
           Table::cell(
               lps_measured_iteration_growth(r.to_double(), cfg.n, M), 3));
  }
  std::cout << t << "\n";
  std::printf(
      "total steps: %lld   max queue ever: %llu   packets injected: %llu\n",
      static_cast<long long>(eng.now()),
      static_cast<unsigned long long>(eng.metrics().max_queue_global()),
      static_cast<unsigned long long>(eng.total_injected()));

  const auto& hist = adv.history();
  if (hist.size() >= 2 && hist.back().s_end > hist.front().s_start) {
    std::printf("\nThe ingress queue grows without bound: FIFO is unstable "
                "at rate %s, as Theorem 3.17 proves.\n", r.str().c_str());
  }
  return 0;
}
