// Stability below threshold (Theorems 4.1/4.3): sweep every protocol over
// several topologies at r = 1/(d+1) (and the time-priority ones at 1/d) and
// verify live that no packet ever waits more than ceil(w*r) in one buffer.
//
//   ./stability_bounds [--d 3] [--steps 3000] [--seed 17]
#include <iostream>
#include <memory>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/analysis/bounds.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("stability_bounds",
          "Theorems 4.1/4.3: residence <= ceil(w*r) below threshold");
  cli.flag("d", "3", "longest route length");
  cli.flag("steps", "3000", "steps per run");
  cli.flag("seed", "17", "traffic seed");
  if (!cli.parse(argc, argv)) return 0;

  const std::int64_t d = cli.get_int("d");
  const Time steps = cli.get_int("steps");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  struct Net {
    const char* name;
    Graph graph;
  };
  std::vector<Net> nets;
  nets.push_back({"grid 4x4", make_grid(4, 4)});
  nets.push_back({"ring 12", make_ring(12)});
  nets.push_back({"in-tree depth 4", make_in_tree(4)});

  int violations = 0;
  Table t({"protocol", "threshold", "network", "w", "bound ceil(wr)",
           "max residence", "ok"});
  for (const auto& name : protocol_names()) {
    auto protocol = make_protocol(name, seed);
    // Greedy threshold for everyone; the tighter 1/d for time-priority.
    const Rat r = protocol->is_time_priority() ? Rat(1, d) : Rat(1, d + 1);
    const std::int64_t w = 4 * r.den();
    const std::int64_t bound = residence_bound(w, r);
    for (auto& net : nets) {
      Engine eng(net.graph, *protocol);
      StochasticConfig cfg;
      cfg.w = w;
      cfg.r = r;
      cfg.max_route_len = d;
      cfg.seed = seed;
      cfg.attempts_per_step = 6;
      StochasticAdversary adv(net.graph, cfg);
      eng.run(&adv, steps);
      const Time got = eng.metrics().max_residence_global();
      const bool ok = got <= bound;
      if (!ok) ++violations;
      t.rowv(name, r.str(), net.name, static_cast<long long>(w),
             static_cast<long long>(bound), static_cast<long long>(got), ok);
    }
  }
  std::cout << "\nStability sweep (d = " << d << ", " << steps
            << " steps per cell)\n\n"
            << t << "\n"
            << (violations == 0
                    ? "All runs respected the proven residence bound.\n"
                    : "BOUND VIOLATIONS FOUND - this would falsify the "
                      "theorem!\n");
  return violations == 0 ? 0 : 1;
}
