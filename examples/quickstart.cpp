// Quickstart: build a network, pick a protocol, drive it with (w, r)
// traffic, and read the stability-relevant metrics.
//
//   ./quickstart [--protocol FIFO] [--steps 2000] [--w 12] [--r 1/4]
//                [--metrics-out metrics.json]
#include <cstdio>
#include <iostream>
#include <memory>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/analysis/bounds.hpp"
#include "aqt/core/simulation.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/obs/snapshot.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("quickstart", "minimal tour of the aqt simulator");
  cli.flag("protocol", "FIFO", "queuing policy (FIFO, LIS, FTG, ...)");
  cli.flag("steps", "2000", "steps to simulate");
  cli.flag("w", "12", "adversary window size");
  cli.flag("r", "1/4", "adversary rate (rational)");
  cli.flag("seed", "1", "traffic seed");
  cli.flag("metrics-out", "",
           "write a JSON metrics snapshot (aqt-metrics/1) to this path");
  if (!cli.parse(argc, argv)) return 0;

  // A 4x4 grid: 16 switches, 24 unit-capacity links.
  Graph graph = make_grid(4, 4);

  // The adversary: random (w, r) traffic with routes up to 4 hops.
  StochasticConfig traffic;
  traffic.w = cli.get_int("w");
  traffic.r = cli.get_rat("r");
  traffic.max_route_len = 4;
  traffic.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  Simulation sim(std::move(graph), cli.get("protocol"));
  sim.set_adversary(
      std::make_unique<StochasticAdversary>(sim.graph(), traffic));
  sim.run_for(cli.get_int("steps"));

  const RunSummary s = sim.summary();
  const std::int64_t bound = residence_bound(traffic.w, traffic.r);

  Table t({"metric", "value"});
  t.rowv("protocol", std::string(sim.protocol().name()));
  t.rowv("steps", static_cast<long long>(s.steps));
  t.rowv("packets injected", static_cast<long long>(s.injected));
  t.rowv("packets absorbed", static_cast<long long>(s.absorbed));
  t.rowv("still in flight", static_cast<long long>(s.in_flight));
  t.rowv("max queue ever", static_cast<long long>(s.max_queue));
  t.rowv("max buffer residence", static_cast<long long>(s.max_residence));
  t.rowv("Thm 4.1 bound ceil(w*r)", static_cast<long long>(bound));
  t.rowv("max end-to-end latency", static_cast<long long>(s.max_latency));
  t.rowv("mean end-to-end latency", s.mean_latency);
  std::cout << "\naqt quickstart -- 4x4 grid under (" << traffic.w << ", "
            << traffic.r << ") traffic\n\n"
            << t << "\nlatency distribution: "
            << sim.engine().metrics().latency_histogram().summary()
            << "\n\n";

  if (!cli.get("metrics-out").empty()) {
    obs::MetricRegistry registry;
    obs::collect_engine_metrics(sim.engine(), registry);
    obs::write_file(cli.get("metrics-out"),
                    obs::to_json(registry, "quickstart"));
    std::printf("metrics snapshot written to %s\n",
                cli.get("metrics-out").c_str());
  }

  if (traffic.r <= greedy_threshold(traffic.max_route_len) &&
      s.max_residence > bound) {
    std::printf("UNEXPECTED: residence bound violated!\n");
    return 1;
  }
  std::printf("Residence stayed within the Theorem 4.1 bound, as proven.\n");
  return 0;
}
