// Anatomy of one gadget hand-off (Lemma 3.6, Fig. 3.1).
//
// Sets up C(S, F) on the first gadget of F_n^2, runs the hand-off
// adversary, and prints the R_i cascade — the predicted rate at which old
// packets pass each e'-edge — against the measured buffer floors Q_i, plus
// the final C(S', F') check.  Also dumps the network as Graphviz DOT.
//
//   ./gadget_anatomy [--r 7/10] [--S 800] [--dot out.dot]
#include <fstream>
#include <iostream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/probe.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("gadget_anatomy", "one Lemma 3.6 hand-off, dissected");
  cli.flag("r", "7/10", "injection rate");
  cli.flag("S", "800", "initial C(S, F) size");
  cli.flag("dot", "", "write the F_n^2 graph as DOT to this path");
  if (!cli.parse(argc, argv)) return 0;

  const Rat r = cli.get_rat("r");
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const std::int64_t S = cli.get_int("S");
  const double rd = r.to_double();

  const ChainedGadgets net = build_chain(cfg.n, 2);
  if (!cli.get("dot").empty()) {
    std::ofstream out(cli.get("dot"));
    out << net.graph.to_dot("F_n^2");
    std::cout << "wrote " << cli.get("dot") << "\n";
  }

  std::cout << "\nGadget F_n with n = " << cfg.n << " at r = " << r
            << " (eps = " << cfg.eps() << "), S = " << S << "\n\n";

  // The theory side: R_i cascade and stream lengths.
  Table theory({"i", "R_i (old-packet rate into e'_i)", "t_i (stream len)",
                "Q_i (buffer floor at 2S+i)"});
  for (std::int64_t i = 1; i <= cfg.n; ++i) {
    theory.rowv(static_cast<long long>(i),
                Table::cell(lps_R(rd, i), 5),
                Table::cell(lps_t(static_cast<double>(S), rd, i), 1),
                Table::cell(lps_Q(static_cast<double>(S), rd, i), 1));
  }
  std::cout << "Predicted cascade (Claims 3.9 and 3.11):\n\n"
            << theory << "\n";

  // The simulation side, with a per-edge probe on the e'-path so the
  // Claim 3.11 buffer floors Q_i can be read off at exactly time 2S + i.
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;
  Engine eng(net.graph, fifo, ec);
  setup_gadget_invariant(eng, net, 0, S);
  QueueProbe probe(eng, net.gadgets[1].e_path);
  LpsHandoff phase(net, cfg, 0);
  while (!phase.finished(eng.now() + 1)) {
    eng.step(&phase);
    probe.sample();
  }

  Table cascade({"i", "Q_i predicted", "queue of e'_i at 2S+i"});
  for (std::int64_t i = 1; i <= cfg.n; ++i) {
    cascade.rowv(static_cast<long long>(i),
                 Table::cell(lps_Q(static_cast<double>(S), rd, i), 1),
                 static_cast<long long>(
                     probe.at(static_cast<std::size_t>(i - 1), 2 * S + i)));
  }
  std::cout << "Measured cascade (Claim 3.11 floors):\n\n" << cascade
            << "\n";

  Table measured({"quantity", "predicted", "measured"});
  const double s_prime = lps_s_prime(static_cast<double>(S), rd, cfg.n);
  const auto rep = inspect_gadget(eng, net, 1);
  measured.rowv("S' in e'-buffers", Table::cell(s_prime, 1),
                static_cast<long long>(rep.e_total));
  measured.rowv("S' at ingress a'", Table::cell(s_prime, 1),
                static_cast<long long>(rep.ingress_count));
  measured.rowv("empty e'-buffers", 0ll,
                static_cast<long long>(rep.empty_e_buffers));
  measured.rowv("gain S'/S", Table::cell(lps_gadget_gain(rd, cfg.n), 4),
                Table::cell(static_cast<double>(rep.S()) /
                                static_cast<double>(S),
                            4));
  std::cout << "After the hand-off (time 2S+n = "
            << static_cast<long long>(eng.now()) << "):\n\n"
            << measured << "\n";

  eng.finalize_audit();
  const auto rc = check_rate_r(eng.audit(), r);
  std::cout << "Exact rate-" << r
            << " feasibility of the composed adversary (with Lemma 3.3 "
               "reroutes): "
            << rc.describe(net.graph) << "\n";
  return rc.ok ? 0 : 1;
}
