// Threshold explorer: a calculator for every derived quantity of the
// paper, for a rate you pick.
//
//   ./threshold_explorer --r 3/5
//
// Prints the instability-side construction parameters (n, S0, gadget gain,
// chain lengths, network size, longest route d) and the stability-side
// thresholds for the resulting network — showing both halves of the paper
// side by side for your chosen rate.
#include <cstdio>
#include <iostream>

#include "aqt/analysis/bounds.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/topology/routing.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("threshold_explorer", "paper quantities for a chosen rate");
  cli.flag("r", "3/5", "instability rate to explore (1/2 < r < 1)");
  if (!cli.parse(argc, argv)) return 0;

  const Rat r = cli.get_rat("r");
  const double rd = r.to_double();
  const double eps = rd - 0.5;
  const LpsParams p = lps_params(eps);
  const std::int64_t m_exact = lps_empirical_min_M(rd, p.n);
  const std::int64_t m_paper = lps_min_M(eps);

  std::cout << "\n== Instability side (Section 3) at r = " << r
            << " (eps = " << eps << ") ==\n\n";
  Table inst({"quantity", "value", "source"});
  inst.rowv("gadget size n", static_cast<long long>(p.n),
            "proof of Lemma 3.6");
  inst.rowv("minimum queue S0", static_cast<long long>(p.s0),
            "proof of Lemma 3.6");
  inst.rowv("per-gadget gain 2(1-R_n)",
            Table::cell(lps_gadget_gain(rd, p.n), 4), "Lemma 3.6 (exact)");
  inst.rowv("guaranteed gain 1+eps", Table::cell(1.0 + eps, 4),
            "Lemma 3.6 (bound)");
  inst.rowv("stitch retention r^3", Table::cell(rd * rd * rd, 4),
            "Lemma 3.16");
  inst.rowv("chain length M (paper bound)", static_cast<long long>(m_paper),
            "Theorem 3.17, r^3(1+eps)^M/4 > 1");
  inst.rowv("chain length M (exact)", static_cast<long long>(m_exact),
            "measured gain formula");
  const LpsAsymptotics a = lps_asymptotics(eps);
  inst.rowv("n bracket (appendix)",
            "(" + Table::cell(a.n_lower, 2) + ", " +
                Table::cell(a.n_upper, 2) + ")",
            "eq. (5.5)");
  inst.rowv("S0 estimate 4n/eps", Table::cell(a.s0_estimate, 1),
            "eq. (5.10)");
  std::cout << inst;

  // The network that construction runs on, and its stability thresholds.
  const std::int64_t M = m_exact > 0 ? m_exact : m_paper;
  const ChainedGadgets net = build_closed_chain(p.n, M);
  const NetworkParams np = network_params(net.graph);
  const std::int64_t d = lps_longest_route(net);

  std::cout << "\n== The resulting network (closed chain, Fig. 3.2) ==\n\n";
  Table netw({"quantity", "value"});
  netw.rowv("gadgets M", static_cast<long long>(M));
  netw.rowv("nodes", static_cast<long long>(net.graph.node_count()));
  netw.rowv("edges m", static_cast<long long>(np.m));
  netw.rowv("max in-degree alpha", static_cast<long long>(np.alpha));
  netw.rowv("hop diameter", static_cast<long long>(hop_diameter(net.graph)));
  netw.rowv("longest route d (construction)", static_cast<long long>(d));
  std::cout << netw;

  std::cout << "\n== Stability side (Section 4) on that network ==\n\n";
  Table stab({"guarantee", "threshold", "source"});
  stab.rowv("any greedy protocol stable below",
            greedy_threshold(d).str(), "Theorem 4.1: 1/(d+1)");
  stab.rowv("FIFO / time-priority stable below",
            time_priority_threshold(d).str(), "Theorem 4.3: 1/d");
  stab.rowv("prior FIFO bound (Diaz et al.)",
            diaz_fifo_threshold(d, np.m, np.alpha).str(), "<= 1/(2dm*alpha)");
  stab.rowv("prior greedy bound (Borodin)",
            borodin_greedy_threshold(np.m).str(), "1/m");
  std::cout << stab;

  std::printf(
      "\nThe same network is provably stable below %s and provably FIFO-"
      "unstable at %s:\nthe gap between the two sides is where d-long "
      "routes live (Section 5's optimality remark).\n",
      time_priority_threshold(d).str().c_str(), r.str().c_str());
  return 0;
}
