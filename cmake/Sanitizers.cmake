# Sanitizer wiring (AQT_SANITIZE).
#
# AQT_SANITIZE selects an instrumentation profile applied to every target in
# the build (library, tests, tools, benches alike — mixing instrumented and
# uninstrumented code defeats the point):
#
#   ""        -- no instrumentation (default)
#   address   -- AddressSanitizer + UndefinedBehaviorSanitizer
#   thread    -- ThreadSanitizer
#
# All profiles compile with frame pointers (usable stacks in reports) and
# -fno-sanitize-recover=all so the first report is fatal: CI cannot scroll
# past a finding, and ctest fails loudly.  Prefer the presets in
# CMakePresets.json (`cmake --preset asan`) over setting this by hand.
set(AQT_SANITIZE "" CACHE STRING
    "Sanitizer profile: empty, 'address' (ASan+UBSan) or 'thread' (TSan)")
set_property(CACHE AQT_SANITIZE PROPERTY STRINGS "" address thread)

if(AQT_SANITIZE STREQUAL "")
  # Nothing to do.
elseif(AQT_SANITIZE STREQUAL "address")
  set(_aqt_san_flags -fsanitize=address,undefined)
elseif(AQT_SANITIZE STREQUAL "thread")
  set(_aqt_san_flags -fsanitize=thread)
else()
  message(FATAL_ERROR
      "AQT_SANITIZE='${AQT_SANITIZE}' is not a profile; "
      "use '', 'address' or 'thread'")
endif()

if(DEFINED _aqt_san_flags)
  if(NOT (CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang"))
    message(FATAL_ERROR
        "AQT_SANITIZE=${AQT_SANITIZE} requires GCC or Clang "
        "(have ${CMAKE_CXX_COMPILER_ID})")
  endif()
  list(APPEND _aqt_san_flags
       -fno-omit-frame-pointer -fno-sanitize-recover=all)
  add_compile_options(${_aqt_san_flags})
  add_link_options(${_aqt_san_flags})
  message(STATUS "aqt: sanitizer profile '${AQT_SANITIZE}' enabled "
                 "(${_aqt_san_flags})")
  unset(_aqt_san_flags)
endif()
