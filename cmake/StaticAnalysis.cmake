# clang-tidy wiring (AQT_ANALYZE).
#
# With AQT_ANALYZE=ON every translation unit is additionally run through
# clang-tidy (configuration: the checked-in .clang-tidy at the repo root)
# via CMAKE_CXX_CLANG_TIDY, and any diagnostic fails the build
# (--warnings-as-errors=*).  The gate is "zero emitted diagnostics": new
# code either satisfies the check set or carries a justified NOLINT.
#
# clang-tidy must be on PATH (or named via AQT_CLANG_TIDY_EXE); requesting
# analysis without it is a hard configure error rather than a silent skip,
# so CI cannot accidentally run a no-op analysis job.
option(AQT_ANALYZE "Run clang-tidy over every TU; diagnostics fail the build" OFF)

if(AQT_ANALYZE)
  find_program(AQT_CLANG_TIDY_EXE NAMES clang-tidy
               DOC "clang-tidy executable used when AQT_ANALYZE=ON")
  if(NOT AQT_CLANG_TIDY_EXE)
    message(FATAL_ERROR
        "AQT_ANALYZE=ON but clang-tidy was not found; install clang-tidy "
        "or set AQT_CLANG_TIDY_EXE")
  endif()
  # Exported so every subdirectory target picks it up as its default
  # CXX_CLANG_TIDY property.  Generated sources (gtest discovery stamps
  # etc.) are not C++ TUs and are unaffected.
  set(CMAKE_CXX_CLANG_TIDY
      "${AQT_CLANG_TIDY_EXE};--warnings-as-errors=*"
      CACHE STRING "clang-tidy command line prefix" FORCE)
  message(STATUS "aqt: clang-tidy analysis enabled (${AQT_CLANG_TIDY_EXE})")
endif()

# cppcheck wiring (AQT_CPPCHECK).
#
# With AQT_CPPCHECK=ON every TU is additionally run through cppcheck via
# CMAKE_CXX_CPPCHECK.  Like the clang-tidy gate this is blocking: CI
# fails on any unsuppressed finding (--error-exitcode=1).  Known
# acceptable patterns are silenced centrally, with a justification, in
# cmake/cppcheck-suppressions.txt rather than with inline comments.
#
# Same no-silent-skip policy as AQT_ANALYZE: requesting cppcheck without
# the binary is a hard configure error.
option(AQT_CPPCHECK "Run cppcheck over every TU (blocking in CI)" OFF)

if(AQT_CPPCHECK)
  find_program(AQT_CPPCHECK_EXE NAMES cppcheck
               DOC "cppcheck executable used when AQT_CPPCHECK=ON")
  if(NOT AQT_CPPCHECK_EXE)
    message(FATAL_ERROR
        "AQT_CPPCHECK=ON but cppcheck was not found; install cppcheck "
        "or set AQT_CPPCHECK_EXE")
  endif()
  set(CMAKE_CXX_CPPCHECK
      "${AQT_CPPCHECK_EXE};--enable=warning,performance,portability;--inline-suppr;--suppressions-list=${CMAKE_CURRENT_LIST_DIR}/cppcheck-suppressions.txt;--error-exitcode=1;--inconclusive"
      CACHE STRING "cppcheck command line prefix" FORCE)
  message(STATUS "aqt: cppcheck analysis enabled (${AQT_CPPCHECK_EXE})")
endif()
