// E9 -- context table (paper §1): how the paper's stability thresholds
// compare with prior work, per network.
//
// For each network: d (longest route the experiments use), m, alpha, and
// the guaranteed-stable rates under (a) this paper, Thm 4.3: 1/d for
// FIFO/time-priority, (b) this paper, Thm 4.1: 1/(d+1) for any greedy,
// (c) Diaz et al.: <= 1/(2 d m alpha) for FIFO, (d) Borodin: 1/m for any
// greedy.  The improvement columns show the factor the paper gains.
#include <iostream>

#include "aqt/analysis/bounds.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  std::cout << "E9: stability-threshold comparison (this paper vs Diaz et "
               "al. vs Borodin)\n\n";

  struct Entry {
    std::string name;
    Graph graph;
    std::int64_t d;
  };
  std::vector<Entry> entries;
  entries.push_back({"grid 5x5", make_grid(5, 5), 4});
  entries.push_back({"ring 16", make_ring(16), 4});
  entries.push_back({"in-tree 5", make_in_tree(5), 5});
  for (const std::int64_t M : {2, 4, 8}) {
    ChainedGadgets net = build_closed_chain(4, M);
    const std::int64_t d = lps_longest_route(net);
    entries.push_back({"LPS chain M=" + std::to_string(M),
                       std::move(net.graph), d});
  }

  Table t({"network", "m", "alpha", "d", "1/d (Thm 4.3)", "1/(d+1) (Thm 4.1)",
           "Diaz 1/(2dma)", "Borodin 1/m", "gain vs Diaz", "gain vs Borodin"});
  CsvWriter csv("bench_e09_threshold_table.csv",
                {"network", "m", "alpha", "d", "thm43", "thm41", "diaz",
                 "borodin", "gain_diaz", "gain_borodin"});
  for (const auto& e : entries) {
    const NetworkParams p = network_params(e.graph);
    const Rat thm43 = time_priority_threshold(e.d);
    const Rat thm41 = greedy_threshold(e.d);
    const Rat diaz = diaz_fifo_threshold(e.d, p.m, p.alpha);
    const Rat borodin = borodin_greedy_threshold(p.m);
    const double gain_diaz = (thm43 / diaz).to_double();
    const double gain_borodin = (thm41 / borodin).to_double();
    t.rowv(e.name, static_cast<long long>(p.m),
           static_cast<long long>(p.alpha), static_cast<long long>(e.d),
           thm43.str(), thm41.str(), diaz.str(), borodin.str(),
           Table::cell(gain_diaz, 1), Table::cell(gain_borodin, 1));
    csv.rowv(e.name, static_cast<long long>(p.m),
             static_cast<long long>(p.alpha), static_cast<long long>(e.d),
             thm43.to_double(), thm41.to_double(), diaz.to_double(),
             borodin.to_double(), gain_diaz, gain_borodin);
  }
  std::cout << t
            << "\nShape check: the paper's thresholds depend only on d, so "
               "the gain over Diaz et al. (2 m alpha) and over Borodin "
               "(m/(d+1)) grows with network size -- who wins flips only "
               "when d approaches m.\n";
  return 0;
}
