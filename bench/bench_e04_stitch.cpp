// E4 -- Lemma 3.16: trading S old packets at the egress for ~r^3 S fresh
// packets at the ingress over the 3-edge path (egress, e0, ingress).
//
// Sweeps S and r; reports fresh-packet yield vs r^3 S and the duration vs
// S + rS + r^2 S.
#include <iostream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  std::cout << "E4: stitch (Lemma 3.16) -- S old -> ~r^3 S fresh packets\n\n";

  Table t({"r", "S", "fresh measured", "r^3 S", "duration", "S+rS+r^2S",
           "all fresh", "rate-feasible"});
  CsvWriter csv("bench_e04_stitch.csv",
                {"r", "S", "fresh", "r3s", "duration", "ideal_duration",
                 "all_fresh", "feasible"});

  for (const auto& r : {Rat(51, 100), Rat(3, 5), Rat(7, 10), Rat(4, 5)}) {
    LpsConfig cfg = make_lps_config(r);
    cfg.enforce_s0 = false;
    for (const std::int64_t S : {500, 1000, 2000}) {
      const ChainedGadgets net = build_closed_chain(cfg.n, 1);
      const EdgeId a0 = net.gadgets.back().egress;
      const EdgeId a2 = net.gadgets.front().ingress;
      FifoProtocol fifo;
      EngineConfig ec;
      ec.audit_rates = true;
      Engine eng(net.graph, fifo, ec);
      for (std::int64_t i = 0; i < S; ++i) eng.add_initial_packet({a0});

      LpsStitch phase(net, cfg);
      while (!phase.finished(eng.now() + 1)) eng.step(&phase);

      const auto fresh = static_cast<std::int64_t>(eng.queue_size(a2));
      bool all_fresh = true;
      for (const BufferEntry& be : eng.buffer(a2)) {
        const Packet& p = eng.packet(be.packet);
        if (p.inject_time <= S || p.route.size() != 1) all_fresh = false;
      }
      eng.finalize_audit();
      const bool feasible = check_rate_r(eng.audit(), r).ok;
      const double rd = r.to_double();
      const double r3s = rd * rd * rd * static_cast<double>(S);
      const double ideal =
          static_cast<double>(S) * (1.0 + rd + rd * rd);
      t.rowv(r.str(), static_cast<long long>(S),
             static_cast<long long>(fresh), Table::cell(r3s, 1),
             static_cast<long long>(eng.now()), Table::cell(ideal, 1),
             all_fresh, feasible);
      csv.rowv(r.str(), static_cast<long long>(S),
               static_cast<long long>(fresh), r3s,
               static_cast<long long>(eng.now()), ideal, all_fresh ? 1 : 0,
               feasible ? 1 : 0);
    }
  }
  std::cout << t
            << "\nShape check: the fresh yield is r^3 S up to pacing floors "
               "and every surviving packet was injected after step S -- the "
               "queue has been fully renewed.\n";
  return 0;
}
