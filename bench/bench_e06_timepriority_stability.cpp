// E6 -- Theorem 4.3: time-priority protocols (FIFO, LIS) are stable
// already at r <= 1/d, a strictly higher threshold than the general greedy
// 1/(d+1).
//
// FIFO and LIS must respect ceil(w*r) at r = 1/d; the other protocols are
// run at the same rate for context (the theorem makes no promise for them,
// and the paper's §3 shows FIFO itself fails once r crosses 1/2 on
// long-route workloads).
#include <iostream>
#include <memory>

#include "aqt/analysis/bounds.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/experiments/sweep.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("bench_e06_timepriority_stability",
          "E6: time-priority stability sweep (Theorem 4.3)");
  add_jobs_flag(cli, "0");
  if (!cli.parse(argc, argv)) return 0;
  const std::int64_t d = 4;
  const std::int64_t w = 4 * d;
  const Rat r(1, d);
  const std::int64_t bound = residence_bound(w, r);

  SweepConfig cfg;
  cfg.protocols = protocol_names();
  cfg.topologies = {
      {"grid5x5", [] { return make_grid(5, 5); }},
      {"ring16", [] { return make_ring(16); }},
      {"intree5", [] { return make_in_tree(5); }},
      {"torus4x4", [] { return make_torus(4, 4); }},
  };
  cfg.seeds = {29, 30};
  cfg.steps = 4000;
  cfg.traffic.w = w;
  cfg.traffic.r = r;
  cfg.traffic.max_route_len = d;
  cfg.traffic.attempts_per_step = 6;

  std::cout << "E6: time-priority stability (Theorem 4.3) -- d = " << d
            << ", w = " << w << ", r = 1/d = " << r << ", bound = " << bound
            << "\n\n";

  const auto cells = run_sweep(cfg, get_jobs(cli));
  const auto aggregates = aggregate_sweep(cells);

  Table t({"protocol", "time-priority", "network", "residence worst",
           "bound", "within bound"});
  CsvWriter csv("bench_e06_timepriority_stability.csv",
                {"protocol", "time_priority", "network", "max_residence",
                 "bound", "ok"});
  int tp_violations = 0;
  for (const auto& a : aggregates) {
    if (!a.all_feasible) return 2;
    const bool tp = make_protocol(a.protocol)->is_time_priority();
    const bool ok = a.worst_residence <= bound;
    if (tp && !ok) ++tp_violations;
    t.rowv(a.protocol, tp, a.topology,
           static_cast<long long>(a.worst_residence),
           static_cast<long long>(bound), ok);
    csv.rowv(a.protocol, tp ? 1 : 0, a.topology,
             static_cast<long long>(a.worst_residence),
             static_cast<long long>(bound), ok ? 1 : 0);
  }
  std::cout << t << "\n"
            << (tp_violations == 0
                    ? "RESULT: FIFO and LIS (the time-priority protocols) "
                      "never exceeded ceil(w*r) at r = 1/d -- Theorem 4.3.\n"
                    : "RESULT: time-priority VIOLATIONS FOUND.\n");
  return tp_violations == 0 ? 0 : 1;
}
