// E5 -- Theorem 4.1: every greedy protocol is stable at r <= 1/(d+1).
//
// Protocols x topologies x seeds under maximal-ish random (w, r) traffic at
// the threshold rate; the measured per-buffer residence must never exceed
// ceil(w*r).  Feasibility of the traffic itself is machine-checked.
#include <iostream>

#include "aqt/analysis/bounds.hpp"
#include "aqt/experiments/sweep.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("bench_e05_greedy_stability",
          "E5: greedy stability sweep (Theorem 4.1)");
  add_jobs_flag(cli, "0");
  if (!cli.parse(argc, argv)) return 0;
  const std::int64_t d = 3;
  const std::int64_t w = 4 * (d + 1);
  const Rat r(1, d + 1);
  const std::int64_t bound = residence_bound(w, r);

  SweepConfig cfg;
  cfg.protocols = protocol_names();
  cfg.topologies = {
      {"grid5x5", [] { return make_grid(5, 5); }},
      {"ring16", [] { return make_ring(16); }},
      {"bidiring10", [] { return make_bidirectional_ring(10); }},
      {"intree5", [] { return make_in_tree(5); }},
      {"torus4x4", [] { return make_torus(4, 4); }},
      {"hypercube4", [] { return make_hypercube(4); }},
      {"dag30",
       [] {
         Rng rng(7);
         return make_random_dag(30, 0.12, rng);
       }},
  };
  cfg.seeds = {1, 2, 3};
  cfg.steps = 4000;
  cfg.traffic.w = w;
  cfg.traffic.r = r;
  cfg.traffic.max_route_len = d;
  cfg.traffic.attempts_per_step = 6;

  std::cout << "E5: greedy stability (Theorem 4.1) -- d = " << d << ", w = "
            << w << ", r = " << r << ", bound ceil(w*r) = " << bound
            << ", " << cfg.steps << " steps x " << cfg.seeds.size()
            << " seeds per cell\n\n";

  const auto cells = run_sweep(cfg, get_jobs(cli));
  const auto aggregates = aggregate_sweep(cells);

  Table t({"protocol", "network", "injected", "worst queue",
           "residence mean", "residence worst", "bound", "ok"});
  CsvWriter csv("bench_e05_greedy_stability.csv",
                {"protocol", "network", "seed", "injected", "max_queue",
                 "max_residence", "bound", "ok"});
  for (const auto& c : cells)
    csv.rowv(c.protocol, c.topology, static_cast<long long>(c.seed),
             static_cast<long long>(c.injected),
             static_cast<long long>(c.max_queue),
             static_cast<long long>(c.max_residence),
             static_cast<long long>(bound),
             c.max_residence <= bound ? 1 : 0);

  int violations = 0;
  for (const auto& a : aggregates) {
    if (!a.all_feasible) {
      std::cout << "TRAFFIC GENERATOR BUG: window violated\n";
      return 2;
    }
    const bool ok = a.worst_residence <= bound;
    if (!ok) ++violations;
    t.rowv(a.protocol, a.topology, static_cast<long long>(a.injected),
           static_cast<long long>(a.worst_queue),
           Table::cell(a.residence.mean(), 2),
           static_cast<long long>(a.worst_residence),
           static_cast<long long>(bound), ok);
  }
  std::cout << t << "\n"
            << (violations == 0
                    ? "RESULT: zero violations across all protocols, "
                      "topologies and seeds -- matching Theorem 4.1.\n"
                    : "RESULT: VIOLATIONS FOUND (would falsify the "
                      "theorem).\n");
  return violations == 0 ? 0 : 1;
}
