// E8 -- Appendix: asymptotics of the construction parameters.
//
// Tabulates n(eps) against the appendix bracket
// log2(1/eps) + 2 < n < 2 log2(1/eps) + 4 and S0(eps) against the
// Theta(eps^-1 log(1/eps)) estimate 4n/eps (equation 5.10).
#include <iostream>

#include "aqt/analysis/lps_math.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  std::cout << "E8: appendix asymptotics -- n = Theta(log 1/eps), "
               "S0 = Theta(eps^-1 log 1/eps)\n\n";

  Table t({"eps", "n", "lower log2(1/eps)+2", "upper 2log2(1/eps)+4", "S0",
           "estimate 4n/eps", "S0 / estimate"});
  CsvWriter csv("bench_e08_asymptotics.csv",
                {"eps", "n", "n_lower", "n_upper", "s0", "s0_estimate",
                 "ratio"});
  for (const double eps :
       {0.25, 0.2, 0.15, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001}) {
    const LpsParams p = lps_params(eps);
    const LpsAsymptotics a = lps_asymptotics(eps);
    const double ratio = static_cast<double>(p.s0) / a.s0_estimate;
    t.rowv(Table::cell(eps, 4), static_cast<long long>(p.n),
           Table::cell(a.n_lower, 2), Table::cell(a.n_upper, 2),
           static_cast<long long>(p.s0), Table::cell(a.s0_estimate, 1),
           Table::cell(ratio, 3));
    csv.rowv(eps, static_cast<long long>(p.n), a.n_lower, a.n_upper,
             static_cast<long long>(p.s0), a.s0_estimate, ratio);
  }
  std::cout << t
            << "\nShape check: n sits inside the appendix bracket for small "
               "eps, and S0/(4n/eps) converges to a constant -- the "
               "Theta(eps^-1 log 1/eps) behaviour of equation (5.10).\n";
  return 0;
}
