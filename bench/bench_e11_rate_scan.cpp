// E11 -- sharpness of the 1/2 threshold: rate scan of the gadget gain.
//
// The engine of Theorem 3.17 is the per-gadget amplification
// 2(1 - R_n(r)) -> 2r (as n grows): strictly above 1 for every r > 1/2 and
// at most 1 for every r <= 1/2, no matter the gadget size.  The scan
// measures one hand-off at each rate and reports the measured gain, the
// exact formula, and the chain length M needed for a growing loop --
// infinite at and below 1/2, exploding as r approaches 1/2 from above
// (which is why the paper's S0 = Theta(eps^-1 log 1/eps)).
#include <iostream>
#include <memory>
#include <vector>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/runner/run_spec.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/cli.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main(int argc, char** argv) {
  using namespace aqt;
  Cli cli("bench_e11_rate_scan",
          "E11: per-gadget gain scan across the 1/2 threshold");
  add_jobs_flag(cli, "0");
  if (!cli.parse(argc, argv)) return 0;
  std::cout << "E11: rate scan -- per-gadget gain across the 1/2 "
               "threshold\n\n";

  Table t({"r", "n", "sup_n gain = 2r", "gain 2(1-R_n)", "gain measured",
           "min M (exact)", "min M (paper)"});
  CsvWriter csv("bench_e11_rate_scan.csv",
                {"r", "n", "sup_gain", "gain_exact", "gain_measured",
                 "min_m_exact", "min_m_paper"});

  // Below and at the threshold: no simulation possible (the construction
  // needs r > 1/2), but the analytic supremum already tells the story.
  for (const auto& r : {Rat(2, 5), Rat(9, 20), Rat(1, 2)}) {
    const double sup = 2.0 * r.to_double();
    t.rowv(r.str(), "-", Table::cell(sup, 3), "-", "-", "unbounded", "-");
    csv.rowv(r.str(), -1, sup, 0.0, 0.0, -1, -1);
  }

  // One measured hand-off per rate, each an independent RunSpec cell on
  // the deterministic run-pool (results come back in rate order).
  const std::int64_t S = 1500;
  const std::vector<Rat> rates = {Rat(51, 100), Rat(11, 20), Rat(3, 5),
                                  Rat(13, 20),  Rat(7, 10),  Rat(3, 4),
                                  Rat(4, 5)};
  std::vector<RunSpec> specs;
  specs.reserve(rates.size());
  for (const Rat& r : rates) {
    LpsConfig cfg = make_lps_config(r);
    cfg.enforce_s0 = false;
    // The chain is shared by the recipe, setup, adversary, and collector
    // closures; the shared_ptr keeps it alive for the spec's lifetime.
    auto net = std::make_shared<const ChainedGadgets>(build_chain(cfg.n, 2));
    RunSpec spec;
    spec.name = "lps-handoff/r=" + r.str();
    spec.topology = {"chain_n" + std::to_string(cfg.n),
                     [net] { return net->graph; }};
    spec.protocol = "FIFO";
    spec.adversary = [net, cfg](const Graph&, std::uint64_t) {
      return std::make_unique<LpsHandoff>(*net, cfg, 0);
    };
    spec.steps = 2000000;  // Cap only; the hand-off phase finishes itself.
    spec.setup = [net, S](Engine& eng, const Graph&) {
      setup_gadget_invariant(eng, *net, 0, S);
    };
    spec.collect = [net](const Engine& eng, const Adversary*,
                         RunResult& result) {
      result.extra["s_out"] =
          static_cast<double>(inspect_gadget(eng, *net, 1).S());
    };
    specs.push_back(std::move(spec));
  }
  const std::vector<RunResult> results = run_all(specs, get_jobs(cli));

  for (std::size_t i = 0; i < rates.size(); ++i) {
    const Rat& r = rates[i];
    const RunResult& res = results[i];
    AQT_REQUIRE(res.ok(), "cell " << res.name << " failed: " << res.error);
    const LpsConfig cfg = [&] {
      LpsConfig c = make_lps_config(r);
      c.enforce_s0 = false;
      return c;
    }();
    const double rd = r.to_double();
    const double exact_gain = lps_gadget_gain(rd, cfg.n);
    const double measured =
        res.extra.at("s_out") / static_cast<double>(S);

    const std::int64_t m_exact = lps_empirical_min_M(rd, cfg.n);
    const std::int64_t m_paper = lps_min_M(cfg.eps());
    t.rowv(r.str(), static_cast<long long>(cfg.n),
           Table::cell(2.0 * rd, 3), Table::cell(exact_gain, 4),
           Table::cell(measured, 4), static_cast<long long>(m_exact),
           static_cast<long long>(m_paper));
    csv.rowv(r.str(), static_cast<long long>(cfg.n), 2.0 * rd, exact_gain,
             measured, static_cast<long long>(m_exact),
             static_cast<long long>(m_paper));
  }
  std::cout << t
            << "\nShape check: the gain crosses 1 exactly at r = 1/2 -- "
               "below it no gadget size amplifies (the paper's stability "
               "side), above it every rate admits a finite chain (the "
               "instability side), with the required M diverging as "
               "r -> 1/2+ from above.\n";
  return 0;
}
