// E11 -- sharpness of the 1/2 threshold: rate scan of the gadget gain.
//
// The engine of Theorem 3.17 is the per-gadget amplification
// 2(1 - R_n(r)) -> 2r (as n grows): strictly above 1 for every r > 1/2 and
// at most 1 for every r <= 1/2, no matter the gadget size.  The scan
// measures one hand-off at each rate and reports the measured gain, the
// exact formula, and the chain length M needed for a growing loop --
// infinite at and below 1/2, exploding as r approaches 1/2 from above
// (which is why the paper's S0 = Theta(eps^-1 log 1/eps)).
#include <iostream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  std::cout << "E11: rate scan -- per-gadget gain across the 1/2 "
               "threshold\n\n";

  Table t({"r", "n", "sup_n gain = 2r", "gain 2(1-R_n)", "gain measured",
           "min M (exact)", "min M (paper)"});
  CsvWriter csv("bench_e11_rate_scan.csv",
                {"r", "n", "sup_gain", "gain_exact", "gain_measured",
                 "min_m_exact", "min_m_paper"});

  // Below and at the threshold: no simulation possible (the construction
  // needs r > 1/2), but the analytic supremum already tells the story.
  for (const auto& r : {Rat(2, 5), Rat(9, 20), Rat(1, 2)}) {
    const double sup = 2.0 * r.to_double();
    t.rowv(r.str(), "-", Table::cell(sup, 3), "-", "-", "unbounded", "-");
    csv.rowv(r.str(), -1, sup, 0.0, 0.0, -1, -1);
  }

  for (const auto& r : {Rat(51, 100), Rat(11, 20), Rat(3, 5), Rat(13, 20),
                        Rat(7, 10), Rat(3, 4), Rat(4, 5)}) {
    LpsConfig cfg = make_lps_config(r);
    cfg.enforce_s0 = false;
    const double rd = r.to_double();
    const double exact_gain = lps_gadget_gain(rd, cfg.n);

    // One measured hand-off at moderate S.
    const std::int64_t S = 1500;
    const ChainedGadgets net = build_chain(cfg.n, 2);
    FifoProtocol fifo;
    Engine eng(net.graph, fifo);
    setup_gadget_invariant(eng, net, 0, S);
    LpsHandoff phase(net, cfg, 0);
    while (!phase.finished(eng.now() + 1)) eng.step(&phase);
    const double measured =
        static_cast<double>(inspect_gadget(eng, net, 1).S()) /
        static_cast<double>(S);

    const std::int64_t m_exact = lps_empirical_min_M(rd, cfg.n);
    const std::int64_t m_paper = lps_min_M(cfg.eps());
    t.rowv(r.str(), static_cast<long long>(cfg.n),
           Table::cell(2.0 * rd, 3), Table::cell(exact_gain, 4),
           Table::cell(measured, 4), static_cast<long long>(m_exact),
           static_cast<long long>(m_paper));
    csv.rowv(r.str(), static_cast<long long>(cfg.n), 2.0 * rd, exact_gain,
             measured, static_cast<long long>(m_exact),
             static_cast<long long>(m_paper));
  }
  std::cout << t
            << "\nShape check: the gain crosses 1 exactly at r = 1/2 -- "
               "below it no gadget size amplifies (the paper's stability "
               "side), above it every rate admits a finite chain (the "
               "instability side), with the required M diverging as "
               "r -> 1/2+ from above.\n";
  return 0;
}
