// E3 -- Lemma 3.15: bootstrapping C(S', F_n) from a flat ingress queue.
//
// Sweeps the flat queue size 2S; reports the measured invariant against the
// predicted S' = 2S(1 - R_n) and its shape (every e-buffer nonempty).
#include <iostream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;

  std::cout << "E3: bootstrap (Lemma 3.15) at r = " << r << ", n = " << cfg.n
            << "\n\n";
  Table t({"2S flat", "S' e-buffers", "S' ingress", "S' exact",
           "empty e-buffers", "steps", "rate-feasible"});
  CsvWriter csv("bench_e03_bootstrap.csv",
                {"flat", "e_total", "ingress", "exact", "empty_buffers",
                 "steps", "feasible"});

  for (const std::int64_t flat : {400, 800, 1600, 3200, 6400}) {
    const ChainedGadgets net = build_chain(cfg.n, 1);
    FifoProtocol fifo;
    EngineConfig ec;
    ec.audit_rates = true;
    Engine eng(net.graph, fifo, ec);
    setup_flat_queue(eng, net, 0, flat);
    LpsBootstrap phase(net, cfg, 0);
    while (!phase.finished(eng.now() + 1)) eng.step(&phase);

    const auto rep = inspect_gadget(eng, net, 0);
    eng.finalize_audit();
    const bool feasible = check_rate_r(eng.audit(), r).ok;
    const double exact = lps_s_prime(static_cast<double>(flat) / 2.0,
                                     r.to_double(), cfg.n);
    t.rowv(static_cast<long long>(flat),
           static_cast<long long>(rep.e_total),
           static_cast<long long>(rep.ingress_count), Table::cell(exact, 1),
           static_cast<long long>(rep.empty_e_buffers),
           static_cast<long long>(eng.now()), feasible);
    csv.rowv(static_cast<long long>(flat),
             static_cast<long long>(rep.e_total),
             static_cast<long long>(rep.ingress_count), exact,
             static_cast<long long>(rep.empty_e_buffers),
             static_cast<long long>(eng.now()), feasible ? 1 : 0);
  }
  std::cout << t
            << "\nShape check: both halves of C(S', F) match 2S(1-R_n) "
               "within O(n); the run takes exactly 2S + n steps.\n";
  return 0;
}
