// E12 -- simulator throughput (google-benchmark).
//
// Not a paper experiment: characterizes the engine itself so that the
// scale of the instability runs (millions of steps, hundreds of thousands
// of live packets) is known to be in budget.
//
// Besides the google-benchmark microbenchmarks, `--perf-json=PATH` (our
// flag, stripped before google-benchmark sees argv) runs the profiled
// reference workload — grid 8x8, stochastic (w=12, r=1/4, d=4), 20000
// steps; one warm-up run, then fastest-of-three repetitions — and writes
// an aqt-metrics/1 snapshot (steps/sec, per-phase breakdown, engine
// counters) to PATH: the BENCH_engine_perf.json artifact CI tracks across
// commits.  `--perf-jobs=N` (also stripped) pins the worker count of the
// parallel-speedup leg; CI passes its core count so
// aqt_runner_parallel_speedup is measured on a real multi-core pool.
// `--perf-trajectory=PATH` (also stripped) appends one JSONL datapoint
// (timestamp, commit, steps/sec, speedup, selfhost seconds) to PATH — the
// BENCH_trajectory.jsonl history CI's perf-smoke step grows; the commit id
// resolves `--commit=SHA`, then $AQT_GIT_COMMIT, then $GITHUB_SHA, falling
// back to "unknown".  `--trace-out=PATH` (also stripped) writes a
// Perfetto-loadable trace_event JSON of the perf session: engine
// step-phase spans plus one span per parallel-leg pool cell on each
// worker's thread track.  The parallel leg also records per-worker
// telemetry (aqt_pool_worker_* families) into the snapshot.  The
// snapshot also carries aqt_audit_selfhost_seconds — the wall-clock of a
// full repo self-audit on 4 workers, gated below 10 s in CI so the
// analyzer's own cost stays bounded as rules accrete.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "aqt/adversaries/lps.hpp"
#include "aqt/adversaries/stochastic.hpp"
#include "aqt/audit/auditor.hpp"
#include "aqt/core/checkpoint.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/experiments/sweep.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/obs/export.hpp"
#include "aqt/obs/profiler.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/obs/snapshot.hpp"
#include "aqt/obs/tracing.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/topology/generators.hpp"

namespace {

using namespace aqt;

void BM_GridStochasticSteps(benchmark::State& state) {
  const auto side = state.range(0);
  const Graph g = make_grid(side, side);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  StochasticConfig cfg;
  cfg.w = 12;
  cfg.r = Rat(1, 4);
  cfg.max_route_len = 4;
  cfg.seed = 1;
  StochasticAdversary adv(g, cfg);
  for (auto _ : state) {
    eng.step(&adv);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["edges"] = static_cast<double>(g.edge_count());
}
BENCHMARK(BM_GridStochasticSteps)->Arg(4)->Arg(8)->Arg(16);

void BM_GridStochasticStepsAudited(benchmark::State& state) {
  // Same workload with EngineConfig::audit_invariants on: the ratio to
  // BM_GridStochasticSteps is the full cost of re-checking every model
  // invariant each step (budgeted at < 2x).
  const auto side = state.range(0);
  const Graph g = make_grid(side, side);
  FifoProtocol fifo;
  EngineConfig eng_cfg;
  eng_cfg.audit_invariants = true;
  Engine eng(g, fifo, eng_cfg);
  StochasticConfig cfg;
  cfg.w = 12;
  cfg.r = Rat(1, 4);
  cfg.max_route_len = 4;
  cfg.seed = 1;
  StochasticAdversary adv(g, cfg);
  for (auto _ : state) {
    eng.step(&adv);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["edges"] = static_cast<double>(g.edge_count());
}
BENCHMARK(BM_GridStochasticStepsAudited)->Arg(4)->Arg(8)->Arg(16);

void BM_ProtocolStep(benchmark::State& state,
                     const std::string& protocol_name) {
  const Graph g = make_grid(6, 6);
  auto protocol = make_protocol(protocol_name, 1);
  Engine eng(g, *protocol);
  StochasticConfig cfg;
  cfg.w = 12;
  cfg.r = Rat(1, 3);
  cfg.max_route_len = 5;
  cfg.seed = 2;
  StochasticAdversary adv(g, cfg);
  for (auto _ : state) eng.step(&adv);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_ProtocolStep, fifo, std::string("FIFO"));
BENCHMARK_CAPTURE(BM_ProtocolStep, lis, std::string("LIS"));
BENCHMARK_CAPTURE(BM_ProtocolStep, ntg, std::string("NTG"));

void BM_DeepQueueStep(benchmark::State& state) {
  // One very deep buffer: stresses the ordered-set buffer implementation.
  const auto depth = state.range(0);
  const Graph g = make_line(2);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  for (std::int64_t i = 0; i < depth; ++i)
    eng.add_initial_packet({0, 1});
  // One injection per step balances the one departure per step, keeping
  // the buffer at its initial depth for the whole measurement.
  struct Refill final : Adversary {
    void step(Time, const Engine&, AdversaryStep& out) override {
      out.injections.push_back(Injection{{0, 1}, 0});
    }
  } refill;
  for (auto _ : state) eng.step(&refill);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeepQueueStep)->Arg(10000)->Arg(100000);

void BM_LpsHandoffWholePhase(benchmark::State& state) {
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const std::int64_t S = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    const ChainedGadgets net = build_chain(cfg.n, 2);
    FifoProtocol fifo;
    Engine eng(net.graph, fifo);
    setup_gadget_invariant(eng, net, 0, S);
    LpsHandoff phase(net, cfg, 0);
    state.ResumeTiming();
    while (!phase.finished(eng.now() + 1)) eng.step(&phase);
    benchmark::DoNotOptimize(eng.packets_in_flight());
  }
  state.SetItemsProcessed(state.iterations() * 2 * S);
}
BENCHMARK(BM_LpsHandoffWholePhase)->Arg(500)->Arg(2000)->Unit(
    benchmark::kMillisecond);

void BM_RateCheckExact(benchmark::State& state) {
  // The exact post-hoc rate-r checker on a large single-edge audit.
  const auto entries = state.range(0);
  const Rat r(7, 10);
  RateAudit audit(1);
  std::int64_t emitted = 0;
  for (Time t = 1; emitted < entries; ++t) {
    const std::int64_t quota = r.floor_mul(t);
    for (; emitted < quota && emitted < entries; ++emitted)
      audit.add_edge(0, t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_rate_r(audit, r).ok);
  }
  state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_RateCheckExact)->Arg(10000)->Arg(100000);

void BM_CheckpointRoundtrip(benchmark::State& state) {
  const Graph g = make_grid(6, 6);
  FifoProtocol fifo;
  Engine eng(g, fifo);
  StochasticConfig cfg;
  cfg.w = 12;
  cfg.r = Rat(1, 3);
  cfg.max_route_len = 5;
  cfg.seed = 4;
  StochasticAdversary adv(g, cfg);
  eng.run(&adv, 2000);
  for (auto _ : state) {
    std::stringstream buf;
    save_checkpoint(eng, buf);
    Engine restored(g, fifo);
    load_checkpoint(restored, buf);
    benchmark::DoNotOptimize(restored.packets_in_flight());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointRoundtrip)->Unit(benchmark::kMicrosecond);

/// The profiled reference workload behind --perf-json: a medium grid under
/// the standard stochastic (w, r) adversary, long enough for steady-state
/// throughput, with the step-phase profiler attached.  One unprofiled
/// warm-up run primes caches and branch predictors, then the snapshot
/// keeps the fastest of three identical profiled repetitions — the work is
/// deterministic, so the minimum is the least-noise estimate of real
/// throughput (the reasoning behind --benchmark_repetitions' min).
void write_perf_json(const std::string& path, unsigned perf_jobs,
                     const std::string& trajectory_path,
                     const std::string& commit_flag,
                     const std::string& trace_path) {
  const Graph g = make_grid(8, 8);
  FifoProtocol fifo;
  StochasticConfig cfg;
  cfg.w = 12;
  cfg.r = Rat(1, 4);
  cfg.max_route_len = 4;
  cfg.seed = 1;
  // --trace-out: one Perfetto-loadable log for the whole perf session —
  // engine step-phase spans from the warm-up run (tid 0) plus one span per
  // pool cell from the parallel leg (tid = worker id + 1).
  std::unique_ptr<obs::TraceEventLog> trace_log;
  if (!trace_path.empty()) {
    trace_log = std::make_unique<obs::TraceEventLog>();
    trace_log->name_thread(0, "engine");
  }
  {
    EngineConfig warm_cfg;
    std::unique_ptr<obs::PhaseTraceRecorder> phase_trace;
    if (trace_log != nullptr) {
      phase_trace = std::make_unique<obs::PhaseTraceRecorder>(*trace_log);
      warm_cfg.sinks.profile = phase_trace.get();
    }
    Engine warm(g, fifo, warm_cfg);
    StochasticAdversary adv(g, cfg);
    warm.run(&adv, 20000);
  }
  std::unique_ptr<Engine> eng;
  std::unique_ptr<obs::StepProfiler> profiler;
  for (int rep = 0; rep < 3; ++rep) {
    auto prof = std::make_unique<obs::StepProfiler>();
    EngineConfig eng_cfg;
    eng_cfg.sinks.profile = prof.get();
    auto e = std::make_unique<Engine>(g, fifo, eng_cfg);
    StochasticAdversary adv(g, cfg);
    e->run(&adv, 20000);
    // Every repetition runs the identical deterministic schedule, so the
    // engine metrics agree bit-for-bit; only the profiler timings differ.
    if (!profiler || prof->report().steps_per_second() >
                         profiler->report().steps_per_second()) {
      profiler = std::move(prof);
      eng = std::move(e);
    }
  }

  obs::MetricRegistry registry;
  obs::collect_engine_metrics(*eng, registry);
  obs::collect_profile_metrics(*profiler, registry);

  // Carried into the optional trajectory datapoint below.
  double speedup_out = 1.0;
  unsigned jobs_out = 0;
  double selfhost_out = 0.0;

  // Parallel-speedup datapoint: the same miniature E5-style sweep (rings
  // under the standard (w, r) stochastic adversary) timed serially and on
  // the full run-pool.  On a single hardware thread the ratio is ~1; CI
  // runners with >= 4 cores should see a clear multiple.
  {
    SweepConfig sweep;
    sweep.protocols = {"FIFO", "NTG"};
    for (const std::int64_t n : {8, 12, 16})
      sweep.topologies.push_back(
          {"ring:" + std::to_string(n),
           [n] { return make_ring(n); }});
    sweep.seeds = {1, 2, 3, 4, 5, 6, 7, 8};
    sweep.steps = 4000;
    sweep.traffic.w = 12;
    sweep.traffic.r = Rat(1, 4);
    sweep.traffic.max_route_len = 4;
    sweep.audit = false;
    const std::vector<RunSpec> specs = sweep_specs(sweep);
    // --perf-jobs pins the parallel leg's worker count (CI passes the
    // runner's core count so the recorded datapoint is a real multi-core
    // measurement); 0 falls back to the detected hardware concurrency.
    const unsigned hw = perf_jobs == 0 ? resolve_jobs(0) : perf_jobs;
    // The parallel leg keeps its per-worker telemetry: when a speedup
    // datapoint looks flat, the aqt_pool_worker_* breakdown (cells per
    // worker, busy vs idle, chunk latency) says whether the pool starved,
    // imbalanced, or serialized.
    PoolTelemetry parallel_telemetry;
    const auto timed = [&](unsigned jobs, bool keep_telemetry) {
      PoolOptions options;
      if (keep_telemetry && trace_log != nullptr)
        options.trace = trace_log.get();
      const auto begin = std::chrono::steady_clock::now();
      const RunPoolReport pool_report = run_pool(specs, jobs, options);
      const auto end = std::chrono::steady_clock::now();
      for (const RunResult& r : pool_report.results)
        if (!r.ok())
          std::fprintf(stderr, "speedup sweep cell %s failed: %s\n",
                       r.name.c_str(), r.error.c_str());
      if (keep_telemetry) parallel_telemetry = pool_report.telemetry;
      return std::chrono::duration<double>(end - begin).count();
    };
    const double serial_secs = timed(1, false);
    const double parallel_secs = timed(hw, true);
    const double speedup =
        parallel_secs > 0.0 ? serial_secs / parallel_secs : 1.0;
    registry
        .gauge("aqt_runner_parallel_speedup",
               "Serial / parallel wall-clock ratio of the reference sweep "
               "on the run-pool")
        .set(speedup);
    registry
        .gauge("aqt_runner_parallel_jobs",
               "Worker threads used for the parallel leg")
        .set(static_cast<double>(hw));
    collect_pool_worker_metrics(parallel_telemetry, registry);
    std::printf("run-pool speedup: %.2fx on %u worker(s) "
                "(%.3fs serial, %.3fs parallel, %zu cells)\n",
                speedup, hw, serial_secs, parallel_secs, specs.size());
    for (std::size_t w = 0; w < parallel_telemetry.workers.size(); ++w) {
      const PoolWorkerStats& s = parallel_telemetry.workers[w];
      std::printf("  worker %zu: %llu cell(s) in %llu chunk(s), "
                  "busy %.3fs idle %.3fs\n",
                  w, static_cast<unsigned long long>(s.cells),
                  static_cast<unsigned long long>(s.steals),
                  static_cast<double>(s.busy_nanos) * 1e-9,
                  static_cast<double>(s.idle_nanos) * 1e-9);
    }
    speedup_out = speedup;
    jobs_out = hw;
  }

  // aqt-audit selfhost datapoint: wall-clock of the full repo self-audit
  // (the same parallel per-file phase + serial cross-TU finalize the CI
  // audit-selfhost step runs), pinned to 4 workers so the number is
  // comparable across runners.  CI gates this below 10 seconds.
  {
    const std::string root(AQT_SOURCE_DIR);
    const std::vector<std::string> files = audit::collect_audit_files(
        {root + "/src", root + "/tools", root + "/tests"});
    const auto begin = std::chrono::steady_clock::now();
    std::vector<audit::AuditUnit> units(files.size());
    parallel_for_each(
        files.size(), 4,
        [&](std::size_t i) {  // aqt-audit: allow(AUD010) -- joins on return
          // aqt-audit: allow(AUD008) -- slot i has exactly one writer
          units[i] = audit::audit_unit_file(files[i]);
        });
    const std::vector<audit::AuditReport> reports =
        audit::finalize_project(std::move(units));
    const auto end = std::chrono::steady_clock::now();
    const double selfhost_secs =
        std::chrono::duration<double>(end - begin).count();
    std::size_t findings = 0;
    for (const audit::AuditReport& r : reports) findings += r.findings.size();
    registry
        .gauge("aqt_audit_selfhost_seconds",
               "Wall-clock of the full repo self-audit (parallel unit "
               "phase on 4 workers + serial finalize)")
        .set(selfhost_secs);
    registry
        .gauge("aqt_audit_selfhost_files",
               "Sources covered by the selfhost audit datapoint")
        .set(static_cast<double>(files.size()));
    std::printf("audit selfhost: %zu files, %zu finding(s), %.3fs on 4 "
                "workers\n",
                files.size(), findings, selfhost_secs);
    selfhost_out = selfhost_secs;
  }

  obs::write_file(path, obs::to_json(registry, "bench_e12_engine_perf"));
  std::printf("perf snapshot (%.0f steps/sec) written to %s\n",
              profiler->report().steps_per_second(), path.c_str());

  if (trace_log != nullptr) {
    trace_log->write(trace_path, "bench_e12_engine_perf");
    std::printf("perfetto trace (%zu events) written to %s\n",
                trace_log->size(), trace_path.c_str());
  }

  // --perf-trajectory: append one compact JSONL datapoint per snapshot so
  // the repo accumulates a throughput history across commits (CI's
  // perf-smoke step appends to BENCH_trajectory.jsonl).  The commit id
  // resolves --commit, then AQT_GIT_COMMIT, then CI's GITHUB_SHA, and is
  // never left empty — a blank id makes the history row unattributable.
  if (!trajectory_path.empty()) {
    std::FILE* f = std::fopen(trajectory_path.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot append trajectory to %s\n",
                   trajectory_path.c_str());
      return;
    }
    std::string commit = commit_flag;
    for (const char* var : {"AQT_GIT_COMMIT", "GITHUB_SHA"}) {
      if (!commit.empty()) break;
      // aqt-audit: allow(AUD001) -- trajectory metadata: commit id only
      const char* value = std::getenv(var);
      if (value != nullptr && *value != '\0') commit = value;
    }
    if (commit.empty()) commit = "unknown";
    const obs::StepProfiler::Report rep = profiler->report();
    std::fprintf(
        f,
        "{\"ts\":%lld,\"commit\":\"%s\",\"steps_per_second\":%.0f,"
        "\"parallel_speedup\":%.3f,\"parallel_jobs\":%u,"
        "\"selfhost_seconds\":%.3f}\n",
        // aqt-audit: allow(AUD001) -- datapoint timestamp, not sim state
        static_cast<long long>(std::time(nullptr)), commit.c_str(),
        rep.steps_per_second(), speedup_out, jobs_out, selfhost_out);
    std::fclose(f);
    std::printf("trajectory datapoint appended to %s\n",
                trajectory_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our --perf-json/--perf-jobs/--perf-trajectory/--commit/
  // --trace-out flags before google-benchmark parses argv (it rejects
  // flags it does not know).
  std::string perf_json;
  std::string perf_trajectory;
  std::string commit;
  std::string trace_out;
  unsigned perf_jobs = 0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf-json=", 12) == 0)
      perf_json = argv[i] + 12;
    else if (std::strncmp(argv[i], "--perf-jobs=", 12) == 0)
      perf_jobs = static_cast<unsigned>(std::strtoul(argv[i] + 12, nullptr, 10));
    else if (std::strncmp(argv[i], "--perf-trajectory=", 18) == 0)
      perf_trajectory = argv[i] + 18;
    else if (std::strncmp(argv[i], "--commit=", 9) == 0)
      commit = argv[i] + 9;
    else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
      trace_out = argv[i] + 12;
    else
      argv[kept++] = argv[i];
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!perf_json.empty())
    write_perf_json(perf_json, perf_jobs, perf_trajectory, commit, trace_out);
  return 0;
}
