// E10 -- universal-stability contrast: the LPS schedule wrecks FIFO but
// not the universally stable policies.
//
// Two sub-experiments:
//  (a) verbatim replay: record the complete Theorem 3.17 injection/reroute
//      schedule from a FIFO run, then replay the *identical* trace against
//      every historic protocol (rerouting is only sound for historic
//      policies, Lemma 3.3).  Under FIFO the queues grow geometrically;
//      under LIS -- universally stable (Andrews et al.) -- and the others,
//      the amplification cascade never forms and queues stay near S*.
//  (b) adaptive: let the phase-machine adversary adapt to each protocol's
//      queue state; it aborts once the cascade collapses.
#include <iostream>
#include <memory>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/stability.hpp"
#include "aqt/trace/trace.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;
  const std::int64_t M = 8;
  const std::int64_t s_star = 800;
  const ChainedGadgets net = build_closed_chain(cfg.n, M);

  std::cout << "E10: protocol contrast under the Theorem 3.17 schedule "
               "(r = " << r << ", M = " << M << ", S* = " << s_star
            << ")\n\n";

  // --- (a) Record the FIFO run, then replay verbatim. ---------------------
  Trace trace;
  Time duration = 0;
  {
    FifoProtocol fifo;
    Engine eng(net.graph, fifo);
    setup_flat_queue(eng, net, 0, s_star);
    LpsAdversary adv(net, cfg, /*max_iterations=*/2);
    RecordingAdversary rec(adv, trace);
    while (!adv.finished(eng.now() + 1)) eng.step(&rec);
    duration = eng.now();
  }
  std::cout << "recorded FIFO schedule: " << trace.injection_count()
            << " injections, " << trace.size() - trace.injection_count()
            << " reroutes, " << duration << " steps\n\n";

  Table replay_t({"protocol", "max queue", "final in flight",
                  "skipped reroutes", "growth verdict"});
  CsvWriter csv("bench_e10_protocol_contrast.csv",
                {"mode", "protocol", "max_queue", "in_flight",
                 "skipped_reroutes", "verdict"});
  for (const char* name : {"FIFO", "LIS", "NIS", "LIFO", "FFS", "NTS"}) {
    auto protocol = make_protocol(name);
    Engine eng(net.graph, *protocol);
    setup_flat_queue(eng, net, 0, s_star);
    ReplayAdversary replay(trace);
    eng.run(&replay, duration);
    // A queue peak well beyond the initial S* means the cascade formed.
    const bool grew = eng.metrics().max_queue_global() >
                      2 * static_cast<std::uint64_t>(s_star);
    const char* verdict = grew ? "GROWS (unstable)" : "stays near S*";
    replay_t.rowv(name,
                  static_cast<long long>(eng.metrics().max_queue_global()),
                  static_cast<long long>(eng.packets_in_flight()),
                  static_cast<long long>(replay.skipped_reroutes()),
                  verdict);
    csv.rowv("replay", name,
             static_cast<long long>(eng.metrics().max_queue_global()),
             static_cast<long long>(eng.packets_in_flight()),
             static_cast<long long>(replay.skipped_reroutes()), verdict);
  }
  std::cout << "(a) verbatim replay of the recorded schedule:\n\n"
            << replay_t << "\n";

  // --- (b) Adaptive adversary per protocol. -------------------------------
  Table adapt_t({"protocol", "iterations", "final flat queue", "max queue",
                 "verdict"});
  for (const char* name : {"FIFO", "LIS", "NIS", "LIFO", "FFS", "NTS"}) {
    auto protocol = make_protocol(name);
    Engine eng(net.graph, *protocol);
    setup_flat_queue(eng, net, 0, s_star);
    LpsAdversary adv(net, cfg, /*max_iterations=*/2);
    try {
      while (!adv.finished(eng.now() + 1) && eng.now() < 2000000)
        eng.step(&adv);
    } catch (const PreconditionError&) {
      // The adversary lost its queue mid-phase: the cascade collapsed.
    }
    std::int64_t final_s = 0;
    bool grew = false;
    if (!adv.history().empty()) {
      final_s = adv.history().back().s_end;
      grew = adv.history().back().s_end > adv.history().front().s_start;
    }
    const char* verdict = grew ? "GROWS (unstable)" : "collapses (stable)";
    adapt_t.rowv(name, static_cast<long long>(adv.history().size()),
                 static_cast<long long>(final_s),
                 static_cast<long long>(eng.metrics().max_queue_global()),
                 verdict);
    csv.rowv("adaptive", name,
             static_cast<long long>(eng.metrics().max_queue_global()),
             static_cast<long long>(eng.packets_in_flight()), 0ll, verdict);
  }
  std::cout << "(b) adaptive phase machine per protocol:\n\n"
            << adapt_t
            << "\nShape check: only FIFO amplifies.  Its rate-proportional "
               "mixing is what Claims 3.8-3.12 exploit; LIS serves the old "
               "packets first, so the decoy streams never delay them and "
               "the R_i cascade cannot form -- consistent with LIS's "
               "universal stability.\n";
  return 0;
}
