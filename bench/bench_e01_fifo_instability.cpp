// E1 -- Theorem 3.17 / Fig. 3.2: FIFO instability at r = 1/2 + eps.
//
// Runs the full iterative adversary on the closed gadget chain and prints
// the per-iteration queue amplification: the paper predicts every iteration
// multiplies the flat ingress queue by at least r^3 (1+eps)^M / 4 (with the
// paper's conservative chain length), and exactly by
// (1-R_n) * (2(1-R_n))^(M-1) * r^3 with the measured gain.
#include <cmath>
#include <iostream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  const Rat r(7, 10);
  LpsConfig cfg = make_lps_config(r);
  cfg.enforce_s0 = false;  // The loop starts below S0 and grows past it.
  const std::int64_t M = 8;
  const std::int64_t iterations = 3;
  const std::int64_t s_star = 1600;
  const double exact = lps_measured_iteration_growth(r.to_double(), cfg.n, M);

  std::cout << "E1: FIFO instability at r = " << r << " (eps = " << cfg.eps()
            << ")\n"
            << "network: closed chain of M = " << M << " gadgets F_n, n = "
            << cfg.n << " (paper Fig. 3.2)\n"
            << "paper guarantee needs M >= " << lps_min_M(cfg.eps())
            << " (growth r^3(1+eps)^M/4 > 1); the measured per-gadget gain "
               "2(1-R_n) = "
            << lps_gadget_gain(r.to_double(), cfg.n)
            << "\nalready sustains growth from M >= "
            << lps_empirical_min_M(r.to_double(), cfg.n)
            << ", so M = 8 suffices in practice.\n\n";

  const ChainedGadgets net = build_closed_chain(cfg.n, M);
  FifoProtocol fifo;
  EngineConfig ec;
  ec.audit_rates = true;  // Machine-verify the whole composed adversary.
  Engine eng(net.graph, fifo, ec);
  setup_flat_queue(eng, net, 0, s_star);
  LpsAdversary adv(net, cfg, iterations);
  while (!adv.finished(eng.now() + 1)) eng.step(&adv);

  Table t({"iteration", "steps", "S start", "S end", "growth",
           "exact prediction"});
  CsvWriter csv("bench_e01_fifo_instability.csv",
                {"iteration", "t_start", "t_end", "s_start", "s_end",
                 "growth", "predicted"});
  for (const auto& rec : adv.history()) {
    const double growth = rec.s_start > 0
                              ? static_cast<double>(rec.s_end) /
                                    static_cast<double>(rec.s_start)
                              : 0.0;
    t.rowv(static_cast<long long>(rec.iteration),
           static_cast<long long>(rec.t_end - rec.t_start),
           static_cast<long long>(rec.s_start),
           static_cast<long long>(rec.s_end), Table::cell(growth, 3),
           Table::cell(exact, 3));
    csv.rowv(static_cast<long long>(rec.iteration),
             static_cast<long long>(rec.t_start),
             static_cast<long long>(rec.t_end),
             static_cast<long long>(rec.s_start),
             static_cast<long long>(rec.s_end), growth, exact);
  }
  std::cout << t << "\n";
  std::cout << "total steps " << eng.now() << ", max queue "
            << eng.metrics().max_queue_global() << ", packets injected "
            << eng.total_injected() << "\n"
            << "end-to-end latency: "
            << eng.metrics().latency_histogram().summary()
            << "\n(instability shows up in the tail: the p99 latency is "
               "dominated by packets stuck behind the amplified queues)\n";

  eng.finalize_audit();
  const auto feas = check_rate_r(eng.audit(), r);
  std::cout << "exact rate-" << r.str()
            << " feasibility of the composed adversary (every injection "
               "and Lemma 3.3 reroute): "
            << feas.describe(net.graph) << "\n";

  const auto& h = adv.history();
  const bool unbounded = feas.ok && h.size() >= 2 &&
                         h.back().s_end > 2 * h.front().s_start;

  // --- "Any rate above 1/2": repeat close to the threshold. -----------------
  std::cout << "\napproaching the threshold (chains sized by the exact "
               "growth formula):\n\n";
  Table low({"r", "eps", "n", "M", "iterations", "S start", "S end",
             "growth/iter"});
  CsvWriter low_csv("bench_e01_low_eps.csv",
                    {"r", "eps", "n", "M", "iterations", "s_start", "s_end",
                     "growth_per_iter"});
  bool low_ok = true;
  struct LowCase {
    Rat rate;
    std::int64_t iters;
    std::int64_t s_star;
  };
  for (const LowCase& c : {LowCase{Rat(11, 20), 2, 1600},
                           LowCase{Rat(51, 100), 1, 3000}}) {
    LpsConfig lcfg = make_lps_config(c.rate);
    lcfg.enforce_s0 = false;
    const std::int64_t lm =
        lps_empirical_min_M(c.rate.to_double(), lcfg.n) + 1;
    const ChainedGadgets lnet = build_closed_chain(lcfg.n, lm);
    FifoProtocol lfifo;
    Engine leng(lnet.graph, lfifo);
    setup_flat_queue(leng, lnet, 0, c.s_star);
    LpsAdversary ladv(lnet, lcfg, c.iters);
    while (!ladv.finished(leng.now() + 1)) leng.step(&ladv);
    const auto& lh = ladv.history();
    const std::int64_t s0v = lh.empty() ? 0 : lh.front().s_start;
    const std::int64_t s1v = lh.empty() ? 0 : lh.back().s_end;
    const double per_iter =
        (s0v > 0 && !lh.empty())
            ? std::pow(static_cast<double>(s1v) / static_cast<double>(s0v),
                       1.0 / static_cast<double>(lh.size()))
            : 0.0;
    low_ok = low_ok && s1v > s0v;
    low.rowv(c.rate.str(), Table::cell(lcfg.eps(), 3),
             static_cast<long long>(lcfg.n), static_cast<long long>(lm),
             static_cast<long long>(lh.size()), static_cast<long long>(s0v),
             static_cast<long long>(s1v), Table::cell(per_iter, 3));
    low_csv.rowv(c.rate.str(), lcfg.eps(), static_cast<long long>(lcfg.n),
                 static_cast<long long>(lm),
                 static_cast<long long>(lh.size()),
                 static_cast<long long>(s0v), static_cast<long long>(s1v),
                 per_iter);
  }
  std::cout << low;

  std::cout << ((unbounded && low_ok)
                    ? "\nRESULT: queues grow without bound at every tested "
                      "rate -- down to r = 0.51 -- as Theorem 3.17 proves "
                      "for every rate above 1/2.\n"
                    : "\nRESULT: growth NOT observed (unexpected).\n");
  return (unbounded && low_ok) ? 0 : 1;
}
