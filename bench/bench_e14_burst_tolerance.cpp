// E14 -- extension beyond the paper: burst tolerance under leaky-bucket
// ((b, r), a.k.a. (sigma, rho)) traffic.
//
// The paper's stability theorems are stated for (w, r) adversaries.  Much
// of the surrounding literature (Cruz's network calculus [9, 10]; Andrews
// et al.) uses the bursty (b, r) model instead.  This experiment maps the
// empirical landscape: with the rate held at the paper's safe threshold
// r = 1/(d+1), queue peaks grow only additively with the burst b — bursts
// hurt transiently, rate is what decides stability, mirroring the paper's
// message that the threshold is about *rate*.
#include <iostream>
#include <memory>

#include "aqt/adversaries/bucket.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  const std::int64_t d = 3;
  const Rat r(1, d + 1);
  const Time steps = 6000;

  std::cout << "E14 (extension): leaky-bucket traffic at r = 1/(d+1) = "
            << r << ", d = " << d << ", " << steps << " steps\n\n";

  Table t({"burst b", "protocol", "injected", "max queue", "max residence",
           "p99 latency", "bucket-feasible"});
  CsvWriter csv("bench_e14_burst_tolerance.csv",
                {"burst", "protocol", "injected", "max_queue",
                 "max_residence", "p99_latency", "feasible"});
  for (const std::int64_t burst : {1, 2, 4, 8, 16}) {
    for (const char* proto : {"FIFO", "LIS", "NTG"}) {
      const Graph g = make_grid(5, 5);
      auto protocol = make_protocol(proto);
      EngineConfig ec;
      ec.audit_rates = true;
      Engine eng(g, *protocol, ec);
      BucketAdversary::Config cfg;
      cfg.burst = burst;
      cfg.rate = r;
      cfg.max_route_len = d;
      cfg.seed = 5;
      cfg.attempts_per_step = 8;
      BucketAdversary adv(g, cfg);
      eng.run(&adv, steps);
      eng.finalize_audit();
      const bool feasible =
          check_bucket(eng.audit(), burst, r).ok;
      t.rowv(static_cast<long long>(burst), proto,
             static_cast<long long>(eng.total_injected()),
             static_cast<long long>(eng.metrics().max_queue_global()),
             static_cast<long long>(eng.metrics().max_residence_global()),
             static_cast<long long>(
                 eng.metrics().latency_histogram().quantile(0.99)),
             feasible);
      csv.rowv(static_cast<long long>(burst), proto,
               static_cast<long long>(eng.total_injected()),
               static_cast<long long>(eng.metrics().max_queue_global()),
               static_cast<long long>(eng.metrics().max_residence_global()),
               static_cast<long long>(
                   eng.metrics().latency_histogram().quantile(0.99)),
               feasible ? 1 : 0);
    }
  }
  std::cout << t
            << "\nShape check: peaks scale roughly additively with b while "
               "the system stays stable -- the burst parameter shifts "
               "transients, the rate decides stability (the paper's "
               "threshold story in the (b, r) model).\n";
  return 0;
}
