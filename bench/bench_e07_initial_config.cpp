// E7 -- Corollaries 4.5/4.6 and Observation 4.4: stability with an
// arbitrary S-initial-configuration.
//
// For a range of initial queue sizes S, runs (w, r) traffic with r strictly
// below the threshold and compares the worst residence against the
// corollary bound; also tabulates the Observation 4.4 window w* that
// replays the configuration from empty buffers.
#include <iostream>
#include <memory>

#include "aqt/analysis/bounds.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/experiments/sweep.hpp"
#include "aqt/topology/generators.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  const std::int64_t d = 3;
  const std::int64_t w = 8;
  const Rat r(1, 8);  // Strictly below both 1/(d+1) = 1/4 and 1/d = 1/3.

  std::cout << "E7: S-initial-configuration stability (Corollaries 4.5/4.6, "
               "Observation 4.4)\n"
            << "d = " << d << ", w = " << w << ", r = " << r << "\n\n";

  Table t({"S initial", "protocol", "residence worst", "Cor 4.5 bound",
           "Cor 4.6 bound (tp)", "Obs 4.4 w* (r*=1/4)", "ok"});
  CsvWriter csv("bench_e07_initial_config.csv",
                {"S", "protocol", "max_residence", "cor45", "cor46",
                 "w_star", "ok"});
  int violations = 0;
  for (const std::int64_t S : {10, 50, 200, 800}) {
    const std::int64_t cor45 = corollary45_residence_bound(S, w, r, d);
    const std::int64_t cor46 = corollary46_residence_bound(S, w, r, d);
    const std::int64_t w_star = observation44_w_star(S, w, r, Rat(1, 4));

    SweepConfig cfg;
    cfg.protocols = {"FIFO", "LIS", "LIFO", "NTG"};
    cfg.topologies = {{"grid4x4", [] { return make_grid(4, 4); }}};
    cfg.seeds = {31};
    cfg.steps = 5000;
    cfg.traffic.w = w;
    cfg.traffic.r = r;
    cfg.traffic.max_route_len = d;
    cfg.setup = [S](Engine& eng, const Graph& g) {
      // S packets stacked on one 3-hop route at time 0.
      const Route start = {g.edge_by_name("h0_0"), g.edge_by_name("h0_1"),
                           g.edge_by_name("h0_2")};
      for (std::int64_t i = 0; i < S; ++i) eng.add_initial_packet(start);
    };

    for (const auto& a : aggregate_sweep(run_sweep(cfg))) {
      if (!a.all_feasible) return 2;
      const bool tp = make_protocol(a.protocol)->is_time_priority();
      const std::int64_t bound = tp ? cor46 : cor45;
      const bool ok = a.worst_residence <= bound;
      if (!ok) ++violations;
      t.rowv(static_cast<long long>(S), a.protocol,
             static_cast<long long>(a.worst_residence),
             static_cast<long long>(cor45), static_cast<long long>(cor46),
             static_cast<long long>(w_star), ok);
      csv.rowv(static_cast<long long>(S), a.protocol,
               static_cast<long long>(a.worst_residence),
               static_cast<long long>(cor45), static_cast<long long>(cor46),
               static_cast<long long>(w_star), ok ? 1 : 0);
    }
  }
  std::cout << t << "\n"
            << (violations == 0
                    ? "RESULT: every run stayed within its corollary bound; "
                      "the bounds grow linearly in S as Observation 4.4's "
                      "w* construction predicts.\n"
                    : "RESULT: VIOLATIONS FOUND.\n");
  return violations == 0 ? 0 : 1;
}
