// E2 -- Lemma 3.6 / Fig. 3.1: one gadget hand-off.
//
// Sweeps S and r; for each cell, sets up C(S, F) on F_n^2, runs the
// hand-off adversary, and reports measured S' against the exact prediction
// 2S(1 - R_n) and the paper's guarantee S(1 + eps), plus the rate-r
// feasibility verdict of the composed adversary.
#include <iostream>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

int main() {
  using namespace aqt;
  std::cout << "E2: gadget amplification (Lemma 3.6) -- measured S' vs "
               "2S(1-R_n) vs the S(1+eps) guarantee\n\n";

  Table t({"r", "n", "S", "S' measured", "S' exact", "S(1+eps)", "gain",
           "rate-feasible"});
  CsvWriter csv("bench_e02_gadget_amplify.csv",
                {"r", "n", "S", "s_prime_measured", "s_prime_exact",
                 "guarantee", "gain", "feasible"});

  for (const auto& r : {Rat(3, 5), Rat(13, 20), Rat(7, 10), Rat(3, 4)}) {
    LpsConfig cfg = make_lps_config(r);
    cfg.enforce_s0 = false;
    for (const std::int64_t S : {400, 800, 1600, 3200}) {
      const ChainedGadgets net = build_chain(cfg.n, 2);
      FifoProtocol fifo;
      EngineConfig ec;
      ec.audit_rates = true;
      Engine eng(net.graph, fifo, ec);
      setup_gadget_invariant(eng, net, 0, S);
      LpsHandoff phase(net, cfg, 0);
      while (!phase.finished(eng.now() + 1)) eng.step(&phase);

      const auto rep = inspect_gadget(eng, net, 1);
      eng.finalize_audit();
      const bool feasible = check_rate_r(eng.audit(), r).ok;
      const double exact =
          lps_s_prime(static_cast<double>(S), r.to_double(), cfg.n);
      const double guarantee =
          static_cast<double>(S) * (1.0 + cfg.eps());
      const double gain =
          static_cast<double>(rep.S()) / static_cast<double>(S);
      t.rowv(r.str(), static_cast<long long>(cfg.n),
             static_cast<long long>(S), static_cast<long long>(rep.S()),
             Table::cell(exact, 1), Table::cell(guarantee, 1),
             Table::cell(gain, 4), feasible);
      csv.rowv(r.str(), static_cast<long long>(cfg.n),
               static_cast<long long>(S), static_cast<long long>(rep.S()),
               exact, guarantee, gain, feasible ? 1 : 0);
    }
  }
  std::cout << t
            << "\nShape check: measured S' tracks the exact formula within "
               "O(n) and always beats the paper's S(1+eps) guarantee.\n";
  return 0;
}
