// A13 -- ablations of the construction's design choices (not a paper
// table; referenced from DESIGN.md).
//
// (a) decoy streams: Lemma 3.6's part-(2) single-edge packets are what
//     slows the old packets to the R_i rates.  Removing them should kill
//     the amplification (gain collapses towards ~1 minus drain losses).
// (b) gadget size n: the proof picks n(eps) so that 2(1 - R_n) >= 1 + eps;
//     sweeping n shows the gain saturating towards 2r and why small n
//     fails.
#include <iostream>
#include <vector>

#include "aqt/adversaries/lps.hpp"
#include "aqt/analysis/lps_math.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/util/csv.hpp"
#include "aqt/util/table.hpp"

namespace {

using namespace aqt;

double measured_gain(const LpsConfig& cfg, std::int64_t S) {
  const ChainedGadgets net = build_chain(cfg.n, 2);
  FifoProtocol fifo;
  Engine eng(net.graph, fifo);
  setup_gadget_invariant(eng, net, 0, S);
  LpsHandoff phase(net, cfg, 0);
  while (!phase.finished(eng.now() + 1)) eng.step(&phase);
  return static_cast<double>(inspect_gadget(eng, net, 1).S()) /
         static_cast<double>(S);
}

}  // namespace

int main() {
  using namespace aqt;
  const Rat r(7, 10);
  const std::int64_t S = 1200;

  std::cout << "A13: ablations at r = " << r << ", S = " << S << "\n\n";

  // --- (a) decoy streams on/off. ------------------------------------------
  LpsConfig base = make_lps_config(r);
  base.enforce_s0 = false;
  LpsConfig no_decoys = base;
  no_decoys.disable_decoys = true;

  Table ta({"variant", "gain S'/S", "note"});
  ta.rowv("full construction", Table::cell(measured_gain(base, S), 4),
          "decoys slow old packets to the R_i cascade");
  ta.rowv("no decoy streams", Table::cell(measured_gain(no_decoys, S), 4),
          "old packets drain freely; amplification gone");
  std::cout << "(a) part-(2) decoy streams:\n\n" << ta << "\n";

  // --- (b) gadget size n. --------------------------------------------------
  Table tb({"n", "exact gain 2(1-R_n)", "measured gain", ">= 1+eps"});
  CsvWriter csv("bench_a13_ablation.csv",
                {"n", "gain_exact", "gain_measured", "sufficient"});
  const double eps = base.eps();
  const std::vector<std::int64_t> n_values = {2, 3, 5, 7, base.n,
                                              base.n + 4};
  for (const std::int64_t n : n_values) {
    LpsConfig cfg = base;
    cfg.n = n;
    const double exact = lps_gadget_gain(r.to_double(), n);
    const double measured = measured_gain(cfg, S);
    tb.rowv(static_cast<long long>(n), Table::cell(exact, 4),
            Table::cell(measured, 4), exact >= 1.0 + eps);
    csv.rowv(static_cast<long long>(n), exact, measured,
             exact >= 1.0 + eps ? 1 : 0);
  }
  std::cout << "(b) gadget size n (paper's choice: n = " << base.n
            << " for eps = " << eps << "):\n\n"
            << tb
            << "\nShape check: the gain grows with n, saturating at 2r = "
            << 2.0 * r.to_double()
            << "; the paper's n is the first value clearing 1 + eps with "
               "the proof's slack.\n";
  return 0;
}
