// Stability certificates — mapping a verified trace onto the paper's
// theorems.
//
// Given the declared adversary constraint and the longest route d observed
// in a verified trace, the checker decides which stability theorem (if
// any) covers the run:
//
//   * Theorem 4.3 — a time-priority protocol against a (w, r) adversary
//     with r <= 1/d is stable, and no packet waits more than ceil(w * r)
//     steps in any buffer;
//   * Theorem 4.1 — ANY greedy protocol against a (w, r) adversary with
//     r <= 1/(d+1) is stable, with the same per-buffer bound;
//   * Theorem 3.17 (witness) — when the declared rate exceeds the
//     applicable threshold no theorem promises stability; instead the
//     checker looks for the instability *witness* the paper's lower-bound
//     constructions produce: monotone growth of the total backlog.
//
// The waiting bound is taken from src/aqt/analysis/bounds (the library's
// statement of the theorem) and cross-checked against an independent
// exact-rational computation here, so a bug in either side surfaces as a
// certificate failure rather than silent agreement.
#pragma once

#include <cstdint>
#include <string>

#include "aqt/core/types.hpp"
#include "aqt/util/rational.hpp"
#include "aqt/verify/verifier.hpp"

namespace aqt {

enum class CertificateKind : std::uint8_t {
  kNone,                    ///< No theorem covers the declared constraint.
  kGreedyStability,         ///< Theorem 4.1 (r <= 1/(d+1), any greedy).
  kTimePriorityStability,   ///< Theorem 4.3 (r <= 1/d, time-priority).
  kInstabilityWitness,      ///< Theorem 3.17 regime: growth witness.
};

[[nodiscard]] const char* certificate_kind_name(CertificateKind kind);

/// The certificate artifact for one verified trace.  `applicable` says a
/// theorem's hypotheses matched the declared run; `verified` additionally
/// says the trace evidence (clean verification + observed waits or growth)
/// is consistent with the theorem's conclusion.
struct StabilityCertificate {
  CertificateKind kind = CertificateKind::kNone;
  bool applicable = false;
  bool verified = false;
  std::string theorem;       ///< e.g. "Theorem 4.3 (time-priority stability)"
  std::string protocol;
  std::int64_t w = 0;        ///< Declared window (0 for rate-only runs).
  Rat r;                     ///< Declared rate.
  std::int64_t d = 0;        ///< Longest observed route.
  Rat threshold;             ///< Stability threshold for (protocol, d).
  std::int64_t bound = 0;    ///< ceil(w * r) per-buffer waiting bound.
  Time observed_max_wait = 0;
  std::uint64_t trace_hash = 0;
  std::string detail;        ///< Why (not) applicable / (not) verified.

  /// Renders the certificate artifact (the text written to *.cert files).
  [[nodiscard]] std::string text() const;
};

/// Builds the certificate for a verification report.  Pure function of the
/// report; never throws for content reasons.
StabilityCertificate make_stability_certificate(const VerifyReport& report);

}  // namespace aqt
