// Offline trace verification — the aqt-verify core.
//
// The engine's own invariant auditor (core/invariants.hpp) runs *inside*
// the process being checked; a recorded run is therefore trusted output,
// not checked evidence.  This module closes that gap: it replays a
// recorded run trace (trace/run_trace.hpp) record by record against an
// independent model — plain FIFO queues of creation ordinals over the
// trace's self-described graph — and re-derives every AQT rule from first
// principles, sharing no step logic with the engine:
//
//   * two-substep semantics   -- records appear in substep order (sends,
//                                then absorptions, then adversary actions,
//                                then depths), and a packet is never
//                                forwarded in the step it arrived;
//   * work conservation       -- every buffer nonempty at the start of a
//                                step forwards exactly one packet (§2);
//   * per-edge unit capacity  -- at most one send per edge per step;
//   * FIFO / time-priority    -- under FIFO the sent packet is the head of
//                                the independently tracked arrival queue;
//                                under any time-priority protocol
//                                (Definition 4.2) no resident that arrived
//                                before the sent packet's injection is
//                                bypassed;
//   * route contiguity        -- injected routes and rerouted suffixes are
//                                contiguous simple paths of the described
//                                graph, and every hop follows the route;
//   * (w, r) / rate-r windows -- the declared adversary constraint holds
//                                over final effective routes, checked with
//                                an independent brute-force window scan
//                                (not the engine's incremental algebra);
//   * packet conservation     -- ordinals are dense, each packet is
//                                absorbed exactly once at route completion,
//                                recorded queue depths match the model, and
//                                the footer totals balance end-to-end;
//   * content integrity       -- the streaming hash in the footer matches
//                                the bytes read.
//
// Every violation is reported with a stable code, the step number, and the
// offending packet/edge — collected, never fail-fast — in human-readable
// or JSON form, mirroring aqt-lint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqt/core/types.hpp"
#include "aqt/trace/run_trace.hpp"

namespace aqt {

inline constexpr std::uint64_t kNoOrdinal =
    std::numeric_limits<std::uint64_t>::max();

/// One rule violation found in a trace.  `code` is a stable identifier
/// (e.g. "work-conservation", "fifo-order", "queue-depth", "trace-hash").
struct VerifyFinding {
  std::string code;
  Time step = 0;                      ///< 0 when not step-attributable.
  std::uint64_t ordinal = kNoOrdinal; ///< Offending packet, if any.
  EdgeId edge = kNoEdge;              ///< Offending edge, if any.
  std::string message;
};

/// The full verdict for one trace, plus the summary statistics the
/// stability-certificate checker (certificate.hpp) consumes.
struct VerifyReport {
  std::string file;
  std::string protocol;
  RunTraceMeta meta;
  std::vector<VerifyFinding> findings;
  bool findings_truncated = false;  ///< Collection capped (cascade guard).

  Time steps = 0;
  std::uint64_t injected = 0;  ///< Packets created (initial + injections).
  std::uint64_t absorbed = 0;
  std::uint64_t resident = 0;  ///< Still buffered at end of trace.
  std::int64_t observed_d = 0; ///< Longest final effective route.
  Time max_wait = 0;           ///< Max per-buffer waiting time observed,
                               ///< including pending waits of residents.
  std::uint64_t trace_hash = 0;  ///< Recomputed content hash.
  /// Live-packet count after each verified step (index t-1); the
  /// queue-growth witness for instability certificates.
  std::vector<std::uint64_t> occupancy;

  [[nodiscard]] bool ok() const { return findings.empty(); }
};

/// Verifies one parsed trace.  Content problems become findings, never
/// exceptions.
VerifyReport verify_run_trace(const RunTrace& trace, std::string label);

/// Parses and verifies a file; parse and I/O errors become a single
/// "parse-error" finding so callers get a uniform report.
VerifyReport verify_file(const std::string& path);

/// Protocol classification tables the verifier derives its checks from —
/// intentionally independent of core/protocol.hpp's virtual methods.
/// Unknown names return false (and the verifier reports protocol-unknown).
[[nodiscard]] bool verify_protocol_known(const std::string& name);
[[nodiscard]] bool verify_protocol_fifo(const std::string& name);
[[nodiscard]] bool verify_protocol_time_priority(const std::string& name);
[[nodiscard]] bool verify_protocol_historic(const std::string& name);

/// Renders a batch of reports.
std::string to_human(const std::vector<VerifyReport>& reports);
std::string to_json(const std::vector<VerifyReport>& reports);

}  // namespace aqt
