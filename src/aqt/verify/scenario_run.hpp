// Scenario execution support: turn an aqt-lint scenario file into
// everything a recorded, verifiable run needs.
//
// Scenarios identify packets by creation ordinal and edges by name — the
// same protocol-independent identities the adversary Trace uses — so the
// natural execution path is scenario -> Trace -> ReplayAdversary.  This
// header packages that conversion plus the run-trace metadata (protocol,
// declared constraints, scenario digest) so aqt-sim --scenario and the
// tests produce identical evidence.
#pragma once

#include <memory>
#include <string>

#include "aqt/core/protocol.hpp"
#include "aqt/lint/scenario.hpp"
#include "aqt/topology/spec.hpp"
#include "aqt/trace/run_trace.hpp"
#include "aqt/trace/trace.hpp"

namespace aqt {

/// Converts a parsed scenario's script into an adversary trace, resolving
/// edge names against `graph`.  Events are ordered by time; at equal times
/// reroutes precede injections (the engine's application order).  Throws
/// PreconditionError (with the scenario line) on unresolvable edges.
Trace scenario_to_trace(const Scenario& scenario, const Graph& graph);

/// A scenario loaded and ready to run: built topology, fresh protocol,
/// replayable script, and prefilled run-trace metadata.
struct ScenarioRun {
  Scenario scenario;
  TopologySpec topology;
  Trace script;
  RunTraceMeta meta;   ///< protocol/digest/window/rate filled; seed is not.
  Time last_event = 0; ///< Latest scripted time (run at least this far).
};

/// Loads, builds, and converts a scenario file.  The protocol is NOT
/// instantiated here — callers make one per run (stateful protocols such
/// as RANDOM must start fresh for every replay).
ScenarioRun load_scenario_run(const std::string& path);

}  // namespace aqt
