#include "aqt/verify/verifier.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

/// Cascade guard: one corrupted record can invalidate every later one, so
/// collection stops (with a truncation marker) instead of drowning the
/// first cause.
constexpr std::size_t kMaxFindings = 100;

/// The verifier's own protocol taxonomy.  Deliberately a flat table rather
/// than a query against core/protocol.hpp: the whole point of N-version
/// checking is that a bug in the engine's classification cannot silently
/// excuse a trace.
constexpr const char* kKnown[] = {"FIFO", "LIFO", "LIS", "NIS", "SIS",
                                  "FFS",  "NTS",  "FTG", "NTG", "RANDOM"};
constexpr const char* kHistoric[] = {"FIFO", "LIFO", "LIS",   "NIS",
                                     "SIS",  "FFS",  "NTS", "RANDOM"};
constexpr const char* kTimePriority[] = {"FIFO", "LIS"};

template <std::size_t N>
bool in_table(const char* const (&table)[N], const std::string& name) {
  for (const char* entry : table)
    if (name == entry) return true;
  return false;
}

std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

/// The verifier's packet model: identity is the creation ordinal, position
/// is (route, hop).  Dead packets are retained for rate accounting and
/// absorb/reroute diagnosis.
struct ModelPacket {
  Route route;
  std::size_t hop = 0;
  Time inject = 0;   ///< Creation step (0 for initial packets).
  Time arrival = 0;  ///< Step it entered its current buffer.
  bool live = false;
  bool in_transit = false;  ///< Sent this step, not yet re-enqueued.
};

class Verifier {
 public:
  Verifier(const RunTrace& tr, std::string label) : tr_(tr) {
    rep_.file = std::move(label);
    rep_.protocol = tr.meta.protocol;
    rep_.meta = tr.meta;
    rep_.trace_hash = tr.computed_hash;
    queues_.resize(tr.edges.size());
    sent_this_step_.resize(tr.edges.size(), 0);
    queue_checked_.resize(tr.edges.size(), 0);
  }

  VerifyReport run() {
    if (tr_.declared_hash != tr_.computed_hash)
      add("trace-hash", 0, kNoOrdinal, kNoEdge,
          "footer hash " + hash_hex(tr_.declared_hash) +
              " does not match content hash " + hash_hex(tr_.computed_hash) +
              " (trace bytes were altered after recording)");
    if (!verify_protocol_known(tr_.meta.protocol))
      add("protocol-unknown", 0, kNoOrdinal, kNoEdge,
          "protocol '" + tr_.meta.protocol +
              "' is not in the verifier's taxonomy; protocol-specific "
              "checks skipped");
    for (const RunRecord& rec : tr_.records) dispatch(rec);
    if (in_step_) close_step();
    check_footer();
    check_residents();
    check_feasibility();
    return std::move(rep_);
  }

 private:
  void add(std::string code, Time step, std::uint64_t ordinal, EdgeId edge,
           std::string message) {
    if (rep_.findings.size() >= kMaxFindings) {
      rep_.findings_truncated = true;
      return;
    }
    rep_.findings.push_back(VerifyFinding{std::move(code), step, ordinal,
                                          edge, std::move(message)});
  }

  [[nodiscard]] bool edge_ok(EdgeId e) const {
    return e < tr_.edges.size();
  }
  [[nodiscard]] std::string edge_name(EdgeId e) const {
    return edge_ok(e) ? tr_.edges[e].name : std::to_string(e);
  }

  /// Consecutive edges share a node, per the trace's own edge table.
  [[nodiscard]] bool contiguous(const Route& route) const {
    for (std::size_t i = 0; i + 1 < route.size(); ++i)
      if (tr_.edges[route[i]].head != tr_.edges[route[i + 1]].tail)
        return false;
    return true;
  }

  /// A contiguous route is simple iff it never revisits a node.
  [[nodiscard]] bool simple(const Route& route) const {
    if (route.empty()) return true;
    std::vector<NodeId> nodes;
    nodes.reserve(route.size() + 1);
    nodes.push_back(tr_.edges[route[0]].tail);
    for (const EdgeId e : route) nodes.push_back(tr_.edges[e].head);
    std::sort(nodes.begin(), nodes.end());
    return std::adjacent_find(nodes.begin(), nodes.end()) == nodes.end();
  }

  [[nodiscard]] bool route_in_range(const Route& route) const {
    return std::all_of(route.begin(), route.end(),
                       [this](EdgeId e) { return edge_ok(e); });
  }

  void dispatch(const RunRecord& rec) {
    switch (rec.kind) {
      case RunRecord::Kind::kStep: on_step(rec); break;
      case RunRecord::Kind::kInitial: on_create(rec, /*initial=*/true); break;
      case RunRecord::Kind::kSend: on_send(rec); break;
      case RunRecord::Kind::kAbsorb: on_absorb(rec); break;
      case RunRecord::Kind::kReroute: on_reroute(rec); break;
      case RunRecord::Kind::kInject: on_create(rec, /*initial=*/false); break;
      case RunRecord::Kind::kQueue: on_queue(rec); break;
    }
  }

  /// Two-substep record discipline inside a step: sends, absorptions,
  /// adversary actions (reroutes then injections), then depths.  Initial
  /// packets only before step 1.
  enum Phase : int { kSendPhase = 0, kAbsorbPhase, kReroutePhase,
                     kInjectPhase, kQueuePhase };

  /// Returns false (and reports) when the record is out of phase or
  /// appears outside any step; such records are not applied to the model.
  bool require_phase(const RunRecord& rec, int rank, const char* what) {
    if (!in_step_) {
      add("record-order", 0, rec.ordinal,
          edge_ok(rec.edge) ? rec.edge : kNoEdge,
          std::string(what) + " record before the first step header");
      return false;
    }
    if (rank < phase_) {
      if (!phase_reported_) {
        phase_reported_ = true;
        add("record-order", t_, rec.ordinal,
            edge_ok(rec.edge) ? rec.edge : kNoEdge,
            std::string(what) +
                " record out of substep order (expected sends, then "
                "absorptions, then reroutes, then injections, then depths)");
      }
      return false;
    }
    phase_ = rank;
    return true;
  }

  void on_step(const RunRecord& rec) {
    if (in_step_) close_step();
    if (rec.t != t_ + 1)
      add("step-order", rec.t, kNoOrdinal, kNoEdge,
          "step header t=" + std::to_string(rec.t) + " after t=" +
              std::to_string(t_) + " (steps must be consecutive from 1)");
    t_ = rec.t;
    in_step_ = true;
    phase_ = kSendPhase;
    phase_reported_ = false;
    pre_nonempty_.clear();
    for (EdgeId e = 0; e < queues_.size(); ++e)
      if (!queues_[e].empty()) pre_nonempty_.push_back(e);
  }

  void on_send(const RunRecord& rec) {
    if (!require_phase(rec, kSendPhase, "send")) return;
    const EdgeId e = rec.edge;
    if (!edge_ok(e)) {
      add("edge-range", t_, rec.ordinal, kNoEdge,
          "send names edge id " + std::to_string(e) +
              " outside the described network");
      return;
    }
    if (sent_this_step_[e]) {
      add("capacity", t_, rec.ordinal, e,
          "second transmission over edge '" + edge_name(e) +
              "' in one step (unit capacity, paper section 2)");
      return;
    }
    sent_this_step_[e] = 1;
    touched_edges_.push_back(e);

    auto it = packets_.find(rec.ordinal);
    const bool resident = it != packets_.end() && it->second.live &&
                          !it->second.in_transit &&
                          it->second.hop < it->second.route.size() &&
                          it->second.route[it->second.hop] == e;
    if (!resident) {
      add("send-not-resident", t_, rec.ordinal, e,
          "packet " + std::to_string(rec.ordinal) +
              " is not waiting at edge '" + edge_name(e) +
              "' when the trace claims it was forwarded");
      return;
    }
    ModelPacket& p = it->second;

    // Priority discipline against the independently tracked queue.
    std::deque<std::uint64_t>& q = queues_[e];
    if (verify_protocol_fifo(tr_.meta.protocol)) {
      if (!q.empty() && q.front() != rec.ordinal)
        add("fifo-order", t_, rec.ordinal, e,
            "FIFO must forward packet " + std::to_string(q.front()) +
                " (head of '" + edge_name(e) + "') but the trace sends " +
                std::to_string(rec.ordinal));
    } else if (verify_protocol_time_priority(tr_.meta.protocol)) {
      for (const std::uint64_t other : q) {
        if (other == rec.ordinal) continue;
        const ModelPacket& o = packets_.at(other);
        if (o.arrival < p.inject) {
          add("time-priority", t_, rec.ordinal, e,
              "packet " + std::to_string(other) + " arrived at '" +
                  edge_name(e) + "' at t=" + std::to_string(o.arrival) +
                  ", before packet " + std::to_string(rec.ordinal) +
                  " was even injected (t=" + std::to_string(p.inject) +
                  "); a time-priority protocol may not bypass it "
                  "(Definition 4.2)");
          break;
        }
      }
    }
    q.erase(std::find(q.begin(), q.end(), rec.ordinal));

    const Time wait = t_ - p.arrival;
    rep_.max_wait = std::max(rep_.max_wait, wait);
    if (wait < 1)
      add("substep-order", t_, rec.ordinal, e,
          "packet " + std::to_string(rec.ordinal) + " crossed '" +
              edge_name(e) + "' in the same step it arrived (t=" +
              std::to_string(p.arrival) +
              "); sends happen in substep 1, arrivals in substep 2");
    p.in_transit = true;
    ++p.hop;
    delivered_.push_back(rec.ordinal);
  }

  void on_absorb(const RunRecord& rec) {
    if (!require_phase(rec, kAbsorbPhase, "absorb")) return;
    auto it = packets_.find(rec.ordinal);
    if (it == packets_.end() || !it->second.live ||
        !it->second.in_transit ||
        it->second.hop != it->second.route.size()) {
      add("absorb-invalid", t_, rec.ordinal, kNoEdge,
          "packet " + std::to_string(rec.ordinal) +
              " did not complete its route this step, yet the trace "
              "absorbs it");
      return;
    }
    it->second.live = false;
    it->second.in_transit = false;
    ++absorbed_;
    --live_;
  }

  void on_reroute(const RunRecord& rec) {
    if (!require_phase(rec, kReroutePhase, "reroute")) return;
    if (!verify_protocol_historic(tr_.meta.protocol) &&
        verify_protocol_known(tr_.meta.protocol))
      add("reroute-nonhistoric", t_, rec.ordinal, kNoEdge,
          "reroute under non-historic protocol '" + tr_.meta.protocol +
              "' (Lemma 3.3 requires a historic protocol)");
    auto it = packets_.find(rec.ordinal);
    if (it == packets_.end() || !it->second.live) {
      add("reroute-dead", t_, rec.ordinal, kNoEdge,
          "reroute targets packet " + std::to_string(rec.ordinal) +
              ", which does not exist or was already absorbed");
      return;
    }
    if (!route_in_range(rec.edges)) {
      add("edge-range", t_, rec.ordinal, kNoEdge,
          "reroute suffix names an edge outside the described network");
      return;
    }
    ModelPacket& p = it->second;
    // The suffix replaces everything after the packet's current edge
    // (post-substep-1, hop is already advanced for in-transit packets,
    // matching the engine's application point in substep 2b).
    const std::size_t keep = std::min(p.hop + 1, p.route.size());
    Route updated(p.route.begin(),
                  p.route.begin() + static_cast<std::ptrdiff_t>(keep));
    updated.insert(updated.end(), rec.edges.begin(), rec.edges.end());
    if (!contiguous(updated)) {
      add("reroute-discontiguous", t_, rec.ordinal, kNoEdge,
          "suffix does not splice contiguously after edge '" +
              edge_name(p.route[keep - 1]) + "' for packet " +
              std::to_string(rec.ordinal));
      return;
    }
    if (!simple(updated)) {
      add("route-not-simple", t_, rec.ordinal, kNoEdge,
          "rerouted path for packet " + std::to_string(rec.ordinal) +
              " revisits a node");
      return;
    }
    p.route = std::move(updated);
  }

  void on_create(const RunRecord& rec, bool initial) {
    Time when = 0;
    if (initial) {
      if (in_step_) {
        add("record-order", t_, rec.ordinal, kNoEdge,
            "initial packet recorded after stepping began");
        return;
      }
    } else {
      if (!require_phase(rec, kInjectPhase, "injection")) return;
      when = t_;
    }
    if (rec.ordinal != next_ordinal_)
      add("ordinal-order", when, rec.ordinal, kNoEdge,
          "packet ordinal " + std::to_string(rec.ordinal) +
              " out of sequence (expected " +
              std::to_string(next_ordinal_) +
              "; creation ordinals are dense and increasing)");
    if (packets_.count(rec.ordinal) != 0) {
      add("ordinal-order", when, rec.ordinal, kNoEdge,
          "duplicate creation of packet ordinal " +
              std::to_string(rec.ordinal));
      return;
    }
    next_ordinal_ = std::max(next_ordinal_, rec.ordinal + 1);
    if (!route_in_range(rec.edges)) {
      add("edge-range", when, rec.ordinal, kNoEdge,
          "route names an edge outside the described network");
      return;
    }
    if (!contiguous(rec.edges))
      add("route-not-contiguous", when, rec.ordinal, kNoEdge,
          "route of packet " + std::to_string(rec.ordinal) +
              " is not a contiguous edge path");
    else if (!simple(rec.edges))
      add("route-not-simple", when, rec.ordinal, kNoEdge,
          "route of packet " + std::to_string(rec.ordinal) +
              " revisits a node (paper section 2 requires simple paths)");
    ModelPacket p;
    p.route = rec.edges;
    p.inject = when;
    p.arrival = when;
    p.live = true;
    // Initial packets enter their queues at time 0; injections enqueue in
    // substep 2b, AFTER this step's transit arrivals (substep 2a), so
    // their enqueue is deferred to step close to reproduce FIFO order.
    if (initial)
      queues_[p.route[0]].push_back(rec.ordinal);
    else
      injected_this_step_.push_back(rec.ordinal);
    packets_.emplace(rec.ordinal, std::move(p));
    ++created_;
    ++live_;
  }

  void on_queue(const RunRecord& rec) {
    if (!require_phase(rec, kQueuePhase, "queue-depth")) return;
    if (!edge_ok(rec.edge)) {
      add("edge-range", t_, kNoOrdinal, kNoEdge,
          "queue-depth record names edge id " + std::to_string(rec.edge) +
              " outside the described network");
      return;
    }
    // Depths describe the *end* of the step, after substep-2 arrivals —
    // which the model applies at step close — so defer the comparison.
    queue_claims_.push_back({rec.edge, rec.depth});
  }

  void close_step() {
    // Work conservation: a buffer nonempty at the start of the step must
    // transmit (greedy protocols never idle a loaded edge, paper §2).
    for (const EdgeId e : pre_nonempty_)
      if (!sent_this_step_[e])
        add("work-conservation", t_, queues_[e].empty() ? kNoOrdinal
                                                        : queues_[e].front(),
            e,
            "edge '" + edge_name(e) +
                "' held packets at the start of the step but the trace "
                "records no transmission");

    // Substep 2a: advance everything sent this step.  Arrivals are
    // appended in send-record order, which reproduces the engine's
    // deterministic arrival sequencing; a completed route must have been
    // matched by an absorb record above.
    for (const std::uint64_t ord : delivered_) {
      ModelPacket& p = packets_.at(ord);
      if (!p.live) continue;  // Absorbed this step.
      p.in_transit = false;
      if (p.hop >= p.route.size()) {
        add("absorb-missing", t_, ord, kNoEdge,
            "packet " + std::to_string(ord) +
                " completed its route at t=" + std::to_string(t_) +
                " but the trace never absorbs it");
        p.live = false;
        --live_;
        continue;
      }
      p.arrival = t_;
      queues_[p.route[p.hop]].push_back(ord);
    }
    delivered_.clear();

    // Substep 2b: this step's injections join their queues behind the
    // transit arrivals, in issue order.
    for (const std::uint64_t ord : injected_this_step_) {
      const ModelPacket& p = packets_.at(ord);
      queues_[p.route[0]].push_back(ord);
    }
    injected_this_step_.clear();

    // Recorded end-of-step depths must match the model exactly, and every
    // nonempty buffer must be covered.
    for (const auto& [e, depth] : queue_claims_) {
      queue_checked_[e] = 1;
      if (queues_[e].size() != depth)
        add("queue-depth", t_, kNoOrdinal, e,
            "trace claims " + std::to_string(depth) + " packet(s) queued "
                "at '" + edge_name(e) + "' but the model holds " +
                std::to_string(queues_[e].size()));
    }
    for (EdgeId e = 0; e < queues_.size(); ++e) {
      if (!queues_[e].empty() && !queue_checked_[e])
        add("queue-depth", t_, queues_[e].front(), e,
            "model holds " + std::to_string(queues_[e].size()) +
                " packet(s) at '" + edge_name(e) +
                "' but the trace records no depth for it");
      queue_checked_[e] = 0;
    }
    queue_claims_.clear();
    for (const EdgeId e : touched_edges_) sent_this_step_[e] = 0;
    touched_edges_.clear();

    rep_.occupancy.push_back(live_);
    in_step_ = false;
  }

  void check_footer() {
    rep_.steps = t_;
    rep_.injected = created_;
    rep_.absorbed = absorbed_;
    if (tr_.steps != t_)
      add("footer-mismatch", 0, kNoOrdinal, kNoEdge,
          "footer claims " + std::to_string(tr_.steps) +
              " steps but the trace records " + std::to_string(t_));
    if (tr_.injected != created_)
      add("footer-mismatch", 0, kNoOrdinal, kNoEdge,
          "footer claims " + std::to_string(tr_.injected) +
              " packets created but the records show " +
              std::to_string(created_) +
              " (packet conservation: every packet enters the trace "
              "exactly once)");
    if (tr_.absorbed != absorbed_)
      add("footer-mismatch", 0, kNoOrdinal, kNoEdge,
          "footer claims " + std::to_string(tr_.absorbed) +
              " absorptions but the records show " +
              std::to_string(absorbed_));
  }

  void check_residents() {
    rep_.resident = live_;
    // aqt-audit: allow(AUD002) -- max reductions commute over packets_
    for (const auto& [ord, p] : packets_) {
      rep_.observed_d = std::max(
          rep_.observed_d, static_cast<std::int64_t>(p.route.size()));
      if (p.live)  // Pending wait of a still-buffered packet.
        rep_.max_wait = std::max(rep_.max_wait, t_ - p.arrival);
    }
  }

  /// Declared adversary constraints, re-checked with brute force over the
  /// final effective routes (reroute-extended, charged at injection time,
  /// exactly as Lemma 3.3 accounts them).  Initial packets (time 0) are
  /// part of the initial configuration, not the adversary's budget.
  void check_feasibility() {
    const bool has_window =
        tr_.meta.window_w.has_value() && tr_.meta.window_r.has_value();
    if (!has_window && !tr_.meta.rate_r.has_value()) return;

    std::vector<std::vector<Time>> times(tr_.edges.size());
    // aqt-audit: allow(AUD002) -- per-edge time lists are sorted below
    for (const auto& [ord, p] : packets_) {
      if (p.inject < 1) continue;
      for (const EdgeId e : p.route)
        if (edge_ok(e)) times[e].push_back(p.inject);
    }
    for (auto& v : times) std::sort(v.begin(), v.end());

    if (has_window) {
      const std::int64_t w = *tr_.meta.window_w;
      const std::int64_t budget = tr_.meta.window_r->floor_mul(w);
      for (EdgeId e = 0; e < times.size(); ++e) {
        const std::vector<Time>& ts = times[e];
        std::size_t lo = 0;
        for (std::size_t hi = 0; hi < ts.size(); ++hi) {
          while (ts[hi] - ts[lo] + 1 > w) ++lo;
          const std::int64_t count =
              static_cast<std::int64_t>(hi - lo + 1);
          if (count > budget) {
            add("window-infeasible", ts[hi], kNoOrdinal, e,
                std::to_string(count) + " packets requiring edge '" +
                    edge_name(e) + "' injected in window [" +
                    std::to_string(ts[lo]) + ", " +
                    std::to_string(ts[lo] + w - 1) + "], exceeding floor(" +
                    std::to_string(w) + " * " + tr_.meta.window_r->str() +
                    ") = " + std::to_string(budget) + " (Definition 2.1)");
            break;
          }
        }
      }
    }
    if (tr_.meta.rate_r.has_value()) {
      const Rat r = *tr_.meta.rate_r;
      // A pair (i, j) violates "count <= ceil(r * len)" iff
      // q*(j - i) >= p*(ts[j] - ts[i] + 1) for r = p/q, i.e. iff
      // g(j) - p >= g(i) with g(k) = q*k - p*ts[k] — so a running minimum
      // of g finds the worst interval ending at each j in O(k) exactly.
      const auto p = static_cast<detail::i128>(r.num());
      const auto q = static_cast<detail::i128>(r.den());
      for (EdgeId e = 0; e < times.size(); ++e) {
        const std::vector<Time>& ts = times[e];
        detail::i128 best = 0;
        std::size_t best_i = 0;
        for (std::size_t j = 0; j < ts.size(); ++j) {
          const detail::i128 g =
              q * static_cast<detail::i128>(j) -
              p * static_cast<detail::i128>(ts[j]);
          if (j == 0 || g < best) {
            best = g;
            best_i = j;
          }
          if (g - p >= best) {
            const std::int64_t len = ts[j] - ts[best_i] + 1;
            const std::int64_t count =
                static_cast<std::int64_t>(j - best_i + 1);
            add("rate-infeasible", ts[j], kNoOrdinal, e,
                std::to_string(count) + " packets requiring edge '" +
                    edge_name(e) + "' injected in [" +
                    std::to_string(ts[best_i]) + ", " +
                    std::to_string(ts[j]) + "], exceeding ceil(" + r.str() +
                    " * " + std::to_string(len) + ") = " +
                    std::to_string(r.ceil_mul(len)));
            break;
          }
        }
      }
    }
  }

  const RunTrace& tr_;
  VerifyReport rep_;

  std::unordered_map<std::uint64_t, ModelPacket> packets_;
  std::vector<std::deque<std::uint64_t>> queues_;
  std::uint64_t next_ordinal_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t absorbed_ = 0;
  std::uint64_t live_ = 0;

  bool in_step_ = false;
  Time t_ = 0;
  int phase_ = kSendPhase;
  bool phase_reported_ = false;
  std::vector<EdgeId> pre_nonempty_;
  std::vector<char> sent_this_step_;
  std::vector<EdgeId> touched_edges_;
  std::vector<std::uint64_t> delivered_;
  std::vector<std::uint64_t> injected_this_step_;
  std::vector<std::pair<EdgeId, std::uint64_t>> queue_claims_;
  std::vector<char> queue_checked_;
};

}  // namespace

bool verify_protocol_known(const std::string& name) {
  return in_table(kKnown, name);
}
bool verify_protocol_fifo(const std::string& name) { return name == "FIFO"; }
bool verify_protocol_time_priority(const std::string& name) {
  return in_table(kTimePriority, name);
}
bool verify_protocol_historic(const std::string& name) {
  return in_table(kHistoric, name);
}

VerifyReport verify_run_trace(const RunTrace& trace, std::string label) {
  return Verifier(trace, std::move(label)).run();
}

VerifyReport verify_file(const std::string& path) {
  try {
    const RunTrace tr = parse_run_trace_file(path);
    return verify_run_trace(tr, path);
  } catch (const std::exception& e) {
    VerifyReport rep;
    rep.file = path;
    rep.findings.push_back(
        VerifyFinding{"parse-error", 0, kNoOrdinal, kNoEdge, e.what()});
    return rep;
  }
}

std::string to_human(const std::vector<VerifyReport>& reports) {
  std::ostringstream os;
  for (const VerifyReport& rep : reports) {
    if (rep.ok()) {
      os << rep.file << ": OK (" << rep.protocol << ", steps=" << rep.steps
         << ", injected=" << rep.injected << ", absorbed=" << rep.absorbed
         << ", resident=" << rep.resident << ", d=" << rep.observed_d
         << ", max-wait=" << rep.max_wait << ", hash=" << std::hex
         << rep.trace_hash << std::dec << ")\n";
      continue;
    }
    os << rep.file << ": " << rep.findings.size() << " violation"
       << (rep.findings.size() == 1 ? "" : "s")
       << (rep.findings_truncated ? " (truncated)" : "") << "\n";
    for (const VerifyFinding& f : rep.findings) {
      os << "  " << rep.file;
      if (f.step > 0) os << ": step " << f.step;
      os << ": [" << f.code << "] " << f.message << "\n";
    }
  }
  return os.str();
}

std::string to_json(const std::vector<VerifyReport>& reports) {
  std::ostringstream os;
  bool all_ok = true;
  for (const VerifyReport& rep : reports) all_ok = all_ok && rep.ok();
  os << "{\"ok\":" << (all_ok ? "true" : "false") << ",\"reports\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const VerifyReport& rep = reports[i];
    if (i) os << ",";
    os << "{\"file\":\"" << json_escape(rep.file) << "\","
       << "\"ok\":" << (rep.ok() ? "true" : "false") << ","
       << "\"protocol\":\"" << json_escape(rep.protocol) << "\","
       << "\"steps\":" << rep.steps << ","
       << "\"injected\":" << rep.injected << ","
       << "\"absorbed\":" << rep.absorbed << ","
       << "\"resident\":" << rep.resident << ","
       << "\"observed_d\":" << rep.observed_d << ","
       << "\"max_wait\":" << rep.max_wait << ","
       << "\"hash\":\"";
    {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(rep.trace_hash));
      os << buf;
    }
    os << "\","
       << "\"truncated\":" << (rep.findings_truncated ? "true" : "false")
       << ",\"findings\":[";
    for (std::size_t j = 0; j < rep.findings.size(); ++j) {
      const VerifyFinding& f = rep.findings[j];
      if (j) os << ",";
      os << "{\"code\":\"" << json_escape(f.code) << "\","
         << "\"step\":" << f.step << ","
         << "\"ordinal\":"
         << (f.ordinal == kNoOrdinal
                 ? std::string("-1")
                 : std::to_string(f.ordinal))
         << ","
         << "\"edge\":"
         << (f.edge == kNoEdge ? std::string("-1") : std::to_string(f.edge))
         << ","
         << "\"message\":\"" << json_escape(f.message) << "\"}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace aqt
