#include "aqt/verify/certificate.hpp"

#include <cstdio>
#include <sstream>

#include "aqt/analysis/bounds.hpp"

namespace aqt {
namespace {

/// Quarter-mean growth witness over the per-step backlog series: the run
/// exhibits the monotone queue growth the paper's lower-bound
/// constructions (Theorem 3.17 and kin) produce iff the four quarter
/// means strictly increase and the last quarter at least doubles the
/// first.  Deliberately independent of core/stability.hpp's classifier.
bool monotone_growth_witness(const std::vector<std::uint64_t>& occupancy,
                             std::string& detail) {
  if (occupancy.size() < 8) {
    detail = "too few steps (" + std::to_string(occupancy.size()) +
             ") for a growth witness; need at least 8";
    return false;
  }
  const std::size_t quarter = occupancy.size() / 4;
  double mean[4] = {0, 0, 0, 0};
  for (int q = 0; q < 4; ++q) {
    const std::size_t begin = static_cast<std::size_t>(q) * quarter;
    const std::size_t end =
        q == 3 ? occupancy.size() : begin + quarter;
    for (std::size_t i = begin; i < end; ++i)
      mean[q] += static_cast<double>(occupancy[i]);
    mean[q] /= static_cast<double>(end - begin);
  }
  std::ostringstream os;
  os << "quarter-mean backlog " << mean[0] << " -> " << mean[1] << " -> "
     << mean[2] << " -> " << mean[3];
  const bool increasing =
      mean[0] < mean[1] && mean[1] < mean[2] && mean[2] < mean[3];
  const bool doubled = mean[3] >= 2.0 * mean[0] && mean[3] >= mean[0] + 1.0;
  if (increasing && doubled) {
    os << ": monotone growth";
    detail = os.str();
    return true;
  }
  os << ": no monotone growth";
  detail = os.str();
  return false;
}

}  // namespace

const char* certificate_kind_name(CertificateKind kind) {
  switch (kind) {
    case CertificateKind::kNone: return "none";
    case CertificateKind::kGreedyStability: return "greedy-stability";
    case CertificateKind::kTimePriorityStability:
      return "time-priority-stability";
    case CertificateKind::kInstabilityWitness: return "instability-witness";
  }
  return "none";
}

StabilityCertificate make_stability_certificate(const VerifyReport& report) {
  StabilityCertificate cert;
  cert.protocol = report.protocol;
  cert.trace_hash = report.trace_hash;
  cert.d = report.observed_d;
  cert.observed_max_wait = report.max_wait;

  const bool has_window = report.meta.window_w.has_value() &&
                          report.meta.window_r.has_value();
  const bool has_rate = report.meta.rate_r.has_value();
  if (!has_window && !has_rate) {
    cert.detail = "trace declares no adversary constraint";
    return cert;
  }
  if (cert.d < 1) {
    cert.detail = "no packets observed; nothing to certify";
    return cert;
  }
  const bool time_priority =
      verify_protocol_time_priority(report.protocol);
  const Rat tp_threshold = time_priority_threshold(cert.d);
  const Rat greedy = greedy_threshold(cert.d);

  if (has_window) {
    cert.w = *report.meta.window_w;
    cert.r = *report.meta.window_r;
    if (time_priority && cert.r <= tp_threshold) {
      cert.kind = CertificateKind::kTimePriorityStability;
      cert.theorem = "Theorem 4.3 (time-priority stability, r <= 1/d)";
      cert.threshold = tp_threshold;
    } else if (cert.r <= greedy) {
      cert.kind = CertificateKind::kGreedyStability;
      cert.theorem = "Theorem 4.1 (greedy stability, r <= 1/(d+1))";
      cert.threshold = greedy;
    } else {
      cert.threshold = time_priority ? tp_threshold : greedy;
      cert.detail = "declared rate " + cert.r.str() +
                    " exceeds the stability threshold " +
                    cert.threshold.str() + " for d=" +
                    std::to_string(cert.d) + "; no stability theorem applies";
      return cert;
    }
    cert.applicable = true;
    cert.bound = residence_bound(cert.w, cert.r);
    // N-version cross-check of the library's bound statement with an
    // independent exact-rational evaluation of ceil(w * r).
    if (cert.bound != cert.r.ceil_mul(cert.w)) {
      cert.detail = "bounds library computed ceil(w*r)=" +
                    std::to_string(cert.bound) +
                    " but exact arithmetic gives " +
                    std::to_string(cert.r.ceil_mul(cert.w));
      return cert;
    }
    if (!report.ok()) {
      cert.detail = "trace verification reported violations";
      return cert;
    }
    if (report.max_wait > cert.bound) {
      cert.detail = "observed per-buffer wait " +
                    std::to_string(report.max_wait) +
                    " exceeds the theorem's bound " +
                    std::to_string(cert.bound);
      return cert;
    }
    cert.verified = true;
    cert.detail = "every per-buffer wait <= ceil(w*r) = " +
                  std::to_string(cert.bound);
    return cert;
  }

  // Rate-only declaration: the (w, r) waiting bound needs a window, so the
  // only certifiable statement is the instability-witness one.
  cert.r = *report.meta.rate_r;
  cert.threshold = time_priority ? tp_threshold : greedy;
  if (cert.r <= cert.threshold) {
    cert.detail = "declared rate " + cert.r.str() +
                  " is within the stability threshold " +
                  cert.threshold.str() +
                  " but without a declared window there is no ceil(w*r) "
                  "bound to certify";
    return cert;
  }
  cert.kind = CertificateKind::kInstabilityWitness;
  cert.theorem =
      "Theorem 3.17 regime (rate above threshold; growth witness)";
  cert.applicable = true;
  std::string growth_detail;
  const bool grows = monotone_growth_witness(report.occupancy, growth_detail);
  if (!report.ok()) {
    cert.detail = "trace verification reported violations";
    return cert;
  }
  cert.verified = grows;
  cert.detail = growth_detail;
  return cert;
}

std::string StabilityCertificate::text() const {
  std::ostringstream os;
  char hash_buf[24];
  std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                static_cast<unsigned long long>(trace_hash));
  os << "-----BEGIN AQT STABILITY CERTIFICATE-----\n"
     << "kind: " << certificate_kind_name(kind) << "\n"
     << "theorem: " << (theorem.empty() ? "-" : theorem) << "\n"
     << "protocol: " << protocol << "\n"
     << "trace-hash: " << hash_buf << "\n";
  if (w > 0) os << "w: " << w << "\n";
  os << "r: " << r.str() << "\n"
     << "d: " << d << "\n"
     << "threshold: " << threshold.str() << "\n";
  if (kind == CertificateKind::kGreedyStability ||
      kind == CertificateKind::kTimePriorityStability)
    os << "bound: ceil(w*r) = " << bound << "\n"
       << "observed-max-wait: " << observed_max_wait << "\n";
  os << "applicable: " << (applicable ? "yes" : "no") << "\n"
     << "verdict: "
     << (verified ? "VERIFIED" : (applicable ? "NOT-VERIFIED" : "N/A"))
     << "\n"
     << "detail: " << detail << "\n"
     << "-----END AQT STABILITY CERTIFICATE-----\n";
  return os.str();
}

}  // namespace aqt
