#include "aqt/verify/scenario_run.hpp"

#include <algorithm>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

Route resolve(const Graph& graph, const std::vector<std::string>& names,
              int line, const char* what) {
  Route route;
  route.reserve(names.size());
  for (const std::string& name : names) {
    const auto e = graph.find_edge(name);
    AQT_REQUIRE(e.has_value(), "" << what << " at scenario line " << line
                                  << " names unknown edge '" << name
                                  << "'");
    route.push_back(*e);
  }
  return route;
}

}  // namespace

Trace scenario_to_trace(const Scenario& scenario, const Graph& graph) {
  // Merge the two scripts into one time-ordered event stream.  Trace
  // requires non-decreasing times, and within a step the engine applies
  // reroutes before injections, so that is the tie-break order here too.
  struct Pending {
    Time t;
    bool is_reroute;
    std::size_t index;  ///< File order within its kind.
  };
  std::vector<Pending> order;
  order.reserve(scenario.injections.size() + scenario.reroutes.size());
  for (std::size_t i = 0; i < scenario.reroutes.size(); ++i)
    order.push_back({scenario.reroutes[i].t, true, i});
  for (std::size_t i = 0; i < scenario.injections.size(); ++i)
    order.push_back({scenario.injections[i].t, false, i});
  std::stable_sort(order.begin(), order.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.is_reroute && !b.is_reroute;
                   });

  Trace trace;
  for (const Pending& ev : order) {
    if (ev.is_reroute) {
      const ScenarioReroute& rr = scenario.reroutes[ev.index];
      trace.record_reroute(rr.t, rr.packet_ordinal,
                           resolve(graph, rr.suffix, rr.line, "reroute"));
    } else {
      const ScenarioInjection& inj = scenario.injections[ev.index];
      trace.record_injection(
          inj.t,
          Injection{resolve(graph, inj.route, inj.line, "injection"),
                    inj.tag});
    }
  }
  return trace;
}

ScenarioRun load_scenario_run(const std::string& path) {
  ScenarioRun run;
  run.scenario = parse_scenario_file(path);
  run.topology =
      parse_topology_spec(run.scenario.topology, run.scenario.topology_seed);
  run.script = scenario_to_trace(run.scenario, run.topology.graph);
  run.last_event = run.script.last_time();

  run.meta.protocol = run.scenario.protocol;
  run.meta.scenario_digest = file_digest_hex(path);
  run.meta.window_w = run.scenario.window_w;
  run.meta.window_r = run.scenario.window_r;
  run.meta.rate_r = run.scenario.rate_r;
  return run;
}

}  // namespace aqt
