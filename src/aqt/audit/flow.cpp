#include "aqt/audit/flow.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "aqt/audit/token_util.hpp"

namespace aqt::audit {
namespace {

bool is_guard_type(const std::string& type_text) {
  return type_text.find("lock_guard") != std::string::npos ||
         type_text.find("unique_lock") != std::string::npos ||
         type_text.find("scoped_lock") != std::string::npos ||
         type_text.find("shared_lock") != std::string::npos;
}

/// Token index of the end of the function/lambda/file region containing
/// `i` — the horizon past which a manual lock cannot plausibly be held.
std::size_t body_horizon(const SymbolTable& table, std::size_t i) {
  for (int s = table.scope_at(i); s >= 0; s = table.scopes[s].parent) {
    const ScopeInfo& sc = table.scopes[s];
    if (sc.kind == ScopeInfo::Kind::kFunction ||
        sc.kind == ScopeInfo::Kind::kLambda)
      return sc.body_end;
  }
  return table.scopes.empty() ? i : table.scopes[0].body_end;
}

class FlowBuilder {
 public:
  FlowBuilder(const ScannedSource& src, const SymbolTable& table,
              const std::string& file_label)
      : t_(src.tokens), table_(table), label_(file_label) {}

  LockFlow run() {
    for (const auto& v : table_.vars) {
      if (is_guard_type(v.type_text)) add_guard(v);
    }
    scan_manual_locks();
    std::sort(flow_.intervals.begin(), flow_.intervals.end(),
              [](const LockInterval& a, const LockInterval& b) {
                if (a.begin != b.begin) return a.begin < b.begin;
                if (a.end != b.end) return a.end < b.end;
                return a.mutex < b.mutex;
              });
    return std::move(flow_);
  }

 private:
  /// Parses the constructor arguments of a guard declaration and emits
  /// intervals for each named mutex.
  void add_guard(const VarDecl& guard) {
    std::size_t open = guard.name_token + 1;
    if (!is_punct(t_, open, '(') && !is_punct(t_, open, '{')) return;
    const char open_c = t_[open].text[0];
    const char close_c = open_c == '(' ? ')' : '}';
    std::size_t close = skip_balanced(t_, open, open_c, close_c);
    if (close == open) return;

    bool deferred = false;
    std::vector<std::string> mutexes;
    std::size_t j = open + 1;
    while (j + 1 < close) {
      std::size_t arg_end = j;
      int depth = 0;
      while (arg_end + 1 < close) {
        if (is_punct(t_, arg_end, '(') || is_punct(t_, arg_end, '[') ||
            is_punct(t_, arg_end, '{'))
          ++depth;
        if (is_punct(t_, arg_end, ')') || is_punct(t_, arg_end, ']') ||
            is_punct(t_, arg_end, '}'))
          --depth;
        if (depth == 0 && is_punct(t_, arg_end, ',')) break;
        ++arg_end;
      }
      std::string id;
      bool is_defer = false;
      resolve_arg(j, arg_end, id, is_defer);
      if (is_defer)
        deferred = true;
      else if (!id.empty())
        mutexes.push_back(id);
      j = arg_end + 1;
    }
    if (mutexes.empty()) return;

    const std::size_t scope_end =
        guard.scope >= 0 &&
                guard.scope < static_cast<int>(table_.scopes.size())
            ? table_.scopes[guard.scope].body_end
            : t_.size();

    // lock()/unlock() events on the guard within its scope.
    std::vector<std::pair<std::size_t, bool>> events;  // (token, is_lock)
    for (std::size_t k = close; k < scope_end && k + 3 < t_.size(); ++k) {
      if (!is_ident(t_, k, guard.name.c_str())) continue;
      if (!is_punct(t_, k + 1, '.')) continue;
      if (!is_punct(t_, k + 3, '(')) continue;
      if (is_ident(t_, k + 2, "lock"))
        events.emplace_back(k, true);
      else if (is_ident(t_, k + 2, "unlock"))
        events.emplace_back(k, false);
    }

    bool held = !deferred;
    std::size_t held_since = guard.name_token;
    for (const auto& [tok, is_lock] : events) {
      if (is_lock && !held) {
        held = true;
        held_since = tok;
      } else if (!is_lock && held) {
        emit(mutexes, held_since, tok, guard.line);
        held = false;
      }
    }
    if (held) emit(mutexes, held_since, scope_end, guard.line);
  }

  void emit(const std::vector<std::string>& mutexes, std::size_t begin,
            std::size_t end, int line) {
    for (const auto& m : mutexes) {
      LockInterval iv;
      iv.mutex = m;
      iv.begin = begin;
      iv.end = end;
      iv.line = line;
      flow_.intervals.push_back(iv);
    }
  }

  /// Resolves a guard constructor argument [begin, end] to a canonical
  /// mutex identity.  `std::defer_lock` and friends set `is_defer`.
  void resolve_arg(std::size_t begin, std::size_t end, std::string& id,
                   bool& is_defer) {
    std::size_t last_ident = t_.size();
    for (std::size_t k = begin; k <= end && k < t_.size(); ++k) {
      if (!is_any_ident(t_, k)) continue;
      const std::string& s = t_[k].text;
      if (s == "defer_lock" || s == "adopt_lock" || s == "try_to_lock") {
        is_defer = s != "adopt_lock";
        return;
      }
      if (s == "std") continue;
      last_ident = k;
    }
    if (last_ident >= t_.size()) return;
    const VarDecl* decl = table_.lookup(t_[last_ident].text, last_ident);
    if (decl != nullptr && decl->is_mutex) {
      id = canonical_mutex_name(*decl, table_, label_);
      return;
    }
    // Unresolvable: keep a file-tagged textual identity so two guards on
    // the same unknown expression still correlate within the file.
    std::string text;
    for (std::size_t k = begin; k <= end && k < t_.size(); ++k)
      text += t_[k].text;
    id = label_ + "@expr:" + text;
  }

  /// Finds manual `m.lock()` / `m.unlock()` on mutex-typed variables.
  void scan_manual_locks() {
    for (std::size_t k = 0; k + 3 < t_.size(); ++k) {
      if (!is_any_ident(t_, k)) continue;
      if (!is_punct(t_, k + 1, '.')) continue;
      if (!is_ident(t_, k + 2, "lock")) continue;
      if (!is_punct(t_, k + 3, '(')) continue;
      // `x.lock()` — only mutex-typed x; guards were handled above.
      const VarDecl* decl = table_.lookup(t_[k].text, k);
      if (decl == nullptr || !decl->is_mutex) continue;
      const std::size_t horizon = body_horizon(table_, k);
      std::size_t release = horizon;
      for (std::size_t u = k + 4; u + 3 < t_.size() && u < horizon; ++u) {
        if (is_any_ident(t_, u) && t_[u].text == t_[k].text &&
            is_punct(t_, u + 1, '.') && is_ident(t_, u + 2, "unlock") &&
            is_punct(t_, u + 3, '(')) {
          release = u;
          break;
        }
      }
      LockInterval iv;
      iv.mutex = canonical_mutex_name(*decl, table_, label_);
      iv.begin = k;
      iv.end = release;
      iv.line = t_[k].line;
      flow_.intervals.push_back(iv);
    }
  }

  const Tokens& t_;
  const SymbolTable& table_;
  const std::string& label_;
  LockFlow flow_;
};

}  // namespace

std::vector<std::string> LockFlow::held_at(std::size_t i) const {
  std::set<std::string> held;
  for (const auto& iv : intervals) {
    if (iv.begin <= i && i < iv.end) held.insert(iv.mutex);
  }
  return {held.begin(), held.end()};
}

bool LockFlow::any_held_at(std::size_t i) const {
  for (const auto& iv : intervals) {
    if (iv.begin <= i && i < iv.end) return true;
  }
  return false;
}

std::string canonical_mutex_name(const VarDecl& decl, const SymbolTable& table,
                                 const std::string& file_label) {
  const ScopeInfo& sc = table.scopes[decl.scope];
  if (sc.kind == ScopeInfo::Kind::kClass) {
    std::string cls = sc.name.empty() ? "(anon-class)" : sc.name;
    return cls + "::" + decl.name;
  }
  if (sc.kind == ScopeInfo::Kind::kNamespace || sc.kind == ScopeInfo::Kind::kFile) {
    const bool file_local = sc.anonymous_namespace ||
                            (decl.is_static &&
                             sc.kind == ScopeInfo::Kind::kFile);
    std::string ns = table.namespace_of(decl.scope);
    std::string base = ns.empty() ? decl.name : ns + "::" + decl.name;
    return file_local ? file_label + "@" + base : base;
  }
  // Function-local mutex: unique per declaring scope.
  return file_label + "@scope" + std::to_string(decl.scope) + ":" + decl.name;
}

LockFlow compute_lock_flow(const ScannedSource& src, const SymbolTable& table,
                           const std::string& file_label) {
  return FlowBuilder(src, table, file_label).run();
}

}  // namespace aqt::audit
