// C++ source tokenization for the aqt-audit static analyzer.
//
// The audit rules (auditor.hpp) are token-level, not AST-level, so the
// scanner's only obligations are the ones that make token matching sound:
//
//   * identifiers/keywords, punctuation, and numbers come out as code
//     tokens with 1-based line numbers;
//   * comment bodies and string/character literals are *excluded* from the
//     code-token stream — "rand" inside a diagnostic message or a test
//     string must never trigger AUD001;
//   * comments are still captured separately (with their lines) because
//     the `// aqt-audit: ...` directive grammar lives in them;
//   * preprocessor lines are captured separately (AUD006 reads #include
//     paths), and line continuations inside them are honoured.
//
// The scanner follows the same hardened-parser discipline as the scenario
// and event readers (lint/scenario.cpp, obs/events.cpp): any input byte
// sequence terminates — unterminated block comments, raw strings, and
// literals are closed at end-of-file, never looped on or crashed over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aqt::audit {

/// One code token.  `kind` is deliberately coarse: the rules only ever
/// distinguish identifier-shaped tokens from punctuation.
struct Token {
  enum class Kind : std::uint8_t { kIdentifier, kNumber, kPunct };

  Kind kind = Kind::kPunct;
  std::string text;
  int line = 1;
};

/// One comment, body only (no // or /* */ delimiters), at its start line.
struct Comment {
  std::string text;
  int line = 1;
};

/// One logical preprocessor line (continuations spliced), without the
/// leading '#', at the line of the '#'.
struct PreprocessorLine {
  std::string text;
  int line = 1;
};

/// A whole file, scanned.  `lines` keeps the raw source lines so rules can
/// attach snippets and the baseline can hash line content.
struct ScannedSource {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<PreprocessorLine> preprocessor;
  std::vector<std::string> lines;
};

/// Scans C++ source text.  Total: never throws, never loops — malformed
/// input degrades to best-effort tokens.
ScannedSource scan_source(const std::string& text);

}  // namespace aqt::audit
