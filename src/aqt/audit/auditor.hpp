// Determinism & concurrency static analysis — the aqt-audit core.
//
// The runner's byte-identical-for-any---jobs contract and the trace-hash
// evidence chain are enforced *dynamically* (aqt-verify --replay-twice,
// the fuzz observer-effect phase, the TSan CI job).  Dynamic enforcement
// only catches the hazards a test happens to execute: a single unseeded
// RNG, wall-clock read, or unordered-container iteration feeding an
// output path breaks replayability silently until some seed trips it.
// This module encodes the project's determinism and concurrency rules as
// *source-level* checks over the repo's own files, in the spirit of the
// paper's program of replacing empirical confidence with checkable
// certificates:
//
//   AUD001  banned nondeterminism APIs (rand, std::random_device,
//           time()/clock(), std::chrono::system_clock, argless std engine
//           seeds) outside the allowlisted seed-plumbing set (util/rng);
//   AUD002  iteration over unordered_map/unordered_set — unspecified
//           order feeding a trace, metric export, or result path;
//   AUD003  mutable globals / non-const static locals in engine, runner,
//           and obs code (shared-state the TSan job cannot prove safe,
//           and cross-run leakage that breaks replay);
//   AUD004  pointer-keyed ordered containers (std::map<T*, ...>,
//           std::set<T*>) — address-dependent iteration order;
//   AUD005  float accumulation in cross-worker merge paths without a
//           fixed reduction order;
//   AUD006  layering violations: an #include of an aqt module the
//           including layer must not depend on (core must never include
//           runner/obs/tools);
//   AUD007  malformed audit directives (the justification comment
//           grammar below is itself checked), and allow() clauses that
//           suppress nothing (unused suppressions rot);
//   AUD008  shared mutable state written inside a worker/thread lambda
//           with an empty lockset (the Eraser-style race pass, built on
//           the symbol/flow layer in symbols.hpp/flow.hpp);
//   AUD009  lock-order inconsistency: two mutexes acquired in both
//           orders anywhere in the cross-TU call graph;
//   AUD010  by-reference or pointer capture escaping into a deferred
//           callable (std::thread, pool submission, stored
//           std::function) — a lifetime hazard even when synchronized;
//   AUD011  call-graph layering: a function whose transitive callees
//           reach a layer the calling file must not depend on
//           (supersedes AUD006's include-only view, which remains as
//           the fast pre-check);
//   AUD012  container mutation while an iterator/range-for over the
//           same container is live (iterator invalidation).
//
// AUD001–AUD008, AUD010, and AUD012 are per-file; AUD009 and AUD011
// need every file's symbols at once, so the project entry points below
// (audit_unit + finalize_project) split the work into a parallel
// per-file phase and a serial cross-TU phase — the tool stays
// byte-identical for any --jobs.
//
// Justified exceptions are line comments of the form
//
//   <marker> allow(AUD002) -- order-insensitive max reduction
//
// where <marker> is the literal string "aqt-audit" followed by ':'
// (spelled out here so this header does not direct the analyzer at
// itself).  An allow clause suppresses that rule on the same line (or,
// for a comment-only line, the next line).  A comment containing the
// marker but neither an allow nor a context clause is treated as prose
// and ignored.  File classification (which rules apply) is derived from
// the repo path and can be overridden for corpus snippets:
//
//   <marker> context(core)     classify as the core layer
//   <marker> context(merge)    mark as a cross-worker merge path
//
// All findings are collected (never fail-fast) and rendered as text or
// JSON, mirroring aqt-lint/aqt-verify; a checked-in baseline file can
// grandfather pre-existing findings so the gate stays "no *new* hazards".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace aqt::audit {

/// One rule of the pack, for docs, --list-rules, and the corpus meta-test.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The full rule pack, in id order.  The single source of truth: tests
/// assert corpus coverage against this table.
const std::vector<RuleInfo>& rule_pack();

/// One problem found in a file.  `rule` is a stable AUDNNN id.
struct AuditFinding {
  std::string rule;
  int line = 0;
  std::string message;
  /// FNV-1a of the trimmed source line — the baseline key, so baselines
  /// survive unrelated line-number drift within the file.
  std::uint64_t line_hash = 0;
};

/// The verdict for one file.
struct AuditReport {
  std::string file;
  std::vector<AuditFinding> findings;

  [[nodiscard]] bool ok() const { return findings.empty(); }
};

/// Which rules apply to a file.  Derived from the path by classify_path;
/// `context(...)` directives inside the file override it.
struct FileContext {
  std::string layer = "top";   ///< aqt module dir, or "top" (tools/tests).
  bool state_sensitive = false;  ///< AUD003 applies (core/runner/obs).
  bool merge_path = false;       ///< AUD005 applies (pool/registry merges).
  bool seed_plumbing = false;    ///< AUD001 exempt (util/rng only).
};

/// Classifies a repo-relative or absolute path.
FileContext classify_path(const std::string& path);

/// Audits source text under the path-derived (or directive-overridden)
/// context.  Content problems become findings, never exceptions.
/// Equivalent to a single-file project: finalize_project({unit}).
AuditReport audit_source(std::string file, const std::string& text);

/// Reads and audits a file; I/O errors throw PreconditionError (the tool
/// reports them as a hard error — an unreadable source is not "clean").
AuditReport audit_file(const std::string& path);

/// True when `path` names an auditable source: .cpp/.hpp/.cc/.h/.cxx and
/// not inside a corpus/ directory (corpus files are deliberately dirty).
bool auditable_source_path(const std::string& path);

/// Expands files/directories into the sorted, deduplicated list of
/// auditable sources beneath them, skipping corpus/, .git/, out/ and
/// build*/ directories.  Sorted so report order never depends on
/// filesystem enumeration order.  Shared by the CLI tool and the
/// selfhost perf bench; nonexistent roots throw PreconditionError.
std::vector<std::string> collect_audit_files(
    const std::vector<std::string>& roots);

// --- Project (cross-TU) audit ----------------------------------------------

struct FileSemantics;  // Internal per-file payload (auditor.cpp).

/// One file's scanned, symbol-resolved, per-file-rule-checked state.
/// Units are independent — computing them is the parallel phase.
struct AuditUnit {
  std::string file;
  std::shared_ptr<FileSemantics> sem;
};

/// Runs the per-file phase: lexing, symbols, lock flow, call extraction,
/// rules AUD001–AUD008, AUD010, AUD012, and directive parsing.
AuditUnit audit_unit(std::string file, const std::string& text);

/// audit_unit over a file's contents; I/O errors throw PreconditionError.
AuditUnit audit_unit_file(const std::string& path);

/// The serial cross-TU phase: merges every unit's call slice into one
/// call graph, runs AUD009 (lock order) and AUD011 (call-graph
/// layering), applies allow() suppressions, reports unused allows as
/// AUD007, and returns one sorted report per unit (sorted by file).
/// Deterministic: output depends only on the set of units, not on the
/// order they were computed in.
std::vector<AuditReport> finalize_project(std::vector<AuditUnit> units);

// --- Baseline (grandfathered findings) -------------------------------------

/// One grandfathered finding: rule + file + trimmed-line content hash.
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::uint64_t line_hash = 0;
};

/// Parses the baseline format (one `RULE<TAB>file<TAB>hex-hash` per line,
/// '#' comments).  Hardened: malformed input throws PreconditionError
/// naming the line, never crashes.
std::vector<BaselineEntry> parse_baseline(std::istream& is,
                                          const std::string& name);
std::vector<BaselineEntry> load_baseline_file(const std::string& path);

/// Serializes every finding of `reports` as a baseline file.
std::string to_baseline(const std::vector<AuditReport>& reports);

struct BaselineApplied {
  std::size_t suppressed = 0;  ///< Findings removed by baseline matches.
  std::vector<BaselineEntry> stale;  ///< Entries that matched nothing.
};

/// Removes baselined findings (multiset semantics: one entry absolves one
/// finding).  Returns what was used and what is stale so the baseline can
/// only ever shrink.
BaselineApplied apply_baseline(std::vector<AuditReport>& reports,
                               const std::vector<BaselineEntry>& baseline);

// --- Rendering -------------------------------------------------------------

std::string to_human(const std::vector<AuditReport>& reports);

/// JSON rendering.  `stale` lists baseline entries that matched nothing
/// (a distinct top-level field so CI can gate on them without scraping
/// stderr); pass {} when no baseline was applied.
std::string to_json(const std::vector<AuditReport>& reports,
                    const std::vector<BaselineEntry>& stale = {});

/// Re-parses to_json output with the same hardened-parser discipline as
/// the event/trace readers: strict grammar, PreconditionError (never a
/// crash) on any malformation.  Exists so CI pipelines — and the
/// round-trip meta-test — can consume audit reports without trusting
/// them.  When `stale_out` is non-null it receives the "stale" field.
std::vector<AuditReport> parse_audit_json(
    const std::string& text, const std::string& name,
    std::vector<BaselineEntry>* stale_out = nullptr);

/// FNV-1a 64 of the trimmed text — exposed for baseline tooling/tests.
std::uint64_t line_content_hash(const std::string& line);

}  // namespace aqt::audit
