#include "aqt/audit/lexer.hpp"

#include <cctype>

namespace aqt::audit {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Cursor over the raw text with line accounting.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : s_(text) {}

  [[nodiscard]] bool done() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0';
  }
  char take() {
    const char c = s_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  [[nodiscard]] int line() const { return line_; }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Splits the raw text into physical lines (for snippets / baseline
/// hashing).  The trailing newline does not create an empty extra line.
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

}  // namespace

ScannedSource scan_source(const std::string& text) {
  ScannedSource out;
  out.lines = split_lines(text);
  Cursor c(text);
  bool at_line_start = true;  // Only whitespace seen since the last '\n'.

  while (!c.done()) {
    const char ch = c.peek();

    // Whitespace.
    if (ch == '\n') {
      c.take();
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
      c.take();
      continue;
    }

    // Preprocessor line: captured whole (with continuations), not
    // tokenized.  Comments on the line are left in the captured text;
    // AUD006 only reads the include path at the front.
    if (ch == '#' && at_line_start) {
      const int line = c.line();
      std::string body;
      c.take();  // '#'
      while (!c.done()) {
        if (c.peek() == '\\' && c.peek(1) == '\n') {
          c.take();
          c.take();
          body += ' ';
          continue;
        }
        if (c.peek() == '\n') break;
        body += c.take();
      }
      out.preprocessor.push_back(PreprocessorLine{std::move(body), line});
      continue;
    }
    at_line_start = false;

    // Line comment.  A backslash-newline splice extends it onto the next
    // physical line (phase-2 line splicing happens before comment
    // recognition); the spliced text stays one Comment on the first line.
    if (ch == '/' && c.peek(1) == '/') {
      const int line = c.line();
      c.take();
      c.take();
      std::string body;
      while (!c.done()) {
        if (c.peek() == '\\' && c.peek(1) == '\n') {
          c.take();
          c.take();
          body += ' ';
          continue;
        }
        if (c.peek() == '\\' && c.peek(1) == '\r' && c.peek(2) == '\n') {
          c.take();
          c.take();
          c.take();
          body += ' ';
          continue;
        }
        if (c.peek() == '\n') break;
        body += c.take();
      }
      out.comments.push_back(Comment{std::move(body), line});
      continue;
    }

    // Block comment (possibly multi-line; one Comment per source line so
    // directive lines stay line-attributable).
    if (ch == '/' && c.peek(1) == '*') {
      c.take();
      c.take();
      int line = c.line();
      std::string body;
      while (!c.done()) {
        if (c.peek() == '*' && c.peek(1) == '/') {
          c.take();
          c.take();
          break;
        }
        const char b = c.take();
        if (b == '\n') {
          out.comments.push_back(Comment{std::move(body), line});
          body.clear();
          line = c.line();
        } else {
          body += b;
        }
      }
      out.comments.push_back(Comment{std::move(body), line});
      continue;
    }

    // Raw string literal [prefix]R"delim( ... )delim" — skipped entirely,
    // custom delimiters honoured.  Escapes do NOT apply inside.
    const auto skip_raw_string = [&c]() {
      c.take();  // the opening '"'
      std::string delim;
      while (!c.done() && c.peek() != '(' && delim.size() < 16)
        delim += c.take();
      if (!c.done()) c.take();  // '('
      const std::string close = ")" + delim + "\"";
      std::string window;
      while (!c.done()) {
        window += c.take();
        if (window.size() > close.size())
          window.erase(window.begin());
        if (window == close) break;
      }
    };
    if (ch == 'R' && c.peek(1) == '"') {
      c.take();  // 'R'
      skip_raw_string();
      continue;
    }

    // String / char literal — skipped (escapes honoured).
    if (ch == '"' || ch == '\'') {
      const char quote = c.take();
      while (!c.done()) {
        const char b = c.take();
        if (b == '\\' && !c.done()) {
          c.take();
          continue;
        }
        if (b == quote || b == '\n') break;  // Unterminated: stop at EOL.
      }
      continue;
    }

    // Identifier / keyword.  An encoding-prefixed raw string (u8R"…",
    // uR"…", UR"…", LR"…") scans as an identifier first; divert it to the
    // raw-string skip so its contents never reach the code stream.
    if (ident_start(ch)) {
      const int line = c.line();
      std::string word;
      while (!c.done() && ident_cont(c.peek())) word += c.take();
      if (c.peek() == '"' &&
          (word == "u8R" || word == "uR" || word == "UR" || word == "LR")) {
        skip_raw_string();
        continue;
      }
      out.tokens.push_back(Token{Token::Kind::kIdentifier, std::move(word),
                                 line});
      continue;
    }

    // Number (coarse: digits plus the usual literal tails; never needs to
    // be exact for the rules).
    if (std::isdigit(static_cast<unsigned char>(ch)) != 0) {
      const int line = c.line();
      std::string num;
      while (!c.done() &&
             (ident_cont(c.peek()) || c.peek() == '.' ||
              ((c.peek() == '+' || c.peek() == '-') && !num.empty() &&
               (num.back() == 'e' || num.back() == 'E' ||
                num.back() == 'p' || num.back() == 'P'))))
        num += c.take();
      out.tokens.push_back(Token{Token::Kind::kNumber, std::move(num), line});
      continue;
    }

    // Single punctuation character.  Rules match one char at a time
    // (e.g. ':' ':' for '::'), which keeps the scanner trivial.
    out.tokens.push_back(
        Token{Token::Kind::kPunct, std::string(1, ch), c.line()});
    c.take();
  }
  return out;
}

}  // namespace aqt::audit
