#include "aqt/audit/symbols.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "aqt/audit/token_util.hpp"

namespace aqt::audit {
namespace {

// Identifiers that can never start or continue a declaration's type.
const std::set<std::string>& decl_stoppers() {
  static const std::set<std::string> kStop = {
      "return",   "if",        "else",      "for",          "while",
      "do",       "switch",    "case",      "default",      "break",
      "continue", "goto",      "new",       "delete",       "throw",
      "try",      "catch",     "using",     "typedef",      "friend",
      "public",   "private",   "protected", "template",     "namespace",
      "class",    "struct",    "union",     "enum",         "operator",
      "sizeof",   "alignof",   "decltype",  "static_assert", "co_return",
      "co_yield", "co_await",  "requires",  "concept",      "asm",
      "typename", "this",      "true",      "false",        "nullptr",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
  };
  return kStop;
}

const std::set<std::string>& decl_qualifiers() {
  static const std::set<std::string> kQual = {
      "static",   "thread_local", "inline",  "constexpr", "consteval",
      "constinit", "const",       "mutable", "extern",    "volatile",
      "explicit", "virtual",      "register",
  };
  return kQual;
}

// Callee names that defer a lambda argument onto another thread of
// execution.  parallel_for_each is this repo's pool primitive; the rest
// cover the common executor/pool vocabulary so future shard hand-off
// code is born covered.
const std::set<std::string>& deferred_callees() {
  static const std::set<std::string> kDeferred = {
      "parallel_for_each", "submit", "enqueue", "post",
      "spawn",             "dispatch", "async", "defer",
  };
  return kDeferred;
}

const std::set<std::string>& insertion_callees() {
  static const std::set<std::string> kInsert = {
      "emplace_back", "push_back", "emplace", "insert",
  };
  return kInsert;
}

bool all_caps_name(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

bool type_contains(const std::string& type_text, const char* needle) {
  return type_text.find(needle) != std::string::npos;
}

/// One "chunk" of a declaration: a (possibly qualified, possibly
/// templated) identifier such as `std::vector<int>` or `unsigned`.
struct TypeChunk {
  std::string text;
  bool plain = false;  ///< Unqualified, untemplated — a candidate name.
  std::size_t name_token = 0;  ///< Token index of the last identifier.
};

class Builder {
 public:
  explicit Builder(const ScannedSource& src) : src_(src), t_(src.tokens) {
    ScopeInfo file;
    file.kind = ScopeInfo::Kind::kFile;
    file.parent = -1;
    file.body_begin = 0;
    file.body_end = t_.size();
    table_.scopes.push_back(file);
    stack_.push_back(0);
  }

  SymbolTable run() {
    const std::size_t n = t_.size();
    bool stmt_start = true;
    std::size_t i = 0;
    while (i < n) {
      const Token& tok = t_[i];
      if (tok.kind == Token::Kind::kPunct && tok.text.size() == 1) {
        const char c = tok.text[0];
        if (c == '{') {
          push_scope(ScopeInfo::Kind::kBlock, "", i + 1);
          ++i;
          stmt_start = true;
          continue;
        }
        if (c == '}') {
          pop_scope(i);
          ++i;
          stmt_start = true;
          continue;
        }
        if (c == ';') {
          ++i;
          stmt_start = true;
          continue;
        }
        if (c == '[') {
          std::size_t next = try_lambda(i);
          if (next != i) {
            i = next;
            stmt_start = true;
            continue;
          }
          ++i;
          stmt_start = false;
          continue;
        }
        ++i;
        stmt_start = false;
        continue;
      }

      if (tok.kind == Token::Kind::kIdentifier) {
        if (tok.text == "namespace") {
          std::size_t next = handle_namespace(i);
          if (next != i) {
            i = next;
            stmt_start = true;
            continue;
          }
        } else if (tok.text == "class" || tok.text == "struct" ||
                   tok.text == "union") {
          std::size_t next = handle_class(i);
          if (next != i) {
            i = next;
            stmt_start = true;
            continue;
          }
        } else if (tok.text == "enum") {
          i = skip_enum(i);
          stmt_start = true;
          continue;
        } else if (tok.text == "template") {
          // Skip the parameter list so `class`/`typename` inside it do
          // not read as class heads; a bare `template` (member
          // disambiguator) just steps past the keyword.
          std::size_t adv = skip_template_args(t_, i + 1);
          i = adv != i + 1 ? adv : i + 1;
          stmt_start = true;
          continue;
        } else if (tok.text == "using" || tok.text == "typedef" ||
                   tok.text == "friend" || tok.text == "static_assert") {
          i = skip_to_semi(i);
          stmt_start = true;
          continue;
        } else if (stmt_start) {
          const ScopeInfo::Kind k = table_.scopes[stack_.back()].kind;
          const bool decl_scope = k == ScopeInfo::Kind::kFile ||
                                  k == ScopeInfo::Kind::kNamespace ||
                                  k == ScopeInfo::Kind::kClass;
          if (decl_scope) {
            std::size_t next = try_function(i);
            if (next != i) {
              i = next;
              stmt_start = true;
              continue;
            }
          }
          std::size_t next = try_var_decl(i);
          if (next != i) {
            i = next;
            stmt_start = false;  // Continue scanning the initializer.
            continue;
          }
        }
        ++i;
        stmt_start = false;
        continue;
      }

      ++i;
      stmt_start = false;
    }
    while (stack_.size() > 1) pop_scope(n);
    table_.scopes[0].body_end = n;
    classify_lambda_sinks();
    return std::move(table_);
  }

 private:
  // -- scope machinery ----------------------------------------------------

  int push_scope(ScopeInfo::Kind kind, const std::string& name,
                 std::size_t body_begin, bool anon_ns = false) {
    ScopeInfo s;
    s.kind = kind;
    s.parent = stack_.back();
    s.name = name;
    s.body_begin = body_begin;
    s.body_end = t_.size();
    s.anonymous_namespace = anon_ns;
    table_.scopes.push_back(s);
    int idx = static_cast<int>(table_.scopes.size()) - 1;
    stack_.push_back(idx);
    return idx;
  }

  void pop_scope(std::size_t close_token) {
    if (stack_.size() <= 1) return;  // Stray '}' — stay at file scope.
    table_.scopes[stack_.back()].body_end = close_token;
    int scope = stack_.back();
    stack_.pop_back();
    // Function bodies record their end for the call graph.
    for (auto& f : table_.functions) {
      if (f.scope == scope) f.body_end = close_token;
    }
    for (auto& l : table_.lambdas) {
      if (l.scope == scope) l.body_end = close_token;
    }
  }

  std::size_t skip_to_semi(std::size_t i) {
    int depth = 0;
    while (i < t_.size()) {
      if (is_punct(t_, i, '{')) ++depth;
      if (is_punct(t_, i, '}')) {
        if (depth == 0) return i;  // Let the main loop close the scope.
        --depth;
      }
      if (is_punct(t_, i, ';') && depth == 0) return i + 1;
      ++i;
    }
    return i;
  }

  std::size_t skip_enum(std::size_t i) {
    // enum [class|struct] Name [: underlying] { ... } | ;
    std::size_t j = i + 1;
    while (j < t_.size() && !is_punct(t_, j, '{') && !is_punct(t_, j, ';'))
      ++j;
    if (is_punct(t_, j, '{')) return skip_balanced(t_, j, '{', '}');
    return j;  // ';' or EOF; main loop consumes it.
  }

  // -- namespace / class --------------------------------------------------

  std::size_t handle_namespace(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    bool anon = true;
    while (is_any_ident(t_, j)) {
      if (!name.empty()) name += "::";
      name += t_[j].text;
      anon = false;
      ++j;
      if (is_punct(t_, j, ':') && is_punct(t_, j + 1, ':')) {
        j += 2;
        continue;
      }
      break;
    }
    if (is_punct(t_, j, '=')) return i;  // namespace alias; not a scope.
    if (!is_punct(t_, j, '{')) return i;
    push_scope(ScopeInfo::Kind::kNamespace, name, j + 1, anon);
    return j + 1;
  }

  std::size_t handle_class(std::size_t i) {
    std::size_t j = i + 1;
    // Attributes / alignas between the keyword and the name.
    while (is_punct(t_, j, '[')) j = skip_balanced(t_, j, '[', ']');
    if (is_ident(t_, j, "alignas") && is_punct(t_, j + 1, '('))
      j = skip_balanced(t_, j + 1, '(', ')');
    if (!is_any_ident(t_, j)) {
      // Anonymous struct/union { ... }.
      if (is_punct(t_, j, '{')) {
        push_scope(ScopeInfo::Kind::kClass, "", j + 1);
        return j + 1;
      }
      return i;
    }
    std::string name = t_[j].text;
    ++j;
    j = skip_template_args(t_, j);
    // Scan the base-clause (': public Foo<T>, ...') to the body.  Any
    // ';', '=' or '(' first means forward declaration / variable / cast.
    while (j < t_.size()) {
      if (is_punct(t_, j, '{')) {
        push_scope(ScopeInfo::Kind::kClass, name, j + 1);
        return j + 1;
      }
      if (is_punct(t_, j, ';') || is_punct(t_, j, '=') ||
          is_punct(t_, j, ')'))
        return i;
      if (is_punct(t_, j, '(')) return i;
      if (is_punct(t_, j, '<')) {
        std::size_t adv = skip_template_args(t_, j);
        j = adv == j ? j + 1 : adv;
        continue;
      }
      ++j;
    }
    return i;
  }

  // -- declarations -------------------------------------------------------

  /// Parses one qualified, possibly templated identifier chunk at `j`.
  /// Returns false when `j` does not start a usable chunk.
  bool parse_chunk(std::size_t& j, TypeChunk& out) {
    std::size_t k = j;
    std::string text;
    bool qualified = false;
    bool templated = false;
    if (is_punct(t_, k, ':') && is_punct(t_, k + 1, ':')) {
      text += "::";
      qualified = true;
      k += 2;
    }
    if (!is_any_ident(t_, k)) return false;
    if (decl_stoppers().count(t_[k].text) != 0) return false;
    std::size_t name_tok = k;
    text += t_[k].text;
    ++k;
    while (true) {
      if (is_punct(t_, k, '<')) {
        std::size_t adv = skip_template_args(t_, k);
        if (adv != k) {
          for (std::size_t m = k; m < adv; ++m) text += t_[m].text;
          templated = true;
          k = adv;
          continue;
        }
        break;
      }
      if (is_punct(t_, k, ':') && is_punct(t_, k + 1, ':') &&
          is_any_ident(t_, k + 2) &&
          decl_stoppers().count(t_[k + 2].text) == 0) {
        text += "::";
        text += t_[k + 2].text;
        qualified = true;
        name_tok = k + 2;
        k += 3;
        continue;
      }
      break;
    }
    out.text = text;
    out.plain = !qualified && !templated;
    out.name_token = name_tok;
    j = k;
    return true;
  }

  struct DeclHead {
    std::vector<TypeChunk> chunks;
    bool is_const = false;
    bool is_static = false;
    bool is_thread_local = false;
    bool is_reference = false;
    bool is_pointer = false;
    std::size_t end = 0;  ///< First token past the head (the terminator).
  };

  /// Parses qualifiers + type chunks + ptr/ref decorations starting at
  /// `i`; stops at the first token that fits neither.
  bool parse_decl_head(std::size_t i, DeclHead& head) {
    std::size_t j = i;
    while (is_any_ident(t_, j) && decl_qualifiers().count(t_[j].text) != 0) {
      if (t_[j].text == "const" || t_[j].text == "constexpr")
        head.is_const = true;
      if (t_[j].text == "static") head.is_static = true;
      if (t_[j].text == "thread_local") head.is_thread_local = true;
      ++j;
    }
    while (true) {
      if (is_any_ident(t_, j) && decl_qualifiers().count(t_[j].text) != 0) {
        if (t_[j].text == "const") head.is_const = true;
        ++j;
        continue;
      }
      TypeChunk chunk;
      std::size_t k = j;
      if (parse_chunk(k, chunk)) {
        head.chunks.push_back(chunk);
        j = k;
        continue;
      }
      if (is_punct(t_, j, '*')) {
        if (head.chunks.empty()) return false;
        head.is_pointer = true;
        ++j;
        continue;
      }
      if (is_punct(t_, j, '&')) {
        if (head.chunks.empty()) return false;
        head.is_reference = true;
        ++j;
        if (is_punct(t_, j, '&')) ++j;  // rvalue reference
        continue;
      }
      if (is_punct(t_, j, '.') && is_punct(t_, j + 1, '.') &&
          is_punct(t_, j + 2, '.')) {
        j += 3;  // pack expansion
        continue;
      }
      break;
    }
    head.end = j;
    return !head.chunks.empty();
  }

  std::string join_type(const std::vector<TypeChunk>& chunks,
                        std::size_t count, bool ptr, bool ref) {
    std::string out;
    for (std::size_t i = 0; i < count; ++i) {
      if (!out.empty()) out += ' ';
      out += chunks[i].text;
    }
    if (ptr) out += " *";
    if (ref) out += " &";
    return out;
  }

  void derive_type_flags(VarDecl& v) {
    // A guard's template argument mentions the mutex type; the guard
    // itself is not lockable state.
    const bool guard = type_contains(v.type_text, "lock_guard") ||
                       type_contains(v.type_text, "unique_lock") ||
                       type_contains(v.type_text, "scoped_lock") ||
                       type_contains(v.type_text, "shared_lock");
    v.is_mutex = !guard && (type_contains(v.type_text, "mutex") ||
                            type_contains(v.type_text, "condition_variable"));
    v.is_atomic = type_contains(v.type_text, "atomic");
    v.is_thread_like = !guard && type_contains(v.type_text, "thread");
    v.is_function_type = type_contains(v.type_text, "function");
  }

  void record_var(const DeclHead& head, const TypeChunk& name_chunk,
                  bool parameter) {
    VarDecl v;
    v.name = name_chunk.text;
    v.type_text = join_type(head.chunks, head.chunks.size() - 1,
                            head.is_pointer, head.is_reference);
    v.scope = stack_.back();
    v.line = name_chunk.name_token < t_.size()
                 ? t_[name_chunk.name_token].line
                 : 0;
    v.name_token = name_chunk.name_token;
    v.is_const = head.is_const;
    v.is_static = head.is_static;
    v.is_thread_local = head.is_thread_local;
    v.is_reference = head.is_reference;
    v.is_pointer = head.is_pointer;
    v.is_parameter = parameter;
    derive_type_flags(v);
    table_.vars.push_back(v);
  }

  /// Tries to parse a variable declaration statement at `i`.  On success
  /// returns the token just past the declared *name* (so the main loop
  /// still walks initializer expressions); on failure returns `i`.
  std::size_t try_var_decl(std::size_t i) {
    DeclHead head;
    if (!parse_decl_head(i, head)) return i;
    if (head.chunks.size() < 2) return i;
    const TypeChunk& name = head.chunks.back();
    if (!name.plain) return i;
    std::size_t term = head.end;
    const ScopeInfo::Kind sk = table_.scopes[stack_.back()].kind;
    const bool decl_scope = sk == ScopeInfo::Kind::kFile ||
                            sk == ScopeInfo::Kind::kNamespace ||
                            sk == ScopeInfo::Kind::kClass;
    // `name (` at file/namespace/class scope is a function *declaration*
    // (try_function already rejected a definition); inside a body it is
    // ctor-style direct init (std::lock_guard lk(m)).
    const bool ok_paren = is_punct(t_, term, '(') && !decl_scope;
    const bool ok_term = is_punct(t_, term, '=') || is_punct(t_, term, ';') ||
                         is_punct(t_, term, '{') || ok_paren ||
                         is_punct(t_, term, '[') || is_punct(t_, term, ',');
    if (!ok_term) return i;
    record_var(head, name, /*parameter=*/false);
    std::size_t next = name.name_token + 1;
    // Additional declarators: `int a, b = 1, *c;` — record the names but
    // stop at the first initializer so its tokens are rescanned.
    std::size_t j = term;
    while (is_punct(t_, j, ',')) {
      ++j;
      DeclHead more = head;  // Same base type and qualifiers.
      more.is_pointer = head.is_pointer;
      more.is_reference = head.is_reference;
      while (is_punct(t_, j, '*')) {
        more.is_pointer = true;
        ++j;
      }
      while (is_punct(t_, j, '&')) {
        more.is_reference = true;
        ++j;
      }
      TypeChunk extra;
      std::size_t k = j;
      if (!parse_chunk(k, extra) || !extra.plain) break;
      if (!(is_punct(t_, k, '=') || is_punct(t_, k, ';') ||
            is_punct(t_, k, ',') || is_punct(t_, k, '{') ||
            is_punct(t_, k, '(')))
        break;
      record_var(more, extra, /*parameter=*/false);
      j = k;
      if (!is_punct(t_, j, ',')) break;
    }
    return next;
  }

  // -- functions ----------------------------------------------------------

  /// Records the parameter declarations between `open` ('(') and its
  /// matching ')' into the current (function or lambda) scope.
  void record_params(std::size_t open) {
    std::size_t close = skip_balanced(t_, open, '(', ')');
    if (close == open) return;
    std::size_t j = open + 1;
    while (j + 1 < close) {
      std::size_t item_end = j;
      int depth = 0;
      while (item_end + 1 < close) {
        if (is_punct(t_, item_end, '(') || is_punct(t_, item_end, '[') ||
            is_punct(t_, item_end, '{'))
          ++depth;
        if (is_punct(t_, item_end, ')') || is_punct(t_, item_end, ']') ||
            is_punct(t_, item_end, '}'))
          --depth;
        if (depth == 0 && is_punct(t_, item_end, ',')) break;
        std::size_t tmpl = skip_template_args(t_, item_end);
        if (tmpl != item_end) {
          item_end = tmpl;
          continue;
        }
        ++item_end;
      }
      parse_param(j, item_end);
      j = item_end + 1;
    }
  }

  void parse_param(std::size_t begin, std::size_t end) {
    DeclHead head;
    if (!parse_decl_head(begin, head)) return;
    if (head.end > end) return;
    if (head.chunks.size() < 2) return;  // Unnamed parameter.
    const TypeChunk& name = head.chunks.back();
    if (!name.plain) return;
    record_var(head, name, /*parameter=*/true);
  }

  /// Tries to parse a function definition starting at token `i` (already
  /// known to sit at statement start in a file/namespace/class scope).
  /// On success the function scope is pushed and the index of the first
  /// body token is returned; otherwise returns `i`.
  std::size_t try_function(std::size_t i) {
    DeclHead head;
    if (!parse_decl_head(i, head)) return i;
    std::size_t term = head.end;
    if (!is_punct(t_, term, '(')) return i;
    const TypeChunk& name_chunk = head.chunks.back();
    const ScopeInfo& cur = table_.scopes[stack_.back()];
    const bool macro_shaped =
        name_chunk.plain && all_caps_name(name_chunk.text);
    if (head.chunks.size() < 2) {
      // Single chunk: constructor (class scope, name == class) or a
      // macro-shaped pseudo-definition (TEST(...) { ... }).
      const bool ctor = cur.kind == ScopeInfo::Kind::kClass &&
                        name_chunk.text == cur.name;
      if (!ctor && !macro_shaped) return i;
    }
    std::size_t close = skip_balanced(t_, term, '(', ')');
    if (close == term) return i;
    // Post-parameter suffix: qualifiers, noexcept(...), trailing return,
    // ctor-init list.  Stop at '{' (definition) or ';'/'='/',' (not one).
    std::size_t j = close;
    while (j < t_.size()) {
      if (is_punct(t_, j, '{')) break;
      if (is_punct(t_, j, ';') || is_punct(t_, j, '=') ||
          is_punct(t_, j, ',') || is_punct(t_, j, ')'))
        return i;
      if (is_punct(t_, j, '(')) {
        j = skip_balanced(t_, j, '(', ')');
        continue;
      }
      if (is_punct(t_, j, '<')) {
        std::size_t adv = skip_template_args(t_, j);
        j = adv == j ? j + 1 : adv;
        continue;
      }
      ++j;
    }
    if (!is_punct(t_, j, '{')) return i;

    FunctionInfo f;
    std::string written = name_chunk.text;
    std::size_t sep = written.rfind("::");
    if (sep != std::string::npos) {
      f.qualifier = written.substr(0, sep);
      // Strip any template arguments from the qualifier.
      std::size_t lt = f.qualifier.find('<');
      if (lt != std::string::npos) f.qualifier.resize(lt);
      std::size_t lead = f.qualifier.rfind("::");
      if (lead != std::string::npos) f.qualifier = f.qualifier.substr(lead + 2);
      f.name = written.substr(sep + 2);
    } else {
      f.name = written;
    }
    f.line = t_[name_chunk.name_token].line;
    if (macro_shaped) {
      // TEST(...) / ASSERT-style macro bodies: give each a unique name so
      // distinct expansions never merge into one call-graph node.
      f.name = f.name + "#" + std::to_string(f.line);
      f.file_local = true;
    }
    f.name_space = table_.namespace_of(stack_.back());
    if (cur.kind == ScopeInfo::Kind::kClass) f.class_name = cur.name;
    f.file_local = f.file_local || head.is_static || in_anonymous_namespace();
    f.body_begin = j + 1;
    f.body_end = t_.size();

    int scope = push_scope(ScopeInfo::Kind::kFunction, f.name, j + 1);
    f.scope = scope;
    table_.functions.push_back(f);
    function_of_scope_.resize(table_.scopes.size(), -1);
    function_of_scope_[scope] = static_cast<int>(table_.functions.size()) - 1;
    record_params(term);
    return j + 1;
  }

  bool in_anonymous_namespace() const {
    for (int s = stack_.back(); s >= 0; s = table_.scopes[s].parent) {
      if (table_.scopes[s].anonymous_namespace) return true;
    }
    return false;
  }

  // -- lambdas ------------------------------------------------------------

  /// Tries to parse a lambda whose capture intro '[' is at `i`.  On
  /// success the lambda scope is pushed and the first body token index is
  /// returned; otherwise returns `i`.
  std::size_t try_lambda(std::size_t i) {
    // '[' preceded by a value expression is a subscript; '[[' is an
    // attribute.
    if (i > 0) {
      const Token& p = t_[i - 1];
      if (p.kind == Token::Kind::kIdentifier &&
          decl_stoppers().count(p.text) == 0 && p.text != "return")
        return i;
      if (p.kind == Token::Kind::kNumber) return i;
      if (p.kind == Token::Kind::kPunct && p.text.size() == 1 &&
          (p.text[0] == ']' || p.text[0] == ')' || p.text[0] == '['))
        return i;
    }
    if (is_punct(t_, i + 1, '[')) return i;  // [[attribute]]

    LambdaInfo lam;
    lam.intro_token = i;
    lam.line = t_[i].line;

    // Parse the capture list up to the matching ']'.
    std::size_t j = i + 1;
    int depth = 1;
    std::vector<std::vector<std::size_t>> items(1);
    while (j < t_.size() && depth > 0) {
      if (is_punct(t_, j, '[')) ++depth;
      if (is_punct(t_, j, ']')) {
        --depth;
        if (depth == 0) break;
      }
      if (is_punct(t_, j, '(')) {
        std::size_t adv = skip_balanced(t_, j, '(', ')');
        for (std::size_t m = j; m < adv; ++m) items.back().push_back(m);
        j = adv;
        continue;
      }
      if (depth == 1 && is_punct(t_, j, ',')) {
        items.emplace_back();
      } else {
        items.back().push_back(j);
      }
      ++j;
    }
    if (!is_punct(t_, j, ']')) return i;
    std::size_t after = j + 1;

    for (const auto& item : items) {
      if (item.empty()) continue;
      std::size_t a = item[0];
      if (is_punct(t_, a, '&')) {
        if (item.size() == 1) {
          lam.default_ref = true;
        } else if (is_any_ident(t_, item[1])) {
          lam.ref_captures.push_back(t_[item[1]].text);
        }
        continue;
      }
      if (is_punct(t_, a, '=') && item.size() == 1) {
        lam.default_copy = true;
        continue;
      }
      if (is_ident(t_, a, "this")) {
        lam.captures_this = true;
        continue;
      }
      if (is_punct(t_, a, '*') && item.size() >= 2 &&
          is_ident(t_, item[1], "this")) {
        lam.copy_captures.push_back("this");
        continue;
      }
      if (is_any_ident(t_, a)) {
        lam.copy_captures.push_back(t_[a].text);
        continue;
      }
    }

    // Optional parameter list, then specifiers up to the body.
    std::size_t params_open = t_.size();
    if (is_punct(t_, after, '(')) {
      params_open = after;
      after = skip_balanced(t_, after, '(', ')');
    }
    std::size_t guard = 0;
    while (after < t_.size() && guard++ < 128) {
      if (is_punct(t_, after, '{')) break;
      if (is_punct(t_, after, ';') || is_punct(t_, after, ')') ||
          is_punct(t_, after, ',') || is_punct(t_, after, ']') ||
          is_punct(t_, after, '}'))
        return i;  // No body — not a lambda expression we model.
      if (is_punct(t_, after, '(')) {
        after = skip_balanced(t_, after, '(', ')');
        continue;
      }
      if (is_punct(t_, after, '<')) {
        std::size_t adv = skip_template_args(t_, after);
        after = adv == after ? after + 1 : adv;
        continue;
      }
      ++after;
    }
    if (!is_punct(t_, after, '{')) return i;

    lam.body_begin = after + 1;
    lam.body_end = t_.size();
    lam.enclosing_function = enclosing_function_index();
    int scope = push_scope(ScopeInfo::Kind::kLambda, "", after + 1);
    lam.scope = scope;
    table_.lambdas.push_back(lam);
    if (params_open < t_.size()) record_params(params_open);
    return after + 1;
  }

  int enclosing_function_index() const {
    for (int s = stack_.back(); s >= 0; s = table_.scopes[s].parent) {
      if (table_.scopes[s].kind == ScopeInfo::Kind::kFunction) {
        if (s < static_cast<int>(function_of_scope_.size()))
          return function_of_scope_[s];
        return -1;
      }
    }
    return -1;
  }

  // -- sink classification (post-pass) ------------------------------------

  void classify_lambda_sinks() {
    for (auto& lam : table_.lambdas) classify_sink(lam);
  }

  void classify_sink(LambdaInfo& lam) {
    const std::size_t i = lam.intro_token;
    // [..]{..}( — immediately invoked.
    if (lam.body_end + 1 < t_.size() && is_punct(t_, lam.body_end + 1, '(')) {
      lam.sink = LambdaInfo::Sink::kImmediate;
      return;
    }
    if (i == 0) return;
    std::size_t p = i - 1;
    if (is_punct(t_, p, '(') || is_punct(t_, p, ',')) {
      classify_call_sink(lam, p);
      return;
    }
    if (is_punct(t_, p, '=')) {
      classify_assign_sink(lam, p);
      return;
    }
    if (is_punct(t_, p, '{')) {
      // Braced init of a declared variable: std::function<..> f{[&]{..}};
      classify_assign_sink(lam, p);
      return;
    }
    if (is_ident(t_, p, "return")) {
      lam.sink = LambdaInfo::Sink::kUnknown;  // Escapes to caller; see docs.
      return;
    }
  }

  /// `p` is the '(' or ',' immediately before the lambda: find the call's
  /// opening paren, then the callee chain before it.
  void classify_call_sink(LambdaInfo& lam, std::size_t p) {
    std::size_t open = p;
    if (is_punct(t_, p, ',')) {
      int depth = 0;
      std::size_t k = p;
      bool found = false;
      while (k > 0) {
        --k;
        if (is_punct(t_, k, ')') || is_punct(t_, k, ']') ||
            is_punct(t_, k, '}'))
          ++depth;
        else if (is_punct(t_, k, '(')) {
          if (depth == 0) {
            open = k;
            found = true;
            break;
          }
          --depth;
        } else if (is_punct(t_, k, '[') || is_punct(t_, k, '{')) {
          if (depth == 0) return;  // Aggregate init, not a call.
          --depth;
        } else if (depth == 0 && is_punct(t_, k, ';')) {
          return;
        }
      }
      if (!found) return;
    }
    if (open == 0) return;
    // Callee: identifier chain directly before the '(' (skipping one
    // template-argument group).
    std::size_t c = open - 1;
    if (is_punct(t_, c, '>')) {
      // foo<T>( — walk back over the template args.
      int depth = 0;
      while (c > 0) {
        if (is_punct(t_, c, '>')) ++depth;
        if (is_punct(t_, c, '<')) {
          --depth;
          if (depth == 0) {
            --c;
            break;
          }
        }
        --c;
      }
    }
    if (!is_any_ident(t_, c)) return;
    const std::string callee = t_[c].text;
    lam.sink_name = callee;
    lam.sink = LambdaInfo::Sink::kArgument;

    if (callee == "thread" || callee == "jthread") {
      lam.sink = LambdaInfo::Sink::kThread;
      return;
    }
    if (callee == "async" || deferred_callees().count(callee) != 0) {
      lam.sink = LambdaInfo::Sink::kDeferredCall;
      return;
    }
    // Object method?  `pool.emplace_back([..]{..})` — dispatch on the
    // receiving object's declared type.
    std::string object;
    if (c >= 2 && (is_punct(t_, c - 1, '.') ||
                   (is_punct(t_, c - 1, '>') && is_punct(t_, c - 2, '-')))) {
      std::size_t o = is_punct(t_, c - 1, '.') ? c - 2 : c - 3;
      if (is_any_ident(t_, o)) object = t_[o].text;
    }
    if (insertion_callees().count(callee) != 0 && !object.empty()) {
      const VarDecl* decl = table_.lookup(object, lam.intro_token);
      if (decl != nullptr) {
        if (decl->is_thread_like) {
          lam.sink = LambdaInfo::Sink::kThread;
          lam.sink_name = object;
          return;
        }
        if (decl->is_function_type) {
          lam.sink = LambdaInfo::Sink::kStoredFunction;
          lam.sink_name = object;
          return;
        }
      }
      return;
    }
    // Direct init of a declared variable: std::thread t([..]{..});
    const VarDecl* decl = table_.lookup(callee, lam.intro_token);
    if (decl != nullptr && decl->name_token < lam.intro_token) {
      if (decl->is_thread_like) lam.sink = LambdaInfo::Sink::kThread;
      else if (decl->is_function_type)
        lam.sink = LambdaInfo::Sink::kStoredFunction;
      else
        lam.sink = LambdaInfo::Sink::kNamedLocal;
      lam.sink_name = callee;
    }
  }

  /// `p` is the '=' or '{' immediately before the lambda: classify by the
  /// assignment target / declared variable on the left.
  void classify_assign_sink(LambdaInfo& lam, std::size_t p) {
    if (p == 0) return;
    std::size_t k = p - 1;
    if (!is_any_ident(t_, k)) return;
    const std::string target = t_[k].text;
    lam.sink_name = target;
    const VarDecl* decl = table_.lookup(target, lam.intro_token);
    if (decl == nullptr) {
      // Member assignment through a chain (spec.build = [..]) — resolve
      // by member name anywhere; ambiguity stays kUnknown.
      const VarDecl* member = nullptr;
      bool ambiguous = false;
      for (const auto& v : table_.vars) {
        if (v.name != target) continue;
        if (table_.scopes[v.scope].kind != ScopeInfo::Kind::kClass) continue;
        if (member != nullptr && member->is_function_type != v.is_function_type)
          ambiguous = true;
        member = &v;
      }
      if (member != nullptr && !ambiguous && member->is_function_type) {
        lam.sink = LambdaInfo::Sink::kStoredFunction;
      }
      return;
    }
    if (decl->is_function_type) {
      lam.sink = LambdaInfo::Sink::kStoredFunction;
    } else {
      lam.sink = LambdaInfo::Sink::kNamedLocal;
    }
  }

  const ScannedSource& src_;
  const Tokens& t_;
  SymbolTable table_;
  std::vector<int> stack_;
  std::vector<int> function_of_scope_;
};

}  // namespace

// -- SymbolTable queries --------------------------------------------------

int SymbolTable::scope_at(std::size_t i) const {
  int best = 0;
  std::size_t best_begin = 0;
  for (std::size_t s = 1; s < scopes.size(); ++s) {
    const ScopeInfo& sc = scopes[s];
    if (sc.body_begin <= i && i < sc.body_end && sc.body_begin >= best_begin) {
      best = static_cast<int>(s);
      best_begin = sc.body_begin;
    }
  }
  return best;
}

bool SymbolTable::scope_within(int scope, int outer) const {
  for (int s = scope; s >= 0;
       s = s < static_cast<int>(scopes.size()) ? scopes[s].parent : -1) {
    if (s == outer) return true;
  }
  return false;
}

const VarDecl* SymbolTable::lookup(const std::string& name,
                                   std::size_t i) const {
  const int at = scope_at(i);
  // Walk the scope chain innermost-out; within order-sensitive scopes
  // (function/lambda/block) a declaration is visible only after its name.
  for (int s = at; s >= 0; s = scopes[s].parent) {
    const ScopeInfo& sc = scopes[s];
    const bool ordered = sc.kind == ScopeInfo::Kind::kFunction ||
                         sc.kind == ScopeInfo::Kind::kLambda ||
                         sc.kind == ScopeInfo::Kind::kBlock;
    const VarDecl* found = nullptr;
    for (const auto& v : vars) {
      if (v.scope != s || v.name != name) continue;
      if (ordered && v.name_token > i) continue;
      if (found == nullptr || v.name_token > found->name_token) found = &v;
    }
    if (found != nullptr) return found;
  }
  // Out-of-line member functions see the members of the written class.
  for (const auto& f : functions) {
    if (f.scope < 0 || f.qualifier.empty()) continue;
    if (!scope_within(at, f.scope)) continue;
    for (std::size_t s = 0; s < scopes.size(); ++s) {
      if (scopes[s].kind != ScopeInfo::Kind::kClass ||
          scopes[s].name != f.qualifier)
        continue;
      for (const auto& v : vars) {
        if (v.scope == static_cast<int>(s) && v.name == name) return &v;
      }
    }
  }
  return nullptr;
}

std::string SymbolTable::namespace_of(int scope) const {
  std::vector<const std::string*> parts;
  for (int s = scope; s >= 0; s = scopes[s].parent) {
    const ScopeInfo& sc = scopes[s];
    if (sc.kind == ScopeInfo::Kind::kNamespace && !sc.anonymous_namespace)
      parts.push_back(&sc.name);
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += "::";
    out += **it;
  }
  return out;
}

std::string SymbolTable::class_of(int scope) const {
  for (int s = scope; s >= 0; s = scopes[s].parent) {
    if (scopes[s].kind == ScopeInfo::Kind::kClass) return scopes[s].name;
  }
  return "";
}

SymbolTable build_symbols(const ScannedSource& src) {
  return Builder(src).run();
}

}  // namespace aqt::audit
