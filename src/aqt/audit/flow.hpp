// Intraprocedural lock flow for the aqt-audit semantic layer.
//
// Computes, for every token position in a file, which mutexes are held
// there — the *lockset*.  The model is Eraser-flavoured but purely
// lexical-structural:
//
//   * a guard declaration (std::lock_guard / unique_lock / scoped_lock /
//     shared_lock) acquires the mutexes named in its constructor
//     arguments from the declaration to the end of its enclosing scope;
//   * `std::defer_lock` suppresses the initial acquisition; a subsequent
//     `guard.lock()` starts it, `guard.unlock()` ends it (re-lockable);
//   * a manual `m.lock()` on a mutex-typed variable holds until the
//     matching `m.unlock()` in the same function, conservatively until
//     the end of the function body when no unlock is found.
//
// Mutex *identity* is canonical: `Class::member` for members,
// `ns::name` for globals in named namespaces, and a file-tagged label
// for anything file-local, so identities aggregate correctly across
// translation units (AUD009) without colliding.
//
// Known false negatives, by design (documented in docs/TOOLS.md): locks
// through `auto`-typed guards, guards stored in containers, mutexes
// reached through pointers, and conditional acquisition — all degrade to
// "not held", which biases AUD008 toward reporting and AUD009 toward
// silence, never toward a bogus lock-order pair.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "aqt/audit/lexer.hpp"
#include "aqt/audit/symbols.hpp"

namespace aqt::audit {

/// One span of tokens during which a mutex is held.
struct LockInterval {
  std::string mutex;        ///< Canonical identity (see header comment).
  std::size_t begin = 0;    ///< First token at which the lock is held.
  std::size_t end = 0;      ///< First token at which it is no longer held.
  int line = 0;             ///< Acquisition line (for findings).
};

/// The lock flow of one file.
struct LockFlow {
  std::vector<LockInterval> intervals;

  /// Sorted canonical names of every mutex held at token `i`.
  [[nodiscard]] std::vector<std::string> held_at(std::size_t i) const;

  /// True when any lock is held at token `i`.
  [[nodiscard]] bool any_held_at(std::size_t i) const;
};

/// Canonical cross-TU identity for a mutex-typed declaration.
/// `file_label` tags file-local and function-local names so they never
/// merge with another TU's.
std::string canonical_mutex_name(const VarDecl& decl,
                                 const SymbolTable& table,
                                 const std::string& file_label);

/// Computes the lock flow.  Total: any input terminates.
LockFlow compute_lock_flow(const ScannedSource& src, const SymbolTable& table,
                           const std::string& file_label);

}  // namespace aqt::audit
