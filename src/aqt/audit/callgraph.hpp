// Cross-TU call graph for the aqt-audit semantic layer.
//
// AUD006 checks layering at the #include level — a fast, local check
// that cannot see a violation routed through an *indirect* call (core
// calls a helper declared in an innocent header whose definition calls
// into runner).  This module builds a real call graph from the symbol
// tables of every audited file and resolves call sites with C++-shaped
// name lookup:
//
//   * definitions are nodes, keyed by their full path
//     (`namespace::Class::name`); out-of-line member definitions unify
//     with their in-class declarations via the written qualifier;
//     file-local definitions (anonymous namespace, static, macro-shaped
//     pseudo-functions like TEST bodies) are confined to their file;
//   * a call `runner_detail::submit_shard(...)` from a function in
//     namespace `aqt` resolves through the enclosing namespaces
//     innermost-out, trying the caller's class members first —
//     the first tier with a definition wins;
//   * method calls through an object (`x.f()`) and calls into `std::`
//     are not resolved (documented false-negative class: virtual
//     dispatch and callbacks are invisible to this graph).
//
// On the graph, AUD011 asks reachability: the set of layers a function
// can reach transitively must be allowed for the calling file's layer.
// AUD009 uses the same graph to propagate lock acquisition: a call made
// while holding mutex A orders A before everything the callee's
// transitive closure acquires.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "aqt/audit/lexer.hpp"
#include "aqt/audit/symbols.hpp"

namespace aqt::audit {

/// One call site found in a file, before cross-TU resolution.
struct CallSite {
  std::string written;   ///< As written: "helper", "runner_detail::submit".
  int caller = -1;       ///< Index into the file's SymbolTable::functions.
  std::size_t token = 0; ///< Token index of the (last) callee identifier.
  int line = 0;
};

/// Extracts resolvable call sites (free and namespace-qualified calls;
/// method calls and std:: are skipped).  Total: any input terminates.
std::vector<CallSite> extract_calls(const ScannedSource& src,
                                    const SymbolTable& table);

/// The per-file slice handed to the cross-TU aggregation.
struct FileCallInfo {
  std::string file;
  std::string layer;  ///< From FileContext (possibly directive-overridden).

  struct Def {
    std::string name;        ///< Unqualified.
    std::string qualifier;   ///< Written Class:: qualifier, if any.
    std::string name_space;  ///< "aqt::runner_detail".
    std::string class_name;  ///< In-class definitions only.
    bool file_local = false;
    int line = 0;
    /// Mutexes this body acquires directly: (canonical name, line).
    std::vector<std::pair<std::string, int>> acquires;
  };

  struct Call {
    std::string written;
    int caller = -1;  ///< Index into defs.
    int line = 0;
    std::vector<std::string> held;  ///< Locks held at the call site.
  };

  std::vector<Def> defs;
  std::vector<Call> calls;
};

/// The resolved, merged multi-file call graph.
class CallGraph {
 public:
  explicit CallGraph(std::vector<FileCallInfo> files);

  /// One AUD011 finding site: a call whose transitive reachability
  /// includes a layer the calling file must not depend on.
  struct Violation {
    std::string file;
    int line = 0;
    std::string caller;     ///< Display name of the calling function.
    std::string callee;     ///< Display name of the resolved callee.
    std::string bad_layer;  ///< The forbidden layer reached.
    std::string path;       ///< "a -> b -> c" witness chain.
  };

  /// All layering violations under `allowed(from_layer, to_layer)`.
  /// Files in layer "top" (tools/tests/bench) are exempt.  Output is
  /// deterministic: sorted by (file, line, callee, bad_layer).
  [[nodiscard]] std::vector<Violation> layering_violations(
      const std::function<bool(const std::string&, const std::string&)>&
          allowed) const;

  /// One observed acquisition order: `first` was held while `second` was
  /// acquired — directly, or transitively through a call made with
  /// `first` held.
  struct OrderEdge {
    std::string first;
    std::string second;
    std::string file;  ///< Representative site establishing the order.
    int line = 0;
  };

  /// Order edges contributed by call propagation (a call made while
  /// holding A orders A before every mutex the callee's closure
  /// acquires).  Direct same-body nestings are the caller's business —
  /// they need no graph.  Deterministic order.
  [[nodiscard]] std::vector<OrderEdge> propagated_order_edges() const;

 private:
  struct Node {
    std::string display;           ///< Full path for messages.
    std::set<std::string> layers;  ///< Layers of the defining files.
    std::set<int> out;             ///< Resolved callee node ids.
    /// Direct acquisitions of every merged definition: (mutex, file, line).
    std::vector<std::pair<std::string, std::pair<std::string, int>>> acquires;
    std::set<std::string> reach;  ///< Transitive layer closure (built once).
  };
  [[nodiscard]] int resolve(const FileCallInfo& f,
                            const FileCallInfo::Call& c) const;
  [[nodiscard]] std::string witness_path(int from,
                                         const std::string& layer) const;

  std::vector<FileCallInfo> files_;
  std::vector<Node> nodes_;
  std::map<std::string, int> id_by_key_;
};

}  // namespace aqt::audit
