#include "aqt/audit/auditor.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "aqt/audit/lexer.hpp"
#include "aqt/util/check.hpp"

namespace aqt::audit {
namespace {

// ---------------------------------------------------------------------------
// Rule pack and layering model.

const std::vector<RuleInfo> kRules = {
    {"AUD001", "banned nondeterminism API (rand/random_device/time/"
               "system_clock/argless engine seed) outside seed plumbing"},
    {"AUD002", "iteration over an unordered container (unspecified order)"},
    {"AUD003", "mutable global / non-const static state in engine, runner, "
               "or obs code"},
    {"AUD004", "pointer-keyed ordered container (address-dependent order)"},
    {"AUD005", "float accumulation in a cross-worker merge path"},
    {"AUD006", "banned #include / layering violation"},
    {"AUD007", "malformed aqt-audit directive"},
};

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : kRules)
    if (id == r.id) return true;
  return false;
}

/// Which aqt modules each layer may #include.  Mirrors (the transitive
/// closure of) the target_link_libraries graph in src/aqt/*/CMakeLists.txt;
/// a new module must be registered here before anything may include it.
const std::map<std::string, std::set<std::string>>& layer_allowed() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"util", {"util"}},
      {"core", {"core", "util"}},
      {"obs", {"obs", "core", "util"}},
      {"trace", {"trace", "core", "util"}},
      {"topology", {"topology", "core", "util"}},
      {"analysis", {"analysis", "trace", "core", "util"}},
      {"adversaries",
       {"adversaries", "analysis", "topology", "trace", "core", "util"}},
      {"runner", {"runner", "trace", "obs", "core", "util"}},
      {"lint", {"lint", "topology", "core", "util"}},
      {"verify",
       {"verify", "lint", "analysis", "trace", "topology", "core", "util"}},
      {"experiments",
       {"experiments", "adversaries", "runner", "analysis", "topology",
        "trace", "obs", "core", "util"}},
      {"audit", {"audit", "util"}},
  };
  return kAllowed;
}

// ---------------------------------------------------------------------------
// Directive parsing: allow(...) suppressions and context(...) overrides
// introduced by the marker (the literal "aqt-audit" followed by ':').

struct Allow {
  std::string rule;
  int line = 0;       ///< Line the directive suppresses.
};

struct Directives {
  std::vector<Allow> allows;
  FileContext context;
  bool context_overridden = false;
  std::vector<AuditFinding> findings;  ///< AUD007 problems.
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

/// True when the physical line holds nothing but the comment (so an allow
/// directive written above the offending line applies to the next line).
bool comment_only_line(const std::vector<std::string>& lines, int line) {
  if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return false;
  const std::string before =
      trim(lines[static_cast<std::size_t>(line) - 1]);
  return before.rfind("//", 0) == 0 || before.rfind("/*", 0) == 0 ||
         before.rfind("*", 0) == 0;
}

/// Applies a context name; returns false for unknown names.
bool apply_context_name(const std::string& name, FileContext& ctx) {
  if (name == "merge") {
    ctx.merge_path = true;
    return true;
  }
  if (name == "seed-plumbing") {
    ctx.seed_plumbing = true;
    return true;
  }
  if (name == "engine") {  // Alias: state-sensitive without naming a layer.
    ctx.state_sensitive = true;
    return true;
  }
  if (name == "none") {
    ctx = FileContext{};
    return true;
  }
  if (layer_allowed().count(name) != 0 || name == "top") {
    ctx.layer = name;
    ctx.state_sensitive =
        name == "core" || name == "runner" || name == "obs";
    return true;
  }
  return false;
}

void parse_directive(const std::string& body, int line,
                     const std::vector<std::string>& lines, Directives& out) {
  auto bad = [&](const std::string& why) {
    out.findings.push_back(AuditFinding{
        "AUD007", line,
        "malformed aqt-audit directive: " + why +
            " (expected 'aqt-audit: allow(AUDNNN) -- reason' or "
            "'aqt-audit: context(name,...)')"});
  };
  const std::string text = trim(body);
  if (text.rfind("allow(", 0) == 0) {
    const auto close = text.find(')');
    if (close == std::string::npos) {
      bad("unclosed allow(");
      return;
    }
    const std::string rule = text.substr(6, close - 6);
    if (!known_rule(rule)) {
      bad("unknown rule id '" + rule + "'");
      return;
    }
    const std::string rest = trim(text.substr(close + 1));
    if (rest.rfind("--", 0) != 0 || trim(rest.substr(2)).empty()) {
      bad("allow(" + rule + ") without a '-- reason' justification");
      return;
    }
    Allow a;
    a.rule = rule;
    a.line = comment_only_line(lines, line) ? line + 1 : line;
    out.allows.push_back(std::move(a));
    return;
  }
  if (text.rfind("context(", 0) == 0) {
    const auto close = text.find(')');
    if (close == std::string::npos || !trim(text.substr(close + 1)).empty()) {
      bad("context(...) must close the directive");
      return;
    }
    std::string names = text.substr(8, close - 8);
    std::size_t start = 0;
    while (start <= names.size()) {
      const auto comma = names.find(',', start);
      const std::string name = trim(names.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start));
      if (name.empty() || !apply_context_name(name, out.context))
        bad("unknown context name '" + name + "'");
      else
        out.context_overridden = true;
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return;
  }
  bad("unrecognized directive '" + text.substr(0, 32) + "'");
}

Directives collect_directives(const ScannedSource& src,
                              const FileContext& path_ctx) {
  Directives out;
  out.context = path_ctx;
  for (const Comment& c : src.comments) {
    const auto at = c.text.find("aqt-audit:");
    if (at == std::string::npos) continue;
    // Only an allow/context clause after the marker is a directive; the
    // marker in prose ("the aqt-audit: ... grammar") stays prose.  A
    // malformed clause body (unknown rule, missing reason, unclosed
    // paren) is still AUD007 because parse_directive sees it.
    const std::string body = trim(c.text.substr(at + 10));
    if (body.rfind("allow", 0) != 0 && body.rfind("context", 0) != 0)
      continue;
    parse_directive(body, c.line, src.lines, out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token helpers.

using Tokens = std::vector<Token>;

bool is_ident(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == Token::Kind::kIdentifier &&
         t[i].text == text;
}
bool is_punct(const Tokens& t, std::size_t i, char c) {
  return i < t.size() && t[i].kind == Token::Kind::kPunct &&
         t[i].text.size() == 1 && t[i].text[0] == c;
}
bool any_ident(const Tokens& t, std::size_t i,
               const std::set<std::string>& names) {
  return i < t.size() && t[i].kind == Token::Kind::kIdentifier &&
         names.count(t[i].text) != 0;
}

/// Index just past a balanced <...> starting at `open` (which must be '<');
/// returns `open` when not a '<'.  Bounded: runs off the end gracefully.
std::size_t skip_template_args(const Tokens& t, std::size_t open) {
  if (!is_punct(t, open, '<')) return open;
  int depth = 0;
  std::size_t i = open;
  while (i < t.size()) {
    if (is_punct(t, i, '<')) ++depth;
    if (is_punct(t, i, '>')) {
      --depth;
      if (depth == 0) return i + 1;
    }
    ++i;
  }
  return i;
}

// ---------------------------------------------------------------------------
// The rules.

class Auditor {
 public:
  Auditor(const ScannedSource& src, FileContext ctx)
      : src_(src), ctx_(std::move(ctx)) {}

  std::vector<AuditFinding> run() {
    scan_declarations();
    if (!ctx_.seed_plumbing) rule_aud001();
    rule_aud002();
    if (ctx_.state_sensitive) rule_aud003();
    rule_aud004();
    if (ctx_.merge_path) rule_aud005();
    rule_aud006();
    return std::move(findings_);
  }

 private:
  void add(const char* rule, int line, std::string message) {
    AuditFinding f;
    f.rule = rule;
    f.line = line;
    f.message = std::move(message);
    if (line >= 1 && static_cast<std::size_t>(line) <= src_.lines.size())
      f.line_hash =
          line_content_hash(src_.lines[static_cast<std::size_t>(line) - 1]);
    findings_.push_back(std::move(f));
  }

  /// One pass recording identifiers declared with an unordered container
  /// type (AUD002) or a floating-point type (AUD005).  Purely local and
  /// heuristic — member declarations in the same file are covered, which
  /// matches how the repo keeps implementation classes in one TU.
  void scan_declarations() {
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (any_ident(t, i, kUnordered)) {
        std::size_t j = skip_template_args(t, i + 1);
        while (is_punct(t, j, '&') || is_punct(t, j, '*')) ++j;
        if (j < t.size() && t[j].kind == Token::Kind::kIdentifier)
          unordered_idents_.insert(t[j].text);
      }
      if ((is_ident(t, i, "double") || is_ident(t, i, "float")) &&
          i + 1 < t.size() && t[i + 1].kind == Token::Kind::kIdentifier)
        float_idents_.insert(t[i + 1].text);
    }
  }

  void rule_aud001() {
    // Identifier-shaped tokens that are nondeterministic wherever they
    // appear in code (string literals were already stripped).
    static const std::set<std::string> kBannedAlways = {
        "rand",       "srand",     "srandom",   "drand48",
        "lrand48",    "mrand48",   "random_device", "system_clock",
        "high_resolution_clock",   "gettimeofday",  "localtime",
        "gmtime",     "asctime",   "getenv"};
    // Callable names too common to ban as bare identifiers: only the
    // call form `time(...)` / `clock(...)` / `random(...)` is flagged,
    // and not as a member (`x.time(...)`) or non-std qualification.
    static const std::set<std::string> kBannedCalls = {"time", "clock",
                                                       "random"};
    static const std::set<std::string> kEngines = {
        "mt19937",       "mt19937_64",   "minstd_rand", "minstd_rand0",
        "default_random_engine",         "ranlux24_base",
        "ranlux48_base", "ranlux24",     "ranlux48",    "knuth_b"};
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (any_ident(t, i, kBannedAlways)) {
        add("AUD001", t[i].line,
            "nondeterministic API '" + t[i].text +
                "': all randomness/time must flow through explicitly "
                "seeded aqt::Rng / steady_clock (see util/rng.hpp)");
        continue;
      }
      if (any_ident(t, i, kBannedCalls) && is_punct(t, i + 1, '(')) {
        const bool member = i > 0 && (is_punct(t, i - 1, '.') ||
                                      is_punct(t, i - 1, '>'));
        const bool qualified = i > 1 && is_punct(t, i - 1, ':') &&
                               is_punct(t, i - 2, ':');
        const bool std_qualified =
            qualified && i > 2 && is_ident(t, i - 3, "std");
        // `long time(long t)` is a declaration, not a call: a call never
        // directly follows a bare identifier except expression keywords.
        static const std::set<std::string> kExprKeywords = {
            "return", "throw", "else", "do", "case", "goto",
            "co_return", "co_yield", "co_await"};
        const bool declaration =
            i > 0 && t[i - 1].kind == Token::Kind::kIdentifier &&
            kExprKeywords.count(t[i - 1].text) == 0;
        if (!member && !declaration && (!qualified || std_qualified))
          add("AUD001", t[i].line,
              "call of nondeterministic '" + t[i].text +
                  "()': wall-clock and libc randomness are banned outside "
                  "the seed-plumbing allowlist");
        continue;
      }
      if (any_ident(t, i, kEngines)) {
        // `std::mt19937 rng;` / `rng{}` / `rng()` — default (argless)
        // seeding is the hazard; an explicit seed argument passes.
        std::size_t j = i + 1;
        if (j < t.size() && t[j].kind == Token::Kind::kIdentifier) ++j;
        const bool argless =
            is_punct(t, j, ';') || is_punct(t, j, ',') ||
            (is_punct(t, j, '{') && is_punct(t, j + 1, '}')) ||
            (is_punct(t, j, '(') && is_punct(t, j + 1, ')'));
        if (argless)
          add("AUD001", t[i].line,
              "std engine '" + t[i].text +
                  "' constructed without an explicit seed: default seeds "
                  "are implementation-defined and unreplayable");
      }
    }
  }

  void rule_aud002() {
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      // Range-for over a tracked unordered container:
      //   for ( <decl> : <single-identifier> )
      if (is_ident(t, i, "for") && is_punct(t, i + 1, '(')) {
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < t.size() && j < i + 64; ++j) {
          if (is_punct(t, j, '(')) ++depth;
          if (is_punct(t, j, ')')) {
            --depth;
            if (depth == 0) break;
          }
          if (depth == 1 && is_punct(t, j, ':') && !is_punct(t, j + 1, ':') &&
              !is_punct(t, j - 1, ':')) {
            colon = j;
            break;
          }
        }
        if (colon != 0 && colon + 2 < t.size() &&
            t[colon + 1].kind == Token::Kind::kIdentifier &&
            is_punct(t, colon + 2, ')') &&
            unordered_idents_.count(t[colon + 1].text) != 0)
          add("AUD002", t[i].line,
              "iteration over unordered container '" + t[colon + 1].text +
                  "' has unspecified order; sort the keys first, or "
                  "justify with allow(AUD002) if the reduction is "
                  "commutative");
      }
      // Explicit iterator walk: tracked.begin() / cbegin().
      if (t[i].kind == Token::Kind::kIdentifier &&
          unordered_idents_.count(t[i].text) != 0 &&
          is_punct(t, i + 1, '.') &&
          (is_ident(t, i + 2, "begin") || is_ident(t, i + 2, "cbegin")) &&
          is_punct(t, i + 3, '('))
        add("AUD002", t[i].line,
            "iterator walk over unordered container '" + t[i].text +
                "' has unspecified order; sort the keys first, or justify "
                "with allow(AUD002) if the traversal is order-insensitive");
    }
  }

  void rule_aud003() {
    static const std::set<std::string> kConstish = {"const", "constexpr",
                                                    "constinit", "consteval"};
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const bool is_static = is_ident(t, i, "static");
      const bool is_tls = is_ident(t, i, "thread_local");
      if (!is_static && !is_tls) continue;
      // Scan to the first structural token.  '(' first => a function
      // declaration (fine); const/constexpr anywhere before the
      // terminator => immutable (fine); otherwise mutable static state.
      bool constish = false;
      char terminator = 0;
      int line = t[i].line;
      for (std::size_t j = i + 1; j < t.size() && j < i + 48; ++j) {
        if (any_ident(t, j, kConstish)) constish = true;
        if (is_ident(t, j, "thread_local")) continue;  // static thread_local
        if (is_punct(t, j, '<')) {
          j = skip_template_args(t, j) - 1;
          continue;
        }
        if (is_punct(t, j, ';') || is_punct(t, j, '=') ||
            is_punct(t, j, '(') || is_punct(t, j, '{')) {
          terminator = t[j].text[0];
          break;
        }
      }
      if (constish || terminator == '(' || terminator == 0) continue;
      add("AUD003", line,
          std::string(is_tls ? "thread_local" : "static") +
              " mutable state in engine/runner/obs code: shared-state "
              "TSan cannot prove safe, and run-to-run leakage that breaks "
              "replayability; make it const, or pass state explicitly");
    }
  }

  void rule_aud004() {
    static const std::set<std::string> kOrdered = {
        "map", "set", "multimap", "multiset", "priority_queue", "less",
        "greater"};
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!any_ident(t, i, kOrdered) || !is_punct(t, i + 1, '<')) continue;
      // Pointer in the *first* template argument (the ordering key).
      int depth = 0;
      bool pointer_key = false;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (is_punct(t, j, '<')) ++depth;
        if (is_punct(t, j, '>')) {
          --depth;
          if (depth == 0) break;
        }
        if (depth == 1 && is_punct(t, j, ',')) break;
        if (depth >= 1 && is_punct(t, j, '*')) pointer_key = true;
      }
      if (pointer_key)
        add("AUD004", t[i].line,
            "'" + t[i].text +
                "' keyed/ordered by a raw pointer: iteration and "
                "comparison order depend on allocation addresses, which "
                "differ across runs; key by a stable id instead");
    }
  }

  void rule_aud005() {
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdentifier ||
          float_idents_.count(t[i].text) == 0)
        continue;
      const bool compound = is_punct(t, i + 1, '+') && is_punct(t, i + 2, '=');
      const bool rebind = is_punct(t, i + 1, '=') && !is_punct(t, i + 2, '=') &&
                          is_ident(t, i + 2, t[i].text.c_str()) &&
                          is_punct(t, i + 3, '+');
      if (compound || rebind)
        add("AUD005", t[i].line,
            "float accumulation into '" + t[i].text +
                "' on a cross-worker merge path: addition order changes "
                "the result across --jobs; merge in a fixed "
                "(submission-order) loop or accumulate integers");
    }
  }

  void rule_aud006() {
    const auto& allowed = layer_allowed();
    for (const PreprocessorLine& pp : src_.preprocessor) {
      const std::string text = trim(pp.text);
      if (text.rfind("include", 0) != 0) continue;
      const auto open = text.find('"');
      if (open == std::string::npos) continue;  // <system> includes: free.
      const auto close = text.find('"', open + 1);
      if (close == std::string::npos) continue;
      const std::string path = text.substr(open + 1, close - open - 1);
      if (path.rfind("tools/", 0) == 0) {
        add("AUD006", pp.line,
            "#include \"" + path +
                "\": tool sources are program entry points, never a "
                "library surface");
        continue;
      }
      if (path.rfind("aqt/", 0) != 0) continue;
      const auto slash = path.find('/', 4);
      if (slash == std::string::npos) continue;
      const std::string target = path.substr(4, slash - 4);
      if (allowed.count(target) == 0) {
        add("AUD006", pp.line,
            "#include \"" + path + "\": module '" + target +
                "' is not registered in the layering map (auditor.cpp); "
                "register new modules there with their dependencies");
        continue;
      }
      if (ctx_.layer == "top") continue;  // tools/tests/bench: free.
      const auto it = allowed.find(ctx_.layer);
      if (it != allowed.end() && it->second.count(target) == 0)
        add("AUD006", pp.line,
            "#include \"" + path + "\": layer '" + ctx_.layer +
                "' must not depend on '" + target +
                "' (dependency order in src/aqt/*/CMakeLists.txt)");
    }
  }

  const ScannedSource& src_;
  FileContext ctx_;
  std::set<std::string> unordered_idents_;
  std::set<std::string> float_idents_;
  std::vector<AuditFinding> findings_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rule_pack() { return kRules; }

std::uint64_t line_content_hash(const std::string& line) {
  const std::string text = trim(line);
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

FileContext classify_path(const std::string& path) {
  FileContext ctx;
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  const auto at = p.find("src/aqt/");
  if (at != std::string::npos) {
    const std::size_t begin = at + 8;
    const auto slash = p.find('/', begin);
    if (slash != std::string::npos) {
      const std::string layer = p.substr(begin, slash - begin);
      if (layer_allowed().count(layer) != 0) {
        ctx.layer = layer;
        ctx.state_sensitive =
            layer == "core" || layer == "runner" || layer == "obs";
      }
    }
  }
  if (p.find("runner/pool.") != std::string::npos ||
      p.find("obs/registry.") != std::string::npos)
    ctx.merge_path = true;
  if (p.find("util/rng.") != std::string::npos) ctx.seed_plumbing = true;
  return ctx;
}

AuditReport audit_source(std::string file, const std::string& text) {
  AuditReport rep;
  const ScannedSource src = scan_source(text);
  Directives dir = collect_directives(src, classify_path(file));
  rep.file = std::move(file);

  std::vector<AuditFinding> findings = Auditor(src, dir.context).run();
  for (AuditFinding& f : dir.findings) findings.push_back(std::move(f));

  // Apply allow() suppressions (AUD007 findings are never suppressible —
  // a malformed directive must not silence itself).
  std::vector<AuditFinding> kept;
  kept.reserve(findings.size());
  for (AuditFinding& f : findings) {
    const bool allowed =
        f.rule != "AUD007" &&
        std::any_of(dir.allows.begin(), dir.allows.end(),
                    [&f](const Allow& a) {
                      return a.rule == f.rule && a.line == f.line;
                    });
    if (!allowed) kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(),
            [](const AuditFinding& a, const AuditFinding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  rep.findings = std::move(kept);
  return rep;
}

AuditReport audit_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AQT_REQUIRE(in.good(), "cannot open source file: " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return audit_source(path, buf.str());
}

// --- Baseline ---------------------------------------------------------------

std::vector<BaselineEntry> parse_baseline(std::istream& is,
                                          const std::string& name) {
  std::vector<BaselineEntry> out;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') continue;
    const auto tab1 = text.find('\t');
    const auto tab2 =
        tab1 == std::string::npos ? std::string::npos
                                  : text.find('\t', tab1 + 1);
    AQT_REQUIRE(tab2 != std::string::npos,
                "baseline " << name << ":" << lineno
                            << ": expected RULE<TAB>file<TAB>hash");
    BaselineEntry e;
    e.rule = text.substr(0, tab1);
    AQT_REQUIRE(known_rule(e.rule), "baseline "
                                        << name << ":" << lineno
                                        << ": unknown rule id '" << e.rule
                                        << "'");
    e.file = text.substr(tab1 + 1, tab2 - tab1 - 1);
    const std::string hex = trim(text.substr(tab2 + 1));
    AQT_REQUIRE(!hex.empty() && hex.size() <= 16,
                "baseline " << name << ":" << lineno << ": bad hash '" << hex
                            << "'");
    std::uint64_t h = 0;
    for (const char c : hex) {
      int digit = 0;
      if (c >= '0' && c <= '9')
        digit = c - '0';
      else if (c >= 'a' && c <= 'f')
        digit = c - 'a' + 10;
      else
        AQT_REQUIRE(false, "baseline " << name << ":" << lineno
                                       << ": bad hash '" << hex << "'");
      h = (h << 4U) | static_cast<std::uint64_t>(digit);
    }
    e.line_hash = h;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<BaselineEntry> load_baseline_file(const std::string& path) {
  std::ifstream in(path);
  AQT_REQUIRE(in.good(), "cannot open baseline file: " << path);
  return parse_baseline(in, path);
}

namespace {
std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}
}  // namespace

std::string to_baseline(const std::vector<AuditReport>& reports) {
  std::ostringstream os;
  os << "# aqt-audit baseline: grandfathered findings (RULE\\tfile\\thash "
        "of the trimmed offending line).\n"
     << "# Regenerate with `aqt-audit --update-baseline ...`; this file "
        "should only ever shrink.\n";
  for (const AuditReport& rep : reports)
    for (const AuditFinding& f : rep.findings)
      os << f.rule << '\t' << rep.file << '\t' << hash_hex(f.line_hash)
         << '\n';
  return os.str();
}

BaselineApplied apply_baseline(std::vector<AuditReport>& reports,
                               const std::vector<BaselineEntry>& baseline) {
  BaselineApplied result;
  // Multiset of unconsumed entries keyed by rule+file+hash.
  std::map<std::string, std::size_t> budget;
  auto key = [](const std::string& rule, const std::string& file,
                std::uint64_t hash) {
    return rule + '\t' + file + '\t' + hash_hex(hash);
  };
  for (const BaselineEntry& e : baseline)
    ++budget[key(e.rule, e.file, e.line_hash)];
  for (AuditReport& rep : reports) {
    std::vector<AuditFinding> kept;
    kept.reserve(rep.findings.size());
    for (AuditFinding& f : rep.findings) {
      const auto it = budget.find(key(f.rule, rep.file, f.line_hash));
      if (it != budget.end() && it->second > 0) {
        --it->second;
        ++result.suppressed;
      } else {
        kept.push_back(std::move(f));
      }
    }
    rep.findings = std::move(kept);
  }
  for (const BaselineEntry& e : baseline) {
    auto& remaining = budget[key(e.rule, e.file, e.line_hash)];
    if (remaining > 0) {
      --remaining;
      result.stale.push_back(e);
    }
  }
  return result;
}

// --- Rendering --------------------------------------------------------------

std::string to_human(const std::vector<AuditReport>& reports) {
  std::ostringstream os;
  std::size_t total = 0;
  for (const AuditReport& rep : reports) {
    if (rep.ok()) continue;
    total += rep.findings.size();
    for (const AuditFinding& f : rep.findings)
      os << rep.file << ":" << f.line << ": [" << f.rule << "] " << f.message
         << "\n";
  }
  if (total == 0)
    os << "aqt-audit: " << reports.size() << " file"
       << (reports.size() == 1 ? "" : "s") << " clean\n";
  else
    os << "aqt-audit: " << total << " finding" << (total == 1 ? "" : "s")
       << " in " << reports.size() << " file"
       << (reports.size() == 1 ? "" : "s") << "\n";
  return os.str();
}

std::string to_json(const std::vector<AuditReport>& reports) {
  std::ostringstream os;
  bool all_ok = true;
  for (const AuditReport& rep : reports) all_ok = all_ok && rep.ok();
  os << "{\"tool\":\"aqt-audit\",\"ok\":" << (all_ok ? "true" : "false")
     << ",\"reports\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const AuditReport& rep = reports[i];
    if (i) os << ",";
    os << "{\"file\":\"" << json_escape(rep.file) << "\","
       << "\"ok\":" << (rep.ok() ? "true" : "false") << ",\"findings\":[";
    for (std::size_t j = 0; j < rep.findings.size(); ++j) {
      const AuditFinding& f = rep.findings[j];
      if (j) os << ",";
      os << "{\"rule\":\"" << json_escape(f.rule) << "\",\"line\":" << f.line
         << ",\"message\":\"" << json_escape(f.message) << "\"}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

// --- Hardened JSON re-parser ------------------------------------------------
//
// Strict recursive-descent over exactly the grammar to_json emits — the
// same discipline as obs/events.cpp's LineParser: position-attributed
// PreconditionError on any malformation, never a crash or a hang.

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& where)
      : s_(text), where_(where) {}

  void fail(const std::string& what) const {
    AQT_REQUIRE(false, "" << where_ << ": " << what << " at byte " << pos_);
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool at_end() const { return pos_ >= s_.size(); }

  void key(const char* name) {
    const std::string k = string_value();
    if (k != name) fail("expected key '" + std::string(name) + "', got '" +
                        k + "'");
    expect(':');
  }

  std::string string_value() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4U;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          if (code > 0xff) fail("non-latin \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  std::int64_t int_value() {
    const bool neg = consume('-');
    if (peek() < '0' || peek() > '9') fail("expected digit");
    std::int64_t v = 0;
    while (!at_end() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      if (v > (INT64_MAX - 9) / 10) fail("integer overflow");
      v = v * 10 + (take() - '0');
    }
    return neg ? -v : v;
  }

  bool bool_value() {
    if (consume('t')) {
      expect('r');
      expect('u');
      expect('e');
      return true;
    }
    expect('f');
    expect('a');
    expect('l');
    expect('s');
    expect('e');
    return false;
  }

 private:
  const std::string& s_;
  const std::string& where_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<AuditReport> parse_audit_json(const std::string& text,
                                          const std::string& name) {
  JsonParser p(text, name);
  p.expect('{');
  p.key("tool");
  const std::string tool = p.string_value();
  if (tool != "aqt-audit") p.fail("tool is '" + tool + "', not 'aqt-audit'");
  p.expect(',');
  p.key("ok");
  const bool ok = p.bool_value();
  p.expect(',');
  p.key("reports");
  p.expect('[');
  std::vector<AuditReport> reports;
  bool all_ok = true;
  if (!p.consume(']')) {
    for (;;) {
      AuditReport rep;
      p.expect('{');
      p.key("file");
      rep.file = p.string_value();
      p.expect(',');
      p.key("ok");
      const bool rep_ok = p.bool_value();
      p.expect(',');
      p.key("findings");
      p.expect('[');
      if (!p.consume(']')) {
        for (;;) {
          AuditFinding f;
          p.expect('{');
          p.key("rule");
          f.rule = p.string_value();
          if (!known_rule(f.rule)) p.fail("unknown rule '" + f.rule + "'");
          p.expect(',');
          p.key("line");
          const std::int64_t line = p.int_value();
          if (line < 0 || line > INT32_MAX) p.fail("line out of range");
          f.line = static_cast<int>(line);
          p.expect(',');
          p.key("message");
          f.message = p.string_value();
          p.expect('}');
          rep.findings.push_back(std::move(f));
          if (p.consume(']')) break;
          p.expect(',');
        }
      }
      p.expect('}');
      if (rep_ok != rep.ok()) p.fail("report ok flag contradicts findings");
      all_ok = all_ok && rep.ok();
      reports.push_back(std::move(rep));
      if (p.consume(']')) break;
      p.expect(',');
    }
  }
  p.expect('}');
  if (!p.at_end()) p.fail("trailing bytes after document");
  if (ok != all_ok) p.fail("document ok flag contradicts reports");
  return reports;
}

}  // namespace aqt::audit
