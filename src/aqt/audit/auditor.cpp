#include "aqt/audit/auditor.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "aqt/audit/callgraph.hpp"
#include "aqt/audit/flow.hpp"
#include "aqt/audit/lexer.hpp"
#include "aqt/audit/symbols.hpp"
#include "aqt/audit/token_util.hpp"
#include "aqt/util/check.hpp"

namespace aqt::audit {
namespace {

// ---------------------------------------------------------------------------
// Rule pack and layering model.

const std::vector<RuleInfo> kRules = {
    {"AUD001", "banned nondeterminism API (rand/random_device/time/"
               "system_clock/argless engine seed) outside seed plumbing"},
    {"AUD002", "iteration over an unordered container (unspecified order)"},
    {"AUD003", "mutable global / non-const static state in engine, runner, "
               "or obs code"},
    {"AUD004", "pointer-keyed ordered container (address-dependent order)"},
    {"AUD005", "float accumulation in a cross-worker merge path"},
    {"AUD006", "banned #include / layering violation"},
    {"AUD007", "malformed aqt-audit directive / unused allow() suppression"},
    {"AUD008", "shared mutable state written in a worker lambda with an "
               "empty lockset (race)"},
    {"AUD009", "lock-order inconsistency across the call graph"},
    {"AUD010", "by-reference/pointer capture escaping into a deferred "
               "callable"},
    {"AUD011", "call-graph layering violation (indirect reach of a "
               "forbidden layer)"},
    {"AUD012", "container mutated while an iteration over it is live"},
    {"AUD013", "retired EngineConfig alias field (record_trace / "
               "record_events / non-sinks .profile assignment); use "
               "EngineSinks"},
};

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : kRules)
    if (id == r.id) return true;
  return false;
}

/// Which aqt modules each layer may #include.  Mirrors (the transitive
/// closure of) the target_link_libraries graph in src/aqt/*/CMakeLists.txt;
/// a new module must be registered here before anything may include it.
const std::map<std::string, std::set<std::string>>& layer_allowed() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"util", {"util"}},
      {"core", {"core", "util"}},
      {"obs", {"obs", "core", "util"}},
      {"trace", {"trace", "core", "util"}},
      {"topology", {"topology", "core", "util"}},
      {"analysis", {"analysis", "trace", "core", "util"}},
      {"adversaries",
       {"adversaries", "analysis", "topology", "trace", "core", "util"}},
      {"runner", {"runner", "trace", "obs", "core", "util"}},
      {"lint", {"lint", "topology", "core", "util"}},
      {"verify",
       {"verify", "lint", "analysis", "trace", "topology", "core", "util"}},
      {"experiments",
       {"experiments", "adversaries", "runner", "analysis", "topology",
        "trace", "obs", "core", "util"}},
      {"audit", {"audit", "util"}},
      {"serve",
       {"serve", "runner", "adversaries", "analysis", "topology", "trace",
        "obs", "core", "util"}},
  };
  return kAllowed;
}

}  // namespace

// ---------------------------------------------------------------------------
// Directive parsing: allow(...) suppressions and context(...) overrides
// introduced by the marker (the literal "aqt-audit" followed by ':').
// Named (not anonymous) namespace members: FileSemantics, which the
// header forward-declares, holds them.

struct Allow {
  std::string rule;
  int line = 0;       ///< Line the directive suppresses.
  bool used = false;  ///< Set when the allow absolves at least one finding.
};

namespace {

struct Directives {
  std::vector<Allow> allows;
  FileContext context;
  bool context_overridden = false;
  std::vector<AuditFinding> findings;  ///< AUD007 problems.
};

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

/// True when the physical line holds nothing but the comment (so an allow
/// directive written above the offending line applies to the next line).
bool comment_only_line(const std::vector<std::string>& lines, int line) {
  if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return false;
  const std::string before =
      trim(lines[static_cast<std::size_t>(line) - 1]);
  return before.rfind("//", 0) == 0 || before.rfind("/*", 0) == 0 ||
         before.rfind("*", 0) == 0;
}

/// Applies a context name; returns false for unknown names.
bool apply_context_name(const std::string& name, FileContext& ctx) {
  if (name == "merge") {
    ctx.merge_path = true;
    return true;
  }
  if (name == "seed-plumbing") {
    ctx.seed_plumbing = true;
    return true;
  }
  if (name == "engine") {  // Alias: state-sensitive without naming a layer.
    ctx.state_sensitive = true;
    return true;
  }
  if (name == "none") {
    ctx = FileContext{};
    return true;
  }
  if (layer_allowed().count(name) != 0 || name == "top") {
    ctx.layer = name;
    ctx.state_sensitive =
        name == "core" || name == "runner" || name == "obs";
    return true;
  }
  return false;
}

void parse_directive(const std::string& body, int line,
                     const std::vector<std::string>& lines, Directives& out) {
  auto bad = [&](const std::string& why) {
    out.findings.push_back(AuditFinding{
        "AUD007", line,
        "malformed aqt-audit directive: " + why +
            " (expected 'aqt-audit: allow(AUDNNN) -- reason' or "
            "'aqt-audit: context(name,...)')"});
  };
  const std::string text = trim(body);
  if (text.rfind("allow(", 0) == 0) {
    const auto close = text.find(')');
    if (close == std::string::npos) {
      bad("unclosed allow(");
      return;
    }
    const std::string rule = text.substr(6, close - 6);
    if (!known_rule(rule)) {
      bad("unknown rule id '" + rule + "'");
      return;
    }
    const std::string rest = trim(text.substr(close + 1));
    if (rest.rfind("--", 0) != 0 || trim(rest.substr(2)).empty()) {
      bad("allow(" + rule + ") without a '-- reason' justification");
      return;
    }
    Allow a;
    a.rule = rule;
    a.line = comment_only_line(lines, line) ? line + 1 : line;
    out.allows.push_back(std::move(a));
    return;
  }
  if (text.rfind("context(", 0) == 0) {
    const auto close = text.find(')');
    if (close == std::string::npos || !trim(text.substr(close + 1)).empty()) {
      bad("context(...) must close the directive");
      return;
    }
    std::string names = text.substr(8, close - 8);
    std::size_t start = 0;
    while (start <= names.size()) {
      const auto comma = names.find(',', start);
      const std::string name = trim(names.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start));
      if (name.empty() || !apply_context_name(name, out.context))
        bad("unknown context name '" + name + "'");
      else
        out.context_overridden = true;
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return;
  }
  bad("unrecognized directive '" + text.substr(0, 32) + "'");
}

Directives collect_directives(const ScannedSource& src,
                              const FileContext& path_ctx) {
  Directives out;
  out.context = path_ctx;
  for (const Comment& c : src.comments) {
    const auto at = c.text.find("aqt-audit:");
    if (at == std::string::npos) continue;
    // Only an allow/context clause after the marker is a directive; the
    // marker in prose ("the aqt-audit: ... grammar") stays prose.  A
    // malformed clause body (unknown rule, missing reason, unclosed
    // paren) is still AUD007 because parse_directive sees it.
    const std::string body = trim(c.text.substr(at + 10));
    if (body.rfind("allow", 0) != 0 && body.rfind("context", 0) != 0)
      continue;
    parse_directive(body, c.line, src.lines, out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// The rules.  Token helpers (is_ident/is_punct/any_ident/
// skip_template_args) come from token_util.hpp.

class Auditor {
 public:
  Auditor(const ScannedSource& src, FileContext ctx)
      : src_(src), ctx_(std::move(ctx)) {}

  std::vector<AuditFinding> run() {
    scan_declarations();
    if (!ctx_.seed_plumbing) rule_aud001();
    rule_aud002();
    if (ctx_.state_sensitive) rule_aud003();
    rule_aud004();
    if (ctx_.merge_path) rule_aud005();
    rule_aud006();
    rule_aud013();
    return std::move(findings_);
  }

 private:
  void add(const char* rule, int line, std::string message) {
    AuditFinding f;
    f.rule = rule;
    f.line = line;
    f.message = std::move(message);
    if (line >= 1 && static_cast<std::size_t>(line) <= src_.lines.size())
      f.line_hash =
          line_content_hash(src_.lines[static_cast<std::size_t>(line) - 1]);
    findings_.push_back(std::move(f));
  }

  /// One pass recording identifiers declared with an unordered container
  /// type (AUD002) or a floating-point type (AUD005).  Purely local and
  /// heuristic — member declarations in the same file are covered, which
  /// matches how the repo keeps implementation classes in one TU.
  void scan_declarations() {
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (any_ident(t, i, kUnordered)) {
        std::size_t j = skip_template_args(t, i + 1);
        while (is_punct(t, j, '&') || is_punct(t, j, '*')) ++j;
        if (j < t.size() && t[j].kind == Token::Kind::kIdentifier)
          unordered_idents_.insert(t[j].text);
      }
      if ((is_ident(t, i, "double") || is_ident(t, i, "float")) &&
          i + 1 < t.size() && t[i + 1].kind == Token::Kind::kIdentifier)
        float_idents_.insert(t[i + 1].text);
    }
  }

  void rule_aud001() {
    // Identifier-shaped tokens that are nondeterministic wherever they
    // appear in code (string literals were already stripped).
    static const std::set<std::string> kBannedAlways = {
        "rand",       "srand",     "srandom",   "drand48",
        "lrand48",    "mrand48",   "random_device", "system_clock",
        "high_resolution_clock",   "gettimeofday",  "localtime",
        "gmtime",     "asctime",   "getenv"};
    // Callable names too common to ban as bare identifiers: only the
    // call form `time(...)` / `clock(...)` / `random(...)` is flagged,
    // and not as a member (`x.time(...)`) or non-std qualification.
    static const std::set<std::string> kBannedCalls = {"time", "clock",
                                                       "random"};
    static const std::set<std::string> kEngines = {
        "mt19937",       "mt19937_64",   "minstd_rand", "minstd_rand0",
        "default_random_engine",         "ranlux24_base",
        "ranlux48_base", "ranlux24",     "ranlux48",    "knuth_b"};
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (any_ident(t, i, kBannedAlways)) {
        add("AUD001", t[i].line,
            "nondeterministic API '" + t[i].text +
                "': all randomness/time must flow through explicitly "
                "seeded aqt::Rng / steady_clock (see util/rng.hpp)");
        continue;
      }
      if (any_ident(t, i, kBannedCalls) && is_punct(t, i + 1, '(')) {
        const bool member = i > 0 && (is_punct(t, i - 1, '.') ||
                                      is_punct(t, i - 1, '>'));
        const bool qualified = i > 1 && is_punct(t, i - 1, ':') &&
                               is_punct(t, i - 2, ':');
        const bool std_qualified =
            qualified && i > 2 && is_ident(t, i - 3, "std");
        // `long time(long t)` is a declaration, not a call: a call never
        // directly follows a bare identifier except expression keywords.
        static const std::set<std::string> kExprKeywords = {
            "return", "throw", "else", "do", "case", "goto",
            "co_return", "co_yield", "co_await"};
        const bool declaration =
            i > 0 && t[i - 1].kind == Token::Kind::kIdentifier &&
            kExprKeywords.count(t[i - 1].text) == 0;
        if (!member && !declaration && (!qualified || std_qualified))
          add("AUD001", t[i].line,
              "call of nondeterministic '" + t[i].text +
                  "()': wall-clock and libc randomness are banned outside "
                  "the seed-plumbing allowlist");
        continue;
      }
      if (any_ident(t, i, kEngines)) {
        // `std::mt19937 rng;` / `rng{}` / `rng()` — default (argless)
        // seeding is the hazard; an explicit seed argument passes.
        std::size_t j = i + 1;
        if (j < t.size() && t[j].kind == Token::Kind::kIdentifier) ++j;
        const bool argless =
            is_punct(t, j, ';') || is_punct(t, j, ',') ||
            (is_punct(t, j, '{') && is_punct(t, j + 1, '}')) ||
            (is_punct(t, j, '(') && is_punct(t, j + 1, ')'));
        if (argless)
          add("AUD001", t[i].line,
              "std engine '" + t[i].text +
                  "' constructed without an explicit seed: default seeds "
                  "are implementation-defined and unreplayable");
      }
    }
  }

  void rule_aud002() {
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      // Range-for over a tracked unordered container:
      //   for ( <decl> : <single-identifier> )
      if (is_ident(t, i, "for") && is_punct(t, i + 1, '(')) {
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < t.size() && j < i + 64; ++j) {
          if (is_punct(t, j, '(')) ++depth;
          if (is_punct(t, j, ')')) {
            --depth;
            if (depth == 0) break;
          }
          if (depth == 1 && is_punct(t, j, ':') && !is_punct(t, j + 1, ':') &&
              !is_punct(t, j - 1, ':')) {
            colon = j;
            break;
          }
        }
        if (colon != 0 && colon + 2 < t.size() &&
            t[colon + 1].kind == Token::Kind::kIdentifier &&
            is_punct(t, colon + 2, ')') &&
            unordered_idents_.count(t[colon + 1].text) != 0)
          add("AUD002", t[i].line,
              "iteration over unordered container '" + t[colon + 1].text +
                  "' has unspecified order; sort the keys first, or "
                  "justify with allow(AUD002) if the reduction is "
                  "commutative");
      }
      // Explicit iterator walk: tracked.begin() / cbegin().
      if (t[i].kind == Token::Kind::kIdentifier &&
          unordered_idents_.count(t[i].text) != 0 &&
          is_punct(t, i + 1, '.') &&
          (is_ident(t, i + 2, "begin") || is_ident(t, i + 2, "cbegin")) &&
          is_punct(t, i + 3, '('))
        add("AUD002", t[i].line,
            "iterator walk over unordered container '" + t[i].text +
                "' has unspecified order; sort the keys first, or justify "
                "with allow(AUD002) if the traversal is order-insensitive");
    }
  }

  void rule_aud003() {
    static const std::set<std::string> kConstish = {"const", "constexpr",
                                                    "constinit", "consteval"};
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const bool is_static = is_ident(t, i, "static");
      const bool is_tls = is_ident(t, i, "thread_local");
      if (!is_static && !is_tls) continue;
      // Scan to the first structural token.  '(' first => a function
      // declaration (fine); const/constexpr anywhere before the
      // terminator => immutable (fine); otherwise mutable static state.
      bool constish = false;
      char terminator = 0;
      int line = t[i].line;
      for (std::size_t j = i + 1; j < t.size() && j < i + 48; ++j) {
        if (any_ident(t, j, kConstish)) constish = true;
        if (is_ident(t, j, "thread_local")) continue;  // static thread_local
        if (is_punct(t, j, '<')) {
          const std::size_t adv = skip_template_args(t, j);
          if (adv != j) {  // Unbalanced '<' (a comparison): fall through.
            j = adv - 1;
            continue;
          }
        }
        if (is_punct(t, j, ';') || is_punct(t, j, '=') ||
            is_punct(t, j, '(') || is_punct(t, j, '{')) {
          terminator = t[j].text[0];
          break;
        }
      }
      if (constish || terminator == '(' || terminator == 0) continue;
      add("AUD003", line,
          std::string(is_tls ? "thread_local" : "static") +
              " mutable state in engine/runner/obs code: shared-state "
              "TSan cannot prove safe, and run-to-run leakage that breaks "
              "replayability; make it const, or pass state explicitly");
    }
  }

  void rule_aud004() {
    static const std::set<std::string> kOrdered = {
        "map", "set", "multimap", "multiset", "priority_queue", "less",
        "greater"};
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!any_ident(t, i, kOrdered) || !is_punct(t, i + 1, '<')) continue;
      // Pointer in the *first* template argument (the ordering key).
      int depth = 0;
      bool pointer_key = false;
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (is_punct(t, j, '<')) ++depth;
        if (is_punct(t, j, '>')) {
          --depth;
          if (depth == 0) break;
        }
        if (depth == 1 && is_punct(t, j, ',')) break;
        if (depth >= 1 && is_punct(t, j, '*')) pointer_key = true;
      }
      if (pointer_key)
        add("AUD004", t[i].line,
            "'" + t[i].text +
                "' keyed/ordered by a raw pointer: iteration and "
                "comparison order depend on allocation addresses, which "
                "differ across runs; key by a stable id instead");
    }
  }

  void rule_aud005() {
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdentifier ||
          float_idents_.count(t[i].text) == 0)
        continue;
      const bool compound = is_punct(t, i + 1, '+') && is_punct(t, i + 2, '=');
      const bool rebind = is_punct(t, i + 1, '=') && !is_punct(t, i + 2, '=') &&
                          is_ident(t, i + 2, t[i].text.c_str()) &&
                          is_punct(t, i + 3, '+');
      if (compound || rebind)
        add("AUD005", t[i].line,
            "float accumulation into '" + t[i].text +
                "' on a cross-worker merge path: addition order changes "
                "the result across --jobs; merge in a fixed "
                "(submission-order) loop or accumulate integers");
    }
  }

  void rule_aud006() {
    const auto& allowed = layer_allowed();
    for (const PreprocessorLine& pp : src_.preprocessor) {
      const std::string text = trim(pp.text);
      if (text.rfind("include", 0) != 0) continue;
      const auto open = text.find('"');
      if (open == std::string::npos) continue;  // <system> includes: free.
      const auto close = text.find('"', open + 1);
      if (close == std::string::npos) continue;
      const std::string path = text.substr(open + 1, close - open - 1);
      if (path.rfind("tools/", 0) == 0) {
        add("AUD006", pp.line,
            "#include \"" + path +
                "\": tool sources are program entry points, never a "
                "library surface");
        continue;
      }
      if (path.rfind("aqt/", 0) != 0) continue;
      const auto slash = path.find('/', 4);
      if (slash == std::string::npos) continue;
      const std::string target = path.substr(4, slash - 4);
      if (allowed.count(target) == 0) {
        add("AUD006", pp.line,
            "#include \"" + path + "\": module '" + target +
                "' is not registered in the layering map (auditor.cpp); "
                "register new modules there with their dependencies");
        continue;
      }
      if (ctx_.layer == "top") continue;  // tools/tests/bench: free.
      const auto it = allowed.find(ctx_.layer);
      if (it != allowed.end() && it->second.count(target) == 0)
        add("AUD006", pp.line,
            "#include \"" + path + "\": layer '" + ctx_.layer +
                "' must not depend on '" + target +
                "' (dependency order in src/aqt/*/CMakeLists.txt)");
    }
  }

  /// The pre-PR-10 EngineConfig per-sink alias fields are retired: all
  /// observer wiring goes through EngineSinks (engine.hpp).  Two shapes
  /// linger in stale code: the removed field names themselves, and a
  /// `.profile =` assignment on anything that is not the sinks aggregate.
  void rule_aud013() {
    const Tokens& t = src_.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (is_ident(t, i, "record_trace") || is_ident(t, i, "record_events")) {
        add("AUD013", t[i].line,
            "'" + t[i].text +
                "' is a retired EngineConfig alias field; wire the "
                "observer through EngineSinks (config.sinks.*)");
        continue;
      }
      if (!is_ident(t, i, "profile") || i < 2) continue;
      const bool member = is_punct(t, i - 1, '.');
      const bool assigned = is_punct(t, i + 1, '=') && !is_punct(t, i + 2, '=');
      if (member && assigned &&
          t[i - 2].kind == Token::Kind::kIdentifier &&
          t[i - 2].text != "sinks")
        add("AUD013", t[i].line,
            "'" + t[i - 2].text +
                ".profile = ...' assigns the retired EngineConfig alias; "
                "the profiler sink lives at config.sinks.profile");
    }
  }

  const ScannedSource& src_;
  FileContext ctx_;
  std::set<std::string> unordered_idents_;
  std::set<std::string> float_idents_;
  std::vector<AuditFinding> findings_;
};

// ---------------------------------------------------------------------------
// The semantic rules (AUD008 / AUD010 / AUD012), on top of the symbol,
// capture, and lock-flow layers.

class SemanticAuditor {
 public:
  SemanticAuditor(const ScannedSource& src, const SymbolTable& sym,
                  const LockFlow& flow)
      : src_(src), t_(src.tokens), sym_(sym), flow_(flow) {}

  void run(std::vector<AuditFinding>& out) {
    out_ = &out;
    rule_aud008();
    rule_aud010();
    rule_aud012();
  }

 private:
  void add(const char* rule, int line, std::string message) {
    AuditFinding f;
    f.rule = rule;
    f.line = line;
    f.message = std::move(message);
    if (line >= 1 && static_cast<std::size_t>(line) <= src_.lines.size())
      f.line_hash =
          line_content_hash(src_.lines[static_cast<std::size_t>(line) - 1]);
    out_->push_back(std::move(f));
  }

  std::string sink_desc(const LambdaInfo& lam) const {
    switch (lam.sink) {
      case LambdaInfo::Sink::kThread:
        return "a std::thread worker" +
               (lam.sink_name.empty() ? "" : " ('" + lam.sink_name + "')");
      case LambdaInfo::Sink::kDeferredCall:
        return "a deferred pool submission ('" + lam.sink_name + "')";
      case LambdaInfo::Sink::kStoredFunction:
        return "a stored std::function" +
               (lam.sink_name.empty() ? "" : " ('" + lam.sink_name + "')");
      default:
        return "a deferred callable";
    }
  }

  /// AUD008 — the race pass.  A write to a variable that is visible
  /// outside a worker lambda (by-reference capture, this-capture member,
  /// global/static) with an empty lockset at the write.  Atomics and
  /// lambda-locals are exempt; unresolvable names are skipped (false
  /// negatives, never false positives).
  void rule_aud008() {
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "pop_back", "insert", "erase",
        "clear",     "resize",       "reserve",  "emplace", "assign"};
    for (const LambdaInfo& lam : sym_.lambdas) {
      if (!lam.deferred()) continue;
      std::set<std::pair<int, std::string>> seen;
      for (std::size_t i = lam.body_begin;
           i < lam.body_end && i < t_.size(); ++i) {
        if (!is_any_ident(t_, i)) continue;
        // Chain base only: not `x.NAME`, `x->NAME`, or `ns::NAME`.
        if (i > 0 && (is_punct(t_, i - 1, '.') ||
                      (i > 1 && is_punct(t_, i - 1, '>') &&
                       is_punct(t_, i - 2, '-')) ||
                      (i > 1 && is_punct(t_, i - 1, ':') &&
                       is_punct(t_, i - 2, ':'))))
          continue;
        // Walk member / subscript suffixes to the write position.
        std::size_t j = i;
        std::string last_member;
        for (;;) {
          if (is_punct(t_, j + 1, '.') && is_any_ident(t_, j + 2)) {
            last_member = t_[j + 2].text;
            j += 2;
            continue;
          }
          if (is_punct(t_, j + 1, '-') && is_punct(t_, j + 2, '>') &&
              is_any_ident(t_, j + 3)) {
            last_member = t_[j + 3].text;
            j += 3;
            continue;
          }
          if (is_punct(t_, j + 1, '[')) {
            const std::size_t adv = skip_balanced(t_, j + 1, '[', ']');
            if (adv == j + 1) break;
            j = adv - 1;
            last_member.clear();
            continue;
          }
          break;
        }
        const std::size_t w = j + 1;
        bool write = false;
        if (!last_member.empty() && is_punct(t_, w, '(') &&
            kMutators.count(last_member) != 0)
          write = true;  // results.push_back(...) — a container mutation.
        if (!write && is_punct(t_, w, '=') && !is_punct(t_, w + 1, '='))
          write = true;
        if (!write && is_punct(t_, w + 1, '=')) {
          for (const char op : {'+', '-', '*', '/', '%', '|', '&', '^'})
            if (is_punct(t_, w, op)) write = true;
        }
        if (!write && is_punct(t_, w + 2, '=') &&
            ((is_punct(t_, w, '<') && is_punct(t_, w + 1, '<')) ||
             (is_punct(t_, w, '>') && is_punct(t_, w + 1, '>'))))
          write = true;  // <<= / >>=
        if (!write && ((is_punct(t_, w, '+') && is_punct(t_, w + 1, '+')) ||
                       (is_punct(t_, w, '-') && is_punct(t_, w + 1, '-'))))
          write = true;  // postfix ++/--
        if (!write && i >= 2 &&
            ((is_punct(t_, i - 1, '+') && is_punct(t_, i - 2, '+')) ||
             (is_punct(t_, i - 1, '-') && is_punct(t_, i - 2, '-'))))
          write = true;  // prefix ++/--
        if (!write) continue;

        const VarDecl* decl = sym_.lookup(t_[i].text, i);
        if (decl == nullptr) continue;
        if (decl->is_atomic || decl->is_mutex || decl->is_const) continue;
        if (sym_.scope_within(decl->scope, lam.scope)) continue;
        const ScopeInfo::Kind dk = sym_.scopes[decl->scope].kind;
        bool shared = false;
        if (dk == ScopeInfo::Kind::kNamespace ||
            dk == ScopeInfo::Kind::kFile) {
          shared = true;  // Globals: shared however the lambda captures.
        } else if (decl->is_static) {
          shared = true;  // Function-local statics likewise.
        } else if (dk == ScopeInfo::Kind::kClass) {
          shared = lam.captures_this || lam.default_ref;
        } else {
          shared = lam.default_ref ||
                   std::find(lam.ref_captures.begin(), lam.ref_captures.end(),
                             t_[i].text) != lam.ref_captures.end();
        }
        if (!shared) continue;
        if (flow_.any_held_at(i)) continue;
        if (!seen.insert({t_[i].line, t_[i].text}).second) continue;
        add("AUD008", t_[i].line,
            "shared '" + t_[i].text + "' written inside " + sink_desc(lam) +
                " with no lock held: a data race unless every access is "
                "provably disjoint; guard it, make it atomic, or justify "
                "disjoint slot writes with allow(AUD008)");
      }
    }
  }

  /// AUD010 — capture lifetime.  A by-reference (or raw-pointer) capture
  /// flowing into a callable that outlives the full expression: thread
  /// bodies, pool submissions, stored std::function.
  void rule_aud010() {
    for (const LambdaInfo& lam : sym_.lambdas) {
      const bool stored = lam.sink == LambdaInfo::Sink::kStoredFunction;
      if (!lam.deferred() && !stored) continue;
      std::string what;
      if (lam.default_ref) {
        what = "default by-reference capture [&]";
      } else if (!lam.ref_captures.empty()) {
        what = "by-reference capture '&" + lam.ref_captures.front() + "'";
      } else {
        for (const std::string& name : lam.copy_captures) {
          const VarDecl* d = sym_.lookup(name, lam.intro_token);
          if (d != nullptr && d->is_pointer && !d->is_const) {
            what = "captured raw pointer '" + name + "'";
            break;
          }
        }
      }
      if (what.empty()) continue;
      add("AUD010", lam.line,
          what + " escapes into " + sink_desc(lam) +
              ": every referent must outlive the callable (join/clear "
              "before scope exit) — capture by value, or justify the "
              "lifetime with allow(AUD010)");
    }
  }

  /// AUD012 — iterator invalidation.  A range-for (or .begin() iterator
  /// loop) over a container whose body mutates that same container.
  /// The `it = c.erase(it)` re-assignment idiom is recognized and
  /// exempt.
  void rule_aud012() {
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "pop_back", "insert", "erase",
        "clear",     "resize",       "emplace",  "assign"};
    const Tokens& t = t_;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (!is_ident(t, i, "for") || !is_punct(t, i + 1, '(')) continue;
      const std::size_t close = skip_balanced(t, i + 1, '(', ')');
      if (close == i + 1) continue;
      const std::vector<std::string> chain =
          header_container(i + 2, close - 1);
      if (chain.empty()) continue;
      std::size_t body_begin = close;
      std::size_t body_end = close;
      if (is_punct(t, close, '{')) {
        body_end = skip_balanced(t, close, '{', '}');
        body_begin = close + 1;
      } else {
        while (body_end < t.size() && !is_punct(t, body_end, ';'))
          ++body_end;
      }
      for (std::size_t k = body_begin; k + chain.size() < body_end; ++k) {
        if (k > 0 && (is_punct(t, k - 1, '.') ||
                      (k > 1 && is_punct(t, k - 1, '>') &&
                       is_punct(t, k - 2, '-'))))
          continue;
        bool match = true;
        for (std::size_t c = 0; c < chain.size(); ++c) {
          if (k + c >= t.size() || t[k + c].text != chain[c]) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        const std::size_t m = k + chain.size();
        if (!is_punct(t, m, '.') || !is_any_ident(t, m + 1) ||
            !is_punct(t, m + 2, '('))
          continue;
        const std::string& method = t[m + 1].text;
        if (kMutators.count(method) == 0) continue;
        if (method == "erase" && k > 0 && is_punct(t, k - 1, '='))
          continue;  // it = c.erase(it): the rebinding idiom is safe.
        add("AUD012", t[m + 1].line,
            "'" + chain_text(chain) + "." + method +
                "' mutates the container while an iteration over '" +
                chain_text(chain) +
                "' is live: iterators/references may be invalidated "
                "mid-walk; collect changes and apply after the loop");
      }
    }
  }

  static std::string chain_text(const std::vector<std::string>& chain) {
    std::string out;
    for (const std::string& c : chain) out += c;
    return out;
  }

  /// The container a for-header iterates: the range expression of a
  /// range-for (if it is a plain variable/member chain), or the receiver
  /// of `.begin()` / `.cbegin()` in an iterator-style header.
  std::vector<std::string> header_container(std::size_t begin,
                                            std::size_t end) const {
    const Tokens& t = t_;
    int depth = 0;
    for (std::size_t j = begin; j < end; ++j) {
      if (is_punct(t, j, '(')) ++depth;
      if (is_punct(t, j, ')')) --depth;
      if (depth == 0 && is_punct(t, j, ':') && !is_punct(t, j + 1, ':') &&
          (j == 0 || !is_punct(t, j - 1, ':'))) {
        return parse_chain(j + 1, end);
      }
    }
    for (std::size_t j = begin + 1; j + 1 < end; ++j) {
      if ((is_ident(t, j, "begin") || is_ident(t, j, "cbegin")) &&
          is_punct(t, j - 1, '.') && is_punct(t, j + 1, '(')) {
        // Walk the receiver chain backwards from the '.'.
        std::vector<std::string> chain;
        std::size_t k = j - 1;  // the '.'
        while (k > begin && is_any_ident(t_, k - 1)) {
          chain.insert(chain.begin(), t[k - 1].text);
          if (k >= begin + 2 && is_punct(t, k - 2, '.')) {
            chain.insert(chain.begin() + 1, ".");
            // Walk over "member ." pairs; the separator joins the next
            // identifier out.
            k = k - 2;
            continue;
          }
          break;
        }
        if (!chain.empty()) return chain;
      }
    }
    return {};
  }

  /// Accepts only a plain chain (identifiers joined by '.', '->', '::');
  /// anything else (a call, arithmetic) returns empty.
  std::vector<std::string> parse_chain(std::size_t begin,
                                       std::size_t end) const {
    std::vector<std::string> chain;
    for (std::size_t j = begin; j < end; ++j) {
      const Token& tok = t_[j];
      const bool link =
          tok.kind == Token::Kind::kPunct &&
          (tok.text == "." || tok.text == "-" || tok.text == ">" ||
           tok.text == ":");
      if (tok.kind == Token::Kind::kIdentifier || link) {
        chain.push_back(tok.text);
        continue;
      }
      return {};
    }
    if (chain.empty() || chain.front() == ".") return {};
    return chain;
  }

  const ScannedSource& src_;
  const Tokens& t_;
  const SymbolTable& sym_;
  const LockFlow& flow_;
  std::vector<AuditFinding>* out_ = nullptr;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<RuleInfo>& rule_pack() { return kRules; }

std::uint64_t line_content_hash(const std::string& line) {
  const std::string text = trim(line);
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

FileContext classify_path(const std::string& path) {
  FileContext ctx;
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  const auto at = p.find("src/aqt/");
  if (at != std::string::npos) {
    const std::size_t begin = at + 8;
    const auto slash = p.find('/', begin);
    if (slash != std::string::npos) {
      const std::string layer = p.substr(begin, slash - begin);
      if (layer_allowed().count(layer) != 0) {
        ctx.layer = layer;
        ctx.state_sensitive = layer == "core" || layer == "runner" ||
                              layer == "obs" || layer == "serve";
      }
    }
  }
  if (p.find("runner/pool.") != std::string::npos ||
      p.find("obs/registry.") != std::string::npos)
    ctx.merge_path = true;
  if (p.find("util/rng.") != std::string::npos) ctx.seed_plumbing = true;
  return ctx;
}

// --- Project (cross-TU) audit -----------------------------------------------

/// The per-file payload carried from the parallel phase into
/// finalize_project.  Owns everything the cross-TU phase needs; the raw
/// token stream and symbol table are *not* retained (the call slice and
/// order edges are the distilled form), keeping units cheap to hold for
/// a whole repo.
struct FileSemantics {
  std::vector<std::string> lines;      ///< For hashing late findings.
  std::vector<AuditFinding> findings;  ///< Per-file rules, pre-allow.
  std::vector<Allow> allows;
  FileCallInfo callinfo;
  /// Same-body nested acquisitions: mutex A held while B was acquired.
  std::vector<CallGraph::OrderEdge> direct_orders;
};

AuditUnit audit_unit(std::string file, const std::string& text) {
  AuditUnit unit;
  auto sem = std::make_shared<FileSemantics>();
  const ScannedSource src = scan_source(text);
  Directives dir = collect_directives(src, classify_path(file));
  sem->lines = src.lines;

  sem->findings = Auditor(src, dir.context).run();
  const SymbolTable sym = build_symbols(src);
  const LockFlow flow = compute_lock_flow(src, sym, file);
  SemanticAuditor(src, sym, flow).run(sem->findings);
  for (AuditFinding& f : dir.findings) sem->findings.push_back(std::move(f));
  sem->allows = std::move(dir.allows);

  // Distill the call slice the cross-TU phase needs.
  FileCallInfo& ci = sem->callinfo;
  ci.file = file;
  ci.layer = dir.context.layer;
  for (const FunctionInfo& fn : sym.functions) {
    FileCallInfo::Def d;
    d.name = fn.name;
    d.qualifier = fn.qualifier;
    d.name_space = fn.name_space;
    d.class_name = fn.class_name;
    d.file_local = fn.file_local;
    d.line = fn.line;
    ci.defs.push_back(std::move(d));
  }
  // Attribute each lock interval to the function whose body holds it.
  for (const LockInterval& iv : flow.intervals) {
    for (std::size_t fi = 0; fi < sym.functions.size(); ++fi) {
      const FunctionInfo& fn = sym.functions[fi];
      if (iv.begin >= fn.body_begin && iv.begin < fn.body_end) {
        ci.defs[fi].acquires.emplace_back(iv.mutex, iv.line);
        break;  // functions do not nest; first match is the owner.
      }
    }
  }
  // Same-body nesting: interval B opened while interval A is still held.
  for (const LockInterval& a : flow.intervals) {
    for (const LockInterval& b : flow.intervals) {
      if (b.begin > a.begin && b.begin < a.end && a.mutex != b.mutex)
        sem->direct_orders.push_back(
            CallGraph::OrderEdge{a.mutex, b.mutex, file, b.line});
    }
  }
  for (const CallSite& cs : extract_calls(src, sym)) {
    FileCallInfo::Call c;
    c.written = cs.written;
    c.caller = cs.caller;
    c.line = cs.line;
    c.held = flow.held_at(cs.token);
    ci.calls.push_back(std::move(c));
  }

  unit.file = std::move(file);
  unit.sem = std::move(sem);
  return unit;
}

AuditUnit audit_unit_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AQT_REQUIRE(in.good(), "cannot open source file: " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return audit_unit(path, buf.str());
}

namespace {

/// Appends a finding whose line hash comes from the unit's retained lines
/// (AUD009/AUD011 are discovered after the per-file phase).
void add_late_finding(FileSemantics& sem, const char* rule, int line,
                      std::string message) {
  AuditFinding f;
  f.rule = rule;
  f.line = line;
  f.message = std::move(message);
  if (line >= 1 && static_cast<std::size_t>(line) <= sem.lines.size())
    f.line_hash =
        line_content_hash(sem.lines[static_cast<std::size_t>(line) - 1]);
  sem.findings.push_back(std::move(f));
}

}  // namespace

std::vector<AuditReport> finalize_project(std::vector<AuditUnit> units) {
  std::sort(units.begin(), units.end(),
            [](const AuditUnit& a, const AuditUnit& b) {
              return a.file < b.file;
            });
  std::map<std::string, FileSemantics*> by_file;
  std::vector<FileCallInfo> slices;
  slices.reserve(units.size());
  for (AuditUnit& u : units) {
    AQT_REQUIRE(u.sem != nullptr, "finalize_project: unit without semantics");
    by_file[u.file] = u.sem.get();
    slices.push_back(u.sem->callinfo);
  }
  const CallGraph graph(std::move(slices));

  // AUD011 — call-graph layering.
  const auto allowed = [](const std::string& from, const std::string& to) {
    if (from == "top" || to == "top") return true;
    const auto it = layer_allowed().find(from);
    if (it == layer_allowed().end()) return true;  // Unknown: don't guess.
    return it->second.count(to) != 0;
  };
  for (const CallGraph::Violation& v : graph.layering_violations(allowed)) {
    const auto it = by_file.find(v.file);
    if (it == by_file.end()) continue;
    add_late_finding(
        *it->second, "AUD011", v.line,
        "call-graph layering: '" + v.caller + "' (layer '" +
            it->second->callinfo.layer + "') reaches layer '" + v.bad_layer +
            "' via " + v.path +
            " — an include-clean chain can still smuggle the dependency; "
            "break the call chain or move the callee");
  }

  // AUD009 — lock-order inconsistency over direct + propagated edges.
  std::vector<CallGraph::OrderEdge> edges = graph.propagated_order_edges();
  for (const AuditUnit& u : units)
    edges.insert(edges.end(), u.sem->direct_orders.begin(),
                 u.sem->direct_orders.end());
  std::sort(edges.begin(), edges.end(),
            [](const CallGraph::OrderEdge& a, const CallGraph::OrderEdge& b) {
              if (a.first != b.first) return a.first < b.first;
              if (a.second != b.second) return a.second < b.second;
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  std::map<std::pair<std::string, std::string>, CallGraph::OrderEdge> rep;
  for (const CallGraph::OrderEdge& e : edges)
    rep.emplace(std::make_pair(e.first, e.second), e);
  for (const auto& [order, e] : rep) {
    if (order.first >= order.second) continue;  // Handle each pair once.
    const auto rev = rep.find({order.second, order.first});
    if (rev == rep.end()) continue;
    const CallGraph::OrderEdge& r = rev->second;
    const auto here = by_file.find(e.file);
    if (here != by_file.end())
      add_late_finding(
          *here->second, "AUD009", e.line,
          "lock-order inconsistency: '" + e.first + "' is held while '" +
              e.second + "' is acquired here, but the opposite order is "
              "established at " + r.file + ":" + std::to_string(r.line) +
              " — pick one global order (deadlock risk)");
    const auto there = by_file.find(r.file);
    if (there != by_file.end())
      add_late_finding(
          *there->second, "AUD009", r.line,
          "lock-order inconsistency: '" + r.first + "' is held while '" +
              r.second + "' is acquired here, but the opposite order is "
              "established at " + e.file + ":" + std::to_string(e.line) +
              " — pick one global order (deadlock risk)");
  }

  // Allow application + unused-allow AUD007, then the deterministic sort.
  std::vector<AuditReport> reports;
  reports.reserve(units.size());
  for (AuditUnit& u : units) {
    FileSemantics& sem = *u.sem;
    std::vector<AuditFinding> kept;
    kept.reserve(sem.findings.size());
    for (AuditFinding& f : sem.findings) {
      // AUD007 findings are never suppressible — a malformed directive
      // must not silence itself.
      bool allowed_finding = false;
      if (f.rule != "AUD007") {
        for (Allow& a : sem.allows) {
          if (a.rule == f.rule && a.line == f.line) {
            a.used = true;
            allowed_finding = true;
            // No break: every co-located allow of this rule is "used".
          }
        }
      }
      if (!allowed_finding) kept.push_back(std::move(f));
    }
    for (const Allow& a : sem.allows) {
      if (a.used) continue;
      AuditFinding f;
      f.rule = "AUD007";
      f.line = a.line;
      f.message = "allow(" + a.rule +
                  ") matched no finding: stale suppressions hide future "
                  "regressions — remove it (or fix the line reference)";
      if (a.line >= 1 && static_cast<std::size_t>(a.line) <= sem.lines.size())
        f.line_hash = line_content_hash(
            sem.lines[static_cast<std::size_t>(a.line) - 1]);
      kept.push_back(std::move(f));
    }
    std::sort(kept.begin(), kept.end(),
              [](const AuditFinding& a, const AuditFinding& b) {
                if (a.line != b.line) return a.line < b.line;
                if (a.rule != b.rule) return a.rule < b.rule;
                return a.message < b.message;
              });
    AuditReport out;
    out.file = u.file;
    out.findings = std::move(kept);
    reports.push_back(std::move(out));
  }
  return reports;
}

AuditReport audit_source(std::string file, const std::string& text) {
  std::vector<AuditUnit> units;
  units.push_back(audit_unit(std::move(file), text));
  std::vector<AuditReport> reports = finalize_project(std::move(units));
  return std::move(reports.front());
}

AuditReport audit_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AQT_REQUIRE(in.good(), "cannot open source file: " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return audit_source(path, buf.str());
}

bool auditable_source_path(const std::string& path) {
  const std::filesystem::path p(path);
  const std::string ext = p.extension().string();
  const bool source = ext == ".cpp" || ext == ".hpp" || ext == ".cc" ||
                      ext == ".h" || ext == ".cxx";
  return source && path.find("/corpus/") == std::string::npos;
}

std::vector<std::string> collect_audit_files(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  const auto skipped_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name == "corpus" || name == ".git" || name == "out" ||
           name.rfind("build", 0) == 0;
  };
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    AQT_REQUIRE(fs::exists(p), "no such file or directory: " << root);
    if (!fs::is_directory(p)) {
      files.push_back(p.generic_string());
      continue;
    }
    fs::recursive_directory_iterator it(p), end;
    while (it != end) {
      if (it->is_directory() && skipped_dir(it->path())) {
        it.disable_recursion_pending();
        ++it;
        continue;
      }
      if (it->is_regular_file() &&
          auditable_source_path(it->path().generic_string()))
        files.push_back(it->path().generic_string());
      ++it;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

// --- Baseline ---------------------------------------------------------------

std::vector<BaselineEntry> parse_baseline(std::istream& is,
                                          const std::string& name) {
  std::vector<BaselineEntry> out;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') continue;
    const auto tab1 = text.find('\t');
    const auto tab2 =
        tab1 == std::string::npos ? std::string::npos
                                  : text.find('\t', tab1 + 1);
    AQT_REQUIRE(tab2 != std::string::npos,
                "baseline " << name << ":" << lineno
                            << ": expected RULE<TAB>file<TAB>hash");
    BaselineEntry e;
    e.rule = text.substr(0, tab1);
    AQT_REQUIRE(known_rule(e.rule), "baseline "
                                        << name << ":" << lineno
                                        << ": unknown rule id '" << e.rule
                                        << "'");
    e.file = text.substr(tab1 + 1, tab2 - tab1 - 1);
    const std::string hex = trim(text.substr(tab2 + 1));
    AQT_REQUIRE(!hex.empty() && hex.size() <= 16,
                "baseline " << name << ":" << lineno << ": bad hash '" << hex
                            << "'");
    std::uint64_t h = 0;
    for (const char c : hex) {
      int digit = 0;
      if (c >= '0' && c <= '9')
        digit = c - '0';
      else if (c >= 'a' && c <= 'f')
        digit = c - 'a' + 10;
      else
        AQT_REQUIRE(false, "baseline " << name << ":" << lineno
                                       << ": bad hash '" << hex << "'");
      h = (h << 4U) | static_cast<std::uint64_t>(digit);
    }
    e.line_hash = h;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<BaselineEntry> load_baseline_file(const std::string& path) {
  std::ifstream in(path);
  AQT_REQUIRE(in.good(), "cannot open baseline file: " << path);
  return parse_baseline(in, path);
}

namespace {
std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}
}  // namespace

std::string to_baseline(const std::vector<AuditReport>& reports) {
  std::ostringstream os;
  os << "# aqt-audit baseline: grandfathered findings (RULE\\tfile\\thash "
        "of the trimmed offending line).\n"
     << "# Regenerate with `aqt-audit --update-baseline ...`; this file "
        "should only ever shrink.\n";
  for (const AuditReport& rep : reports)
    for (const AuditFinding& f : rep.findings)
      os << f.rule << '\t' << rep.file << '\t' << hash_hex(f.line_hash)
         << '\n';
  return os.str();
}

BaselineApplied apply_baseline(std::vector<AuditReport>& reports,
                               const std::vector<BaselineEntry>& baseline) {
  BaselineApplied result;
  // Multiset of unconsumed entries keyed by rule+file+hash.
  std::map<std::string, std::size_t> budget;
  auto key = [](const std::string& rule, const std::string& file,
                std::uint64_t hash) {
    return rule + '\t' + file + '\t' + hash_hex(hash);
  };
  for (const BaselineEntry& e : baseline)
    ++budget[key(e.rule, e.file, e.line_hash)];
  for (AuditReport& rep : reports) {
    std::vector<AuditFinding> kept;
    kept.reserve(rep.findings.size());
    for (AuditFinding& f : rep.findings) {
      const auto it = budget.find(key(f.rule, rep.file, f.line_hash));
      if (it != budget.end() && it->second > 0) {
        --it->second;
        ++result.suppressed;
      } else {
        kept.push_back(std::move(f));
      }
    }
    rep.findings = std::move(kept);
  }
  for (const BaselineEntry& e : baseline) {
    auto& remaining = budget[key(e.rule, e.file, e.line_hash)];
    if (remaining > 0) {
      --remaining;
      result.stale.push_back(e);
    }
  }
  return result;
}

// --- Rendering --------------------------------------------------------------

std::string to_human(const std::vector<AuditReport>& reports) {
  std::ostringstream os;
  std::size_t total = 0;
  for (const AuditReport& rep : reports) {
    if (rep.ok()) continue;
    total += rep.findings.size();
    for (const AuditFinding& f : rep.findings)
      os << rep.file << ":" << f.line << ": [" << f.rule << "] " << f.message
         << "\n";
  }
  if (total == 0)
    os << "aqt-audit: " << reports.size() << " file"
       << (reports.size() == 1 ? "" : "s") << " clean\n";
  else
    os << "aqt-audit: " << total << " finding" << (total == 1 ? "" : "s")
       << " in " << reports.size() << " file"
       << (reports.size() == 1 ? "" : "s") << "\n";
  return os.str();
}

std::string to_json(const std::vector<AuditReport>& reports,
                    const std::vector<BaselineEntry>& stale) {
  std::ostringstream os;
  bool all_ok = true;
  for (const AuditReport& rep : reports) all_ok = all_ok && rep.ok();
  os << "{\"tool\":\"aqt-audit\",\"ok\":" << (all_ok ? "true" : "false")
     << ",\"stale\":[";
  for (std::size_t i = 0; i < stale.size(); ++i) {
    const BaselineEntry& e = stale[i];
    if (i) os << ",";
    os << "{\"rule\":\"" << json_escape(e.rule) << "\",\"file\":\""
       << json_escape(e.file) << "\",\"hash\":\"" << hash_hex(e.line_hash)
       << "\"}";
  }
  os << "],\"reports\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const AuditReport& rep = reports[i];
    if (i) os << ",";
    os << "{\"file\":\"" << json_escape(rep.file) << "\","
       << "\"ok\":" << (rep.ok() ? "true" : "false") << ",\"findings\":[";
    for (std::size_t j = 0; j < rep.findings.size(); ++j) {
      const AuditFinding& f = rep.findings[j];
      if (j) os << ",";
      os << "{\"rule\":\"" << json_escape(f.rule) << "\",\"line\":" << f.line
         << ",\"message\":\"" << json_escape(f.message) << "\"}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

// --- Hardened JSON re-parser ------------------------------------------------
//
// Strict recursive-descent over exactly the grammar to_json emits — the
// same discipline as obs/events.cpp's LineParser: position-attributed
// PreconditionError on any malformation, never a crash or a hang.

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& where)
      : s_(text), where_(where) {}

  void fail(const std::string& what) const {
    AQT_REQUIRE(false, "" << where_ << ": " << what << " at byte " << pos_);
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool at_end() const { return pos_ >= s_.size(); }

  void key(const char* name) {
    const std::string k = string_value();
    if (k != name) fail("expected key '" + std::string(name) + "', got '" +
                        k + "'");
    expect(':');
  }

  std::string string_value() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4U;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          if (code > 0xff) fail("non-latin \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  std::int64_t int_value() {
    const bool neg = consume('-');
    if (peek() < '0' || peek() > '9') fail("expected digit");
    std::int64_t v = 0;
    while (!at_end() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      if (v > (INT64_MAX - 9) / 10) fail("integer overflow");
      v = v * 10 + (take() - '0');
    }
    return neg ? -v : v;
  }

  bool bool_value() {
    if (consume('t')) {
      expect('r');
      expect('u');
      expect('e');
      return true;
    }
    expect('f');
    expect('a');
    expect('l');
    expect('s');
    expect('e');
    return false;
  }

 private:
  const std::string& s_;
  const std::string& where_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<AuditReport> parse_audit_json(
    const std::string& text, const std::string& name,
    std::vector<BaselineEntry>* stale_out) {
  JsonParser p(text, name);
  p.expect('{');
  p.key("tool");
  const std::string tool = p.string_value();
  if (tool != "aqt-audit") p.fail("tool is '" + tool + "', not 'aqt-audit'");
  p.expect(',');
  p.key("ok");
  const bool ok = p.bool_value();
  p.expect(',');
  p.key("stale");
  p.expect('[');
  std::vector<BaselineEntry> stale;
  if (!p.consume(']')) {
    for (;;) {
      BaselineEntry e;
      p.expect('{');
      p.key("rule");
      e.rule = p.string_value();
      if (!known_rule(e.rule)) p.fail("unknown rule '" + e.rule + "'");
      p.expect(',');
      p.key("file");
      e.file = p.string_value();
      p.expect(',');
      p.key("hash");
      const std::string hex = p.string_value();
      if (hex.size() != 16) p.fail("stale hash must be 16 hex digits");
      std::uint64_t h = 0;
      for (const char c : hex) {
        if (c >= '0' && c <= '9')
          h = (h << 4U) | static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
          h = (h << 4U) | static_cast<std::uint64_t>(c - 'a' + 10);
        else
          p.fail("bad stale hash digit");
      }
      e.line_hash = h;
      p.expect('}');
      stale.push_back(std::move(e));
      if (p.consume(']')) break;
      p.expect(',');
    }
  }
  if (stale_out != nullptr) *stale_out = std::move(stale);
  p.expect(',');
  p.key("reports");
  p.expect('[');
  std::vector<AuditReport> reports;
  bool all_ok = true;
  if (!p.consume(']')) {
    for (;;) {
      AuditReport rep;
      p.expect('{');
      p.key("file");
      rep.file = p.string_value();
      p.expect(',');
      p.key("ok");
      const bool rep_ok = p.bool_value();
      p.expect(',');
      p.key("findings");
      p.expect('[');
      if (!p.consume(']')) {
        for (;;) {
          AuditFinding f;
          p.expect('{');
          p.key("rule");
          f.rule = p.string_value();
          if (!known_rule(f.rule)) p.fail("unknown rule '" + f.rule + "'");
          p.expect(',');
          p.key("line");
          const std::int64_t line = p.int_value();
          if (line < 0 || line > INT32_MAX) p.fail("line out of range");
          f.line = static_cast<int>(line);
          p.expect(',');
          p.key("message");
          f.message = p.string_value();
          p.expect('}');
          rep.findings.push_back(std::move(f));
          if (p.consume(']')) break;
          p.expect(',');
        }
      }
      p.expect('}');
      if (rep_ok != rep.ok()) p.fail("report ok flag contradicts findings");
      all_ok = all_ok && rep.ok();
      reports.push_back(std::move(rep));
      if (p.consume(']')) break;
      p.expect(',');
    }
  }
  p.expect('}');
  if (!p.at_end()) p.fail("trailing bytes after document");
  if (ok != all_ok) p.fail("document ok flag contradicts reports");
  return reports;
}

}  // namespace aqt::audit
