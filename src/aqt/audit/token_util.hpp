// Small token-matching helpers shared by the aqt-audit passes (auditor,
// symbols, flow, call graph).  All are bounds-checked: out-of-range
// indices simply fail to match, so callers can probe past the end of the
// stream without guards.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "aqt/audit/lexer.hpp"

namespace aqt::audit {

using Tokens = std::vector<Token>;

inline bool is_ident(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == Token::Kind::kIdentifier &&
         t[i].text == text;
}

inline bool is_any_ident(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdentifier;
}

inline bool is_punct(const Tokens& t, std::size_t i, char c) {
  return i < t.size() && t[i].kind == Token::Kind::kPunct &&
         t[i].text.size() == 1 && t[i].text[0] == c;
}

inline bool any_ident(const Tokens& t, std::size_t i,
                      const std::set<std::string>& names) {
  return i < t.size() && t[i].kind == Token::Kind::kIdentifier &&
         names.count(t[i].text) != 0;
}

/// Index just past a balanced <...> starting at `open` (which must be '<');
/// returns `open` when not a '<'.  Bounded by `limit` extra tokens so an
/// expression's stray '<' cannot swallow the rest of the stream — on
/// running out, returns `open` (no match) rather than a bogus span.
inline std::size_t skip_template_args(const Tokens& t, std::size_t open,
                                      std::size_t limit = 256) {
  if (!is_punct(t, open, '<')) return open;
  int depth = 0;
  std::size_t i = open;
  const std::size_t hard_end = open + limit < t.size() ? open + limit
                                                       : t.size();
  while (i < hard_end) {
    if (is_punct(t, i, '<')) ++depth;
    if (is_punct(t, i, '>')) {
      --depth;
      if (depth == 0) return i + 1;
    }
    // A template argument list never crosses these statement tokens; a
    // '<' that meets one was a comparison, not a template.
    if (is_punct(t, i, ';') || is_punct(t, i, '{') || is_punct(t, i, '}'))
      return open;
    ++i;
  }
  return open;
}

/// Index just past a balanced (...) / [...] / {...} group opening at
/// `open`; returns `open` when the opener does not match `open_c`.
inline std::size_t skip_balanced(const Tokens& t, std::size_t open,
                                 char open_c, char close_c) {
  if (!is_punct(t, open, open_c)) return open;
  int depth = 0;
  std::size_t i = open;
  while (i < t.size()) {
    if (is_punct(t, i, open_c)) ++depth;
    if (is_punct(t, i, close_c)) {
      --depth;
      if (depth == 0) return i + 1;
    }
    ++i;
  }
  return i;
}

}  // namespace aqt::audit
