#include "aqt/audit/callgraph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "aqt/audit/token_util.hpp"

namespace aqt::audit {
namespace {

// Identifiers that look like calls but never are.
const std::set<std::string>& non_call_keywords() {
  static const std::set<std::string> kNot = {
      "if",       "for",       "while",    "switch",   "catch",
      "return",   "sizeof",    "alignof",  "decltype", "typeid",
      "new",      "delete",    "throw",    "noexcept", "static_assert",
      "assert",   "alignas",   "co_await", "co_return", "co_yield",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
      "defined",  "requires",  "explicit", "operator",
  };
  return kNot;
}

// Keywords after which an identifier-then-paren is an expression (call),
// not a declaration.
const std::set<std::string>& expr_keywords() {
  static const std::set<std::string> kExpr = {
      "return", "throw", "else", "do", "case", "goto",
      "co_return", "co_yield", "co_await", "and", "or", "not",
  };
  return kExpr;
}

std::string join_path(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "::" + b;
}

}  // namespace

std::vector<CallSite> extract_calls(const ScannedSource& src,
                                    const SymbolTable& table) {
  const Tokens& t = src.tokens;
  std::vector<CallSite> out;

  // Scope index -> function index, for caller attribution.
  std::map<int, int> fn_of_scope;
  for (std::size_t f = 0; f < table.functions.size(); ++f)
    fn_of_scope[table.functions[f].scope] = static_cast<int>(f);

  std::size_t i = 0;
  while (i < t.size()) {
    if (!is_any_ident(t, i)) {
      ++i;
      continue;
    }
    // Member access: `x.f(` / `x->f(` — unresolvable, skip the name.
    if (i > 0 && (is_punct(t, i - 1, '.') ||
                  (i > 1 && is_punct(t, i - 1, '>') &&
                   is_punct(t, i - 2, '-')))) {
      ++i;
      continue;
    }
    // Mid-chain: `a::b` with the cursor on b is handled from a.
    if (i > 1 && is_punct(t, i - 1, ':') && is_punct(t, i - 2, ':')) {
      ++i;
      continue;
    }
    if (non_call_keywords().count(t[i].text) != 0) {
      ++i;
      continue;
    }

    // Collect the qualified chain a::b::c.
    std::vector<std::size_t> parts = {i};
    std::size_t j = i;
    while (is_punct(t, j + 1, ':') && is_punct(t, j + 2, ':') &&
           is_any_ident(t, j + 3)) {
      j += 3;
      parts.push_back(j);
    }
    const std::size_t chain_end = j;

    // std:: and gtest-style testing:: calls never resolve in-repo.
    if (t[parts[0]].text == "std" || t[parts[0]].text == "testing") {
      i = chain_end + 1;
      continue;
    }

    std::size_t after = chain_end + 1;
    const std::size_t tmpl = skip_template_args(t, after);
    if (tmpl != after) after = tmpl;
    if (!is_punct(t, after, '(')) {
      i = chain_end + 1;
      continue;
    }
    // Declaration shape `Type name(` — the previous token is an
    // identifier that is not an expression keyword, or a type-ish
    // punctuation ('>' of a template, '&', '*').
    if (i > 0) {
      const Token& p = t[i - 1];
      if (p.kind == Token::Kind::kIdentifier &&
          expr_keywords().count(p.text) == 0) {
        i = chain_end + 1;
        continue;
      }
      if (p.kind == Token::Kind::kPunct && p.text.size() == 1 &&
          (p.text[0] == '>' || p.text[0] == '&' || p.text[0] == '*' ||
           p.text[0] == '~')) {
        i = chain_end + 1;
        continue;
      }
    }
    // A variable in scope: functor call or ctor-style init, not a
    // resolvable function call.
    if (parts.size() == 1 &&
        table.lookup(t[parts[0]].text, parts[0]) != nullptr) {
      i = chain_end + 1;
      continue;
    }

    // Caller: nearest enclosing function body (lambdas attribute to the
    // function that created them; file-scope initializers are dropped).
    int caller = -1;
    for (int s = table.scope_at(parts.back()); s >= 0;
         s = table.scopes[s].parent) {
      if (table.scopes[s].kind == ScopeInfo::Kind::kFunction) {
        auto it = fn_of_scope.find(s);
        if (it != fn_of_scope.end()) caller = it->second;
        break;
      }
    }
    if (caller < 0) {
      i = chain_end + 1;
      continue;
    }

    CallSite site;
    for (std::size_t p = 0; p < parts.size(); ++p) {
      if (p != 0) site.written += "::";
      site.written += t[parts[p]].text;
    }
    site.caller = caller;
    site.token = parts.back();
    site.line = t[parts.back()].line;
    out.push_back(std::move(site));
    i = chain_end + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cross-TU aggregation.

namespace {

std::string def_path(const FileCallInfo::Def& d) {
  const std::string& ctx = d.class_name.empty() ? d.qualifier : d.class_name;
  return join_path(join_path(d.name_space, ctx), d.name);
}

std::string def_key(const FileCallInfo& f, const FileCallInfo::Def& d) {
  const std::string path = def_path(d);
  return d.file_local ? f.file + "@" + path : path;
}

}  // namespace

CallGraph::CallGraph(std::vector<FileCallInfo> files)
    : files_(std::move(files)) {
  // Deterministic node ids: sort files by path (callers pass them sorted,
  // but do not rely on it).
  std::sort(files_.begin(), files_.end(),
            [](const FileCallInfo& a, const FileCallInfo& b) {
              return a.file < b.file;
            });
  auto intern = [&](const std::string& key,
                    const std::string& display) -> int {
    auto it = id_by_key_.find(key);
    if (it != id_by_key_.end()) return it->second;
    const int id = static_cast<int>(nodes_.size());
    id_by_key_.emplace(key, id);
    nodes_.push_back(Node{});
    nodes_.back().display = display;
    return id;
  };
  for (const FileCallInfo& f : files_) {
    for (const FileCallInfo::Def& d : f.defs) {
      const int id = intern(def_key(f, d), def_path(d));
      nodes_[static_cast<std::size_t>(id)].layers.insert(f.layer);
      for (const auto& [mutex, line] : d.acquires)
        nodes_[static_cast<std::size_t>(id)].acquires.push_back(
            {mutex, {f.file, line}});
    }
  }
  for (const FileCallInfo& f : files_) {
    for (const FileCallInfo::Call& c : f.calls) {
      const int callee = resolve(f, c);
      if (callee < 0) continue;
      if (c.caller < 0 || c.caller >= static_cast<int>(f.defs.size()))
        continue;
      auto it = id_by_key_.find(
          def_key(f, f.defs[static_cast<std::size_t>(c.caller)]));
      if (it == id_by_key_.end()) continue;
      nodes_[static_cast<std::size_t>(it->second)].out.insert(callee);
    }
  }
  // Transitive layer closure, to a fixed point (handles cycles).
  for (Node& n : nodes_) n.reach = n.layers;
  bool changed = true;
  while (changed) {
    changed = false;
    for (Node& n : nodes_) {
      for (const int callee : n.out) {
        for (const std::string& l : nodes_[static_cast<std::size_t>(callee)]
                                        .reach) {
          if (n.reach.insert(l).second) changed = true;
        }
      }
    }
  }
}

int CallGraph::resolve(const FileCallInfo& f,
                       const FileCallInfo::Call& c) const {
  if (c.caller < 0 || c.caller >= static_cast<int>(f.defs.size())) return -1;
  const FileCallInfo::Def& caller =
      f.defs[static_cast<std::size_t>(c.caller)];

  std::string written = c.written;
  bool absolute = false;
  if (written.rfind("::", 0) == 0) {
    absolute = true;
    written = written.substr(2);
  }

  // Candidate full paths, most-specific first.
  std::vector<std::string> candidates;
  if (!absolute) {
    const std::string& cls =
        caller.class_name.empty() ? caller.qualifier : caller.class_name;
    if (!cls.empty())
      candidates.push_back(
          join_path(join_path(caller.name_space, cls), written));
    std::string ns = caller.name_space;
    for (;;) {
      candidates.push_back(join_path(ns, written));
      if (ns.empty()) break;
      const std::size_t sep = ns.rfind("::");
      ns = sep == std::string::npos ? "" : ns.substr(0, sep);
    }
  } else {
    candidates.push_back(written);
  }

  // First tier that has a definition wins; within a tier, a file-local
  // definition in the calling file shadows the global one.
  for (const std::string& path : candidates) {
    auto local = id_by_key_.find(f.file + "@" + path);
    if (local != id_by_key_.end()) return local->second;
    auto global = id_by_key_.find(path);
    if (global != id_by_key_.end()) return global->second;
  }
  return -1;
}

std::string CallGraph::witness_path(int from, const std::string& layer) const {
  // BFS to the nearest node whose own layers contain `layer`; edges are
  // iterated in sorted (std::set) order, so the witness is deterministic.
  std::vector<int> parent(nodes_.size(), -2);
  std::deque<int> queue;
  queue.push_back(from);
  parent[static_cast<std::size_t>(from)] = -1;
  int hit = -1;
  while (!queue.empty() && hit < 0) {
    const int n = queue.front();
    queue.pop_front();
    if (nodes_[static_cast<std::size_t>(n)].layers.count(layer) != 0) {
      hit = n;
      break;
    }
    for (const int next : nodes_[static_cast<std::size_t>(n)].out) {
      if (parent[static_cast<std::size_t>(next)] != -2) continue;
      parent[static_cast<std::size_t>(next)] = n;
      queue.push_back(next);
    }
  }
  if (hit < 0) return nodes_[static_cast<std::size_t>(from)].display;
  std::vector<int> chain;
  for (int n = hit; n != -1; n = parent[static_cast<std::size_t>(n)])
    chain.push_back(n);
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += nodes_[static_cast<std::size_t>(*it)].display;
  }
  return out;
}

std::vector<CallGraph::Violation> CallGraph::layering_violations(
    const std::function<bool(const std::string&, const std::string&)>&
        allowed) const {
  std::vector<Violation> out;
  for (const FileCallInfo& f : files_) {
    if (f.layer == "top") continue;
    for (const FileCallInfo::Call& c : f.calls) {
      const int callee = resolve(f, c);
      if (callee < 0) continue;
      const Node& target = nodes_[static_cast<std::size_t>(callee)];
      std::string bad;
      for (const std::string& l : target.reach) {
        if (l == "top") continue;  // Headerless test helpers: not a layer.
        if (!allowed(f.layer, l)) {
          bad = l;
          break;  // reach is sorted (std::set) — first is deterministic.
        }
      }
      if (bad.empty()) continue;
      Violation v;
      v.file = f.file;
      v.line = c.line;
      v.caller = c.caller >= 0 &&
                         c.caller < static_cast<int>(f.defs.size())
                     ? def_path(f.defs[static_cast<std::size_t>(c.caller)])
                     : "";
      v.callee = target.display;
      v.bad_layer = bad;
      v.path = witness_path(callee, bad);
      out.push_back(std::move(v));
    }
  }
  std::sort(out.begin(), out.end(), [](const Violation& a,
                                       const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.callee != b.callee) return a.callee < b.callee;
    return a.bad_layer < b.bad_layer;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Violation& a, const Violation& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.callee == b.callee &&
                                 a.bad_layer == b.bad_layer;
                        }),
            out.end());
  return out;
}

std::vector<CallGraph::OrderEdge> CallGraph::propagated_order_edges() const {
  std::vector<OrderEdge> out;
  // Transitive acquisition sets, to a fixed point.
  std::vector<std::set<std::string>> acq(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n)
    for (const auto& a : nodes_[n].acquires) acq[n].insert(a.first);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      for (const int callee : nodes_[n].out) {
        for (const std::string& m : acq[static_cast<std::size_t>(callee)]) {
          if (acq[n].insert(m).second) changed = true;
        }
      }
    }
  }

  for (const FileCallInfo& f : files_) {
    for (const FileCallInfo::Call& c : f.calls) {
      if (c.held.empty()) continue;
      const int callee = resolve(f, c);
      if (callee < 0) continue;
      for (const std::string& h : c.held) {
        for (const std::string& m : acq[static_cast<std::size_t>(callee)]) {
          if (m == h) continue;
          OrderEdge e;
          e.first = h;
          e.second = m;
          e.file = f.file;
          e.line = c.line;
          out.push_back(std::move(e));
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const OrderEdge& a, const OrderEdge& b) {
              if (a.first != b.first) return a.first < b.first;
              if (a.second != b.second) return a.second < b.second;
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return out;
}

}  // namespace aqt::audit
