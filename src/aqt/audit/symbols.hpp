// Declaration & symbol scanning for the aqt-audit semantic layer.
//
// The token-level rule pack (AUD001..AUD007) matches names; the semantic
// rules (AUD008..AUD012) need to know what the names *are*: which
// identifier is a local, a by-reference capture, a class member, a
// mutex-typed field; which braces open a namespace, a class, a function
// body, a worker lambda.  This module builds that model with a single
// structural pass over the lexer's token stream:
//
//   * a scope tree (file / namespace / class / function / lambda / block)
//     with token ranges, so "which scope declares x as seen from token i"
//     is a containment query;
//   * variable declarations with flattened type text and derived flags
//     (const, static, reference, mutex/atomic/thread/std::function-typed);
//   * function definitions with unqualified name, written qualifier
//     (Class:: or namespace::), enclosing namespace path, and file-local
//     marking (anonymous namespace / static linkage / macro-shaped names),
//     which the cross-TU call graph uses for name resolution;
//   * lambdas with parsed capture lists and a *sink* classification — how
//     the lambda escapes its expression (thread construction, pool
//     submission, stored std::function, plain local, immediate call) —
//     which is what decides whether AUD008/AUD010 apply to its body.
//
// Everything here is a heuristic over tokens, not an AST; the obligations
// are the hardened-scanner ones (any input terminates, no crashes) plus
// "resolvable names resolve correctly on this repo's idiom".  Unresolvable
// constructs degrade to absent declarations, and the rules treat absence
// as "not provably shared" — false negatives, never false positives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "aqt/audit/lexer.hpp"

namespace aqt::audit {

/// One node of the scope tree.  Token ranges cover the braces' content:
/// [body_begin, body_end) with body_begin just past '{' and body_end at
/// the matching '}' (or end of stream for unterminated input).
struct ScopeInfo {
  enum class Kind : std::uint8_t {
    kFile,
    kNamespace,
    kClass,
    kFunction,
    kLambda,
    kBlock,
  };

  Kind kind = Kind::kBlock;
  int parent = -1;          ///< Index into SymbolTable::scopes; -1 = none.
  std::string name;         ///< Namespace/class name; "" for anon/blocks.
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  bool anonymous_namespace = false;
};

/// One declared variable, member, or parameter.
struct VarDecl {
  std::string name;
  std::string type_text;    ///< Type tokens joined with single spaces.
  int scope = 0;            ///< Declaring scope (index into scopes).
  int line = 0;
  std::size_t name_token = 0;  ///< Token index of the declared name.
  bool is_const = false;
  bool is_static = false;
  bool is_thread_local = false;
  bool is_reference = false;
  bool is_pointer = false;
  bool is_parameter = false;

  // Derived from type_text; what the concurrency rules dispatch on.
  bool is_mutex = false;       ///< mutex / shared_mutex / condition_variable.
  bool is_atomic = false;      ///< std::atomic<...>.
  bool is_thread_like = false; ///< std::thread / jthread (possibly in a
                               ///< container) — a worker handle.
  bool is_function_type = false;  ///< std::function<...> storage.
};

/// One function definition (declarations without bodies are not recorded —
/// only definitions are call-graph nodes).
struct FunctionInfo {
  std::string name;          ///< Unqualified name ("run", "audit_source").
  std::string qualifier;     ///< Written qualifier: "Auditor" for
                             ///< Auditor::run, "" for unqualified.
  std::string name_space;    ///< Enclosing namespace path ("aqt::audit").
  std::string class_name;    ///< Enclosing class scope name, or "" —
                             ///< in-class definitions only; out-of-line
                             ///< member bodies carry it in `qualifier`.
  bool file_local = false;   ///< Anonymous namespace, static linkage, or a
                             ///< macro-shaped (ALL_CAPS) pseudo-definition:
                             ///< never visible to other TUs.
  int line = 0;
  int scope = -1;            ///< The body scope index.
  std::size_t body_begin = 0;  ///< First token inside the body.
  std::size_t body_end = 0;    ///< Token index of the closing '}'.
};

/// One lambda expression.
struct LambdaInfo {
  /// How the lambda leaves the expression that created it.
  enum class Sink : std::uint8_t {
    kUnknown,        ///< Unclassified (conservatively not deferred).
    kImmediate,      ///< Invoked in place: [..]{..}().
    kNamedLocal,     ///< Bound to a plain local: auto f = [..]{..}.
    kArgument,       ///< Passed to an ordinary call (borrowed, not kept).
    kThread,         ///< std::thread/jthread construction or insertion
                     ///< into a thread container — a worker body.
    kDeferredCall,   ///< Submitted to a pool-like API (parallel_for_each,
                     ///< submit/enqueue/post/spawn/dispatch/async/defer).
    kStoredFunction, ///< Assigned into a std::function-typed variable.
  };

  std::size_t intro_token = 0;  ///< Index of the '[' opening the capture.
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  int line = 0;
  int scope = -1;               ///< The lambda body scope index.
  int enclosing_function = -1;  ///< Index into functions, or -1 (file scope).

  bool default_ref = false;     ///< [&] or [&, ...].
  bool default_copy = false;    ///< [=] or [=, ...].
  bool captures_this = false;   ///< [this] or [&]/[=] inside a member.
  std::vector<std::string> ref_captures;   ///< Explicit &name captures.
  std::vector<std::string> copy_captures;  ///< Explicit by-value captures.

  Sink sink = Sink::kUnknown;
  std::string sink_name;  ///< Callee / variable the lambda flowed into.

  /// A worker body: runs (or may run) on another thread.
  [[nodiscard]] bool deferred() const {
    return sink == Sink::kThread || sink == Sink::kDeferredCall;
  }
  /// Captures anything by reference (incl. the enclosing object).
  [[nodiscard]] bool captures_by_ref() const {
    return default_ref || captures_this || !ref_captures.empty();
  }
};

/// The per-file symbol model.
struct SymbolTable {
  std::vector<ScopeInfo> scopes;    ///< scopes[0] is the file scope.
  std::vector<VarDecl> vars;
  std::vector<FunctionInfo> functions;
  std::vector<LambdaInfo> lambdas;

  /// Innermost scope whose body range contains token `i` (0 = file).
  [[nodiscard]] int scope_at(std::size_t i) const;

  /// True when `scope` is `outer` or nested anywhere inside it.
  [[nodiscard]] bool scope_within(int scope, int outer) const;

  /// Innermost visible declaration of `name` at token `i`, or nullptr.
  /// Members of enclosing class scopes are visible (this-capture model).
  [[nodiscard]] const VarDecl* lookup(const std::string& name,
                                      std::size_t i) const;

  /// The namespace path enclosing `scope` ("aqt::audit", "" at top level).
  [[nodiscard]] std::string namespace_of(int scope) const;

  /// Nearest enclosing class scope's name, or "".
  [[nodiscard]] std::string class_of(int scope) const;
};

/// Builds the symbol model.  Total: any token stream terminates.
SymbolTable build_symbols(const ScannedSource& src);

}  // namespace aqt::audit
