// Static validation of scenario specs — the aqt-lint core.
//
// The engine validates what it can *per call* (route shape on injection,
// historic-protocol gating on reroute), but by then a multi-hour run is
// already underway; an infeasible (w, r) script is only caught post-run by
// the exact checkers.  The linter front-loads every statically decidable
// model obligation so a malformed scenario is rejected before step 1:
//
//   * the topology spec parses, and for gadget networks the chain wiring
//     satisfies Definition 3.4 (lint_gadget_wiring);
//   * the protocol name is known;
//   * every route/suffix resolves to real edges and is a contiguous simple
//     directed path (paper §2);
//   * the injection script satisfies its declared (w, r) window constraint
//     (Definition 2.1) and/or rate-r constraint, verified with the exact
//     checkers over final effective routes — reroute suffixes charged at
//     the target's injection time, exactly as Lemma 3.3 accounts them;
//   * reroutes satisfy the statically checkable Lemma 3.3 preconditions:
//     historic protocol, an existing target packet, issued strictly after
//     the target's injection, and a suffix that can splice contiguously
//     onto the target's route.
//
// All findings are collected (never fail-fast) and rendered as either
// human-readable text or machine-readable JSON, so CI can gate on the
// report and tools can consume it.
#pragma once

#include <string>
#include <vector>

#include "aqt/lint/scenario.hpp"
#include "aqt/topology/gadget.hpp"

namespace aqt {

/// One problem found in a scenario.  `code` is a stable machine-readable
/// identifier (e.g. "route-not-simple", "dangling-edge",
/// "window-infeasible", "reroute-nonhistoric").
struct LintFinding {
  std::string code;
  int line = 0;  ///< 1-based scenario line (0 when not line-attributable).
  std::string message;
};

/// The full verdict for one scenario.
struct LintReport {
  std::string file;
  std::vector<LintFinding> findings;
  std::size_t injections = 0;  ///< Script size, for the certificate.
  std::size_t reroutes = 0;
  /// Human summary of the feasibility certificates that *passed*, e.g.
  /// "window(12, 1/4) feasible; rate 7/10 feasible".
  std::string certificates;

  [[nodiscard]] bool ok() const { return findings.empty(); }
};

/// Lints one parsed scenario.  Never throws for content problems — they
/// all become findings.
LintReport lint_scenario(const Scenario& scenario, std::string file);

/// Parses and lints a file; parse and I/O errors become a "parse-error"
/// finding so callers get a uniform report.
LintReport lint_file(const std::string& path);

/// Definition 3.4 sanity of a chained-gadget handle: per-gadget path
/// lengths and contiguity, egress/ingress identification between
/// neighbours, and back-edge closure.  Exposed separately so tests can
/// feed deliberately broken handles.
std::vector<LintFinding> lint_gadget_wiring(const ChainedGadgets& net);

/// Renders a batch of reports.
std::string to_human(const std::vector<LintReport>& reports);
std::string to_json(const std::vector<LintReport>& reports);

}  // namespace aqt
