#include "aqt/lint/linter.hpp"

#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/topology/spec.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

void add_finding(LintReport& rep, std::string code, int line,
                 std::string message) {
  rep.findings.push_back(
      LintFinding{std::move(code), line, std::move(message)});
}

/// Resolves a list of edge names; unresolved names become "dangling-edge"
/// findings.  Returns nullopt unless every name resolved.
std::optional<Route> resolve_route(const Graph& g,
                                   const std::vector<std::string>& names,
                                   int line, const char* what,
                                   LintReport& rep) {
  Route route;
  bool ok = true;
  for (const std::string& name : names) {
    const auto e = g.find_edge(name);
    if (!e) {
      std::ostringstream os;
      os << what << " names edge '" << name
         << "', which does not exist in this topology";
      add_finding(rep, "dangling-edge", line, os.str());
      ok = false;
      continue;
    }
    route.push_back(*e);
  }
  if (!ok) return std::nullopt;
  return route;
}

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

}  // namespace

std::vector<LintFinding> lint_gadget_wiring(const ChainedGadgets& net) {
  std::vector<LintFinding> findings;
  const Graph& g = net.graph;
  auto fail = [&findings](const std::string& message) {
    findings.push_back(LintFinding{"gadget-wiring", 0, message});
  };
  auto edge_ok = [&g](EdgeId e) { return e != kNoEdge && e < g.edge_count(); };

  if (net.n < 1) fail("gadget path length n must be >= 1");
  if (net.gadget_count < 1 ||
      net.gadgets.size() != static_cast<std::size_t>(net.gadget_count)) {
    fail("gadget handle lists " + std::to_string(net.gadgets.size()) +
         " gadgets but declares gadget_count=" +
         std::to_string(net.gadget_count));
    return findings;  // Indexed checks below would be meaningless.
  }

  // A contiguous run of edges from `from` to `to`, as Definition 3.4's
  // parallel paths require.
  auto check_path = [&](const std::vector<EdgeId>& path, EdgeId from,
                        EdgeId to, const std::string& label) {
    if (net.n >= 1 &&
        path.size() != static_cast<std::size_t>(net.n)) {
      fail(label + " has " + std::to_string(path.size()) +
           " edges, expected n=" + std::to_string(net.n));
      return;
    }
    for (const EdgeId e : path) {
      if (!edge_ok(e)) {
        fail(label + " contains an unresolved edge id");
        return;
      }
    }
    if (!edge_ok(from) || !edge_ok(to)) return;  // Reported separately.
    NodeId at = g.head(from);
    for (const EdgeId e : path) {
      if (g.tail(e) != at) {
        fail(label + " is not contiguous at edge '" + g.edge(e).name + "'");
        return;
      }
      at = g.head(e);
    }
    if (at != g.tail(to))
      fail(label + " does not terminate at the egress tail");
  };

  for (std::size_t k = 0; k < net.gadgets.size(); ++k) {
    const GadgetEdges& gd = net.gadgets[k];
    const std::string label = "gadget F(" + std::to_string(k + 1) + ")";
    if (!edge_ok(gd.ingress)) fail(label + " has an unresolved ingress edge");
    if (!edge_ok(gd.egress)) fail(label + " has an unresolved egress edge");
    check_path(gd.e_path, gd.ingress, gd.egress, label + " e-path");
    check_path(gd.f_path, gd.ingress, gd.egress, label + " f-path");
    if (k + 1 < net.gadgets.size() &&
        gd.egress != net.gadgets[k + 1].ingress)
      fail(label + "'s egress is not identified with F(" +
           std::to_string(k + 2) +
           ")'s ingress (the 'o' composition of Definition 3.4)");
  }

  if (net.back_edge != kNoEdge) {
    const GadgetEdges& first = net.gadgets.front();
    const GadgetEdges& last = net.gadgets.back();
    if (!edge_ok(net.back_edge)) {
      fail("closed chain's back edge e0 is unresolved");
    } else if (edge_ok(last.egress) && edge_ok(first.ingress)) {
      if (g.tail(net.back_edge) != g.head(last.egress) ||
          g.head(net.back_edge) != g.tail(first.ingress))
        fail("back edge e0 does not close the chain from the last egress "
             "to the first ingress (Fig. 3.2)");
    }
  }
  return findings;
}

LintReport lint_scenario(const Scenario& sc, std::string file) {
  LintReport rep;
  rep.file = std::move(file);
  rep.injections = sc.injections.size();
  rep.reroutes = sc.reroutes.size();

  // --- Topology and protocol ----------------------------------------------
  std::optional<TopologySpec> topo;
  try {
    topo.emplace(parse_topology_spec(sc.topology, sc.topology_seed));
  } catch (const PreconditionError& e) {
    add_finding(rep, "topology-invalid", sc.topology_line, e.what());
  }
  std::unique_ptr<Protocol> protocol;
  try {
    protocol = make_protocol(sc.protocol);
  } catch (const PreconditionError& e) {
    add_finding(rep, "protocol-unknown", sc.protocol_line, e.what());
  }
  if (!topo) return rep;  // Every remaining check needs the graph.
  const Graph& g = topo->graph;

  if (topo->is_lps)
    for (LintFinding& f : lint_gadget_wiring(topo->lps_net))
      rep.findings.push_back(std::move(f));

  // --- Injections ---------------------------------------------------------
  std::vector<std::optional<Route>> resolved(sc.injections.size());
  for (std::size_t i = 0; i < sc.injections.size(); ++i) {
    const ScenarioInjection& inj = sc.injections[i];
    if (inj.t < 1) {
      std::ostringstream os;
      os << "injection at t=" << inj.t
         << "; adversary injections start at step 1 (step 0 is the "
            "initial configuration)";
      add_finding(rep, "inject-time-invalid", inj.line, os.str());
    }
    auto route = resolve_route(g, inj.route, inj.line, "injection route",
                               rep);
    if (!route) continue;
    if (!g.is_path(*route)) {
      add_finding(rep, "route-not-path", inj.line,
                  "injection route is not contiguous (head of each edge "
                  "must be the tail of the next)");
    } else if (!g.is_simple_path(*route)) {
      add_finding(rep, "route-not-simple", inj.line,
                  "injection route revisits a node; the model (paper "
                  "section 2) requires simple routes");
    } else {
      resolved[i] = std::move(*route);
    }
  }

  // --- Reroutes (static Lemma 3.3 preconditions) --------------------------
  std::vector<std::optional<Route>> suffixes(sc.reroutes.size());
  for (std::size_t i = 0; i < sc.reroutes.size(); ++i) {
    const ScenarioReroute& rr = sc.reroutes[i];
    if (protocol && !protocol->is_historic()) {
      std::ostringstream os;
      os << "reroute under protocol " << protocol->name()
         << ", which is not historic; Lemma 3.3 licenses rerouting only "
            "for historic protocols (Definition 3.1)";
      add_finding(rep, "reroute-nonhistoric", rr.line, os.str());
    }
    if (rr.packet_ordinal >= sc.injections.size()) {
      std::ostringstream os;
      os << "reroute targets packet ordinal " << rr.packet_ordinal
         << " but the scenario injects only " << sc.injections.size()
         << " packets";
      add_finding(rep, "reroute-unknown-packet", rr.line, os.str());
      continue;
    }
    const ScenarioInjection& target = sc.injections[rr.packet_ordinal];
    if (rr.t <= target.t) {
      std::ostringstream os;
      os << "reroute at t=" << rr.t << " targets packet ordinal "
         << rr.packet_ordinal << " injected at t=" << target.t
         << "; reroutes apply before same-step injections, so the target "
            "exists only from step "
         << target.t + 1;
      add_finding(rep, "reroute-too-early", rr.line, os.str());
    }
    auto suffix = resolve_route(g, rr.suffix, rr.line, "reroute suffix",
                                rep);
    if (!suffix) continue;
    if (!g.is_path(*suffix)) {
      add_finding(rep, "route-not-path", rr.line,
                  "reroute suffix is not contiguous");
      continue;
    }
    // The suffix splices after some traversed prefix of the target's
    // route, so its first edge must depart from a node the route visits.
    if (resolved[rr.packet_ordinal]) {
      const Route& route = *resolved[rr.packet_ordinal];
      bool splices = false;
      for (const EdgeId e : route)
        if (g.head(e) == g.tail(suffix->front())) splices = true;
      if (!splices) {
        std::ostringstream os;
        os << "reroute suffix starts at node '"
           << g.node_name(g.tail(suffix->front()))
           << "', which the target's route never reaches; no splice "
              "point can make the new route contiguous";
        add_finding(rep, "reroute-discontiguous", rr.line, os.str());
        continue;
      }
    }
    suffixes[i] = std::move(*suffix);
  }

  // --- Declared rate-feasibility certificates -----------------------------
  // Charged over final effective routes: injection routes at their own
  // times, reroute suffix edges at the *target's* injection time — the
  // accounting Lemma 3.3 and the engine's post-hoc audit both use.
  RateAudit audit(g.edge_count());
  for (std::size_t i = 0; i < sc.injections.size(); ++i)
    if (resolved[i] && sc.injections[i].t >= 1)
      audit.add(*resolved[i], sc.injections[i].t);
  for (std::size_t i = 0; i < sc.reroutes.size(); ++i)
    if (suffixes[i])
      for (const EdgeId e : *suffixes[i])
        audit.add_edge(e, sc.injections[sc.reroutes[i].packet_ordinal].t);

  std::ostringstream certs;
  if (sc.window_w) {
    if (*sc.window_w < 1) {
      add_finding(rep, "window-invalid", sc.window_line,
                  "window length w must be >= 1");
    } else {
      const RateCheckResult res =
          check_window(audit, *sc.window_w, *sc.window_r);
      if (!res.ok) {
        add_finding(rep, "window-infeasible", sc.window_line,
                    "scripted injections violate the declared (w, r) "
                    "constraint: " +
                        res.describe(g));
      } else {
        certs << "window(" << *sc.window_w << ", " << sc.window_r->str()
              << ") feasible; ";
      }
    }
  }
  if (sc.rate_r) {
    const RateCheckResult res = check_rate_r(audit, *sc.rate_r);
    if (!res.ok) {
      add_finding(rep, "rate-infeasible", sc.rate_line,
                  "scripted injections violate the declared rate-r "
                  "constraint: " +
                      res.describe(g));
    } else {
      certs << "rate " << sc.rate_r->str() << " feasible; ";
    }
  }
  std::string c = certs.str();
  if (c.size() >= 2) c.resize(c.size() - 2);  // Trim trailing "; ".
  rep.certificates = std::move(c);
  return rep;
}

LintReport lint_file(const std::string& path) {
  try {
    return lint_scenario(parse_scenario_file(path), path);
  } catch (const PreconditionError& e) {
    LintReport rep;
    rep.file = path;
    add_finding(rep, "parse-error", 0, e.what());
    return rep;
  }
}

std::string to_human(const std::vector<LintReport>& reports) {
  std::ostringstream os;
  for (const LintReport& rep : reports) {
    if (rep.ok()) {
      os << rep.file << ": OK (" << rep.injections << " injections, "
         << rep.reroutes << " reroutes";
      if (!rep.certificates.empty()) os << "; " << rep.certificates;
      os << ")\n";
      continue;
    }
    os << rep.file << ": " << rep.findings.size() << " problem"
       << (rep.findings.size() == 1 ? "" : "s") << "\n";
    for (const LintFinding& f : rep.findings) {
      os << "  " << rep.file;
      if (f.line > 0) os << ":" << f.line;
      os << ": [" << f.code << "] " << f.message << "\n";
    }
  }
  return os.str();
}

std::string to_json(const std::vector<LintReport>& reports) {
  std::ostringstream os;
  bool all_ok = true;
  for (const LintReport& rep : reports) all_ok = all_ok && rep.ok();
  os << "{\"ok\":" << (all_ok ? "true" : "false") << ",\"reports\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const LintReport& rep = reports[i];
    if (i) os << ",";
    os << "{\"file\":\"" << json_escape(rep.file) << "\","
       << "\"ok\":" << (rep.ok() ? "true" : "false") << ","
       << "\"injections\":" << rep.injections << ","
       << "\"reroutes\":" << rep.reroutes << ","
       << "\"certificates\":\"" << json_escape(rep.certificates) << "\","
       << "\"findings\":[";
    for (std::size_t j = 0; j < rep.findings.size(); ++j) {
      const LintFinding& f = rep.findings[j];
      if (j) os << ",";
      os << "{\"code\":\"" << json_escape(f.code) << "\","
         << "\"line\":" << f.line << ","
         << "\"message\":\"" << json_escape(f.message) << "\"}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace aqt
