// Textual scenario specs — the input language of aqt-lint.
//
// A scenario bundles everything needed to reproduce a run: a topology spec
// (spec.hpp grammar), a protocol name, optional declared rate constraints,
// and a script of injections and reroutes.  The format is line-oriented so
// specs diff well and can be generated trivially:
//
//   # FIFO convoy on a ring, (w, r)-feasible by construction.
//   topology ring:6
//   protocol FIFO
//   window 12 1/3
//   inject t=1 route=e0>e1>e2 tag=7
//   inject t=13 route=e0>e1
//   reroute t=20 packet=0 suffix=e3>e4
//
// Lines:
//   topology <spec> [seed=<n>]      (required, once)
//   protocol <NAME>                 (optional, default FIFO)
//   window <w> <r>                  (optional: declare (w, r) feasibility)
//   rate <r>                        (optional: declare rate-r feasibility)
//   inject t=<step> route=<e>...>   (routes name edges, '>'-separated)
//   reroute t=<step> packet=<ordinal> suffix=<e>...>
//
// `packet=` refers to the injection's 0-based ordinal within the file —
// the same protocol-independent identity trace replay uses.  Parsing is
// purely syntactic; every semantic question (do the edges exist? is the
// route simple? is the script feasible?) belongs to the linter so that one
// run reports *all* problems, not just the first.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "aqt/core/types.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {

/// One scripted injection, route still in edge-name form.
struct ScenarioInjection {
  Time t = 0;
  std::vector<std::string> route;
  std::uint64_t tag = 0;
  int line = 0;  ///< 1-based source line, for diagnostics.
};

/// One scripted reroute, suffix still in edge-name form.
struct ScenarioReroute {
  Time t = 0;
  std::uint64_t packet_ordinal = 0;  ///< Index into the injection list.
  std::vector<std::string> suffix;
  int line = 0;
};

/// A parsed scenario file.
struct Scenario {
  std::string topology;  ///< spec.hpp grammar, e.g. "grid:4x4", "lps:9x8".
  std::uint64_t topology_seed = 1;
  int topology_line = 0;
  std::string protocol = "FIFO";
  int protocol_line = 0;

  std::optional<std::int64_t> window_w;  ///< Declared (w, r) constraint.
  std::optional<Rat> window_r;
  int window_line = 0;
  std::optional<Rat> rate_r;  ///< Declared rate-r constraint.
  int rate_line = 0;

  std::vector<ScenarioInjection> injections;
  std::vector<ScenarioReroute> reroutes;
};

/// Parses a scenario; throws PreconditionError (with a line number) on
/// syntax errors.  `name` labels diagnostics, e.g. the file path.
Scenario parse_scenario(std::istream& in, const std::string& name);

/// Reads and parses a file; throws PreconditionError if unreadable.
Scenario parse_scenario_file(const std::string& path);

/// Serializes back to the textual format (round-trips through
/// parse_scenario); used by the fuzz harness.
std::string to_text(const Scenario& scenario);

}  // namespace aqt
