#include "aqt/lint/scenario.hpp"

#include <fstream>
#include <sstream>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

/// Splits on whitespace.
std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Splits an edge-name list "e0>e1>e2" (empty segments are syntax errors).
std::vector<std::string> split_route(const std::string& text,
                                     const std::string& name, int line) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto gt = text.find('>', start);
    const std::string part = text.substr(
        start, gt == std::string::npos ? std::string::npos : gt - start);
    AQT_REQUIRE(!part.empty(),
                "scenario " << name << ":" << line << ": empty edge name in route list '"
                     << text << "'");
    out.push_back(part);
    if (gt == std::string::npos) break;
    start = gt + 1;
  }
  return out;
}

/// Parses "key=value"; requires the given key.
std::string expect_kv(const std::string& tok, const std::string& key,
                      const std::string& name, int line) {
  const auto eq = tok.find('=');
  AQT_REQUIRE(eq != std::string::npos && tok.substr(0, eq) == key,
              "scenario " << name << ":" << line << ": expected '" << key << "=...', got '"
                   << tok << "'");
  return tok.substr(eq + 1);
}

std::int64_t parse_int(const std::string& text, const std::string& name,
                       int line) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(text, &pos);
    AQT_REQUIRE(pos == text.size(),
                "scenario " << name << ":" << line << ": trailing junk in number '" << text
                     << "'");
    return v;
  } catch (const PreconditionError&) {
    throw;
  } catch (const std::exception&) {
    detail::require_failed("integer", name.c_str(), line,
                           "not an integer: '" + text + "'");
  }
}

}  // namespace

Scenario parse_scenario(std::istream& in, const std::string& name) {
  Scenario sc;
  bool have_topology = false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::vector<std::string> toks = tokens_of(line);
    if (toks.empty()) continue;
    const std::string& kind = toks[0];

    if (kind == "topology") {
      AQT_REQUIRE(!have_topology,
                  "scenario " << name << ":" << lineno << ": duplicate topology line");
      AQT_REQUIRE(toks.size() >= 2 && toks.size() <= 3,
                  "scenario " << name << ":" << lineno
                       << ": usage: topology <spec> [seed=<n>]");
      sc.topology = toks[1];
      sc.topology_line = lineno;
      if (toks.size() == 3)
        sc.topology_seed = static_cast<std::uint64_t>(parse_int(
            expect_kv(toks[2], "seed", name, lineno), name, lineno));
      have_topology = true;
    } else if (kind == "protocol") {
      AQT_REQUIRE(toks.size() == 2,
                  "scenario " << name << ":" << lineno << ": usage: protocol <NAME>");
      sc.protocol = toks[1];
      sc.protocol_line = lineno;
    } else if (kind == "window") {
      AQT_REQUIRE(toks.size() == 3,
                  "scenario " << name << ":" << lineno << ": usage: window <w> <r>");
      sc.window_w = parse_int(toks[1], name, lineno);
      sc.window_r = Rat::parse(toks[2]);
      sc.window_line = lineno;
    } else if (kind == "rate") {
      AQT_REQUIRE(toks.size() == 2,
                  "scenario " << name << ":" << lineno << ": usage: rate <r>");
      sc.rate_r = Rat::parse(toks[1]);
      sc.rate_line = lineno;
    } else if (kind == "inject") {
      AQT_REQUIRE(toks.size() >= 3 && toks.size() <= 4,
                  "scenario " << name << ":" << lineno
                       << ": usage: inject t=<step> route=<e>... [tag=<n>]");
      ScenarioInjection inj;
      inj.t = parse_int(expect_kv(toks[1], "t", name, lineno), name, lineno);
      inj.route = split_route(expect_kv(toks[2], "route", name, lineno),
                              name, lineno);
      if (toks.size() == 4)
        inj.tag = static_cast<std::uint64_t>(parse_int(
            expect_kv(toks[3], "tag", name, lineno), name, lineno));
      inj.line = lineno;
      sc.injections.push_back(std::move(inj));
    } else if (kind == "reroute") {
      AQT_REQUIRE(
          toks.size() == 4,
          "scenario " << name << ":" << lineno
               << ": usage: reroute t=<step> packet=<ordinal> suffix=<e>...");
      ScenarioReroute rr;
      rr.t = parse_int(expect_kv(toks[1], "t", name, lineno), name, lineno);
      rr.packet_ordinal = static_cast<std::uint64_t>(parse_int(
          expect_kv(toks[2], "packet", name, lineno), name, lineno));
      rr.suffix = split_route(expect_kv(toks[3], "suffix", name, lineno),
                              name, lineno);
      rr.line = lineno;
      sc.reroutes.push_back(std::move(rr));
    } else {
      detail::require_failed("known directive", name.c_str(), lineno,
                             "unknown directive '" + kind +
                                 "' (expected topology/protocol/window/"
                                 "rate/inject/reroute)");
    }
  }
  AQT_REQUIRE(have_topology,
              "scenario " << name << ": missing required 'topology' line");
  return sc;
}

Scenario parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  AQT_REQUIRE(in.good(), "cannot open scenario file: " << path);
  return parse_scenario(in, path);
}

std::string to_text(const Scenario& scenario) {
  std::ostringstream os;
  os << "topology " << scenario.topology;
  if (scenario.topology_seed != 1) os << " seed=" << scenario.topology_seed;
  os << "\nprotocol " << scenario.protocol << "\n";
  if (scenario.window_w)
    os << "window " << *scenario.window_w << " " << scenario.window_r->str()
       << "\n";
  if (scenario.rate_r) os << "rate " << scenario.rate_r->str() << "\n";
  auto join = [&os](const std::vector<std::string>& names) {
    for (std::size_t i = 0; i < names.size(); ++i)
      os << (i == 0 ? "" : ">") << names[i];
  };
  for (const ScenarioInjection& inj : scenario.injections) {
    os << "inject t=" << inj.t << " route=";
    join(inj.route);
    if (inj.tag != 0) os << " tag=" << inj.tag;
    os << "\n";
  }
  for (const ScenarioReroute& rr : scenario.reroutes) {
    os << "reroute t=" << rr.t << " packet=" << rr.packet_ordinal
       << " suffix=";
    join(rr.suffix);
    os << "\n";
  }
  return os.str();
}

}  // namespace aqt
