#include "aqt/trace/trace.hpp"

#include <fstream>
#include <sstream>

#include "aqt/core/engine.hpp"
#include "aqt/util/check.hpp"

namespace aqt {

void Trace::record_injection(Time t, const Injection& injection) {
  AQT_REQUIRE(t >= last_time_, "trace events must be time-ordered");
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInjection;
  ev.t = t;
  ev.tag = injection.tag;
  ev.edges = injection.route;
  events_.push_back(std::move(ev));
  ++injections_;
  last_time_ = t;
}

void Trace::record_reroute(Time t, std::uint64_t target_ordinal,
                           const Route& new_suffix) {
  AQT_REQUIRE(t >= last_time_, "trace events must be time-ordered");
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kReroute;
  ev.t = t;
  ev.ordinal = target_ordinal;
  ev.edges = new_suffix;
  events_.push_back(std::move(ev));
  last_time_ = t;
}

void Trace::save(std::ostream& os, const Graph& graph) const {
  for (const TraceEvent& ev : events_) {
    if (ev.kind == TraceEvent::Kind::kInjection) {
      os << "I " << ev.t << ' ' << ev.tag;
    } else {
      os << "R " << ev.t << ' ' << ev.ordinal;
    }
    for (EdgeId e : ev.edges) os << ' ' << graph.edge(e).name;
    os << '\n';
  }
}

void Trace::save_file(const std::string& path, const Graph& graph) const {
  std::ofstream out(path);
  AQT_REQUIRE(static_cast<bool>(out), "cannot open " << path);
  save(out, graph);
}

Trace Trace::load(std::istream& is, const Graph& graph) {
  // Hardened against untrusted input: every malformed, truncated, or
  // unresolvable line is rejected with a PreconditionError naming the line
  // — including the cases (unknown edge, time regression) that would
  // otherwise surface as context-free errors from deeper layers.
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind = 0;
    Time t = 0;
    std::uint64_t id = 0;
    ls >> kind >> t >> id;
    AQT_REQUIRE(ls && (kind == 'I' || kind == 'R'),
                "malformed trace line " << line_no << ": " << line);
    AQT_REQUIRE(t >= 0, "negative event time at line " << line_no << ": "
                                                       << line);
    AQT_REQUIRE(t >= trace.last_time(),
                "time regression at line " << line_no << ": t=" << t
                                           << " after t="
                                           << trace.last_time());
    Route edges;
    std::string name;
    while (ls >> name) {
      const auto e = graph.find_edge(name);
      AQT_REQUIRE(e.has_value(), "unknown edge '"
                                     << name << "' at line " << line_no
                                     << ": " << line);
      edges.push_back(*e);
    }
    if (kind == 'I') {
      AQT_REQUIRE(!edges.empty(), "injection without route at line "
                                      << line_no);
      trace.record_injection(t, Injection{std::move(edges), id});
    } else {
      trace.record_reroute(t, id, edges);
    }
  }
  return trace;
}

Trace Trace::load_file(const std::string& path, const Graph& graph) {
  std::ifstream in(path);
  AQT_REQUIRE(static_cast<bool>(in), "cannot open " << path);
  return load(in, graph);
}

RecordingAdversary::RecordingAdversary(Adversary& inner, Trace& out)
    : inner_(inner), trace_(out) {}

void RecordingAdversary::step(Time now, const Engine& engine,
                              AdversaryStep& out) {
  const std::size_t inj_before = out.injections.size();
  const std::size_t rr_before = out.reroutes.size();
  inner_.step(now, engine, out);
  // Record reroutes first to mirror the engine's application order
  // (reroutes are applied before injections within a step).
  for (std::size_t i = rr_before; i < out.reroutes.size(); ++i) {
    const Reroute& rr = out.reroutes[i];
    trace_.record_reroute(now, engine.packet_meta(rr.packet).ordinal,
                          rr.new_suffix);
  }
  for (std::size_t i = inj_before; i < out.injections.size(); ++i)
    trace_.record_injection(now, out.injections[i]);
}

bool RecordingAdversary::finished(Time now) const {
  return inner_.finished(now);
}

ReplayAdversary::ReplayAdversary(const Trace& trace) : trace_(trace) {}

void ReplayAdversary::step(Time now, const Engine& engine,
                           AdversaryStep& out) {
  const auto& events = trace_.events();
  AQT_REQUIRE(next_ >= events.size() || events[next_].t >= now,
              "replay started mid-trace: event at t=" << events[next_].t
                                                      << " but now=" << now);
  while (next_ < events.size() && events[next_].t == now) {
    const TraceEvent& ev = events[next_++];
    if (ev.kind == TraceEvent::Kind::kInjection) {
      out.injections.push_back(Injection{ev.edges, ev.tag});
      continue;
    }
    // Reroute: resolve the ordinal under *this* execution.  Under a
    // different protocol the packet may already be absorbed, or sit at a
    // position where the recorded suffix no longer splices into a valid
    // route; both cases are skipped (the adversary loses that move).
    const PacketId id = engine.arena().find_by_ordinal(ev.ordinal);
    if (id == kNoPacket) {
      ++skipped_;
      continue;
    }
    const Packet& p = engine.packet(id);
    Route updated(p.route.begin(),
                  p.route.begin() + static_cast<std::ptrdiff_t>(p.hop) + 1);
    updated.insert(updated.end(), ev.edges.begin(), ev.edges.end());
    if (!engine.graph().is_simple_path(updated)) {
      ++skipped_;
      continue;
    }
    out.reroutes.push_back(Reroute{id, ev.edges});
  }
}

bool ReplayAdversary::finished(Time) const {
  return next_ >= trace_.events().size();
}

}  // namespace aqt
