// Versioned, self-describing run traces — the evidence format aqt-verify
// checks.
//
// Unlike the adversary Trace (trace.hpp), which records only what the
// adversary *asked for*, a run trace records what the engine actually
// *did*: the initial configuration, every per-edge transmission, every
// absorption, every applied reroute and injection, and the end-of-step
// depth of every nonempty buffer.  The header carries everything needed to
// interpret the records without the originating process — format version,
// protocol name, RNG seed, scenario digest, declared (w, r) / rate-r
// constraints, and the full node/edge tables of the network — so a
// verifier can rebuild the graph and re-derive every model rule from first
// principles, sharing no step logic with the engine.
//
// Every line feeds a streaming FNV-1a content hash; the footer records it.
// Two runs from the same seed must produce byte-identical traces (the
// determinism check of aqt-sim --replay-twice), and any post-hoc tampering
// breaks the hash.
//
// Line grammar (text, '\n'-terminated, '#' comments are not allowed — the
// stream is evidence, not a document):
//
//   aqt-run-trace <version>
//   protocol <NAME>
//   seed <n>
//   digest <hex|->              scenario-file digest ('-' when none)
//   window <w> <r>              optional declared (w, r) constraint
//   rate <r>                    optional declared rate-r constraint
//   nodes <count>
//   node <id> <name>            (count times, dense ids in order)
//   edges <count>
//   edge <id> <name> <tail> <head>
//   begin
//   P <ordinal> <tag> <e>...    initial packet (time 0) with route
//   T <t>                       step header, t = 1, 2, ... consecutive
//   S <e> <ordinal>             substep-1 send over edge e
//   A <ordinal>                 absorption (route completed this step)
//   R <ordinal> [<e>...]        applied reroute (new suffix; may be empty)
//   J <ordinal> <tag> <e>...    applied injection with route
//   Q <e> <depth>               end-of-step nonempty-buffer depth
//   end <steps> <injected> <absorbed>
//   hash <16 hex digits>
//
// The parser is hardened: malformed, truncated, or out-of-range input is
// rejected with a PreconditionError naming the line — never an
// AQT_CHECK abort — so untrusted trace files cannot take the process down.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "aqt/core/graph.hpp"
#include "aqt/core/trace_sink.hpp"
#include "aqt/core/types.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {

inline constexpr int kRunTraceVersion = 1;

/// Streaming FNV-1a 64 over bytes; the run-trace content hash.
class Fnv1a {
 public:
  Fnv1a() = default;
  /// Resumes hashing mid-stream from a previously saved value() — the
  /// mechanism that lets a checkpointed run's trace hash continue exactly
  /// where the interrupted segment stopped (runner/job_checkpoint.hpp).
  explicit Fnv1a(std::uint64_t resume_state) : hash_(resume_state) {}

  void update(std::string_view bytes) {
    for (const char c : bytes) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Run-level context recorded in the trace header.
struct RunTraceMeta {
  std::string protocol = "FIFO";
  std::uint64_t seed = 0;
  /// Hex digest of the scenario file driving the run; empty when none.
  std::string scenario_digest;
  std::optional<std::int64_t> window_w;  ///< Declared (w, r) constraint.
  std::optional<Rat> window_r;
  std::optional<Rat> rate_r;  ///< Declared rate-r constraint.
};

/// Mid-stream continuation state for RunTraceWriter: everything a resumed
/// run segment needs to keep emitting the byte stream (and the streaming
/// hash) exactly as if the run had never been interrupted.  Captured at a
/// step boundary, after the interrupted segment's last Q record.
struct TraceResumeState {
  std::uint64_t hash_state = 0;  ///< Fnv1a::value() at the cut point.
  Time last_step = 0;            ///< Last fully recorded step.
};

/// Streams the evidence format to an ostream, hashing every line.  Plug
/// into EngineConfig::sinks.trace; call finish() once after the run.
class RunTraceWriter final : public RunTraceSink {
 public:
  /// Writes the header (including the graph tables) immediately.
  RunTraceWriter(std::ostream& os, const Graph& graph,
                 const RunTraceMeta& meta);

  /// Continuation writer for a resumed run segment: emits no header and no
  /// initial-packet records (the interrupted segment already did), seeds
  /// the streaming hash from `state`, and accepts step records from
  /// state.last_step + 1 on.  finish() then closes the *logical* run, so
  /// content_hash() equals the uninterrupted run's hash byte for byte.
  RunTraceWriter(std::ostream& os, const TraceResumeState& state);

  /// The continuation state at the current step boundary (see
  /// TraceResumeState).  Meaningless mid-step; callers cut only between
  /// engine steps.
  [[nodiscard]] TraceResumeState resume_state() const {
    return TraceResumeState{hash_.value(), last_step_};
  }

  void record_initial(std::uint64_t ordinal, std::uint64_t tag,
                      RouteSpan route) override;
  void begin_step(Time t) override;
  void record_send(EdgeId e, std::uint64_t ordinal) override;
  void record_absorb(std::uint64_t ordinal) override;
  void record_reroute(std::uint64_t ordinal, RouteSpan new_suffix) override;
  void record_inject(std::uint64_t ordinal, std::uint64_t tag,
                     RouteSpan route) override;
  void record_queue_depth(EdgeId e, std::size_t depth) override;

  /// Writes the footer (totals + content hash).  Call exactly once.
  void finish(std::uint64_t injected, std::uint64_t absorbed);

  /// Hash of everything emitted so far (the footer records this value).
  [[nodiscard]] std::uint64_t content_hash() const { return hash_.value(); }
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  void line(const std::string& text);

  std::ostream& os_;
  Fnv1a hash_;
  Time last_step_ = 0;
  bool begun_ = false;
  bool finished_ = false;
};

/// One parsed record (everything after the `begin` line).
struct RunRecord {
  enum class Kind : std::uint8_t {
    kInitial,  ///< P — ordinal, tag, edges (route)
    kStep,     ///< T — t
    kSend,     ///< S — edge, ordinal
    kAbsorb,   ///< A — ordinal
    kReroute,  ///< R — ordinal, edges (new suffix, possibly empty)
    kInject,   ///< J — ordinal, tag, edges (route)
    kQueue,    ///< Q — edge, depth
  };
  Kind kind = Kind::kStep;
  Time t = 0;
  EdgeId edge = kNoEdge;
  std::uint64_t ordinal = 0;
  std::uint64_t tag = 0;
  std::uint64_t depth = 0;
  Route edges;
};

/// A fully parsed run trace: header, self-described network, records, and
/// footer.  Structurally valid (ids in range, counts consistent, footer
/// present); *semantic* validity is the verifier's job.
struct RunTrace {
  int version = kRunTraceVersion;
  RunTraceMeta meta;

  struct EdgeDesc {
    std::string name;
    NodeId tail = kNoNode;
    NodeId head = kNoNode;
  };
  std::vector<std::string> node_names;
  std::vector<EdgeDesc> edges;

  std::vector<RunRecord> records;

  Time steps = 0;  ///< Footer: last step number.
  std::uint64_t injected = 0;
  std::uint64_t absorbed = 0;
  std::uint64_t declared_hash = 0;  ///< Footer hash line.
  std::uint64_t computed_hash = 0;  ///< Recomputed over the parsed bytes.
};

/// Parses the format.  Throws PreconditionError (with the offending line
/// number) on malformed, truncated, or out-of-range input; never aborts.
/// A declared-vs-computed hash mismatch is NOT an error here — the
/// verifier reports it as a finding so tampering is diagnosed, not hidden
/// behind a parse failure.
RunTrace parse_run_trace(std::istream& is, const std::string& name);
RunTrace parse_run_trace_file(const std::string& path);

/// FNV-1a digest of a whole stream/file, as 16 lowercase hex digits; used
/// for the scenario digest recorded in trace headers.
std::string fnv1a_hex(std::istream& is);
std::string file_digest_hex(const std::string& path);

}  // namespace aqt
