// Adversary traces: record, persist, and replay injection schedules.
//
// A trace captures everything an adversary did — timed injections and
// reroutes — in a protocol-independent form.  Packets are identified by
// their *creation ordinal* (the n-th packet ever injected), not by
// PacketId, because slot reuse makes ids depend on absorption order and
// hence on the protocol.  Edges are persisted by name so saved traces
// survive graph rebuilds.
//
// Replaying a trace against a different protocol answers the question the
// E10 experiment poses: "what does this exact injection sequence do to
// LIS/LIFO/...?"  A reroute whose target packet has already been absorbed
// under the new protocol is skipped (counted), since rerouting the departed
// is meaningless.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/core/types.hpp"

namespace aqt {

/// One recorded adversary action.
struct TraceEvent {
  enum class Kind : std::uint8_t { kInjection, kReroute };
  Kind kind = Kind::kInjection;
  Time t = 0;
  std::uint64_t tag = 0;       ///< Injection tag.
  std::uint64_t ordinal = 0;   ///< Reroute target (creation ordinal).
  Route edges;                 ///< Route (injection) or new suffix (reroute).
};

/// An in-memory adversary trace, ordered by time then recording order.
class Trace {
 public:
  void record_injection(Time t, const Injection& injection);
  void record_reroute(Time t, std::uint64_t target_ordinal,
                      const Route& new_suffix);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] Time last_time() const { return last_time_; }

  /// Number of injection events.
  [[nodiscard]] std::uint64_t injection_count() const { return injections_; }

  /// Serializes as a line-oriented text format:
  ///   I <t> <tag> <edge> [<edge> ...]
  ///   R <t> <ordinal> [<edge> ...]
  /// Edge ids are written as edge names (graph-portable).
  void save(std::ostream& os, const Graph& graph) const;
  void save_file(const std::string& path, const Graph& graph) const;

  /// Parses the text format back; edge names are resolved against `graph`.
  /// Hardened for untrusted input: malformed or truncated lines, unknown
  /// edges, negative times, and time regressions all throw
  /// PreconditionError with the offending line number (never abort).
  static Trace load(std::istream& is, const Graph& graph);
  static Trace load_file(const std::string& path, const Graph& graph);

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t injections_ = 0;
  Time last_time_ = 0;
};

/// Wraps another adversary and records everything it emits.
class RecordingAdversary final : public Adversary {
 public:
  /// Both the inner adversary and the trace are borrowed.
  RecordingAdversary(Adversary& inner, Trace& out);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;
  [[nodiscard]] bool finished(Time now) const override;

 private:
  Adversary& inner_;
  Trace& trace_;
};

/// Replays a trace verbatim (injections) and best-effort (reroutes: targets
/// that no longer exist under the current protocol are skipped).
class ReplayAdversary final : public Adversary {
 public:
  explicit ReplayAdversary(const Trace& trace);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;
  [[nodiscard]] bool finished(Time now) const override;

  /// Reroutes dropped because their target was already absorbed.
  [[nodiscard]] std::uint64_t skipped_reroutes() const { return skipped_; }

 private:
  const Trace& trace_;
  std::size_t next_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace aqt
