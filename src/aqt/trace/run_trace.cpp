#include "aqt/trace/run_trace.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

std::string format_edges(RouteSpan edges) {
  std::ostringstream os;
  for (const EdgeId e : edges) os << ' ' << e;
  return os.str();
}

/// Whitespace-splits one line into tokens; the parsing primitive.  Numeric
/// fields go through std::from_chars so garbage ("12x", "-3" for unsigned,
/// overflow) is rejected exactly, with the line number in the diagnostic.
class LineTokens {
 public:
  LineTokens(const std::string& line, std::size_t line_no)
      : line_no_(line_no) {
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      std::size_t j = i;
      while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
      if (j > i) tokens_.push_back(line.substr(i, j - i));
      i = j;
    }
  }

  [[nodiscard]] std::size_t size() const { return tokens_.size(); }
  [[nodiscard]] std::size_t line_no() const { return line_no_; }

  [[nodiscard]] const std::string& str(std::size_t i) const {
    AQT_REQUIRE(i < tokens_.size(),
                "run trace line " << line_no_ << ": missing field "
                                  << (i + 1));
    return tokens_[i];
  }

  template <typename Int>
  [[nodiscard]] Int num(std::size_t i) const {
    const std::string& tok = str(i);
    Int value{};
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), value);
    AQT_REQUIRE(ec == std::errc() && ptr == tok.data() + tok.size(),
                "run trace line " << line_no_ << ": '" << tok
                                  << "' is not a valid number");
    return value;
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t line_no_;
};

}  // namespace

RunTraceWriter::RunTraceWriter(std::ostream& os, const Graph& graph,
                               const RunTraceMeta& meta)
    : os_(os) {
  std::ostringstream hdr;
  hdr << "aqt-run-trace " << kRunTraceVersion;
  line(hdr.str());
  line("protocol " + meta.protocol);
  line("seed " + std::to_string(meta.seed));
  line("digest " +
       (meta.scenario_digest.empty() ? std::string("-")
                                     : meta.scenario_digest));
  if (meta.window_w.has_value() && meta.window_r.has_value())
    line("window " + std::to_string(*meta.window_w) + " " +
         meta.window_r->str());
  if (meta.rate_r.has_value()) line("rate " + meta.rate_r->str());

  line("nodes " + std::to_string(graph.node_count()));
  for (NodeId v = 0; v < graph.node_count(); ++v)
    line("node " + std::to_string(v) + " " + graph.node_name(v));
  line("edges " + std::to_string(graph.edge_count()));
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Graph::Edge& ed = graph.edge(e);
    line("edge " + std::to_string(e) + " " + ed.name + " " +
         std::to_string(ed.tail) + " " + std::to_string(ed.head));
  }
  line("begin");
}

RunTraceWriter::RunTraceWriter(std::ostream& os,
                               const TraceResumeState& state)
    : os_(os), hash_(state.hash_state), last_step_(state.last_step) {
  // A continuation segment picks up after a fully recorded step, so the
  // P-records-precede-step-1 window is already closed.
  begun_ = true;
}

void RunTraceWriter::line(const std::string& text) {
  AQT_CHECK(!finished_, "run-trace record after finish()");
  hash_.update(text);
  hash_.update("\n");
  os_ << text << '\n';
}

void RunTraceWriter::record_initial(std::uint64_t ordinal, std::uint64_t tag,
                                    RouteSpan route) {
  AQT_CHECK(!begun_, "initial packets must precede step 1 in the trace");
  line("P " + std::to_string(ordinal) + " " + std::to_string(tag) +
       format_edges(route));
}

void RunTraceWriter::begin_step(Time t) {
  begun_ = true;
  last_step_ = t;
  line("T " + std::to_string(t));
}

void RunTraceWriter::record_send(EdgeId e, std::uint64_t ordinal) {
  line("S " + std::to_string(e) + " " + std::to_string(ordinal));
}

void RunTraceWriter::record_absorb(std::uint64_t ordinal) {
  line("A " + std::to_string(ordinal));
}

void RunTraceWriter::record_reroute(std::uint64_t ordinal,
                                    RouteSpan new_suffix) {
  line("R " + std::to_string(ordinal) + format_edges(new_suffix));
}

void RunTraceWriter::record_inject(std::uint64_t ordinal, std::uint64_t tag,
                                   RouteSpan route) {
  line("J " + std::to_string(ordinal) + " " + std::to_string(tag) +
       format_edges(route));
}

void RunTraceWriter::record_queue_depth(EdgeId e, std::size_t depth) {
  line("Q " + std::to_string(e) + " " + std::to_string(depth));
}

void RunTraceWriter::finish(std::uint64_t injected, std::uint64_t absorbed) {
  AQT_CHECK(!finished_, "finish() called twice");
  line("end " + std::to_string(last_step_) + " " + std::to_string(injected) +
       " " + std::to_string(absorbed));
  const std::uint64_t h = hash_.value();
  std::ostringstream os;
  os << "hash " << std::hex;
  os.width(16);
  os.fill('0');
  os << h;
  // The hash line itself is excluded from the hash.
  os_ << os.str() << '\n';
  os_.flush();
  finished_ = true;
}

RunTrace parse_run_trace(std::istream& is, const std::string& name) {
  RunTrace out;
  Fnv1a hash;
  std::string raw;
  std::size_t line_no = 0;
  bool saw_end = false;
  bool saw_hash = false;

  auto next_line = [&](const char* what) -> LineTokens {
    AQT_REQUIRE(std::getline(is, raw),
                "" << name << ": truncated run trace (expected " << what
                     << " after line " << line_no << ")");
    ++line_no;
    hash.update(raw);
    hash.update("\n");
    return LineTokens(raw, line_no);
  };

  // --- Header -------------------------------------------------------------
  {
    const LineTokens t = next_line("version line");
    AQT_REQUIRE(t.size() == 2 && t.str(0) == "aqt-run-trace",
                "" << name << ": line 1: not a run trace (expected "
                        "'aqt-run-trace <version>')");
    out.version = t.num<int>(1);
    AQT_REQUIRE(out.version == kRunTraceVersion,
                "" << name << ": unsupported run-trace version " << out.version
                     << " (this build reads version " << kRunTraceVersion
                     << ")");
  }
  {
    const LineTokens t = next_line("protocol line");
    AQT_REQUIRE(t.size() == 2 && t.str(0) == "protocol",
                "" << name << ": line " << t.line_no() << ": expected 'protocol "
                        "<NAME>'");
    out.meta.protocol = t.str(1);
  }
  {
    const LineTokens t = next_line("seed line");
    AQT_REQUIRE(t.size() == 2 && t.str(0) == "seed",
                "" << name << ": line " << t.line_no() << ": expected 'seed <n>'");
    out.meta.seed = t.num<std::uint64_t>(1);
  }
  {
    const LineTokens t = next_line("digest line");
    AQT_REQUIRE(t.size() == 2 && t.str(0) == "digest",
                "" << name << ": line " << t.line_no()
                     << ": expected 'digest <hex|->'");
    if (t.str(1) != "-") out.meta.scenario_digest = t.str(1);
  }

  // Optional constraint lines, then the mandatory node table.
  LineTokens t = next_line("constraint or node table");
  while (t.size() > 0 && (t.str(0) == "window" || t.str(0) == "rate")) {
    if (t.str(0) == "window") {
      AQT_REQUIRE(t.size() == 3, "" << name << ": line " << t.line_no()
                                      << ": expected 'window <w> <r>'");
      out.meta.window_w = t.num<std::int64_t>(1);
      out.meta.window_r = Rat::parse(t.str(2));
    } else {
      AQT_REQUIRE(t.size() == 2, "" << name << ": line " << t.line_no()
                                      << ": expected 'rate <r>'");
      out.meta.rate_r = Rat::parse(t.str(1));
    }
    t = next_line("node table");
  }

  AQT_REQUIRE(t.size() == 2 && t.str(0) == "nodes",
              "" << name << ": line " << t.line_no()
                   << ": expected 'nodes <count>'");
  const auto node_count = t.num<std::uint32_t>(1);
  // Untrusted count: preallocation is clamped so a tampered header cannot
  // balloon memory; the per-entry lines below still enforce the count.
  out.node_names.reserve(std::min<std::uint32_t>(node_count, 65536));
  for (std::uint32_t i = 0; i < node_count; ++i) {
    const LineTokens n = next_line("node entry");
    AQT_REQUIRE(n.size() == 3 && n.str(0) == "node" &&
                    n.num<NodeId>(1) == i,
                "" << name << ": line " << n.line_no()
                     << ": expected 'node " << i << " <name>'");
    out.node_names.push_back(n.str(2));
  }

  {
    const LineTokens e = next_line("edge table");
    AQT_REQUIRE(e.size() == 2 && e.str(0) == "edges",
                "" << name << ": line " << e.line_no()
                     << ": expected 'edges <count>'");
    const auto edge_count = e.num<std::uint32_t>(1);
    out.edges.reserve(std::min<std::uint32_t>(edge_count, 65536));
    for (std::uint32_t i = 0; i < edge_count; ++i) {
      const LineTokens d = next_line("edge entry");
      AQT_REQUIRE(d.size() == 5 && d.str(0) == "edge" &&
                      d.num<EdgeId>(1) == i,
                  "" << name << ": line " << d.line_no()
                       << ": expected 'edge " << i
                       << " <name> <tail> <head>'");
      RunTrace::EdgeDesc desc;
      desc.name = d.str(2);
      desc.tail = d.num<NodeId>(3);
      desc.head = d.num<NodeId>(4);
      AQT_REQUIRE(desc.tail < node_count && desc.head < node_count,
                  "" << name << ": line " << d.line_no()
                       << ": edge endpoint out of range (nodes: "
                       << node_count << ")");
      out.edges.push_back(std::move(desc));
    }
  }

  {
    const LineTokens b = next_line("'begin'");
    AQT_REQUIRE(b.size() == 1 && b.str(0) == "begin",
                "" << name << ": line " << b.line_no() << ": expected 'begin'");
  }

  // --- Records ------------------------------------------------------------
  const auto edge_count = static_cast<EdgeId>(out.edges.size());
  auto parse_route = [&](const LineTokens& tok, std::size_t from,
                         Route& edges) {
    for (std::size_t i = from; i < tok.size(); ++i) {
      const EdgeId e = tok.num<EdgeId>(i);
      AQT_REQUIRE(e < edge_count, "" << name << ": line " << tok.line_no()
                                       << ": edge id " << e
                                       << " out of range (edges: "
                                       << edge_count << ")");
      edges.push_back(e);
    }
  };

  while (!saw_end) {
    const LineTokens r = next_line("a record or 'end'");
    AQT_REQUIRE(r.size() > 0,
                "" << name << ": line " << r.line_no() << ": empty record line");
    const std::string& kind = r.str(0);
    RunRecord rec;
    if (kind == "end") {
      AQT_REQUIRE(r.size() == 4,
                  "" << name << ": line " << r.line_no()
                       << ": expected 'end <steps> <injected> <absorbed>'");
      out.steps = r.num<Time>(1);
      AQT_REQUIRE(out.steps >= 0, "" << name << ": line " << r.line_no()
                                       << ": negative step count");
      out.injected = r.num<std::uint64_t>(2);
      out.absorbed = r.num<std::uint64_t>(3);
      saw_end = true;
      continue;
    }
    if (kind == "P" || kind == "J") {
      AQT_REQUIRE(r.size() >= 4,
                  "" << name << ": line " << r.line_no() << ": '" << kind
                       << "' needs an ordinal, a tag, and a route");
      rec.kind = kind == "P" ? RunRecord::Kind::kInitial
                             : RunRecord::Kind::kInject;
      rec.ordinal = r.num<std::uint64_t>(1);
      rec.tag = r.num<std::uint64_t>(2);
      parse_route(r, 3, rec.edges);
    } else if (kind == "T") {
      AQT_REQUIRE(r.size() == 2,
                  "" << name << ": line " << r.line_no() << ": expected 'T <t>'");
      rec.kind = RunRecord::Kind::kStep;
      rec.t = r.num<Time>(1);
      AQT_REQUIRE(rec.t >= 1, "" << name << ": line " << r.line_no()
                                   << ": step numbers start at 1");
    } else if (kind == "S") {
      AQT_REQUIRE(r.size() == 3, "" << name << ": line " << r.line_no()
                                      << ": expected 'S <e> <ordinal>'");
      rec.kind = RunRecord::Kind::kSend;
      rec.edge = r.num<EdgeId>(1);
      rec.ordinal = r.num<std::uint64_t>(2);
      AQT_REQUIRE(rec.edge < edge_count,
                  "" << name << ": line " << r.line_no() << ": edge id "
                       << rec.edge << " out of range");
    } else if (kind == "A") {
      AQT_REQUIRE(r.size() == 2, "" << name << ": line " << r.line_no()
                                      << ": expected 'A <ordinal>'");
      rec.kind = RunRecord::Kind::kAbsorb;
      rec.ordinal = r.num<std::uint64_t>(1);
    } else if (kind == "R") {
      AQT_REQUIRE(r.size() >= 2,
                  "" << name << ": line " << r.line_no()
                       << ": expected 'R <ordinal> [<e>...]'");
      rec.kind = RunRecord::Kind::kReroute;
      rec.ordinal = r.num<std::uint64_t>(1);
      parse_route(r, 2, rec.edges);
    } else if (kind == "Q") {
      AQT_REQUIRE(r.size() == 3, "" << name << ": line " << r.line_no()
                                      << ": expected 'Q <e> <depth>'");
      rec.kind = RunRecord::Kind::kQueue;
      rec.edge = r.num<EdgeId>(1);
      rec.depth = r.num<std::uint64_t>(2);
      AQT_REQUIRE(rec.edge < edge_count,
                  "" << name << ": line " << r.line_no() << ": edge id "
                       << rec.edge << " out of range");
    } else {
      AQT_REQUIRE(false, "" << name << ": line " << r.line_no()
                              << ": unknown record kind '" << kind << "'");
    }
    if (!saw_end) out.records.push_back(std::move(rec));
  }
  out.computed_hash = hash.value();

  // --- Footer hash (excluded from the hash itself) ------------------------
  {
    AQT_REQUIRE(std::getline(is, raw),
                "" << name << ": truncated run trace (missing hash line)");
    ++line_no;
    const LineTokens h(raw, line_no);
    AQT_REQUIRE(h.size() == 2 && h.str(0) == "hash",
                "" << name << ": line " << line_no
                     << ": expected 'hash <16 hex digits>'");
    const std::string& hex = h.str(1);
    AQT_REQUIRE(hex.size() == 16,
                "" << name << ": line " << line_no
                     << ": hash must be 16 hex digits, got '" << hex << "'");
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(hex.data(), hex.data() + hex.size(), value, 16);
    AQT_REQUIRE(ec == std::errc() && ptr == hex.data() + hex.size(),
                "" << name << ": line " << line_no << ": '" << hex
                     << "' is not a hex hash");
    out.declared_hash = value;
    saw_hash = true;
  }
  AQT_REQUIRE(saw_hash, "" << name << ": truncated run trace");
  return out;
}

RunTrace parse_run_trace_file(const std::string& path) {
  std::ifstream in(path);
  AQT_REQUIRE(static_cast<bool>(in), "cannot open " << path);
  return parse_run_trace(in, path);
}

std::string fnv1a_hex(std::istream& is) {
  Fnv1a hash;
  char buf[4096];
  while (is.read(buf, sizeof buf) || is.gcount() > 0)
    hash.update(std::string_view(buf, static_cast<std::size_t>(is.gcount())));
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << hash.value();
  return os.str();
}

std::string file_digest_hex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AQT_REQUIRE(static_cast<bool>(in), "cannot open " << path);
  return fnv1a_hex(in);
}

}  // namespace aqt
