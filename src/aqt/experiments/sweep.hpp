// Stability-sweep harness: protocols x topologies x seeds under (w, r)
// traffic, with machine-checked feasibility and aggregated residence
// statistics.
//
// The §4 experiments (E5, E6, E7) all share this shape; the harness owns
// the loop so the benches state only *what* they sweep and *which bound*
// the result must respect.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/types.hpp"
#include "aqt/runner/run_spec.hpp"
#include "aqt/util/rational.hpp"
#include "aqt/util/stats.hpp"

namespace aqt {

// TopologyRecipe now lives in runner/run_spec.hpp (the sweep is one client
// of the unified RunSpec API) and is re-exported here unchanged.

struct SweepConfig {
  std::vector<std::string> protocols;
  std::vector<TopologyRecipe> topologies;
  std::vector<std::uint64_t> seeds;
  Time steps = 1000;

  /// Traffic shape.  Seed semantics: `traffic.seed` is a placeholder that
  /// is ALWAYS overridden per cell — cell (protocol, topology, seed) runs
  /// its adversary (and any seeded protocol) with that cell's entry from
  /// `seeds`, never with traffic.seed.  Two configs differing only in
  /// traffic.seed therefore produce identical sweeps (pinned by
  /// tests/experiments/sweep_test.cpp).
  StochasticConfig traffic;

  /// Optional initial configuration applied to every engine before the run
  /// (e.g. the S-initial-configuration of Corollaries 4.5/4.6).
  std::function<void(Engine&, const Graph&)> setup;

  /// Verify (w, r) feasibility of the generated traffic post-run.
  bool audit = true;
};

/// One cell's outcome.
struct SweepCell {
  std::string protocol;
  std::string topology;
  std::uint64_t seed = 0;
  std::uint64_t injected = 0;
  std::uint64_t max_queue = 0;
  Time max_residence = 0;
  std::int64_t longest_route = 0;
  bool traffic_feasible = true;
};

/// Aggregate over seeds for one (protocol, topology) pair.
struct SweepAggregate {
  std::string protocol;
  std::string topology;
  Time worst_residence = 0;
  std::uint64_t worst_queue = 0;
  std::uint64_t injected = 0;
  StatAccumulator residence;  ///< Across seeds.
  bool all_feasible = true;
};

/// Expands a sweep into its RunSpec cells, one per (protocol, topology,
/// seed) in deterministic order — the runner-API form of the sweep, for
/// callers that want to pool sweep cells together with other work.
std::vector<RunSpec> sweep_specs(const SweepConfig& config);

/// Runs every (protocol, topology, seed) cell through the deterministic
/// run-pool (runner/pool.hpp).  Throws only on configuration errors (a
/// cell-level failure surfaces as a PreconditionError naming the cell);
/// traffic infeasibility is reported per cell.  `threads` > 1 runs cells
/// concurrently (they are fully independent: each builds its own graph,
/// engine, and adversary); results are returned in deterministic
/// (protocol, topology, seed) order regardless of the thread count.
/// threads == 0 uses the hardware concurrency.
std::vector<SweepCell> run_sweep(const SweepConfig& config,
                                 unsigned threads = 1);

/// Groups cells by (protocol, topology), preserving first-seen order.
std::vector<SweepAggregate> aggregate_sweep(
    const std::vector<SweepCell>& cells);

/// Worst residence across all cells (the number the theorems bound).
Time worst_residence(const std::vector<SweepCell>& cells);

}  // namespace aqt
