#include "aqt/experiments/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

struct CellSpec {
  const std::string* protocol;
  const TopologyRecipe* topology;
  std::uint64_t seed;
};

SweepCell run_cell(const SweepConfig& config, const CellSpec& spec) {
  const Graph graph = spec.topology->build();
  auto protocol = make_protocol(*spec.protocol, spec.seed);
  EngineConfig ec;
  ec.audit_rates = config.audit;
  Engine eng(graph, *protocol, ec);
  if (config.setup) config.setup(eng, graph);

  StochasticConfig traffic = config.traffic;
  traffic.seed = spec.seed;
  StochasticAdversary adv(graph, traffic);
  eng.run(&adv, config.steps);

  SweepCell cell;
  cell.protocol = *spec.protocol;
  cell.topology = spec.topology->name;
  cell.seed = spec.seed;
  cell.injected = eng.total_injected();
  cell.max_queue = eng.metrics().max_queue_global();
  cell.max_residence = eng.metrics().max_residence_global();
  cell.longest_route = adv.longest_route();
  if (config.audit) {
    eng.finalize_audit();
    cell.traffic_feasible =
        check_window(eng.audit(), traffic.w, traffic.r).ok;
  }
  return cell;
}

}  // namespace

std::vector<SweepCell> run_sweep(const SweepConfig& config,
                                 unsigned threads) {
  AQT_REQUIRE(!config.protocols.empty(), "sweep needs protocols");
  AQT_REQUIRE(!config.topologies.empty(), "sweep needs topologies");
  AQT_REQUIRE(!config.seeds.empty(), "sweep needs seeds");
  AQT_REQUIRE(config.steps >= 1, "sweep needs steps >= 1");
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());

  // Enumerate cells up front so results land in deterministic order.
  std::vector<CellSpec> specs;
  for (const auto& protocol_name : config.protocols)
    for (const auto& recipe : config.topologies)
      for (const std::uint64_t seed : config.seeds)
        specs.push_back(CellSpec{&protocol_name, &recipe, seed});

  std::vector<SweepCell> cells(specs.size());
  if (threads <= 1 || specs.size() <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i)
      cells[i] = run_cell(config, specs[i]);
    return cells;
  }

  // Work-stealing over a shared atomic index: cells are fully independent
  // (own graph, engine, adversary), so no further synchronization is
  // needed; each worker writes only its own result slots.
  std::atomic<std::size_t> next{0};
  const unsigned workers =
      std::min<unsigned>(threads, static_cast<unsigned>(specs.size()));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size()) return;
        cells[i] = run_cell(config, specs[i]);
      }
    });
  }
  for (auto& t : pool) t.join();
  return cells;
}

std::vector<SweepAggregate> aggregate_sweep(
    const std::vector<SweepCell>& cells) {
  std::vector<SweepAggregate> out;
  const auto find = [&](const SweepCell& c) -> SweepAggregate& {
    for (auto& a : out)
      if (a.protocol == c.protocol && a.topology == c.topology) return a;
    out.emplace_back();
    out.back().protocol = c.protocol;
    out.back().topology = c.topology;
    return out.back();
  };
  for (const SweepCell& c : cells) {
    SweepAggregate& a = find(c);
    a.worst_residence = std::max(a.worst_residence, c.max_residence);
    a.worst_queue = std::max(a.worst_queue, c.max_queue);
    a.injected += c.injected;
    a.residence.add(static_cast<double>(c.max_residence));
    a.all_feasible = a.all_feasible && c.traffic_feasible;
  }
  return out;
}

Time worst_residence(const std::vector<SweepCell>& cells) {
  Time worst = 0;
  for (const SweepCell& c : cells)
    worst = std::max(worst, c.max_residence);
  return worst;
}

}  // namespace aqt
