#include "aqt/experiments/sweep.hpp"

#include <algorithm>

#include "aqt/core/protocol.hpp"
#include "aqt/runner/pool.hpp"
#include "aqt/util/check.hpp"

namespace aqt {

std::vector<RunSpec> sweep_specs(const SweepConfig& config) {
  AQT_REQUIRE(!config.protocols.empty(), "sweep needs protocols");
  AQT_REQUIRE(!config.topologies.empty(), "sweep needs topologies");
  AQT_REQUIRE(!config.seeds.empty(), "sweep needs seeds");
  AQT_REQUIRE(config.steps >= 1, "sweep needs steps >= 1");

  std::vector<RunSpec> specs;
  specs.reserve(config.protocols.size() * config.topologies.size() *
                config.seeds.size());
  for (const auto& protocol_name : config.protocols) {
    for (const auto& recipe : config.topologies) {
      for (const std::uint64_t seed : config.seeds) {
        RunSpec spec;
        spec.topology = recipe;
        spec.protocol = protocol_name;
        spec.seed = seed;
        spec.steps = config.steps;
        spec.setup = config.setup;
        // The per-cell seed overrides traffic.seed (see SweepConfig): the
        // factory receives the cell seed, so the same spec list is safe to
        // execute from any pool worker.
        const StochasticConfig traffic = config.traffic;
        spec.adversary = [traffic](const Graph& graph, std::uint64_t s) {
          StochasticConfig cell_traffic = traffic;
          cell_traffic.seed = s;
          return std::make_unique<StochasticAdversary>(graph, cell_traffic);
        };
        if (config.audit) {
          spec.audit_w = config.traffic.w;
          spec.audit_r = config.traffic.r;
        }
        spec.collect = [](const Engine&, const Adversary* adv,
                          RunResult& result) {
          const auto* stochastic =
              dynamic_cast<const StochasticAdversary*>(adv);
          if (stochastic != nullptr)
            result.extra["longest_route"] =
                static_cast<double>(stochastic->longest_route());
        };
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

std::vector<SweepCell> run_sweep(const SweepConfig& config,
                                 unsigned threads) {
  const std::vector<RunSpec> specs = sweep_specs(config);
  const std::vector<RunResult> results = run_all(specs, threads);

  std::vector<SweepCell> cells(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    AQT_REQUIRE(r.ok(), "sweep cell " << r.name << " failed: " << r.error);
    SweepCell& cell = cells[i];
    cell.protocol = r.protocol;
    cell.topology = r.topology;
    cell.seed = r.seed;
    cell.injected = r.injected;
    cell.max_queue = r.max_queue;
    cell.max_residence = r.max_residence;
    const auto longest = r.extra.find("longest_route");
    cell.longest_route =
        longest == r.extra.end()
            ? 0
            : static_cast<std::int64_t>(longest->second);
    cell.traffic_feasible = r.feasible;
  }
  return cells;
}

std::vector<SweepAggregate> aggregate_sweep(
    const std::vector<SweepCell>& cells) {
  std::vector<SweepAggregate> out;
  const auto find = [&](const SweepCell& c) -> SweepAggregate& {
    for (auto& a : out)
      if (a.protocol == c.protocol && a.topology == c.topology) return a;
    out.emplace_back();
    out.back().protocol = c.protocol;
    out.back().topology = c.topology;
    return out.back();
  };
  for (const SweepCell& c : cells) {
    SweepAggregate& a = find(c);
    a.worst_residence = std::max(a.worst_residence, c.max_residence);
    a.worst_queue = std::max(a.worst_queue, c.max_queue);
    a.injected += c.injected;
    a.residence.add(static_cast<double>(c.max_residence));
    a.all_feasible = a.all_feasible && c.traffic_feasible;
  }
  return out;
}

Time worst_residence(const std::vector<SweepCell>& cells) {
  Time worst = 0;
  for (const SweepCell& c : cells)
    worst = std::max(worst, c.max_residence);
  return worst;
}

}  // namespace aqt
