// The unified run-construction API: one explicit recipe (RunSpec) for a
// single independent simulation cell, and one explicit outcome (RunResult).
//
// Every workload in this repo — the §4 stability sweeps, the r = 1/2 + ε
// instability scans, fuzz trials, scenario batches, benches — is a bag of
// independent cells of the same shape: build a topology, make a protocol,
// make an adversary, run N steps, read the stability-relevant numbers.
// RunSpec factors that implicit per-tool tuple into one value type so the
// deterministic parallel pool (pool.hpp) can execute any of them, and so a
// cell's identity (protocol, topology, seed, steps) is explicit in one
// place instead of being re-spelled by every tool.
//
// Cells are self-contained by construction: the topology is a *recipe*
// (rebuilt per run), the adversary a *factory* (instantiated per run), and
// the engine/protocol are created inside execute_run — no shared mutable
// state exists between two executing cells, which is what makes the pool's
// byte-identical-to-serial guarantee possible.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "aqt/core/adversary.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/stability.hpp"
#include "aqt/core/types.hpp"
#include "aqt/obs/registry.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {

class Trace;

/// A named topology recipe (rebuilt per run so cells are independent).
struct TopologyRecipe {
  std::string name;
  std::function<Graph()> build;
};

/// Which optional artifacts a run should produce (each costs something, so
/// they are opt-in; the always-on scalars in RunResult are free).
struct RunArtifacts {
  /// Fill RunResult::metrics with the engine's aqt_* metric snapshot
  /// (obs/snapshot.hpp names).
  bool metrics = false;

  /// Record the full run trace (into a byte sink) and keep its FNV-1a
  /// content hash in RunResult::trace_hash — the cheapest way to prove two
  /// runs observably identical.
  bool trace_hash = false;

  /// Subsample the occupancy series and classify growth
  /// (RunResult::verdict); stride comes from engine.series_stride, or
  /// steps/512 when that is 0.
  bool growth = false;
};

struct RunResult;

/// Cooperative long-job controls (value-only, all off by default so batch
/// specs are unchanged).  The executor slices the engine loop so it can
/// observe these between slices; slicing itself is byte-invisible —
/// Engine::run compiles/polls the identical adversary step sequence
/// whether called once or many times, so trace hashes are unaffected.
struct RunControls {
  /// Largest number of engine steps between cancellation checks; 0 means
  /// the whole run is one slice (cancel then only observed at the end).
  Time slice_steps = 0;

  /// Borrowed stop flag (e.g. a deadline or client cancellation from the
  /// serve layer).  When it reads true at a slice boundary the cell stops:
  /// with checkpoint_to set, the run state is saved there and the result
  /// reports checkpointed; otherwise the result carries error "cancelled".
  std::shared_ptr<std::atomic<bool>> cancel;

  /// Deterministic mid-flight checkpoint: stop at exactly this step
  /// boundary and save to checkpoint_to (0 = no scheduled checkpoint).
  Time checkpoint_at = 0;

  /// Borrowed arming flag: when it reads true at the moment a cancel is
  /// observed, the cell checkpoints to checkpoint_to instead of returning
  /// error "cancelled".  Null (or false) keeps plain cancellation.  The
  /// serve layer arms this during graceful drain so long jobs survive a
  /// SIGTERM, while an explicit client cancel still just cancels.
  std::shared_ptr<std::atomic<bool>> checkpoint_on_cancel;

  /// Job-checkpoint file path written when checkpoint_at fires or a cancel
  /// arrives with this set.  Requires a checkpointable cell: no rate
  /// audit, a deterministic (non-RANDOM) protocol, and — for the resumed
  /// side — an oblivious adversary (fast-forward replays its poll
  /// sequence; adaptive adversaries would need state the engine cannot
  /// reconstruct).
  std::string checkpoint_to;

  /// Resume a previously checkpointed run: restore engine + trace-hash
  /// state from this job-checkpoint file, fast-forward the adversary, and
  /// continue to `steps`.  The finished artifacts (trace hash included)
  /// are byte-identical to the uninterrupted run.
  std::string resume_from;
};

/// Builds a fresh adversary for one cell.  `seed` is the cell seed, so
/// stochastic adversaries are reproducible per cell regardless of which
/// pool worker runs it.  A null factory runs the engine with no injections.
using AdversaryFactory = std::function<std::unique_ptr<Adversary>(
    const Graph& graph, std::uint64_t seed)>;

/// Everything needed to run one independent simulation cell.
struct RunSpec {
  /// Display identity; when empty, "protocol/topology/seed" is used.
  std::string name;

  TopologyRecipe topology;
  std::string protocol = "FIFO";  ///< A make_protocol name.
  AdversaryFactory adversary;
  std::uint64_t seed = 1;
  Time steps = 1000;

  /// Stop early once the adversary reports finished() (scripted/phase
  /// adversaries); unbounded adversaries never finish, so this is safe on.
  bool stop_when_finished = true;

  /// After the main loop, run with no injections until the network empties
  /// (finite scripts: evidence then covers every packet's full journey).
  bool drain_after = false;
  Time drain_cap = 4096;  ///< Step cap for the drain phase.

  /// Value-only engine knobs (validate_routes, audit_rates, series_stride,
  /// audit_invariants).  Borrowed observer sinks must be null: per-cell
  /// sinks are created inside execute_run, never shared across cells —
  /// execute_run rejects a spec whose sinks are set.
  EngineConfig engine;

  /// Post-run traffic-feasibility audit: with both audit_w and audit_r,
  /// the exact (w, r) window check; with only audit_r, the rate-r check.
  /// Either forces engine.audit_rates on.  Result in RunResult::feasible.
  std::optional<std::int64_t> audit_w;
  std::optional<Rat> audit_r;

  /// Optional initial configuration applied before step 1 (e.g. the
  /// S-initial-configuration of Corollaries 4.5/4.6).
  std::function<void(Engine&, const Graph&)> setup;

  /// Optional post-run extractor for cell-specific numbers (gadget sizes,
  /// longest routes, ...); fills RunResult::extra.  `adversary` may be null
  /// when the spec had no factory.
  std::function<void(const Engine&, const Adversary* adversary, RunResult&)>
      collect;

  RunArtifacts artifacts;
  RunControls controls;
};

/// One cell's outcome.  `error` empty means the run completed; on failure
/// the scalar fields hold whatever was known at the point of failure.
struct RunResult {
  std::size_t index = 0;  ///< Submission order within a pool batch.
  std::string name;
  std::string protocol;
  std::string topology;
  std::uint64_t seed = 0;

  Time steps_run = 0;  ///< Steps actually executed (incl. drain).
  std::uint64_t injected = 0;
  std::uint64_t absorbed = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t max_queue = 0;
  Time max_residence = 0;
  Time max_latency = 0;

  /// Growth classification of the occupancy series (artifacts.growth);
  /// kUndecided when the series was not requested.
  GrowthVerdict verdict = GrowthVerdict::kUndecided;
  double growth_ratio = 0.0;

  /// Post-run audit outcome; true when no audit was requested.
  bool feasible = true;

  /// FNV-1a content hash of the run trace (artifacts.trace_hash); 0 when
  /// not requested.
  std::uint64_t trace_hash = 0;

  /// Engine metric snapshot (artifacts.metrics); empty when not requested.
  obs::MetricRegistry metrics;

  /// Cell-specific numbers from RunSpec::collect.
  std::map<std::string, double> extra;

  /// True when the run stopped at a checkpoint (RunControls::checkpoint_at
  /// or a cancel with checkpoint_to set) instead of completing; the saved
  /// state is at RunSpec::controls.checkpoint_to and `checkpoint_step`
  /// records where.  Not an error: resubmit with resume_from to continue.
  bool checkpointed = false;
  Time checkpoint_step = 0;

  std::string error;  ///< Empty = success.

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Runs one cell start to finish.  Never throws: any exception the cell
/// raises (bad topology recipe, unknown protocol, adversary precondition)
/// is contained in RunResult::error, so one failing cell cannot take down
/// a batch.
RunResult execute_run(const RunSpec& spec);

/// A RunSpec that replays a recorded adversary script (scenario runs,
/// aqt-sim --batch): runs `horizon` steps (stopping early when the script
/// is exhausted), then drains, with the trace hash recorded.  The trace is
/// shared by reference into the factory, so the returned spec owns it.
RunSpec make_scripted_spec(std::string name, Graph graph,
                           std::string protocol, Trace script, Time horizon);

}  // namespace aqt
